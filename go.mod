module scotch

go 1.22
