// Package scotch is a from-scratch Go reproduction of "Scotch: Elastically
// Scaling up SDN Control-Plane using vswitch based Overlay" (CoNEXT 2014).
//
// The root package only anchors module documentation; the implementation
// lives under internal/:
//
//   - internal/scotch      — the paper's contribution (overlay manager,
//     ingress differentiation, elephant migration, withdrawal, failover)
//   - internal/openflow    — OpenFlow 1.3-subset wire protocol
//   - internal/device      — switch/OFA models calibrated to the paper
//   - internal/controller  — the controller framework (the Ryu role)
//   - internal/experiments — one runner per paper table and figure
//   - internal/ofnet       — the same protocol over real TCP
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. Run experiments with:
//
//	go run ./cmd/scotchsim all
//
// and the benchmark harness (one benchmark per paper table/figure) with:
//
//	go test -bench=. -benchmem .
package scotch
