// Flash crowd lifecycle: a benign traffic surge (no attacker) saturates a
// switch's control path. Watch the full Scotch lifecycle from the paper:
// activation when the Packet-In rate spikes, elephant migration back to
// the hardware path, and automatic withdrawal once the crowd disperses.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"time"

	"scotch/internal/capture"
	"scotch/internal/controller"
	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/scotch"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

func main() {
	eng := sim.New(3)
	net := topo.New(eng)
	edge := net.AddSwitch("edge", device.Pica8Profile())
	crowd := net.AddHost("crowd", netaddr.MustParseIPv4("10.0.0.10"))
	server := net.AddHost("server", netaddr.MustParseIPv4("10.0.1.1"))
	link := device.LinkConfig{Delay: 50 * time.Microsecond, RateBps: 1e9}
	crowdPort := net.AttachHost(crowd, edge, link)
	net.AttachHost(server, edge, link)
	vs1 := net.AddSwitch("vs1", device.OVSProfile())
	vs2 := net.AddSwitch("vs2", device.OVSProfile())
	net.LinkSwitches(edge, vs1, link)
	net.LinkSwitches(edge, vs2, link)

	cfg := scotch.DefaultConfig()
	cfg.DeactivateChecks = 5
	c := controller.New(eng, net)
	app := scotch.New(c, cfg)
	app.AddVSwitch(vs1.DPID, false)
	app.AddVSwitch(vs2.DPID, false)
	app.AssignHost(server.IP, vs1.DPID, vs2.DPID)
	app.Protect(edge.DPID, crowdPort)
	c.ConnectAll()
	if err := app.Build(); err != nil {
		panic(err)
	}

	cap := capture.New(eng)
	cap.Attach(server)
	em := workload.NewEmitter(eng, crowd, cap)

	// The crowd: 50 flows/s baseline surging to 1500 flows/s. Most flows
	// are mice; an occasional elephant gets migrated back to hardware.
	n := 0
	fc := workload.StartFlashCrowd(eng, workload.FlashCrowd{
		Base: 50, Peak: 1500,
		RampStart: 5 * time.Second, PeakStart: 8 * time.Second,
		PeakEnd: 20 * time.Second, RampEnd: 23 * time.Second,
	}, func() {
		n++
		pkts, ival := 1, time.Duration(0)
		class := "mouse"
		if n%200 == 0 { // a few elephants in the crowd
			pkts, ival, class = 4000, 2*time.Millisecond, "elephant"
		}
		em.Start(workload.Flow{
			Key: netaddr.FlowKey{Src: crowd.IP, Dst: server.IP, Proto: netaddr.ProtoTCP,
				SrcPort: uint16(1000 + n%60000), DstPort: 80},
			Packets: pkts, Interval: ival, Size: 600, Class: class,
		})
	})

	eng.Every(2*time.Second, func() {
		h := c.Switch(edge.DPID)
		fmt.Printf("t=%-4v rate=%-7.0f active=%-5v overlay=%-6d migrated=%-3d pinned=%-4d withdrawals=%d\n",
			eng.Now(), h.PacketInRate.Rate(eng.Now()), app.Active(edge.DPID),
			app.Stats.OverlayRouted, app.Stats.Migrated, app.Stats.Pinned,
			app.Stats.Withdrawals)
	})

	eng.RunUntil(35 * time.Second)
	fc.Stop()
	eng.RunUntil(40 * time.Second)

	fmt.Println()
	fmt.Printf("mice:      %.1f%% failed\n", 100*cap.FailureFraction("mouse"))
	fmt.Printf("elephants: %.1f%% failed, %d migrated to the hardware path\n",
		100*cap.FailureFraction("elephant"), app.Stats.Migrated)
	fmt.Printf("lifecycle: %d activation(s), %d withdrawal(s), %d flows pinned at withdrawal\n",
		app.Stats.Activations, app.Stats.Withdrawals, app.Stats.Pinned)
	if app.Stats.Withdrawals > 0 && !app.Active(edge.DPID) {
		fmt.Println("the overlay engaged under the surge and faded out after it - the paper's elastic lifecycle")
	}
}
