// Quickstart: build the paper's testbed (one hardware switch, an attacker,
// a client, a server) plus a two-vSwitch Scotch overlay, launch a control-
// plane DDoS, and watch Scotch absorb it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"scotch/internal/capture"
	"scotch/internal/controller"
	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/scotch"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

func main() {
	// 1. A deterministic simulation engine.
	eng := sim.New(1)

	// 2. Topology: one Pica8-class edge switch with three hosts and two
	//    Open vSwitch-class mesh members.
	net := topo.New(eng)
	edge := net.AddSwitch("edge", device.Pica8Profile())
	attacker := net.AddHost("attacker", netaddr.MustParseIPv4("10.0.0.66"))
	client := net.AddHost("client", netaddr.MustParseIPv4("10.0.0.10"))
	server := net.AddHost("server", netaddr.MustParseIPv4("10.0.1.1"))
	link := device.LinkConfig{Delay: 50 * time.Microsecond, RateBps: 1e9}
	atkPort := net.AttachHost(attacker, edge, link)
	cliPort := net.AttachHost(client, edge, link)
	net.AttachHost(server, edge, link)
	vs1 := net.AddSwitch("vs1", device.OVSProfile())
	vs2 := net.AddSwitch("vs2", device.OVSProfile())
	net.LinkSwitches(edge, vs1, link)
	net.LinkSwitches(edge, vs2, link)

	// 3. Controller + the Scotch application.
	c := controller.New(eng, net)
	app := scotch.New(c, scotch.DefaultConfig())
	app.AddVSwitch(vs1.DPID, false)
	app.AddVSwitch(vs2.DPID, false)
	app.AssignHost(server.IP, vs1.DPID, vs2.DPID)
	app.Protect(edge.DPID, atkPort, cliPort)
	c.ConnectAll()
	if err := app.Build(); err != nil {
		panic(err)
	}

	// 4. Traffic: a 2000 flows/s spoofed-source attack and a legitimate
	//    100 flows/s client.
	cap := capture.New(eng)
	cap.Attach(server)
	atk := workload.StartDDoS(workload.NewEmitter(eng, attacker, cap), server.IP, 2000)
	cli := workload.StartClient(workload.NewEmitter(eng, client, cap), server.IP, 100, 1, 0)

	// 5. Run 15 seconds of virtual time, reporting every 3 seconds.
	eng.Every(3*time.Second, func() {
		fmt.Printf("t=%-4v overlay_active=%-5v requests=%-6d overlay_routed=%-6d physical=%-5d client_failure=%.3f\n",
			eng.Now(), app.Active(edge.DPID), app.Stats.Requests,
			app.Stats.OverlayRouted, app.Stats.PhysicalAdmitted,
			cap.FailureFraction("client"))
	})
	eng.RunUntil(15 * time.Second)
	atk.Stop()
	cli.Stop()
	eng.RunUntil(16 * time.Second)

	fmt.Println()
	fmt.Printf("client flows:  failure fraction = %.3f (paper baseline at this attack rate: ~0.9)\n",
		cap.FailureFraction("client"))
	fmt.Printf("attack flows:  failure fraction = %.3f (absorbed by the overlay, not blocked)\n",
		cap.FailureFraction("attack"))
	fmt.Printf("edge switch:   %d Packet-Ins sent, %d dropped at the OFA\n",
		edge.Stats.PacketInSent, edge.Stats.PacketInDropped)
	fmt.Printf("vs1/vs2:       %d / %d Packet-Ins relayed for the overloaded edge\n",
		vs1.Stats.PacketInSent, vs2.Stats.PacketInSent)
}
