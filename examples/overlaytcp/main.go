// Real-TCP OpenFlow demo: an in-process controller and two live software
// switches exchange actual OpenFlow 1.3 bytes over loopback TCP. The
// second switch plays the Scotch vSwitch role: the controller installs a
// select group at the edge switch that forwards overflow to it.
//
//	go run ./examples/overlaytcp
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/ofnet"
	"scotch/internal/openflow"
	"scotch/internal/packet"
)

// handler wires a miniature Scotch-like policy: flows punted by the edge
// (dpid 1) get a rule sending them to the vSwitch via "tunnel" port 100;
// flows punted by the vSwitch (dpid 2) get a delivery rule to port 1.
type handler struct {
	mu   sync.Mutex
	log  []string
	done chan struct{}
}

func (h *handler) note(format string, args ...any) {
	h.mu.Lock()
	h.log = append(h.log, fmt.Sprintf(format, args...))
	h.mu.Unlock()
	log.Printf(format, args...)
}

func (h *handler) SwitchConnected(sw *ofnet.SwitchConn) {
	h.note("handshake complete: dpid=%d", sw.DPID)
	if sw.DPID == 1 {
		// Select group at the edge: one bucket per vSwitch (just one here).
		sw.GroupMod(&openflow.GroupMod{
			Command: openflow.GroupAdd, GroupType: openflow.GroupTypeSelect, GroupID: 1,
			Buckets: []openflow.Bucket{{Actions: []openflow.Action{openflow.OutputAction(100)}}},
		})
	}
}

func (h *handler) SwitchGone(sw *ofnet.SwitchConn) { h.note("switch gone: dpid=%d", sw.DPID) }

func (h *handler) PacketIn(sw *ofnet.SwitchConn, pin *openflow.PacketIn) {
	pkt, err := packet.Parse(pin.Data)
	if err != nil {
		return
	}
	key := pkt.FlowKey()
	h.note("packet-in over TCP: dpid=%d flow=%v", sw.DPID, key)
	match := openflow.Match{
		Fields:  openflow.FieldEthType | openflow.FieldIPProto | openflow.FieldIPv4Dst,
		EthType: packet.EtherTypeIPv4, IPProto: key.Proto, IPv4Dst: key.Dst,
	}
	out := uint32(1) // delivery port at the vSwitch
	if sw.DPID == 1 {
		out = 0 // edge: use the group instead
	}
	var actions []openflow.Action
	if sw.DPID == 1 {
		actions = []openflow.Action{openflow.GroupAction(1)}
	} else {
		actions = []openflow.Action{openflow.OutputAction(out)}
	}
	sw.Install(&openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 10, Match: match,
		Instructions: []openflow.Instruction{openflow.ApplyActions(actions...)},
	})
	sw.PacketOut(&openflow.PacketOut{
		BufferID: 0xffffffff, InPort: pin.Match.InPort,
		Actions: actions, Data: pin.Data,
	})
}

func main() {
	h := &handler{done: make(chan struct{})}
	ctrl, err := ofnet.NewController("127.0.0.1:0", h)
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	log.Printf("controller listening on %s", ctrl.Addr())

	edge := ofnet.NewLiveSwitch(1, 2)
	vswitch := ofnet.NewLiveSwitch(2, 2)

	// Wire edge port 100 ("tunnel") into the vSwitch's port 100, and the
	// vSwitch's port 1 to the destination host.
	delivered := make(chan netaddr.FlowKey, 64)
	edge.RegisterPort(100, func(p *packet.Packet) { vswitch.Inject(p, 100) })
	vswitch.RegisterPort(1, func(p *packet.Packet) { delivered <- p.FlowKey() })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go edge.DialAndServe(ctx, ctrl.Addr())
	go vswitch.DialAndServe(ctx, ctrl.Addr())

	// Wait for both handshakes.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ctrl.Switch(1) != nil && ctrl.Switch(2) != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Push three new flows through the edge; each takes the reactive trip
	// edge -> controller -> rules at both switches -> delivery.
	for i := 0; i < 3; i++ {
		p := packet.NewTCP(
			netaddr.MakeIPv4(10, 0, 0, byte(i+1)),
			netaddr.MakeIPv4(10, 0, 1, 1),
			uint16(2000+i), 80, packet.FlagSYN)
		edge.Inject(p, 1)
	}

	got := 0
	timeout := time.After(5 * time.Second)
	for got < 3 {
		select {
		case key := <-delivered:
			got++
			log.Printf("delivered end-to-end via TCP-controlled switches: %v", key)
		case <-timeout:
			log.Fatal("timed out waiting for deliveries")
		}
	}
	fmt.Printf("\n%d flows delivered; edge rules=%d vswitch rules=%d (all control traffic was real OpenFlow over TCP)\n",
		got, edge.RuleCount(), vswitch.RuleCount())
}
