// DDoS mitigation on a leaf-spine data center: a spoofed-source attack
// floods one rack's ToR control path while tenants on the same rack keep
// opening legitimate flows. Scotch's ingress-port differentiation confines
// the damage to the attacker's port, and the select-group fan-out spreads
// the surge over the rack's vSwitch pool.
//
//	go run ./examples/ddosmitigation
package main

import (
	"fmt"
	"time"

	"scotch/internal/capture"
	"scotch/internal/scotch"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

func main() {
	eng := sim.New(7)
	lsCfg := topo.DefaultLeafSpineConfig()
	ls := topo.NewLeafSpine(eng, lsCfg)

	_, app, err := scotch.NewLeafSpineDeployment(ls, lsCfg, scotch.DefaultConfig())
	if err != nil {
		panic(err)
	}

	cap := capture.New(eng)
	for _, hosts := range ls.Hosts {
		for _, h := range hosts {
			cap.Attach(h)
		}
	}

	// The attacker is host 0 of rack 0; its victim is a server on rack 3.
	// Two legitimate tenants on the same rack 0 keep working.
	victim := topo.HostIP(3, 0)
	atk := workload.StartDDoS(workload.NewEmitter(eng, ls.Hosts[0][0], cap), victim, 3000)
	t1 := workload.StartClient(workload.NewEmitter(eng, ls.Hosts[0][1], cap), topo.HostIP(2, 1), 60, 3, 5*time.Millisecond)
	t2 := workload.StartClient(workload.NewEmitter(eng, ls.Hosts[0][2], cap), topo.HostIP(1, 2), 60, 3, 5*time.Millisecond)

	eng.Every(5*time.Second, func() {
		leaf0 := ls.Leaves[0]
		fmt.Printf("t=%-4v leaf0_active=%-5v leaf0_pktin_drops=%-6d overlay_routed=%-6d dropped=%-4d tenant_failure=%.3f attack_failure=%.3f\n",
			eng.Now(), app.Active(leaf0.DPID), leaf0.Stats.PacketInDropped,
			app.Stats.OverlayRouted, app.Stats.Dropped,
			cap.FailureFraction("client"), cap.FailureFraction("attack"))
	})

	eng.RunUntil(20 * time.Second)
	atk.Stop()
	t1.Stop()
	t2.Stop()
	eng.RunUntil(22 * time.Second)

	fmt.Println()
	fmt.Printf("tenant flows:  %.1f%% failed, completion %.1f%%\n",
		100*cap.FailureFraction("client"), 100*cap.CompletionFraction("client"))
	fmt.Printf("attack flows:  %.1f%% failed (the overlay absorbed the rest for inspection)\n",
		100*cap.FailureFraction("attack"))
	fmt.Printf("scotch:        %d activations, %d overlay-routed, %d physically admitted, %d dropped\n",
		app.Stats.Activations, app.Stats.OverlayRouted, app.Stats.PhysicalAdmitted, app.Stats.Dropped)
	var relayed uint64
	for _, vs := range ls.VSwitches {
		relayed += vs.Stats.PacketInSent
	}
	fmt.Printf("vswitch pool:  %d Packet-Ins relayed by %d vSwitches\n", relayed, len(ls.VSwitches))
}
