// Policy-consistent migration (paper §5.4): flows must traverse a stateful
// firewall whether they ride the overlay or the physical network. This
// demo runs the same elephant migration twice — once policy-aware (red
// rules pinned through the same firewall instance) and once naively along
// the shortest path (which crosses a *different* firewall with no state
// for the flow) — and shows the second one break.
//
//	go run ./examples/policychain
package main

import (
	"fmt"
	"time"

	"scotch/internal/capture"
	"scotch/internal/controller"
	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/scotch"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

func run(naive bool) {
	eng := sim.New(8)
	net := topo.New(eng)
	prof := device.Pica8Profile()
	s0 := net.AddSwitch("s0", prof)
	sau := net.AddSwitch("sa-u", prof)
	sad := net.AddSwitch("sa-d", prof)
	sbu := net.AddSwitch("sb-u", prof)
	sbd := net.AddSwitch("sb-d", prof)
	s3 := net.AddSwitch("s3", prof)

	slow := device.LinkConfig{Delay: 500 * time.Microsecond, RateBps: 1e9}
	fast := device.LinkConfig{Delay: 100 * time.Microsecond, RateBps: 1e9}
	fwA := device.NewFirewall(eng, "fw-a", 50*time.Microsecond)
	fwB := device.NewFirewall(eng, "fw-b", 50*time.Microsecond)

	// Branch A (policy branch, longer): s0 - sa-u =FW-A= sa-d - s3.
	net.LinkSwitches(s0, sau, slow)
	suOut, sdIn := net.LinkSwitchesVia(sau, fwA, sad, slow)
	net.LinkSwitches(sad, s3, slow)
	// Branch B (shortest): s0 - sb-u =FW-B= sb-d - s3.
	net.LinkSwitches(s0, sbu, fast)
	net.LinkSwitchesVia(sbu, fwB, sbd, fast)
	net.LinkSwitches(sbd, s3, fast)

	client := net.AddHost("client", netaddr.MustParseIPv4("10.0.0.1"))
	server := net.AddHost("server", netaddr.MustParseIPv4("10.0.1.1"))
	cliPort := net.AttachHost(client, s0, fast)
	net.AttachHost(server, s3, fast)
	vs1 := net.AddSwitch("vs1", device.OVSProfile())
	vs2 := net.AddSwitch("vs2", device.OVSProfile())
	net.LinkSwitches(s0, vs1, fast)
	net.LinkSwitches(s3, vs2, fast)

	cfg := scotch.DefaultConfig()
	cfg.NaiveMigration = naive
	cfg.ElephantBytes = 10 << 10
	cfg.OverlayThreshold = 0 // demo: everything starts on the overlay
	cfg.ActivateRate = 5
	cfg.DeactivateRate = 0
	c := controller.New(eng, net)
	app := scotch.New(c, cfg)
	app.AddVSwitch(vs1.DPID, false)
	app.AddVSwitch(vs2.DPID, false)
	app.AssignHost(server.IP, vs2.DPID, 0)
	app.Protect(s0.DPID, cliPort)
	app.AddMiddlebox("fw-a", sau.DPID, sad.DPID, suOut, sdIn)
	cfg2 := app.Cfg
	cfg2.Policy = func(key netaddr.FlowKey) []string {
		if key.Dst == server.IP {
			return []string{"fw-a"}
		}
		return nil
	}
	app.Cfg = cfg2
	c.ConnectAll()
	if err := app.Build(); err != nil {
		panic(err)
	}

	cap := capture.New(eng)
	cap.Attach(server)
	em := workload.NewEmitter(eng, client, cap)
	warm := workload.StartClient(em, server.IP, 100, 1, 0)
	eng.RunUntil(2 * time.Second)
	warm.Stop()

	key := netaddr.FlowKey{Src: client.IP, Dst: server.IP, Proto: netaddr.ProtoTCP, SrcPort: 6000, DstPort: 80}
	em.Start(workload.Flow{Key: key, Packets: 2000, Interval: 2 * time.Millisecond, Size: 1000, Class: "elephant"})
	eng.RunUntil(10 * time.Second)

	mode := "policy-aware (same firewall)"
	if naive {
		mode = "naive shortest-path (different firewall)"
	}
	fl := cap.Flows("elephant")[0]
	fmt.Printf("%-42s migrated=%d  fwA=%d pkts  fwB_rejected=%d  elephant delivered %d/%d\n",
		mode, app.Stats.Migrated, fwA.Passed, fwB.Rejected, fl.PacketsRecv, fl.PacketsSent)
}

func main() {
	fmt.Println("An elephant flow starts on the Scotch overlay (pinned through stateful FW-A),")
	fmt.Println("then gets migrated to a physical path mid-flow:")
	fmt.Println()
	run(false)
	run(true)
	fmt.Println()
	fmt.Println("The naive reroute crosses FW-B, which has no state for the established flow")
	fmt.Println("and rejects it mid-stream - the failure mode paper §5.4 is designed around.")
}
