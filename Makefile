GO ?= go

.PHONY: all build test short race vet doclint linkcheck bench bench-report bench-short bench-shards trace-sample chaos trace-chaos fuzz-short scenario-cdf devolve obs balance cover clean

all: build test

build:
	$(GO) build ./...

# Tier-1 gate: the full test suite (includes determinism properties over the
# fast experiments; set SCOTCH_DETERMINISM_ALL=1 to cover every experiment).
test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

# Race gate: everything that spawns goroutines (ofnet live switches, the
# parallel experiment runner) must be clean under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Documentation gate: every internal package needs a package comment, and
# the scotch/cluster/devolve/elastic/fault packages need docs on every
# exported symbol.
doclint:
	$(GO) run ./cmd/doclint

# Markdown gate: every relative link and heading anchor in the repo's
# markdown must resolve (offline, GitHub anchor rules).
linkcheck:
	$(GO) run ./cmd/linkcheck

# The chaos experiments (§5 reliability mechanisms under injected faults)
# plus the elastic autoscaler cycle and the devolution invalidation run,
# which exercise the same live-mutation paths from the control-loop and
# policy-distribution sides.
chaos:
	$(GO) run ./cmd/scotchsim run chaos-vswitch chaos-partition chaos-churn elastic devolve-invalidate

# Chaos + elastic trace artifact: fault and resize marks with control-path
# spans for the fast experiments (Chrome trace-event JSON).
trace-chaos:
	$(GO) run ./cmd/scotchsim run chaos-partition chaos-churn elastic -trace trace_chaos.json

# Micro + macro benchmarks with allocation counts.
bench:
	$(GO) test -run xxx -bench 'ScheduleFire|LookupHit|LookupMiss' -benchmem ./internal/sim/ ./internal/flowtable/
	$(GO) test -run xxx -bench 'Suite' -benchmem .

# Regenerate BENCH_scotch.json: the full suite serial vs parallel.
bench-report:
	$(GO) run ./cmd/scotchsim bench -out BENCH_scotch.json

# CI-sized bench report: the fastest experiments only, same JSON schema.
bench-short:
	$(GO) run ./cmd/scotchsim bench -out BENCH_scotch.json fig14 fig4 table1 cluster-scale devolve-ablation devolve-invalidate

# Partitioned event core: benchmark the shardable experiments on the
# sharded engine (2 workers) and pin byte-identical serial-vs-sharded
# output, including under the race detector (reduced matrix there; set
# SCOTCH_DETERMINISM_ALL=1 on the test for the full six-experiment one).
bench-shards:
	$(GO) run ./cmd/scotchsim -shards 2 bench -out BENCH_shards.json fig13 ablation-elephant-threshold ablation-withdrawal
	$(GO) test -run TestShardedByteIdentical ./internal/experiments/
	$(GO) test -race -run TestShardedByteIdentical ./internal/experiments/

# Sample control-path trace (Chrome trace-event JSON, loadable in
# chrome://tracing / Perfetto).
trace-sample:
	$(GO) run ./cmd/scotchsim run fig14 -trace trace_fig14.json

# Short fuzz pass over every native fuzz target (trace parsers and the
# OpenFlow codec), a few seconds each; new findings land in the build cache,
# reproducers in testdata/fuzz/.
fuzz-short:
	$(GO) test -run xxx -fuzz FuzzTraceCSV -fuzztime 5s ./internal/workload/
	$(GO) test -run xxx -fuzz FuzzTraceJSONL -fuzztime 5s ./internal/workload/
	$(GO) test -run xxx -fuzz FuzzMessageRoundTrip -fuzztime 5s ./internal/openflow/
	$(GO) test -run xxx -fuzz FuzzMatchRoundTrip -fuzztime 5s ./internal/openflow/

# Per-tenant flow-setup latency CDF table from the multi-tenant scenario
# (the CI artifact proving the DDoS-isolation bound).
scenario-cdf:
	$(GO) run ./cmd/scotchsim run scenario-multitenant | tee scenario_multitenant.txt

# Devolution ablation + invalidation tables (the CI artifact proving the
# pool-factor Packet-In reduction and the no-stale-policy invariants).
devolve:
	$(GO) run ./cmd/scotchsim run devolve-ablation devolve-invalidate | tee devolve_ablation.txt

# Observatory health digest for the SLO burn experiment (the CI artifact
# proving the healthy -> burning -> healthy verdict cycle), as text and
# as the health_obs_slo.json machine-readable digest.
obs:
	$(GO) run ./cmd/scotchsim run obs-slo -health -health-json health_obs_slo.json | tee obs_slo.txt

# Joint-elasticity balancer experiments (the CI artifact proving the
# grow-while-migrating interleave with zero client loss and the
# burn-driven replica scale-out/retire cycle), with per-rig health
# digests in health_balance.json.
balance:
	$(GO) run ./cmd/scotchsim run elastic-under-migration replica-scale-out -health -health-json health_balance.json | tee balance.txt

# Coverage over the deterministic packages, with a per-function summary.
cover:
	$(GO) test -short -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1
	@echo "full per-function breakdown: go tool cover -func=coverage.out"

clean:
	$(GO) clean ./...
	rm -f coverage.out trace_fig14.json trace_chaos.json scenario_multitenant.txt devolve_ablation.txt obs_slo.txt health_obs_slo.json balance.txt health_balance.json
