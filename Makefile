GO ?= go

.PHONY: all build test short race vet bench bench-report clean

all: build test

build:
	$(GO) build ./...

# Tier-1 gate: the full test suite (includes determinism properties over the
# fast experiments; set SCOTCH_DETERMINISM_ALL=1 to cover every experiment).
test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

# Race gate: everything that spawns goroutines (ofnet live switches, the
# parallel experiment runner) must be clean under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Micro + macro benchmarks with allocation counts.
bench:
	$(GO) test -run xxx -bench 'ScheduleFire|LookupHit|LookupMiss' -benchmem ./internal/sim/ ./internal/flowtable/
	$(GO) test -run xxx -bench 'Suite' -benchmem .

# Regenerate BENCH_scotch.json: the full suite serial vs parallel.
bench-report:
	$(GO) run ./cmd/scotchsim bench -out BENCH_scotch.json

clean:
	$(GO) clean ./...
