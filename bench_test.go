// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (plus the DESIGN.md ablations). Each benchmark iteration runs
// the full deterministic experiment that regenerates the corresponding
// result; see EXPERIMENTS.md for paper-vs-measured values. These are
// macro-benchmarks — wall time per op is the cost of reproducing the whole
// figure.
//
//	go test -bench=. -benchmem .
package scotch_test

import (
	"context"
	"io"
	"runtime"
	"testing"

	"scotch/internal/experiments"
)

func suiteIDs() []string {
	var ids []string
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// BenchmarkSuiteSerial runs every registered experiment back to back on one
// worker: the baseline for the parallel runner's speedup.
func BenchmarkSuiteSerial(b *testing.B) {
	ids := suiteIDs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(context.Background(), ids, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteParallel runs the full suite on a runtime.NumCPU()-worker
// pool. Each experiment owns a private engine, so per-op wall time shrinks
// toward the longest single experiment as cores are added while the
// concatenated output stays byte-identical to the serial run.
func BenchmarkSuiteParallel(b *testing.B) {
	ids := suiteIDs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(context.Background(), ids, runtime.NumCPU()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Profiles regenerates the calibrated equipment table
// (paper §3.2 testbed description).
func BenchmarkTable1Profiles(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig3FailureFraction regenerates Fig. 3: client flow failure
// fraction vs attack rate for the three switch models.
func BenchmarkFig3FailureFraction(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4ControlPathProfile regenerates Fig. 4: Packet-In rate, rule
// install rate and success rate coincide and saturate at the OFA limit.
func BenchmarkFig4ControlPathProfile(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig8PolicyConsistency regenerates the §5.4 policy-consistency
// comparison (same-middlebox vs naive migration).
func BenchmarkFig8PolicyConsistency(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9InsertionRate regenerates Fig. 9: successful vs attempted
// flow-rule insertion rate.
func BenchmarkFig9InsertionRate(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10DataControlInteraction regenerates Fig. 10: data-path loss
// vs rule insertion rate at three data rates.
func BenchmarkFig10DataControlInteraction(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11IngressDifferentiation regenerates the ingress-port
// differentiation experiment (reconstructed from the §6 roadmap).
func BenchmarkFig11IngressDifferentiation(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12OverlayScaling regenerates the overlay capacity scaling
// experiment (reconstructed).
func BenchmarkFig12OverlayScaling(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13ElephantMigration regenerates the large-flow migration
// experiment (reconstructed).
func BenchmarkFig13ElephantMigration(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14OverlayDelay regenerates the overlay relay delay
// experiment (reconstructed).
func BenchmarkFig14OverlayDelay(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15TraceDriven regenerates the trace-driven flash-crowd
// experiment on the leaf-spine data center (reconstructed).
func BenchmarkFig15TraceDriven(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkAblationGroupSelectVsSingleVswitch sweeps the select-group
// fan-out width.
func BenchmarkAblationGroupSelectVsSingleVswitch(b *testing.B) {
	benchExperiment(b, "ablation-fanout")
}

// BenchmarkAblationMigrationThreshold sweeps the elephant byte threshold.
func BenchmarkAblationMigrationThreshold(b *testing.B) {
	benchExperiment(b, "ablation-elephant-threshold")
}

// BenchmarkAblationInstallRate sweeps the install pacing rate R against
// insertion failures and data-path stall.
func BenchmarkAblationInstallRate(b *testing.B) {
	benchExperiment(b, "ablation-scheduler")
}

// BenchmarkAblationPriorityScheduler compares the paper's priority
// scheduler with a single FIFO install queue.
func BenchmarkAblationPriorityScheduler(b *testing.B) {
	benchExperiment(b, "ablation-fifo-scheduler")
}

// BenchmarkAblationWithdrawal compares automatic withdrawal with leaving
// the overlay engaged after the surge.
func BenchmarkAblationWithdrawal(b *testing.B) {
	benchExperiment(b, "ablation-withdrawal")
}

// BenchmarkChaosVSwitch regenerates the mesh-vSwitch crash experiment:
// backup promotion under a sustained attack.
func BenchmarkChaosVSwitch(b *testing.B) { benchExperiment(b, "chaos-vswitch") }

// BenchmarkChaosPartition regenerates the controller partition/heal
// experiment: failover detection plus stale-master fencing.
func BenchmarkChaosPartition(b *testing.B) { benchExperiment(b, "chaos-partition") }

// BenchmarkChaosChurn regenerates the link-flap churn experiment:
// overlay deploy/withdraw cycling under §5.5 withdrawal.
func BenchmarkChaosChurn(b *testing.B) { benchExperiment(b, "chaos-churn") }

// BenchmarkElastic regenerates the elastic-pool experiment: the
// autoscaler grows the mesh under a ramping attack and drains it back.
func BenchmarkElastic(b *testing.B) { benchExperiment(b, "elastic") }
