package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"scotch/internal/experiments"
)

// ExperimentResult is one experiment's measured cost. An "op" is one full
// run of the experiment (the regeneration of one paper figure/table).
type ExperimentResult struct {
	ID          string `json:"id"`
	NsPerOp     int64  `json:"ns_per_op"`     // serial wall time per run
	AllocsPerOp uint64 `json:"allocs_per_op"` // heap allocations per run
	BytesPerOp  uint64 `json:"bytes_per_op"`  // heap bytes per run
	ParallelNs  int64  `json:"parallel_ns"`   // wall time on its worker in the parallel run
	OutputBytes int    `json:"output_bytes"`  // size of the experiment's output
}

// Report is the schema of BENCH_scotch.json.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	Cores         int    `json:"cores"`
	// Parallelism is the worker count the parallel pass actually ran
	// with; RequestedParallelism is what the caller asked for before
	// clamping to the schedulable CPU count. A speedup is only
	// meaningful against Parallelism.
	Parallelism          int `json:"parallelism"`
	RequestedParallelism int `json:"requested_parallelism"`
	// Warning is set when the request was clamped: more workers than
	// schedulable CPUs cannot speed anything up, they only time-slice.
	Warning         string             `json:"warning,omitempty"`
	SerialWallNs    int64              `json:"serial_wall_ns"`
	ParallelWallNs  int64              `json:"parallel_wall_ns"`
	Speedup         float64            `json:"speedup"` // serial wall / parallel wall
	OutputIdentical bool               `json:"output_identical"`
	Experiments     []ExperimentResult `json:"experiments"`
}

// SchemaVersion identifies the report layout; bump on incompatible change.
// v2 added requested_parallelism/warning and clamped parallelism to the
// schedulable CPU count. v3 made the serial and parallel passes
// measured identically: both run warm (after an untimed warm-up pass),
// where v2 timed a cold serial pass against a warm parallel pass and so
// overstated the parallel speedup.
const SchemaVersion = 3

// Collect runs the given experiments serially (measuring per-experiment
// wall time and allocations) and then through the parallel runner, and
// assembles the comparison report. ids defaults to every registered
// experiment; parallelism <= 0 means runtime.GOMAXPROCS(0).
//
// Parallelism is clamped to runtime.GOMAXPROCS(0): a report claiming a
// 4-worker speedup measured on one schedulable CPU would be fiction, so
// the clamp is recorded (RequestedParallelism, Warning) rather than
// silently honored.
func Collect(ctx context.Context, ids []string, parallelism int) (*Report, error) {
	if len(ids) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	maxProcs := runtime.GOMAXPROCS(0)
	requested := parallelism
	if parallelism <= 0 {
		requested = maxProcs
		parallelism = maxProcs
	}
	var warning string
	if parallelism > maxProcs {
		warning = fmt.Sprintf("requested parallelism %d exceeds %d schedulable CPUs; clamped (speedup would be meaningless)",
			parallelism, maxProcs)
		fmt.Fprintln(os.Stderr, "bench:", warning)
		parallelism = maxProcs
	}

	// Untimed warm-up: every experiment runs once before anything is
	// measured. Without it the serial pass (first) would pay one-time
	// process costs — lazy initialization, heap growth, code paths still
	// cold in the branch predictor — that the parallel pass (second)
	// would not, overstating the speedup. After the warm-up the two
	// measured passes see the same process state.
	if _, err := experiments.RunAll(ctx, ids, parallelism); err != nil {
		return nil, err
	}

	// Serial pass: parallelism 1 keeps every run single-threaded so the
	// runtime.MemStats deltas below are attributable per experiment. The
	// GC before each run keeps the deltas free of another run's debris.
	var ms0, ms1 runtime.MemStats
	serial := make([]experiments.RunResult, 0, len(ids))
	allocs := make([]uint64, 0, len(ids))
	heap := make([]uint64, 0, len(ids))
	var serialWall time.Duration
	for _, id := range ids {
		runtime.GC() // outside the timed window; the parallel pass gets the same treatment
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		res, err := experiments.RunAll(ctx, []string{id}, 1)
		if err != nil {
			return nil, err
		}
		serialWall += time.Since(start)
		runtime.ReadMemStats(&ms1)
		serial = append(serial, res[0])
		allocs = append(allocs, ms1.Mallocs-ms0.Mallocs)
		heap = append(heap, ms1.TotalAlloc-ms0.TotalAlloc)
	}

	runtime.GC()
	parallelStart := time.Now()
	parallel, err := experiments.RunAll(ctx, ids, parallelism)
	if err != nil {
		return nil, err
	}
	parallelWall := time.Since(parallelStart)

	var serialOut, parallelOut bytes.Buffer
	experiments.WriteResults(&serialOut, serial)
	experiments.WriteResults(&parallelOut, parallel)

	r := &Report{
		SchemaVersion:        SchemaVersion,
		GoVersion:            runtime.Version(),
		Cores:                runtime.NumCPU(),
		Parallelism:          parallelism,
		RequestedParallelism: requested,
		Warning:              warning,
		SerialWallNs:         serialWall.Nanoseconds(),
		ParallelWallNs:       parallelWall.Nanoseconds(),
		OutputIdentical:      bytes.Equal(serialOut.Bytes(), parallelOut.Bytes()),
	}
	if parallelWall > 0 {
		r.Speedup = float64(serialWall) / float64(parallelWall)
	}
	for i := range serial {
		r.Experiments = append(r.Experiments, ExperimentResult{
			ID:          serial[i].ID,
			NsPerOp:     serial[i].Wall.Nanoseconds(),
			AllocsPerOp: allocs[i],
			BytesPerOp:  heap[i],
			ParallelNs:  parallel[i].Wall.Nanoseconds(),
			OutputBytes: len(serial[i].Output),
		})
	}
	return r, nil
}

// WriteFile writes the report as indented JSON to path.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
