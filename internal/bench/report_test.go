package bench

import (
	"context"
	"runtime"
	"strings"
	"testing"
)

// TestParallelismClampedToSchedulableCPUs pins the fix for a misleading
// report shape this repo actually shipped: BENCH_scotch.json claiming a
// multi-worker "speedup" measured with parallelism 4 on a single
// schedulable CPU, where the workers can only time-slice. Collect must
// clamp to runtime.GOMAXPROCS(0) and record both the request and the
// clamp instead of honoring it silently.
func TestParallelismClampedToSchedulableCPUs(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	r, err := Collect(context.Background(), []string{"table1"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.SchemaVersion != 2 {
		t.Errorf("schema version = %d, want 2", r.SchemaVersion)
	}
	if r.Parallelism != 1 {
		t.Errorf("effective parallelism = %d, want clamped to 1", r.Parallelism)
	}
	if r.RequestedParallelism != 4 {
		t.Errorf("requested parallelism = %d, want 4 preserved", r.RequestedParallelism)
	}
	if !strings.Contains(r.Warning, "clamped") {
		t.Errorf("warning = %q, want a clamp explanation", r.Warning)
	}
}

// TestDefaultParallelismIsSchedulable pins the default: parallelism <= 0
// selects the schedulable CPU count (GOMAXPROCS), not the physical core
// count, and an honorable request leaves no warning behind.
func TestDefaultParallelismIsSchedulable(t *testing.T) {
	r, err := Collect(context.Background(), []string{"table1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := runtime.GOMAXPROCS(0)
	if r.Parallelism != want || r.RequestedParallelism != want {
		t.Errorf("parallelism = %d/%d, want %d/%d",
			r.Parallelism, r.RequestedParallelism, want, want)
	}
	if r.Warning != "" {
		t.Errorf("warning = %q, want none for an in-bounds request", r.Warning)
	}
	if !r.OutputIdentical {
		t.Error("serial and parallel outputs differ")
	}
}
