package bench

import (
	"context"
	"runtime"
	"strings"
	"testing"
)

// TestParallelismClampedToSchedulableCPUs pins the fix for a misleading
// report shape this repo actually shipped: BENCH_scotch.json claiming a
// multi-worker "speedup" measured with parallelism 4 on a single
// schedulable CPU, where the workers can only time-slice. Collect must
// clamp to runtime.GOMAXPROCS(0) and record both the request and the
// clamp instead of honoring it silently.
func TestParallelismClampedToSchedulableCPUs(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	r, err := Collect(context.Background(), []string{"table1"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.SchemaVersion != SchemaVersion {
		t.Errorf("schema version = %d, want %d", r.SchemaVersion, SchemaVersion)
	}
	if r.Parallelism != 1 {
		t.Errorf("effective parallelism = %d, want clamped to 1", r.Parallelism)
	}
	if r.RequestedParallelism != 4 {
		t.Errorf("requested parallelism = %d, want 4 preserved", r.RequestedParallelism)
	}
	if !strings.Contains(r.Warning, "clamped") {
		t.Errorf("warning = %q, want a clamp explanation", r.Warning)
	}
}

// TestDefaultParallelismIsSchedulable pins the default: parallelism <= 0
// selects the schedulable CPU count (GOMAXPROCS), not the physical core
// count, and an honorable request leaves no warning behind.
func TestDefaultParallelismIsSchedulable(t *testing.T) {
	r, err := Collect(context.Background(), []string{"table1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := runtime.GOMAXPROCS(0)
	if r.Parallelism != want || r.RequestedParallelism != want {
		t.Errorf("parallelism = %d/%d, want %d/%d",
			r.Parallelism, r.RequestedParallelism, want, want)
	}
	if r.Warning != "" {
		t.Errorf("warning = %q, want none for an in-bounds request", r.Warning)
	}
	if !r.OutputIdentical {
		t.Error("serial and parallel outputs differ")
	}
}

// TestWarmMeasurementAgreement pins the v3 fairness fix: with both
// passes measured warm and parallelism forced to 1, the serial and
// parallel passes run the exact same work in the same conditions, so
// each experiment's two wall times must agree within scheduling noise.
// Pre-fix, the serial pass ran cold (first in the process) and the
// parallel pass warm, so the serial numbers carried one-time costs the
// parallel numbers did not — on this repo's suite that alone
// manufactured a phantom "speedup" above the noise bound below.
func TestWarmMeasurementAgreement(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	r, err := Collect(context.Background(), []string{"fig14", "devolve-invalidate"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OutputIdentical {
		t.Fatal("serial and parallel outputs differ")
	}
	for _, e := range r.Experiments {
		if e.NsPerOp <= 0 || e.ParallelNs <= 0 {
			t.Fatalf("%s: non-positive wall time (%d serial, %d parallel)", e.ID, e.NsPerOp, e.ParallelNs)
		}
		ratio := float64(e.NsPerOp) / float64(e.ParallelNs)
		if ratio < 1.0/3 || ratio > 3 {
			t.Errorf("%s: serial %dns vs parallel %dns (ratio %.2f); warm passes at parallelism 1 must agree within noise",
				e.ID, e.NsPerOp, e.ParallelNs, ratio)
		}
	}
	if r.Speedup < 1.0/3 || r.Speedup > 3 {
		t.Errorf("aggregate speedup %.2f at parallelism 1; want ~1 within noise", r.Speedup)
	}
}
