// Package bench measures the experiment suite and writes a
// machine-readable performance report (BENCH_scotch.json), so successive
// PRs can track the perf trajectory: per-experiment wall time and
// allocation cost, plus the wall-clock speedup of the parallel runner
// over a serial run. This is repository infrastructure — it measures the
// reproduction itself, not anything from the paper.
package bench
