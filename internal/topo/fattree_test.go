package topo

import (
	"testing"

	"scotch/internal/netaddr"
	"scotch/internal/sim"
)

// TestFatTreeCounts builds a full k=4 fat-tree and checks every structural
// count against the 5k^2/4 / k^3/4 formulas.
func TestFatTreeCounts(t *testing.T) {
	eng := sim.New(1)
	ft := NewFatTree(eng, DefaultFatTreeConfig(4))
	wantSw, wantHosts := FatTreeCapacity(4)
	if wantSw != 20 || wantHosts != 16 {
		t.Fatalf("capacity(4) = %d switches, %d hosts; want 20, 16", wantSw, wantHosts)
	}
	if got := len(ft.Core); got != 4 {
		t.Errorf("core switches = %d, want 4", got)
	}
	sw := len(ft.Core)
	hosts := 0
	for p := 0; p < 4; p++ {
		sw += len(ft.Agg[p]) + len(ft.Edge[p])
		hosts += len(ft.Hosts[p])
	}
	if sw != wantSw {
		t.Errorf("switches built = %d, want %d", sw, wantSw)
	}
	if hosts != wantHosts {
		t.Errorf("hosts built = %d, want %d", hosts, wantHosts)
	}
	if got := len(ft.VSwitches); got != 4*2 {
		t.Errorf("vswitches = %d, want 8", got)
	}
	for _, vs := range ft.VSwitches {
		if _, ok := ft.VSwitchPod[vs.DPID]; !ok {
			t.Errorf("vswitch %d missing from pod index", vs.DPID)
		}
	}
}

// TestFatTreePaths requires a route between hosts in different pods (via
// core), the same pod (via aggregation), and the same edge switch.
func TestFatTreePaths(t *testing.T) {
	eng := sim.New(1)
	ft := NewFatTree(eng, DefaultFatTreeConfig(4))
	cases := []struct {
		name     string
		src, dst netaddr.IPv4
		maxHops  int
	}{
		{"cross-pod", FatTreeHostIP(0, 0, 0), FatTreeHostIP(3, 1, 1), 6},
		{"same-pod", FatTreeHostIP(1, 0, 0), FatTreeHostIP(1, 1, 0), 4},
		{"same-edge", FatTreeHostIP(2, 0, 0), FatTreeHostIP(2, 0, 1), 2},
	}
	for _, tc := range cases {
		from := ft.EdgeOf[tc.src]
		hops, ok := ft.Net.Path(from, tc.dst)
		if !ok {
			t.Errorf("%s: no path from edge %d to %v", tc.name, from, tc.dst)
			continue
		}
		if len(hops) == 0 || len(hops) > tc.maxHops {
			t.Errorf("%s: path has %d hops, want 1..%d", tc.name, len(hops), tc.maxHops)
		}
	}
}

// TestFatTreeSubsampledHosts checks that HostsPerEdge < k/2 instantiates
// fewer hosts while the full slot range stays addressable.
func TestFatTreeSubsampledHosts(t *testing.T) {
	eng := sim.New(1)
	cfg := DefaultFatTreeConfig(8)
	cfg.HostsPerEdge = 1
	ft := NewFatTree(eng, cfg)
	total := 0
	for _, hs := range ft.Hosts {
		total += len(hs)
	}
	if want := 8 * 4 * 1; total != want {
		t.Fatalf("instantiated hosts = %d, want %d", total, want)
	}
	// The address plan still covers every slot of the full tree.
	if _, hosts := FatTreeCapacity(8); hosts != 128 {
		t.Fatalf("capacity(8) hosts = %d, want 128", hosts)
	}
	last := FatTreeHostIP(7, 3, 3)
	if !FatTreePrefix().Contains(last) {
		t.Errorf("host address %v outside fabric prefix %v", last, FatTreePrefix())
	}
}

// TestFatTreeMillionHostPlan pins the scale target from ROADMAP item 2:
// a k=160 fat-tree has >= 10^6 addressable host slots and thousands of
// switches, every slot address is unique by construction (distinct
// pod/edge/id byte triples), and all of them fall inside the fabric's /8.
func TestFatTreeMillionHostPlan(t *testing.T) {
	sw, hosts := FatTreeCapacity(160)
	if hosts < 1_000_000 {
		t.Fatalf("capacity(160) hosts = %d, want >= 1e6", hosts)
	}
	if sw < 1000 {
		t.Fatalf("capacity(160) switches = %d, want thousands", sw)
	}
	if hosts > int(FatTreePrefix().NumAddrs()) {
		t.Fatalf("host slots %d exceed prefix capacity %d", hosts, FatTreePrefix().NumAddrs())
	}
	// Corners of the address plan: distinct and inside the prefix.
	corners := []netaddr.IPv4{
		FatTreeHostIP(0, 0, 0),
		FatTreeHostIP(0, 0, 79),
		FatTreeHostIP(0, 79, 0),
		FatTreeHostIP(159, 0, 0),
		FatTreeHostIP(159, 79, 79),
	}
	seen := make(map[netaddr.IPv4]bool)
	for _, ip := range corners {
		if seen[ip] {
			t.Errorf("duplicate corner address %v", ip)
		}
		seen[ip] = true
		if !FatTreePrefix().Contains(ip) {
			t.Errorf("corner address %v outside %v", ip, FatTreePrefix())
		}
	}
	// Uniqueness across the whole plan follows from the byte layout:
	// pod < 160, edge < 80, id = host+2 < 82 each fit one octet, so the
	// (pod, edge, id) triple is the address. Spot-check adjacent slots.
	if FatTreeHostIP(1, 2, 3) == FatTreeHostIP(1, 3, 2) {
		t.Error("address plan collides across edge/host transposition")
	}
}

// TestFatTreeThousandSwitchBuild instantiates a k=16 tree (320 switches,
// 1024 host slots) to prove the builder scales past toy sizes, with hosts
// subsampled to keep the test fast.
func TestFatTreeThousandSwitchBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 320-switch fabric")
	}
	eng := sim.New(1)
	cfg := DefaultFatTreeConfig(16)
	cfg.HostsPerEdge = 1
	ft := NewFatTree(eng, cfg)
	sw := len(ft.Core)
	for p := range ft.Agg {
		sw += len(ft.Agg[p]) + len(ft.Edge[p])
	}
	if want, _ := FatTreeCapacity(16); sw != want {
		t.Fatalf("switches = %d, want %d", sw, want)
	}
	// A cross-pod route still resolves at this scale.
	src, dst := FatTreeHostIP(0, 0, 0), FatTreeHostIP(15, 7, 0)
	if _, ok := ft.Net.Path(ft.EdgeOf[src], dst); !ok {
		t.Fatal("no cross-pod path in k=16 fabric")
	}
}
