package topo

import (
	"fmt"
	"time"

	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/sim"
)

// FatTreeConfig shapes a k-ary fat-tree fabric (Al-Fares et al.): (k/2)^2
// core switches, k pods of k/2 aggregation and k/2 edge switches each, and
// up to k/2 hosts per edge switch.
type FatTreeConfig struct {
	// K is the fat-tree arity; it must be even and >= 2. A k-ary tree has
	// 5k^2/4 switches and k^3/4 host slots: k=8 is 80 switches, k=160
	// crosses a million addressable hosts (see FatTreeCapacity).
	K int
	// HostsPerEdge instantiates this many hosts per edge switch (default
	// and maximum k/2). The address plan always covers the full k/2 —
	// subsampling keeps huge fabrics simulable while every host slot
	// remains addressable through FatTreeHostIP.
	HostsPerEdge int
	// VSwitchesPerPod is the per-pod Scotch vSwitch pool, attached
	// round-robin to the pod's edge switches.
	VSwitchesPerPod int

	CoreProfile    device.Profile
	AggProfile     device.Profile
	EdgeProfile    device.Profile
	VSwitchProfile device.Profile

	FabricDelay time.Duration // core-agg and agg-edge link delay
	EdgeDelay   time.Duration // host and vSwitch attachment delay
	FabricBps   float64
	EdgeBps     float64
}

// DefaultFatTreeConfig returns the configuration the scenario experiments
// use: Pica8 hardware switches, OVS vSwitch pool, 10G fabric.
func DefaultFatTreeConfig(k int) FatTreeConfig {
	return FatTreeConfig{
		K:               k,
		HostsPerEdge:    k / 2,
		VSwitchesPerPod: 2,
		CoreProfile:     device.Pica8Profile(),
		AggProfile:      device.Pica8Profile(),
		EdgeProfile:     device.Pica8Profile(),
		VSwitchProfile:  device.OVSProfile(),
		FabricDelay:     100 * time.Microsecond,
		EdgeDelay:       20 * time.Microsecond,
		FabricBps:       10e9,
		EdgeBps:         1e9,
	}
}

// FatTree is a built fat-tree fabric plus the indexes Scotch deployment
// needs.
type FatTree struct {
	Net *Network
	Cfg FatTreeConfig

	Core []*device.Switch
	Agg  [][]*device.Switch // [pod][i]
	Edge [][]*device.Switch // [pod][i]
	// Hosts holds the instantiated hosts: [pod][edge*HostsPerEdge+h].
	Hosts [][]*device.Host
	// VSwitches is the Scotch pool, grouped per pod.
	VSwitches []*device.Switch
	// VSwitchPod maps a vSwitch dpid to its pod.
	VSwitchPod map[uint64]int
	// HostPod maps a host address to its pod.
	HostPod map[netaddr.IPv4]int
	// EdgeOf maps a host address to its edge switch dpid.
	EdgeOf map[netaddr.IPv4]uint64
}

// FatTreeHostIP returns the address of host slot h of edge switch e in
// pod p, following the paper's 10.pod.switch.id plan (host ids start at
// 2). Valid for any k <= 160, whose k^3/4 = 1,024,000 slots all receive
// distinct addresses inside netaddr.Prefix 10.0.0.0/8.
func FatTreeHostIP(pod, edge, host int) netaddr.IPv4 {
	return netaddr.MakeIPv4(10, byte(pod), byte(edge), byte(host+2))
}

// FatTreePrefix is the fabric's address plan: every FatTreeHostIP falls
// inside it, and its 2^24 addresses comfortably cover the 10^6-host scale
// target.
func FatTreePrefix() netaddr.Prefix {
	return netaddr.MustParsePrefix("10.0.0.0/8")
}

// FatTreeCapacity returns the switch and host-slot counts of a k-ary
// fat-tree: 5k^2/4 switches and k^3/4 hosts.
func FatTreeCapacity(k int) (switches, hosts int) {
	return 5 * k * k / 4, k * k * k / 4
}

// NewFatTree builds the fabric. It panics on an odd or non-positive K, or
// an oversized HostsPerEdge — a malformed fabric is a configuration bug.
func NewFatTree(eng sim.Proc, cfg FatTreeConfig) *FatTree {
	k := cfg.K
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree arity %d must be even and >= 2", k))
	}
	half := k / 2
	if cfg.HostsPerEdge == 0 {
		cfg.HostsPerEdge = half
	}
	if cfg.HostsPerEdge > half {
		panic(fmt.Sprintf("topo: %d hosts per edge exceeds k/2 = %d", cfg.HostsPerEdge, half))
	}
	if k > 160 {
		panic(fmt.Sprintf("topo: fat-tree arity %d exceeds the 10.pod.switch.id address plan (max 160)", k))
	}

	n := New(eng)
	ft := &FatTree{
		Net:        n,
		Cfg:        cfg,
		VSwitchPod: make(map[uint64]int),
		HostPod:    make(map[netaddr.IPv4]int),
		EdgeOf:     make(map[netaddr.IPv4]uint64),
	}

	fabric := device.LinkConfig{Delay: cfg.FabricDelay, RateBps: cfg.FabricBps}
	edge := device.LinkConfig{Delay: cfg.EdgeDelay, RateBps: cfg.EdgeBps}

	for c := 0; c < half*half; c++ {
		ft.Core = append(ft.Core, n.AddSwitch(fmt.Sprintf("core%d", c), cfg.CoreProfile))
	}
	for p := 0; p < k; p++ {
		var aggs, edges []*device.Switch
		for a := 0; a < half; a++ {
			ag := n.AddSwitch(fmt.Sprintf("agg%d-%d", p, a), cfg.AggProfile)
			aggs = append(aggs, ag)
			// Aggregation switch a of every pod uplinks to the same core
			// stripe: cores a*k/2 .. a*k/2+k/2-1.
			for c := 0; c < half; c++ {
				n.LinkSwitches(ag, ft.Core[a*half+c], fabric)
			}
		}
		var hosts []*device.Host
		for e := 0; e < half; e++ {
			ed := n.AddSwitch(fmt.Sprintf("edge%d-%d", p, e), cfg.EdgeProfile)
			edges = append(edges, ed)
			for _, ag := range aggs {
				n.LinkSwitches(ed, ag, fabric)
			}
			for h := 0; h < cfg.HostsPerEdge; h++ {
				ip := FatTreeHostIP(p, e, h)
				host := n.AddHost(fmt.Sprintf("h%d-%d-%d", p, e, h), ip)
				n.AttachHost(host, ed, edge)
				hosts = append(hosts, host)
				ft.HostPod[ip] = p
				ft.EdgeOf[ip] = ed.DPID
			}
		}
		for v := 0; v < cfg.VSwitchesPerPod; v++ {
			vs := n.AddSwitch(fmt.Sprintf("vs%d-%d", p, v), cfg.VSwitchProfile)
			n.LinkSwitches(edges[v%half], vs, edge)
			ft.VSwitches = append(ft.VSwitches, vs)
			ft.VSwitchPod[vs.DPID] = p
		}
		ft.Agg = append(ft.Agg, aggs)
		ft.Edge = append(ft.Edge, edges)
		ft.Hosts = append(ft.Hosts, hosts)
	}

	return ft
}

// PodVSwitches returns pod p's slice of the vSwitch pool.
func (ft *FatTree) PodVSwitches(p int) []*device.Switch {
	per := ft.Cfg.VSwitchesPerPod
	return ft.VSwitches[p*per : (p+1)*per]
}

// AllHosts returns every instantiated host in pod order.
func (ft *FatTree) AllHosts() []*device.Host {
	var out []*device.Host
	for _, hs := range ft.Hosts {
		out = append(out, hs...)
	}
	return out
}
