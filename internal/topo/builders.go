package topo

import (
	"fmt"
	"time"

	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/sim"
)

// Testbed reproduces the paper's Fig. 2 experiment setup: one switch under
// test with an attacker, a client, and a server on its data ports.
type Testbed struct {
	Net      *Network
	Switch   *device.Switch
	Attacker *device.Host
	Client   *device.Host
	Server   *device.Host
}

// NewTestbed builds the single-switch testbed with the given profile.
func NewTestbed(eng sim.Proc, prof device.Profile) *Testbed {
	n := New(eng)
	sw := n.AddSwitch("sut", prof)
	link := device.LinkConfig{Delay: 50 * time.Microsecond}
	tb := &Testbed{
		Net:      n,
		Switch:   sw,
		Attacker: n.AddHost("attacker", netaddr.MakeIPv4(10, 0, 0, 66)),
		Client:   n.AddHost("client", netaddr.MakeIPv4(10, 0, 0, 10)),
		Server:   n.AddHost("server", netaddr.MakeIPv4(10, 0, 1, 1)),
	}
	n.AttachHost(tb.Attacker, sw, link)
	n.AttachHost(tb.Client, sw, link)
	n.AttachHost(tb.Server, sw, link)
	return tb
}

// LeafSpineConfig shapes a data-center fabric.
type LeafSpineConfig struct {
	Spines       int
	Leaves       int
	HostsPerLeaf int
	// VSwitchesPerLeaf is the size of the per-rack Scotch vSwitch pool
	// (the paper suggests "two Scotch vswitches at each rack").
	VSwitchesPerLeaf int

	LeafProfile    device.Profile // hardware ToR switches
	SpineProfile   device.Profile
	VSwitchProfile device.Profile

	FabricDelay time.Duration // leaf-spine link delay
	EdgeDelay   time.Duration // host/vswitch attachment delay
	FabricBps   float64
	EdgeBps     float64
}

// DefaultLeafSpineConfig returns the configuration used by the paper-scale
// experiments: Pica8 ToRs, OVS vSwitch pool, 10G fabric.
func DefaultLeafSpineConfig() LeafSpineConfig {
	return LeafSpineConfig{
		Spines:           2,
		Leaves:           4,
		HostsPerLeaf:     4,
		VSwitchesPerLeaf: 2,
		LeafProfile:      device.Pica8Profile(),
		SpineProfile:     device.Pica8Profile(),
		VSwitchProfile:   device.OVSProfile(),
		FabricDelay:      100 * time.Microsecond,
		EdgeDelay:        20 * time.Microsecond,
		FabricBps:        10e9,
		EdgeBps:          1e9,
	}
}

// LeafSpine is a built data-center fabric.
type LeafSpine struct {
	Net       *Network
	Spines    []*device.Switch
	Leaves    []*device.Switch
	Hosts     [][]*device.Host // [leaf][i]
	VSwitches []*device.Switch // the Scotch pool, grouped per leaf
	VSwitchAt map[uint64]int   // vswitch dpid -> leaf index
	HostLeaf  map[netaddr.IPv4]int
}

// HostIP returns the address assigned to host i of the given leaf.
func HostIP(leaf, i int) netaddr.IPv4 {
	return netaddr.MakeIPv4(10, byte(leaf+1), 0, byte(i+10))
}

// NewLeafSpine builds the fabric.
func NewLeafSpine(eng sim.Proc, cfg LeafSpineConfig) *LeafSpine {
	n := New(eng)
	ls := &LeafSpine{
		Net:       n,
		VSwitchAt: make(map[uint64]int),
		HostLeaf:  make(map[netaddr.IPv4]int),
	}
	for s := 0; s < cfg.Spines; s++ {
		ls.Spines = append(ls.Spines, n.AddSwitch(fmt.Sprintf("spine%d", s), cfg.SpineProfile))
	}
	fabric := device.LinkConfig{Delay: cfg.FabricDelay, RateBps: cfg.FabricBps}
	edge := device.LinkConfig{Delay: cfg.EdgeDelay, RateBps: cfg.EdgeBps}
	for l := 0; l < cfg.Leaves; l++ {
		leaf := n.AddSwitch(fmt.Sprintf("leaf%d", l), cfg.LeafProfile)
		ls.Leaves = append(ls.Leaves, leaf)
		for _, sp := range ls.Spines {
			n.LinkSwitches(leaf, sp, fabric)
		}
		var hosts []*device.Host
		for i := 0; i < cfg.HostsPerLeaf; i++ {
			ip := HostIP(l, i)
			h := n.AddHost(fmt.Sprintf("h%d-%d", l, i), ip)
			n.AttachHost(h, leaf, edge)
			hosts = append(hosts, h)
			ls.HostLeaf[ip] = l
		}
		ls.Hosts = append(ls.Hosts, hosts)
		for v := 0; v < cfg.VSwitchesPerLeaf; v++ {
			vs := n.AddSwitch(fmt.Sprintf("vs%d-%d", l, v), cfg.VSwitchProfile)
			n.LinkSwitches(leaf, vs, edge)
			ls.VSwitches = append(ls.VSwitches, vs)
			ls.VSwitchAt[vs.DPID] = l
		}
	}
	return ls
}

// Linear builds a chain of n switches with one host at each end, useful
// for middlebox and latency experiments.
type Linear struct {
	Net      *Network
	Switches []*device.Switch
	Left     *device.Host
	Right    *device.Host
}

// NewLinear builds the chain with the given per-switch profile.
func NewLinear(eng sim.Proc, nsw int, prof device.Profile, linkDelay time.Duration) *Linear {
	n := New(eng)
	ln := &Linear{Net: n}
	cfg := device.LinkConfig{Delay: linkDelay}
	for i := 0; i < nsw; i++ {
		sw := n.AddSwitch(fmt.Sprintf("s%d", i), prof)
		if i > 0 {
			n.LinkSwitches(ln.Switches[i-1], sw, cfg)
		}
		ln.Switches = append(ln.Switches, sw)
	}
	ln.Left = n.AddHost("left", netaddr.MakeIPv4(10, 0, 0, 1))
	ln.Right = n.AddHost("right", netaddr.MakeIPv4(10, 0, 1, 1))
	n.AttachHost(ln.Left, ln.Switches[0], cfg)
	n.AttachHost(ln.Right, ln.Switches[nsw-1], cfg)
	return ln
}
