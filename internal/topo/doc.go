// Package topo builds and indexes simulated network topologies: the
// switch graph, host attachment points, shortest-path computation for the
// controller, and canonical topologies (single switch, linear, and the
// leaf-spine data center with per-rack vSwitches of §6.2) used by the
// experiments. It also indexes the underlying links so the
// fault-injection harness can flap a specific inter-switch or host access
// link by name.
package topo
