package topo

import (
	"testing"
	"time"

	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

func fastProfile() device.Profile {
	return device.Profile{
		Name: "test", DataPlanePPS: 1e6, DataQueue: 1000,
		PacketInRate: 1e5, PacketInQueue: 1000,
		RuleInsertRate: 1e5, RuleOverloadRate: 1e5, RuleQueue: 1000,
		NumTables: 2, CtrlDelay: time.Microsecond,
	}
}

func TestPathSingleSwitch(t *testing.T) {
	eng := sim.New(1)
	n := New(eng)
	sw := n.AddSwitch("s1", fastProfile())
	h := n.AddHost("h", netaddr.MakeIPv4(10, 0, 0, 1))
	port := n.AttachHost(h, sw, device.LinkConfig{})
	hops, ok := n.Path(sw.DPID, h.IP)
	if !ok || len(hops) != 1 {
		t.Fatalf("hops = %v ok=%v", hops, ok)
	}
	if hops[0].DPID != sw.DPID || hops[0].OutPort != port {
		t.Fatalf("hop = %+v, want port %d", hops[0], port)
	}
}

func TestPathAcrossChain(t *testing.T) {
	eng := sim.New(1)
	ln := NewLinear(eng, 4, fastProfile(), time.Millisecond)
	hops, ok := ln.Net.Path(ln.Switches[0].DPID, ln.Right.IP)
	if !ok {
		t.Fatal("no path")
	}
	if len(hops) != 4 {
		t.Fatalf("hops = %d, want 4", len(hops))
	}
	for i, h := range hops {
		if h.DPID != ln.Switches[i].DPID {
			t.Fatalf("hop %d at dpid %d, want %d", i, h.DPID, ln.Switches[i].DPID)
		}
	}
}

func TestPathPicksShorterDelay(t *testing.T) {
	eng := sim.New(1)
	n := New(eng)
	a := n.AddSwitch("a", fastProfile())
	b := n.AddSwitch("b", fastProfile())
	c := n.AddSwitch("c", fastProfile())
	// a-c direct is slow; a-b-c is fast.
	n.LinkSwitches(a, c, device.LinkConfig{Delay: 10 * time.Millisecond})
	n.LinkSwitches(a, b, device.LinkConfig{Delay: time.Millisecond})
	n.LinkSwitches(b, c, device.LinkConfig{Delay: time.Millisecond})
	h := n.AddHost("h", netaddr.MakeIPv4(10, 0, 0, 1))
	n.AttachHost(h, c, device.LinkConfig{})
	hops, ok := n.Path(a.DPID, h.IP)
	if !ok || len(hops) != 3 {
		t.Fatalf("hops = %v", hops)
	}
	if hops[1].DPID != b.DPID {
		t.Fatal("did not route via b")
	}
}

func TestPathVia(t *testing.T) {
	eng := sim.New(1)
	ln := NewLinear(eng, 5, fastProfile(), time.Millisecond)
	mid := ln.Switches[2].DPID
	hops, ok := ln.Net.PathVia(ln.Switches[0].DPID, []uint64{mid}, ln.Right.IP)
	if !ok {
		t.Fatal("no via path")
	}
	seen := false
	for _, h := range hops {
		if h.DPID == mid {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("waypoint not on path: %v", hops)
	}
}

func TestPathUnknownHost(t *testing.T) {
	eng := sim.New(1)
	n := New(eng)
	sw := n.AddSwitch("s", fastProfile())
	if _, ok := n.Path(sw.DPID, netaddr.MakeIPv4(1, 2, 3, 4)); ok {
		t.Fatal("path to unknown host succeeded")
	}
}

func TestPathDisconnected(t *testing.T) {
	eng := sim.New(1)
	n := New(eng)
	a := n.AddSwitch("a", fastProfile())
	b := n.AddSwitch("b", fastProfile())
	h := n.AddHost("h", netaddr.MakeIPv4(10, 0, 0, 1))
	n.AttachHost(h, b, device.LinkConfig{})
	if _, ok := n.Path(a.DPID, h.IP); ok {
		t.Fatal("path across disconnected fabric succeeded")
	}
}

func TestPathDelay(t *testing.T) {
	eng := sim.New(1)
	ln := NewLinear(eng, 3, fastProfile(), 2*time.Millisecond)
	d, ok := ln.Net.PathDelay(ln.Switches[0].DPID, ln.Switches[2].DPID)
	if !ok {
		t.Fatal("no delay")
	}
	if d != 4*time.Millisecond {
		t.Fatalf("delay = %v, want 4ms", d)
	}
	if d, _ := ln.Net.PathDelay(ln.Switches[0].DPID, ln.Switches[0].DPID); d != 0 {
		t.Fatalf("self delay = %v", d)
	}
}

func TestTestbedEndToEnd(t *testing.T) {
	eng := sim.New(1)
	tb := NewTestbed(eng, fastProfile())
	if tb.Switch == nil || tb.Attacker == nil || tb.Client == nil || tb.Server == nil {
		t.Fatal("incomplete testbed")
	}
	at, ok := tb.Net.HostAttach(tb.Server.IP)
	if !ok || at.DPID != tb.Switch.DPID {
		t.Fatalf("server attach = %+v", at)
	}
	// All three hosts get distinct ports.
	aa, _ := tb.Net.HostAttach(tb.Attacker.IP)
	ac, _ := tb.Net.HostAttach(tb.Client.IP)
	if aa.Port == ac.Port || aa.Port == at.Port {
		t.Fatal("duplicate attach ports")
	}
}

func TestLeafSpineShape(t *testing.T) {
	eng := sim.New(1)
	cfg := DefaultLeafSpineConfig()
	ls := NewLeafSpine(eng, cfg)
	if len(ls.Spines) != cfg.Spines || len(ls.Leaves) != cfg.Leaves {
		t.Fatalf("fabric %dx%d", len(ls.Spines), len(ls.Leaves))
	}
	if len(ls.VSwitches) != cfg.Leaves*cfg.VSwitchesPerLeaf {
		t.Fatalf("vswitches = %d", len(ls.VSwitches))
	}
	// Any leaf can reach any host; paths between different leaves cross a
	// spine.
	src := ls.Leaves[0].DPID
	dst := HostIP(3, 1)
	hops, ok := ls.Net.Path(src, dst)
	if !ok {
		t.Fatal("no path across fabric")
	}
	if len(hops) != 3 { // leaf0 -> spine -> leaf3 -> host
		t.Fatalf("hops = %d, want 3", len(hops))
	}
	spine := hops[1].DPID
	found := false
	for _, s := range ls.Spines {
		if s.DPID == spine {
			found = true
		}
	}
	if !found {
		t.Fatal("middle hop is not a spine")
	}
}

func TestLeafSpineHostIPsDistinct(t *testing.T) {
	eng := sim.New(1)
	ls := NewLeafSpine(eng, DefaultLeafSpineConfig())
	seen := map[netaddr.IPv4]bool{}
	for _, hosts := range ls.Hosts {
		for _, h := range hosts {
			if seen[h.IP] {
				t.Fatalf("duplicate host IP %v", h.IP)
			}
			seen[h.IP] = true
		}
	}
}

func TestLinkSwitchesViaInlineNode(t *testing.T) {
	eng := sim.New(1)
	n := New(eng)
	a := n.AddSwitch("a", fastProfile())
	b := n.AddSwitch("b", fastProfile())
	fw := device.NewFirewall(eng, "fw", 0)
	pa, pb := n.LinkSwitchesVia(a, fw, b, device.LinkConfig{Delay: time.Millisecond})
	if pa == 0 || pb == 0 {
		t.Fatal("ports not allocated")
	}
	h := n.AddHost("h", netaddr.MakeIPv4(10, 0, 1, 1))
	n.AttachHost(h, b, device.LinkConfig{})
	// The graph treats a-b as adjacent through the middlebox.
	hops, ok := n.Path(a.DPID, h.IP)
	if !ok || len(hops) != 2 || hops[0].OutPort != pa {
		t.Fatalf("path through inline node = %v ok=%v", hops, ok)
	}
	// And the data plane actually transits the firewall: install rules and
	// send a SYN end to end.
	install := func(sw *device.Switch, out uint32) {
		fm := &openflow.FlowMod{Command: openflow.FlowAdd, Priority: 1,
			Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.OutputAction(out))}}
		wire, err := openflow.Marshal(fm, 1)
		if err != nil {
			t.Fatal(err)
		}
		sw.DeliverControl(wire)
	}
	install(a, hops[0].OutPort)
	install(b, hops[1].OutPort)
	eng.RunUntil(10 * time.Millisecond)
	src := n.AddHost("src", netaddr.MakeIPv4(10, 0, 0, 1))
	n.AttachHost(src, a, device.LinkConfig{})
	src.Send(packet.NewTCP(src.IP, h.IP, 1, 80, packet.FlagSYN))
	eng.RunUntil(time.Second)
	if h.Received != 1 {
		t.Fatalf("delivered %d packets through the inline firewall", h.Received)
	}
	if fw.Passed != 1 {
		t.Fatalf("firewall passed %d packets", fw.Passed)
	}
}
