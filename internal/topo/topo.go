package topo

import (
	"fmt"
	"math"
	"time"

	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/sim"
)

// Attach records where a host connects to the switch fabric.
type Attach struct {
	DPID uint64
	Port uint32
}

type edge struct {
	to      uint64
	outPort uint32
	cost    float64
}

// Network is a simulated topology plus the indexes the controller needs.
type Network struct {
	// Eng is the network's default scheduling context: the engine (or
	// lane) new nodes are placed on when no UseProc override is active.
	Eng sim.Proc

	// proc, when non-nil, overrides Eng for nodes created until the next
	// UseProc call: sharded rigs point it at successive partition lanes
	// while building each partition's devices.
	proc sim.Proc

	switches map[uint64]*device.Switch
	byName   map[string]*device.Switch
	hosts    map[netaddr.IPv4]*device.Host
	attach   map[netaddr.IPv4]Attach
	adj      map[uint64][]edge

	// Link registries for fault injection: direct switch-switch links
	// keyed by both dpid orders, and host access links keyed by host IP.
	swLinks   map[[2]uint64]*device.Link
	hostLinks map[netaddr.IPv4]*device.Link

	nextDPID uint64
	nextPort map[uint64]uint32
	nextMAC  uint32

	// hop1 caches Path's single-hop result (switch already attached to
	// the destination) per destination IP — the common case on delivery
	// vSwitches, hit once per admitted flow. Entries are exact-capacity
	// so a caller's append copies instead of aliasing; AttachHost
	// invalidates the cache.
	hop1 map[netaddr.IPv4][]Hop
}

// New returns an empty network on the given engine (or lane).
func New(eng sim.Proc) *Network {
	return &Network{
		Eng:       eng,
		switches:  make(map[uint64]*device.Switch),
		byName:    make(map[string]*device.Switch),
		hosts:     make(map[netaddr.IPv4]*device.Host),
		attach:    make(map[netaddr.IPv4]Attach),
		adj:       make(map[uint64][]edge),
		swLinks:   make(map[[2]uint64]*device.Link),
		hostLinks: make(map[netaddr.IPv4]*device.Link),
		nextPort:  make(map[uint64]uint32),
	}
}

// UseProc directs subsequent AddSwitch/AddHost calls to place new nodes
// on the given scheduling context; nil restores the network's default.
// Partitioned (sharded-engine) topologies are built by switching the
// active proc between partitions' lanes during construction.
func (n *Network) UseProc(p sim.Proc) { n.proc = p }

// cur returns the proc new nodes are currently placed on.
func (n *Network) cur() sim.Proc {
	if n.proc != nil {
		return n.proc
	}
	return n.Eng
}

// AddSwitch creates a switch with an automatically assigned datapath id.
func (n *Network) AddSwitch(name string, prof device.Profile) *device.Switch {
	if _, ok := n.byName[name]; ok {
		panic(fmt.Sprintf("topo: duplicate switch %q", name))
	}
	n.nextDPID++
	sw := device.NewSwitch(n.cur(), name, n.nextDPID, prof)
	sw.LocalIP = netaddr.MakeIPv4(192, 168, byte(n.nextDPID>>8), byte(n.nextDPID))
	n.switches[sw.DPID] = sw
	n.byName[name] = sw
	n.nextPort[sw.DPID] = 1
	return sw
}

// AddHost creates a host with an automatically assigned MAC address.
func (n *Network) AddHost(name string, ip netaddr.IPv4) *device.Host {
	n.nextMAC++
	h := device.NewHost(n.cur(), name, ip, netaddr.MakeMAC(n.nextMAC))
	n.hosts[ip] = h
	return h
}

// Switch looks a switch up by datapath id.
func (n *Network) Switch(dpid uint64) *device.Switch { return n.switches[dpid] }

// SwitchByName looks a switch up by name.
func (n *Network) SwitchByName(name string) *device.Switch { return n.byName[name] }

// Switches returns all switches keyed by datapath id.
func (n *Network) Switches() map[uint64]*device.Switch { return n.switches }

// Host looks a host up by IP.
func (n *Network) Host(ip netaddr.IPv4) *device.Host { return n.hosts[ip] }

// Hosts returns all hosts keyed by IP.
func (n *Network) Hosts() map[netaddr.IPv4]*device.Host { return n.hosts }

// HostAttach returns where the host with the given IP attaches.
func (n *Network) HostAttach(ip netaddr.IPv4) (Attach, bool) {
	a, ok := n.attach[ip]
	return a, ok
}

func (n *Network) allocPort(sw *device.Switch) uint32 {
	p := n.nextPort[sw.DPID]
	n.nextPort[sw.DPID] = p + 1
	return p
}

// LinkSwitchesVia connects two switches through an inline two-port node
// (e.g. a firewall on a wire): a links to via, via links to b, and the
// path graph treats a-b as adjacent with traffic transiting the node.
// Returns a's port toward via and b's port toward via.
func (n *Network) LinkSwitchesVia(a *device.Switch, via device.Node, b *device.Switch, cfg device.LinkConfig) (uint32, uint32) {
	pa, pb := n.allocPort(a), n.allocPort(b)
	device.Connect(a, pa, via, 1, cfg)
	device.Connect(via, 2, b, pb, cfg)
	cost := 2 * linkCost(cfg)
	n.adj[a.DPID] = append(n.adj[a.DPID], edge{to: b.DPID, outPort: pa, cost: cost})
	n.adj[b.DPID] = append(n.adj[b.DPID], edge{to: a.DPID, outPort: pb, cost: cost})
	return pa, pb
}

// LinkSwitches connects two switches with auto-assigned port numbers and
// records the adjacency for path computation. It returns the two port ids.
func (n *Network) LinkSwitches(a, b *device.Switch, cfg device.LinkConfig) (uint32, uint32) {
	pa, pb := n.allocPort(a), n.allocPort(b)
	l := device.Connect(a, pa, b, pb, cfg)
	n.swLinks[[2]uint64{a.DPID, b.DPID}] = l
	n.swLinks[[2]uint64{b.DPID, a.DPID}] = l
	cost := linkCost(cfg)
	n.adj[a.DPID] = append(n.adj[a.DPID], edge{to: b.DPID, outPort: pa, cost: cost})
	n.adj[b.DPID] = append(n.adj[b.DPID], edge{to: a.DPID, outPort: pb, cost: cost})
	return pa, pb
}

// SwitchLink returns the direct link between two switches created by
// LinkSwitches, in either order, or nil when the switches are not
// directly linked (links through a via node are not registered).
func (n *Network) SwitchLink(a, b uint64) *device.Link {
	return n.swLinks[[2]uint64{a, b}]
}

// HostLink returns the access link of the host with the given IP, or nil.
func (n *Network) HostLink(ip netaddr.IPv4) *device.Link {
	return n.hostLinks[ip]
}

// AttachHost connects a host to a switch with an auto-assigned switch port
// and records the attachment. It returns the switch-side port id.
func (n *Network) AttachHost(h *device.Host, sw *device.Switch, cfg device.LinkConfig) uint32 {
	p := n.allocPort(sw)
	n.hostLinks[h.IP] = device.Connect(sw, p, h, 1, cfg)
	n.attach[h.IP] = Attach{DPID: sw.DPID, Port: p}
	n.hop1 = nil // attachment changed; drop cached single-hop paths
	return p
}

func linkCost(cfg device.LinkConfig) float64 {
	c := cfg.Delay.Seconds()
	if c == 0 {
		c = 1e-6
	}
	return c
}

// Hop is one forwarding step of a computed path. InPort, when nonzero,
// constrains the installed rule to packets arriving on that port — used
// for the switch downstream of a middlebox, whose per-flow rule must only
// apply to packets returning from the middlebox.
type Hop struct {
	DPID    uint64
	OutPort uint32
	InPort  uint32
}

// Path computes a shortest path (by link delay) from the switch with dpid
// from to the host with the given IP. The returned hops include the final
// host-facing port. ok is false when no path exists.
func (n *Network) Path(from uint64, dstIP netaddr.IPv4) ([]Hop, bool) {
	at, ok := n.attach[dstIP]
	if !ok {
		return nil, false
	}
	if from == at.DPID {
		h, ok := n.hop1[dstIP]
		if !ok {
			h = make([]Hop, 1)
			h[0] = Hop{DPID: at.DPID, OutPort: at.Port}
			if n.hop1 == nil {
				n.hop1 = make(map[netaddr.IPv4][]Hop)
			}
			n.hop1[dstIP] = h
		}
		return h, true
	}
	hops, ok := n.switchPath(from, at.DPID)
	if !ok {
		return nil, false
	}
	return append(hops, Hop{DPID: at.DPID, OutPort: at.Port}), true
}

// PathVia computes a path from switch from to dstIP that traverses the
// given waypoint switches in order (the policy-consistency constraint of
// paper §5.4: the physical path must cross the same middlebox-attached
// switches as the overlay path).
func (n *Network) PathVia(from uint64, via []uint64, dstIP netaddr.IPv4) ([]Hop, bool) {
	cur := from
	var out []Hop
	for _, w := range via {
		if cur == w {
			continue
		}
		seg, ok := n.switchPath(cur, w)
		if !ok {
			return nil, false
		}
		out = append(out, seg...)
		cur = w
	}
	tail, ok := n.Path(cur, dstIP)
	if !ok {
		return nil, false
	}
	return append(out, tail...), true
}

// SwitchPath returns hops from switch a through the fabric, ending with
// the hop whose OutPort leads into switch b (b itself emits no hop).
func (n *Network) SwitchPath(a, b uint64) ([]Hop, bool) {
	return n.switchPath(a, b)
}

func (n *Network) switchPath(a, b uint64) ([]Hop, bool) {
	if a == b {
		return nil, true
	}
	dist := map[uint64]float64{a: 0}
	type prevHop struct {
		from    uint64
		outPort uint32
	}
	prev := map[uint64]prevHop{}
	visited := map[uint64]bool{}
	for {
		// Extract the unvisited node with the smallest distance. The
		// graphs here are small; an O(V^2) scan is fine and allocation
		// free.
		best := uint64(0)
		bestD := math.Inf(1)
		found := false
		for node, d := range dist {
			if visited[node] {
				continue
			}
			// Tie-break equal distances on the node id: leaf-spine
			// fabrics are full of equal-cost paths, and map iteration
			// order must not pick the winner (reruns would diverge).
			if d < bestD || (d == bestD && (!found || node < best)) {
				best, bestD, found = node, d, true
			}
		}
		if !found {
			return nil, false
		}
		if best == b {
			break
		}
		visited[best] = true
		for _, e := range n.adj[best] {
			nd := bestD + e.cost
			if d, ok := dist[e.to]; !ok || nd < d {
				dist[e.to] = nd
				prev[e.to] = prevHop{from: best, outPort: e.outPort}
			}
		}
	}
	var rev []Hop
	for cur := b; cur != a; {
		ph, ok := prev[cur]
		if !ok {
			return nil, false
		}
		rev = append(rev, Hop{DPID: ph.from, OutPort: ph.outPort})
		cur = ph.from
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// PathDelay sums the nominal link delays along a switch-to-switch path,
// used to configure overlay tunnels with realistic underlay latency.
func (n *Network) PathDelay(a, b uint64) (time.Duration, bool) {
	if a == b {
		return 0, true
	}
	hops, ok := n.switchPath(a, b)
	if !ok {
		return 0, false
	}
	var total float64
	cur := a
	for _, h := range hops {
		for _, e := range n.adj[h.DPID] {
			if e.outPort == h.OutPort {
				total += e.cost
				cur = e.to
				break
			}
		}
	}
	_ = cur
	return time.Duration(total * float64(time.Second)), true
}
