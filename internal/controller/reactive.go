package controller

import (
	"time"

	"scotch/internal/flowtable"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/topo"
)

// ReactiveRouter is the baseline controller application: for every
// Packet-In it computes the shortest path to the destination host,
// installs exact-match rules along it (first hop last), and emits a
// Packet-Out for the triggering packet. This is the plain OpenFlow
// reactive mode whose control-path limits Section 3 of the paper measures.
type ReactiveRouter struct {
	C           *Controller
	IdleTimeout time.Duration
	Priority    uint16

	FlowsRouted uint64
	NoPath      uint64
}

// NewReactiveRouter creates and registers the baseline app.
func NewReactiveRouter(c *Controller) *ReactiveRouter {
	r := &ReactiveRouter{C: c, IdleTimeout: 10 * time.Second, Priority: 100}
	c.Register(r)
	return r
}

// Name implements App.
func (r *ReactiveRouter) Name() string { return "reactive-router" }

// HandlePacketIn implements App.
func (r *ReactiveRouter) HandlePacketIn(sw *SwitchHandle, pin *openflow.PacketIn, pkt *packet.Packet) bool {
	if pkt == nil {
		return false
	}
	key := pkt.FlowKey()
	hops, ok := r.C.Net.Path(sw.DPID, key.Dst)
	if !ok {
		r.NoPath++
		return true // consume: nothing anyone else can do
	}
	match := flowtable.ExactMatch(key)
	r.C.InstallPath(hops, func(h topo.Hop) *openflow.FlowMod {
		fm := openflow.FlowMod1(openflow.OutputAction(h.OutPort))
		fm.Command = openflow.FlowAdd
		fm.Priority = r.Priority
		fm.IdleTimeout = uint16(r.IdleTimeout / time.Second)
		fm.Match = match
		return fm
	})
	r.C.FlowDB.Store(FlowInfo{
		Key:         key,
		FirstHop:    sw.DPID,
		IngressPort: pin.Match.InPort,
		Created:     r.C.Eng.Now(),
	})
	// Forward the first packet explicitly so it is not lost while rules
	// propagate.
	sw.SendPacketOut(openflow.PacketOut1(pin.Match.InPort,
		openflow.OutputAction(hops[0].OutPort), pin.Data))
	r.FlowsRouted++
	return true
}
