package controller

import (
	"testing"
	"time"

	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/sim"
	"scotch/internal/topo"
)

func fastProfile() device.Profile {
	return device.Profile{
		Name: "test", DataPlanePPS: 1e6, DataQueue: 1000,
		PacketInRate: 1e5, PacketInQueue: 1000,
		RuleInsertRate: 1e5, RuleOverloadRate: 1e5, RuleQueue: 1000,
		NumTables: 2, CtrlDelay: 10 * time.Microsecond,
	}
}

func TestReactiveRoutingEndToEnd(t *testing.T) {
	eng := sim.New(1)
	ln := topo.NewLinear(eng, 3, fastProfile(), 100*time.Microsecond)
	c := New(eng, ln.Net)
	r := NewReactiveRouter(c)
	c.ConnectAll()

	// First packet of a new flow crosses three switches reactively.
	ln.Left.Send(packet.NewTCP(ln.Left.IP, ln.Right.IP, 1000, 80, packet.FlagSYN))
	eng.RunUntil(500 * time.Millisecond)
	if ln.Right.Received == 0 {
		t.Fatal("first packet never delivered")
	}
	if r.FlowsRouted == 0 {
		t.Fatal("router handled no flows")
	}
	if c.FlowDB.Len() != 1 {
		t.Fatalf("FlowDB has %d entries, want 1", c.FlowDB.Len())
	}

	// Subsequent packets ride the installed rules without Packet-Ins.
	before := c.Stats.PacketIns
	for i := 0; i < 5; i++ {
		ln.Left.Send(packet.NewTCP(ln.Left.IP, ln.Right.IP, 1000, 80, packet.FlagACK))
	}
	eng.RunUntil(time.Second)
	if got := ln.Right.Received; got != 6 {
		t.Fatalf("delivered %d, want 6", got)
	}
	if c.Stats.PacketIns != before {
		t.Fatalf("extra packet-ins after rules installed: %d", c.Stats.PacketIns-before)
	}
}

func TestReactiveNoPathConsumed(t *testing.T) {
	eng := sim.New(1)
	tb := topo.NewTestbed(eng, fastProfile())
	c := New(eng, tb.Net)
	r := NewReactiveRouter(c)
	c.ConnectAll()
	tb.Client.Send(packet.NewTCP(tb.Client.IP, netaddr.MakeIPv4(99, 9, 9, 9), 1, 2, packet.FlagSYN))
	eng.RunUntil(100 * time.Millisecond)
	if r.NoPath != 1 {
		t.Fatalf("NoPath = %d, want 1", r.NoPath)
	}
}

func TestPacketInRateMonitoring(t *testing.T) {
	eng := sim.New(1)
	tb := topo.NewTestbed(eng, fastProfile())
	c := New(eng, tb.Net)
	NewReactiveRouter(c)
	h := c.Connect(tb.Switch)

	// 100 new flows/s for 2 seconds.
	i := 0
	tk := eng.Every(10*time.Millisecond, func() {
		i++
		tb.Client.Send(packet.NewTCP(netaddr.IPv4(i), tb.Server.IP, uint16(i), 80, packet.FlagSYN))
	})
	eng.Schedule(2*time.Second, tk.Stop)
	eng.RunUntil(2 * time.Second)
	rate := h.PacketInRate.Rate(eng.Now())
	if rate < 80 || rate > 120 {
		t.Fatalf("monitored packet-in rate = %.1f, want ~100", rate)
	}
}

func TestFlowStatsCallback(t *testing.T) {
	eng := sim.New(1)
	tb := topo.NewTestbed(eng, fastProfile())
	c := New(eng, tb.Net)
	NewReactiveRouter(c)
	h := c.Connect(tb.Switch)

	tb.Client.Send(packet.NewTCP(tb.Client.IP, tb.Server.IP, 1000, 80, packet.FlagSYN))
	eng.RunUntil(100 * time.Millisecond)

	var got *openflow.MultipartReply
	h.RequestFlowStats(&openflow.FlowStatsRequest{TableID: 0xff}, func(r *openflow.MultipartReply) {
		got = r
	})
	eng.RunUntil(200 * time.Millisecond)
	if got == nil || len(got.Flows) == 0 {
		t.Fatalf("stats callback got %+v", got)
	}
}

func TestBarrierCallback(t *testing.T) {
	eng := sim.New(1)
	tb := topo.NewTestbed(eng, fastProfile())
	c := New(eng, tb.Net)
	h := c.Connect(tb.Switch)
	done := false
	h.Barrier(func() { done = true })
	eng.RunUntil(100 * time.Millisecond)
	if !done {
		t.Fatal("barrier callback never ran")
	}
}

func TestHeartbeatDetectsDeadSwitch(t *testing.T) {
	eng := sim.New(1)
	tb := topo.NewTestbed(eng, fastProfile())
	c := New(eng, tb.Net)
	h := c.Connect(tb.Switch)

	var dead []uint64
	c.OnSwitchDead = func(sw *SwitchHandle) { dead = append(dead, sw.DPID) }
	c.StartHeartbeat([]uint64{tb.Switch.DPID}, 100*time.Millisecond, 3)

	// Healthy switch: no death.
	eng.RunUntil(2 * time.Second)
	if len(dead) != 0 || h.Dead() {
		t.Fatal("healthy switch declared dead")
	}

	// Cut the control channel: echo replies stop arriving.
	tb.Switch.SetController(func(uint64, []byte) {})
	eng.RunUntil(4 * time.Second)
	if len(dead) != 1 || dead[0] != tb.Switch.DPID || !h.Dead() {
		t.Fatalf("dead switches = %v", dead)
	}
	// Death fires exactly once.
	eng.RunUntil(6 * time.Second)
	if len(dead) != 1 {
		t.Fatalf("death reported %d times", len(dead))
	}
}

func TestInstallPathOrdersFirstHopLast(t *testing.T) {
	eng := sim.New(1)
	ln := topo.NewLinear(eng, 3, fastProfile(), 0)
	c := New(eng, ln.Net)
	c.ConnectAll()
	hops, ok := ln.Net.Path(ln.Switches[0].DPID, ln.Right.IP)
	if !ok {
		t.Fatal("no path")
	}
	var order []uint64
	first := c.InstallPath(hops, func(h topo.Hop) *openflow.FlowMod {
		order = append(order, h.DPID)
		return &openflow.FlowMod{Command: openflow.FlowAdd, Priority: 1,
			Match: openflow.Match{Fields: openflow.FieldIPv4Dst, IPv4Dst: ln.Right.IP},
			Instructions: []openflow.Instruction{
				openflow.ApplyActions(openflow.OutputAction(h.OutPort))}}
	})
	if first == nil || first.DPID != hops[0].DPID {
		t.Fatal("wrong first-hop handle")
	}
	if order[len(order)-1] != hops[0].DPID {
		t.Fatalf("install order %v; first hop must be last", order)
	}
	eng.RunUntil(100 * time.Millisecond)
	for _, sw := range ln.Switches {
		if sw.Stats.RulesInstalled != 1 {
			t.Fatalf("%s installed %d rules", sw.Name(), sw.Stats.RulesInstalled)
		}
	}
}

func TestFlowInfoDB(t *testing.T) {
	db := NewFlowInfoDB()
	k := netaddr.FlowKey{Src: netaddr.MakeIPv4(1, 1, 1, 1), Dst: netaddr.MakeIPv4(2, 2, 2, 2), Proto: 6, SrcPort: 1, DstPort: 2}
	if db.Lookup(k) != nil {
		t.Fatal("lookup on empty db")
	}
	db.Put(&FlowInfo{Key: k, FirstHop: 7, IngressPort: 3, OnOverlay: true})
	fi := db.Lookup(k)
	if fi == nil || fi.FirstHop != 7 || fi.IngressPort != 3 {
		t.Fatalf("lookup = %+v", fi)
	}
	if got := db.OverlayFlows(); len(got) != 1 {
		t.Fatalf("overlay flows = %d", len(got))
	}
	fi.OnOverlay = false
	if got := db.OverlayFlows(); len(got) != 0 {
		t.Fatalf("overlay flows after clear = %d", len(got))
	}
	db.Delete(k)
	if db.Len() != 0 {
		t.Fatal("delete ineffective")
	}
}

// TestHeartbeatThresholdPrecision pins the death condition to the exact
// tick: with misses=3 and a 100ms interval, a switch that stops answering
// before the first probe survives ticks 1-3 (pending 1, 2, 3) and is
// declared dead on the 4th, when the pending count first reaches the
// threshold at tick start.
func TestHeartbeatThresholdPrecision(t *testing.T) {
	eng := sim.New(1)
	tb := topo.NewTestbed(eng, fastProfile())
	c := New(eng, tb.Net)
	h := c.Connect(tb.Switch)

	deaths := 0
	c.OnSwitchDead = func(*SwitchHandle) { deaths++ }
	c.StartHeartbeat([]uint64{tb.Switch.DPID}, 100*time.Millisecond, 3)

	eng.At(50*time.Millisecond, tb.Switch.Fail)
	// Tick 3 (300ms) sends the third unanswered probe but must not kill.
	eng.RunUntil(350 * time.Millisecond)
	if h.Dead() || deaths != 0 {
		t.Fatalf("dead before the threshold tick (deaths=%d)", deaths)
	}
	// Tick 4 (400ms) starts with pending == misses: dead, exactly once.
	eng.RunUntil(450 * time.Millisecond)
	if !h.Dead() || deaths != 1 {
		t.Fatalf("after threshold tick: dead=%v deaths=%d, want true/1", h.Dead(), deaths)
	}
}

// TestHeartbeatRecoveryAtBrink is the other side of the threshold: the
// switch restarts while the third probe is still in flight, answers it,
// and the reset pending count saves it on what would have been the
// declaring tick.
func TestHeartbeatRecoveryAtBrink(t *testing.T) {
	eng := sim.New(1)
	tb := topo.NewTestbed(eng, fastProfile())
	h := func() *SwitchHandle {
		c := New(eng, tb.Net)
		hh := c.Connect(tb.Switch)
		c.OnSwitchDead = func(*SwitchHandle) { t.Error("recovered switch declared dead") }
		c.StartHeartbeat([]uint64{tb.Switch.DPID}, 100*time.Millisecond, 3)
		return hh
	}()

	eng.At(50*time.Millisecond, tb.Switch.Fail)
	// Restart after tick 3 fired (300ms) but before its probe's 10µs
	// control delay elapses: the recovered switch answers it, resetting
	// the pending count just ahead of tick 4.
	eng.At(300*time.Millisecond+5*time.Microsecond, tb.Switch.Restart)
	eng.RunUntil(time.Second)
	if h.Dead() {
		t.Fatal("switch died despite answering the in-flight probe")
	}
}
