package controller

import (
	"testing"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/sim"
	"scotch/internal/topo"
)

// TestFlowStatsChunkedReassembly installs more rules than fit in a single
// multipart part and verifies the controller reassembles the full set
// from the REPLY_MORE chain.
func TestFlowStatsChunkedReassembly(t *testing.T) {
	eng := sim.New(1)
	net := topo.New(eng)
	sw := net.AddSwitch("s1", fastProfile())
	c := New(eng, net)
	h := c.Connect(sw)

	const rules = 1000 // chunk size at the switch is 400
	for i := 0; i < rules; i++ {
		h.InstallFlow(&openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Priority: 10,
			Match: openflow.Match{
				Fields:  openflow.FieldIPv4Src,
				IPv4Src: netaddr.IPv4(i + 1),
			},
			Instructions: []openflow.Instruction{
				openflow.ApplyActions(openflow.OutputAction(1)),
			},
		})
	}
	eng.RunUntil(time.Second)
	if got := sw.Pipeline.Table(0).Len(); got != rules {
		t.Fatalf("installed %d rules, want %d", got, rules)
	}

	var got *openflow.MultipartReply
	calls := 0
	h.RequestFlowStats(&openflow.FlowStatsRequest{TableID: 0xff}, func(r *openflow.MultipartReply) {
		calls++
		got = r
	})
	eng.RunUntil(2 * time.Second)
	if calls != 1 {
		t.Fatalf("callback fired %d times, want exactly 1 (after the final part)", calls)
	}
	if got == nil || len(got.Flows) != rules {
		t.Fatalf("reassembled %d flow entries, want %d", len(got.Flows), rules)
	}
	seen := map[netaddr.IPv4]bool{}
	for _, f := range got.Flows {
		seen[f.Match.IPv4Src] = true
	}
	if len(seen) != rules {
		t.Fatalf("duplicate or missing entries: %d unique", len(seen))
	}
}

// TestConcurrentStatsRequestsKeepXIDsApart issues two overlapping queries
// and checks each callback receives its own reply.
func TestConcurrentStatsRequestsKeepXIDsApart(t *testing.T) {
	eng := sim.New(1)
	net := topo.New(eng)
	sw := net.AddSwitch("s1", fastProfile())
	c := New(eng, net)
	h := c.Connect(sw)
	h.InstallFlow(&openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 1,
		Match:        openflow.Match{Fields: openflow.FieldIPv4Src, IPv4Src: 1},
		Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.OutputAction(1))},
	})
	eng.RunUntil(100 * time.Millisecond)

	got1, got2 := 0, 0
	h.RequestFlowStats(&openflow.FlowStatsRequest{TableID: 0xff}, func(r *openflow.MultipartReply) {
		got1 = len(r.Flows)
	})
	h.RequestFlowStats(&openflow.FlowStatsRequest{TableID: 0xff}, func(r *openflow.MultipartReply) {
		got2 = len(r.Flows)
	})
	eng.RunUntil(time.Second)
	if got1 != 1 || got2 != 1 {
		t.Fatalf("callbacks got %d/%d entries, want 1/1", got1, got2)
	}
}
