package controller

import (
	"sort"
	"time"

	"scotch/internal/device"
	"scotch/internal/metrics"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/sim"
	"scotch/internal/telemetry"
	"scotch/internal/topo"
)

// App is a controller application. Apps are consulted in registration
// order; the first to return true consumes the Packet-In.
type App interface {
	// Name identifies the app.
	Name() string
	// HandlePacketIn processes a punted packet. pkt is the parsed packet
	// from the message data (nil if unparseable).
	HandlePacketIn(sw *SwitchHandle, pin *openflow.PacketIn, pkt *packet.Packet) bool
}

// FlowRemovedHandler is implemented by apps that track rule expiry.
type FlowRemovedHandler interface {
	HandleFlowRemoved(sw *SwitchHandle, fr *openflow.FlowRemoved)
}

// ErrorHandler is implemented by apps that react to switch errors (e.g.
// table-full).
type ErrorHandler interface {
	HandleError(sw *SwitchHandle, e *openflow.Error)
}

// Stats counts controller activity.
type Stats struct {
	PacketIns      uint64
	FlowModsSent   uint64
	PacketOutsSent uint64
	GroupModsSent  uint64
	ErrorsReceived uint64
	EchoReplies    uint64

	// PacketInsDropped counts punts lost at the controller's own ingress
	// queue when a processing capacity is configured (SetCapacity).
	PacketInsDropped uint64
	// SlaveSuppressed counts writes locally suppressed because this
	// controller's connection to the switch is in the slave role.
	SlaveSuppressed uint64
	// PolicyPushes counts devolution policy tables pushed to
	// switch-resident caches (see PushPolicy).
	PolicyPushes uint64
}

// SwitchHandle is the controller's per-switch state.
type SwitchHandle struct {
	DPID uint64
	Dev  *device.Switch

	// PacketInRate tracks the Packet-In arrival rate from this switch:
	// the congestion signal Scotch monitors (paper §4.2).
	PacketInRate *metrics.RateMeter

	ctrl         *Controller
	connID       int
	role         uint32
	xid          uint32
	statsCB      map[uint32]func(*openflow.MultipartReply)
	statsAcc     map[uint32][]openflow.FlowStats
	barrierCB    map[uint32]func()
	roleCB       map[uint32]func(*openflow.RoleReply)
	echoPending  int
	lastEchoSent sim.Time
	echoReq      *openflow.EchoRequest // reusable heartbeat probe
	dead         bool
}

// Controller is the central OpenFlow controller. Eng is the scheduling
// context the controller runs on: the shared engine in serial mode, the
// controller's lane in a sharded run.
type Controller struct {
	Eng sim.Proc
	Net *topo.Network

	apps     []App
	switches map[uint64]*SwitchHandle
	FlowDB   *FlowInfoDB
	Stats    Stats

	// InRate tracks the aggregate Packet-In arrival rate across all
	// switches: a cluster coordinator's primary per-replica load signal.
	InRate *metrics.RateMeter

	// pinSrv, when SetCapacity is called, paces Packet-In processing: the
	// controller is then a finite server rather than infinitely fast, and
	// punts beyond its queue are lost (the central-controller bottleneck
	// the cluster subsystem exists to relieve). Other message types are
	// processed immediately — control responses are prioritized over punts.
	pinSrv *sim.Server[pinJob]

	// OnSwitchDead is invoked once when heartbeats to a switch are lost.
	OnSwitchDead func(sw *SwitchHandle)

	trace *telemetry.Tracer
}

// pinJob is one queued Packet-In awaiting controller CPU.
type pinJob struct {
	h *SwitchHandle
	m *openflow.PacketIn
}

// New creates a controller over the given network.
func New(eng sim.Proc, net *topo.Network) *Controller {
	return &Controller{
		Eng:      eng,
		Net:      net,
		switches: make(map[uint64]*SwitchHandle),
		FlowDB:   NewFlowInfoDB(),
		InRate:   metrics.NewRateMeter(time.Second, 10),
	}
}

// SetCapacity models a controller with finite processing power: Packet-Ins
// are dispatched through a rate-limited queue of the given depth; overflow
// is dropped (and counted in Stats.PacketInsDropped). Zero-capacity
// controllers (the default) process punts immediately.
func (c *Controller) SetCapacity(rate float64, queue int) {
	c.pinSrv = sim.NewServer(c.Eng, rate, queue, c.dispatchPacketIn)
	c.pinSrv.OnDrop(func(pinJob) { c.Stats.PacketInsDropped++ })
}

// QueueDepth returns the number of Packet-Ins awaiting processing (always
// zero without SetCapacity).
func (c *Controller) QueueDepth() int {
	if c.pinSrv == nil {
		return 0
	}
	return c.pinSrv.QueueLen()
}

// SetTracer attaches a control-path tracer (nil disables tracing). Apps
// reach it through Tracer() so controller-side hooks share one instance.
func (c *Controller) SetTracer(t *telemetry.Tracer) { c.trace = t }

// Tracer returns the attached tracer (nil when tracing is off).
func (c *Controller) Tracer() *telemetry.Tracer { return c.trace }

// BindMetrics registers the controller's live counters and load signals
// with a telemetry registry.
func (c *Controller) BindMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("scotch_controller_packet_ins_total", func() uint64 { return c.Stats.PacketIns })
	reg.CounterFunc("scotch_controller_packet_ins_dropped_total", func() uint64 { return c.Stats.PacketInsDropped })
	reg.CounterFunc("scotch_controller_flow_mods_sent_total", func() uint64 { return c.Stats.FlowModsSent })
	reg.CounterFunc("scotch_controller_packet_outs_sent_total", func() uint64 { return c.Stats.PacketOutsSent })
	reg.CounterFunc("scotch_controller_errors_received_total", func() uint64 { return c.Stats.ErrorsReceived })
	reg.GaugeFunc("scotch_controller_queue_depth", func() float64 { return float64(c.QueueDepth()) })
	reg.GaugeFunc("scotch_controller_packet_in_rate", func() float64 { return c.InRate.Rate(c.Eng.Now()) })
}

// Register adds an application. Registration order is consultation order.
func (c *Controller) Register(app App) { c.apps = append(c.apps, app) }

// Unregister removes an application (identity comparison). The cluster
// dispatcher uses it to take over punt routing for apps it manages.
func (c *Controller) Unregister(app App) {
	for i, a := range c.apps {
		if a == app {
			c.apps = append(c.apps[:i], c.apps[i+1:]...)
			return
		}
	}
}

// Connect attaches a switch to the controller and runs the OpenFlow
// handshake (Hello, Features).
func (c *Controller) Connect(sw *device.Switch) *SwitchHandle {
	h := &SwitchHandle{
		DPID:         sw.DPID,
		Dev:          sw,
		PacketInRate: metrics.NewRateMeter(time.Second, 10),
		ctrl:         c,
		role:         openflow.RoleEqual,
		statsCB:      make(map[uint32]func(*openflow.MultipartReply)),
		statsAcc:     make(map[uint32][]openflow.FlowStats),
		barrierCB:    make(map[uint32]func()),
		roleCB:       make(map[uint32]func(*openflow.RoleReply)),
	}
	c.switches[sw.DPID] = h
	h.connID = sw.AttachControllerOn(c.Eng, c.receive)
	h.send(&openflow.Hello{})
	h.send(&openflow.FeaturesRequest{})
	return h
}

// Disconnect closes the controller's connection to every switch, in DPID
// order — the simulation of this controller process dying. In-flight
// messages on the closed connections are dropped by the switches.
func (c *Controller) Disconnect() {
	dpids := make([]uint64, 0, len(c.switches))
	for dpid := range c.switches {
		dpids = append(dpids, dpid)
	}
	sort.Slice(dpids, func(i, j int) bool { return dpids[i] < dpids[j] })
	for _, dpid := range dpids {
		h := c.switches[dpid]
		h.Dev.DetachController(h.connID)
	}
}

// ConnectAll attaches every switch in the network, in DPID order so the
// handshake event sequence (and everything downstream of it) is
// reproducible.
func (c *Controller) ConnectAll() {
	switches := c.Net.Switches()
	dpids := make([]uint64, 0, len(switches))
	for dpid := range switches {
		dpids = append(dpids, dpid)
	}
	sort.Slice(dpids, func(i, j int) bool { return dpids[i] < dpids[j] })
	for _, dpid := range dpids {
		if _, ok := c.switches[dpid]; !ok {
			c.Connect(switches[dpid])
		}
	}
}

// Reconnect re-attaches every switch the controller already knows about
// on a fresh connection (new connection id, equal role) and replays the
// Hello/Features handshake, in DPID order. It models a partitioned
// controller process whose TCP sessions re-establish after the partition
// heals: roles start over at Equal, so an ex-master only regains write
// access through a RoleRequest that survives the switches' generation
// fencing. Heartbeat state is reset; the Dead flag is left as the
// heartbeat layer set it, since liveness is the local view's concern.
func (c *Controller) Reconnect() {
	dpids := make([]uint64, 0, len(c.switches))
	for dpid := range c.switches {
		dpids = append(dpids, dpid)
	}
	sort.Slice(dpids, func(i, j int) bool { return dpids[i] < dpids[j] })
	for _, dpid := range dpids {
		h := c.switches[dpid]
		h.connID = h.Dev.AttachControllerOn(c.Eng, c.receive)
		h.role = openflow.RoleEqual
		h.echoPending = 0
		h.send(&openflow.Hello{})
		h.send(&openflow.FeaturesRequest{})
	}
}

// Switch returns the handle for a datapath id, or nil.
func (c *Controller) Switch(dpid uint64) *SwitchHandle { return c.switches[dpid] }

// Switches returns all connected switch handles.
func (c *Controller) Switches() map[uint64]*SwitchHandle { return c.switches }

func (h *SwitchHandle) send(m openflow.Message) uint32 {
	h.xid++
	b, err := openflow.Marshal(m, h.xid)
	if err != nil {
		panic(err)
	}
	h.Dev.DeliverControlFrom(h.connID, b)
	return h.xid
}

// slave reports (and counts) an attempted write on a slave connection; the
// switch would reject it anyway, so the controller suppresses it locally.
func (h *SwitchHandle) slave() bool {
	if h.role != openflow.RoleSlave {
		return false
	}
	h.ctrl.Stats.SlaveSuppressed++
	return true
}

// PushPolicy delivers a devolution policy update to a cache resident on
// the switch: apply runs after the switch's control-channel delay, as a
// FlowMod would. Slave connections suppress the push (same fencing as
// InstallFlow), so after a migration only the new master can update the
// switch's policy cache.
func (h *SwitchHandle) PushPolicy(apply func()) {
	if h.slave() {
		return
	}
	h.ctrl.Stats.PolicyPushes++
	h.ctrl.Eng.Defer(h.Dev.Proc(), h.Dev.Profile.CtrlDelay, apply)
}

// InstallFlow sends a FlowMod to the switch.
func (h *SwitchHandle) InstallFlow(fm *openflow.FlowMod) {
	if h.slave() {
		return
	}
	h.ctrl.Stats.FlowModsSent++
	h.send(fm)
}

// SendPacketOut injects a packet at the switch.
func (h *SwitchHandle) SendPacketOut(po *openflow.PacketOut) {
	if h.slave() {
		return
	}
	h.ctrl.Stats.PacketOutsSent++
	h.send(po)
}

// SendGroupMod installs or modifies a group.
func (h *SwitchHandle) SendGroupMod(gm *openflow.GroupMod) {
	if h.slave() {
		return
	}
	h.ctrl.Stats.GroupModsSent++
	h.send(gm)
}

// Role returns this controller's role on the switch connection.
func (h *SwitchHandle) Role() uint32 { return h.role }

// NoteRole records a role learned out of band. OpenFlow 1.3 has no
// demotion notification: when a new master claims a switch, the cluster
// coordinator tells the previous master directly.
func (h *SwitchHandle) NoteRole(role uint32) { h.role = role }

// RequestRole sends a RoleRequest; cb (optional) runs on the RoleReply.
// The local role is updated when the reply arrives.
func (h *SwitchHandle) RequestRole(role uint32, generation uint64, cb func(*openflow.RoleReply)) {
	xid := h.send(&openflow.RoleRequest{Role: role, GenerationID: generation})
	if cb != nil {
		h.roleCB[xid] = cb
	}
}

// RequestFlowStats queries the switch's flow statistics; cb runs on reply.
func (h *SwitchHandle) RequestFlowStats(req *openflow.FlowStatsRequest, cb func(*openflow.MultipartReply)) {
	xid := h.send(&openflow.MultipartRequest{MPType: openflow.MultipartFlow, Flow: req})
	h.statsCB[xid] = cb
}

// Barrier sends a barrier request; cb runs when the switch has processed
// all preceding messages.
func (h *SwitchHandle) Barrier(cb func()) {
	xid := h.send(&openflow.BarrierRequest{})
	h.barrierCB[xid] = cb
}

// Dead reports whether the heartbeat monitor declared the switch failed.
func (h *SwitchHandle) Dead() bool { return h.dead }

// receive decodes and dispatches a switch-to-controller message.
func (c *Controller) receive(dpid uint64, raw []byte) {
	h := c.switches[dpid]
	if h == nil {
		return
	}
	msg, xid, err := openflow.Unmarshal(raw)
	if err != nil {
		return
	}
	now := c.Eng.Now()
	switch m := msg.(type) {
	case *openflow.PacketIn:
		c.Stats.PacketIns++
		c.InRate.Add(now, 1)
		h.PacketInRate.Add(now, 1)
		if c.trace != nil {
			if pkt, err := packet.Parse(m.Data); err == nil {
				c.trace.Point(telemetry.PointCtrlRecv, pkt.FlowKey(), dpid, now)
			}
		}
		if c.pinSrv != nil {
			c.pinSrv.Submit(pinJob{h, m})
		} else {
			c.dispatchPacketIn(pinJob{h, m})
		}
	case *openflow.RoleReply:
		h.role = m.Role
		if cb, ok := h.roleCB[xid]; ok {
			delete(h.roleCB, xid)
			cb(m)
		}
	case *openflow.EchoReply:
		c.Stats.EchoReplies++
		h.echoPending = 0
	case *openflow.MultipartReply:
		if cb, ok := h.statsCB[xid]; ok {
			h.statsAcc[xid] = append(h.statsAcc[xid], m.Flows...)
			if !m.More {
				m.Flows = h.statsAcc[xid]
				delete(h.statsAcc, xid)
				delete(h.statsCB, xid)
				cb(m)
			}
		}
	case *openflow.BarrierReply:
		if cb, ok := h.barrierCB[xid]; ok {
			delete(h.barrierCB, xid)
			cb()
		}
	case *openflow.FlowRemoved:
		for _, app := range c.apps {
			if fr, ok := app.(FlowRemovedHandler); ok {
				fr.HandleFlowRemoved(h, m)
			}
		}
	case *openflow.Error:
		c.Stats.ErrorsReceived++
		for _, app := range c.apps {
			if eh, ok := app.(ErrorHandler); ok {
				eh.HandleError(h, m)
			}
		}
	}
}

// dispatchPacketIn parses a punt and consults the apps in registration
// order; with SetCapacity this runs from the paced queue.
func (c *Controller) dispatchPacketIn(j pinJob) {
	pkt, _ := packet.Parse(j.m.Data)
	if c.trace != nil && pkt != nil {
		c.trace.Point(telemetry.PointDispatch, pkt.FlowKey(), j.h.DPID, c.Eng.Now())
	}
	for _, app := range c.apps {
		if app.HandlePacketIn(j.h, j.m, pkt) {
			break
		}
	}
}

// HeartbeatTick performs one ECHO probe round over the given switches: a
// switch with `misses` unanswered probes outstanding is declared dead and
// OnSwitchDead fires once (the paper's vSwitch failure detection, §5.6).
func (c *Controller) HeartbeatTick(dpids []uint64, misses int) {
	for _, dpid := range dpids {
		h := c.switches[dpid]
		if h == nil || h.dead {
			continue
		}
		if h.echoPending >= misses {
			h.dead = true
			if c.OnSwitchDead != nil {
				c.OnSwitchDead(h)
			}
			continue
		}
		h.echoPending++
		h.lastEchoSent = c.Eng.Now()
		if h.echoReq == nil {
			h.echoReq = &openflow.EchoRequest{Data: []byte{byte(dpid)}}
		}
		h.send(h.echoReq)
	}
}

// StartHeartbeat begins periodic ECHO probing of the given switches.
func (c *Controller) StartHeartbeat(dpids []uint64, interval time.Duration, misses int) *sim.Ticker {
	return c.Eng.Every(interval, func() { c.HeartbeatTick(dpids, misses) })
}

// InstallPath installs forwarding rules along hops in reverse order so the
// first-hop rule lands last (paper §5.3: "the forwarding rule on the first
// hop switch is added at last so that packets are forwarded on the new
// path only after all switches on the path are ready"). fm builds the
// FlowMod for each hop. Returns the first-hop handle, or nil if any switch
// on the path is unknown.
func (c *Controller) InstallPath(hops []topo.Hop, fm func(hop topo.Hop) *openflow.FlowMod) *SwitchHandle {
	if len(hops) == 0 {
		return nil
	}
	for i := len(hops) - 1; i >= 0; i-- {
		h := c.switches[hops[i].DPID]
		if h == nil {
			return nil
		}
		h.InstallFlow(fm(hops[i]))
	}
	return c.switches[hops[0].DPID]
}
