package controller

import (
	"sort"

	"scotch/internal/netaddr"
	"scotch/internal/sim"
)

// FlowInfo is the controller's record of one flow: where it entered the
// network (the paper's Flow Info Database, §5.2, keyed by the tunnel-id to
// switch and inner-label to ingress-port mappings), which middleboxes it
// must traverse, and whether it currently rides the Scotch overlay.
type FlowInfo struct {
	Key         netaddr.FlowKey
	FirstHop    uint64 // datapath id of the first physical switch
	IngressPort uint32 // ingress port at the first-hop switch

	// Waypoints are the middlebox-attached switches (S_U, S_D pairs) the
	// flow traverses; a migrated physical path must cross the same ones
	// (§5.4).
	Waypoints []uint64

	OnOverlay      bool   // currently forwarded over the vSwitch mesh
	OverlayVSwitch uint64 // mesh vSwitch handling the flow
	Migrated       bool   // moved to a physical path by the migrator

	Created sim.Time
}

// FlowInfoDB indexes FlowInfo by flow key.
type FlowInfoDB struct {
	flows map[netaddr.FlowKey]*FlowInfo
	// arena is the current block new records are carved from, so storing
	// a flow costs one heap allocation per block rather than one per flow.
	arena []FlowInfo
}

// NewFlowInfoDB returns an empty database.
func NewFlowInfoDB() *FlowInfoDB {
	return &FlowInfoDB{flows: make(map[netaddr.FlowKey]*FlowInfo)}
}

// Lookup returns the record for key, or nil.
func (db *FlowInfoDB) Lookup(key netaddr.FlowKey) *FlowInfo { return db.flows[key] }

// Put stores (replacing) a record.
func (db *FlowInfoDB) Put(fi *FlowInfo) { db.flows[fi.Key] = fi }

// Store copies fi into the database's record arena and indexes it,
// returning the stored record. Hot paths use it instead of Put to avoid
// allocating each FlowInfo individually.
func (db *FlowInfoDB) Store(fi FlowInfo) *FlowInfo {
	if len(db.arena) == 0 {
		db.arena = make([]FlowInfo, 128)
	}
	p := &db.arena[0]
	db.arena = db.arena[1:]
	*p = fi
	db.flows[fi.Key] = p
	return p
}

// Delete removes the record for key.
func (db *FlowInfoDB) Delete(key netaddr.FlowKey) { delete(db.flows, key) }

// Len returns the number of records.
func (db *FlowInfoDB) Len() int { return len(db.flows) }

// All returns every record ordered by flow key; cluster migration uses it
// to transfer a shard's flow state between replicas deterministically.
func (db *FlowInfoDB) All() []*FlowInfo {
	out := make([]*FlowInfo, 0, len(db.flows))
	for _, fi := range db.flows {
		out = append(out, fi)
	}
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].Key, out[j].Key) })
	return out
}

// OverlayFlows returns all records currently on the overlay, ordered by
// flow key: callers act on the result (stats polls, migrations), so the
// order must not leak map iteration nondeterminism into the simulation.
func (db *FlowInfoDB) OverlayFlows() []*FlowInfo {
	var out []*FlowInfo
	for _, fi := range db.flows {
		if fi.OnOverlay {
			out = append(out, fi)
		}
	}
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].Key, out[j].Key) })
	return out
}

// keyLess orders flow keys lexicographically (src, dst, proto, ports).
func keyLess(a, b netaddr.FlowKey) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.Proto != b.Proto {
		return a.Proto < b.Proto
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	return a.DstPort < b.DstPort
}
