// Package controller implements the OpenFlow controller framework the
// Scotch application runs on: switch connections, message dispatch to
// applications, path setup, flow statistics collection, Packet-In rate
// monitoring, and liveness tracking via ECHO heartbeats (§5.4) — the
// roles Ryu plays in the paper's testbed (§6.1).
package controller
