// Package telemetry is the repository's observability layer: control-path
// tracing (one span timeline per reactive flow, exportable as Chrome
// trace-event JSON), an atomic metrics registry scraped in Prometheus text
// format, and a live HTTP endpoint serving /metrics and /debug/pprof.
//
// Everything is designed to be zero-cost when disabled: a nil *Tracer,
// nil *Counter, or nil *Gauge accepts every method call as a no-op
// without allocating, so the simulator's hot paths (pinned at 0 allocs/op
// in the benchmark suite) carry the hooks permanently and pay only a nil
// check when telemetry is off. Recording never schedules simulation
// events or consumes model randomness, so enabling a tracer cannot
// perturb the same-seed byte-identical determinism guarantee. The
// fault-injection harness reuses the same pattern and stamps each
// injected fault as a trace mark.
package telemetry
