package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

func testKey(i byte) netaddr.FlowKey {
	return netaddr.FlowKey{
		Src:     netaddr.MakeIPv4(10, 0, 0, i),
		Dst:     netaddr.MakeIPv4(10, 0, 1, 1),
		Proto:   netaddr.ProtoTCP,
		SrcPort: 1000,
		DstPort: 80,
	}
}

// recordLifecycle records a full in-order control-path lifecycle starting
// at base with 1ms between points.
func recordLifecycle(t *Tracer, key netaddr.FlowKey, base sim.Time) {
	for k := Point(0); k < numPoints; k++ {
		t.Point(k, key, 7, base+sim.Time(k)*time.Millisecond)
	}
}

func TestTracerSpansFullLifecycle(t *testing.T) {
	tr := NewTracer()
	recordLifecycle(tr, testKey(1), 0)
	spans := tr.Spans()
	want := StageNames()
	if len(spans) != len(want) {
		t.Fatalf("spans = %d, want %d", len(spans), len(want))
	}
	for i, s := range spans {
		if s.Stage != want[i] {
			t.Fatalf("span %d stage = %q, want %q", i, s.Stage, want[i])
		}
		if s.Duration() != time.Millisecond {
			t.Fatalf("span %q duration = %v, want 1ms", s.Stage, s.Duration())
		}
		if s.FlowID != 1 {
			t.Fatalf("span flow id = %d", s.FlowID)
		}
	}
}

// TestTracerSpansPacketOutRace covers the post-decision branch: the
// Packet-Out delivers the first packet BEFORE the FlowMod commits through
// the OFA insert queue. The first-packet span must anchor at the install
// point (the latest earlier point not after it), not at rule-applied.
func TestTracerSpansPacketOutRace(t *testing.T) {
	tr := NewTracer()
	key := testKey(1)
	tr.Point(PointMiss, key, 7, 0)
	tr.Point(PointPacketInEmit, key, 7, 1*time.Millisecond)
	tr.Point(PointInstall, key, 0, 2*time.Millisecond)
	tr.Point(PointRuleApplied, key, 7, 5*time.Millisecond) // OFA insert latency
	tr.Point(PointDelivered, key, 0, 3*time.Millisecond)   // Packet-Out raced ahead

	var first, rule *Span
	for _, s := range tr.Spans() {
		s := s
		switch s.Stage {
		case "first-packet":
			first = &s
		case "rule-install":
			rule = &s
		}
	}
	if first == nil || rule == nil {
		t.Fatalf("missing spans: %+v", tr.Spans())
	}
	if first.Start != 2*time.Millisecond || first.End != 3*time.Millisecond {
		t.Fatalf("first-packet = [%v, %v], want [2ms, 3ms]", first.Start, first.End)
	}
	if rule.Start != 2*time.Millisecond || rule.End != 5*time.Millisecond {
		t.Fatalf("rule-install = [%v, %v], want [2ms, 5ms]", rule.Start, rule.End)
	}
}

func TestTracerFirstOccurrenceWins(t *testing.T) {
	tr := NewTracer()
	key := testKey(1)
	tr.Point(PointMiss, key, 7, 0)
	tr.Point(PointMiss, key, 9, 5*time.Millisecond) // retransmission: ignored
	tr.Point(PointPacketInEmit, key, 7, time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Duration() != time.Millisecond {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestTracerMaxFlows(t *testing.T) {
	tr := NewTracer()
	tr.MaxFlows = 2
	for i := byte(1); i <= 5; i++ {
		tr.Point(PointMiss, testKey(i), 1, 0)
	}
	if tr.Flows() != 2 {
		t.Fatalf("flows = %d, want 2", tr.Flows())
	}
	// Existing flows keep recording past the cap.
	tr.Point(PointPacketInEmit, testKey(1), 1, time.Millisecond)
	if len(tr.Spans()) != 1 {
		t.Fatalf("spans = %+v", tr.Spans())
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tr.Point(PointMiss, testKey(1), 1, 0)
	tr.PointTag(PointClassified, testKey(1), 1, 0, "overlay")
	tr.Mark("event", 0)
	if tr.Flows() != 0 || tr.Spans() != nil || tr.StageSummary() != nil {
		t.Fatal("nil tracer recorded something")
	}
}

func TestStageSummaryQuantiles(t *testing.T) {
	tr := NewTracer()
	// 100 flows with ofa-queue latency i ms.
	for i := byte(1); i <= 100; i++ {
		key := testKey(i)
		tr.Point(PointMiss, key, 1, 0)
		tr.Point(PointPacketInEmit, key, 1, sim.Time(i)*time.Millisecond)
	}
	ss := tr.StageSummary()
	if len(ss) != 1 || ss[0].Stage != "ofa-queue" || ss[0].Count != 100 {
		t.Fatalf("summary = %+v", ss)
	}
	if ss[0].Max != 100*time.Millisecond {
		t.Fatalf("max = %v", ss[0].Max)
	}
	if ss[0].P50 < 49*time.Millisecond || ss[0].P50 > 52*time.Millisecond {
		t.Fatalf("p50 = %v", ss[0].P50)
	}
}

func TestWriteStageSummaryEmpty(t *testing.T) {
	var buf bytes.Buffer
	NewTracer().WriteStageSummary(&buf)
	if !strings.Contains(buf.String(), "no control-path spans") {
		t.Fatalf("empty summary = %q", buf.String())
	}
}

// chromeDoc mirrors the trace-event JSON layout for decoding in tests.
type chromeDoc struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		TS    float64        `json:"ts"`
		Dur   float64        `json:"dur"`
		PID   int            `json:"pid"`
		TID   int            `json:"tid"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	recordLifecycle(tr, testKey(1), 0)
	tr.Mark("pod-migrate pod0 0->1", 10*time.Millisecond)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, NamedTrace{Name: "run1", Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	stages := make(map[string]bool)
	var marks, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "X":
			stages[ev.Name] = true
			if ev.Dur != 1000 { // 1ms in µs
				t.Fatalf("span %q dur = %v µs", ev.Name, ev.Dur)
			}
		case "i":
			marks++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
	}
	if len(stages) != len(StageNames()) {
		t.Fatalf("distinct stages = %d, want %d", len(stages), len(StageNames()))
	}
	if marks != 1 || meta != 2 { // process_name + thread_name
		t.Fatalf("marks = %d, meta = %d", marks, meta)
	}
}

// TestWriteChromeTraceEmptyAndDisabled: an empty tracer and a nil (disabled)
// tracer both still produce a valid, loadable document.
func TestWriteChromeTraceEmptyAndDisabled(t *testing.T) {
	for _, nt := range []NamedTrace{
		{Name: "empty", Tracer: NewTracer()},
		{Name: "disabled", Tracer: nil},
	} {
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, nt); err != nil {
			t.Fatalf("%s: %v", nt.Name, err)
		}
		var doc chromeDoc
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("%s: invalid JSON: %v", nt.Name, err)
		}
		if doc.TraceEvents == nil {
			t.Fatalf("%s: traceEvents must be [], not null", nt.Name)
		}
		if doc.DisplayTimeUnit != "ms" {
			t.Fatalf("%s: displayTimeUnit = %q", nt.Name, doc.DisplayTimeUnit)
		}
	}
	// No tracers at all.
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("no-tracer document invalid")
	}
}

func TestFlowKeyFromMatch(t *testing.T) {
	key := testKey(1)
	m := &openflow.Match{
		Fields:  openflow.FieldEthType | openflow.FieldIPProto | openflow.FieldIPv4Src | openflow.FieldIPv4Dst | openflow.FieldTCPSrc | openflow.FieldTCPDst,
		EthType: packet.EtherTypeIPv4,
		IPProto: key.Proto,
		IPv4Src: key.Src,
		IPv4Dst: key.Dst,
		TCPSrc:  key.SrcPort,
		TCPDst:  key.DstPort,
	}
	got, ok := FlowKeyFromMatch(m)
	if !ok || got != key {
		t.Fatalf("got %v ok=%v, want %v", got, ok, key)
	}
	// Wildcard match (no 5-tuple) belongs to no flow.
	if _, ok := FlowKeyFromMatch(&openflow.Match{}); ok {
		t.Fatal("wildcard match produced a key")
	}
}
