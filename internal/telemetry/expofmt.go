package telemetry

// Prometheus text exposition encoding: real label pairs with proper value
// escaping, plus a parser for round-trip tests and downstream tooling.
//
// Historically the registry treated a full series string like
// `family{tenant="x"}` as an opaque metric *name*: label values were
// Go-quoted (strconv-style \u escapes a Prometheus scraper reads
// literally) and two registrations differing only in label order produced
// two distinct series. This file makes the label block structural — every
// series key is canonicalized on lookup (labels sorted by name, values
// escaped per the exposition format's three escapes: \\ , \" and \n) — so
// the legacy string-keyed API keeps working as a compat alias for the
// same underlying series.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair. Values are stored unescaped.
type Label struct {
	Name  string
	Value string
}

// EscapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote, and newline.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// UnescapeLabelValue reverses EscapeLabelValue. Unknown escape sequences
// are kept literally (lenient, for legacy Go-quoted values).
func UnescapeLabelValue(v string) string {
	if !strings.ContainsRune(v, '\\') {
		return v
	}
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c != '\\' || i+1 >= len(v) {
			b.WriteByte(c)
			continue
		}
		i++
		switch v[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			b.WriteByte('\\')
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// ParseSeries splits a series key into its family and label pairs, e.g.
// `fam{a="1",b="2"}` into ("fam", [{a 1} {b 2}]). Label values are
// unescaped. A key without a label block returns nil labels.
func ParseSeries(series string) (fam string, labels []Label, err error) {
	i := strings.IndexByte(series, '{')
	if i < 0 {
		return series, nil, nil
	}
	fam = series[:i]
	block := series[i:]
	if len(block) < 2 || block[len(block)-1] != '}' {
		return "", nil, fmt.Errorf("telemetry: malformed label block in %q", series)
	}
	body := block[1 : len(block)-1]
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return "", nil, fmt.Errorf("telemetry: malformed label pair in %q", series)
		}
		name := strings.TrimSpace(body[:eq])
		rest := body[eq+2:] // past the opening quote
		// Scan to the closing quote, honoring backslash escapes.
		end := -1
		for j := 0; j < len(rest); j++ {
			if rest[j] == '\\' {
				j++
				continue
			}
			if rest[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			return "", nil, fmt.Errorf("telemetry: unterminated label value in %q", series)
		}
		labels = append(labels, Label{Name: name, Value: UnescapeLabelValue(rest[:end])})
		body = rest[end+1:]
		if strings.HasPrefix(body, ",") {
			body = body[1:]
		} else if len(body) > 0 {
			return "", nil, fmt.Errorf("telemetry: malformed label separator in %q", series)
		}
	}
	return fam, labels, nil
}

// FormatSeries renders a canonical series key: family plus labels sorted
// by name, values escaped. It is the inverse of ParseSeries.
func FormatSeries(fam string, labels []Label) string {
	if len(labels) == 0 {
		return fam
	}
	sorted := append([]Label(nil), labels...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	b.WriteString(fam)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// canonicalKey normalizes a series key so that differently ordered or
// differently escaped spellings of the same family+labels alias one
// series. Malformed keys are kept verbatim (legacy compat).
func canonicalKey(series string) string {
	if !strings.ContainsRune(series, '{') {
		return series
	}
	fam, labels, err := ParseSeries(series)
	if err != nil {
		return series
	}
	return FormatSeries(fam, labels)
}

// Sample is one parsed exposition sample: a family, its label pairs
// (unescaped, in exposition order), and the sample value.
type Sample struct {
	Family string
	Labels []Label
	Value  float64
}

// Label returns the value of the named label ("" when absent).
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// ParseExposition parses the subset of the Prometheus text format that
// WritePrometheus emits — `# TYPE` comments (skipped) and
// `series value` sample lines — returning the samples in input order.
// It exists for round-trip tests and for tools that diff scrapes.
func ParseExposition(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// The series may contain spaces inside quoted label values; the
		// value is everything after the last space outside the block.
		// Values never contain '}', so the last '}' ends the block even
		// when a quoted label value contains one.
		sep := -1
		if end := strings.LastIndexByte(text, '}'); end >= 0 {
			rest := text[end+1:]
			j := strings.LastIndexByte(rest, ' ')
			if j >= 0 {
				sep = end + 1 + j
			}
		} else {
			sep = strings.LastIndexByte(text, ' ')
		}
		if sep < 0 {
			return nil, fmt.Errorf("telemetry: line %d: no value in %q", line, text)
		}
		series := strings.TrimSpace(text[:sep])
		v, err := strconv.ParseFloat(strings.TrimSpace(text[sep+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: bad value: %v", line, err)
		}
		fam, labels, err := ParseSeries(series)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %v", line, err)
		}
		out = append(out, Sample{Family: fam, Labels: labels, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
