package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/sim"
)

// Point identifies one instrumented instant in a reactive flow's
// control-path lifecycle. Points are recorded in causal order; the span for
// a stage is the interval between two consecutive recorded points.
type Point uint8

const (
	// PointMiss: the flow's first packet missed in a switch's flow tables
	// and entered the OFA's Packet-In queue.
	PointMiss Point = iota
	// PointPacketInEmit: the OFA emitted the Packet-In toward the
	// controller (OFA queueing ends here).
	PointPacketInEmit
	// PointCtrlRecv: the controller decoded the Packet-In off its control
	// channel (covers the wire and, when the overlay is engaged, the
	// vSwitch relay detour).
	PointCtrlRecv
	// PointDispatch: the punt left the controller's ingress queue and was
	// handed to the applications.
	PointDispatch
	// PointClassified: the Scotch app finished classifying the request
	// (physical path, overlay, duplicate, or drop).
	PointClassified
	// PointInstall: the paced install scheduler served the request and the
	// first FlowMod left the controller.
	PointInstall
	// PointRuleApplied: a switch committed the flow's first rule to a flow
	// table (OFA insertion latency ends here).
	PointRuleApplied
	// PointDelivered: the flow's first packet reached its destination host.
	PointDelivered

	numPoints
)

// stageNames names the span that ENDS at each point; index 0 (PointMiss)
// starts the timeline and closes no span.
var stageNames = [numPoints]string{
	PointPacketInEmit: "ofa-queue",
	PointCtrlRecv:     "control-channel",
	PointDispatch:     "controller-queue",
	PointClassified:   "app-classify",
	PointInstall:      "sched-wait",
	PointRuleApplied:  "rule-install",
	PointDelivered:    "first-packet",
}

// StageNames returns the ordered control-path stage names a full flow
// lifecycle produces.
func StageNames() []string {
	out := make([]string, 0, numPoints-1)
	for _, n := range stageNames {
		if n != "" {
			out = append(out, n)
		}
	}
	return out
}

// pointRec is one recorded instant.
type pointRec struct {
	set  bool
	dpid uint64
	at   sim.Time
	tag  string // optional annotation (classification outcome etc.)
}

// flowTrace is the per-flow lifecycle: each point kind is recorded at most
// once (the first occurrence wins — later duplicates belong to retries or
// downstream hops of an already-traced stage).
type flowTrace struct {
	id  int
	key netaddr.FlowKey
	pts [numPoints]pointRec
}

// Tracer records control-path lifecycles. It is NOT goroutine-safe: a
// tracer belongs to one simulation engine's event loop (experiments each
// own a private engine, so the parallel runner uses one tracer per
// experiment). All methods are nil-receiver-safe; a nil *Tracer is the
// disabled state and costs a single branch per hook.
type Tracer struct {
	// MaxFlows bounds the number of distinct flows traced (first-come);
	// beyond it new flows are ignored so tracing a DDoS-scale experiment
	// cannot exhaust memory. Zero means the default of 1<<20.
	MaxFlows int

	flows map[netaddr.FlowKey]*flowTrace
	order []*flowTrace
	marks []mark
}

// mark is a global instant event (pod migration, failover, activation).
type mark struct {
	name string
	at   sim.Time
}

// NewTracer returns an enabled tracer.
func NewTracer() *Tracer {
	return &Tracer{flows: make(map[netaddr.FlowKey]*flowTrace)}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Point records an instant in a flow's lifecycle. Nil-safe; the first
// occurrence of each point kind per flow wins.
func (t *Tracer) Point(kind Point, key netaddr.FlowKey, dpid uint64, now sim.Time) {
	t.PointTag(kind, key, dpid, now, "")
}

// PointTag is Point with an annotation carried into the exported span args.
func (t *Tracer) PointTag(kind Point, key netaddr.FlowKey, dpid uint64, now sim.Time, tag string) {
	if t == nil || kind >= numPoints {
		return
	}
	ft := t.flows[key]
	if ft == nil {
		limit := t.MaxFlows
		if limit <= 0 {
			limit = 1 << 20
		}
		if len(t.order) >= limit {
			return
		}
		ft = &flowTrace{id: len(t.order) + 1, key: key}
		t.flows[key] = ft
		t.order = append(t.order, ft)
	}
	if ft.pts[kind].set {
		return
	}
	ft.pts[kind] = pointRec{set: true, dpid: dpid, at: now, tag: tag}
}

// Mark records a global instant event (e.g. "pod-migrate pod0 0->1").
func (t *Tracer) Mark(name string, now sim.Time) {
	if t == nil {
		return
	}
	t.marks = append(t.marks, mark{name: name, at: now})
}

// MarkEvent is an exported view of one recorded global instant event.
type MarkEvent struct {
	Name string
	At   sim.Time
}

// Marks returns the global instant events recorded so far, in insertion
// order. Nil-safe.
func (t *Tracer) Marks() []MarkEvent {
	if t == nil {
		return nil
	}
	out := make([]MarkEvent, len(t.marks))
	for i, m := range t.marks {
		out[i] = MarkEvent{Name: m.name, At: m.at}
	}
	return out
}

// Flows returns the number of distinct flows traced.
func (t *Tracer) Flows() int {
	if t == nil {
		return 0
	}
	return len(t.order)
}

// Span is one reconstructed control-path stage of one flow.
type Span struct {
	Stage string
	Flow  netaddr.FlowKey
	// FlowID is the tracer-local ordinal of the flow (1-based).
	FlowID int
	// DPID is the switch the closing point was observed at (0 when the
	// point is controller- or host-side).
	DPID  uint64
	Start sim.Time
	End   sim.Time
	Tag   string
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Spans reconstructs every flow's stage spans in flow-arrival order. Each
// recorded point closes a span named after its stage, anchored at the
// latest earlier point that does not precede it in causal order but does
// in time — the control path branches after the app decision (the FlowMod
// commits through the OFA insert queue while the Packet-Out races ahead),
// so the first-packet span can legitimately start before rule-install
// ends.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, ft := range t.order {
		for k := 1; k < int(numPoints); k++ {
			p := &ft.pts[k]
			if !p.set || stageNames[k] == "" {
				continue
			}
			for j := k - 1; j >= 0; j-- {
				q := &ft.pts[j]
				if !q.set || q.at > p.at {
					continue
				}
				out = append(out, Span{
					Stage:  stageNames[k],
					Flow:   ft.key,
					FlowID: ft.id,
					DPID:   p.dpid,
					Start:  q.at,
					End:    p.at,
					Tag:    p.tag,
				})
				break
			}
		}
	}
	return out
}

// StageStats summarizes the latency distribution of one stage across all
// traced flows.
type StageStats struct {
	Stage string
	Count int
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// StageSummary aggregates Spans per stage, in canonical stage order.
// Stages with no samples are omitted.
func (t *Tracer) StageSummary() []StageStats {
	if t == nil {
		return nil
	}
	byStage := make(map[string][]time.Duration)
	for _, s := range t.Spans() {
		byStage[s.Stage] = append(byStage[s.Stage], s.Duration())
	}
	var out []StageStats
	for _, name := range StageNames() {
		ds := byStage[name]
		if len(ds) == 0 {
			continue
		}
		slices.Sort(ds)
		out = append(out, StageStats{
			Stage: name,
			Count: len(ds),
			P50:   quantileDur(ds, 0.50),
			P99:   quantileDur(ds, 0.99),
			Max:   ds[len(ds)-1],
		})
	}
	return out
}

// quantileDur returns the q-quantile of a sorted duration slice (nearest
// rank with linear interpolation, matching metrics.Histogram.Quantile).
func quantileDur(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	if q <= 0 {
		return ds[0]
	}
	if q >= 1 {
		return ds[len(ds)-1]
	}
	pos := q * float64(len(ds)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(ds) {
		return ds[i]
	}
	return ds[i] + time.Duration(frac*float64(ds[i+1]-ds[i]))
}

// chromeEvent is one entry of the Chrome trace-event format ("trace event
// JSON", loadable in chrome://tracing and Perfetto).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// NamedTrace labels a tracer for multi-process Chrome export (one process
// per experiment).
type NamedTrace struct {
	Name   string
	Tracer *Tracer
}

// WriteChromeTrace exports one or more tracers as a single Chrome
// trace-event JSON document. Each tracer becomes a "process" (pid); each
// traced flow becomes a "thread" (tid) whose spans are complete ("X")
// events; marks become instant ("i") events. Timestamps are virtual-time
// microseconds. Disabled (nil) or empty tracers export no events but still
// produce a valid document.
func WriteChromeTrace(w io.Writer, traces ...NamedTrace) error {
	doc := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for i, nt := range traces {
		pid := i + 1
		if nt.Name != "" {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "process_name", Phase: "M", PID: pid,
				Args: map[string]any{"name": nt.Name},
			})
		}
		t := nt.Tracer
		if t == nil {
			continue
		}
		for _, ft := range t.order {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", PID: pid, TID: ft.id,
				Args: map[string]any{"name": ft.key.String()},
			})
		}
		for _, s := range t.Spans() {
			args := map[string]any{"flow": s.Flow.String()}
			if s.DPID != 0 {
				args["dpid"] = s.DPID
			}
			if s.Tag != "" {
				args["tag"] = s.Tag
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name:  s.Stage,
				Cat:   "control-path",
				Phase: "X",
				TS:    float64(s.Start) / float64(time.Microsecond),
				Dur:   float64(s.Duration()) / float64(time.Microsecond),
				PID:   pid,
				TID:   s.FlowID,
				Args:  args,
			})
		}
		for _, m := range t.marks {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name:  m.name,
				Cat:   "cluster",
				Phase: "i",
				TS:    float64(m.at) / float64(time.Microsecond),
				PID:   pid,
				TID:   0,
				Args:  map[string]any{"s": "p"},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

// WriteStageSummary prints the per-stage latency breakdown as an aligned
// text table ("-stages" output).
func (t *Tracer) WriteStageSummary(w io.Writer) {
	stats := t.StageSummary()
	if len(stats) == 0 {
		fmt.Fprintln(w, "no control-path spans recorded")
		return
	}
	fmt.Fprintf(w, "%-18s %8s %12s %12s %12s\n", "stage", "count", "p50_ms", "p99_ms", "max_ms")
	for _, s := range stats {
		fmt.Fprintf(w, "%-18s %8d %12.3f %12.3f %12.3f\n",
			s.Stage, s.Count,
			float64(s.P50)/float64(time.Millisecond),
			float64(s.P99)/float64(time.Millisecond),
			float64(s.Max)/float64(time.Millisecond))
	}
}

// FlowKeyFromMatch recovers the 5-tuple from an exact-match rule — the
// inverse of the controller apps' exact-match builders. ok is false for
// wildcard matches (offload defaults, table-miss rules), which belong to no
// single flow.
func FlowKeyFromMatch(m *openflow.Match) (netaddr.FlowKey, bool) {
	need := openflow.FieldIPv4Src | openflow.FieldIPv4Dst | openflow.FieldIPProto
	if !m.Fields.Has(need) {
		return netaddr.FlowKey{}, false
	}
	k := netaddr.FlowKey{Src: m.IPv4Src, Dst: m.IPv4Dst, Proto: m.IPProto}
	switch {
	case m.Fields.Has(openflow.FieldTCPSrc | openflow.FieldTCPDst):
		k.SrcPort, k.DstPort = m.TCPSrc, m.TCPDst
	case m.Fields.Has(openflow.FieldUDPSrc | openflow.FieldUDPDst):
		k.SrcPort, k.DstPort = m.UDPSrc, m.UDPDst
	}
	return k, true
}
