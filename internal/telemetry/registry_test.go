package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("scotch_test_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if again := r.Counter("scotch_test_total"); again != c {
		t.Fatal("counter lookup not idempotent")
	}

	g := r.Gauge("scotch_test_depth")
	g.Set(2.5)
	g.Add(1.5)
	if g.Value() != 4 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	r.GaugeFunc("f", func() float64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles recorded values")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestLabels(t *testing.T) {
	if got := Labels(); got != "" {
		t.Fatalf("Labels() = %q", got)
	}
	if got := Labels("dpid", "7"); got != `{dpid="7"}` {
		t.Fatalf("Labels = %q", got)
	}
	if got := Labels("a", "1", "b", `x"y`); got != `{a="1",b="x\"y"}` {
		t.Fatalf("Labels = %q", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`scotch_pkt_total{dpid="1"}`).Add(10)
	r.Counter(`scotch_pkt_total{dpid="2"}`).Add(20)
	r.Gauge("scotch_depth").Set(3)
	r.GaugeFunc("scotch_live", func() float64 { return 42 })
	r.CounterFunc("scotch_ext_total", func() uint64 { return 99 })
	h := r.Histogram("scotch_latency_seconds", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(10)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// One TYPE line per family, even with multiple labeled series.
	if n := strings.Count(out, "# TYPE scotch_pkt_total counter"); n != 1 {
		t.Fatalf("TYPE lines for scotch_pkt_total = %d\n%s", n, out)
	}
	for _, want := range []string{
		`scotch_pkt_total{dpid="1"} 10`,
		`scotch_pkt_total{dpid="2"} 20`,
		"# TYPE scotch_depth gauge",
		"scotch_depth 3",
		"scotch_live 42",
		"# TYPE scotch_ext_total counter",
		"scotch_ext_total 99",
		"# TYPE scotch_latency_seconds histogram",
		`scotch_latency_seconds_bucket{le="0.001"} 1`,
		`scotch_latency_seconds_bucket{le="0.1"} 2`,
		`scotch_latency_seconds_bucket{le="+Inf"} 3`,
		"scotch_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: a second scrape is byte-identical.
	var buf2 bytes.Buffer
	r.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Fatal("scrape output not deterministic")
	}
}

func TestHistogramLabeledBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`scotch_lat{dpid="7"}`, []float64{1})
	h.Observe(0.5)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`scotch_lat_bucket{dpid="7",le="1"} 1`,
		`scotch_lat_bucket{dpid="7",le="+Inf"} 1`,
		`scotch_lat_sum{dpid="7"} 0.5`,
		`scotch_lat_count{dpid="7"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryConcurrent hammers creation, updates, and scrapes from many
// goroutines; run with -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("scotch_shared_total")
			g := r.Gauge("scotch_shared_gauge")
			h := r.Histogram("scotch_shared_hist", nil)
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 1e-4)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if v := r.Counter("scotch_shared_total").Value(); v != 8000 {
		t.Fatalf("counter = %d, want 8000", v)
	}
	if v := r.Gauge("scotch_shared_gauge").Value(); v != 8000 {
		t.Fatalf("gauge = %v, want 8000", v)
	}
	if n := r.Histogram("scotch_shared_hist", nil).Count(); n != 8000 {
		t.Fatalf("hist count = %d, want 8000", n)
	}
}
