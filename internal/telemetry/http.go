package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"time"
)

// Server exposes a registry over HTTP: `/metrics` in Prometheus text
// format and the standard `/debug/pprof` profiling handlers. It listens
// on its own mux so enabling telemetry never touches http.DefaultServeMux.
type Server struct {
	Registry *Registry
	ln       net.Listener
	srv      *http.Server
}

// ServerOption customizes StartServer.
type ServerOption func(*serverConfig)

type serverConfig struct {
	extra map[string]http.Handler
}

// WithHandler mounts an extra handler on the telemetry mux (e.g. the
// observatory's /statusz). Paths starting with /metrics or /debug are
// reserved and silently ignored.
func WithHandler(path string, h http.Handler) ServerOption {
	return func(c *serverConfig) {
		if path == "" || path == "/" || h == nil {
			return
		}
		if len(path) >= 8 && path[:8] == "/metrics" {
			return
		}
		if len(path) >= 6 && path[:6] == "/debug" {
			return
		}
		c.extra[path] = h
	}
}

// EnableContentionProfiling turns on runtime mutex and block profiling so
// /debug/pprof/mutex and /debug/pprof/block carry data. mutexFraction is
// the sampling denominator passed to runtime.SetMutexProfileFraction;
// blockRate is the nanosecond threshold for runtime.SetBlockProfileRate.
// Values <= 0 leave the corresponding profile untouched (both default to
// off, which is also the process default), so calling this with zeros is
// a no-op.
func EnableContentionProfiling(mutexFraction, blockRate int) {
	if mutexFraction > 0 {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
	if blockRate > 0 {
		runtime.SetBlockProfileRate(blockRate)
	}
}

// StartServer binds addr (e.g. "127.0.0.1:9090" or ":0") and serves the
// registry in a background goroutine. Returns an error if the listen fails.
func StartServer(addr string, reg *Registry, opts ...ServerOption) (*Server, error) {
	cfg := serverConfig{extra: make(map[string]http.Handler)}
	for _, o := range opts {
		o(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{Registry: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	index := []string{"/metrics", "/debug/pprof/"}
	for path, h := range cfg.extra {
		mux.Handle(path, h)
		index = append(index, path)
	}
	sort.Strings(index)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "scotch telemetry:")
		for _, p := range index {
			fmt.Fprintf(w, " %s", p)
		}
		fmt.Fprintln(w)
	})
	s.ln = ln
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the listener down. Nil-safe.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.Registry.WritePrometheus(w); err != nil {
		// Headers are already sent; nothing more to do.
		return
	}
}
