package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a registry over HTTP: `/metrics` in Prometheus text
// format and the standard `/debug/pprof` profiling handlers. It listens
// on its own mux so enabling telemetry never touches http.DefaultServeMux.
type Server struct {
	Registry *Registry
	ln       net.Listener
	srv      *http.Server
}

// StartServer binds addr (e.g. "127.0.0.1:9090" or ":0") and serves the
// registry in a background goroutine. Returns an error if the listen fails.
func StartServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{Registry: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "scotch telemetry: /metrics /debug/pprof/")
	})
	s.ln = ln
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the listener down. Nil-safe.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.Registry.WritePrometheus(w); err != nil {
		// Headers are already sent; nothing more to do.
		return
	}
}
