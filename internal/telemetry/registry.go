package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a goroutine-safe collection of named metrics, scraped in
// Prometheus text exposition format. Series names may carry a label block
// (`name{label="v"}`); series of the same family share one # TYPE line.
// Keys are canonicalized on every lookup — labels sorted by name, values
// escaped per the exposition format — so the legacy label-in-name
// spelling remains a readable alias for real label pairs (see
// FormatSeries/ParseSeries).
//
// Instrument handles (Counter, Gauge, Histogram) are resolved once at wiring
// time and then updated lock-free with atomics, so instrumented hot paths
// never contend on the registry map. All lookup methods are nil-receiver
// safe and return nil handles, whose update methods are in turn nil-safe:
// code instruments unconditionally and a disabled registry costs one branch.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	counterFns map[string]func() uint64
	gauges     map[string]*Gauge
	gaugeFns   map[string]func() float64
	hists      map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		counterFns: make(map[string]func() uint64),
		gauges:     make(map[string]*Gauge),
		gaugeFns:   make(map[string]func() float64),
		hists:      make(map[string]*Histogram),
	}
}

// Labels formats key/value pairs as a Prometheus label block, e.g.
// Labels("dpid", "7") == `{dpid="7"}`. Values are escaped per the text
// exposition format (see EscapeLabelValue). An empty argument list
// yields "".
func Labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. Nil-safe.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n. Nil-safe.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float value (atomically stored as float bits).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by d (compare-and-swap loop). Nil-safe.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default histogram bounds (seconds), spanning the
// microsecond-to-second control-path latencies this repository measures.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1, 5,
}

// Histogram is a fixed-bucket cumulative histogram with atomic counters.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // one per bound, plus +Inf at the end
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of samples (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Counter returns (creating if needed) the counter with the given series
// name. Nil-safe: a nil registry returns a nil (no-op) handle. The key is
// canonicalized (labels sorted, values escaped), so older label-in-name
// spellings of the same series alias the same counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	name = canonicalKey(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the given series name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	name = canonicalKey(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// CounterFunc registers a monotonic counter evaluated at scrape time, for
// subsystems that already keep their own atomic counters. The function must
// be safe to call from the scraping goroutine.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	name = canonicalKey(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFns[name] = fn
}

// GaugeFunc registers a gauge evaluated at scrape time. The function must
// be safe to call from the scraping goroutine; simulation-side bindings
// are scraped only when their engine is idle.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	name = canonicalKey(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns (creating if needed) a histogram with the given bounds
// (DefBuckets when bounds is nil). Bounds are fixed at first creation.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	name = canonicalKey(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// family strips the label block from a series name.
func family(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// labelsOf returns the label block ("" or "{...}") of a series name.
func labelsOf(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[i:]
	}
	return ""
}

// WritePrometheus scrapes every metric in Prometheus text exposition
// format, sorted by series name so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type series struct {
		name string
		typ  string
		emit func(io.Writer, string) error
	}
	r.mu.RLock()
	all := make([]series, 0, len(r.counters)+len(r.counterFns)+len(r.gauges)+len(r.gaugeFns)+len(r.hists))
	for name, c := range r.counters {
		c := c
		all = append(all, series{name, "counter", func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "%s %d\n", n, c.Value())
			return err
		}})
	}
	for name, fn := range r.counterFns {
		fn := fn
		all = append(all, series{name, "counter", func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "%s %d\n", n, fn())
			return err
		}})
	}
	for name, g := range r.gauges {
		g := g
		all = append(all, series{name, "gauge", func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "%s %v\n", n, g.Value())
			return err
		}})
	}
	for name, fn := range r.gaugeFns {
		fn := fn
		all = append(all, series{name, "gauge", func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "%s %v\n", n, fn())
			return err
		}})
	}
	for name, h := range r.hists {
		h := h
		all = append(all, series{name, "histogram", func(w io.Writer, n string) error {
			fam, lbl := family(n), labelsOf(n)
			var cum uint64
			for i, b := range h.bounds {
				cum += h.buckets[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, mergeLabels(lbl, fmt.Sprintf("le=%q", fmtFloat(b))), cum); err != nil {
					return err
				}
			}
			cum += h.buckets[len(h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, mergeLabels(lbl, `le="+Inf"`), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %v\n", fam, lbl, h.Sum()); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam, lbl, h.Count())
			return err
		}})
	}
	r.mu.RUnlock()

	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	seenType := make(map[string]bool)
	for _, s := range all {
		fam := family(s.name)
		if !seenType[fam] {
			seenType[fam] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, s.typ); err != nil {
				return err
			}
		}
		if err := s.emit(w, s.name); err != nil {
			return err
		}
	}
	return nil
}

// mergeLabels combines an existing label block with one extra label.
func mergeLabels(block, extra string) string {
	if block == "" {
		return "{" + extra + "}"
	}
	return block[:len(block)-1] + "," + extra + "}"
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
