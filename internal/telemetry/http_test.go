package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("scotch_requests_total").Add(3)
	reg.GaugeFunc("scotch_live_value", func() float64 { return 7 })

	srv, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE scotch_requests_total counter",
		"scotch_requests_total 3",
		"scotch_live_value 7",
	} {
		if !strings.Contains(body, want+"\n") {
			t.Fatalf("body missing %q:\n%s", want, body)
		}
	}

	// Metrics move between scrapes: counters via their handle, gauge funcs
	// at scrape time.
	reg.Counter("scotch_requests_total").Add(2)
	_, body2, _ := get(t, base+"/metrics")
	if !strings.Contains(body2, "scotch_requests_total 5\n") {
		t.Fatalf("second scrape missing updated counter:\n%s", body2)
	}
}

func TestServerPprofAndRoot(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: code=%d", code)
	}
	if code, body, _ := get(t, base+"/"); code != http.StatusOK || !strings.Contains(body, "telemetry") {
		t.Fatalf("root: code=%d body=%q", code, body)
	}
	if code, _, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path code = %d", code)
	}
}

func TestServerCloseNil(t *testing.T) {
	var s *Server
	if s.Addr() != "" {
		t.Fatal("nil server addr")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
