package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestEscapeUnescapeLabelValue(t *testing.T) {
	cases := []string{
		"plain",
		`back\slash`,
		`quo"te`,
		"new\nline",
		`all\"three` + "\n",
		"unicode-café-日本",
		"",
	}
	for _, v := range cases {
		esc := EscapeLabelValue(v)
		if strings.ContainsRune(esc, '\n') {
			t.Fatalf("escaped value %q still contains a raw newline", esc)
		}
		if got := UnescapeLabelValue(esc); got != v {
			t.Fatalf("round trip of %q: escaped %q, unescaped %q", v, esc, got)
		}
	}
	// Lenient on unknown escapes (legacy Go-quoted values).
	if got := UnescapeLabelValue(`a\tb`); got != `a\tb` {
		t.Fatalf("unknown escape mangled: %q", got)
	}
}

func TestParseSeriesRoundTrip(t *testing.T) {
	fam, labels, err := ParseSeries(`fam{b="2",a="x\"y,z"}`)
	if err != nil {
		t.Fatal(err)
	}
	if fam != "fam" || len(labels) != 2 {
		t.Fatalf("fam=%q labels=%v", fam, labels)
	}
	if labels[1].Name != "a" || labels[1].Value != `x"y,z` {
		t.Fatalf("label a = %+v", labels[1])
	}
	// FormatSeries sorts, so the canonical form puts a first.
	if got := FormatSeries(fam, labels); got != `fam{a="x\"y,z",b="2"}` {
		t.Fatalf("canonical = %q", got)
	}
	// No label block.
	fam, labels, err = ParseSeries("bare_series")
	if err != nil || fam != "bare_series" || labels != nil {
		t.Fatalf("bare: %q %v %v", fam, labels, err)
	}
}

func TestParseSeriesMalformed(t *testing.T) {
	for _, s := range []string{
		`fam{`, `fam{a=1}`, `fam{a="1}`, `fam{a="1" b="2"}`, `fam{="1"}`,
	} {
		if _, _, err := ParseSeries(s); err == nil {
			t.Errorf("ParseSeries(%q) accepted malformed input", s)
		}
	}
}

// TestRegistryCanonicalAlias pins the compat behavior: the same
// family+labels spelled with a different label order (or legacy escaping)
// resolve to one series, and the exposition emits it once.
func TestRegistryCanonicalAlias(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(`scotch_alias_total{x="1",a="2"}`)
	b := r.Counter(`scotch_alias_total{a="2",x="1"}`)
	if a != b {
		t.Fatal("label order created two distinct series")
	}
	a.Add(3)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "scotch_alias_total{"); n != 1 {
		t.Fatalf("canonical series emitted %d times:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), `scotch_alias_total{a="2",x="1"} 3`+"\n") {
		t.Fatalf("missing canonical sample:\n%s", buf.String())
	}
}

// TestExpositionRoundTrip writes a registry with hostile label values and
// parses the scrape back: every family, label pair, and value must
// survive intact.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	hostile := `ten"ant\one` + "\nline2"
	r.Counter("scotch_rt_total" + Labels("tenant", hostile)).Add(7)
	r.Gauge("scotch_rt_depth" + Labels("dpid", "9", "role", "primary")).Set(2.5)
	h := r.Histogram("scotch_rt_lat"+Labels("tenant", "base"), []float64{0.001, 1.5e-05 * 1000})
	h.Observe(0.0005)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse of own exposition failed: %v\n%s", err, buf.String())
	}

	byKey := map[string]Sample{}
	for _, s := range samples {
		byKey[FormatSeries(s.Family, s.Labels)] = s
	}
	c, ok := byKey[FormatSeries("scotch_rt_total", []Label{{"tenant", hostile}})]
	if !ok {
		t.Fatalf("hostile-label counter lost in round trip:\n%s", buf.String())
	}
	if c.Value != 7 || c.Label("tenant") != hostile {
		t.Fatalf("counter mangled: %+v", c)
	}
	g, ok := byKey[`scotch_rt_depth{dpid="9",role="primary"}`]
	if !ok || g.Value != 2.5 {
		t.Fatalf("gauge lost or mangled: %+v", g)
	}
	// Histogram series expand into _bucket/_sum/_count families with an
	// le label merged in; spot-check the first bucket.
	found := false
	for _, s := range samples {
		if s.Family == "scotch_rt_lat_bucket" && s.Label("le") == "0.001" {
			found = true
			if s.Label("tenant") != "base" || s.Value != 1 {
				t.Fatalf("bucket mangled: %+v", s)
			}
		}
	}
	if !found {
		t.Fatalf("histogram bucket lost in round trip:\n%s", buf.String())
	}

	// A second write parses to the identical sample set (determinism).
	var buf2 bytes.Buffer
	r.WritePrometheus(&buf2)
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("exposition not deterministic")
	}
}

// TestParseExpositionErrors covers the parser's failure paths.
func TestParseExpositionErrors(t *testing.T) {
	for _, in := range []string{
		"series_without_value",
		"series notanumber",
		`fam{a="1" 3`,
	} {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("ParseExposition(%q) accepted malformed input", in)
		}
	}
	// Comments and blank lines are skipped.
	s, err := ParseExposition(strings.NewReader("# TYPE x counter\n\nx 1\n"))
	if err != nil || len(s) != 1 || s[0].Family != "x" || s[0].Value != 1 {
		t.Fatalf("got %v, %v", s, err)
	}
}
