package obs

import (
	"testing"
	"time"

	"scotch/internal/sim"
)

func at(ms int) sim.Time { return sim.Time(ms) * sim.Time(time.Millisecond) }

func TestRingWrap(t *testing.T) {
	r := NewRing(4)
	if r.Cap() != 4 || r.Len() != 0 {
		t.Fatalf("fresh ring cap=%d len=%d", r.Cap(), r.Len())
	}
	if _, ok := r.Last(); ok {
		t.Fatal("empty ring reported a last sample")
	}
	for i := 0; i < 10; i++ {
		r.Push(at(i), float64(i))
	}
	if r.Len() != 4 {
		t.Fatalf("len after wrap = %d, want 4", r.Len())
	}
	pts := r.Points()
	for i, p := range pts {
		want := float64(6 + i)
		if p.V != want || p.T != at(6+i) {
			t.Fatalf("pts[%d] = %+v, want t=%v v=%g", i, p, at(6+i), want)
		}
	}
	if last, ok := r.Last(); !ok || last.V != 9 {
		t.Fatalf("last = %+v ok=%v, want v=9", last, ok)
	}
	since := r.Since(at(8))
	if len(since) != 2 || since[0].V != 8 {
		t.Fatalf("since(8ms) = %+v, want samples 8 and 9", since)
	}
}

func TestRingNilSafe(t *testing.T) {
	var r *Ring
	r.Push(0, 1)
	if r.Len() != 0 || r.Cap() != 0 || r.Points() != nil || r.Since(0) != nil {
		t.Fatal("nil ring not inert")
	}
	if _, ok := r.Last(); ok {
		t.Fatal("nil ring reported a last sample")
	}
}

func TestNewRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Fatalf("cap = %d, want clamp to 1", r.Cap())
	}
	r.Push(at(1), 1)
	r.Push(at(2), 2)
	if last, _ := r.Last(); last.V != 2 || r.Len() != 1 {
		t.Fatalf("single-slot ring kept %+v len=%d", last, r.Len())
	}
}

func TestSummarizeAndDownsample(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
	pts := []Point{{at(1), 4}, {at(2), 1}, {at(3), 7}, {at(4), 2}}
	s := Summarize(pts)
	if s.N != 4 || s.Last != 2 || s.Min != 1 || s.Max != 7 || s.Mean != 3.5 {
		t.Fatalf("summary = %+v", s)
	}

	var long []Point
	for i := 0; i < 100; i++ {
		long = append(long, Point{at(i), float64(i)})
	}
	ds := Downsample(long, 10)
	if len(ds) != 10 {
		t.Fatalf("downsampled to %d points, want 10", len(ds))
	}
	// Each group of 10 averages to its midpoint and ends on its last time.
	if ds[0].V != 4.5 || ds[0].T != at(9) || ds[9].V != 94.5 || ds[9].T != at(99) {
		t.Fatalf("downsample groups wrong: first=%+v last=%+v", ds[0], ds[9])
	}
	if got := Downsample(pts, 10); len(got) != len(pts) {
		t.Fatal("short series must pass through untouched")
	}
}

func TestSpark(t *testing.T) {
	if Spark(nil, 10) != "" || Spark([]Point{{0, 1}}, 0) != "" {
		t.Fatal("degenerate spark inputs must render empty")
	}
	flat := Spark([]Point{{at(1), 5}, {at(2), 5}}, 2)
	if flat != "  " {
		t.Fatalf("flat series = %q, want two low cells", flat)
	}
	ramp := Spark([]Point{{at(1), 0}, {at(2), 1}}, 2)
	if ramp != " @" {
		t.Fatalf("ramp = %q, want low then high", ramp)
	}
}

func TestVerdictPath(t *testing.T) {
	if got := VerdictPath(Healthy, nil); got != "healthy" {
		t.Fatalf("path = %q", got)
	}
	trs := []Transition{
		{At: at(1), From: Healthy, To: Burning},
		{At: at(2), From: Burning, To: Healthy},
	}
	if got := VerdictPath(Healthy, trs); got != "healthy->burning->healthy" {
		t.Fatalf("path = %q", got)
	}
}
