package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotRacesSample pins the documented concurrency contract:
// Snapshot (and Digest) may be called from any goroutine — a live
// /statusz handler — while the simulation thread samples. Run under
// -race this fails loudly if the observatory's mutex ever stops
// covering both sides.
func TestSnapshotRacesSample(t *testing.T) {
	eng, o := burnRig()

	var done atomic.Bool
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				v := o.Snapshot()
				if v == nil {
					t.Error("Snapshot returned nil")
					return
				}
				// Touch the plain-data payload: a view must never alias
				// live ring state, so reading it is always safe.
				for _, c := range v.Components {
					for _, s := range c.Series {
						_ = s.Summary.Last
					}
				}
				if g == 0 {
					_ = o.Digest("race")
				}
				total.Add(1)
			}
		}()
	}

	// The simulation thread keeps sampling until the readers have
	// demonstrably overlapped with it: simulated time races ahead of
	// wall time, so a fixed horizon could finish before the readers
	// take a single snapshot.
	for i := 1; total.Load() < 500 && i <= 10000; i++ {
		eng.RunUntil(time.Duration(i) * time.Second)
	}
	o.Stop()
	done.Store(true)
	wg.Wait()

	if total.Load() == 0 {
		t.Fatal("no snapshots were taken while sampling ran")
	}
}
