// Package obs is the control-plane observatory: a unified, queryable view
// of overlay, controller-cluster, and tenant health over time.
//
// The observatory periodically samples signals the rest of the repository
// already maintains — overlay ingress/egress rates and scheduler
// backlogs (internal/scotch), per-vSwitch queue depth and rule counts
// (internal/device), per-replica Packet-In/FlowMod rates
// (internal/cluster), devolve hit/escalation totals (internal/devolve),
// autoscaler pool size (internal/elastic), and per-tenant flow-setup
// latency distributions (internal/workload) — into fixed-size ring-buffer
// time series keyed to the simulation clock, and evaluates declarative
// latency SLOs with multi-window error-budget burn rates.
//
// Three consumers read it:
//
//   - Snapshot() returns one consistent ClusterView — the input the
//     joint-elasticity controller (ROADMAP item 3) will consume.
//   - Handler() serves the view live as /statusz (JSON + HTML) next to
//     /metrics, with optional pprof capture on SLO-breach transitions.
//   - Digest() renders a deterministic end-of-run health digest:
//     per-component load timelines, SLO verdict paths, burn-rate peaks.
//
// Sampling is strictly read-only over the observed subsystems (RateMeter
// reads do not mutate, histogram reads are atomic snapshots, and the
// observatory never touches the engine's RNG), so arming it cannot change
// a simulation's outputs — a property the experiments package pins with a
// byte-identical determinism test. Every exported method is nil-receiver
// safe: a disabled observatory is a nil pointer and costs one branch.
package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"scotch/internal/cluster"
	"scotch/internal/controller"
	"scotch/internal/device"
	"scotch/internal/devolve"
	"scotch/internal/elastic"
	"scotch/internal/metrics"
	"scotch/internal/scotch"
	"scotch/internal/sim"
	"scotch/internal/workload"
)

// Config shapes an Observatory.
type Config struct {
	// SampleInterval is the sampling period on the simulation clock
	// (default 250ms).
	SampleInterval time.Duration
	// RingSize bounds each series' retained samples (default 512).
	RingSize int
	// SLOs are the latency objectives to evaluate; tenants resolve
	// against the tracker passed to WatchLatency.
	SLOs []SLO
	// ProfileDir, when non-empty, enables automatic pprof capture on SLO
	// breach transitions: entering Burning writes a heap profile and
	// starts a CPU profile in this directory; recovering stops the CPU
	// profile. Empty (the default) disables all profile I/O, keeping
	// simulation runs free of side effects.
	ProfileDir string
}

func (c Config) withDefaults() Config {
	if c.SampleInterval <= 0 {
		c.SampleInterval = 250 * time.Millisecond
	}
	if c.RingSize <= 0 {
		c.RingSize = 512
	}
	return c
}

// series is one sampled signal: a read-only probe and its ring.
type series struct {
	name string
	fn   func() float64
	ring *Ring
}

// component groups the series of one observed subsystem.
type component struct {
	name   string
	series []*series
	byName map[string]*series
}

// Observatory samples registered signals into ring-buffer time series and
// evaluates SLO burn rates. Construct with New, register signal sources
// with the Watch methods (or Series for custom probes), then Start.
//
// The observatory locks around sampling and reads, so a live /statusz
// handler may call Snapshot from an HTTP goroutine while the simulation
// samples; the probe functions themselves only run on the simulation
// goroutine (inside the sampling tick).
type Observatory struct {
	eng sim.Proc
	cfg Config

	mu         sync.Mutex
	components []*component
	byName     map[string]*component
	slos       []*sloState
	tracker    *workload.LatencyTracker
	ticker     *sim.Ticker
	samples    uint64

	cpuFile  *os.File
	captures int
}

// New returns an observatory bound to the engine (not yet sampling).
func New(eng sim.Proc, cfg Config) *Observatory {
	o := &Observatory{
		eng:    eng,
		cfg:    cfg.withDefaults(),
		byName: make(map[string]*component),
	}
	for _, def := range o.cfg.SLOs {
		o.slos = append(o.slos, &sloState{def: def.withDefaults()})
	}
	return o
}

// Series registers a custom sampled signal under a component name. fn is
// called once per sampling tick on the simulation goroutine and must not
// mutate model state. Re-registering the same component/series replaces
// the probe but keeps the ring. Nil-safe.
func (o *Observatory) Series(comp, name string, fn func() float64) {
	if o == nil || fn == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.byName[comp]
	if c == nil {
		c = &component{name: comp, byName: make(map[string]*series)}
		o.byName[comp] = c
		o.components = append(o.components, c)
	}
	if s := c.byName[name]; s != nil {
		s.fn = fn
		return
	}
	s := &series{name: name, fn: fn, ring: NewRing(o.cfg.RingSize)}
	c.byName[name] = s
	c.series = append(c.series, s)
}

// WatchApp registers the Scotch app's overlay signals: per-protected-
// switch attributed request rates, the aggregate install backlog, overlay
// routing/drop totals, and live mesh membership. Nil-safe on both sides.
func (o *Observatory) WatchApp(a *scotch.App) {
	o.WatchAppAs("scotch", a)
}

// WatchAppAs registers the same signals as WatchApp under an explicit
// component name, for rigs that observe several app instances (one per
// cluster pod) and would otherwise collide on the shared "scotch"
// component. Nil-safe on both sides.
func (o *Observatory) WatchAppAs(comp string, a *scotch.App) {
	if o == nil || a == nil {
		return
	}
	for _, dpid := range a.ProtectedDPIDs() {
		dpid := dpid
		o.Series(comp, fmt.Sprintf("req_rate_dpid%d", dpid), func() float64 {
			return a.RequestRate(dpid)
		})
	}
	o.Series(comp, "install_backlog", func() float64 { return float64(a.InstallBacklog()) })
	o.Series(comp, "overlay_routed_total", func() float64 { return float64(a.Stats.OverlayRouted) })
	o.Series(comp, "physical_admitted_total", func() float64 { return float64(a.Stats.PhysicalAdmitted) })
	o.Series(comp, "dropped_total", func() float64 { return float64(a.Stats.Dropped) })
	o.Series(comp, "mesh_members", func() float64 { return float64(len(a.MeshMembers())) })
	if m := a.DevolveMetrics(); m != nil {
		o.WatchDevolve(m)
	}
}

// WatchController registers a controller's ingress signals under the
// given component name: aggregate Packet-In rate, ingress queue depth,
// and cumulative Packet-In/FlowMod counts. Nil-safe.
func (o *Observatory) WatchController(name string, c *controller.Controller) {
	if o == nil || c == nil {
		return
	}
	o.Series(name, "packet_in_rate", func() float64 { return c.InRate.Rate(c.Eng.Now()) })
	o.Series(name, "queue_depth", func() float64 { return float64(c.QueueDepth()) })
	o.Series(name, "packet_ins_total", func() float64 { return float64(c.Stats.PacketIns) })
	o.Series(name, "flow_mods_total", func() float64 { return float64(c.Stats.FlowModsSent) })
}

// WatchSwitch registers a switch's data-plane signals under component
// "switch/<name>": OFA insert queue depth, installed rule count across
// all tables, and cumulative Packet-In emissions. Nil-safe.
func (o *Observatory) WatchSwitch(sw *device.Switch) {
	if o == nil || sw == nil {
		return
	}
	comp := "switch/" + sw.Name()
	o.Series(comp, "insert_backlog", func() float64 { return float64(sw.InsertBacklog()) })
	o.Series(comp, "rules", func() float64 {
		total := 0
		for _, t := range sw.Pipeline.Tables {
			total += t.Len()
		}
		return float64(total)
	})
	o.Series(comp, "packet_ins_total", func() float64 { return float64(sw.Stats.PacketInSent) })
	o.Series(comp, "local_handled_total", func() float64 { return float64(sw.Stats.LocalHandled) })
}

// WatchCoordinator registers every replica of a sharded control plane
// under component "replica<ID>": the coordinator's load score plus the
// replica controller's Packet-In rate, FlowMod count, and liveness.
// Replicas added after this call are not picked up. Nil-safe.
func (o *Observatory) WatchCoordinator(co *cluster.Coordinator) {
	if o == nil || co == nil {
		return
	}
	for _, r := range co.Replicas {
		r := r
		comp := fmt.Sprintf("replica%d", r.ID)
		o.Series(comp, "load", func() float64 { return co.Load(r) })
		o.Series(comp, "packet_in_rate", func() float64 { return r.C.InRate.Rate(co.Eng.Now()) })
		o.Series(comp, "flow_mods_total", func() float64 { return float64(r.C.Stats.FlowModsSent) })
		o.Series(comp, "alive", func() float64 {
			if r.Alive() {
				return 1
			}
			return 0
		})
	}
	o.Series("cluster", "migrations_total", func() float64 { return float64(co.Stats.Migrations) })
	o.Series("cluster", "failovers_total", func() float64 { return float64(co.Stats.Failovers) })
}

// WatchPool registers the elastic pool size and, when an autoscaler is
// given, its last observed load signal and resize decision counts.
// Nil-safe (pool may be nil, as may the autoscaler).
func (o *Observatory) WatchPool(pool elastic.Pool, as *elastic.Autoscaler) {
	if o == nil {
		return
	}
	if pool != nil {
		o.Series("elastic", "pool_size", func() float64 { return float64(pool.Size()) })
	}
	if as != nil {
		o.Series("elastic", "load", func() float64 { return as.LastLoad() })
		o.Series("elastic", "grows_total", func() float64 { return float64(as.Stats.Ups) })
		o.Series("elastic", "shrinks_total", func() float64 { return float64(as.Stats.Downs) })
	}
}

// WatchDevolve registers devolution cache totals: local hits and
// escalations to the central controller. Nil-safe.
func (o *Observatory) WatchDevolve(m *devolve.Metrics) {
	if o == nil || m == nil {
		return
	}
	o.Series("devolve", "hits_total", func() float64 { return float64(m.TotalHits()) })
	o.Series("devolve", "escalations_total", func() float64 { return float64(m.TotalEscalations()) })
}

// WatchLatency attaches the per-tenant latency substrate the SLO
// evaluator reads: each configured SLO resolves its tenant histogram from
// t, and Snapshot reports per-tenant lifetime quantiles. Nil-safe.
func (o *Observatory) WatchLatency(t *workload.LatencyTracker) {
	if o == nil || t == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.tracker = t
}

// Start begins sampling every SampleInterval of simulation time.
// Nil-safe; starting twice is a no-op.
func (o *Observatory) Start() {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.ticker != nil {
		return
	}
	o.ticker = o.eng.Every(o.cfg.SampleInterval, o.sample)
}

// Stop halts sampling and closes any in-flight breach CPU profile.
// Nil-safe.
func (o *Observatory) Stop() {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.ticker != nil {
		o.ticker.Stop()
		o.ticker = nil
	}
	o.stopCPUProfileLocked()
}

// Sample takes one sample immediately (normally driven by Start's
// ticker; exported for tests and for digest-at-end completeness).
// Nil-safe.
func (o *Observatory) Sample() {
	if o == nil {
		return
	}
	o.sample()
}

func (o *Observatory) sample() {
	o.mu.Lock()
	defer o.mu.Unlock()
	now := o.eng.Now()
	o.samples++
	for _, c := range o.components {
		for _, s := range c.series {
			s.ring.Push(now, s.fn())
		}
	}
	for _, s := range o.slos {
		o.evalSLO(s, now)
	}
}

// evalSLO takes one SLO evaluation step at time now (caller holds o.mu).
func (o *Observatory) evalSLO(s *sloState, now sim.Time) {
	if s.hist == nil {
		if o.tracker == nil {
			return
		}
		s.hist = o.tracker.Tenant(s.def.Tenant)
		s.bounds = s.hist.Bounds()
		// Retain enough snapshots to look back one long window, plus
		// slack for the boundary search.
		n := int(s.def.LongWindow/o.cfg.SampleInterval) + 4
		s.snaps = newCountsRing(n)
		s.burnShort = NewRing(o.cfg.RingSize)
		s.burnLong = NewRing(o.cfg.RingSize)
		s.windowQ = NewRing(o.cfg.RingSize)
	}
	s.samples++
	s.snaps.push(now, s.hist.Counts())

	target := s.def.Target.Seconds()
	short := burnFromDelta(s.bounds, s.snaps.windowDelta(now, s.def.ShortWindow), target, s.def.Quantile)
	longDelta := s.snaps.windowDelta(now, s.def.LongWindow)
	long := burnFromDelta(s.bounds, longDelta, target, s.def.Quantile)
	wq := metrics.QuantileFromCounts(s.bounds, longDelta, s.def.Quantile)

	s.burnShort.Push(now, short)
	s.burnLong.Push(now, long)
	s.windowQ.Push(now, wq)
	if short > s.peakShort {
		s.peakShort = short
	}
	if long > s.peakLong {
		s.peakLong = long
	}
	if wq > s.peakWindowQ {
		s.peakWindowQ = wq
	}

	thr := s.def.BurnThreshold
	var next Verdict
	switch s.verdict {
	case Healthy:
		if short >= thr && long >= thr {
			next = Burning
		} else {
			next = Healthy
		}
	case Burning:
		if short < thr && long < thr {
			next = Healthy
		} else {
			next = Burning
		}
	}
	if next == s.verdict {
		return
	}
	s.transitions = append(s.transitions, Transition{At: now, From: s.verdict, To: next})
	s.verdict = next
	o.onTransitionLocked(s, next)
}

// onTransitionLocked performs breach-triggered pprof capture (caller
// holds o.mu). With no ProfileDir configured it does nothing, keeping
// deterministic runs free of filesystem side effects.
func (o *Observatory) onTransitionLocked(s *sloState, to Verdict) {
	if o.cfg.ProfileDir == "" {
		return
	}
	switch to {
	case Burning:
		o.captures++
		base := filepath.Join(o.cfg.ProfileDir,
			fmt.Sprintf("breach_%s_%d", sanitize(s.def.Name), o.captures))
		if f, err := os.Create(base + "_heap.pprof"); err == nil {
			_ = pprof.WriteHeapProfile(f)
			_ = f.Close()
		}
		if o.cpuFile == nil {
			if f, err := os.Create(base + "_cpu.pprof"); err == nil {
				if pprof.StartCPUProfile(f) == nil {
					o.cpuFile = f
				} else {
					_ = f.Close()
				}
			}
		}
	case Healthy:
		o.stopCPUProfileLocked()
	}
}

func (o *Observatory) stopCPUProfileLocked() {
	if o.cpuFile == nil {
		return
	}
	pprof.StopCPUProfile()
	_ = o.cpuFile.Close()
	o.cpuFile = nil
}

// Captures returns how many breach profile captures fired (0 for nil or
// when ProfileDir is unset).
func (o *Observatory) Captures() int {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.captures
}

// sanitize maps an SLO name onto a safe filename fragment.
func sanitize(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// sortedComponents returns the components sorted by name (caller holds
// o.mu). Registration order is deterministic, but sorted output keeps
// views stable across wiring refactors.
func (o *Observatory) sortedComponents() []*component {
	out := append([]*component(nil), o.components...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
