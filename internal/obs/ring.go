package obs

import (
	"strings"

	"scotch/internal/sim"
)

// Point is one (simulation time, value) sample of a ring series.
type Point struct {
	T sim.Time `json:"t"`
	V float64  `json:"v"`
}

// Ring is a fixed-capacity time-series buffer: pushes past capacity
// overwrite the oldest sample. It is the observatory's storage primitive —
// bounded memory no matter how long a run samples for. Methods are not
// internally synchronized; the Observatory serializes access under its
// own lock.
type Ring struct {
	pts  []Point
	head int // index of the oldest sample
	n    int
}

// NewRing returns a ring holding at most capacity samples (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{pts: make([]Point, capacity)}
}

// Push appends a sample, evicting the oldest once full. Nil-safe.
func (r *Ring) Push(t sim.Time, v float64) {
	if r == nil {
		return
	}
	if r.n < len(r.pts) {
		r.pts[(r.head+r.n)%len(r.pts)] = Point{T: t, V: v}
		r.n++
		return
	}
	r.pts[r.head] = Point{T: t, V: v}
	r.head = (r.head + 1) % len(r.pts)
}

// Len returns the number of stored samples (0 for nil).
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Cap returns the ring's capacity (0 for nil).
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.pts)
}

// At returns the i-th stored sample in chronological order (0 = oldest).
func (r *Ring) At(i int) Point {
	return r.pts[(r.head+i)%len(r.pts)]
}

// Last returns the newest sample, or false when empty. Nil-safe.
func (r *Ring) Last() (Point, bool) {
	if r.Len() == 0 {
		return Point{}, false
	}
	return r.At(r.n - 1), true
}

// Points returns a chronological copy of the stored samples. Nil-safe.
func (r *Ring) Points() []Point {
	if r.Len() == 0 {
		return nil
	}
	out := make([]Point, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.At(i)
	}
	return out
}

// Since returns a chronological copy of the samples with T >= t. Nil-safe.
func (r *Ring) Since(t sim.Time) []Point {
	if r.Len() == 0 {
		return nil
	}
	// Samples are pushed in time order; binary search would work, but the
	// ring is small and a scan keeps the wrap arithmetic obvious.
	var out []Point
	for i := 0; i < r.n; i++ {
		if p := r.At(i); p.T >= t {
			out = append(out, p)
		}
	}
	return out
}

// Summary aggregates a point slice: last/min/max/mean over the values.
type Summary struct {
	N    int     `json:"n"`
	Last float64 `json:"last"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// Summarize computes a Summary over pts (zero value for an empty slice).
func Summarize(pts []Point) Summary {
	if len(pts) == 0 {
		return Summary{}
	}
	s := Summary{N: len(pts), Last: pts[len(pts)-1].V, Min: pts[0].V, Max: pts[0].V}
	var sum float64
	for _, p := range pts {
		if p.V < s.Min {
			s.Min = p.V
		}
		if p.V > s.Max {
			s.Max = p.V
		}
		sum += p.V
	}
	s.Mean = sum / float64(len(pts))
	return s
}

// Downsample reduces pts to at most n points by averaging equal-width
// groups; each output point carries the group's last timestamp. It keeps
// digest JSON bounded for long runs while preserving the load shape.
func Downsample(pts []Point, n int) []Point {
	if n <= 0 || len(pts) <= n {
		return pts
	}
	out := make([]Point, 0, n)
	for g := 0; g < n; g++ {
		lo := g * len(pts) / n
		hi := (g + 1) * len(pts) / n
		if hi <= lo {
			continue
		}
		var sum float64
		for _, p := range pts[lo:hi] {
			sum += p.V
		}
		out = append(out, Point{T: pts[hi-1].T, V: sum / float64(hi-lo)})
	}
	return out
}

// sparkLevels are the ASCII intensity ramp used by Spark, lowest to
// highest. Pure ASCII so digests render anywhere (CI logs, plain
// terminals).
const sparkLevels = " .:-=+*#%@"

// Spark renders pts as a fixed-width ASCII sparkline scaled between the
// series' min and max (a flat series renders at the lowest level).
func Spark(pts []Point, width int) string {
	if len(pts) == 0 || width <= 0 {
		return ""
	}
	pts = Downsample(pts, width)
	s := Summarize(pts)
	var b strings.Builder
	for _, p := range pts {
		level := 0
		if s.Max > s.Min {
			level = int((p.V - s.Min) / (s.Max - s.Min) * float64(len(sparkLevels)-1))
			if level >= len(sparkLevels) {
				level = len(sparkLevels) - 1
			}
		}
		b.WriteByte(sparkLevels[level])
	}
	return b.String()
}
