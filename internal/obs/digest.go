package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"scotch/internal/sim"
)

// digestPoints bounds the per-series timeline kept in a digest; longer
// runs are mean-downsampled to this many points.
const digestPoints = 64

// sparkWidth is the width of the ASCII timeline in the text rendering.
const sparkWidth = 40

// Digest is a deterministic end-of-run health report: per-component load
// timelines, SLO verdict paths, and burn-rate peaks. It is pure data —
// safe to marshal as JSON (the health_<id>.json CI artifact) or render
// as text (`scotchsim run <id> -health`). Determinism follows from the
// observatory's: all timestamps are simulation time and all aggregation
// is order-stable.
type Digest struct {
	// Name labels the run this digest describes (e.g. "run1").
	Name string `json:"name"`
	// End is the newest sample's simulation time.
	End sim.Time `json:"end"`
	// Samples is the number of sampling ticks taken.
	Samples uint64 `json:"samples"`
	// Components holds one timeline per observed subsystem, sorted.
	Components []ComponentDigest `json:"components"`
	// SLOs holds one verdict report per configured SLO.
	SLOs []SLODigest `json:"slos,omitempty"`
	// Captures is the number of breach profile captures written (0
	// unless a ProfileDir was configured).
	Captures int `json:"captures,omitempty"`
}

// ComponentDigest is one subsystem's series timelines.
type ComponentDigest struct {
	Name   string         `json:"name"`
	Series []SeriesDigest `json:"series"`
}

// SeriesDigest is one series' downsampled timeline plus its summary.
type SeriesDigest struct {
	Name    string  `json:"name"`
	Summary Summary `json:"summary"`
	// Points is the mean-downsampled timeline (at most digestPoints).
	Points []Point `json:"points,omitempty"`
}

// SLODigest is one SLO's end-of-run verdict report.
type SLODigest struct {
	Name     string  `json:"name"`
	Tenant   string  `json:"tenant"`
	Quantile float64 `json:"quantile"`
	// TargetSeconds is the latency objective in seconds.
	TargetSeconds float64 `json:"target_seconds"`
	// Final is the verdict at end of run.
	Final Verdict `json:"final"`
	// VerdictPath is the full verdict sequence, e.g.
	// "healthy->burning->healthy".
	VerdictPath string `json:"verdict_path"`
	// Transitions timestamps each verdict flip.
	Transitions []Transition `json:"transitions,omitempty"`
	// PeakBurnShort/PeakBurnLong are the maximum burn rates observed on
	// each window over the whole run.
	PeakBurnShort float64 `json:"peak_burn_short"`
	PeakBurnLong  float64 `json:"peak_burn_long"`
	// PeakWindowQuantileSeconds is the worst long-window quantile seen.
	PeakWindowQuantileSeconds float64 `json:"peak_window_quantile_seconds"`
	// Samples counts evaluation ticks; 0 means the tenant never
	// produced data (reported as healthy by definition).
	Samples uint64 `json:"samples"`
	// BurnTimeline is the downsampled long-window burn-rate series.
	BurnTimeline []Point `json:"burn_timeline,omitempty"`
}

// Digest assembles the end-of-run health digest under the given run
// name. Nil-safe: a nil observatory yields an empty digest.
func (o *Observatory) Digest(name string) *Digest {
	d := &Digest{Name: name}
	if o == nil {
		return d
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	d.Samples = o.samples
	d.Captures = o.captures
	for _, c := range o.sortedComponents() {
		cd := ComponentDigest{Name: c.name}
		for _, s := range c.series {
			pts := s.ring.Points()
			if p, ok := s.ring.Last(); ok && p.T > d.End {
				d.End = p.T
			}
			cd.Series = append(cd.Series, SeriesDigest{
				Name:    s.name,
				Summary: Summarize(pts),
				Points:  Downsample(pts, digestPoints),
			})
		}
		d.Components = append(d.Components, cd)
	}
	for _, s := range o.slos {
		sd := SLODigest{
			Name:                      s.def.Name,
			Tenant:                    s.def.Tenant,
			Quantile:                  s.def.Quantile,
			TargetSeconds:             s.def.Target.Seconds(),
			Final:                     s.verdict,
			VerdictPath:               VerdictPath(Healthy, s.transitions),
			Transitions:               append([]Transition(nil), s.transitions...),
			PeakBurnShort:             s.peakShort,
			PeakBurnLong:              s.peakLong,
			PeakWindowQuantileSeconds: s.peakWindowQ,
			Samples:                   s.samples,
		}
		if s.burnLong != nil {
			sd.BurnTimeline = Downsample(s.burnLong.Points(), digestPoints)
		}
		d.SLOs = append(d.SLOs, sd)
	}
	return d
}

// SLO returns the named SLO report, or nil when absent.
func (d *Digest) SLO(name string) *SLODigest {
	if d == nil {
		return nil
	}
	for i := range d.SLOs {
		if d.SLOs[i].Name == name {
			return &d.SLOs[i]
		}
	}
	return nil
}

// WriteJSON marshals the digest as indented JSON.
func (d *Digest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteText renders the digest as a fixed-width report: SLO verdicts
// first, then one sparkline row per component series. Deterministic for
// a deterministic run.
func (d *Digest) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "health digest %s: %d samples to t=%v\n",
		d.Name, d.Samples, d.End); err != nil {
		return err
	}
	for _, s := range d.SLOs {
		status := s.VerdictPath
		if s.Samples == 0 {
			status += " (no data)"
		}
		if _, err := fmt.Fprintf(w,
			"  slo %-12s tenant=%-8s p%g<%gs  verdict=%s  peak_burn=%.2f/%.2f  peak_p%g=%.4fs\n",
			s.Name, s.Tenant, s.Quantile*100, s.TargetSeconds, status,
			s.PeakBurnShort, s.PeakBurnLong, s.Quantile*100, s.PeakWindowQuantileSeconds); err != nil {
			return err
		}
		for _, tr := range s.Transitions {
			if _, err := fmt.Fprintf(w, "       t=%-8v %s -> %s\n", tr.At, tr.From, tr.To); err != nil {
				return err
			}
		}
	}
	if d.Captures > 0 {
		if _, err := fmt.Fprintf(w, "  breach profile captures: %d\n", d.Captures); err != nil {
			return err
		}
	}
	for _, c := range d.Components {
		for _, s := range c.Series {
			if _, err := fmt.Fprintf(w, "  %-18s %-22s [%-*s] last=%-10.4g max=%-10.4g mean=%.4g\n",
				c.Name, s.Name, sparkWidth, Spark(s.Points, sparkWidth),
				s.Summary.Last, s.Summary.Max, s.Summary.Mean); err != nil {
				return err
			}
		}
	}
	return nil
}
