package obs

import (
	"time"

	"scotch/internal/metrics"
	"scotch/internal/sim"
)

// Verdict is an SLO health state.
type Verdict int

// The two verdict states: an SLO is Healthy until both burn-rate windows
// exceed the threshold, and Burning until both fall back under it.
const (
	Healthy Verdict = iota
	Burning
)

// String returns "healthy" or "burning".
func (v Verdict) String() string {
	if v == Burning {
		return "burning"
	}
	return "healthy"
}

// MarshalJSON encodes the verdict as its string form.
func (v Verdict) MarshalJSON() ([]byte, error) {
	return []byte(`"` + v.String() + `"`), nil
}

// UnmarshalJSON decodes the string form written by MarshalJSON, so
// ClusterView and Digest JSON round-trip for external consumers.
func (v *Verdict) UnmarshalJSON(b []byte) error {
	if string(b) == `"burning"` {
		*v = Burning
	} else {
		*v = Healthy
	}
	return nil
}

// SLO is one declarative latency objective over a tenant's flow-setup
// distribution, e.g. "tenant base p99 flow-setup < 50ms": Quantile of the
// flows observed inside a window must complete within Target. The error
// budget is the complement of Quantile (p99 → 1% of flows may exceed
// Target); the burn rate of a window is the fraction of budget the
// window actually consumed:
//
//	burn = badFraction(window) / (1 - Quantile)
//
// so burn == 1 means latency sits exactly at the objective and burn >= 2
// means the budget is being spent twice as fast as allowed. Following
// SRE multi-window practice, the verdict flips to Burning only when both
// the short window (fast signal) and the long window (sustained signal)
// exceed BurnThreshold, and recovers when both drop below it.
type SLO struct {
	// Name identifies the SLO in digests and statusz (e.g. "base-p99").
	Name string `json:"name"`
	// Tenant selects the LatencyTracker tenant whose flows are judged.
	Tenant string `json:"tenant"`
	// Quantile is the objective quantile, e.g. 0.99.
	Quantile float64 `json:"quantile"`
	// Target is the latency bound the quantile must stay under.
	Target time.Duration `json:"target"`
	// ShortWindow and LongWindow are the two burn evaluation windows
	// (defaults 1s and 3s of simulation time).
	ShortWindow time.Duration `json:"short_window"`
	LongWindow  time.Duration `json:"long_window"`
	// BurnThreshold is the burn rate both windows must exceed to flip
	// the verdict to Burning (default 1: any sustained overspend).
	BurnThreshold float64 `json:"burn_threshold"`
}

// withDefaults fills zero fields with the documented defaults.
func (s SLO) withDefaults() SLO {
	if s.Quantile <= 0 || s.Quantile >= 1 {
		s.Quantile = 0.99
	}
	if s.Target <= 0 {
		s.Target = 50 * time.Millisecond
	}
	if s.ShortWindow <= 0 {
		s.ShortWindow = time.Second
	}
	if s.LongWindow <= 0 {
		s.LongWindow = 3 * time.Second
	}
	if s.LongWindow < s.ShortWindow {
		s.LongWindow = s.ShortWindow
	}
	if s.BurnThreshold <= 0 {
		s.BurnThreshold = 1
	}
	return s
}

// Transition records one verdict flip.
type Transition struct {
	At   sim.Time `json:"at"`
	From Verdict  `json:"from"`
	To   Verdict  `json:"to"`
}

// VerdictPath renders an initial verdict plus its transitions as a
// readable sequence, e.g. "healthy->burning->healthy". The digest
// assertions in the obs-slo experiment compare against exactly this form.
func VerdictPath(initial Verdict, transitions []Transition) string {
	path := initial.String()
	for _, tr := range transitions {
		path += "->" + tr.To.String()
	}
	return path
}

// countsSnap is one cumulative bucket-count snapshot of a tenant's
// latency histogram, taken on the sampling tick.
type countsSnap struct {
	t      sim.Time
	counts []uint64
}

// countsRing is a fixed ring of cumulative histogram snapshots; windowed
// statistics come from differencing the newest snapshot against the
// newest one at or before the window start.
type countsRing struct {
	snaps []countsSnap
	head  int
	n     int
}

func newCountsRing(capacity int) *countsRing {
	if capacity < 2 {
		capacity = 2
	}
	return &countsRing{snaps: make([]countsSnap, capacity)}
}

func (r *countsRing) push(t sim.Time, counts []uint64) {
	s := countsSnap{t: t, counts: counts}
	if r.n < len(r.snaps) {
		r.snaps[(r.head+r.n)%len(r.snaps)] = s
		r.n++
		return
	}
	r.snaps[r.head] = s
	r.head = (r.head + 1) % len(r.snaps)
}

func (r *countsRing) at(i int) countsSnap { return r.snaps[(r.head+i)%len(r.snaps)] }

// windowDelta returns the per-bucket sample counts that arrived in
// (now-window, now]: newest snapshot minus the newest snapshot at or
// before the window start (or the oldest retained one when the ring does
// not reach back that far). Returns nil before two snapshots exist.
func (r *countsRing) windowDelta(now sim.Time, window time.Duration) []uint64 {
	if r.n < 2 {
		return nil
	}
	newest := r.at(r.n - 1)
	start := now - sim.Time(window)
	base := r.at(0)
	for i := r.n - 1; i >= 0; i-- {
		if s := r.at(i); s.t <= start {
			base = s
			break
		}
	}
	if len(base.counts) != len(newest.counts) {
		return nil
	}
	delta := make([]uint64, len(newest.counts))
	for i := range delta {
		delta[i] = newest.counts[i] - base.counts[i]
	}
	return delta
}

// burnFromDelta computes the burn rate of one window: the fraction of
// flows in delta exceeding target (bucketized: a flow counts as good when
// its bucket's upper bound is <= target) divided by the error budget.
// Returns 0 with no flows in the window — no traffic spends no budget.
func burnFromDelta(bounds []float64, delta []uint64, target float64, quantile float64) float64 {
	var total, good uint64
	for i, c := range delta {
		total += c
		if i < len(bounds) && bounds[i] <= target {
			good += c
		}
	}
	if total == 0 {
		return 0
	}
	budget := 1 - quantile
	if budget <= 0 {
		budget = 1e-9
	}
	return float64(total-good) / float64(total) / budget
}

// sloState is one SLO's runtime evaluation state.
type sloState struct {
	def    SLO
	hist   *metrics.BucketHistogram
	bounds []float64
	snaps  *countsRing

	burnShort *Ring // burn rate over the short window, per sample
	burnLong  *Ring // burn rate over the long window, per sample
	windowQ   *Ring // windowed quantile (long window), seconds

	verdict     Verdict
	transitions []Transition

	peakShort, peakLong, peakWindowQ float64
	samples                          uint64
}
