package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
)

// Handler returns an http.Handler serving a live /statusz view. src is
// called per request and returns the current ClusterView (nil renders an
// empty page, so wiring the handler before the first rig exists is
// safe). JSON is served for ?format=json or an Accept header preferring
// application/json; otherwise a self-refreshing HTML page.
//
// The handler holds no observatory reference itself: sources decide what
// a "current" view is (e.g. scotchsim serves the newest armed rig's
// snapshot; ofcontrollerd builds a view from its live counters).
func Handler(src func() *ClusterView) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var v *ClusterView
		if src != nil {
			v = src()
		}
		if v == nil {
			v = &ClusterView{}
		}
		if wantJSON(r) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(v)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeHTML(w, v)
	})
}

func wantJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

func writeHTML(w http.ResponseWriter, v *ClusterView) {
	fmt.Fprint(w, `<!DOCTYPE html><html><head><meta http-equiv="refresh" content="1">`+
		`<title>scotch statusz</title><style>`+
		`body{font-family:monospace;margin:1.5em}table{border-collapse:collapse;margin-bottom:1.5em}`+
		`td,th{border:1px solid #bbb;padding:2px 8px;text-align:right}`+
		`th{background:#eee}td.l,th.l{text-align:left}`+
		`.healthy{color:#0a0}.burning{color:#c00;font-weight:bold}`+
		`</style></head><body>`)
	fmt.Fprintf(w, "<h2>scotch statusz</h2><p>sim time %v &middot; <a href=\"?format=json\">json</a> &middot; <a href=\"/metrics\">metrics</a></p>", v.At)

	if len(v.SLOs) > 0 {
		fmt.Fprint(w, `<h3>SLOs</h3><table><tr><th class="l">slo</th><th class="l">tenant</th>`+
			`<th>objective</th><th>window quantile</th><th>burn short</th><th>burn long</th><th class="l">verdict</th></tr>`)
		for _, s := range v.SLOs {
			fmt.Fprintf(w,
				`<tr><td class="l">%s</td><td class="l">%s</td><td>p%g&lt;%gs</td><td>%.4fs</td><td>%.2f</td><td>%.2f</td><td class="l %s">%s</td></tr>`,
				html.EscapeString(s.Name), html.EscapeString(s.Tenant),
				s.Quantile*100, s.TargetSeconds, s.WindowQuantileSeconds,
				s.BurnShort, s.BurnLong, s.Verdict, s.Verdict)
		}
		fmt.Fprint(w, "</table>")
	}

	if len(v.Tenants) > 0 {
		fmt.Fprint(w, `<h3>Tenants</h3><table><tr><th class="l">tenant</th><th>flows</th><th>p50</th><th>p99</th></tr>`)
		for _, t := range v.Tenants {
			fmt.Fprintf(w, `<tr><td class="l">%s</td><td>%d</td><td>%.4fs</td><td>%.4fs</td></tr>`,
				html.EscapeString(t.Tenant), t.Flows, t.P50, t.P99)
		}
		fmt.Fprint(w, "</table>")
	}

	if len(v.Components) > 0 {
		fmt.Fprint(w, `<h3>Components</h3><table><tr><th class="l">component</th><th class="l">series</th>`+
			`<th>last</th><th>min</th><th>max</th><th>mean</th><th>n</th></tr>`)
		for _, c := range v.Components {
			for _, s := range c.Series {
				fmt.Fprintf(w,
					`<tr><td class="l">%s</td><td class="l">%s</td><td>%.4g</td><td>%.4g</td><td>%.4g</td><td>%.4g</td><td>%d</td></tr>`,
					html.EscapeString(c.Name), html.EscapeString(s.Name),
					s.Summary.Last, s.Summary.Min, s.Summary.Max, s.Summary.Mean, s.Summary.N)
			}
		}
		fmt.Fprint(w, "</table>")
	}
	fmt.Fprint(w, "</body></html>")
}
