package obs

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scotch/internal/sim"
	"scotch/internal/workload"
)

// burnRig builds an engine + tracker + observatory with one p99<50ms SLO
// on tenant "t" and a workload callback: good 1ms flows at 100/s for the
// whole run, plus 200ms flows at 100/s inside [5s, 10s).
func burnRig() (*sim.Engine, *Observatory) {
	eng := sim.New(1)
	lt := workload.NewLatencyTracker(nil)
	o := New(eng, Config{SLOs: []SLO{{
		Name: "t-p99", Tenant: "t", Target: 50 * time.Millisecond,
	}}})
	o.WatchLatency(lt)
	o.Series("fake", "level", func() float64 { return float64(eng.Now()) / float64(time.Second) })
	eng.Every(10*time.Millisecond, func() {
		lt.Observe("t", time.Millisecond)
		now := eng.Now()
		if now >= sim.Time(5*time.Second) && now < sim.Time(10*time.Second) {
			lt.Observe("t", 200*time.Millisecond)
		}
	})
	o.Start()
	return eng, o
}

func TestSLOVerdictStateMachine(t *testing.T) {
	eng, o := burnRig()
	eng.RunUntil(15 * time.Second)
	o.Stop()

	d := o.Digest("test")
	s := d.SLO("t-p99")
	if s == nil {
		t.Fatal("digest has no t-p99 report")
	}
	if s.VerdictPath != "healthy->burning->healthy" {
		t.Fatalf("verdict path = %q, want healthy->burning->healthy", s.VerdictPath)
	}
	if len(s.Transitions) != 2 {
		t.Fatalf("transitions = %+v, want exactly 2", s.Transitions)
	}
	// The breach begins at 5s and must be detected within the short
	// window plus a couple of sampling ticks.
	if b := s.Transitions[0]; b.At < sim.Time(5*time.Second) || b.At > sim.Time(7*time.Second) {
		t.Errorf("burning transition at %v, want shortly after 5s", b.At)
	}
	// Recovery needs the long window (3s) to clear after the breach ends
	// at 10s.
	if r := s.Transitions[1]; r.At < sim.Time(10*time.Second) || r.At > sim.Time(13500*time.Millisecond) {
		t.Errorf("recovery transition at %v, want once the long window clears after 10s", r.At)
	}
	// Half the flows breached a p99 objective: burn = 0.5/0.01 = 50.
	if s.PeakBurnLong < 10 || s.PeakBurnShort < 10 {
		t.Errorf("peak burns %.1f/%.1f, want well above threshold", s.PeakBurnShort, s.PeakBurnLong)
	}
	if s.PeakWindowQuantileSeconds < 0.05 {
		t.Errorf("peak windowed p99 = %.4fs, want over the 50ms target", s.PeakWindowQuantileSeconds)
	}
	if s.Samples == 0 || d.Samples == 0 {
		t.Fatal("no samples recorded")
	}
}

func TestSnapshotMidBurn(t *testing.T) {
	eng, o := burnRig()
	eng.RunUntil(7 * time.Second)

	v := o.Snapshot()
	if v.At == 0 || len(v.Components) == 0 {
		t.Fatalf("empty snapshot: %+v", v)
	}
	if len(v.SLOs) != 1 || v.SLOs[0].Verdict != Burning {
		t.Fatalf("snapshot SLOs = %+v, want t-p99 burning", v.SLOs)
	}
	if v.SLOs[0].BurnShort < 1 || v.SLOs[0].BurnLong < 1 {
		t.Errorf("mid-burn rates %.2f/%.2f, want >= 1", v.SLOs[0].BurnShort, v.SLOs[0].BurnLong)
	}
	if len(v.Tenants) != 1 || v.Tenants[0].Tenant != "t" || v.Tenants[0].Flows == 0 {
		t.Fatalf("tenants = %+v", v.Tenants)
	}

	// Snapshots marshal cleanly (the /statusz JSON payload).
	if _, err := json.Marshal(v); err != nil {
		t.Fatal(err)
	}
}

func TestBreachProfileCapture(t *testing.T) {
	dir := t.TempDir()
	eng := sim.New(1)
	lt := workload.NewLatencyTracker(nil)
	o := New(eng, Config{
		ProfileDir: dir,
		SLOs:       []SLO{{Name: "t-p99", Tenant: "t"}},
	})
	o.WatchLatency(lt)
	eng.Every(10*time.Millisecond, func() { lt.Observe("t", 200*time.Millisecond) })
	o.Start()
	eng.RunUntil(3 * time.Second)
	o.Stop()

	if o.Captures() != 1 {
		t.Fatalf("captures = %d, want 1", o.Captures())
	}
	for _, name := range []string{"breach_t-p99_1_heap.pprof", "breach_t-p99_1_cpu.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing breach profile %s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Errorf("breach profile %s is empty", name)
		}
	}
}

func TestNilObservatorySafe(t *testing.T) {
	var o *Observatory
	o.Series("c", "s", func() float64 { return 1 })
	o.WatchApp(nil)
	o.WatchController("c", nil)
	o.WatchSwitch(nil)
	o.WatchCoordinator(nil)
	o.WatchPool(nil, nil)
	o.WatchDevolve(nil)
	o.WatchLatency(nil)
	o.Start()
	o.Sample()
	o.Stop()
	if n := o.Captures(); n != 0 {
		t.Fatalf("nil captures = %d", n)
	}
	if v := o.Snapshot(); v == nil || len(v.Components) != 0 {
		t.Fatalf("nil snapshot = %+v", v)
	}
	d := o.Digest("x")
	if d == nil || d.Samples != 0 || d.SLO("any") != nil {
		t.Fatalf("nil digest = %+v", d)
	}
	var sb strings.Builder
	if err := d.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
}

// TestDisabledObservatoryAllocFree pins the disabled path: every call on
// a nil observatory must cost zero heap allocations, so leaving the
// hooks compiled into the hot rig paths is free when observation is off.
func TestDisabledObservatoryAllocFree(t *testing.T) {
	var o *Observatory
	probe := func() float64 { return 1 }
	if n := testing.AllocsPerRun(1000, func() {
		o.Series("c", "s", probe)
		o.Start()
		o.Sample()
		o.Stop()
		o.WatchLatency(nil)
		o.WatchDevolve(nil)
		_ = o.Captures()
	}); n != 0 {
		t.Fatalf("disabled observatory allocates %v allocs/op, want 0", n)
	}
}

func TestStatuszHandler(t *testing.T) {
	eng, o := burnRig()
	eng.RunUntil(7 * time.Second)

	h := Handler(o.Snapshot)

	// JSON via query parameter.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("json content type = %q", ct)
	}
	var v ClusterView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if len(v.Components) == 0 || len(v.SLOs) != 1 {
		t.Fatalf("json view = %+v", v)
	}

	// JSON via Accept header.
	req := httptest.NewRequest("GET", "/statusz", nil)
	req.Header.Set("Accept", "application/json")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatal("Accept: application/json did not produce JSON")
	}

	// Default HTML with verdict classes and escaping-safe names.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("html content type = %q", ct)
	}
	for _, want := range []string{"scotch statusz", "t-p99", "burning", "fake"} {
		if !strings.Contains(body, want) {
			t.Errorf("statusz HTML missing %q", want)
		}
	}

	// A nil source renders an empty page rather than crashing.
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if rec.Code != 200 {
		t.Fatalf("nil-source statusz returned %d", rec.Code)
	}
}

func TestSeriesReregisterKeepsRing(t *testing.T) {
	eng := sim.New(1)
	o := New(eng, Config{})
	o.Series("c", "s", func() float64 { return 1 })
	o.Sample()
	o.Series("c", "s", func() float64 { return 2 })
	o.Sample()
	v := o.Snapshot()
	if len(v.Components) != 1 || len(v.Components[0].Series) != 1 {
		t.Fatalf("re-registering duplicated the series: %+v", v.Components)
	}
	s := v.Components[0].Series[0].Summary
	if s.N != 2 || s.Min != 1 || s.Last != 2 {
		t.Fatalf("ring not kept across re-register: %+v", s)
	}
}
