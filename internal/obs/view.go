package obs

import (
	"scotch/internal/sim"
)

// ClusterView is one consistent, point-in-time picture of the whole
// deployment: every sampled component series (summarized over the
// retained window), per-tenant latency quantiles, and the current SLO
// burn state. It is the observatory's API surface for controllers — the
// joint-elasticity load balancer of ROADMAP item 3 consumes exactly this
// struct — and the payload /statusz serves. All fields are plain data:
// a view never aliases live observatory state.
type ClusterView struct {
	// At is the simulation time of the newest sample.
	At sim.Time `json:"at"`
	// Components holds one entry per observed subsystem, sorted by name.
	Components []ComponentView `json:"components"`
	// Tenants holds lifetime per-tenant latency quantiles, sorted by
	// tenant name (empty without a WatchLatency tracker).
	Tenants []TenantView `json:"tenants,omitempty"`
	// SLOs holds the current verdict and burn rates of every configured
	// SLO, in configuration order.
	SLOs []SLOView `json:"slos,omitempty"`
}

// ComponentView is one subsystem's sampled series.
type ComponentView struct {
	Name   string       `json:"name"`
	Series []SeriesView `json:"series"`
}

// SeriesView summarizes one ring series over its retained window.
type SeriesView struct {
	Name    string  `json:"name"`
	Summary Summary `json:"summary"`
}

// TenantView is one tenant's lifetime flow-setup latency distribution.
type TenantView struct {
	Tenant string  `json:"tenant"`
	Flows  uint64  `json:"flows"`
	P50    float64 `json:"p50_seconds"`
	P99    float64 `json:"p99_seconds"`
}

// SLOView is one SLO's current evaluation state.
type SLOView struct {
	Name     string  `json:"name"`
	Tenant   string  `json:"tenant"`
	Quantile float64 `json:"quantile"`
	// TargetSeconds is the latency objective in seconds.
	TargetSeconds float64 `json:"target_seconds"`
	// WindowQuantileSeconds is the quantile over the long window at the
	// newest sample — the "is it slow right now" number.
	WindowQuantileSeconds float64 `json:"window_quantile_seconds"`
	BurnShort             float64 `json:"burn_short"`
	BurnLong              float64 `json:"burn_long"`
	Verdict               Verdict `json:"verdict"`
	// Transitions is the verdict history so far.
	Transitions []Transition `json:"transitions,omitempty"`
	// Samples counts evaluation ticks with a resolved tenant histogram.
	Samples uint64 `json:"samples"`
}

// Component returns the named component view, or nil when the view (or
// the component) is absent. Views are plain data, so the result may be
// retained freely.
func (v *ClusterView) Component(name string) *ComponentView {
	if v == nil {
		return nil
	}
	for i := range v.Components {
		if v.Components[i].Name == name {
			return &v.Components[i]
		}
	}
	return nil
}

// Last returns the newest sampled value of the named series, with
// ok=false when the component is nil, the series is unknown, or it has
// no samples yet. This is the accessor signal extractors (the joint
// balancer) use: policy reads the freshest point, not the window stats.
func (cv *ComponentView) Last(name string) (v float64, ok bool) {
	if cv == nil {
		return 0, false
	}
	for i := range cv.Series {
		if cv.Series[i].Name == name && cv.Series[i].Summary.N > 0 {
			return cv.Series[i].Summary.Last, true
		}
	}
	return 0, false
}

// Snapshot assembles a ClusterView from the current ring and SLO state.
// Safe to call from any goroutine (e.g. a live /statusz handler) while
// the simulation samples; returns an empty view for a nil observatory.
func (o *Observatory) Snapshot() *ClusterView {
	v := &ClusterView{}
	if o == nil {
		return v
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, c := range o.sortedComponents() {
		cv := ComponentView{Name: c.name}
		for _, s := range c.series {
			if p, ok := s.ring.Last(); ok && p.T > v.At {
				v.At = p.T
			}
			cv.Series = append(cv.Series, SeriesView{
				Name:    s.name,
				Summary: Summarize(s.ring.Points()),
			})
		}
		v.Components = append(v.Components, cv)
	}
	if o.tracker != nil {
		for _, name := range o.tracker.TenantNames() {
			h := o.tracker.Tenant(name)
			v.Tenants = append(v.Tenants, TenantView{
				Tenant: name,
				Flows:  h.Count(),
				P50:    h.Quantile(0.5),
				P99:    h.Quantile(0.99),
			})
		}
	}
	for _, s := range o.slos {
		sv := SLOView{
			Name:          s.def.Name,
			Tenant:        s.def.Tenant,
			Quantile:      s.def.Quantile,
			TargetSeconds: s.def.Target.Seconds(),
			Verdict:       s.verdict,
			Transitions:   append([]Transition(nil), s.transitions...),
			Samples:       s.samples,
		}
		if p, ok := s.burnShort.Last(); ok {
			sv.BurnShort = p.V
		}
		if p, ok := s.burnLong.Last(); ok {
			sv.BurnLong = p.V
		}
		if p, ok := s.windowQ.Last(); ok {
			sv.WindowQuantileSeconds = p.V
		}
		v.SLOs = append(v.SLOs, sv)
	}
	return v
}
