package workload

import (
	"math"
	"time"

	"scotch/internal/capture"
	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

// Flow describes one flow a generator will emit.
type Flow struct {
	Key      netaddr.FlowKey
	Packets  int           // total packets (>= 1)
	Interval time.Duration // spacing between packets
	Size     int           // bytes per packet on the wire
	Class    string
}

// Emitter sends flows from a host, registering each with a capture.
type Emitter struct {
	Eng  sim.Proc
	Host *device.Host
	Cap  *capture.Capture // may be nil
}

// NewEmitter binds a host to a capture.
func NewEmitter(eng sim.Proc, host *device.Host, cap *capture.Capture) *Emitter {
	return &Emitter{Eng: eng, Host: host, Cap: cap}
}

// emission is one flow's shared send state: every scheduled packet of the
// flow references this single box (via DeferCall) instead of owning a
// closure, so starting an n-packet flow costs one allocation, not n+1.
type emission struct {
	e  *Emitter
	f  Flow
	id uint64
}

// emitOne sends packet a2 (its index) of emission a1.
func emitOne(a1, a2 any) {
	em := a1.(*emission)
	i := a2.(int)
	e, f := em.e, em.f
	flags := uint8(packet.FlagACK)
	if i == 0 {
		flags = packet.FlagSYN
	}
	p := packet.NewTCP(f.Key.Src, f.Key.Dst, f.Key.SrcPort, f.Key.DstPort, flags)
	if f.Size > p.Size {
		p.Size = f.Size
	}
	p.Meta.FlowID = em.id
	p.Meta.Seq = i
	p.Meta.FirstOfFl = i == 0
	p.Meta.SentAt = e.Eng.Now()
	if e.Cap != nil {
		e.Cap.RecordSend(p)
	}
	e.Host.Send(p)
}

// Start begins emitting the flow's packets, the first immediately.
func (e *Emitter) Start(f Flow) {
	em := &emission{e: e, f: f}
	if e.Cap != nil {
		em.id = e.Cap.NewFlow(f.Key, f.Class, f.Packets).ID
	}
	for i := 0; i < f.Packets; i++ {
		e.Eng.DeferCall(e.Eng, time.Duration(i)*f.Interval, emitOne, em, i)
	}
}

// DDoS emits spoofed-source single-packet flows at a configurable rate —
// every packet is a new flow to the switch, exactly as the paper's attack
// (§3.2: "we simulate the new flows by spoofing each packet's source IP").
type DDoS struct {
	em   *Emitter
	dst  netaddr.IPv4
	rate float64
	proc *arrivals
	n    uint32
}

// StartDDoS begins an attack from the emitter's host toward dst at rate
// flows/second (Poisson arrivals).
func StartDDoS(em *Emitter, dst netaddr.IPv4, rate float64) *DDoS {
	d := &DDoS{em: em, dst: dst, rate: rate}
	d.proc = startArrivals(em.Eng, rate, d.fire)
	return d
}

func (d *DDoS) fire() {
	d.n++
	// Spoofed source: walk a /12 so every packet is a distinct flow.
	src := netaddr.MakeIPv4(172, byte(16+(d.n>>16)&0x0f), byte(d.n>>8), byte(d.n))
	d.em.Start(Flow{
		Key: netaddr.FlowKey{Src: src, Dst: d.dst, Proto: netaddr.ProtoTCP,
			SrcPort: uint16(1024 + d.n%50000), DstPort: 80},
		Packets: 1, Size: 64, Class: "attack",
	})
}

// Stop halts the attack.
func (d *DDoS) Stop() { d.proc.Stop() }

// ClientGen emits legitimate new flows at a constant rate. Flows use the
// host's real source address with a rotating source port, so each is a new
// flow to the network but a legitimate one.
type ClientGen struct {
	em       *Emitter
	dst      netaddr.IPv4
	proc     *arrivals
	n        uint32
	Packets  int
	Interval time.Duration
	Size     int
	Class    string
}

// StartClient begins emitting flows at rate flows/second (Poisson
// arrivals); each flow has packets packets spaced by ival.
func StartClient(em *Emitter, dst netaddr.IPv4, rate float64, packets int, ival time.Duration) *ClientGen {
	g := &ClientGen{em: em, dst: dst, Packets: packets, Interval: ival, Size: 64, Class: "client"}
	g.proc = startArrivals(em.Eng, rate, g.fire)
	return g
}

func (g *ClientGen) fire() {
	g.n++
	g.em.Start(Flow{
		Key: netaddr.FlowKey{Src: g.em.Host.IP, Dst: g.dst, Proto: netaddr.ProtoTCP,
			SrcPort: uint16(1024 + g.n%60000), DstPort: 80},
		Packets: g.Packets, Interval: g.Interval, Size: g.Size, Class: g.Class,
	})
}

// Stop halts the generator.
func (g *ClientGen) Stop() { g.proc.Stop() }

func interval(rate float64) time.Duration {
	return time.Duration(float64(time.Second) / rate)
}

// arrivals is a Poisson arrival process: exponential inter-arrival times
// from the engine's seeded RNG. Deterministic periodic generators phase-
// lock with each other and with queue service; real traffic does not.
type arrivals struct {
	eng     sim.Proc
	rate    float64
	fire    func()
	stopped bool
}

func startArrivals(eng sim.Proc, rate float64, fire func()) *arrivals {
	a := &arrivals{eng: eng, rate: rate, fire: fire}
	if rate > 0 {
		a.arm()
	}
	return a
}

func (a *arrivals) arm() {
	gap := time.Duration(a.eng.Rand().ExpFloat64() / a.rate * float64(time.Second))
	a.eng.Schedule(gap, func() {
		if a.stopped {
			return
		}
		a.fire()
		a.arm()
	})
}

func (a *arrivals) Stop() { a.stopped = true }

// FlashCrowd modulates a flow arrival rate over time: Base until RampStart,
// a linear climb to Peak by PeakStart, sustained until PeakEnd, then a
// linear fall back to Base by RampEnd. It drives a callback with each new
// flow arrival, using a deterministic fractional accumulator.
type FlashCrowd struct {
	Base, Peak                             float64
	RampStart, PeakStart, PeakEnd, RampEnd sim.Time

	eng    sim.Proc
	spawn  func()
	acc    float64
	last   sim.Time
	ticker *sim.Ticker
}

// StartFlashCrowd begins driving spawn with the modulated arrival process.
func StartFlashCrowd(eng sim.Proc, fc FlashCrowd, spawn func()) *FlashCrowd {
	f := fc
	f.eng = eng
	f.spawn = spawn
	f.last = eng.Now()
	f.ticker = eng.Every(time.Millisecond, f.tick)
	return &f
}

// RateAt returns the instantaneous arrival rate at virtual time t.
func (f *FlashCrowd) RateAt(t sim.Time) float64 {
	switch {
	case t < f.RampStart:
		return f.Base
	case t < f.PeakStart:
		frac := float64(t-f.RampStart) / float64(f.PeakStart-f.RampStart)
		return f.Base + frac*(f.Peak-f.Base)
	case t < f.PeakEnd:
		return f.Peak
	case t < f.RampEnd:
		frac := float64(t-f.PeakEnd) / float64(f.RampEnd-f.PeakEnd)
		return f.Peak - frac*(f.Peak-f.Base)
	default:
		return f.Base
	}
}

func (f *FlashCrowd) tick() {
	now := f.eng.Now()
	f.acc += f.RateAt(now) * (now - f.last).Seconds()
	f.last = now
	for f.acc >= 1 {
		f.acc--
		f.spawn()
	}
}

// Stop halts the arrival process.
func (f *FlashCrowd) Stop() { f.ticker.Stop() }

// ParetoSize samples a bounded Pareto flow size in packets: heavy-tailed,
// reproducing the measurement literature's "majority of bytes belong to a
// small number of large flows" that motivates elephant migration (§5.3).
func ParetoSize(u float64, alpha float64, minPkts, maxPkts int) int {
	if u <= 0 {
		u = 1e-12
	}
	size := float64(minPkts) * math.Pow(u, -1/alpha)
	if size > float64(maxPkts) {
		size = float64(maxPkts)
	}
	return int(size)
}

// TraceGen synthesizes a realistic workload: Poisson-ish flow arrivals
// spread over a set of source hosts, bounded-Pareto flow sizes, uniform
// destination choice. It is the stand-in for the paper's trace-driven
// experiment input.
type TraceGen struct {
	Eng     sim.Proc
	Sources []*Emitter
	Dsts    []netaddr.IPv4
	Rate    float64 // aggregate new flows per second
	Alpha   float64 // Pareto shape (1.2 is typical for DC flows)
	MinPkts int
	MaxPkts int
	PktIval time.Duration
	Class   string

	n    uint32
	proc *arrivals
}

// Start begins the trace playback.
func (tg *TraceGen) Start() {
	if tg.Class == "" {
		tg.Class = "trace"
	}
	if tg.Alpha == 0 {
		tg.Alpha = 1.2
	}
	if tg.MinPkts == 0 {
		tg.MinPkts = 1
	}
	if tg.MaxPkts == 0 {
		tg.MaxPkts = 2000
	}
	if tg.PktIval == 0 {
		tg.PktIval = 2 * time.Millisecond
	}
	tg.proc = startArrivals(tg.Eng, tg.Rate, tg.fire)
}

func (tg *TraceGen) fire() {
	tg.n++
	rng := tg.Eng.Rand()
	src := tg.Sources[rng.Intn(len(tg.Sources))]
	dst := tg.Dsts[rng.Intn(len(tg.Dsts))]
	if dst == src.Host.IP {
		dst = tg.Dsts[(rng.Intn(len(tg.Dsts))+1)%len(tg.Dsts)]
	}
	pkts := ParetoSize(rng.Float64(), tg.Alpha, tg.MinPkts, tg.MaxPkts)
	src.Start(Flow{
		Key: netaddr.FlowKey{Src: src.Host.IP, Dst: dst, Proto: netaddr.ProtoTCP,
			SrcPort: uint16(1024 + tg.n%60000), DstPort: 80},
		Packets: pkts, Interval: tg.PktIval, Size: 1000, Class: tg.Class,
	})
}

// Stop halts the playback.
func (tg *TraceGen) Stop() {
	if tg.proc != nil {
		tg.proc.Stop()
	}
}
