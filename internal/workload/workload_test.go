package workload

import (
	"math"
	"testing"
	"time"

	"scotch/internal/capture"
	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

func pair(eng *sim.Engine) (*device.Host, *device.Host) {
	h1 := device.NewHost(eng, "src", netaddr.MakeIPv4(10, 0, 0, 1), netaddr.MakeMAC(1))
	h2 := device.NewHost(eng, "dst", netaddr.MakeIPv4(10, 0, 1, 1), netaddr.MakeMAC(2))
	device.Connect(h1, 1, h2, 1, device.LinkConfig{})
	return h1, h2
}

func TestEmitterMultiPacketFlow(t *testing.T) {
	eng := sim.New(1)
	h1, h2 := pair(eng)
	cap := capture.New(eng)
	cap.Attach(h2)
	em := NewEmitter(eng, h1, cap)
	key := netaddr.FlowKey{Src: h1.IP, Dst: h2.IP, Proto: netaddr.ProtoTCP, SrcPort: 1000, DstPort: 80}
	em.Start(Flow{Key: key, Packets: 5, Interval: 10 * time.Millisecond, Class: "client"})
	eng.RunUntil(time.Second)

	flows := cap.Flows("client")
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	f := flows[0]
	if f.PacketsSent != 5 || f.PacketsRecv != 5 {
		t.Fatalf("sent/recv = %d/%d", f.PacketsSent, f.PacketsRecv)
	}
	if !f.Completed() {
		t.Fatal("flow not completed")
	}
	if cap.FailureFraction("client") != 0 {
		t.Fatal("failure fraction nonzero")
	}
	if cap.CompletionFraction("client") != 1 {
		t.Fatal("completion fraction != 1")
	}
}

func TestDDoSRateAndSpoofing(t *testing.T) {
	eng := sim.New(1)
	h1, h2 := pair(eng)
	cap := capture.New(eng)
	em := NewEmitter(eng, h1, cap)
	var srcs []netaddr.IPv4
	h2.OnReceive = nil
	prev := h1.Send
	_ = prev
	d := StartDDoS(em, h2.IP, 500)
	eng.Schedule(2*time.Second, d.Stop)
	eng.RunUntil(3 * time.Second)

	flows := cap.Flows("attack")
	if len(flows) < 880 || len(flows) > 1120 {
		t.Fatalf("attack flows = %d, want ~1000", len(flows))
	}
	seen := map[netaddr.FlowKey]bool{}
	for _, f := range flows {
		if seen[f.Key] {
			t.Fatalf("duplicate spoofed key %v", f.Key)
		}
		seen[f.Key] = true
		srcs = append(srcs, f.Key.Src)
		if f.Key.Src == h1.IP {
			t.Fatal("attack used real source address")
		}
	}
	_ = srcs
}

func TestClientGenClass(t *testing.T) {
	eng := sim.New(1)
	h1, h2 := pair(eng)
	cap := capture.New(eng)
	cap.Attach(h2)
	em := NewEmitter(eng, h1, cap)
	g := StartClient(em, h2.IP, 100, 1, 0)
	eng.Schedule(time.Second, g.Stop)
	eng.RunUntil(2 * time.Second)
	sent, delivered := cap.Counts("client")
	if sent < 75 || sent > 125 {
		t.Fatalf("client flows = %d, want ~100", sent)
	}
	if delivered != sent {
		t.Fatalf("delivered %d/%d on loss-free link", delivered, sent)
	}
	for _, f := range cap.Flows("client") {
		if f.Key.Src != h1.IP {
			t.Fatal("client spoofed its source")
		}
	}
}

func TestFlashCrowdEnvelope(t *testing.T) {
	eng := sim.New(1)
	fc := FlashCrowd{
		Base: 100, Peak: 1000,
		RampStart: 2 * time.Second, PeakStart: 4 * time.Second,
		PeakEnd: 6 * time.Second, RampEnd: 8 * time.Second,
	}
	count := 0
	f := StartFlashCrowd(eng, fc, func() { count++ })
	if r := f.RateAt(0); r != 100 {
		t.Fatalf("rate(0) = %v", r)
	}
	if r := f.RateAt(3 * time.Second); math.Abs(r-550) > 1 {
		t.Fatalf("rate(3s) = %v, want 550", r)
	}
	if r := f.RateAt(5 * time.Second); r != 1000 {
		t.Fatalf("rate(5s) = %v", r)
	}
	if r := f.RateAt(7 * time.Second); math.Abs(r-550) > 1 {
		t.Fatalf("rate(7s) = %v", r)
	}
	if r := f.RateAt(10 * time.Second); r != 100 {
		t.Fatalf("rate(10s) = %v", r)
	}
	eng.RunUntil(10 * time.Second)
	f.Stop()
	// Integral: 2s*100 + ramp 2s*550 + 2s*1000 + ramp 2s*550 + 2s*100 = 4600.
	if count < 4400 || count > 4800 {
		t.Fatalf("flash crowd spawned %d flows, want ~4600", count)
	}
}

func TestParetoSizeHeavyTail(t *testing.T) {
	eng := sim.New(7)
	rng := eng.Rand()
	const n = 20000
	sizes := make([]int, n)
	totalPkts := 0
	for i := range sizes {
		sizes[i] = ParetoSize(rng.Float64(), 1.2, 1, 2000)
		if sizes[i] < 1 || sizes[i] > 2000 {
			t.Fatalf("size %d out of bounds", sizes[i])
		}
		totalPkts += sizes[i]
	}
	// Heavy tail: the top 10% of flows must carry the majority of packets.
	big := 0
	for _, s := range sizes {
		if s >= 10 {
			big += s
		}
	}
	if frac := float64(big) / float64(totalPkts); frac < 0.5 {
		t.Fatalf("large flows carry %.2f of packets, want > 0.5", frac)
	}
	// But most flows are small (mice dominate by count).
	small := 0
	for _, s := range sizes {
		if s < 10 {
			small++
		}
	}
	if frac := float64(small) / n; frac < 0.7 {
		t.Fatalf("mice fraction = %.2f, want > 0.7", frac)
	}
}

func TestTraceGen(t *testing.T) {
	eng := sim.New(3)
	h1, h2 := pair(eng)
	cap := capture.New(eng)
	cap.Attach(h2)
	tg := &TraceGen{
		Eng:     eng,
		Sources: []*Emitter{NewEmitter(eng, h1, cap)},
		Dsts:    []netaddr.IPv4{h2.IP},
		Rate:    200,
		MaxPkts: 50,
		PktIval: time.Millisecond,
	}
	tg.Start()
	eng.Schedule(2*time.Second, tg.Stop)
	eng.RunUntil(3 * time.Second)
	flows := cap.Flows("trace")
	if len(flows) < 330 || len(flows) > 470 {
		t.Fatalf("trace flows = %d, want ~400", len(flows))
	}
	multi := 0
	for _, f := range flows {
		if f.PacketsSent > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-packet flows in trace")
	}
}

func TestEmitterStampsMetaAndSYN(t *testing.T) {
	eng := sim.New(1)
	h1, h2 := pair(eng)
	var pkts []*packet.Packet
	h2.OnReceive = func(p *packet.Packet, _ sim.Time) { pkts = append(pkts, p) }
	em := NewEmitter(eng, h1, capture.New(eng))
	key := netaddr.FlowKey{Src: h1.IP, Dst: h2.IP, Proto: netaddr.ProtoTCP, SrcPort: 9, DstPort: 80}
	em.Start(Flow{Key: key, Packets: 3, Interval: time.Millisecond, Class: "x"})
	eng.RunUntil(time.Second)
	if len(pkts) != 3 {
		t.Fatalf("pkts = %d", len(pkts))
	}
	if pkts[0].TCP.Flags&packet.FlagSYN == 0 {
		t.Fatal("first packet not SYN")
	}
	if pkts[1].TCP.Flags&packet.FlagSYN != 0 {
		t.Fatal("second packet is SYN")
	}
	for i, p := range pkts {
		if p.Meta.Seq != i || p.Meta.FlowID == 0 {
			t.Fatalf("meta wrong on packet %d: %+v", i, p.Meta)
		}
	}
}

func TestResponder(t *testing.T) {
	eng := sim.New(1)
	h1, h2 := pair(eng)
	cap := capture.New(eng)
	cap.Attach(h1)
	cap.Attach(h2)
	r := AttachResponder(eng, h2, cap, "resp")

	em := NewEmitter(eng, h1, cap)
	k := netaddr.FlowKey{Src: h1.IP, Dst: h2.IP, Proto: netaddr.ProtoTCP, SrcPort: 100, DstPort: 80}
	em.Start(Flow{Key: k, Packets: 3, Interval: time.Millisecond, Class: "req"})
	eng.RunUntil(time.Second)

	if r.Sent != 3 {
		t.Fatalf("responses sent = %d, want 3", r.Sent)
	}
	flows := cap.Flows("resp")
	if len(flows) != 1 {
		t.Fatalf("response flows = %d, want 1 (one reverse flow)", len(flows))
	}
	if flows[0].Key != k.Reverse() {
		t.Fatalf("response key = %v", flows[0].Key)
	}
	if flows[0].PacketsRecv != 3 {
		t.Fatalf("responses delivered = %d", flows[0].PacketsRecv)
	}
}

func TestResponderFilter(t *testing.T) {
	eng := sim.New(1)
	h1, h2 := pair(eng)
	cap := capture.New(eng)
	cap.Attach(h2)
	r := AttachResponder(eng, h2, cap, "resp")
	r.RespondTo = func(src netaddr.IPv4) bool { return false }
	em := NewEmitter(eng, h1, cap)
	k := netaddr.FlowKey{Src: h1.IP, Dst: h2.IP, Proto: netaddr.ProtoTCP, SrcPort: 100, DstPort: 80}
	em.Start(Flow{Key: k, Packets: 2, Interval: time.Millisecond, Class: "req"})
	eng.RunUntil(time.Second)
	if r.Sent != 0 {
		t.Fatalf("filtered responder sent %d", r.Sent)
	}
}
