package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzTraceCSV drives the CSV trace parser with arbitrary input, seeded
// from testdata/fuzz/FuzzTraceCSV plus the inline seeds below. Properties:
//
//  1. ParseTraceCSV never panics (the fuzz engine catches panics itself).
//  2. Anything that parses must re-encode successfully.
//  3. Re-encoding is canonical: parse(write(parse(x))) == parse(x), and a
//     second write produces the identical bytes.
func FuzzTraceCSV(f *testing.F) {
	f.Add("0.5,10.0.0.1,10.0.1.1,4000,web")
	f.Add("2,10.0.0.2,10.0.1.1,500")
	f.Add("# comment\n\n0.000000250,172.16.0.9,10.0.1.2,0,batch\n")
	f.Add(" 1.5 , 10.0.0.1 , 10.0.1.1 , 7 ")
	f.Add("1000000.000000000,255.255.255.255,0.0.0.0,2147483647,t")
	f.Add("1e3,10.0.0.1,10.0.0.2,5")
	f.Add("1.0000000001,10.0.0.1,10.0.0.2,5")
	f.Add("1,10.0.0.1,10.0.0.2,5,a,b")
	f.Add(strings.Repeat("9", 30) + ",1.2.3.4,5.6.7.8,1")
	f.Fuzz(func(t *testing.T, data string) {
		events, err := ParseTraceCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := WriteTraceCSV(&first, events); err != nil {
			t.Fatalf("parsed events do not re-encode: %v\n%q", err, data)
		}
		events2, err := ParseTraceCSV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding does not parse: %v\n%q", err, first.String())
		}
		if len(events2) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(events2))
		}
		for i := range events {
			if events2[i] != events[i] {
				t.Fatalf("event %d changed across round trip:\n%+v\n%+v", i, events[i], events2[i])
			}
		}
		var second bytes.Buffer
		if err := WriteTraceCSV(&second, events2); err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("CSV encoding is not a fixpoint:\n%q\n%q", first.String(), second.String())
		}
	})
}

// FuzzTraceJSONL drives the JSONL trace parser with the same three
// properties as FuzzTraceCSV: no panic, re-encodable, canonical fixpoint.
func FuzzTraceJSONL(f *testing.F) {
	f.Add(`{"start_s":"1.500000000","src":"10.0.0.1","dst":"10.0.1.2","bytes":4000,"tenant":"web"}`)
	f.Add(`{"start_s":"0.000000001","src":"10.0.0.2","dst":"10.0.1.2","bytes":1}`)
	f.Add("{\"start_s\":\"0\",\"src\":\"0.0.0.0\",\"dst\":\"255.255.255.255\",\"bytes\":0}\n\n")
	f.Add(`{"start_s":1.5,"src":"10.0.0.1","dst":"10.0.1.2","bytes":1}`)
	f.Add(`{"start_s":"1","src":"10.0.0.1","dst":"10.0.1.2","bytes":1,"extra":true}`)
	f.Add(`{"start_s":"1","src":"10.0.0.1","dst":"10.0.1.2","bytes":1} trailing`)
	f.Add(`["not","an","object"]`)
	f.Fuzz(func(t *testing.T, data string) {
		events, err := ParseTraceJSONL(strings.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := WriteTraceJSONL(&first, events); err != nil {
			t.Fatalf("parsed events do not re-encode: %v\n%q", err, data)
		}
		events2, err := ParseTraceJSONL(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding does not parse: %v\n%q", err, first.String())
		}
		if len(events2) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(events2))
		}
		for i := range events {
			if events2[i] != events[i] {
				t.Fatalf("event %d changed across round trip:\n%+v\n%+v", i, events[i], events2[i])
			}
		}
		var second bytes.Buffer
		if err := WriteTraceJSONL(&second, events2); err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("JSONL encoding is not a fixpoint:\n%q\n%q", first.String(), second.String())
		}
	})
}
