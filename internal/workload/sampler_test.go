package workload

import (
	"math"
	"math/rand"
	"testing"
)

const samplerDraws = 100_000

// drawAll pulls n sizes from a sampler seeded with seed.
func drawAll(s SizeSampler, seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = s.SamplePackets(rng)
	}
	return out
}

// TestSamplerSameSeedIdenticalSequence pins the reproducibility property:
// the same seed must yield the identical size sequence, draw for draw.
func TestSamplerSameSeedIdenticalSequence(t *testing.T) {
	samplers := map[string]SizeSampler{
		"pareto":    ParetoSampler{Alpha: 1.2, MinPkts: 1, MaxPkts: 2000},
		"lognormal": LognormalSampler{Mu: 3, Sigma: 1, MinPkts: 1, MaxPkts: 1 << 20},
		"fixed":     FixedSampler{Pkts: 7},
	}
	for name, s := range samplers {
		a := drawAll(s, 42, 10_000)
		b := drawAll(s, 42, 10_000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: draw %d differs across same-seed runs: %d vs %d", name, i, a[i], b[i])
			}
		}
		c := drawAll(s, 43, 10_000)
		if name != "fixed" {
			same := 0
			for i := range a {
				if a[i] == c[i] {
					same++
				}
			}
			if same == len(a) {
				t.Fatalf("%s: different seeds produced the identical sequence", name)
			}
		}
	}
}

// TestParetoTailExponent recovers the configured tail exponent with the
// Pareto MLE (the Hill estimator over the full sample) from 10^5 draws.
// MinPkts is large so integer truncation cannot bias the estimate, and
// MaxPkts is effectively unbounded so the tail is intact.
func TestParetoTailExponent(t *testing.T) {
	const alpha = 1.2
	s := ParetoSampler{Alpha: alpha, MinPkts: 1000, MaxPkts: math.MaxInt32}
	draws := drawAll(s, 7, samplerDraws)
	var sumLog float64
	for _, v := range draws {
		if v < s.MinPkts {
			t.Fatalf("draw %d below MinPkts %d", v, s.MinPkts)
		}
		sumLog += math.Log(float64(v) / float64(s.MinPkts))
	}
	alphaHat := float64(len(draws)) / sumLog
	// Standard error of the MLE is alpha/sqrt(n) ~ 0.004; 0.05 is > 10 sigma.
	if math.Abs(alphaHat-alpha) > 0.05 {
		t.Errorf("tail exponent estimate %.4f, want %.2f +/- 0.05", alphaHat, alpha)
	}
}

// TestParetoBoundedMean checks the empirical mean of the bounded sampler
// against the analytic truncated mean over 10^5 draws. Integer flooring
// shifts the mean down by at most one packet, hence the asymmetric band.
func TestParetoBoundedMean(t *testing.T) {
	s := ParetoSampler{Alpha: 1.2, MinPkts: 1, MaxPkts: 2000}
	draws := drawAll(s, 11, samplerDraws)
	var sum float64
	for _, v := range draws {
		if v < s.MinPkts || v > s.MaxPkts {
			t.Fatalf("draw %d outside [%d, %d]", v, s.MinPkts, s.MaxPkts)
		}
		sum += float64(v)
	}
	emp := sum / float64(len(draws))
	want := s.Mean()
	if emp > want+0.5 || emp < want-1.5 {
		t.Errorf("empirical mean %.3f outside [%.3f, %.3f] (analytic %.3f)",
			emp, want-1.5, want+0.5, want)
	}
}

// TestLognormalParameters recovers Mu and Sigma from the log of 10^5
// draws; bounds are wide so clamping at the extremes cannot trip it.
func TestLognormalParameters(t *testing.T) {
	s := LognormalSampler{Mu: 3, Sigma: 1, MinPkts: 1, MaxPkts: 1 << 30}
	draws := drawAll(s, 13, samplerDraws)
	var sum, sumSq float64
	for _, v := range draws {
		l := math.Log(float64(v))
		sum += l
		sumSq += l * l
	}
	n := float64(len(draws))
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	// Integer truncation of exp(mu+sigma*Z) biases log moments by only
	// O(1/size); 0.05 is far beyond the ~0.003 standard error.
	if math.Abs(mean-s.Mu) > 0.05 {
		t.Errorf("mean of logs %.4f, want %.2f +/- 0.05", mean, s.Mu)
	}
	if math.Abs(sd-s.Sigma) > 0.05 {
		t.Errorf("sd of logs %.4f, want %.2f +/- 0.05", sd, s.Sigma)
	}
}

// TestLognormalClamping checks the clamp boundaries are honored.
func TestLognormalClamping(t *testing.T) {
	s := LognormalSampler{Mu: 0, Sigma: 4, MinPkts: 2, MaxPkts: 16}
	for _, v := range drawAll(s, 17, 10_000) {
		if v < s.MinPkts || v > s.MaxPkts {
			t.Fatalf("draw %d escapes clamp [%d, %d]", v, s.MinPkts, s.MaxPkts)
		}
	}
}

func TestFixedSampler(t *testing.T) {
	if got := (FixedSampler{Pkts: 3}).SamplePackets(nil); got != 3 {
		t.Errorf("fixed sampler = %d, want 3", got)
	}
	if got := (FixedSampler{}).SamplePackets(nil); got != 1 {
		t.Errorf("zero fixed sampler = %d, want 1", got)
	}
}
