// Package workload generates the traffic the paper's experiments use: a
// spoofed-source DDoS attacker (the hping3 stand-in of §3.2, where every
// packet is a new flow), constant-rate clients, flash crowds, and a
// heavy-tailed synthetic trace for the trace-driven experiment (§6.2).
package workload
