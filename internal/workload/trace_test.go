package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"scotch/internal/capture"
	"scotch/internal/netaddr"
	"scotch/internal/sim"
)

func TestParseTraceCSV(t *testing.T) {
	in := `# demo trace
0.5,10.0.0.1,10.0.1.1,4000,web

2,10.0.0.2,10.0.1.1,500
0.000000250,172.16.0.9,10.0.1.2,0,batch
`
	events, err := ParseTraceCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []TraceEvent{
		{Start: 500 * time.Millisecond, Src: netaddr.MakeIPv4(10, 0, 0, 1),
			Dst: netaddr.MakeIPv4(10, 0, 1, 1), Bytes: 4000, Tenant: "web"},
		{Start: 2 * time.Second, Src: netaddr.MakeIPv4(10, 0, 0, 2),
			Dst: netaddr.MakeIPv4(10, 0, 1, 1), Bytes: 500},
		{Start: 250 * time.Nanosecond, Src: netaddr.MakeIPv4(172, 16, 0, 9),
			Dst: netaddr.MakeIPv4(10, 0, 1, 2), Bytes: 0, Tenant: "batch"},
	}
	if len(events) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(events), len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestParseTraceCSVMalformed(t *testing.T) {
	cases := map[string]string{
		"too few fields":    "1.0,10.0.0.1,10.0.0.2",
		"too many fields":   "1.0,10.0.0.1,10.0.0.2,5,web,extra",
		"bad seconds":       "1e3,10.0.0.1,10.0.0.2,5",
		"negative seconds":  "-1,10.0.0.1,10.0.0.2,5",
		"10 frac digits":    "1.0000000001,10.0.0.1,10.0.0.2,5",
		"beyond horizon":    "1000001,10.0.0.1,10.0.0.2,5",
		"bad src":           "1,300.0.0.1,10.0.0.2,5",
		"bad dst":           "1,10.0.0.1,nope,5",
		"negative bytes":    "1,10.0.0.1,10.0.0.2,-5",
		"non-numeric bytes": "1,10.0.0.1,10.0.0.2,x",
	}
	for name, line := range cases {
		if _, err := ParseTraceCSV(strings.NewReader(line)); err == nil {
			t.Errorf("%s: accepted %q", name, line)
		}
	}
	// Errors carry the offending line number, counting comments and blanks.
	_, err := ParseTraceCSV(strings.NewReader("# header\n\n1,10.0.0.1,10.0.0.2,5\nbroken\n"))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error %v does not name line 4", err)
	}
}

func TestParseTraceJSONL(t *testing.T) {
	in := `{"start_s":"1.500000000","src":"10.0.0.1","dst":"10.0.1.2","bytes":4000,"tenant":"web"}

{"start_s":"0.000000001","src":"10.0.0.2","dst":"10.0.1.2","bytes":1}
`
	events, err := ParseTraceJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("parsed %d events, want 2", len(events))
	}
	if events[0].Tenant != "web" || events[0].Start != 1500*time.Millisecond {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Start != time.Nanosecond || events[1].Tenant != "" {
		t.Errorf("event 1 = %+v", events[1])
	}
	bad := []string{
		`{"start_s":"1","src":"10.0.0.1","dst":"10.0.1.2","bytes":1,"extra":true}`,
		`{"start_s":"1","src":"10.0.0.1","dst":"10.0.1.2","bytes":1} trailing`,
		`{"start_s":1.5,"src":"10.0.0.1","dst":"10.0.1.2","bytes":1}`,
		`not json at all`,
		`{"start_s":"1","src":"10.0.0.1","dst":"10.0.1.2","bytes":1,"tenant":"a,b"}`,
	}
	for _, line := range bad {
		if _, err := ParseTraceJSONL(strings.NewReader(line)); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

// TestTraceRoundTrip: write → parse is the identity for both codecs, at
// nanosecond timestamp resolution.
func TestTraceRoundTrip(t *testing.T) {
	events := []TraceEvent{
		{Start: 0, Src: netaddr.MakeIPv4(10, 0, 0, 1), Dst: netaddr.MakeIPv4(10, 0, 1, 1), Bytes: 1},
		{Start: 123456789 * time.Nanosecond, Src: netaddr.MakeIPv4(1, 2, 3, 4),
			Dst: netaddr.MakeIPv4(5, 6, 7, 8), Bytes: 1 << 30, Tenant: "web"},
		{Start: maxTraceStart, Src: netaddr.MakeIPv4(255, 255, 255, 255),
			Dst: netaddr.MakeIPv4(0, 0, 0, 0), Bytes: 0, Tenant: "batch"},
	}
	var csv, jsonl bytes.Buffer
	if err := WriteTraceCSV(&csv, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceJSONL(&jsonl, events); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ParseTrace("t.csv", bytes.NewReader(csv.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromJSONL, err := ParseTrace("t.jsonl", bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if fromCSV[i] != events[i] {
			t.Errorf("CSV round trip event %d: %+v != %+v", i, fromCSV[i], events[i])
		}
		if fromJSONL[i] != events[i] {
			t.Errorf("JSONL round trip event %d: %+v != %+v", i, fromJSONL[i], events[i])
		}
	}
	// Writers refuse invalid events rather than emitting unparseable lines.
	if err := WriteTraceCSV(&csv, []TraceEvent{{Start: -time.Second}}); err == nil {
		t.Error("WriteTraceCSV accepted a negative start")
	}
	if err := WriteTraceJSONL(&jsonl, []TraceEvent{{Tenant: "a\nb"}}); err == nil {
		t.Error("WriteTraceJSONL accepted a tenant with a newline")
	}
}

// TestReplayDelivers replays a small trace over a live host pair and checks
// every event becomes a delivered flow with the trace's source, tenant
// label, and byte-derived packet count.
func TestReplayDelivers(t *testing.T) {
	eng := sim.New(1)
	h1, h2 := pair(eng)
	cap := capture.New(eng)
	cap.Attach(h2)
	em := NewEmitter(eng, h1, cap)

	events := []TraceEvent{
		{Start: 100 * time.Millisecond, Src: netaddr.MakeIPv4(192, 168, 0, 1),
			Dst: netaddr.MakeIPv4(10, 0, 1, 1), Bytes: 2500, Tenant: "web"},
		{Start: 200 * time.Millisecond, Src: netaddr.MakeIPv4(192, 168, 0, 2),
			Dst: netaddr.MakeIPv4(10, 0, 1, 1), Bytes: 0},
	}
	n := Replay(eng, events, ReplayConfig{
		MSS: 1000,
		Resolve: func(ev TraceEvent) (*Emitter, netaddr.IPv4) {
			return em, h2.IP
		},
	})
	if n != 2 {
		t.Fatalf("scheduled %d events, want 2", n)
	}
	eng.RunUntil(time.Second)

	web := cap.Flows("web")
	if len(web) != 1 {
		t.Fatalf("web flows = %d, want 1", len(web))
	}
	// 2500 bytes at MSS 1000 → ceil = 3 packets, source kept from the trace.
	if web[0].PacketsRecv != 3 {
		t.Errorf("web packets = %d, want 3", web[0].PacketsRecv)
	}
	if web[0].Key.Src != events[0].Src {
		t.Errorf("web flow src = %v, want trace src %v", web[0].Key.Src, events[0].Src)
	}
	if web[0].FirstSent != 100*time.Millisecond {
		t.Errorf("web flow started at %v, want 100ms", web[0].FirstSent)
	}
	rep := cap.Flows("replay")
	if len(rep) != 1 || rep[0].PacketsRecv != 1 {
		t.Fatalf("default-tenant flows = %+v, want one single-packet flow", rep)
	}

	// A resolver returning nil skips the event without scheduling.
	if n := Replay(eng, events, ReplayConfig{Resolve: func(TraceEvent) (*Emitter, netaddr.IPv4) {
		return nil, netaddr.IPv4(0)
	}}); n != 0 {
		t.Errorf("nil-resolve replay scheduled %d events", n)
	}
}
