package workload

import (
	"math"
	"testing"
	"time"

	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/sim"
)

// spawnRec is one generated flow as seen by a recording Emit hook.
type spawnRec struct {
	at  sim.Time
	key netaddr.FlowKey
	pk  int
}

// scenarioHosts builds n hosts on a fresh engine (no links needed when the
// Emit hook swallows flows before they reach the network).
func scenarioHosts(eng *sim.Engine, n int) []*device.Host {
	hosts := make([]*device.Host, n)
	for i := range hosts {
		hosts[i] = device.NewHost(eng, "h", netaddr.MakeIPv4(10, 9, 0, byte(i+1)), netaddr.MakeMAC(uint32(i+1)))
	}
	return hosts
}

// buildScenario composes the reference three-tenant mix with the tenants
// added in the given order, recording every generated flow per tenant.
func buildScenario(seed int64, order []string) map[string][]spawnRec {
	eng := sim.New(seed)
	hosts := scenarioHosts(eng, 4)
	ems := make([]*Emitter, len(hosts))
	for i, h := range hosts {
		ems[i] = NewEmitter(eng, h, nil)
	}
	dsts := []netaddr.IPv4{hosts[2].IP, hosts[3].IP}
	spoof := netaddr.MustParsePrefix("172.16.0.0/12")

	specs := map[string]TenantSpec{
		"base": {
			Name: "base", Curve: ConstantCurve(200),
			Size:    ParetoSampler{Alpha: 1.2, MinPkts: 1, MaxPkts: 64},
			Sources: ems[:2], Dsts: dsts, PktIval: time.Millisecond,
		},
		"crowd": {
			Name: "crowd",
			Curve: TrapezoidCurve{Base: 0, Peak: 800,
				RampStart: 200 * time.Millisecond, PeakStart: 500 * time.Millisecond,
				PeakEnd: time.Second, RampEnd: 1200 * time.Millisecond},
			Sources: ems[1:2], Dsts: dsts[:1],
		},
		"ddos": {
			Name: "ddos", Curve: ConstantCurve(500),
			Sources: ems[0:1], Dsts: dsts[:1], Spoof: &spoof,
		},
	}

	rec := make(map[string][]spawnRec)
	s := NewScenario(eng, seed)
	s.Emit = func(tenant string, _ *Emitter, f Flow) {
		rec[tenant] = append(rec[tenant], spawnRec{at: eng.Now(), key: f.Key, pk: f.Packets})
	}
	for _, name := range order {
		s.Add(specs[name])
	}
	s.Start()
	eng.RunUntil(1500 * time.Millisecond)
	s.Stop()
	return rec
}

// TestScenarioCompositionOrderIndependent is the regression pinning the
// engine's core property: each tenant owns its randomness and arrival
// accumulator, so the flow sequence it generates — start times, keys,
// sizes — is identical no matter how the scenario is composed around it.
func TestScenarioCompositionOrderIndependent(t *testing.T) {
	a := buildScenario(99, []string{"base", "crowd", "ddos"})
	b := buildScenario(99, []string{"ddos", "base", "crowd"})
	c := buildScenario(99, []string{"crowd", "ddos", "base"})
	for _, other := range []map[string][]spawnRec{b, c} {
		for tenant, want := range a {
			got := other[tenant]
			if len(got) != len(want) {
				t.Fatalf("tenant %s: %d flows vs %d under a different composition order",
					tenant, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("tenant %s flow %d differs across composition orders:\n%+v\n%+v",
						tenant, i, want[i], got[i])
				}
			}
		}
	}
	if len(a["base"]) == 0 || len(a["crowd"]) == 0 || len(a["ddos"]) == 0 {
		t.Fatalf("degenerate run: tenant generated nothing: base=%d crowd=%d ddos=%d",
			len(a["base"]), len(a["crowd"]), len(a["ddos"]))
	}
}

// TestScenarioSameSeedDeterministic: two same-seed runs spawn identical
// sequences; a different seed diverges.
func TestScenarioSameSeedDeterministic(t *testing.T) {
	order := []string{"base", "crowd", "ddos"}
	a := buildScenario(5, order)
	b := buildScenario(5, order)
	for tenant := range a {
		if len(a[tenant]) != len(b[tenant]) {
			t.Fatalf("tenant %s: same seed produced %d vs %d flows", tenant, len(a[tenant]), len(b[tenant]))
		}
		for i := range a[tenant] {
			if a[tenant][i] != b[tenant][i] {
				t.Fatalf("tenant %s flow %d differs across same-seed runs", tenant, i)
			}
		}
	}
	c := buildScenario(6, order)
	identical := true
	for tenant := range a {
		if len(a[tenant]) != len(c[tenant]) {
			identical = false
			break
		}
		for i := range a[tenant] {
			if a[tenant][i] != c[tenant][i] {
				identical = false
				break
			}
		}
	}
	if identical {
		t.Fatal("different seeds produced identical scenarios")
	}
}

// TestScenarioRatesFollowCurves checks each tenant's generated volume
// tracks the integral of its curve (within accumulator rounding).
func TestScenarioRatesFollowCurves(t *testing.T) {
	rec := buildScenario(21, []string{"base", "crowd", "ddos"})
	// base: 200 flows/s over 1.5s = 300; ddos: 500 over 1.5s = 750;
	// crowd: trapezoid integral = 0.3*800/2 + 0.5*800 + 0.2*800/2 = 600.
	wants := map[string]float64{"base": 300, "crowd": 600, "ddos": 750}
	for tenant, want := range wants {
		got := float64(len(rec[tenant]))
		if math.Abs(got-want) > want*0.02+2 {
			t.Errorf("tenant %s generated %v flows, want ~%v", tenant, got, want)
		}
	}
	// The DDoS tenant must spoof: every source distinct, inside its prefix.
	spoof := netaddr.MustParsePrefix("172.16.0.0/12")
	seen := make(map[netaddr.IPv4]bool)
	for _, r := range rec["ddos"] {
		if !spoof.Contains(r.key.Src) {
			t.Fatalf("ddos source %v outside spoof prefix", r.key.Src)
		}
		if seen[r.key.Src] {
			t.Fatalf("ddos source %v reused", r.key.Src)
		}
		seen[r.key.Src] = true
	}
}

// TestScenarioSpecValidation pins the fail-fast contract for bad specs.
func TestScenarioSpecValidation(t *testing.T) {
	eng := sim.New(1)
	hosts := scenarioHosts(eng, 1)
	em := NewEmitter(eng, hosts[0], nil)
	ok := TenantSpec{Name: "t", Curve: ConstantCurve(1),
		Sources: []*Emitter{em}, Dsts: []netaddr.IPv4{hosts[0].IP}}
	bad := []TenantSpec{
		{},
		{Name: "t"},
		{Name: "t", Curve: ConstantCurve(1)},
		{Name: "t", Curve: ConstantCurve(1), Sources: []*Emitter{em}},
	}
	for i, spec := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad spec %d accepted", i)
				}
			}()
			s := NewScenario(eng, 1)
			s.Add(spec)
		}()
	}
	s := NewScenario(eng, 1)
	s.Add(ok)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate tenant accepted")
			}
		}()
		s.Add(ok)
	}()
}

// TestCurveShapes spot-checks every curve implementation.
func TestCurveShapes(t *testing.T) {
	tr := TrapezoidCurve{Base: 10, Peak: 110,
		RampStart: 1 * time.Second, PeakStart: 2 * time.Second,
		PeakEnd: 3 * time.Second, RampEnd: 4 * time.Second}
	cases := []struct {
		at   sim.Time
		want float64
	}{
		{0, 10}, {1500 * time.Millisecond, 60}, {2500 * time.Millisecond, 110},
		{3500 * time.Millisecond, 60}, {5 * time.Second, 10},
	}
	for _, tc := range cases {
		if got := tr.RateAt(tc.at); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("trapezoid at %v = %v, want %v", tc.at, got, tc.want)
		}
	}
	d := DiurnalCurve{Trough: 0, Peak: 100, Period: 24 * time.Hour}
	if got := d.RateAt(6 * time.Hour); math.Abs(got-100) > 1e-9 {
		t.Errorf("diurnal peak = %v, want 100", got)
	}
	if got := d.RateAt(18 * time.Hour); math.Abs(got) > 1e-9 {
		t.Errorf("diurnal trough = %v, want 0", got)
	}
	if got := (DiurnalCurve{Trough: 5, Peak: 9}).RateAt(time.Hour); got != 5 {
		t.Errorf("zero-period diurnal = %v, want trough", got)
	}
	oo := OnOffCurve{Rate: 7, Start: time.Second, End: 2 * time.Second}
	for at, want := range map[sim.Time]float64{
		0: 0, time.Second: 7, 1500 * time.Millisecond: 7, 2 * time.Second: 0} {
		if got := oo.RateAt(at); got != want {
			t.Errorf("on-off at %v = %v, want %v", at, got, want)
		}
	}
}
