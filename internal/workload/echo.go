package workload

import (
	"scotch/internal/capture"
	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

// Responder makes a host answer traffic, turning one-way generators into
// request/response exchanges: every delivered packet triggers one response
// back to its sender (a SYN gets a SYN|ACK, everything else an ACK). The
// response direction is a *new flow* to the network — the case that makes
// bidirectional traffic interesting under control-plane overload.
type Responder struct {
	eng   sim.Proc
	host  *device.Host
	cap   *capture.Capture
	class string

	flows map[netaddr.FlowKey]uint64 // reverse key -> capture flow id
	Sent  uint64

	// RespondTo, when set, limits which sources are answered. A real
	// service answers everything — and thereby amplifies spoofed-source
	// attacks into backscatter (observable by leaving this nil); tests
	// and well-filtered deployments restrict it.
	RespondTo func(src netaddr.IPv4) bool
}

// AttachResponder hooks a responder into the host's receive path, chaining
// any existing observer. Responses are registered with cap under class.
func AttachResponder(eng sim.Proc, h *device.Host, cap *capture.Capture, class string) *Responder {
	r := &Responder{
		eng: eng, host: h, cap: cap, class: class,
		flows: make(map[netaddr.FlowKey]uint64),
	}
	prev := h.OnReceive
	h.OnReceive = func(pkt *packet.Packet, now sim.Time) {
		if prev != nil {
			prev(pkt, now)
		}
		r.respond(pkt)
	}
	return r
}

func (r *Responder) respond(pkt *packet.Packet) {
	if pkt.IP.Src == r.host.IP {
		return // don't answer our own traffic
	}
	if r.RespondTo != nil && !r.RespondTo(pkt.IP.Src) {
		return
	}
	key := pkt.FlowKey().Reverse()
	flags := uint8(packet.FlagACK)
	seq := 1
	if pkt.TCP != nil && pkt.TCP.Flags&packet.FlagSYN != 0 {
		flags = packet.FlagSYN | packet.FlagACK
		seq = 0
	}
	resp := packet.NewTCP(key.Src, key.Dst, key.SrcPort, key.DstPort, flags)
	if r.cap != nil {
		id, ok := r.flows[key]
		if !ok {
			id = r.cap.NewFlow(key, r.class, 1).ID
			r.flows[key] = id
		}
		resp.Meta.FlowID = id
		resp.Meta.Seq = seq
		resp.Meta.SentAt = r.eng.Now()
		r.cap.RecordSend(resp)
	}
	r.Sent++
	r.host.Send(resp)
}
