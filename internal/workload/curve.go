package workload

import (
	"math"
	"time"

	"scotch/internal/sim"
)

// Curve maps virtual time to an instantaneous flow arrival rate
// (flows/second). Curves are pure functions of time, so every tenant's
// load trajectory is reproducible and independent of evaluation order.
type Curve interface {
	RateAt(t sim.Time) float64
}

// ConstantCurve is a flat arrival rate: the baseline tenant.
type ConstantCurve float64

// RateAt returns the constant rate.
func (c ConstantCurve) RateAt(sim.Time) float64 { return float64(c) }

// TrapezoidCurve is the flash-crowd / attack-ramp envelope: Base until
// RampStart, a linear climb to Peak by PeakStart, sustained until PeakEnd,
// then a linear fall back to Base by RampEnd.
type TrapezoidCurve struct {
	Base, Peak                             float64
	RampStart, PeakStart, PeakEnd, RampEnd sim.Time
}

// RateAt returns the envelope's rate at t.
func (c TrapezoidCurve) RateAt(t sim.Time) float64 {
	switch {
	case t < c.RampStart:
		return c.Base
	case t < c.PeakStart:
		frac := float64(t-c.RampStart) / float64(c.PeakStart-c.RampStart)
		return c.Base + frac*(c.Peak-c.Base)
	case t < c.PeakEnd:
		return c.Peak
	case t < c.RampEnd:
		frac := float64(t-c.PeakEnd) / float64(c.RampEnd-c.PeakEnd)
		return c.Peak - frac*(c.Peak-c.Base)
	default:
		return c.Base
	}
}

// DiurnalCurve is a sinusoidal day/night load cycle oscillating between
// Trough and Peak with the given period; Phase (radians) shifts where in
// the cycle t=0 falls (0 starts at the mid-point heading up).
type DiurnalCurve struct {
	Trough, Peak float64
	Period       time.Duration
	Phase        float64
}

// RateAt returns the cycle's rate at t.
func (c DiurnalCurve) RateAt(t sim.Time) float64 {
	if c.Period <= 0 {
		return c.Trough
	}
	s := math.Sin(2*math.Pi*float64(t)/float64(c.Period) + c.Phase)
	return c.Trough + (c.Peak-c.Trough)*(1+s)/2
}

// OnOffCurve gates a rate to a window: Rate inside [Start, End), zero
// outside. Composes a tenant that only exists for part of a scenario.
type OnOffCurve struct {
	Rate       float64
	Start, End sim.Time
}

// RateAt returns Rate inside the window and 0 outside.
func (c OnOffCurve) RateAt(t sim.Time) float64 {
	if t >= c.Start && t < c.End {
		return c.Rate
	}
	return 0
}
