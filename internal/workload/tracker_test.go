package workload

import (
	"strings"
	"testing"
	"time"

	"scotch/internal/capture"
	"scotch/internal/netaddr"
	"scotch/internal/sim"
	"scotch/internal/telemetry"
)

func TestLatencyTrackerPerTenant(t *testing.T) {
	tr := NewLatencyTracker(nil)
	tr.Observe("base", 200*time.Microsecond)
	tr.Observe("base", 300*time.Microsecond)
	tr.Observe("ddos", 2*time.Second)
	if names := tr.TenantNames(); len(names) != 2 || names[0] != "base" || names[1] != "ddos" {
		t.Fatalf("tenants = %v", names)
	}
	if n := tr.Tenant("base").Count(); n != 2 {
		t.Errorf("base count = %d, want 2", n)
	}
	// An unobserved tenant answers quantile queries with an empty histogram.
	if q := tr.Tenant("ghost").Quantile(0.99); q != 0 {
		t.Errorf("ghost p99 = %v, want 0", q)
	}
	// The merged CDF spans all tenants.
	if n := tr.Merged().Count(); n != 3 {
		t.Errorf("merged count = %d, want 3", n)
	}
	if p99 := tr.Merged().Quantile(0.99); p99 < 1 {
		t.Errorf("merged p99 = %v, should reflect the slow ddos flow", p99)
	}
}

// TestLatencyTrackerCaptureHook runs two flows over a live pair and checks
// the capture hook observes each one's first-send→first-delivery interval
// under its class, chaining any pre-installed hook.
func TestLatencyTrackerCaptureHook(t *testing.T) {
	eng := sim.New(1)
	h1, h2 := pair(eng)
	cap := capture.New(eng)
	cap.Attach(h2)
	chained := 0
	cap.OnFirstDelivery = func(*capture.FlowRecord, sim.Time) { chained++ }
	tr := NewLatencyTracker(nil)
	tr.AttachCapture(cap)

	em := NewEmitter(eng, h1, cap)
	for i, class := range []string{"web", "web", "batch"} {
		em.Start(Flow{
			Key: netaddr.FlowKey{Src: h1.IP, Dst: h2.IP, Proto: netaddr.ProtoTCP,
				SrcPort: uint16(1000 + i), DstPort: 80},
			Packets: 3, Interval: time.Millisecond, Class: class,
		})
	}
	eng.RunUntil(time.Second)

	if n := tr.Tenant("web").Count(); n != 2 {
		t.Errorf("web latencies observed = %d, want 2 (one per flow)", n)
	}
	if n := tr.Tenant("batch").Count(); n != 1 {
		t.Errorf("batch latencies observed = %d, want 1", n)
	}
	if chained != 3 {
		t.Errorf("pre-installed hook fired %d times, want 3", chained)
	}
	// Latency on a direct loss-free link is positive and far under a second.
	if p := tr.Merged().Quantile(0.99); p <= 0 || p > 0.1 {
		t.Errorf("p99 = %v, want (0, 0.1]", p)
	}
}

// TestLatencyTrackerTelemetryBinding mirrors observations into a registry
// and checks per-tenant series appear on the Prometheus scrape.
func TestLatencyTrackerTelemetryBinding(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := NewLatencyTracker(nil)
	tr.Bind(reg, "scotch_flow_setup_seconds")
	tr.Observe("base", 500*time.Microsecond)
	tr.Observe("crowd", 5*time.Millisecond)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`scotch_flow_setup_seconds_count{tenant="base"} 1`,
		`scotch_flow_setup_seconds_count{tenant="crowd"} 1`,
		`scotch_flow_setup_seconds_bucket{tenant="base",le="0.00068"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %s:\n%s", want, out)
		}
	}
}
