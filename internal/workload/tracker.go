package workload

import (
	"sort"
	"sync"
	"time"

	"scotch/internal/capture"
	"scotch/internal/metrics"
	"scotch/internal/telemetry"
)

// LatencyTracker accumulates per-tenant flow-setup latencies — the
// Packet-In → RuleApplied → Delivered interval, measured as first packet
// sent to first packet delivered — into fixed-bucket histograms, modeled
// on the tracking histograms of load-test drivers: every flow is one
// Observe, quantiles come from bucket counts, and memory stays constant
// no matter how many flows a scenario generates.
//
// Observe is safe for concurrent use (live telemetry scrapes read while
// the simulation writes); within one single-threaded simulation run the
// resulting histograms are fully deterministic.
type LatencyTracker struct {
	bounds []float64

	mu      sync.Mutex
	tenants map[string]*metrics.BucketHistogram

	reg    *telemetry.Registry
	family string
}

// NewLatencyTracker returns a tracker whose per-tenant histograms use the
// given bucket bounds (nil selects metrics.LatencyBuckets).
func NewLatencyTracker(bounds []float64) *LatencyTracker {
	if bounds == nil {
		bounds = metrics.LatencyBuckets()
	}
	return &LatencyTracker{
		bounds:  bounds,
		tenants: make(map[string]*metrics.BucketHistogram),
	}
}

// Bind mirrors every tenant histogram into the registry as
// family{tenant="name"} series (telemetry fixed-bucket histograms), so a
// live run exposes per-tenant latency distributions on /metrics. Call
// before the run; tenants observed later are bound as they appear.
func (t *LatencyTracker) Bind(reg *telemetry.Registry, family string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reg = reg
	t.family = family
}

// Observe records one flow-setup latency for a tenant.
func (t *LatencyTracker) Observe(tenant string, d time.Duration) {
	t.hist(tenant).ObserveDuration(d)
	t.mu.Lock()
	reg, family := t.reg, t.family
	t.mu.Unlock()
	if reg != nil {
		reg.Histogram(family+telemetry.Labels("tenant", tenant), t.bounds).
			Observe(d.Seconds())
	}
}

// hist returns (creating if needed) a tenant's histogram.
func (t *LatencyTracker) hist(tenant string) *metrics.BucketHistogram {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.tenants[tenant]
	if !ok {
		h = metrics.NewBucketHistogram(t.bounds)
		t.tenants[tenant] = h
	}
	return h
}

// Tenant returns the named tenant's histogram (an empty one for tenants
// never observed, so quantile queries are always safe).
func (t *LatencyTracker) Tenant(tenant string) *metrics.BucketHistogram {
	return t.hist(tenant)
}

// TenantNames returns the observed tenants, sorted.
func (t *LatencyTracker) TenantNames() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.tenants))
	for name := range t.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Merged returns one histogram aggregating every tenant — the scenario's
// overall latency CDF.
func (t *LatencyTracker) Merged() *metrics.BucketHistogram {
	all := metrics.NewBucketHistogram(t.bounds)
	for _, name := range t.TenantNames() {
		// Merge cannot fail: every tenant shares the tracker's bounds.
		_ = all.Merge(t.Tenant(name))
	}
	return all
}

// AttachCapture hooks the tracker into a capture's first-delivery path:
// each flow's setup latency (first send to first delivery) is observed
// under the flow's class, which the scenario engine sets to the tenant
// name. Any previously installed hook is chained.
func (t *LatencyTracker) AttachCapture(c *capture.Capture) {
	prev := c.OnFirstDelivery
	c.OnFirstDelivery = func(f *capture.FlowRecord, now time.Duration) {
		t.Observe(f.Class, now-f.FirstSent)
		if prev != nil {
			prev(f, now)
		}
	}
}
