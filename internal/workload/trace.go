package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/sim"
)

// TraceEvent is one flow of an external trace: when it starts, its
// endpoints, and how many bytes it carries. Tenant is optional ("" means
// the replay's default tenant) and lets one trace file carry a multi-tenant
// mix.
type TraceEvent struct {
	Start  time.Duration
	Src    netaddr.IPv4
	Dst    netaddr.IPv4
	Bytes  int
	Tenant string
}

// maxTraceStart bounds trace timestamps (10^6 seconds ≈ 11 days of virtual
// time): large enough for any simulated run, small enough that the
// nanosecond count stays exactly representable through the text codecs.
const maxTraceStart = 1_000_000 * time.Second

// parseSeconds parses a nonnegative decimal-seconds literal ("12", "1.5",
// "0.000000250") into a Duration using pure integer arithmetic, so encode →
// parse round trips are exact. At most nine fractional digits are allowed
// (nanosecond resolution); exponents, signs, and spaces are not.
func parseSeconds(s string) (time.Duration, error) {
	intPart, fracPart := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart, fracPart = s[:i], s[i+1:]
	}
	if intPart == "" || len(fracPart) > 9 {
		return 0, fmt.Errorf("invalid seconds %q", s)
	}
	var sec int64
	for i := 0; i < len(intPart); i++ {
		c := intPart[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid seconds %q", s)
		}
		sec = sec*10 + int64(c-'0')
		if time.Duration(sec)*time.Second > maxTraceStart {
			return 0, fmt.Errorf("seconds %q beyond the 1e6s trace horizon", s)
		}
	}
	var ns int64
	for i := 0; i < len(fracPart); i++ {
		c := fracPart[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid seconds %q", s)
		}
		ns = ns*10 + int64(c-'0')
	}
	for i := len(fracPart); i < 9; i++ {
		ns *= 10
	}
	d := time.Duration(sec)*time.Second + time.Duration(ns)
	if d > maxTraceStart {
		return 0, fmt.Errorf("seconds %q beyond the 1e6s trace horizon", s)
	}
	return d, nil
}

// formatSeconds renders a Duration as canonical decimal seconds with full
// nanosecond precision, the inverse of parseSeconds.
func formatSeconds(d time.Duration) string {
	return fmt.Sprintf("%d.%09d", d/time.Second, d%time.Second)
}

// validate applies the invariants both codecs share.
func (ev *TraceEvent) validate() error {
	if ev.Start < 0 || ev.Start > maxTraceStart {
		return fmt.Errorf("start %v outside [0, %v]", ev.Start, maxTraceStart)
	}
	if ev.Bytes < 0 {
		return fmt.Errorf("negative bytes %d", ev.Bytes)
	}
	if strings.ContainsAny(ev.Tenant, ",\"\n\r") {
		return fmt.Errorf("tenant %q contains delimiter characters", ev.Tenant)
	}
	return nil
}

// ParseTraceCSV reads the CSV trace format:
//
//	start,src,dst,bytes[,tenant]
//
// start is decimal seconds (≤ 9 fractional digits), src/dst are dotted
// quads, bytes is a nonnegative integer, and the optional fifth column
// names the tenant. Blank lines and lines starting with '#' are skipped.
// A malformed line fails the parse with its line number; the parser never
// panics on hostile input (fuzzed by FuzzTraceCSV).
func ParseTraceCSV(r io.Reader) ([]TraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []TraceEvent
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := parseCSVLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
	}
	return out, nil
}

func parseCSVLine(line string) (TraceEvent, error) {
	fields := strings.Split(line, ",")
	if len(fields) != 4 && len(fields) != 5 {
		return TraceEvent{}, fmt.Errorf("want 4 or 5 fields, got %d", len(fields))
	}
	var ev TraceEvent
	var err error
	if ev.Start, err = parseSeconds(strings.TrimSpace(fields[0])); err != nil {
		return TraceEvent{}, err
	}
	if ev.Src, err = netaddr.ParseIPv4(strings.TrimSpace(fields[1])); err != nil {
		return TraceEvent{}, err
	}
	if ev.Dst, err = netaddr.ParseIPv4(strings.TrimSpace(fields[2])); err != nil {
		return TraceEvent{}, err
	}
	if _, err = fmt.Sscanf(strings.TrimSpace(fields[3]), "%d", &ev.Bytes); err != nil {
		return TraceEvent{}, fmt.Errorf("invalid bytes %q", fields[3])
	}
	if len(fields) == 5 {
		ev.Tenant = strings.TrimSpace(fields[4])
	}
	if err := ev.validate(); err != nil {
		return TraceEvent{}, err
	}
	return ev, nil
}

// WriteTraceCSV writes events in the canonical CSV trace format (the
// tenant column is emitted only for events that have one).
func WriteTraceCSV(w io.Writer, events []TraceEvent) error {
	for i := range events {
		ev := &events[i]
		if err := ev.validate(); err != nil {
			return fmt.Errorf("trace event %d: %w", i, err)
		}
		var err error
		if ev.Tenant != "" {
			_, err = fmt.Fprintf(w, "%s,%v,%v,%d,%s\n",
				formatSeconds(ev.Start), ev.Src, ev.Dst, ev.Bytes, ev.Tenant)
		} else {
			_, err = fmt.Fprintf(w, "%s,%v,%v,%d\n",
				formatSeconds(ev.Start), ev.Src, ev.Dst, ev.Bytes)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// jsonTrace is the JSONL wire form. Start travels as a decimal-seconds
// string so round trips stay exact (JSON numbers are float64).
type jsonTrace struct {
	Start  string `json:"start_s"`
	Src    string `json:"src"`
	Dst    string `json:"dst"`
	Bytes  int    `json:"bytes"`
	Tenant string `json:"tenant,omitempty"`
}

// ParseTraceJSONL reads the JSONL trace format: one object per line,
// {"start_s":"1.500000000","src":"10.0.0.1","dst":"10.0.1.2","bytes":4000,
// "tenant":"web"}. Blank lines are skipped; any malformed line fails the
// parse with its line number.
func ParseTraceJSONL(r io.Reader) ([]TraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []TraceEvent
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var jt jsonTrace
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&jt); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("trace line %d: trailing data after object", lineNo)
		}
		var ev TraceEvent
		var err error
		if ev.Start, err = parseSeconds(jt.Start); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		if ev.Src, err = netaddr.ParseIPv4(jt.Src); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		if ev.Dst, err = netaddr.ParseIPv4(jt.Dst); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		ev.Bytes = jt.Bytes
		ev.Tenant = jt.Tenant
		if err := ev.validate(); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
	}
	return out, nil
}

// WriteTraceJSONL writes events in the canonical JSONL trace format.
func WriteTraceJSONL(w io.Writer, events []TraceEvent) error {
	enc := json.NewEncoder(w)
	for i := range events {
		ev := &events[i]
		if err := ev.validate(); err != nil {
			return fmt.Errorf("trace event %d: %w", i, err)
		}
		jt := jsonTrace{
			Start:  formatSeconds(ev.Start),
			Src:    ev.Src.String(),
			Dst:    ev.Dst.String(),
			Bytes:  ev.Bytes,
			Tenant: ev.Tenant,
		}
		if err := enc.Encode(&jt); err != nil {
			return err
		}
	}
	return nil
}

// ParseTrace dispatches on a file name's extension: ".jsonl" (or ".json")
// selects JSONL, anything else the CSV format.
func ParseTrace(name string, r io.Reader) ([]TraceEvent, error) {
	if strings.HasSuffix(name, ".jsonl") || strings.HasSuffix(name, ".json") {
		return ParseTraceJSONL(r)
	}
	return ParseTraceCSV(r)
}

// ReplayConfig shapes how trace events become simulated flows.
type ReplayConfig struct {
	// MSS converts bytes to packets: ceil(bytes/MSS), minimum one packet
	// (default 1000, matching TraceGen's packet size).
	MSS int
	// PktIval spaces a replayed flow's packets (default 2ms).
	PktIval time.Duration
	// DefaultTenant labels events with no tenant column (default "replay").
	DefaultTenant string
	// Resolve maps an event to the emitter that will launch it and the
	// concrete destination address to use. Required: traces come from
	// foreign networks, and the mapping onto simulated hosts is the
	// experiment's choice (e.g. hashing endpoints onto its host set).
	Resolve func(ev TraceEvent) (*Emitter, netaddr.IPv4)
}

// Replay schedules every trace event at its start time. The trace's source
// address is kept in the flow key (a spoofed-source replay, like the DDoS
// generator), so flow identity follows the trace even when many trace
// endpoints map onto one simulated host. Returns the number of scheduled
// events. Events the resolver rejects (nil emitter) are skipped.
func Replay(eng sim.Proc, events []TraceEvent, cfg ReplayConfig) int {
	if cfg.MSS <= 0 {
		cfg.MSS = 1000
	}
	if cfg.PktIval == 0 {
		cfg.PktIval = 2 * time.Millisecond
	}
	if cfg.DefaultTenant == "" {
		cfg.DefaultTenant = "replay"
	}
	if cfg.Resolve == nil {
		panic("workload: Replay needs a Resolve mapping")
	}
	scheduled := 0
	for i, ev := range events {
		em, dst := cfg.Resolve(ev)
		if em == nil {
			continue
		}
		tenant := ev.Tenant
		if tenant == "" {
			tenant = cfg.DefaultTenant
		}
		pkts := (ev.Bytes + cfg.MSS - 1) / cfg.MSS
		if pkts < 1 {
			pkts = 1
		}
		f := Flow{
			Key: netaddr.FlowKey{Src: ev.Src, Dst: dst, Proto: netaddr.ProtoTCP,
				SrcPort: uint16(1024 + i%60000), DstPort: 80},
			Packets:  pkts,
			Interval: cfg.PktIval,
			Size:     cfg.MSS,
			Class:    tenant,
		}
		delay := ev.Start - eng.Now()
		if delay < 0 {
			delay = 0
		}
		eng.Schedule(delay, func() { em.Start(f) })
		scheduled++
	}
	return scheduled
}
