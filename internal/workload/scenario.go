package workload

import (
	"fmt"
	"time"

	"math/rand"

	"scotch/internal/netaddr"
	"scotch/internal/sim"
)

// TenantSpec describes one tenant of a composed scenario: who sends, to
// whom, how often (a Curve), and how much (a SizeSampler). Tenants label
// every flow they start with their name, so captures and latency trackers
// report per-tenant results.
type TenantSpec struct {
	Name  string
	Curve Curve
	// Size draws each flow's packet count; nil means single-packet flows.
	Size SizeSampler
	// PktIval spaces a flow's packets; zero emits them back to back.
	PktIval time.Duration
	// PktSize is the bytes-on-wire per packet (default 64).
	PktSize int
	// Sources are the emitters flows are launched from, chosen per flow by
	// the tenant's private generator.
	Sources []*Emitter
	// Dsts are the candidate destinations, chosen per flow; a draw equal
	// to the flow's source address is skipped to the next candidate.
	Dsts []netaddr.IPv4
	// DstPort is the flows' destination port (default 80).
	DstPort uint16
	// Spoof, when non-nil, makes the tenant a DDoS source: every flow's
	// source address is the next step of a walk through the prefix (each
	// packet a brand-new flow to the fabric), launched from a Source host
	// picked as usual.
	Spoof *netaddr.Prefix
}

// Scenario composes tenants into one deterministic workload. Each tenant
// owns a private rand.Rand seeded from (scenario seed, tenant name) and a
// private arrival accumulator, so the flow sequence a tenant generates —
// start times, sources, destinations, sizes — is a pure function of the
// scenario seed and its own spec. Adding, removing, or reordering other
// tenants cannot change it (the order-independence property pinned by
// TestScenarioCompositionOrderIndependent).
type Scenario struct {
	Eng  sim.Proc
	Seed int64
	// Tick is the arrival-accumulator resolution (default 1ms).
	Tick time.Duration
	// Emit launches one generated flow; the default is (*Emitter).Start.
	// Tests substitute a recorder to observe the generated sequence.
	Emit func(tenant string, em *Emitter, f Flow)

	tenants []*tenantRun
	started bool
}

// tenantRun is one tenant's live generation state.
type tenantRun struct {
	s    *Scenario
	spec TenantSpec
	rng  *rand.Rand
	acc  float64
	last sim.Time
	n    uint64
	tick *sim.Ticker
}

// NewScenario returns an empty scenario on the engine with the given seed.
func NewScenario(eng sim.Proc, seed int64) *Scenario {
	return &Scenario{Eng: eng, Seed: seed}
}

// tenantSeed derives a tenant's private RNG seed from the scenario seed and
// the tenant name (FNV-1a), so renaming or reseeding changes the sequence
// but composition order does not.
func tenantSeed(seed int64, name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return seed ^ int64(h)
}

// Add registers a tenant. It panics on a duplicate or empty name, a nil
// curve, or a spec with no sources or destinations — a scenario with a
// silent tenant is a configuration bug, not a valid run.
func (s *Scenario) Add(spec TenantSpec) {
	if spec.Name == "" {
		panic("workload: tenant with empty name")
	}
	for _, tr := range s.tenants {
		if tr.spec.Name == spec.Name {
			panic(fmt.Sprintf("workload: duplicate tenant %q", spec.Name))
		}
	}
	if spec.Curve == nil {
		panic(fmt.Sprintf("workload: tenant %q has no curve", spec.Name))
	}
	if len(spec.Sources) == 0 || len(spec.Dsts) == 0 {
		panic(fmt.Sprintf("workload: tenant %q has no sources or destinations", spec.Name))
	}
	if spec.PktSize == 0 {
		spec.PktSize = 64
	}
	if spec.DstPort == 0 {
		spec.DstPort = 80
	}
	s.tenants = append(s.tenants, &tenantRun{
		s:    s,
		spec: spec,
		rng:  rand.New(rand.NewSource(tenantSeed(s.Seed, spec.Name))),
	})
}

// Tenants returns the registered tenant names in composition order.
func (s *Scenario) Tenants() []string {
	out := make([]string, len(s.tenants))
	for i, tr := range s.tenants {
		out[i] = tr.spec.Name
	}
	return out
}

// Start begins every tenant's arrival process.
func (s *Scenario) Start() {
	if s.started {
		panic("workload: scenario started twice")
	}
	s.started = true
	if s.Tick == 0 {
		s.Tick = time.Millisecond
	}
	if s.Emit == nil {
		s.Emit = func(_ string, em *Emitter, f Flow) { em.Start(f) }
	}
	for _, tr := range s.tenants {
		tr := tr
		tr.last = s.Eng.Now()
		tr.tick = s.Eng.Every(s.Tick, tr.step)
	}
}

// Stop halts every tenant's arrival process.
func (s *Scenario) Stop() {
	for _, tr := range s.tenants {
		if tr.tick != nil {
			tr.tick.Stop()
		}
	}
}

// step integrates the tenant's rate curve with a fractional accumulator
// (the FlashCrowd scheme): arrivals are deterministic in virtual time, and
// sub-tick rate changes integrate exactly rather than aliasing.
func (tr *tenantRun) step() {
	now := tr.s.Eng.Now()
	tr.acc += tr.spec.Curve.RateAt(now) * (now - tr.last).Seconds()
	tr.last = now
	for tr.acc >= 1 {
		tr.acc--
		tr.spawn()
	}
}

// spawn generates one flow from the tenant's private randomness.
func (tr *tenantRun) spawn() {
	spec := &tr.spec
	rng := tr.rng
	tr.n++
	em := spec.Sources[rng.Intn(len(spec.Sources))]
	src := em.Host.IP
	if spec.Spoof != nil {
		src = spec.Spoof.Addr(tr.n)
	}
	dst := spec.Dsts[rng.Intn(len(spec.Dsts))]
	if dst == src {
		dst = spec.Dsts[(rng.Intn(len(spec.Dsts))+1)%len(spec.Dsts)]
	}
	pkts := 1
	if spec.Size != nil {
		pkts = spec.Size.SamplePackets(rng)
	}
	tr.s.Emit(spec.Name, em, Flow{
		Key: netaddr.FlowKey{Src: src, Dst: dst, Proto: netaddr.ProtoTCP,
			SrcPort: uint16(1024 + tr.n%60000), DstPort: spec.DstPort},
		Packets:  pkts,
		Interval: spec.PktIval,
		Size:     spec.PktSize,
		Class:    spec.Name,
	})
}

// Generated returns how many flows the named tenant has spawned so far.
func (s *Scenario) Generated(tenant string) uint64 {
	for _, tr := range s.tenants {
		if tr.spec.Name == tenant {
			return tr.n
		}
	}
	return 0
}
