package workload

import (
	"math"
	"math/rand"
)

// SizeSampler draws flow sizes in packets. Samplers are pure distributions:
// all randomness comes from the rand.Rand the caller passes, so a tenant
// that owns its generator replays the identical size sequence for the same
// seed, independent of what any other tenant draws.
type SizeSampler interface {
	SamplePackets(rng *rand.Rand) int
}

// ParetoSampler draws bounded-Pareto flow sizes: the heavy-tailed
// "elephants and mice" distribution of data-center measurement studies
// (most flows are tiny, most bytes sit in a few huge flows). Alpha is the
// tail exponent; 1.2 matches typical DC traces.
type ParetoSampler struct {
	Alpha   float64
	MinPkts int
	MaxPkts int
}

// SamplePackets draws one flow size.
func (p ParetoSampler) SamplePackets(rng *rand.Rand) int {
	return ParetoSize(rng.Float64(), p.Alpha, p.MinPkts, p.MaxPkts)
}

// Mean returns the analytic mean of the unbounded Pareto truncated at
// MaxPkts — the reference value the sampler property tests check the
// empirical mean against. Valid for Alpha != 1.
func (p ParetoSampler) Mean() float64 {
	a := p.Alpha
	xm := float64(p.MinPkts)
	xc := float64(p.MaxPkts)
	if a == 1 {
		return xm * (1 + math.Log(xc/xm))
	}
	// E[min(X, xc)] for X ~ Pareto(xm, a): integrate the tail.
	return xm*a/(a-1) - math.Pow(xm/xc, a)*xc/(a-1)
}

// LognormalSampler draws lognormal flow sizes (packets): the body-heavy
// alternative to Pareto used by several trace studies. Mu and Sigma are
// the mean and standard deviation of the underlying normal (i.e. of
// ln(size)). Samples are clamped to [MinPkts, MaxPkts].
type LognormalSampler struct {
	Mu      float64
	Sigma   float64
	MinPkts int
	MaxPkts int
}

// SamplePackets draws one flow size.
func (l LognormalSampler) SamplePackets(rng *rand.Rand) int {
	v := math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
	if v < float64(l.MinPkts) {
		return l.MinPkts
	}
	if v > float64(l.MaxPkts) {
		return l.MaxPkts
	}
	return int(v)
}

// FixedSampler always returns the same size; Pkts < 1 is treated as 1
// (single-packet flows, e.g. a spoofed DDoS source).
type FixedSampler struct{ Pkts int }

// SamplePackets returns the fixed size.
func (f FixedSampler) SamplePackets(*rand.Rand) int {
	if f.Pkts < 1 {
		return 1
	}
	return f.Pkts
}
