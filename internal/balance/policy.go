package balance

import (
	"fmt"
	"time"

	"scotch/internal/sim"
)

// Action enumerates the balancer's actuations.
type Action int

// The five actuations plus ActionNone. Scale-up actions appear in
// escalation-ladder order: growing the overlay pool is cheaper than
// migrating a pod, which is cheaper than spawning a replica.
const (
	ActionNone Action = iota
	ActionGrowPool
	ActionMigrate
	ActionSpawnReplica
	ActionDrainPool
	ActionRetireReplica
)

// String names the action for logs, marks and metric labels.
func (a Action) String() string {
	switch a {
	case ActionGrowPool:
		return "grow-pool"
	case ActionMigrate:
		return "migrate"
	case ActionSpawnReplica:
		return "spawn-replica"
	case ActionDrainPool:
		return "drain-pool"
	case ActionRetireReplica:
		return "retire-replica"
	default:
		return "none"
	}
}

// Config tunes the joint balancer's multi-threshold policy. Each action
// class has its own threshold band, hysteresis requirement, bound, and
// cooldown; the scale-up ladder is ordered cheapest-remedy-first and the
// scale-down ladder only runs when no SLO is burning.
type Config struct {
	// Interval is the spacing of policy ticks on the simulation clock.
	Interval time.Duration

	// PoolGrowLoad / PoolDrainLoad bound the pool hysteresis band (same
	// unit as the view's elastic "load" series). PoolUpChecks and
	// PoolDownChecks are the consecutive-tick streaks required before
	// acting; MinPool/MaxPool bound the size; PoolCooldown spaces pool
	// resizes. These mirror elastic.Config so a joint balancer drops in
	// for the standalone autoscaler without re-tuning.
	PoolGrowLoad   float64
	PoolDrainLoad  float64
	PoolUpChecks   int
	PoolDownChecks int
	MinPool        int
	MaxPool        int
	PoolCooldown   time.Duration

	// MigrateImbalance triggers a pod migration when the hottest alive
	// replica's load exceeds this multiple of the coolest's, provided the
	// hottest is above MigrateMinLoad in absolute terms (idle clusters
	// don't churn). MigrateCooldown spaces migrations.
	MigrateImbalance float64
	MigrateMinLoad   float64
	MigrateCooldown  time.Duration

	// SpawnBurn is the SLO long-window burn rate at or above which (with
	// a burning verdict) replica spawn becomes eligible — burn is the
	// escalation signal that cheaper remedies are not enough. A spawn
	// additionally requires every alive replica's load to be at least
	// ReplicaHotLoad: if some replica is cool, migration can still
	// rebalance and new capacity would be wasted.
	SpawnBurn      float64
	ReplicaHotLoad float64
	// ReplicaIdleLoad is the per-replica load at or below which — with
	// every SLO healthy — the coolest replica becomes eligible for
	// retirement. MinReplicas/MaxReplicas bound the replica count;
	// ReplicaCooldown spaces spawns and retirements.
	ReplicaIdleLoad float64
	MinReplicas     int
	MaxReplicas     int
	ReplicaCooldown time.Duration

	// Advise, when true, runs the balancer dry: decisions are logged,
	// counted and trace-marked but never actuated. Cooldowns and streak
	// resets still apply, so the advice stream reads like the action
	// stream would. scotchsim's -balance flag uses this to advise on any
	// experiment without perturbing its output.
	Advise bool
}

// DefaultConfig returns calibrated defaults: the pool band mirrors
// elastic.DefaultConfig, the migration band mirrors
// cluster.DefaultConfig, and the replica band escalates at a burn rate
// of 2 (the error budget burning twice as fast as it accrues).
func DefaultConfig() Config {
	return Config{
		Interval:       500 * time.Millisecond,
		PoolGrowLoad:   150,
		PoolDrainLoad:  30,
		PoolUpChecks:   2,
		PoolDownChecks: 3,
		MinPool:        1,
		MaxPool:        4,
		PoolCooldown:   1500 * time.Millisecond,

		MigrateImbalance: 2,
		MigrateMinLoad:   50,
		MigrateCooldown:  time.Second,

		SpawnBurn:       2,
		ReplicaHotLoad:  300,
		ReplicaIdleLoad: 50,
		MinReplicas:     1,
		MaxReplicas:     4,
		ReplicaCooldown: 2 * time.Second,
	}
}

func (cfg Config) validate() {
	if cfg.Interval <= 0 {
		panic("balance: non-positive Interval")
	}
	if cfg.PoolDrainLoad >= cfg.PoolGrowLoad {
		panic("balance: PoolDrainLoad must be below PoolGrowLoad")
	}
	if cfg.PoolUpChecks < 1 || cfg.PoolDownChecks < 1 {
		panic("balance: PoolUpChecks and PoolDownChecks must be at least 1")
	}
	if cfg.MinPool < 1 || cfg.MaxPool < cfg.MinPool {
		panic("balance: need 1 <= MinPool <= MaxPool")
	}
	if cfg.MigrateImbalance < 1 {
		panic("balance: MigrateImbalance must be at least 1")
	}
	if cfg.MinReplicas < 1 || cfg.MaxReplicas < cfg.MinReplicas {
		panic("balance: need 1 <= MinReplicas <= MaxReplicas")
	}
	if cfg.ReplicaIdleLoad >= cfg.ReplicaHotLoad {
		panic("balance: ReplicaIdleLoad must be below ReplicaHotLoad")
	}
}

// Decision is one tick's chosen action.
type Decision struct {
	Action Action
	// From and To are the source and target replica IDs of an
	// ActionMigrate; Retire is the replica of an ActionRetireReplica.
	From, To int
	Retire   int
	// Reason explains the triggering signal in operator terms.
	Reason string
}

// Suppression records an action whose signal fired but which was held
// back, and why: "cooldown", "bounds: ...", "no-actuator", or an
// actuator failure. Suppressions are how the escalation ladder falls
// through — a rung in cooldown does not block the rungs below it.
type Suppression struct {
	Action Action
	Reason string
}

// state is the policy's memory between ticks: hysteresis streaks and
// per-action-class cooldown clocks.
type state struct {
	poolUp, poolDown int

	poolActed, migActed, repActed bool
	lastPool, lastMig, lastRep    sim.Time
}

func ready(acted bool, last sim.Time, cd time.Duration, now sim.Time) bool {
	return !acted || now-last >= sim.Time(cd)
}

func (st *state) notePool(now sim.Time) {
	st.poolActed, st.lastPool = true, now
	st.poolUp, st.poolDown = 0, 0
}
func (st *state) noteMigrate(now sim.Time) { st.migActed, st.lastMig = true, now }
func (st *state) noteReplica(now sim.Time) { st.repActed, st.lastRep = true, now }

// decide is one pure policy evaluation: given the config, the mutable
// tick state (streaks only — cooldown commits happen in the balancer
// after the action is applied), the extracted signals and the current
// time, it returns at most one Decision plus the suppressions of every
// higher-priority rung whose signal fired but was held back.
func decide(cfg Config, st *state, sig Signals, now sim.Time) (Decision, []Suppression) {
	var sups []Suppression

	// Pool hysteresis streaks advance every tick the signal is in band.
	if sig.HasPool {
		if sig.PoolLoad >= cfg.PoolGrowLoad {
			st.poolUp++
		} else {
			st.poolUp = 0
		}
		if sig.PoolLoad <= cfg.PoolDrainLoad {
			st.poolDown++
		} else {
			st.poolDown = 0
		}
	} else {
		st.poolUp, st.poolDown = 0, 0
	}

	alive := make([]ReplicaSignal, 0, len(sig.Replicas))
	for _, r := range sig.Replicas {
		if r.Alive {
			alive = append(alive, r)
		}
	}

	// --- Scale-up ladder: cheapest remedy first. A suppressed rung
	// falls through so independent pressure lower down still acts.

	// Rung 1: grow the overlay pool.
	if sig.HasPool && st.poolUp >= cfg.PoolUpChecks {
		switch {
		case sig.PoolSize >= cfg.MaxPool:
			sups = append(sups, Suppression{ActionGrowPool, "bounds: pool at max"})
		case !ready(st.poolActed, st.lastPool, cfg.PoolCooldown, now):
			sups = append(sups, Suppression{ActionGrowPool, "cooldown"})
		default:
			return Decision{
				Action: ActionGrowPool,
				Reason: fmt.Sprintf("pool load %.0f >= %.0f for %d checks at size %d",
					sig.PoolLoad, cfg.PoolGrowLoad, st.poolUp, sig.PoolSize),
			}, sups
		}
	}

	// Rung 2: migrate a pod off the hottest replica. Ties break toward
	// the lowest replica ID (strict comparisons over ID-ordered input).
	if len(alive) >= 2 {
		hot, cold := alive[0], alive[0]
		for _, r := range alive[1:] {
			if r.Load > hot.Load {
				hot = r
			}
			if r.Load < cold.Load {
				cold = r
			}
		}
		if hot.ID != cold.ID && hot.Load >= cfg.MigrateMinLoad && hot.Load > cfg.MigrateImbalance*cold.Load {
			if !ready(st.migActed, st.lastMig, cfg.MigrateCooldown, now) {
				sups = append(sups, Suppression{ActionMigrate, "cooldown"})
			} else {
				return Decision{
					Action: ActionMigrate,
					From:   hot.ID,
					To:     cold.ID,
					Reason: fmt.Sprintf("replica%d load %.0f > %.1fx replica%d load %.0f",
						hot.ID, hot.Load, cfg.MigrateImbalance, cold.ID, cold.Load),
				}, sups
			}
		}
	}

	// Rung 3: spawn a replica — the escalation rung. Requires the SLO
	// burn signal (cheaper remedies demonstrably not enough) and every
	// alive replica hot (otherwise migration can still rebalance).
	if sig.Burning && sig.MaxBurn >= cfg.SpawnBurn && len(alive) > 0 && allAtLeast(alive, cfg.ReplicaHotLoad) {
		switch {
		case len(alive) >= cfg.MaxReplicas:
			sups = append(sups, Suppression{ActionSpawnReplica, "bounds: replicas at max"})
		case !ready(st.repActed, st.lastRep, cfg.ReplicaCooldown, now):
			sups = append(sups, Suppression{ActionSpawnReplica, "cooldown"})
		default:
			return Decision{
				Action: ActionSpawnReplica,
				Reason: fmt.Sprintf("%s burn %.1f >= %.1f with all %d replicas >= %.0f",
					sig.BurnSLO, sig.MaxBurn, cfg.SpawnBurn, len(alive), cfg.ReplicaHotLoad),
			}, sups
		}
	}

	// --- Scale-down ladder: only when nothing is burning. Shedding
	// capacity during an SLO breach can only make it worse.
	if sig.Burning {
		return Decision{}, sups
	}

	if sig.HasPool && st.poolDown >= cfg.PoolDownChecks && sig.PoolSize > cfg.MinPool {
		if !ready(st.poolActed, st.lastPool, cfg.PoolCooldown, now) {
			sups = append(sups, Suppression{ActionDrainPool, "cooldown"})
		} else {
			return Decision{
				Action: ActionDrainPool,
				Reason: fmt.Sprintf("pool load %.0f <= %.0f for %d checks at size %d",
					sig.PoolLoad, cfg.PoolDrainLoad, st.poolDown, sig.PoolSize),
			}, sups
		}
	}

	if len(alive) > cfg.MinReplicas && allAtMost(alive, cfg.ReplicaIdleLoad) {
		cold := alive[0]
		for _, r := range alive[1:] {
			if r.Load < cold.Load {
				cold = r
			}
		}
		if !ready(st.repActed, st.lastRep, cfg.ReplicaCooldown, now) {
			sups = append(sups, Suppression{ActionRetireReplica, "cooldown"})
		} else {
			return Decision{
				Action: ActionRetireReplica,
				Retire: cold.ID,
				Reason: fmt.Sprintf("all %d replicas idle (<= %.0f); retiring coldest replica%d (load %.0f)",
					len(alive), cfg.ReplicaIdleLoad, cold.ID, cold.Load),
			}, sups
		}
	}

	return Decision{}, sups
}

func allAtLeast(rs []ReplicaSignal, min float64) bool {
	for _, r := range rs {
		if r.Load < min {
			return false
		}
	}
	return true
}

func allAtMost(rs []ReplicaSignal, max float64) bool {
	for _, r := range rs {
		if r.Load > max {
			return false
		}
	}
	return true
}
