package balance

import (
	"sort"
	"strconv"
	"strings"

	"scotch/internal/obs"
	"scotch/internal/sim"
)

// ReplicaSignal is one controller replica's state as read from a
// ClusterView: the coordinator's scalar load (Packet-In rate + queue
// depth) and liveness.
type ReplicaSignal struct {
	ID    int
	Load  float64
	Alive bool
}

// Signals is the balancer's digested input: the handful of scalars one
// policy tick needs, extracted from a ClusterView snapshot. Keeping the
// extraction separate from the policy makes decide() a pure function
// that unit tests can drive exhaustively.
type Signals struct {
	// At is the snapshot's newest sample time.
	At sim.Time
	// HasPool reports whether the view carried an "elastic" component
	// with a pool_size series (i.e. a vSwitch pool is being observed).
	HasPool  bool
	PoolSize int
	// PoolLoad is the pool's scalar load signal (the "load" series of
	// the elastic component — overlay-routed flows/s per member when
	// wired via elastic.OverlayRate).
	PoolLoad float64
	// Replicas holds per-replica signals in replica-ID order.
	Replicas []ReplicaSignal
	// Burning is true when any SLO verdict in the view is burning.
	// MaxBurn and BurnSLO identify the worst long-window burn rate
	// across all SLOs, burning or not.
	Burning bool
	MaxBurn float64
	BurnSLO string
}

// ExtractSignals digests a ClusterView into policy inputs. It relies on
// the observatory's Watch* naming conventions: WatchPool registers
// component "elastic" with series "pool_size" and "load", and
// WatchCoordinator registers one component "replica<ID>" per replica
// with series "load" and "alive". A nil view yields zero signals.
func ExtractSignals(v *obs.ClusterView) Signals {
	var sig Signals
	if v == nil {
		return sig
	}
	sig.At = v.At
	for i := range v.Components {
		c := &v.Components[i]
		if c.Name == "elastic" {
			if ps, ok := c.Last("pool_size"); ok {
				sig.HasPool = true
				sig.PoolSize = int(ps)
			}
			if l, ok := c.Last("load"); ok {
				sig.PoolLoad = l
			}
			continue
		}
		if id, ok := replicaID(c.Name); ok {
			rs := ReplicaSignal{ID: id, Alive: true}
			if l, ok := c.Last("load"); ok {
				rs.Load = l
			}
			if a, ok := c.Last("alive"); ok {
				rs.Alive = a > 0
			}
			sig.Replicas = append(sig.Replicas, rs)
		}
	}
	// Components are sorted lexically ("replica10" < "replica2");
	// policy tie-breaks want numeric replica order.
	sort.Slice(sig.Replicas, func(i, j int) bool { return sig.Replicas[i].ID < sig.Replicas[j].ID })
	for _, s := range v.SLOs {
		if s.Verdict == obs.Burning {
			sig.Burning = true
		}
		if s.BurnLong > sig.MaxBurn {
			sig.MaxBurn = s.BurnLong
			sig.BurnSLO = s.Name
		}
	}
	return sig
}

// replicaID parses the observatory's "replica<ID>" component naming.
func replicaID(name string) (int, bool) {
	const prefix = "replica"
	if !strings.HasPrefix(name, prefix) || len(name) == len(prefix) {
		return 0, false
	}
	id, err := strconv.Atoi(name[len(prefix):])
	if err != nil || id < 0 {
		return 0, false
	}
	return id, true
}
