package balance

import (
	"testing"
	"time"

	"scotch/internal/sim"
)

// testCfg is a compact policy config for exercising every band: small
// streaks and cooldowns so tests stay readable.
func testCfg() Config {
	return Config{
		Interval:       100 * time.Millisecond,
		PoolGrowLoad:   100,
		PoolDrainLoad:  20,
		PoolUpChecks:   2,
		PoolDownChecks: 3,
		MinPool:        1,
		MaxPool:        3,
		PoolCooldown:   250 * time.Millisecond,

		MigrateImbalance: 2,
		MigrateMinLoad:   50,
		MigrateCooldown:  200 * time.Millisecond,

		SpawnBurn:       2,
		ReplicaHotLoad:  300,
		ReplicaIdleLoad: 10,
		MinReplicas:     1,
		MaxReplicas:     3,
		ReplicaCooldown: 400 * time.Millisecond,
	}
}

func poolSig(load float64, size int) Signals {
	return Signals{HasPool: true, PoolLoad: load, PoolSize: size}
}

func replicas(loads ...float64) []ReplicaSignal {
	rs := make([]ReplicaSignal, len(loads))
	for i, l := range loads {
		rs[i] = ReplicaSignal{ID: i, Load: l, Alive: true}
	}
	return rs
}

func hasSup(sups []Suppression, a Action, reason string) bool {
	for _, s := range sups {
		if s.Action == a && s.Reason == reason {
			return true
		}
	}
	return false
}

// ms converts milliseconds into a sim timestamp; testCfg cooldowns are
// millisecond-scale.
func ms(n int) sim.Time { return sim.Time(time.Duration(n) * time.Millisecond) }

func TestPoolGrowRequiresStreak(t *testing.T) {
	cfg := testCfg()
	var st state
	d, _ := decide(cfg, &st, poolSig(150, 1), ms(0))
	if d.Action != ActionNone {
		t.Fatalf("grew after one hot tick: %+v", d)
	}
	d, _ = decide(cfg, &st, poolSig(150, 1), ms(100))
	if d.Action != ActionGrowPool {
		t.Fatalf("tick 2 = %+v, want grow", d)
	}
}

func TestPoolDeadBandHolds(t *testing.T) {
	cfg := testCfg()
	var st state
	// Between drain (20) and grow (100): neither streak ever advances.
	for i := 0; i < 10; i++ {
		d, sups := decide(cfg, &st, poolSig(60, 2), ms(i*100))
		if d.Action != ActionNone || len(sups) != 0 {
			t.Fatalf("dead-band tick %d acted: %+v %v", i, d, sups)
		}
	}
}

func TestPoolBrokenStreakResets(t *testing.T) {
	cfg := testCfg()
	var st state
	decide(cfg, &st, poolSig(150, 1), ms(0))
	decide(cfg, &st, poolSig(60, 1), ms(100)) // breaks the streak
	d, _ := decide(cfg, &st, poolSig(150, 1), ms(200))
	if d.Action != ActionNone {
		t.Fatalf("grew with a broken streak: %+v", d)
	}
}

func TestPoolDrainRequiresStreakAndFloor(t *testing.T) {
	cfg := testCfg()
	var st state
	for i := 0; i < 2; i++ {
		if d, _ := decide(cfg, &st, poolSig(5, 2), ms(i*100)); d.Action != ActionNone {
			t.Fatalf("drained before DownChecks: %+v", d)
		}
	}
	d, _ := decide(cfg, &st, poolSig(5, 2), ms(200))
	if d.Action != ActionDrainPool {
		t.Fatalf("tick 3 = %+v, want drain", d)
	}
	// At the floor the drain desire is steady state, not a suppression.
	st = state{}
	for i := 0; i < 5; i++ {
		d, sups := decide(cfg, &st, poolSig(5, cfg.MinPool), ms(i*100))
		if d.Action != ActionNone || len(sups) != 0 {
			t.Fatalf("acted at MinPool: %+v %v", d, sups)
		}
	}
}

func TestPoolGrowBoundsSuppression(t *testing.T) {
	cfg := testCfg()
	var st state
	decide(cfg, &st, poolSig(150, cfg.MaxPool), ms(0))
	d, sups := decide(cfg, &st, poolSig(150, cfg.MaxPool), ms(100))
	if d.Action != ActionNone {
		t.Fatalf("grew past MaxPool: %+v", d)
	}
	if !hasSup(sups, ActionGrowPool, "bounds: pool at max") {
		t.Fatalf("no bounds suppression: %v", sups)
	}
}

func TestMigrateThresholdBand(t *testing.T) {
	cfg := testCfg()
	cases := []struct {
		name  string
		loads []float64
		want  Action
	}{
		{"hot enough and imbalanced", []float64{300, 50}, ActionMigrate},
		{"imbalanced but under MinLoad", []float64{40, 0}, ActionNone},
		{"hot but balanced (exactly at factor)", []float64{100, 50}, ActionNone},
		{"single replica", []float64{500}, ActionNone},
	}
	for _, c := range cases {
		var st state
		d, _ := decide(cfg, &st, Signals{Replicas: replicas(c.loads...)}, ms(0))
		if d.Action != c.want {
			t.Errorf("%s: got %v, want %v", c.name, d.Action, c.want)
		}
		if c.want == ActionMigrate && (d.From != 0 || d.To != 1) {
			t.Errorf("%s: migrate %d->%d, want 0->1", c.name, d.From, d.To)
		}
	}
}

func TestMigrateSkipsDeadReplicas(t *testing.T) {
	cfg := testCfg()
	rs := replicas(300, 0, 100)
	rs[1].Alive = false // the coolest replica is dead: next coolest is 2
	var st state
	d, _ := decide(cfg, &st, Signals{Replicas: rs}, ms(0))
	if d.Action != ActionMigrate || d.From != 0 || d.To != 2 {
		t.Fatalf("got %+v, want migrate 0->2", d)
	}
}

func TestMigrateTieBreaksToLowestID(t *testing.T) {
	cfg := testCfg()
	var st state
	d, _ := decide(cfg, &st, Signals{Replicas: replicas(300, 10, 300, 10)}, ms(0))
	if d.Action != ActionMigrate || d.From != 0 || d.To != 1 {
		t.Fatalf("got %+v, want migrate 0->1 (lowest ids win ties)", d)
	}
}

func TestSpawnRequiresBurnAndAllHot(t *testing.T) {
	cfg := testCfg()
	cases := []struct {
		name string
		sig  Signals
		want Action
	}{
		{"burning and all hot", Signals{Replicas: replicas(400, 400), Burning: true, MaxBurn: 3}, ActionSpawnReplica},
		{"burn under threshold", Signals{Replicas: replicas(400, 400), Burning: true, MaxBurn: 1.5}, ActionNone},
		{"not burning", Signals{Replicas: replicas(400, 400), MaxBurn: 3}, ActionNone},
		// One cool replica: migration can still rebalance, so no spawn —
		// and here the imbalance rung fires first instead.
		{"one replica cool", Signals{Replicas: replicas(400, 100), Burning: true, MaxBurn: 3}, ActionMigrate},
	}
	for _, c := range cases {
		var st state
		d, _ := decide(cfg, &st, c.sig, ms(0))
		if d.Action != c.want {
			t.Errorf("%s: got %v, want %v", c.name, d.Action, c.want)
		}
	}
}

func TestSpawnBoundsSuppression(t *testing.T) {
	cfg := testCfg()
	var st state
	sig := Signals{Replicas: replicas(400, 400, 400), Burning: true, MaxBurn: 3}
	d, sups := decide(cfg, &st, sig, ms(0))
	if d.Action != ActionNone {
		t.Fatalf("spawned past MaxReplicas: %+v", d)
	}
	if !hasSup(sups, ActionSpawnReplica, "bounds: replicas at max") {
		t.Fatalf("no bounds suppression: %v", sups)
	}
}

func TestBurningGatesScaleDown(t *testing.T) {
	cfg := testCfg()
	var st state
	// Idle pool and idle replicas, but an SLO is burning: nothing sheds.
	sig := poolSig(5, 2)
	sig.Replicas = replicas(5, 5)
	sig.Burning = true
	for i := 0; i < 5; i++ {
		d, _ := decide(cfg, &st, sig, ms(i*100))
		if d.Action != ActionNone {
			t.Fatalf("scale-down while burning: %+v", d)
		}
	}
}

func TestRetireColdestAboveFloor(t *testing.T) {
	cfg := testCfg()
	var st state
	d, _ := decide(cfg, &st, Signals{Replicas: replicas(8, 3, 9)}, ms(0))
	if d.Action != ActionRetireReplica || d.Retire != 1 {
		t.Fatalf("got %+v, want retire replica1", d)
	}
	// At the floor, no retirement and no suppression (steady state).
	st = state{}
	cfg.MinReplicas = 3
	d, sups := decide(cfg, &st, Signals{Replicas: replicas(8, 3, 9)}, ms(0))
	if d.Action != ActionNone || len(sups) != 0 {
		t.Fatalf("acted at MinReplicas: %+v %v", d, sups)
	}
}

func TestGrowWinsOverMigrate(t *testing.T) {
	cfg := testCfg()
	var st state
	sig := poolSig(150, 1)
	sig.Replicas = replicas(300, 50)
	decide(cfg, &st, sig, ms(0))
	d, _ := decide(cfg, &st, sig, ms(100))
	if d.Action != ActionGrowPool {
		t.Fatalf("got %v, want grow-pool (cheapest rung wins)", d.Action)
	}
}

func TestCooldownFallsThroughToMigrate(t *testing.T) {
	cfg := testCfg()
	var st state
	st.notePool(ms(0)) // pool just acted: grow rung is cooling
	sig := poolSig(150, 2)
	sig.Replicas = replicas(300, 50)
	decide(cfg, &st, sig, ms(50))
	d, sups := decide(cfg, &st, sig, ms(150))
	if d.Action != ActionMigrate {
		t.Fatalf("got %+v, want migrate while grow cools", d)
	}
	if !hasSup(sups, ActionGrowPool, "cooldown") {
		t.Fatalf("grow cooldown not recorded: %v", sups)
	}
}

func TestCooldownFallsThroughToSpawn(t *testing.T) {
	cfg := testCfg()
	var st state
	st.noteMigrate(ms(0)) // migrate rung cooling
	// Imbalanced AND burning AND all hot: migrate would fire but cools,
	// so the ladder escalates to spawn.
	sig := Signals{Replicas: replicas(900, 301), Burning: true, MaxBurn: 3}
	d, sups := decide(cfg, &st, sig, ms(100))
	if d.Action != ActionSpawnReplica {
		t.Fatalf("got %+v, want spawn while migrate cools", d)
	}
	if !hasSup(sups, ActionMigrate, "cooldown") {
		t.Fatalf("migrate cooldown not recorded: %v", sups)
	}
}

func TestDrainWinsOverRetire(t *testing.T) {
	cfg := testCfg()
	var st state
	sig := poolSig(5, 2)
	sig.Replicas = replicas(5, 5)
	var d Decision
	for i := 0; i < 3; i++ {
		d, _ = decide(cfg, &st, sig, ms(i*100))
	}
	if d.Action != ActionDrainPool {
		t.Fatalf("got %v, want drain-pool before retire-replica", d.Action)
	}
}

func TestNoPoolInViewDisablesPoolRungs(t *testing.T) {
	cfg := testCfg()
	var st state
	st.poolUp = 5 // primed streak must reset when the pool vanishes
	d, sups := decide(cfg, &st, Signals{Replicas: replicas(5, 5, 5)}, ms(0))
	if d.Action != ActionRetireReplica {
		t.Fatalf("got %+v, want retire (pool rungs inert)", d)
	}
	if st.poolUp != 0 {
		t.Fatalf("poolUp streak survived a poolless view: %d", st.poolUp)
	}
	if hasSup(sups, ActionGrowPool, "cooldown") || hasSup(sups, ActionGrowPool, "bounds: pool at max") {
		t.Fatalf("pool suppression without a pool: %v", sups)
	}
}

func TestCooldownExpiryReenables(t *testing.T) {
	cfg := testCfg()
	var st state
	st.notePool(ms(0))
	sig := poolSig(150, 1)
	decide(cfg, &st, sig, ms(100))
	if d, _ := decide(cfg, &st, sig, ms(200)); d.Action != ActionNone {
		t.Fatalf("acted inside cooldown: %+v", d)
	}
	if d, _ := decide(cfg, &st, sig, ms(300)); d.Action != ActionGrowPool {
		t.Fatalf("cooldown expiry did not re-enable grow")
	}
}

func TestValidatePanics(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Interval = 0 },
		func(c *Config) { c.PoolDrainLoad = c.PoolGrowLoad },
		func(c *Config) { c.PoolUpChecks = 0 },
		func(c *Config) { c.MinPool = 0 },
		func(c *Config) { c.MaxPool = c.MinPool - 1 },
		func(c *Config) { c.MigrateImbalance = 0.5 },
		func(c *Config) { c.MinReplicas = 0 },
		func(c *Config) { c.ReplicaIdleLoad = c.ReplicaHotLoad },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: malformed config did not panic", i)
				}
			}()
			cfg.validate()
		}()
	}
}
