// Package balance is the joint-elasticity balancer: one deterministic,
// sim-clock-driven control loop that jointly decides how the whole
// Scotch control plane scales. Its only input is the observatory's
// consistent obs.ClusterView snapshot (DESIGN.md §12 — the balancer
// never probes subsystems directly), and its outputs are three actuator
// interfaces:
//
//   - grow/drain the overlay vSwitch pool (elastic.Pool),
//   - migrate switch pods between controller replicas (Migrator,
//     satisfied by cluster.Coordinator.MigratePod), and
//   - spawn/retire controller replicas (ReplicaActuator).
//
// The policy is multi-threshold with hysteresis and per-action
// cooldowns, in the style of EASM (arXiv 1711.08659) and the
// multi-threshold switch-migration approach (arXiv 2504.17046):
// scale-up remedies are tried cheapest-first (grow pool, then migrate a
// pod, then spawn a replica — SLO burn rate is the escalation signal),
// scale-down only runs when no SLO is burning, and every decision —
// applied or suppressed — is counted, logged, and trace-marked. See
// DESIGN.md §13 for the control-loop state machine and the anti-flap
// reasoning, and OPERATIONS.md for the operator-facing decision table.
//
// All Balancer methods are safe on a nil receiver and the disabled path
// allocates nothing, so call sites never need to guard.
package balance
