package balance

import (
	"errors"
	"strings"
	"testing"
	"time"

	"scotch/internal/obs"
	"scotch/internal/sim"
	"scotch/internal/telemetry"
)

// fakePool is a scripted elastic.Pool.
type fakePool struct {
	size    int
	growErr error
	grows   int
	shrinks int
}

func (p *fakePool) Size() int { return p.size }
func (p *fakePool) Grow() error {
	if p.growErr != nil {
		return p.growErr
	}
	p.grows++
	p.size++
	return nil
}
func (p *fakePool) Shrink() error {
	p.shrinks++
	p.size--
	return nil
}

// fakeMigrator records requested moves; ok scripts whether a pod was found.
type fakeMigrator struct {
	moves [][2]int
	ok    bool
}

func (m *fakeMigrator) MigratePod(from, to int) (string, bool) {
	m.moves = append(m.moves, [2]int{from, to})
	if !m.ok {
		return "", false
	}
	return "pod", true
}

// viewState is a mutable stand-in for the observatory: tests poke its
// fields and the ViewFunc renders a ClusterView the way Watch* would.
type viewState struct {
	poolSize float64
	poolLoad float64
	repLoads []float64
	burning  bool
	burn     float64
}

func (v *viewState) view() *obs.ClusterView {
	cv := &obs.ClusterView{}
	comp := obs.ComponentView{Name: "elastic", Series: []obs.SeriesView{
		{Name: "load", Summary: obs.Summary{N: 1, Last: v.poolLoad}},
		{Name: "pool_size", Summary: obs.Summary{N: 1, Last: v.poolSize}},
	}}
	cv.Components = append(cv.Components, comp)
	for i, l := range v.repLoads {
		cv.Components = append(cv.Components, obs.ComponentView{
			Name: "replica" + string(rune('0'+i)),
			Series: []obs.SeriesView{
				{Name: "load", Summary: obs.Summary{N: 1, Last: l}},
				{Name: "alive", Summary: obs.Summary{N: 1, Last: 1}},
			},
		})
	}
	if v.burning {
		cv.SLOs = append(cv.SLOs, obs.SLOView{Name: "client-p99", Verdict: obs.Burning, BurnLong: v.burn})
	}
	return cv
}

func TestBalancerGrowsThenDrains(t *testing.T) {
	eng := sim.New(1)
	pool := &fakePool{size: 1}
	vs := &viewState{poolSize: 1, poolLoad: 200}
	cfg := testCfg()
	b := New(eng, cfg, vs.view, Actuators{Pool: pool}).Start()
	// Keep the rendered view in step with the fake pool.
	eng.Every(50*time.Millisecond, func() { vs.poolSize = float64(pool.size) })

	eng.RunUntil(2 * time.Second)
	if pool.grows != 2 || pool.size != 3 {
		t.Fatalf("grows=%d size=%d, want 2 grows to MaxPool", pool.grows, pool.size)
	}
	vs.poolLoad = 5
	eng.RunUntil(6 * time.Second)
	b.Stop()
	if pool.shrinks != 2 || pool.size != 1 {
		t.Fatalf("shrinks=%d size=%d, want drained to MinPool", pool.shrinks, pool.size)
	}
	if b.Stats.Grows != 2 || b.Stats.Drains != 2 {
		t.Fatalf("stats = %+v", b.Stats)
	}
	if b.Stats.Bounds == 0 {
		t.Fatalf("sustained load at MaxPool recorded no bounds suppression: %+v", b.Stats)
	}
	log := b.Log()
	if len(log) != 4 {
		t.Fatalf("decision log has %d records, want 4: %+v", len(log), log)
	}
	for _, rec := range log {
		if !rec.Applied || rec.Reason == "" {
			t.Fatalf("bad record: %+v", rec)
		}
	}
}

func TestBalancerMigratesAndEscalates(t *testing.T) {
	eng := sim.New(1)
	mig := &fakeMigrator{ok: true}
	spawns := 0
	vs := &viewState{repLoads: []float64{900, 100}}
	cfg := testCfg()
	b := New(eng, cfg, vs.view, Actuators{
		Migrator: mig,
		Replicas: ReplicaFuncs{SpawnFn: func() error { spawns++; return nil }},
	}).Start()
	eng.RunUntil(150 * time.Millisecond)
	if len(mig.moves) != 1 || mig.moves[0] != [2]int{0, 1} {
		t.Fatalf("moves = %v, want one 0->1", mig.moves)
	}
	// Both replicas now hot and an SLO burning: the migrate rung's
	// cooldown lets the ladder escalate to spawn.
	vs.repLoads = []float64{900, 800}
	vs.burning, vs.burn = true, 3
	eng.RunUntil(300 * time.Millisecond)
	b.Stop()
	if spawns != 1 {
		t.Fatalf("spawns = %d, want 1", spawns)
	}
	if b.Stats.Migrations != 1 || b.Stats.Spawns != 1 {
		t.Fatalf("stats = %+v", b.Stats)
	}
}

func TestMigratorNoPodStartsCooldown(t *testing.T) {
	eng := sim.New(1)
	mig := &fakeMigrator{ok: false}
	vs := &viewState{repLoads: []float64{900, 100}}
	b := New(eng, testCfg(), vs.view, Actuators{Migrator: mig}).Start()
	eng.RunUntil(350 * time.Millisecond)
	b.Stop()
	// Ticks at 100/200/300ms; the 100ms attempt fails definitively and
	// must start the 200ms cooldown: exactly one retry (at 300ms), not
	// one per tick.
	if len(mig.moves) != 2 {
		t.Fatalf("moves = %v, want cooldown to suppress per-tick retries", mig.moves)
	}
	if b.Stats.Errors != 2 || b.Stats.Cooldown == 0 {
		t.Fatalf("stats = %+v", b.Stats)
	}
}

func TestActuatorErrorRetriesWithoutCooldown(t *testing.T) {
	eng := sim.New(1)
	pool := &fakePool{size: 1, growErr: errors.New("no standby")}
	vs := &viewState{poolSize: 1, poolLoad: 200}
	b := New(eng, testCfg(), vs.view, Actuators{Pool: pool}).Start()
	eng.RunUntil(450 * time.Millisecond)
	b.Stop()
	// Eligible from tick 2 (200ms): ticks at 200/300/400ms all retry
	// because a failed grow must not start the cooldown.
	if b.Stats.Errors != 3 || b.Stats.Grows != 0 {
		t.Fatalf("stats = %+v, want 3 error retries", b.Stats)
	}
}

func TestNoActuatorIsSuppressedNotFatal(t *testing.T) {
	eng := sim.New(1)
	vs := &viewState{poolSize: 1, poolLoad: 200, repLoads: []float64{900, 100}}
	b := New(eng, testCfg(), vs.view, Actuators{}).Start()
	eng.RunUntil(time.Second)
	b.Stop()
	if b.Stats.NoActuator == 0 {
		t.Fatalf("stats = %+v, want no-actuator suppressions", b.Stats)
	}
	if b.Stats.Grows+b.Stats.Migrations+b.Stats.Spawns != 0 {
		t.Fatalf("acted without actuators: %+v", b.Stats)
	}
}

func TestAdviseModeNeverActuates(t *testing.T) {
	eng := sim.New(1)
	pool := &fakePool{size: 1}
	mig := &fakeMigrator{ok: true}
	vs := &viewState{poolSize: 1, poolLoad: 200, repLoads: []float64{900, 100}}
	cfg := testCfg()
	cfg.Advise = true
	b := New(eng, cfg, vs.view, Actuators{Pool: pool, Migrator: mig}).Start()
	eng.RunUntil(time.Second)
	b.Stop()
	if pool.grows != 0 || len(mig.moves) != 0 {
		t.Fatalf("advise mode actuated: grows=%d moves=%v", pool.grows, mig.moves)
	}
	if b.Stats.Advised == 0 {
		t.Fatalf("no advised decisions: %+v", b.Stats)
	}
	for _, rec := range b.Log() {
		if rec.Applied {
			t.Fatalf("advised record marked applied: %+v", rec)
		}
	}
}

func TestMarksAndMetrics(t *testing.T) {
	eng := sim.New(1)
	pool := &fakePool{size: 1}
	vs := &viewState{poolSize: 1, poolLoad: 200}
	b := New(eng, testCfg(), vs.view, Actuators{Pool: pool})
	tr := telemetry.NewTracer()
	b.SetTracer(tr)
	reg := telemetry.NewRegistry()
	b.BindMetrics(reg)
	b.Start()
	eng.RunUntil(300 * time.Millisecond)
	b.Stop()

	found := false
	for _, m := range tr.Marks() {
		if strings.Contains(m.Name, "balance:grow-pool") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no balance:grow-pool mark in %+v", tr.Marks())
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"scotch_balance_ticks_total",
		`scotch_balance_actions_total{action="grow-pool"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestExtractSignals(t *testing.T) {
	if sig := ExtractSignals(nil); sig.HasPool || len(sig.Replicas) != 0 || sig.Burning {
		t.Fatalf("nil view produced signals: %+v", sig)
	}
	v := &obs.ClusterView{
		At: sim.Time(5 * time.Second),
		Components: []obs.ComponentView{
			{Name: "cluster", Series: []obs.SeriesView{{Name: "migrations_total", Summary: obs.Summary{N: 1, Last: 2}}}},
			{Name: "elastic", Series: []obs.SeriesView{
				{Name: "load", Summary: obs.Summary{N: 3, Last: 42}},
				{Name: "pool_size", Summary: obs.Summary{N: 3, Last: 3}},
			}},
			// Lexical component order ("replica10" < "replica2") must not
			// leak into replica ordering.
			{Name: "replica10", Series: []obs.SeriesView{
				{Name: "load", Summary: obs.Summary{N: 1, Last: 10}},
				{Name: "alive", Summary: obs.Summary{N: 1, Last: 1}},
			}},
			{Name: "replica2", Series: []obs.SeriesView{
				{Name: "load", Summary: obs.Summary{N: 1, Last: 20}},
				{Name: "alive", Summary: obs.Summary{N: 1, Last: 0}},
			}},
			{Name: "replicaX", Series: nil}, // not a replica id: ignored
		},
		SLOs: []obs.SLOView{
			{Name: "a", Verdict: obs.Healthy, BurnLong: 0.5},
			{Name: "b", Verdict: obs.Burning, BurnLong: 4},
		},
	}
	sig := ExtractSignals(v)
	if !sig.HasPool || sig.PoolSize != 3 || sig.PoolLoad != 42 {
		t.Fatalf("pool signals: %+v", sig)
	}
	if len(sig.Replicas) != 2 || sig.Replicas[0].ID != 2 || sig.Replicas[1].ID != 10 {
		t.Fatalf("replica order: %+v", sig.Replicas)
	}
	if sig.Replicas[0].Alive || !sig.Replicas[1].Alive {
		t.Fatalf("liveness: %+v", sig.Replicas)
	}
	if !sig.Burning || sig.MaxBurn != 4 || sig.BurnSLO != "b" {
		t.Fatalf("slo signals: %+v", sig)
	}
	if sig.At != sim.Time(5*time.Second) {
		t.Fatalf("At = %v", sig.At)
	}
}

// TestNilBalancerAllocFree pins the disabled path: every method of a nil
// balancer must be a 0-allocation no-op, so call sites never guard.
func TestNilBalancerAllocFree(t *testing.T) {
	var b *Balancer
	n := testing.AllocsPerRun(100, func() {
		b.Start()
		b.SetTracer(nil)
		b.BindMetrics(nil)
		_ = b.Log()
		_ = b.Dropped()
		_ = b.LastSignals()
		b.Stop()
	})
	if n != 0 {
		t.Fatalf("nil balancer allocates %v per run, want 0", n)
	}
}

func TestLogBound(t *testing.T) {
	eng := sim.New(1)
	b := New(eng, testCfg(), func() *obs.ClusterView { return nil }, Actuators{})
	for i := 0; i < maxLog+10; i++ {
		b.record(DecisionRecord{})
	}
	if len(b.Log()) != maxLog || b.Dropped() != 10 {
		t.Fatalf("log=%d dropped=%d", len(b.Log()), b.Dropped())
	}
}
