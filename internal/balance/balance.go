package balance

import (
	"fmt"

	"scotch/internal/elastic"
	"scotch/internal/obs"
	"scotch/internal/sim"
	"scotch/internal/telemetry"
)

// ViewFunc supplies the balancer's only input: one consistent
// ClusterView snapshot per tick. obs.Observatory.Snapshot is the
// production implementation; tests return literals.
type ViewFunc func() *obs.ClusterView

// Migrator moves one switch pod from replica `from` to replica `to`,
// returning the migrated pod's name. ok=false means no pod move would
// improve the spread (or the ids were invalid) — the balancer treats
// that as a definitive "can't help right now" and starts the migrate
// cooldown so the ladder can escalate instead of retrying every tick.
// cluster.Coordinator satisfies this with MigratePod.
type Migrator interface {
	MigratePod(from, to int) (pod string, ok bool)
}

// ReplicaActuator spawns and retires controller replicas. Spawn must
// build, connect and enroll a replica (and extend observation to it);
// Retire must drain pods off the replica before removing it. Errors
// leave the cooldown unstarted so the balancer retries next tick.
type ReplicaActuator interface {
	Spawn() error
	Retire(id int) error
}

// ReplicaFuncs adapts two closures to ReplicaActuator, for call sites
// (experiments, tests) that spawn replicas with rig-local context.
type ReplicaFuncs struct {
	SpawnFn  func() error
	RetireFn func(id int) error
}

// Spawn calls SpawnFn (an error when nil).
func (r ReplicaFuncs) Spawn() error {
	if r.SpawnFn == nil {
		return fmt.Errorf("balance: no SpawnFn")
	}
	return r.SpawnFn()
}

// Retire calls RetireFn (an error when nil).
func (r ReplicaFuncs) Retire(id int) error {
	if r.RetireFn == nil {
		return fmt.Errorf("balance: no RetireFn")
	}
	return r.RetireFn(id)
}

// Actuators bundles the balancer's three outputs. A nil field disables
// that action class: its decisions are recorded as suppressed with
// reason "no-actuator" rather than applied.
type Actuators struct {
	Pool     elastic.Pool
	Migrator Migrator
	Replicas ReplicaActuator
}

// Stats counts balancer activity; read-only for callers.
type Stats struct {
	Ticks      uint64 // policy evaluations
	Grows      uint64 // applied pool grows
	Drains     uint64 // applied pool drains
	Migrations uint64 // applied pod migrations
	Spawns     uint64 // applied replica spawns
	Retires    uint64 // applied replica retirements
	Advised    uint64 // decisions logged but not actuated (Advise mode)
	Cooldown   uint64 // rungs suppressed by a per-action cooldown
	Bounds     uint64 // rungs suppressed by Min/Max bounds
	NoActuator uint64 // decisions with no actuator wired
	Errors     uint64 // actuator calls that failed (including no-pod migrations)
}

// DecisionRecord is one logged balancer decision: what fired, why, and
// whether it was applied. scotchsim's -balance flag prints these;
// experiments assert on their ordering.
type DecisionRecord struct {
	At     sim.Time
	Action Action
	// From/To are the replica ids of a migrate; Pod is the pod the
	// migrator picked; Retire is the replica of a retirement.
	From, To int
	Pod      string
	Retire   int
	Reason   string
	// Applied is false in Advise mode and on actuator failure; Err
	// holds the failure text when there was one.
	Applied bool
	Err     string
}

// maxLog bounds the decision log; past it, records are dropped and
// counted so a runaway policy cannot grow memory without bound.
const maxLog = 512

// Balancer runs the joint-elasticity control loop. All methods are safe
// on a nil receiver (no-ops), so call sites never guard.
type Balancer struct {
	eng    sim.Proc
	cfg    Config
	view   ViewFunc
	act    Actuators
	tracer *telemetry.Tracer
	ticker *sim.Ticker

	st      state
	lastSig Signals
	log     []DecisionRecord
	dropped uint64

	// Stats is read-only for callers.
	Stats Stats
}

// New validates cfg and binds a balancer to its view source and
// actuators. It panics on a malformed config: these are programming
// errors, not runtime conditions.
func New(eng sim.Proc, cfg Config, view ViewFunc, act Actuators) *Balancer {
	cfg.validate()
	if view == nil {
		panic("balance: nil ViewFunc")
	}
	return &Balancer{eng: eng, cfg: cfg, view: view, act: act}
}

// SetTracer attaches a tracer; each decision emits a "balance:<action>"
// mark. A nil tracer (or balancer) disables marks.
func (b *Balancer) SetTracer(t *telemetry.Tracer) {
	if b == nil {
		return
	}
	b.tracer = t
}

// BindMetrics registers the balancer's counters and gauges:
// scotch_balance_ticks_total, scotch_balance_actions_total{action},
// scotch_balance_suppressed_total{reason} and scotch_balance_max_burn.
// No-op on a nil balancer or registry.
func (b *Balancer) BindMetrics(reg *telemetry.Registry) {
	if b == nil || reg == nil {
		return
	}
	reg.CounterFunc("scotch_balance_ticks_total", func() uint64 { return b.Stats.Ticks })
	actions := []struct {
		name string
		n    *uint64
	}{
		{"grow-pool", &b.Stats.Grows},
		{"drain-pool", &b.Stats.Drains},
		{"migrate", &b.Stats.Migrations},
		{"spawn-replica", &b.Stats.Spawns},
		{"retire-replica", &b.Stats.Retires},
	}
	for _, a := range actions {
		n := a.n
		reg.CounterFunc("scotch_balance_actions_total"+telemetry.Labels("action", a.name),
			func() uint64 { return *n })
	}
	reasons := []struct {
		name string
		n    *uint64
	}{
		{"cooldown", &b.Stats.Cooldown},
		{"bounds", &b.Stats.Bounds},
		{"no-actuator", &b.Stats.NoActuator},
		{"error", &b.Stats.Errors},
	}
	for _, r := range reasons {
		n := r.n
		reg.CounterFunc("scotch_balance_suppressed_total"+telemetry.Labels("reason", r.name),
			func() uint64 { return *n })
	}
	reg.GaugeFunc("scotch_balance_max_burn", func() float64 { return b.lastSig.MaxBurn })
}

// Start begins policy ticks every cfg.Interval. It returns the balancer
// for chaining; a nil balancer is a no-op, and a second Start panics.
func (b *Balancer) Start() *Balancer {
	if b == nil {
		return nil
	}
	if b.ticker != nil {
		panic("balance: Start called twice")
	}
	b.ticker = b.eng.Every(b.cfg.Interval, b.tick)
	return b
}

// Stop halts the control loop; in-flight actuations (a draining
// vSwitch, a migrating pod) complete on their own. Nil-safe.
func (b *Balancer) Stop() {
	if b == nil || b.ticker == nil {
		return
	}
	b.ticker.Stop()
}

// Log returns a copy of the decision log (nil for a nil balancer).
func (b *Balancer) Log() []DecisionRecord {
	if b == nil || len(b.log) == 0 {
		return nil
	}
	return append([]DecisionRecord(nil), b.log...)
}

// Dropped reports decision records discarded past the log bound.
func (b *Balancer) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped
}

// LastSignals returns the signals extracted by the most recent tick
// (zero before the first). Nil-safe.
func (b *Balancer) LastSignals() Signals {
	if b == nil {
		return Signals{}
	}
	return b.lastSig
}

// tick is one control-loop evaluation: snapshot the view, extract
// signals, run the pure policy, and apply (or advise) its decision.
func (b *Balancer) tick() {
	b.Stats.Ticks++
	sig := ExtractSignals(b.view())
	b.lastSig = sig
	now := b.eng.Now()
	d, sups := decide(b.cfg, &b.st, sig, now)
	for _, s := range sups {
		b.noteSuppressed(s)
	}
	if d.Action == ActionNone {
		return
	}
	b.apply(d, now)
}

func (b *Balancer) noteSuppressed(s Suppression) {
	switch {
	case s.Reason == "cooldown":
		b.Stats.Cooldown++
	case len(s.Reason) >= 6 && s.Reason[:6] == "bounds":
		b.Stats.Bounds++
	case s.Reason == "no-actuator":
		b.Stats.NoActuator++
	default:
		b.Stats.Errors++
	}
}

// apply actuates one decision. In Advise mode the actuator is never
// called but cooldowns and streak resets still commit, so the advice
// stream has the same cadence real actions would. On actuator error the
// cooldown is NOT started (retry next tick) — except for a migrator
// that found no improving pod, which is definitive for the current load
// shape, starts the cooldown, and lets the ladder escalate.
func (b *Balancer) apply(d Decision, now sim.Time) {
	rec := DecisionRecord{At: now, Action: d.Action, From: d.From, To: d.To, Retire: d.Retire, Reason: d.Reason}

	if b.cfg.Advise {
		b.Stats.Advised++
		b.commit(d.Action, now)
		b.record(rec)
		b.mark(fmt.Sprintf("balance:advise:%s", d.Action), now)
		return
	}

	switch d.Action {
	case ActionGrowPool, ActionDrainPool:
		if b.act.Pool == nil {
			b.fail(rec, "no-actuator", "no pool actuator")
			return
		}
		var err error
		if d.Action == ActionGrowPool {
			err = b.act.Pool.Grow()
		} else {
			err = b.act.Pool.Shrink()
		}
		if err != nil {
			b.Stats.Errors++
			rec.Err = err.Error()
			b.record(rec)
			return // keep streaks and cooldown unstarted: retry next tick
		}
		if d.Action == ActionGrowPool {
			b.Stats.Grows++
		} else {
			b.Stats.Drains++
		}
		rec.Applied = true
		b.commit(d.Action, now)
		b.record(rec)
		b.mark(fmt.Sprintf("balance:%s size=%d", d.Action, b.act.Pool.Size()), now)

	case ActionMigrate:
		if b.act.Migrator == nil {
			b.fail(rec, "no-actuator", "no migrator")
			return
		}
		pod, ok := b.act.Migrator.MigratePod(d.From, d.To)
		if !ok {
			// Definitive for this load shape: cool down and escalate.
			b.Stats.Errors++
			rec.Err = "no pod move improves the spread"
			b.commit(d.Action, now)
			b.record(rec)
			return
		}
		b.Stats.Migrations++
		rec.Applied = true
		rec.Pod = pod
		b.commit(d.Action, now)
		b.record(rec)
		b.mark(fmt.Sprintf("balance:migrate pod=%s %d->%d", pod, d.From, d.To), now)

	case ActionSpawnReplica:
		if b.act.Replicas == nil {
			b.fail(rec, "no-actuator", "no replica actuator")
			return
		}
		if err := b.act.Replicas.Spawn(); err != nil {
			b.Stats.Errors++
			rec.Err = err.Error()
			b.record(rec)
			return
		}
		b.Stats.Spawns++
		rec.Applied = true
		b.commit(d.Action, now)
		b.record(rec)
		b.mark("balance:spawn-replica", now)

	case ActionRetireReplica:
		if b.act.Replicas == nil {
			b.fail(rec, "no-actuator", "no replica actuator")
			return
		}
		if err := b.act.Replicas.Retire(d.Retire); err != nil {
			b.Stats.Errors++
			rec.Err = err.Error()
			b.record(rec)
			return
		}
		b.Stats.Retires++
		rec.Applied = true
		b.commit(d.Action, now)
		b.record(rec)
		b.mark(fmt.Sprintf("balance:retire-replica id=%d", d.Retire), now)
	}
}

// commit starts the acted action class's cooldown (and, for pool
// actions, resets the hysteresis streaks).
func (b *Balancer) commit(a Action, now sim.Time) {
	switch a {
	case ActionGrowPool, ActionDrainPool:
		b.st.notePool(now)
	case ActionMigrate:
		b.st.noteMigrate(now)
	case ActionSpawnReplica, ActionRetireReplica:
		b.st.noteReplica(now)
	}
}

func (b *Balancer) fail(rec DecisionRecord, reason, errText string) {
	b.noteSuppressed(Suppression{rec.Action, reason})
	rec.Err = errText
	b.record(rec)
}

func (b *Balancer) record(rec DecisionRecord) {
	if len(b.log) >= maxLog {
		b.dropped++
		return
	}
	b.log = append(b.log, rec)
}

func (b *Balancer) mark(msg string, now sim.Time) {
	if b.tracer != nil {
		b.tracer.Mark(msg, now)
	}
}
