package device

import (
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

// TunnelType selects the encapsulation used by a tunnel.
type TunnelType int

// Supported encapsulations.
const (
	TunnelMPLS TunnelType = iota
	TunnelGRE
)

func (t TunnelType) String() string {
	if t == TunnelGRE {
		return "gre"
	}
	return "mpls"
}

// TunnelConfig describes one overlay tunnel. Tunnels ride the underlying
// data plane; the simulator models that path as an aggregate delay and
// bandwidth (the sum over the physical hops computed at setup time), while
// still performing real encapsulation and decapsulation at the endpoints.
type TunnelConfig struct {
	Type       TunnelType
	ID         uint64 // outer MPLS label / GRE tunnel identity at the receiver
	Delay      time.Duration
	RateBps    float64
	QueueBytes int
	// LocalIP/RemoteIP are the GRE outer addresses (A side is Local).
	LocalIP, RemoteIP netaddr.IPv4
	// StripInnerA/StripInnerB make the endpoint pop the *inner* MPLS
	// label (the Scotch ingress-port tag) into packet metadata at decap,
	// as the paper's mesh vSwitches do before emitting Packet-In.
	StripInnerA, StripInnerB bool
}

// Tunnel is a point-to-point overlay tunnel between two switch ports.
// Like Link, all mutable state is split per direction (transmit-side
// counters indexed by direction, receive-side counters likewise) so the
// endpoints can live on different partition lanes: each counter slot has
// exactly one writing lane.
type Tunnel struct {
	Cfg  TunnelConfig
	a, b *Port

	busyUntil [2]sim.Time
	down      bool
	dead      bool
	dropsTx   [2]uint64 // discarded at the sending endpoint
	dropsRx   [2]uint64 // discarded at the receiving endpoint
	encapped  [2]uint64
	decapped  [2]uint64
}

// ConnectTunnel creates a tunnel between new logical ports on a and b.
func ConnectTunnel(a Node, aPort uint32, b Node, bPort uint32, cfg TunnelConfig) *Tunnel {
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = defaultQueueBytes
	}
	t := &Tunnel{Cfg: cfg}
	pa := &Port{ID: aPort, Owner: a, Tunnel: t}
	pb := &Port{ID: bPort, Owner: b, Tunnel: t}
	pa.peer, pb.peer = pb, pa
	t.a, t.b = pa, pb
	a.attachPort(pa)
	b.attachPort(pb)
	return t
}

// Ports returns the tunnel's two endpoints (A side first).
func (t *Tunnel) Ports() (*Port, *Port) { return t.a, t.b }

// SetDown forces the tunnel out of (or back into) service, as when the
// underlay path it rides is partitioned. While down, packets offered at
// either endpoint are counted in Drops and discarded.
func (t *Tunnel) SetDown(down bool) { t.down = down }

// Teardown permanently removes the tunnel from the live topology: both
// endpoint ports are detached from their owners and the tunnel is forced
// down, so in-flight packets arriving after teardown are dropped rather
// than delivered to a port that no longer exists. Teardown is idempotent.
func (t *Tunnel) Teardown() {
	t.down = true
	t.dead = true
	t.a.Owner.detachPort(t.a)
	t.b.Owner.detachPort(t.b)
}

// Down reports whether the tunnel is currently forced down.
func (t *Tunnel) Down() bool { return t.down }

// Drops returns the total packets discarded at either endpoint.
func (t *Tunnel) Drops() uint64 {
	return t.dropsTx[0] + t.dropsTx[1] + t.dropsRx[0] + t.dropsRx[1]
}

// Encapped returns the total packets encapsulated into the tunnel.
func (t *Tunnel) Encapped() uint64 { return t.encapped[0] + t.encapped[1] }

// Decapped returns the total packets decapsulated out of the tunnel.
func (t *Tunnel) Decapped() uint64 { return t.decapped[0] + t.decapped[1] }

func (t *Tunnel) dir(from *Port) int {
	if from == t.a {
		return 0
	}
	return 1
}

// transmit encapsulates and carries the packet to the far end, where it is
// decapsulated before delivery.
func (t *Tunnel) transmit(pkt *packet.Packet, from *Port, tunnelKey uint64) {
	d := t.dir(from)
	if t.down {
		t.dropsTx[d]++
		return
	}
	switch t.Cfg.Type {
	case TunnelMPLS:
		// The inner (ingress port) label, if any, was pushed by the flow
		// rule; the tunnel port pushes the outer transport label.
		pkt.PushMPLS(uint32(t.Cfg.ID))
	case TunnelGRE:
		local, remote := t.Cfg.LocalIP, t.Cfg.RemoteIP
		if from == t.b {
			local, remote = remote, local
		}
		if err := pkt.EncapGRE(local, remote, uint32(tunnelKey)); err != nil {
			t.dropsTx[d]++
			return
		}
	}
	t.encapped[d]++

	src := from.Owner.Proc()
	now := src.Now()
	start := t.busyUntil[d]
	if start < now {
		start = now
	}
	var txTime time.Duration
	if t.Cfg.RateBps > 0 {
		txTime = time.Duration(float64(pkt.Size*8) / t.Cfg.RateBps * float64(time.Second))
		backlog := (start - now).Seconds() * t.Cfg.RateBps / 8
		if int(backlog) > t.Cfg.QueueBytes {
			t.dropsTx[d]++
			return
		}
	}
	t.busyUntil[d] = start + txTime
	to := from.peer
	src.DeferCall(to.Owner.Proc(), start+txTime+t.Cfg.Delay-now, deliverTunnelPkt, to, pkt)
}

// deliverTunnelPkt is the static delivery callback for every tunnel,
// scheduled via DeferCall so per-packet transit allocates nothing. The
// tunnel and receive direction are recovered from the destination port.
func deliverTunnelPkt(a1, a2 any) {
	to := a1.(*Port)
	t := to.Tunnel
	d := 0
	if to == t.a {
		d = 1
	}
	t.deliver(a2.(*packet.Packet), to, d)
}

func (t *Tunnel) deliver(pkt *packet.Packet, to *Port, d int) {
	if t.dead {
		t.dropsRx[d]++
		return
	}
	stripInner := t.Cfg.StripInnerB
	if to == t.a {
		stripInner = t.Cfg.StripInnerA
	}
	switch t.Cfg.Type {
	case TunnelMPLS:
		if _, err := pkt.PopMPLS(); err != nil {
			t.dropsRx[d]++
			return
		}
		pkt.Meta.TunnelID = t.Cfg.ID
		if stripInner && len(pkt.MPLS) > 0 {
			inner, _ := pkt.PopMPLS()
			pkt.Meta.InnerKey = inner
		}
	case TunnelGRE:
		key, err := pkt.DecapGRE()
		if err != nil {
			t.dropsRx[d]++
			return
		}
		pkt.Meta.TunnelID = t.Cfg.ID
		if stripInner {
			pkt.Meta.InnerKey = key
		}
	}
	t.decapped[d]++
	to.Owner.Receive(pkt, to)
}
