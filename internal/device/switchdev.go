package device

import (
	"fmt"
	"time"

	"scotch/internal/fault"
	"scotch/internal/flowtable"
	"scotch/internal/metrics"
	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/sim"
	"scotch/internal/telemetry"
)

// SwitchStats counts a switch's activity.
type SwitchStats struct {
	DataIn        uint64 // packets offered to the data plane
	DataForwarded uint64 // packets that matched and were forwarded
	DataDropped   uint64 // data-plane queue overflows
	StallDrops    uint64 // packets lost while the TCAM was being written
	Misses        uint64 // table misses (Packet-In candidates)

	PacketInSent    uint64 // Packet-In messages emitted by the OFA
	PacketInDropped uint64 // misses dropped because the OFA was saturated

	FlowModReceived uint64
	RulesInstalled  uint64
	RulesDeleted    uint64
	InsertQueueDrop uint64 // FlowMods lost to OFA queue overflow
	TableFull       uint64 // inserts rejected by TCAM capacity

	LocalHandled uint64 // table misses absorbed by the local agent

	SlaveDenied uint64 // writes rejected because the connection is a slave
	RoleStale   uint64 // role claims fenced off by the generation check
}

// LocalAgent is a switch-resident control element consulted on every
// table miss before the miss is queued for Packet-In emission. If
// HandleMiss returns true the agent has disposed of the packet locally
// (typically forwarding it via ForwardLocal and installing a rule via
// InstallLocal) and no Packet-In is generated; returning false escalates
// the miss to the controller as usual. The devolve package implements
// this with a per-tenant policy cache. Agents run inline on the data
// plane's event-loop service slot, so they must not block.
type LocalAgent interface {
	HandleMiss(pkt *packet.Packet, inPort uint32) bool
}

// Switch is a simulated OpenFlow switch: a data plane driven by a flow
// table pipeline plus an OFA connecting it to the controller.
type Switch struct {
	name    string
	DPID    uint64
	proc    sim.Proc
	Profile Profile

	Pipeline *flowtable.Pipeline
	ports    map[uint32]*Port
	LocalIP  netaddr.IPv4 // tunnel endpoint address (GRE outer)

	dataSrv     *sim.Server[dataItem]
	pktInSrv    *sim.Server[dataItem]
	ruleSrv     *sim.Server[ruleItem]
	insertMeter *metrics.RateMeter
	// ruleArena is the block new flow rules are carved from: one heap
	// allocation per block of installs instead of one per rule. Slots of
	// replaced or expired rules are not reused — acceptable at rule sizes,
	// and it keeps removed-rule references (flow-removed notifications,
	// stats snapshots) valid without lifetime tracking.
	ruleArena []flowtable.Rule

	// conns are the switch's controller connections in attach order. Each
	// has an OpenFlow role: asynchronous messages (Packet-In, Flow-Removed,
	// unsolicited Errors) go to master and equal connections only; request
	// replies go to the requesting connection.
	conns    []*ctrlConn
	nextConn int
	genID    uint64 // newest generation id seen in a master/slave claim
	genSeen  bool

	xid      uint32
	failed   bool
	trace    *telemetry.Tracer
	chFaults *fault.ChannelFaults
	local    LocalAgent // nil = every miss escalates to the controller

	Stats SwitchStats

	// OnForward, when set, observes every (packet, outPort) the data
	// plane emits; the capture subsystem uses it.
	OnForward func(pkt *packet.Packet, out *Port)
}

type dataItem struct {
	pkt  *packet.Packet
	port *Port
}

// NewSwitch creates a switch with the given profile and starts its expiry
// sweeper.
func NewSwitch(eng sim.Proc, name string, dpid uint64, prof Profile) *Switch {
	sw := &Switch{
		name:        name,
		DPID:        dpid,
		proc:        eng,
		Profile:     prof,
		Pipeline:    flowtable.NewPipeline(prof.NumTables, prof.TableCapacity),
		ports:       make(map[uint32]*Port),
		insertMeter: metrics.NewRateMeter(time.Second, 10),
	}
	sw.dataSrv = sim.NewServer(eng, prof.DataPlanePPS, prof.DataQueue, sw.processData)
	sw.dataSrv.OnDrop(func(dataItem) { sw.Stats.DataDropped++ })
	sw.pktInSrv = sim.NewServer(eng, prof.PacketInRate, prof.PacketInQueue, sw.emitPacketIn)
	sw.pktInSrv.OnDrop(func(dataItem) { sw.Stats.PacketInDropped++ })
	sw.ruleSrv = sim.NewServer(eng, prof.RuleInsertRate, prof.RuleQueue, sw.processRule)
	sw.ruleSrv.OnDrop(func(ruleItem) { sw.Stats.InsertQueueDrop++ })
	eng.Every(time.Second, sw.sweepExpired)
	return sw
}

// Name implements Node.
func (sw *Switch) Name() string { return sw.name }

// Proc implements Node.
func (sw *Switch) Proc() sim.Proc { return sw.proc }

func (sw *Switch) attachPort(p *Port) { sw.ports[p.ID] = p }

func (sw *Switch) detachPort(p *Port) {
	if sw.ports[p.ID] == p {
		delete(sw.ports, p.ID)
	}
}

// Port returns the port with the given id, or nil.
func (sw *Switch) Port(id uint32) *Port { return sw.ports[id] }

// ctrlConn is one controller connection at the switch's OFA. proc is the
// scheduling context the controller end runs on: switch-to-controller
// messages are deferred onto it, and controller-to-switch deliveries
// originate from it, which is what keeps the control channel safe when
// switch and controller live on different partition lanes.
type ctrlConn struct {
	id   int
	send func(dpid uint64, msg []byte)
	role uint32
	proc sim.Proc
}

// SetController installs fn as the switch's only controller connection
// (id 0, equal role), replacing any existing connections. This is the
// single-controller fast path; clustered controllers use AttachController.
// The connection's far end is assumed to share the switch's Proc — use
// SetControllerOn when the controller runs elsewhere.
func (sw *Switch) SetController(fn func(dpid uint64, msg []byte)) {
	sw.SetControllerOn(sw.proc, fn)
}

// SetControllerOn is SetController with an explicit controller-side Proc.
func (sw *Switch) SetControllerOn(proc sim.Proc, fn func(dpid uint64, msg []byte)) {
	sw.conns = []*ctrlConn{{id: 0, send: fn, role: openflow.RoleEqual, proc: proc}}
	sw.nextConn = 1
}

// AttachController adds a controller connection (equal role until a
// RoleRequest changes it) whose far end shares the switch's Proc, and
// returns its connection id.
func (sw *Switch) AttachController(fn func(dpid uint64, msg []byte)) int {
	return sw.AttachControllerOn(sw.proc, fn)
}

// AttachControllerOn is AttachController with an explicit controller-side
// Proc.
func (sw *Switch) AttachControllerOn(proc sim.Proc, fn func(dpid uint64, msg []byte)) int {
	id := sw.nextConn
	sw.nextConn++
	sw.conns = append(sw.conns, &ctrlConn{id: id, send: fn, role: openflow.RoleEqual, proc: proc})
	return id
}

// DetachController closes a controller connection; in-flight messages from
// it are dropped, like a torn-down TCP session.
func (sw *Switch) DetachController(id int) {
	for i, c := range sw.conns {
		if c.id == id {
			sw.conns = append(sw.conns[:i], sw.conns[i+1:]...)
			return
		}
	}
}

// ControllerRole returns the role of a connection (ok=false if unknown).
func (sw *Switch) ControllerRole(id int) (uint32, bool) {
	if c := sw.conn(id); c != nil {
		return c.role, true
	}
	return 0, false
}

func (sw *Switch) conn(id int) *ctrlConn {
	for _, c := range sw.conns {
		if c.id == id {
			return c
		}
	}
	return nil
}

// SetTracer attaches a control-path tracer (nil disables tracing). The
// tracer must belong to this switch's engine; hooks run inline on the
// event loop. The OFA's Packet-In queue is observed through the server's
// sim-level trace hooks: submit marks the table miss entering the queue,
// serve marks the Packet-In leaving for the controller.
func (sw *Switch) SetTracer(t *telemetry.Tracer) {
	sw.trace = t
	if t == nil {
		sw.pktInSrv.Trace(nil, nil)
		return
	}
	sw.pktInSrv.Trace(
		func(it dataItem, now sim.Time) {
			t.Point(telemetry.PointMiss, it.pkt.FlowKey(), sw.DPID, now)
		},
		func(it dataItem, now sim.Time) {
			t.Point(telemetry.PointPacketInEmit, it.pkt.FlowKey(), sw.DPID, now)
		},
	)
}

// BindMetrics registers this switch's live counters with a telemetry
// registry under a dpid label. All series are evaluated at scrape time.
func (sw *Switch) BindMetrics(reg *telemetry.Registry) {
	lbl := telemetry.Labels("dpid", fmt.Sprint(sw.DPID))
	reg.CounterFunc("scotch_switch_packet_in_sent_total"+lbl, func() uint64 { return sw.Stats.PacketInSent })
	reg.CounterFunc("scotch_switch_packet_in_dropped_total"+lbl, func() uint64 { return sw.Stats.PacketInDropped })
	reg.CounterFunc("scotch_switch_rules_installed_total"+lbl, func() uint64 { return sw.Stats.RulesInstalled })
	reg.CounterFunc("scotch_switch_table_full_total"+lbl, func() uint64 { return sw.Stats.TableFull })
	reg.GaugeFunc("scotch_switch_insert_backlog"+lbl, func() float64 { return float64(sw.InsertBacklog()) })
}

// Fail simulates a crash: the switch stops forwarding and stops answering
// the controller (heartbeats included). Used by the vSwitch failover
// experiments.
func (sw *Switch) Fail() { sw.failed = true }

// Failed reports whether Fail was called.
func (sw *Switch) Failed() bool { return sw.failed }

// Restart recovers a failed switch as a cold boot: forwarding and control
// processing resume, but all dynamically installed flow and group state is
// gone, as when a crashed vSwitch process comes back up. Controller
// connections are kept — re-synchronizing state is the controller's job.
func (sw *Switch) Restart() {
	sw.failed = false
	sw.Pipeline = flowtable.NewPipeline(sw.Profile.NumTables, sw.Profile.TableCapacity)
}

// SetChannelFaults attaches a message-level fault policy to every control
// connection of this switch: each control-channel message (both
// directions) may be dropped, duplicated, or delayed per the policy. Nil
// (the default) disables injection at the cost of one nil check per
// message.
func (sw *Switch) SetChannelFaults(cf *fault.ChannelFaults) { sw.chFaults = cf }

// SetLocalAgent attaches (or, with nil, detaches) a local control agent
// consulted on every table miss. The disabled path costs one nil check
// and zero allocations.
func (sw *Switch) SetLocalAgent(a LocalAgent) { sw.local = a }

// LocalAgentAttached reports whether a local agent is consulted on misses.
func (sw *Switch) LocalAgentAttached() bool { return sw.local != nil }

// InstallLocal queues a FlowMod originated by the switch's own local
// agent through the OFA's paced rule-install stage, so locally devolved
// rules contend for the same insertion budget as controller installs.
// applied, when non-nil, runs once the rule has actually landed in (or
// been deleted from) the table. No controller connection is involved and
// errors are swallowed, as for a process-internal caller.
func (sw *Switch) InstallLocal(fm *openflow.FlowMod, applied func()) {
	if sw.failed {
		return
	}
	sw.ruleSrv.Submit(ruleItem{conn: -1, fm: fm, applied: applied})
	sw.updateRuleRate()
}

// ForwardLocal emits a packet decided by the local agent through the
// normal action-execution path (group expansion, capture hooks, port
// transmit included), as if a rule had matched it.
func (sw *Switch) ForwardLocal(pkt *packet.Packet, inPort uint32, actions []openflow.Action) {
	if sw.failed {
		return
	}
	sw.Stats.DataForwarded++
	sw.execute(pkt, inPort, actions)
}

// PuntLocal re-enters a packet into the OFA's Packet-In stage as if it
// had just missed: the local agent uses it to escalate a flow it had
// been handling locally (e.g. a detected elephant) to the controller.
func (sw *Switch) PuntLocal(pkt *packet.Packet, inPort uint32) {
	if sw.failed {
		return
	}
	sw.pktInSrv.Submit(dataItem{pkt: pkt, port: &Port{ID: inPort, Owner: sw}})
}

// Receive implements Node: a packet arrives on a data port.
func (sw *Switch) Receive(pkt *packet.Packet, port *Port) {
	if sw.failed {
		return
	}
	sw.Stats.DataIn++
	sw.dataSrv.Submit(dataItem{pkt, port})
}

// InsertBacklog returns the number of FlowMods queued at the OFA.
func (sw *Switch) InsertBacklog() int { return sw.ruleSrv.QueueLen() }

// processData is the data-plane lookup stage.
func (sw *Switch) processData(it dataItem) {
	now := sw.proc.Now()
	// TCAM write stall (Fig. 10): drop the packet with probability equal
	// to the fraction of time the pipeline is blocked by rule insertions.
	if stall := sw.Profile.StallFraction(sw.insertMeter.Rate(now)); stall > 0 &&
		sw.proc.Rand().Float64() < stall {
		sw.Stats.StallDrops++
		return
	}
	res := sw.Pipeline.Process(it.pkt, it.port.ID, now)
	if res.Miss {
		sw.Stats.Misses++
		// A local agent (control devolution) may absorb the miss without
		// involving the controller; with none attached this is one nil
		// check on the hot path.
		if sw.local != nil && sw.local.HandleMiss(it.pkt, it.port.ID) {
			sw.Stats.LocalHandled++
			return
		}
		sw.pktInSrv.Submit(it) // OFA Packet-In generation is rate limited
		return
	}
	sw.Stats.DataForwarded++
	sw.execute(it.pkt, it.port.ID, res.Actions)
}

// execute runs an action list on a packet, expanding groups.
func (sw *Switch) execute(pkt *packet.Packet, inPort uint32, actions []openflow.Action) {
	sw.executeCtx(pkt, inPort, actions, 0, 0)
}

func (sw *Switch) executeCtx(pkt *packet.Packet, inPort uint32, actions []openflow.Action, tunnelKey uint64, depth int) {
	if depth > 4 {
		return // group recursion guard
	}
	for i := range actions {
		a := &actions[i]
		switch a.Type {
		case openflow.ActionTypePushMPLS:
			pkt.PushMPLS(a.MPLSLabel)
		case openflow.ActionTypePopMPLS:
			if _, err := pkt.PopMPLS(); err != nil {
				return
			}
		case openflow.ActionTypeSetField:
			switch a.Field {
			case 34: // MPLS label
				if len(pkt.MPLS) > 0 {
					pkt.MPLS[0].Label = a.MPLSLabel
				}
			case 38: // tunnel id
				tunnelKey = a.TunnelID
			}
		case openflow.ActionTypeGroup:
			g := sw.Pipeline.Groups.Get(a.GroupID)
			if g == nil {
				continue
			}
			switch g.Type {
			case openflow.GroupTypeSelect:
				if b := g.SelectBucket(pkt.FlowKey().Hash()); b != nil {
					sw.executeCtx(pkt, inPort, b.Actions, tunnelKey, depth+1)
				}
			case openflow.GroupTypeAll:
				for j := range g.Buckets {
					sw.executeCtx(pkt.Clone(), inPort, g.Buckets[j].Actions, tunnelKey, depth+1)
				}
			}
		case openflow.ActionTypeOutput:
			if a.Port == openflow.PortController {
				sw.pktInSrv.Submit(dataItem{pkt.Clone(), &Port{ID: inPort, Owner: sw}})
				continue
			}
			out := sw.ports[a.Port]
			if out == nil {
				continue
			}
			// The final action of a top-level list transfers ownership of
			// the packet instead of cloning: every execute caller discards
			// its reference afterward, and nothing below this loop touches
			// pkt again. Group buckets (depth > 0) still clone, because
			// the caller's action list continues after the group action.
			sent := pkt
			if depth != 0 || i != len(actions)-1 {
				sent = pkt.Clone()
			}
			if sw.OnForward != nil {
				sw.OnForward(sent, out)
			}
			out.Send(sent, tunnelKey)
		}
	}
}

// emitPacketIn is the OFA's Packet-In generation stage.
func (sw *Switch) emitPacketIn(it dataItem) {
	sw.Stats.PacketInSent++
	m := openflow.Match{Fields: openflow.FieldInPort, InPort: it.port.ID}
	if it.pkt.Meta.TunnelID != 0 {
		m.Fields |= openflow.FieldTunnelID
		m.TunnelID = it.pkt.Meta.TunnelID
	}
	data := it.pkt.Marshal()
	msg := &openflow.PacketIn{
		BufferID: 0xffffffff,
		TotalLen: uint16(it.pkt.Size),
		Reason:   openflow.ReasonNoMatch,
		TableID:  0,
		Cookie:   uint64(it.pkt.Meta.InnerKey), // Scotch inner label / GRE key
		Match:    m,
		Data:     data,
	}
	sw.sendAsync(msg)
}

// sendAsync fans an asynchronous message (Packet-In, Flow-Removed) out to
// every master and equal connection; slaves receive nothing (OF 1.3 §6.3).
func (sw *Switch) sendAsync(m openflow.Message) {
	sw.xid++
	b, err := openflow.Marshal(m, sw.xid)
	if err != nil {
		panic(fmt.Sprintf("device: marshal %v: %v", m.Type(), err))
	}
	dpid := sw.DPID
	for _, c := range sw.conns {
		if c.role == openflow.RoleSlave {
			continue
		}
		delay := sw.Profile.CtrlDelay
		if sw.chFaults != nil {
			v := sw.chFaults.Verdict()
			if v.Drop {
				continue
			}
			delay += v.Delay
			if v.Duplicate {
				sw.proc.DeferBytes(c.proc, delay, deliverToConn, c.send, int(dpid), b)
			}
		}
		sw.proc.DeferBytes(c.proc, delay, deliverToConn, c.send, int(dpid), b)
	}
}

// deliverToConn is the DeferBytes target for switch-to-controller sends:
// obj is the connection's send func and id the switch DPID, so the
// deferred delivery allocates nothing (func values are pointer-shaped).
func deliverToConn(obj any, dpid int, b []byte) {
	obj.(func(dpid uint64, msg []byte))(uint64(dpid), b)
}

// deliverControl is the DeferBytes target for controller-to-switch sends.
func deliverControl(obj any, connID int, b []byte) {
	obj.(*Switch).handleControl(connID, b)
}

// sendToConnXID transmits a reply to one connection with an explicit
// transaction id (replies must echo the request's xid).
func (sw *Switch) sendToConnXID(connID int, m openflow.Message, xid uint32) {
	c := sw.conn(connID)
	if c == nil {
		return // connection closed since the request arrived
	}
	b, err := openflow.Marshal(m, xid)
	if err != nil {
		panic(fmt.Sprintf("device: marshal %v: %v", m.Type(), err))
	}
	dpid := sw.DPID
	delay := sw.Profile.CtrlDelay
	if sw.chFaults != nil {
		v := sw.chFaults.Verdict()
		if v.Drop {
			return
		}
		delay += v.Delay
		if v.Duplicate {
			sw.proc.DeferBytes(c.proc, delay, deliverToConn, c.send, int(dpid), b)
		}
	}
	sw.proc.DeferBytes(c.proc, delay, deliverToConn, c.send, int(dpid), b)
}

// DeliverControl accepts an encoded controller-to-switch message on the
// primary (id 0) connection; it is processed after the control channel's
// one-way delay.
func (sw *Switch) DeliverControl(b []byte) { sw.DeliverControlFrom(0, b) }

// DeliverControlFrom accepts an encoded controller-to-switch message on a
// specific connection. It runs on the caller's (controller-side) context:
// the message is deferred from the connection's Proc onto the switch's,
// arriving after the control channel's one-way delay.
func (sw *Switch) DeliverControlFrom(connID int, b []byte) {
	src := sw.proc
	if c := sw.conn(connID); c != nil && c.proc != nil {
		src = c.proc
	}
	delay := sw.Profile.CtrlDelay
	if sw.chFaults != nil {
		v := sw.chFaults.Verdict()
		if v.Drop {
			return
		}
		delay += v.Delay
		if v.Duplicate {
			src.DeferBytes(sw.proc, delay, deliverControl, sw, connID, b)
		}
	}
	src.DeferBytes(sw.proc, delay, deliverControl, sw, connID, b)
}

// ruleItem is a FlowMod or barrier queued at the OFA, tagged with its
// originating connection so errors and barrier replies can be routed back
// to the sender. conn -1 marks a local-agent install (no connection;
// applied, when set, runs after the mod takes effect). barrier marks a
// BarrierRequest placeholder (fm nil), answered when it drains. The queue
// used to be Server[any]; the typed item avoids boxing every FlowMod into
// an interface on the install hot path.
type ruleItem struct {
	conn    int
	xid     uint32
	barrier bool
	fm      *openflow.FlowMod
	applied func()
	notify  RuleNotify
}

// RuleNotify is the object form of InstallLocal's applied callback: the
// local agent passes a value whose RuleApplied method fires once the mod
// takes effect, costing no closure allocation on the devolved hot path.
type RuleNotify interface{ RuleApplied() }

// InstallLocalNotify is InstallLocal with an object callback.
func (sw *Switch) InstallLocalNotify(fm *openflow.FlowMod, n RuleNotify) {
	if sw.failed {
		return
	}
	sw.ruleSrv.Submit(ruleItem{conn: -1, fm: fm, notify: n})
	sw.updateRuleRate()
}

func (sw *Switch) handleControl(connID int, b []byte) {
	if sw.failed {
		return
	}
	c := sw.conn(connID)
	if c == nil {
		if sw.nextConn != 0 {
			return // connection closed while the message was in flight
		}
		// No controller ever attached (headless tests drive the switch
		// directly): process the message, drop any reply.
		c = &ctrlConn{id: connID, role: openflow.RoleEqual}
	}
	msg, xid, err := openflow.Unmarshal(b)
	if err != nil {
		return
	}
	// Slave connections are read-only: state-changing requests bounce with
	// an is-slave error and never reach the pipeline.
	if c.role == openflow.RoleSlave {
		switch msg.(type) {
		case *openflow.FlowMod, *openflow.GroupMod, *openflow.PacketOut:
			sw.Stats.SlaveDenied++
			sw.sendToConnXID(connID, &openflow.Error{
				ErrType: openflow.ErrTypeBadRequest,
				Code:    openflow.ErrCodeIsSlave,
			}, xid)
			return
		}
	}
	switch m := msg.(type) {
	case *openflow.Hello:
		sw.sendToConnXID(connID, &openflow.Hello{}, xid)
	case *openflow.EchoRequest:
		sw.sendToConnXID(connID, &openflow.EchoReply{Data: m.Data}, xid)
	case *openflow.FeaturesRequest:
		sw.sendToConnXID(connID, &openflow.FeaturesReply{
			DatapathID: sw.DPID,
			NTables:    uint8(len(sw.Pipeline.Tables)),
		}, xid)
	case *openflow.RoleRequest:
		sw.handleRoleRequest(c, m, xid)
	case *openflow.FlowMod:
		sw.Stats.FlowModReceived++
		sw.ruleSrv.Submit(ruleItem{conn: connID, xid: xid, fm: m})
		sw.updateRuleRate()
	case *openflow.GroupMod:
		// Group churn is rare (overlay reconfiguration); apply directly.
		if err := sw.Pipeline.Groups.Apply(m); err != nil {
			sw.sendToConnXID(connID, &openflow.Error{ErrType: openflow.ErrTypeGroupModFailed}, xid)
		}
	case *openflow.PacketOut:
		if pkt, err := packet.Parse(m.Data); err == nil {
			sw.execute(pkt, m.InPort, m.Actions)
		}
	case *openflow.MultipartRequest:
		sw.replyFlowStats(connID, m, xid)
	case *openflow.BarrierRequest:
		sw.ruleSrv.Submit(ruleItem{conn: connID, xid: xid, barrier: true})
	}
}

// handleRoleRequest applies a role change (OF 1.3 §6.3): master/slave
// claims carry a generation id and are fenced off when stale; a granted
// master claim demotes the previous master to slave.
func (sw *Switch) handleRoleRequest(c *ctrlConn, m *openflow.RoleRequest, xid uint32) {
	switch m.Role {
	case openflow.RoleMaster, openflow.RoleSlave:
		if sw.genSeen && int64(m.GenerationID-sw.genID) < 0 {
			sw.Stats.RoleStale++
			sw.sendToConnXID(c.id, &openflow.Error{
				ErrType: openflow.ErrTypeRoleRequestFailed,
				Code:    openflow.ErrCodeRoleStale,
			}, xid)
			return
		}
		sw.genSeen = true
		sw.genID = m.GenerationID
		if m.Role == openflow.RoleMaster {
			for _, o := range sw.conns {
				if o != c && o.role == openflow.RoleMaster {
					o.role = openflow.RoleSlave
				}
			}
		}
		c.role = m.Role
	case openflow.RoleEqual:
		c.role = openflow.RoleEqual
	}
	// RoleNoChange (and unknown values) fall through as a pure query.
	sw.sendToConnXID(c.id, &openflow.RoleReply{Role: c.role, GenerationID: sw.genID}, xid)
}

// processRule is the OFA's rule-installation stage.
func (sw *Switch) processRule(it ruleItem) {
	defer sw.updateRuleRate()
	now := sw.proc.Now()
	if it.barrier {
		sw.sendToConnXID(it.conn, &openflow.BarrierReply{}, it.xid)
		return
	}
	m := it.fm
	sw.insertMeter.Add(now, 1)
	tbl := sw.Pipeline.Table(m.TableID)
	if tbl == nil {
		return
	}
	switch m.Command {
	case openflow.FlowAdd, openflow.FlowModify:
		if len(sw.ruleArena) == 0 {
			sw.ruleArena = make([]flowtable.Rule, 128)
		}
		rule := &sw.ruleArena[0]
		sw.ruleArena = sw.ruleArena[1:]
		*rule = flowtable.Rule{
			Priority:     m.Priority,
			Match:        m.Match,
			Instructions: m.Instructions,
			IdleTimeout:  time.Duration(m.IdleTimeout) * time.Second,
			HardTimeout:  time.Duration(m.HardTimeout) * time.Second,
			Cookie:       m.Cookie,
			Flags:        m.Flags,
			Installed:    now,
		}
		if err := tbl.Insert(rule); err != nil {
			sw.Stats.TableFull++
			sw.sendToConnXID(it.conn, &openflow.Error{
				ErrType: openflow.ErrTypeFlowModFailed,
				Code:    openflow.ErrCodeTableFull,
			}, it.xid)
			return
		}
		sw.Stats.RulesInstalled++
		if sw.trace != nil {
			if key, ok := telemetry.FlowKeyFromMatch(&m.Match); ok {
				sw.trace.Point(telemetry.PointRuleApplied, key, sw.DPID, now)
			}
		}
		if it.applied != nil {
			it.applied()
		}
		if it.notify != nil {
			it.notify.RuleApplied()
		}
	case openflow.FlowDelete, openflow.FlowDeleteStrict:
		removed := tbl.Delete(&m.Match, m.Priority, m.Command == openflow.FlowDeleteStrict)
		sw.Stats.RulesDeleted += uint64(len(removed))
		for _, r := range removed {
			sw.notifyRemoved(r, openflow.RemovedDelete, now)
		}
		if it.applied != nil {
			it.applied()
		}
		if it.notify != nil {
			it.notify.RuleApplied()
		}
	}
}

// updateRuleRate switches the OFA between its loss-free and overloaded
// insertion regimes depending on backlog (see Profile).
func (sw *Switch) updateRuleRate() {
	if sw.ruleSrv.QueueLen() > 0 {
		sw.ruleSrv.SetRate(sw.Profile.RuleOverloadRate)
	} else {
		sw.ruleSrv.SetRate(sw.Profile.RuleInsertRate)
	}
}

func (sw *Switch) sweepExpired() {
	now := sw.proc.Now()
	for _, tbl := range sw.Pipeline.Tables {
		rules, reasons := tbl.Expire(now)
		for i, r := range rules {
			sw.notifyRemoved(r, reasons[i], now)
		}
	}
}

func (sw *Switch) notifyRemoved(r *flowtable.Rule, reason uint8, now sim.Time) {
	if r.Flags&openflow.FlagSendFlowRem == 0 {
		return
	}
	sw.sendAsync(&openflow.FlowRemoved{
		Cookie:      r.Cookie,
		Priority:    r.Priority,
		Reason:      reason,
		TableID:     r.TableID,
		DurationSec: uint32((now - r.Installed) / time.Second),
		PacketCount: r.Packets,
		ByteCount:   r.Bytes,
		Match:       r.Match,
	})
}

func (sw *Switch) replyFlowStats(connID int, req *openflow.MultipartRequest, xid uint32) {
	if req.MPType != openflow.MultipartFlow || req.Flow == nil {
		return
	}
	now := sw.proc.Now()
	reply := &openflow.MultipartReply{MPType: openflow.MultipartFlow}
	for _, tbl := range sw.Pipeline.Tables {
		if req.Flow.TableID != 0xff && tbl.ID != req.Flow.TableID {
			continue
		}
		for _, r := range tbl.Rules() {
			if req.Flow.Match.Fields != 0 && !req.Flow.Match.Equal(&r.Match) {
				continue
			}
			reply.Flows = append(reply.Flows, openflow.FlowStats{
				TableID:      r.TableID,
				DurationSec:  uint32((now - r.Installed) / time.Second),
				DurationNsec: uint32((now - r.Installed) % time.Second),
				Priority:     r.Priority,
				Cookie:       r.Cookie,
				PacketCount:  r.Packets,
				ByteCount:    r.Bytes,
				Match:        r.Match,
			})
		}
	}
	// Chunk large tables across multipart parts so each message stays
	// within the protocol's frame limit (OFPMPF_REPLY_MORE semantics).
	const chunk = 400
	for start := 0; ; start += chunk {
		end := start + chunk
		if end > len(reply.Flows) {
			end = len(reply.Flows)
		}
		part := &openflow.MultipartReply{
			MPType: openflow.MultipartFlow,
			More:   end < len(reply.Flows),
			Flows:  reply.Flows[start:end],
		}
		sw.sendToConnXID(connID, part, xid)
		if end == len(reply.Flows) {
			break
		}
	}
}
