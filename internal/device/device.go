package device

import (
	"fmt"
	"time"

	"scotch/internal/packet"
	"scotch/internal/sim"
)

// Node is anything that can terminate a link and receive packets.
type Node interface {
	// Name returns the node's unique name.
	Name() string
	// Proc returns the scheduling context the node runs on: the shared
	// engine in serial mode, the node's partition lane in sharded mode.
	// Links and tunnels deliver into the destination node's Proc, which
	// is what lets partitions simulate concurrently.
	Proc() sim.Proc
	// Receive delivers a packet arriving on one of the node's ports.
	Receive(pkt *packet.Packet, port *Port)
	// attachPort registers a new port on the node.
	attachPort(p *Port)
	// detachPort removes a previously attached port, as when an overlay
	// tunnel is torn down on a live topology. Detaching a port that was
	// never attached is a no-op.
	detachPort(p *Port)
}

// Port is one attachment point of a node: either the endpoint of a
// physical link or a logical tunnel port.
type Port struct {
	ID     uint32
	Owner  Node
	Link   *Link   // non-nil for physical ports
	Tunnel *Tunnel // non-nil for tunnel ports
	peer   *Port
}

// Peer returns the port at the other end of the link or tunnel.
func (p *Port) Peer() *Port { return p.peer }

// Send transmits a packet out of this port. tunnelKey is the pending
// set_field(tunnel_id) value and is only meaningful for tunnel ports.
func (p *Port) Send(pkt *packet.Packet, tunnelKey uint64) {
	switch {
	case p.Tunnel != nil:
		p.Tunnel.transmit(pkt, p, tunnelKey)
	case p.Link != nil:
		p.Link.transmit(pkt, p)
	}
}

// String identifies the port for logs.
func (p *Port) String() string {
	return fmt.Sprintf("%s:%d", p.Owner.Name(), p.ID)
}

// LinkConfig sets a link's characteristics. The zero value means a fast,
// zero-delay, loss-free link.
type LinkConfig struct {
	Delay      time.Duration
	RateBps    float64 // 0 = infinite
	QueueBytes int     // per direction; 0 = 256 KiB default
}

const defaultQueueBytes = 256 << 10

// Link is a full-duplex point-to-point link with serialization delay,
// propagation delay, and a finite per-direction queue. All per-link state
// is kept per direction so the two endpoints may live on different
// partition lanes of a sharded engine: each lane only ever touches its
// own direction's slots.
type Link struct {
	a, b *Port
	cfg  LinkConfig

	busyUntil [2]sim.Time
	down      bool
	drops     [2]uint64 // indexed by transmit direction
}

// Connect creates a link between new ports aPort on a and bPort on b.
// Packets are timed against the sender's clock and delivered on the
// receiver's Proc, so the link itself needs no engine reference.
func Connect(a Node, aPort uint32, b Node, bPort uint32, cfg LinkConfig) *Link {
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = defaultQueueBytes
	}
	l := &Link{cfg: cfg}
	pa := &Port{ID: aPort, Owner: a, Link: l}
	pb := &Port{ID: bPort, Owner: b, Link: l}
	pa.peer, pb.peer = pb, pa
	l.a, l.b = pa, pb
	a.attachPort(pa)
	b.attachPort(pb)
	return l
}

// Ports returns the link's two endpoints.
func (l *Link) Ports() (*Port, *Port) { return l.a, l.b }

// SetDown forces the link out of (or back into) service. While down,
// every packet offered in either direction is counted in Drops and
// discarded; packets already in flight still arrive.
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the link is currently forced down.
func (l *Link) Down() bool { return l.down }

// Drops returns the total packets discarded in both directions.
func (l *Link) Drops() uint64 { return l.drops[0] + l.drops[1] }

func (l *Link) dir(from *Port) int {
	if from == l.a {
		return 0
	}
	return 1
}

func (l *Link) transmit(pkt *packet.Packet, from *Port) {
	d := l.dir(from)
	if l.down {
		l.drops[d]++
		return
	}
	src := from.Owner.Proc()
	now := src.Now()
	start := l.busyUntil[d]
	if start < now {
		start = now
	}
	var txTime time.Duration
	if l.cfg.RateBps > 0 {
		txTime = time.Duration(float64(pkt.Size*8) / l.cfg.RateBps * float64(time.Second))
		// Backlog check: bytes already committed but not yet on the wire.
		backlog := float64((start - now).Seconds()) * l.cfg.RateBps / 8
		if int(backlog) > l.cfg.QueueBytes {
			l.drops[d]++
			return
		}
	}
	l.busyUntil[d] = start + txTime
	to := from.peer
	// Propagation delay is the sharded engine's lookahead floor: delivery
	// lands on the receiver's lane at least cfg.Delay in the future.
	src.DeferCall(to.Owner.Proc(), start+txTime+l.cfg.Delay-now, deliverLinkPkt, to, pkt)
}

// deliverLinkPkt is the static delivery callback for every link in the
// model, scheduled via DeferCall so per-packet transit allocates nothing.
func deliverLinkPkt(a1, a2 any) {
	to := a1.(*Port)
	to.Owner.Receive(a2.(*packet.Packet), to)
}
