package device

import (
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

// Firewall is a stateful middlebox with two ports. A flow must open with a
// SYN (or, for UDP, be seen from its first packet) to establish state;
// mid-flow packets without state are rejected. This statefulness is
// exactly why Scotch's migration must keep a flow pinned to the *same*
// middlebox instance (paper §5.4): re-routing an established flow through
// a different firewall drops it.
type Firewall struct {
	name  string
	proc  sim.Proc
	ports [2]*Port
	nport int

	Delay time.Duration // per-packet processing latency

	established map[netaddr.FlowKey]bool
	Passed      uint64
	Rejected    uint64
}

// NewFirewall creates a firewall. Connect its two ports with Connect; the
// first connected port is "upstream" (S_U side), the second "downstream"
// (S_D side).
func NewFirewall(eng sim.Proc, name string, delay time.Duration) *Firewall {
	return &Firewall{
		name:        name,
		proc:        eng,
		Delay:       delay,
		established: make(map[netaddr.FlowKey]bool),
	}
}

// Name implements Node.
func (f *Firewall) Name() string { return f.name }

// Proc implements Node.
func (f *Firewall) Proc() sim.Proc { return f.proc }

func (f *Firewall) attachPort(p *Port) {
	if f.nport < 2 {
		f.ports[f.nport] = p
		f.nport++
	}
}

func (f *Firewall) detachPort(p *Port) {
	for i := range f.ports {
		if f.ports[i] == p {
			f.ports[i] = nil
		}
	}
}

// StateCount returns the number of established flow entries.
func (f *Firewall) StateCount() int { return len(f.established) }

// Receive implements Node: check/establish flow state, then forward out of
// the other port after the processing delay.
func (f *Firewall) Receive(pkt *packet.Packet, port *Port) {
	key := pkt.FlowKey()
	opening := pkt.TCP != nil && pkt.TCP.Flags&packet.FlagSYN != 0 && pkt.TCP.Flags&packet.FlagACK == 0
	if pkt.UDP != nil && pkt.Meta.Seq == 0 {
		opening = true
	}
	if !f.established[key] && !f.established[key.Reverse()] {
		if !opening {
			f.Rejected++
			return
		}
		f.established[key] = true
	}
	f.Passed++
	out := f.other(port)
	if out == nil {
		return
	}
	f.proc.Schedule(f.Delay, func() { out.Send(pkt, 0) })
}

func (f *Firewall) other(p *Port) *Port {
	switch p {
	case f.ports[0]:
		return f.ports[1]
	case f.ports[1]:
		return f.ports[0]
	}
	return nil
}

// LoadBalancer is a stateful L4 load balancer middlebox: it maps each new
// flow to a backend and rewrites the destination address. Like the
// firewall it keeps per-flow state, so it participates in the same policy
// consistency argument.
type LoadBalancer struct {
	name  string
	proc  sim.Proc
	ports [2]*Port
	nport int

	VIP      netaddr.IPv4
	Backends []netaddr.IPv4
	Delay    time.Duration

	mapping map[netaddr.FlowKey]netaddr.IPv4
	Passed  uint64
}

// NewLoadBalancer creates a load balancer for the given virtual IP.
func NewLoadBalancer(eng sim.Proc, name string, vip netaddr.IPv4, backends []netaddr.IPv4, delay time.Duration) *LoadBalancer {
	return &LoadBalancer{
		name: name, proc: eng, VIP: vip, Backends: backends, Delay: delay,
		mapping: make(map[netaddr.FlowKey]netaddr.IPv4),
	}
}

// Name implements Node.
func (lb *LoadBalancer) Name() string { return lb.name }

// Proc implements Node.
func (lb *LoadBalancer) Proc() sim.Proc { return lb.proc }

func (lb *LoadBalancer) attachPort(p *Port) {
	if lb.nport < 2 {
		lb.ports[lb.nport] = p
		lb.nport++
	}
}

func (lb *LoadBalancer) detachPort(p *Port) {
	for i := range lb.ports {
		if lb.ports[i] == p {
			lb.ports[i] = nil
		}
	}
}

// Receive implements Node.
func (lb *LoadBalancer) Receive(pkt *packet.Packet, port *Port) {
	key := pkt.FlowKey()
	if pkt.IP.Dst == lb.VIP && len(lb.Backends) > 0 {
		backend, ok := lb.mapping[key]
		if !ok {
			backend = lb.Backends[key.Hash()%uint64(len(lb.Backends))]
			lb.mapping[key] = backend
		}
		pkt.IP.Dst = backend
	}
	lb.Passed++
	out := lb.other(port)
	if out == nil {
		return
	}
	lb.proc.Schedule(lb.Delay, func() { out.Send(pkt, 0) })
}

func (lb *LoadBalancer) other(p *Port) *Port {
	switch p {
	case lb.ports[0]:
		return lb.ports[1]
	case lb.ports[1]:
		return lb.ports[0]
	}
	return nil
}
