package device

import "time"

// Profile captures the performance envelope of one switch model. The
// constants below are calibrated against the measurements in the paper
// (§3.2, §6.1, §6.2); DESIGN.md §5 documents the calibration and the OCR
// ambiguities it resolves.
type Profile struct {
	Name string

	// Data plane.
	DataPlanePPS float64 // flow-table lookup/forward capacity, packets/s
	DataQueue    int     // ingress queue, packets

	// OpenFlow Agent: Packet-In generation.
	PacketInRate  float64 // Packet-In messages/s the OFA can emit
	PacketInQueue int     // packets awaiting Packet-In encapsulation

	// OpenFlow Agent: rule insertion. The loss-free rate applies while
	// the insertion queue is empty; under backlog the OFA thrashes and
	// serves at the (lower) overload rate — this reproduces Fig. 9, where
	// the Pica8's successful insertion rate *falls* once the attempted
	// rate passes the loss-free point, then flattens.
	RuleInsertRate   float64
	RuleOverloadRate float64
	RuleQueue        int

	TableCapacity int // TCAM entries per table; 0 = unlimited
	NumTables     int

	// CtrlDelay is the one-way latency of the switch-controller channel.
	CtrlDelay time.Duration

	// Data-path/control-path interaction (Fig. 10): while the OFA writes
	// rules into the TCAM the forwarding pipeline stalls. Below StallKnee
	// inserts/s the stall fraction ramps linearly to StallLow; past the
	// knee the pipeline collapses to a stall fraction of StallHigh. A
	// packet arriving during a stall is dropped.
	StallKnee float64
	StallLow  float64
	StallHigh float64
}

// StallFraction returns the fraction of time the data path is blocked by
// TCAM writes occurring at insertRate rules/s.
func (p *Profile) StallFraction(insertRate float64) float64 {
	if p.StallKnee <= 0 || insertRate <= 0 {
		return 0
	}
	if insertRate <= p.StallKnee {
		return insertRate / p.StallKnee * p.StallLow
	}
	f := p.StallHigh + (insertRate-p.StallKnee)/p.StallKnee*0.05
	if f > 0.98 {
		f = 0.98
	}
	return f
}

// Pica8Profile models the Pica8 Pronto 3780 (10 GbE, OpenFlow 1.2+,
// tunnels and multiple tables). Calibration (DESIGN.md §5): OFA Packet-In
// generation saturates near 190 msgs/s (Fig. 4); rule insertion is
// loss-free to 2000/s and degrades to ~1000/s when overdriven (Fig. 9);
// the data path collapses once insertions exceed ~1300/s (Fig. 10).
func Pica8Profile() Profile {
	return Profile{
		Name:             "pica8-pronto-3780",
		DataPlanePPS:     1.5e6,
		DataQueue:        512,
		PacketInRate:     190,
		PacketInQueue:    128,
		RuleInsertRate:   2000,
		RuleOverloadRate: 1000,
		RuleQueue:        256,
		TableCapacity:    4000,
		NumTables:        4,
		CtrlDelay:        500 * time.Microsecond,
		StallKnee:        1300,
		StallLow:         0.04,
		StallHigh:        0.90,
	}
}

// ProcurveProfile models the HP Procurve 6600 (1 GbE, OpenFlow 1.0). Its
// OFA has roughly 2.5x the Pica8's Packet-In throughput (Fig. 3 ordering)
// but the switch lacks tunnels and multiple flow tables, which is why the
// paper (and this reproduction) builds Scotch on the Pica8.
func ProcurveProfile() Profile {
	return Profile{
		Name:             "hp-procurve-6600",
		DataPlanePPS:     1.5e5,
		DataQueue:        512,
		PacketInRate:     480,
		PacketInQueue:    128,
		RuleInsertRate:   1000,
		RuleOverloadRate: 500,
		RuleQueue:        128,
		TableCapacity:    1500,
		NumTables:        1,
		CtrlDelay:        500 * time.Microsecond,
		StallKnee:        600,
		StallLow:         0.04,
		StallHigh:        0.85,
	}
}

// OVSProfile models Open vSwitch on a Xeon E5-2650 host: an OFA one to two
// orders of magnitude faster than the hardware switches (Fig. 3 shows near
// zero flow failure across the attack sweep) but a software data plane of
// a few hundred kpps.
func OVSProfile() Profile {
	return Profile{
		Name:             "open-vswitch",
		DataPlanePPS:     3.0e5,
		DataQueue:        1024,
		PacketInRate:     10000,
		PacketInQueue:    2048,
		RuleInsertRate:   5000,
		RuleOverloadRate: 4000,
		RuleQueue:        2048,
		TableCapacity:    0, // software tables, effectively unbounded
		NumTables:        4,
		CtrlDelay:        200 * time.Microsecond,
		StallKnee:        0, // no TCAM; insertions do not stall the datapath
	}
}

// Profiles returns the calibrated switch models by name.
func Profiles() map[string]Profile {
	return map[string]Profile{
		"pica8":    Pica8Profile(),
		"procurve": ProcurveProfile(),
		"ovs":      OVSProfile(),
	}
}
