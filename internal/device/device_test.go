package device

import (
	"testing"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

var (
	ipA = netaddr.MakeIPv4(10, 0, 0, 1)
	ipB = netaddr.MakeIPv4(10, 0, 0, 2)
)

// ctrlSink collects decoded switch-to-controller messages.
type ctrlSink struct {
	t    *testing.T
	msgs []openflow.Message
}

func (c *ctrlSink) fn(dpid uint64, b []byte) {
	m, _, err := openflow.Unmarshal(b)
	if err != nil {
		c.t.Fatalf("controller received garbage: %v", err)
	}
	c.msgs = append(c.msgs, m)
}

func (c *ctrlSink) count(t openflow.MsgType) int {
	n := 0
	for _, m := range c.msgs {
		if m.Type() == t {
			n++
		}
	}
	return n
}

func send(t *testing.T, sw *Switch, m openflow.Message) {
	t.Helper()
	b, err := openflow.Marshal(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	sw.DeliverControl(b)
}

// fastProfile is an idealized profile for functional tests.
func fastProfile() Profile {
	return Profile{
		Name: "test", DataPlanePPS: 1e6, DataQueue: 1000,
		PacketInRate: 1e5, PacketInQueue: 1000,
		RuleInsertRate: 1e5, RuleOverloadRate: 1e5, RuleQueue: 1000,
		NumTables: 2, CtrlDelay: time.Microsecond,
	}
}

func addFlow(t *testing.T, sw *Switch, m openflow.Match, prio uint16, outPort uint32) {
	t.Helper()
	send(t, sw, &openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: prio, Match: m,
		Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.OutputAction(outPort))},
	})
}

func TestLinkDelayAndDelivery(t *testing.T) {
	eng := sim.New(1)
	h1 := NewHost(eng, "h1", ipA, netaddr.MakeMAC(1))
	h2 := NewHost(eng, "h2", ipB, netaddr.MakeMAC(2))
	Connect(h1, 1, h2, 1, LinkConfig{Delay: 3 * time.Millisecond})
	var at sim.Time
	h2.OnReceive = func(_ *packet.Packet, now sim.Time) { at = now }
	h1.Send(packet.NewTCP(ipA, ipB, 1, 2, packet.FlagSYN))
	eng.RunUntil(time.Second)
	if at != 3*time.Millisecond {
		t.Fatalf("delivered at %v, want 3ms", at)
	}
	if h2.Received != 1 || h1.Sent != 1 {
		t.Fatalf("counters: sent=%d received=%d", h1.Sent, h2.Received)
	}
}

func TestHostIgnoresStrayPackets(t *testing.T) {
	eng := sim.New(1)
	h1 := NewHost(eng, "h1", ipA, netaddr.MakeMAC(1))
	h2 := NewHost(eng, "h2", ipB, netaddr.MakeMAC(2))
	Connect(h1, 1, h2, 1, LinkConfig{})
	h1.Send(packet.NewTCP(ipA, netaddr.MakeIPv4(9, 9, 9, 9), 1, 2, 0))
	eng.RunUntil(time.Second)
	if h2.Received != 0 {
		t.Fatal("host accepted a packet not addressed to it")
	}
}

func TestLinkSerializationAndQueueDrop(t *testing.T) {
	eng := sim.New(1)
	h1 := NewHost(eng, "h1", ipA, netaddr.MakeMAC(1))
	h2 := NewHost(eng, "h2", ipB, netaddr.MakeMAC(2))
	// 1 Mbps link, tiny queue: a burst must overflow.
	link := Connect(h1, 1, h2, 1, LinkConfig{RateBps: 1e6, QueueBytes: 200})
	for i := 0; i < 50; i++ {
		p := packet.NewTCP(ipA, ipB, uint16(i), 2, 0)
		p.Size = 1500
		h1.Send(p)
	}
	eng.RunUntil(10 * time.Second)
	if link.Drops() == 0 {
		t.Fatal("no drops on overflowing link")
	}
	if h2.Received == 0 || h2.Received == 50 {
		t.Fatalf("received %d, want partial delivery", h2.Received)
	}
}

func TestSwitchForwardsWithRule(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s1", 1, fastProfile())
	h1 := NewHost(eng, "h1", ipA, netaddr.MakeMAC(1))
	h2 := NewHost(eng, "h2", ipB, netaddr.MakeMAC(2))
	Connect(h1, 1, sw, 1, LinkConfig{})
	Connect(sw, 2, h2, 1, LinkConfig{})
	sink := &ctrlSink{t: t}
	sw.SetController(sink.fn)

	p := packet.NewTCP(ipA, ipB, 1000, 80, packet.FlagSYN)
	addFlow(t, sw, openflow.Match{
		Fields:  openflow.FieldEthType | openflow.FieldIPv4Dst,
		EthType: packet.EtherTypeIPv4, IPv4Dst: ipB,
	}, 10, 2)
	eng.RunUntil(100 * time.Millisecond)
	h1.Send(p)
	eng.RunUntil(200 * time.Millisecond)
	if h2.Received != 1 {
		t.Fatalf("h2 received %d packets, want 1", h2.Received)
	}
	if sw.Stats.RulesInstalled != 1 || sw.Stats.DataForwarded != 1 {
		t.Fatalf("stats = %+v", sw.Stats)
	}
}

func TestSwitchTableMissGeneratesPacketIn(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s1", 7, fastProfile())
	h1 := NewHost(eng, "h1", ipA, netaddr.MakeMAC(1))
	Connect(h1, 1, sw, 3, LinkConfig{})
	sink := &ctrlSink{t: t}
	sw.SetController(sink.fn)

	h1.Send(packet.NewTCP(ipA, ipB, 1000, 80, packet.FlagSYN))
	eng.RunUntil(100 * time.Millisecond)
	if sink.count(openflow.TypePacketIn) != 1 {
		t.Fatalf("packet-ins = %d, want 1", sink.count(openflow.TypePacketIn))
	}
	var pin *openflow.PacketIn
	for _, m := range sink.msgs {
		if p, ok := m.(*openflow.PacketIn); ok {
			pin = p
		}
	}
	if pin.Match.InPort != 3 {
		t.Fatalf("packet-in in_port = %d, want 3", pin.Match.InPort)
	}
	inner, err := packet.Parse(pin.Data)
	if err != nil {
		t.Fatalf("packet-in data unparseable: %v", err)
	}
	if inner.IP.Src != ipA {
		t.Fatalf("packet-in carries wrong packet: %v", inner)
	}
}

func TestOFAPacketInSaturation(t *testing.T) {
	// Offer misses at 10x the OFA's Packet-In rate: the emitted rate must
	// cap at the profile rate, the rest dropped. This is the paper's §3
	// bottleneck in miniature.
	eng := sim.New(1)
	prof := fastProfile()
	prof.PacketInRate = 100
	prof.PacketInQueue = 10
	sw := NewSwitch(eng, "s1", 1, prof)
	h1 := NewHost(eng, "h1", ipA, netaddr.MakeMAC(1))
	Connect(h1, 1, sw, 1, LinkConfig{})
	sink := &ctrlSink{t: t}
	sw.SetController(sink.fn)

	tick := eng.Every(time.Millisecond, func() { // 1000 pkts/s
		h1.Send(packet.NewTCP(netaddr.IPv4(eng.Rand().Uint32()), ipB, 1, 80, packet.FlagSYN))
	})
	eng.Schedule(10*time.Second, tick.Stop)
	eng.RunUntil(11 * time.Second)

	got := sink.count(openflow.TypePacketIn)
	if got < 900 || got > 1100 { // ~100/s for 10s
		t.Fatalf("packet-ins = %d, want ~1000", got)
	}
	if sw.Stats.PacketInDropped < 8000 {
		t.Fatalf("dropped = %d, want ~9000", sw.Stats.PacketInDropped)
	}
}

func TestRuleInsertionOverloadRegime(t *testing.T) {
	// Drive FlowMods at 2x the loss-free rate; the successful insertion
	// rate must fall to the overload rate (Fig. 9 shape).
	eng := sim.New(1)
	prof := fastProfile()
	prof.RuleInsertRate = 200
	prof.RuleOverloadRate = 100
	prof.RuleQueue = 50
	sw := NewSwitch(eng, "s1", 1, prof)
	sink := &ctrlSink{t: t}
	sw.SetController(sink.fn)

	i := 0
	tick := eng.Every(2500*time.Microsecond, func() { // 400/s attempted
		i++
		k := netaddr.FlowKey{Src: netaddr.IPv4(i), Dst: ipB, Proto: netaddr.ProtoTCP, SrcPort: uint16(i), DstPort: 80}
		send(t, sw, &openflow.FlowMod{
			Command: openflow.FlowAdd, Priority: 100,
			Match: openflow.Match{Fields: openflow.FieldIPv4Src, IPv4Src: k.Src},
		})
	})
	eng.Schedule(10*time.Second, tick.Stop)
	eng.RunUntil(11 * time.Second)

	rate := float64(sw.Stats.RulesInstalled) / 10
	if rate < 80 || rate > 140 {
		t.Fatalf("successful insertion rate = %.0f/s, want ~100 (overload regime)", rate)
	}
	if sw.Stats.InsertQueueDrop == 0 {
		t.Fatal("no insertion drops under 2x overload")
	}
}

func TestRuleInsertionLossFreeUnderRate(t *testing.T) {
	eng := sim.New(1)
	prof := fastProfile()
	prof.RuleInsertRate = 200
	prof.RuleOverloadRate = 100
	sw := NewSwitch(eng, "s1", 1, prof)
	i := 0
	tick := eng.Every(10*time.Millisecond, func() { // 100/s attempted < 200/s
		i++
		send(t, sw, &openflow.FlowMod{
			Command: openflow.FlowAdd, Priority: 100,
			Match: openflow.Match{Fields: openflow.FieldIPv4Src, IPv4Src: netaddr.IPv4(i)},
		})
	})
	eng.Schedule(5*time.Second, tick.Stop)
	eng.RunUntil(6 * time.Second)
	if sw.Stats.InsertQueueDrop != 0 {
		t.Fatalf("drops below the loss-free rate: %d", sw.Stats.InsertQueueDrop)
	}
	if sw.Stats.RulesInstalled < 490 {
		t.Fatalf("installed %d rules, want ~500", sw.Stats.RulesInstalled)
	}
}

func TestTableFullError(t *testing.T) {
	eng := sim.New(1)
	prof := fastProfile()
	prof.TableCapacity = 3
	sw := NewSwitch(eng, "s1", 1, prof)
	sink := &ctrlSink{t: t}
	sw.SetController(sink.fn)
	for i := 0; i < 5; i++ {
		send(t, sw, &openflow.FlowMod{
			Command: openflow.FlowAdd, Priority: 100,
			Match: openflow.Match{Fields: openflow.FieldIPv4Src, IPv4Src: netaddr.IPv4(i + 1)},
		})
	}
	eng.RunUntil(time.Second)
	if sw.Stats.TableFull != 2 {
		t.Fatalf("table-full count = %d, want 2", sw.Stats.TableFull)
	}
	if sink.count(openflow.TypeError) != 2 {
		t.Fatalf("error messages = %d, want 2", sink.count(openflow.TypeError))
	}
}

func TestEchoAndFeatures(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s1", 42, fastProfile())
	sink := &ctrlSink{t: t}
	sw.SetController(sink.fn)
	send(t, sw, &openflow.EchoRequest{Data: []byte("hb")})
	send(t, sw, &openflow.FeaturesRequest{})
	eng.RunUntil(time.Second)
	if sink.count(openflow.TypeEchoReply) != 1 {
		t.Fatal("no echo reply")
	}
	found := false
	for _, m := range sink.msgs {
		if fr, ok := m.(*openflow.FeaturesReply); ok {
			found = true
			if fr.DatapathID != 42 {
				t.Fatalf("dpid = %d", fr.DatapathID)
			}
		}
	}
	if !found {
		t.Fatal("no features reply")
	}
}

func TestFlowRemovedOnIdleTimeout(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s1", 1, fastProfile())
	sink := &ctrlSink{t: t}
	sw.SetController(sink.fn)
	send(t, sw, &openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 5, IdleTimeout: 2,
		Flags: openflow.FlagSendFlowRem,
		Match: openflow.Match{Fields: openflow.FieldIPv4Src, IPv4Src: ipA},
	})
	eng.RunUntil(5 * time.Second)
	if sink.count(openflow.TypeFlowRemoved) != 1 {
		t.Fatalf("flow-removed = %d, want 1", sink.count(openflow.TypeFlowRemoved))
	}
	if sw.Pipeline.Table(0).Len() != 0 {
		t.Fatal("expired rule still installed")
	}
}

func TestFlowStatsReply(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s1", 1, fastProfile())
	h1 := NewHost(eng, "h1", ipA, netaddr.MakeMAC(1))
	h2 := NewHost(eng, "h2", ipB, netaddr.MakeMAC(2))
	Connect(h1, 1, sw, 1, LinkConfig{})
	Connect(sw, 2, h2, 1, LinkConfig{})
	sink := &ctrlSink{t: t}
	sw.SetController(sink.fn)

	addFlow(t, sw, openflow.Match{Fields: openflow.FieldIPv4Dst, IPv4Dst: ipB}, 9, 2)
	eng.RunUntil(50 * time.Millisecond)
	for i := 0; i < 4; i++ {
		h1.Send(packet.NewTCP(ipA, ipB, 1000, 80, 0))
	}
	eng.RunUntil(100 * time.Millisecond)
	send(t, sw, &openflow.MultipartRequest{MPType: openflow.MultipartFlow,
		Flow: &openflow.FlowStatsRequest{TableID: 0xff}})
	eng.RunUntil(200 * time.Millisecond)

	var rep *openflow.MultipartReply
	for _, m := range sink.msgs {
		if r, ok := m.(*openflow.MultipartReply); ok {
			rep = r
		}
	}
	if rep == nil || len(rep.Flows) != 1 {
		t.Fatalf("stats reply = %+v", rep)
	}
	if rep.Flows[0].PacketCount != 4 {
		t.Fatalf("packet count = %d, want 4", rep.Flows[0].PacketCount)
	}
}

func TestBarrierOrdering(t *testing.T) {
	eng := sim.New(1)
	prof := fastProfile()
	prof.RuleInsertRate = 100
	prof.RuleOverloadRate = 100
	sw := NewSwitch(eng, "s1", 1, prof)
	sink := &ctrlSink{t: t}
	sw.SetController(sink.fn)
	for i := 0; i < 10; i++ {
		send(t, sw, &openflow.FlowMod{
			Command: openflow.FlowAdd, Priority: 1,
			Match: openflow.Match{Fields: openflow.FieldIPv4Src, IPv4Src: netaddr.IPv4(i + 1)},
		})
	}
	send(t, sw, &openflow.BarrierRequest{})
	eng.RunUntil(10 * time.Second)
	if sink.count(openflow.TypeBarrierReply) != 1 {
		t.Fatal("no barrier reply")
	}
	if sw.Stats.RulesInstalled != 10 {
		t.Fatalf("barrier replied before %d/10 rules installed", sw.Stats.RulesInstalled)
	}
}

func TestPacketOutExecutesActions(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s1", 1, fastProfile())
	h2 := NewHost(eng, "h2", ipB, netaddr.MakeMAC(2))
	Connect(sw, 2, h2, 1, LinkConfig{})
	p := packet.NewTCP(ipA, ipB, 1, 80, packet.FlagSYN)
	send(t, sw, &openflow.PacketOut{
		BufferID: 0xffffffff, InPort: openflow.PortController,
		Actions: []openflow.Action{openflow.OutputAction(2)},
		Data:    p.Marshal(),
	})
	eng.RunUntil(time.Second)
	if h2.Received != 1 {
		t.Fatalf("packet-out not delivered: received=%d", h2.Received)
	}
}

func TestMPLSTunnelBetweenSwitches(t *testing.T) {
	eng := sim.New(1)
	s1 := NewSwitch(eng, "s1", 1, fastProfile())
	s2 := NewSwitch(eng, "s2", 2, fastProfile())
	h1 := NewHost(eng, "h1", ipA, netaddr.MakeMAC(1))
	h2 := NewHost(eng, "h2", ipB, netaddr.MakeMAC(2))
	Connect(h1, 1, s1, 1, LinkConfig{})
	Connect(s2, 1, h2, 1, LinkConfig{})
	ConnectTunnel(s1, 100, s2, 100, TunnelConfig{
		Type: TunnelMPLS, ID: 777, Delay: time.Millisecond, StripInnerB: true,
	})
	sink := &ctrlSink{t: t}
	s2.SetController(sink.fn)

	// s1: tag ingress port with inner label 1, send out the tunnel.
	send(t, s1, &openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 1,
		Instructions: []openflow.Instruction{openflow.ApplyActions(
			openflow.PushMPLSAction(1), openflow.OutputAction(100))},
	})
	eng.RunUntil(10 * time.Millisecond)
	h1.Send(packet.NewTCP(ipA, ipB, 5, 80, packet.FlagSYN))
	eng.RunUntil(time.Second)

	// s2 has no rules: the decapped packet misses and is punted with the
	// tunnel id and stripped inner label.
	if n := sink.count(openflow.TypePacketIn); n != 1 {
		t.Fatalf("packet-ins at s2 = %d, want 1", n)
	}
	var pin *openflow.PacketIn
	for _, m := range sink.msgs {
		if p, ok := m.(*openflow.PacketIn); ok {
			pin = p
		}
	}
	if !pin.Match.Fields.Has(openflow.FieldTunnelID) || pin.Match.TunnelID != 777 {
		t.Fatalf("tunnel id not in packet-in match: %v", pin.Match.String())
	}
	if pin.Cookie != 1 {
		t.Fatalf("inner label (cookie) = %d, want 1", pin.Cookie)
	}
	inner, err := packet.Parse(pin.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(inner.MPLS) != 0 {
		t.Fatalf("labels not stripped: %v", inner.MPLS)
	}
}

func TestGRETunnelCarriesKey(t *testing.T) {
	eng := sim.New(1)
	s1 := NewSwitch(eng, "s1", 1, fastProfile())
	s2 := NewSwitch(eng, "s2", 2, fastProfile())
	h1 := NewHost(eng, "h1", ipA, netaddr.MakeMAC(1))
	Connect(h1, 1, s1, 1, LinkConfig{})
	ConnectTunnel(s1, 100, s2, 100, TunnelConfig{
		Type: TunnelGRE, ID: 9,
		LocalIP: netaddr.MakeIPv4(192, 168, 0, 1), RemoteIP: netaddr.MakeIPv4(192, 168, 0, 2),
		StripInnerB: true,
	})
	sink := &ctrlSink{t: t}
	s2.SetController(sink.fn)

	// set_field(tunnel_id=3) encodes ingress port 3 in the GRE key.
	send(t, s1, &openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 1,
		Instructions: []openflow.Instruction{openflow.ApplyActions(
			openflow.SetTunnelAction(3), openflow.OutputAction(100))},
	})
	eng.RunUntil(10 * time.Millisecond)
	h1.Send(packet.NewTCP(ipA, ipB, 5, 80, packet.FlagSYN))
	eng.RunUntil(time.Second)

	var pin *openflow.PacketIn
	for _, m := range sink.msgs {
		if p, ok := m.(*openflow.PacketIn); ok {
			pin = p
		}
	}
	if pin == nil {
		t.Fatal("no packet-in at s2")
	}
	if pin.Match.TunnelID != 9 || pin.Cookie != 3 {
		t.Fatalf("tunnel=%d key=%d, want 9/3", pin.Match.TunnelID, pin.Cookie)
	}
}

func TestSelectGroupSplitsFlows(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s1", 1, fastProfile())
	h1 := NewHost(eng, "h1", ipA, netaddr.MakeMAC(1))
	hA := NewHost(eng, "ha", netaddr.MakeIPv4(10, 0, 9, 1), netaddr.MakeMAC(11))
	hB := NewHost(eng, "hb", netaddr.MakeIPv4(10, 0, 9, 2), netaddr.MakeMAC(12))
	Connect(h1, 1, sw, 1, LinkConfig{})
	Connect(sw, 2, hA, 1, LinkConfig{})
	Connect(sw, 3, hB, 1, LinkConfig{})
	var gotA, gotB int
	hA.OnReceive = func(*packet.Packet, sim.Time) { gotA++ }
	hB.OnReceive = func(*packet.Packet, sim.Time) { gotB++ }
	// Hosts check IP destination; spray to broadcast MAC via group.
	send(t, sw, &openflow.GroupMod{
		Command: openflow.GroupAdd, GroupType: openflow.GroupTypeSelect, GroupID: 5,
		Buckets: []openflow.Bucket{
			{Actions: []openflow.Action{openflow.OutputAction(2)}},
			{Actions: []openflow.Action{openflow.OutputAction(3)}},
		},
	})
	send(t, sw, &openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 1,
		Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.GroupAction(5))},
	})
	eng.RunUntil(10 * time.Millisecond)
	for i := 0; i < 200; i++ {
		p := packet.NewTCP(netaddr.IPv4(i+1), netaddr.MakeIPv4(10, 0, 9, 1), uint16(i), 80, 0)
		p.Eth.Dst = netaddr.Broadcast
		h1.Send(p)
	}
	eng.RunUntil(time.Second)
	if gotA+gotB != 200 {
		t.Fatalf("delivered %d+%d, want 200", gotA, gotB)
	}
	if gotA < 50 || gotB < 50 {
		t.Fatalf("select group unbalanced: %d vs %d", gotA, gotB)
	}
}

func TestStallFractionShape(t *testing.T) {
	p := Pica8Profile()
	if f := p.StallFraction(0); f != 0 {
		t.Fatalf("stall(0) = %v", f)
	}
	if f := p.StallFraction(1000); f > 0.05 {
		t.Fatalf("stall below knee = %v, want small", f)
	}
	if f := p.StallFraction(1500); f < 0.9 {
		t.Fatalf("stall above knee = %v, want >= 0.9", f)
	}
	if f := p.StallFraction(10000); f > 0.99 {
		t.Fatalf("stall = %v, must stay below 1", f)
	}
	ovs := OVSProfile()
	if f := ovs.StallFraction(1e6); f != 0 {
		t.Fatalf("OVS must not stall, got %v", f)
	}
}

func TestFirewallStatefulness(t *testing.T) {
	eng := sim.New(1)
	fw := NewFirewall(eng, "fw", 100*time.Microsecond)
	h1 := NewHost(eng, "h1", ipA, netaddr.MakeMAC(1))
	h2 := NewHost(eng, "h2", ipB, netaddr.MakeMAC(2))
	Connect(h1, 1, fw, 1, LinkConfig{})
	Connect(fw, 2, h2, 1, LinkConfig{})

	// Mid-flow packet without established state: rejected.
	h1.Send(packet.NewTCP(ipA, ipB, 1000, 80, packet.FlagACK))
	eng.RunUntil(10 * time.Millisecond)
	if fw.Rejected != 1 || h2.Received != 0 {
		t.Fatalf("stateless packet passed: rejected=%d received=%d", fw.Rejected, h2.Received)
	}

	// SYN establishes state; subsequent packets pass.
	h1.Send(packet.NewTCP(ipA, ipB, 1000, 80, packet.FlagSYN))
	eng.RunUntil(20 * time.Millisecond)
	h1.Send(packet.NewTCP(ipA, ipB, 1000, 80, packet.FlagACK))
	eng.RunUntil(30 * time.Millisecond)
	if h2.Received != 2 || fw.StateCount() != 1 {
		t.Fatalf("established flow blocked: received=%d state=%d", h2.Received, fw.StateCount())
	}
}

func TestFirewallReverseDirection(t *testing.T) {
	eng := sim.New(1)
	fw := NewFirewall(eng, "fw", 0)
	h1 := NewHost(eng, "h1", ipA, netaddr.MakeMAC(1))
	h2 := NewHost(eng, "h2", ipB, netaddr.MakeMAC(2))
	Connect(h1, 1, fw, 1, LinkConfig{})
	Connect(fw, 2, h2, 1, LinkConfig{})
	h1.Send(packet.NewTCP(ipA, ipB, 1000, 80, packet.FlagSYN))
	eng.RunUntil(10 * time.Millisecond)
	// Reverse direction of the established flow passes without a SYN.
	h2.Send(packet.NewTCP(ipB, ipA, 80, 1000, packet.FlagSYN|packet.FlagACK))
	eng.RunUntil(20 * time.Millisecond)
	if h1.Received != 1 {
		t.Fatalf("reverse packet blocked: received=%d rejected=%d", h1.Received, fw.Rejected)
	}
}

func TestLoadBalancerConsistentMapping(t *testing.T) {
	eng := sim.New(1)
	vip := netaddr.MakeIPv4(10, 9, 9, 9)
	b1 := netaddr.MakeIPv4(10, 0, 5, 1)
	b2 := netaddr.MakeIPv4(10, 0, 5, 2)
	lb := NewLoadBalancer(eng, "lb", vip, []netaddr.IPv4{b1, b2}, 0)
	h1 := NewHost(eng, "h1", ipA, netaddr.MakeMAC(1))
	sink := NewHost(eng, "sink", b1, netaddr.MakeMAC(2))
	Connect(h1, 1, lb, 1, LinkConfig{})
	Connect(lb, 2, sink, 1, LinkConfig{})

	var dsts []netaddr.IPv4
	sink.OnReceive = func(p *packet.Packet, _ sim.Time) { dsts = append(dsts, p.IP.Dst) }
	sink.IP = b1 // only capture backend-1 flows; mapping determinism checked below

	for i := 0; i < 3; i++ {
		h1.Send(packet.NewTCP(ipA, vip, 1000, 80, 0))
	}
	eng.RunUntil(time.Second)
	if len(lb.mapping) != 1 {
		t.Fatalf("mapping entries = %d, want 1", len(lb.mapping))
	}
	for _, d := range dsts {
		if d != b1 && d != b2 {
			t.Fatalf("unexpected backend %v", d)
		}
	}
}
