package device

import (
	"scotch/internal/netaddr"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

// Host is an end host: it sources and sinks traffic on a single port.
type Host struct {
	name  string
	proc  sim.Proc
	IP    netaddr.IPv4
	MAC   netaddr.MAC
	ports []*Port

	Received uint64
	Sent     uint64

	// OnReceive observes every packet delivered to this host.
	OnReceive func(pkt *packet.Packet, now sim.Time)
}

// NewHost creates a host with the given address.
func NewHost(eng sim.Proc, name string, ip netaddr.IPv4, mac netaddr.MAC) *Host {
	return &Host{name: name, proc: eng, IP: ip, MAC: mac}
}

// Name implements Node.
func (h *Host) Name() string { return h.name }

// Proc implements Node.
func (h *Host) Proc() sim.Proc { return h.proc }

func (h *Host) attachPort(p *Port) { h.ports = append(h.ports, p) }

func (h *Host) detachPort(p *Port) {
	for i, q := range h.ports {
		if q == p {
			h.ports = append(h.ports[:i], h.ports[i+1:]...)
			return
		}
	}
}

// Port returns the host's primary attachment port (the first connected),
// or nil. Additional ports terminate Scotch delivery tunnels.
func (h *Host) Port() *Port {
	if len(h.ports) == 0 {
		return nil
	}
	return h.ports[0]
}

// Receive implements Node.
func (h *Host) Receive(pkt *packet.Packet, _ *Port) {
	// Hosts accept anything addressed to them (or broadcast); stray
	// packets are dropped silently, as a NIC would.
	if pkt.IP.Dst != h.IP && !pkt.Eth.Dst.IsBroadcast() {
		return
	}
	h.Received++
	if h.OnReceive != nil {
		h.OnReceive(pkt, h.proc.Now())
	}
}

// Send stamps the packet with the host's source addresses and transmits it.
func (h *Host) Send(pkt *packet.Packet) {
	if len(h.ports) == 0 {
		return
	}
	pkt.Eth.Src = h.MAC
	h.Sent++
	h.ports[0].Send(pkt, 0)
}
