package device

import (
	"testing"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

// noopAgent is a LocalAgent that declines every miss, exercising the
// attached-but-escalating path.
type noopAgent struct{ calls int }

func (a *noopAgent) HandleMiss(*packet.Packet, uint32) bool { a.calls++; return false }

// allocProfile shapes the switch so the steady-state miss path stays
// inside pre-warmed pools: the data plane is fast, the OFA's Packet-In
// stage is effectively stalled (so queued misses never reach the
// allocating marshal step), and its tiny queue overflows to the no-op
// drop counter.
func allocProfile() Profile {
	return Profile{
		Name:           "alloc-test",
		DataPlanePPS:   1e7,
		DataQueue:      64,
		PacketInRate:   1e-3,
		PacketInQueue:  2,
		RuleInsertRate: 1000,
		RuleQueue:      16,
		NumTables:      1,
	}
}

// TestMissPathAllocFreeWithoutAgent pins the devolution satellite
// contract: with no LocalAgent attached (devolution disabled), the
// vSwitch table-miss hot path allocates nothing per packet — the added
// hook is one nil check. Same pattern as TestServerUntracedAllocFree.
func TestMissPathAllocFreeWithoutAgent(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "vs", 1, allocProfile())
	port := &Port{ID: 3, Owner: sw}
	pkt := packet.NewTCP(netaddr.MakeIPv4(10, 0, 0, 5), netaddr.MakeIPv4(10, 0, 2, 1), 1000, 80, 0)
	now := eng.Now()
	// Warm up: fill the Packet-In queue and the engine/server free lists.
	for i := 0; i < 16; i++ {
		sw.Receive(pkt, port)
		now += time.Microsecond
		eng.RunUntil(now)
	}
	avg := testing.AllocsPerRun(1000, func() {
		sw.Receive(pkt, port)
		now += time.Microsecond
		eng.RunUntil(now)
	})
	if avg != 0 {
		t.Fatalf("miss path allocates %.2f objects/packet with devolution off, want 0", avg)
	}
	if sw.LocalAgentAttached() {
		t.Fatal("no agent was attached")
	}
	if sw.Stats.Misses == 0 {
		t.Fatal("workload generated no table misses")
	}
}

// TestMissPathAllocFreeWithDecliningAgent extends the pin to an
// attached agent that escalates everything: the dispatch itself must
// not allocate either.
func TestMissPathAllocFreeWithDecliningAgent(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "vs", 1, allocProfile())
	agent := &noopAgent{}
	sw.SetLocalAgent(agent)
	port := &Port{ID: 3, Owner: sw}
	pkt := packet.NewTCP(netaddr.MakeIPv4(10, 0, 0, 5), netaddr.MakeIPv4(10, 0, 2, 1), 1000, 80, 0)
	now := eng.Now()
	for i := 0; i < 16; i++ {
		sw.Receive(pkt, port)
		now += time.Microsecond
		eng.RunUntil(now)
	}
	avg := testing.AllocsPerRun(1000, func() {
		sw.Receive(pkt, port)
		now += time.Microsecond
		eng.RunUntil(now)
	})
	if avg != 0 {
		t.Fatalf("miss path allocates %.2f objects/packet via declining agent, want 0", avg)
	}
	if agent.calls == 0 {
		t.Fatal("agent was never consulted")
	}
}
