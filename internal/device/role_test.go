package device

import (
	"testing"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

// roleConn attaches one connection to sw and returns its id plus a sink of
// decoded messages delivered on it.
func roleConn(t *testing.T, sw *Switch) (int, *ctrlSink) {
	t.Helper()
	sink := &ctrlSink{t: t}
	return sw.AttachController(sink.fn), sink
}

func sendFrom(t *testing.T, sw *Switch, conn int, m openflow.Message, xid uint32) {
	t.Helper()
	b, err := openflow.Marshal(m, xid)
	if err != nil {
		t.Fatal(err)
	}
	sw.DeliverControlFrom(conn, b)
}

func TestRoleMasterClaimDemotesPreviousMaster(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s1", 1, fastProfile())
	c1, s1 := roleConn(t, sw)
	c2, s2 := roleConn(t, sw)

	sendFrom(t, sw, c1, &openflow.RoleRequest{Role: openflow.RoleMaster, GenerationID: 1}, 10)
	eng.RunUntil(10 * time.Millisecond)
	if r, _ := sw.ControllerRole(c1); r != openflow.RoleMaster {
		t.Fatalf("conn1 role = %s, want master", openflow.RoleName(r))
	}

	sendFrom(t, sw, c2, &openflow.RoleRequest{Role: openflow.RoleMaster, GenerationID: 2}, 11)
	eng.RunUntil(20 * time.Millisecond)
	if r, _ := sw.ControllerRole(c2); r != openflow.RoleMaster {
		t.Fatalf("conn2 role = %s, want master", openflow.RoleName(r))
	}
	if r, _ := sw.ControllerRole(c1); r != openflow.RoleSlave {
		t.Fatalf("conn1 role after second claim = %s, want slave", openflow.RoleName(r))
	}
	if s1.count(openflow.TypeRoleReply) != 1 || s2.count(openflow.TypeRoleReply) != 1 {
		t.Fatalf("role replies: conn1=%d conn2=%d, want 1 each",
			s1.count(openflow.TypeRoleReply), s2.count(openflow.TypeRoleReply))
	}
}

func TestRoleStaleGenerationFenced(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s1", 1, fastProfile())
	c1, _ := roleConn(t, sw)
	c2, s2 := roleConn(t, sw)

	sendFrom(t, sw, c1, &openflow.RoleRequest{Role: openflow.RoleMaster, GenerationID: 5}, 1)
	// A fenced-off controller retries with an older generation: rejected.
	sendFrom(t, sw, c2, &openflow.RoleRequest{Role: openflow.RoleMaster, GenerationID: 4}, 2)
	eng.RunUntil(10 * time.Millisecond)

	if r, _ := sw.ControllerRole(c1); r != openflow.RoleMaster {
		t.Fatalf("conn1 lost mastership to a stale claim (role=%s)", openflow.RoleName(r))
	}
	if sw.Stats.RoleStale != 1 {
		t.Fatalf("RoleStale = %d, want 1", sw.Stats.RoleStale)
	}
	var gotErr *openflow.Error
	for _, m := range s2.msgs {
		if e, ok := m.(*openflow.Error); ok {
			gotErr = e
		}
	}
	if gotErr == nil || gotErr.ErrType != openflow.ErrTypeRoleRequestFailed || gotErr.Code != openflow.ErrCodeRoleStale {
		t.Fatalf("stale claim error = %+v, want role-request-failed/stale", gotErr)
	}
}

func TestSlaveWritesRejectedAndNoAsyncDelivery(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s1", 1, fastProfile())
	h1 := NewHost(eng, "h1", ipA, netaddr.MakeMAC(1))
	h2 := NewHost(eng, "h2", ipB, netaddr.MakeMAC(2))
	Connect(h1, 1, sw, 1, LinkConfig{Delay: time.Millisecond})
	Connect(sw, 2, h2, 1, LinkConfig{Delay: time.Millisecond})

	cm, master := roleConn(t, sw)
	cs, slave := roleConn(t, sw)
	sendFrom(t, sw, cm, &openflow.RoleRequest{Role: openflow.RoleMaster, GenerationID: 1}, 1)
	sendFrom(t, sw, cs, &openflow.RoleRequest{Role: openflow.RoleSlave, GenerationID: 1}, 2)
	eng.RunUntil(5 * time.Millisecond)

	// A table miss punts to the master only.
	h1.Send(packet.NewTCP(ipA, ipB, 1, 2, packet.FlagSYN))
	eng.RunUntil(50 * time.Millisecond)
	if master.count(openflow.TypePacketIn) != 1 {
		t.Fatalf("master packet-ins = %d, want 1", master.count(openflow.TypePacketIn))
	}
	if slave.count(openflow.TypePacketIn) != 0 {
		t.Fatalf("slave received %d packet-ins, want 0", slave.count(openflow.TypePacketIn))
	}

	// A slave FlowMod bounces with is-slave and installs nothing.
	installed := sw.Stats.RulesInstalled
	sendFrom(t, sw, cs, &openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 5,
		Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.OutputAction(2))},
	}, 3)
	eng.RunUntil(100 * time.Millisecond)
	if sw.Stats.RulesInstalled != installed {
		t.Fatalf("slave FlowMod installed a rule")
	}
	if sw.Stats.SlaveDenied != 1 {
		t.Fatalf("SlaveDenied = %d, want 1", sw.Stats.SlaveDenied)
	}
	var gotErr *openflow.Error
	for _, m := range slave.msgs {
		if e, ok := m.(*openflow.Error); ok {
			gotErr = e
		}
	}
	if gotErr == nil || gotErr.ErrType != openflow.ErrTypeBadRequest || gotErr.Code != openflow.ErrCodeIsSlave {
		t.Fatalf("slave write error = %+v, want bad-request/is-slave", gotErr)
	}
}

func TestDetachControllerDropsInFlight(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s1", 1, fastProfile())
	c1, _ := roleConn(t, sw)
	installed := sw.Stats.RulesInstalled
	sendFrom(t, sw, c1, &openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 5,
		Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.OutputAction(1))},
	}, 1)
	sw.DetachController(c1) // torn down before the message lands
	eng.RunUntil(10 * time.Millisecond)
	if sw.Stats.RulesInstalled != installed {
		t.Fatalf("in-flight FlowMod from a detached connection was applied")
	}
}
