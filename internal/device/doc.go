// Package device models the network elements of a Scotch deployment: SDN
// switches (hardware and virtual) with rate-limited OpenFlow Agents,
// links, MPLS/GRE tunnels, end hosts, and stateful middleboxes.
//
// The central fidelity point, taken from the paper's measurements (§3.1),
// is that a switch is *two* machines: a fast data plane (flow-table
// lookups at line rate) and a slow control agent (the OFA) whose
// Packet-In generation and rule-insertion rates are orders of magnitude
// lower. Both are modelled as finite-queue servers on the simulation
// engine, with per-model constants in profiles.go. Links and tunnels can
// be forced administratively down and switches crashed/restarted by the
// fault-injection harness (internal/fault); a switch can also carry a
// message-level fault policy on its control channels.
package device
