// Package capture is the simulator's tcpdump: it records per-flow send
// and receive events at the hosts and computes the paper's measurement
// quantities — most importantly the "client flow failure fraction", the
// fraction of a traffic class's flows that never reach their destination,
// which is the y-axis of the paper's evaluation figures (§3.2, §6).
package capture
