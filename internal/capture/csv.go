package capture

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"
)

// WriteCSV dumps every flow record ("" = all classes) as CSV, sorted by
// flow id, for offline analysis of experiment runs.
func (c *Capture) WriteCSV(w io.Writer, class string) error {
	flows := c.Flows(class)
	sort.Slice(flows, func(i, j int) bool { return flows[i].ID < flows[j].ID })
	cw := csv.NewWriter(w)
	header := []string{
		"id", "class", "src", "sport", "dst", "dport", "proto",
		"expected", "sent", "recv", "bytes_sent", "bytes_recv",
		"first_sent_s", "first_recv_s", "last_recv_s", "delivered", "completed",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, f := range flows {
		rec := []string{
			strconv.FormatUint(f.ID, 10),
			f.Class,
			f.Key.Src.String(),
			strconv.Itoa(int(f.Key.SrcPort)),
			f.Key.Dst.String(),
			strconv.Itoa(int(f.Key.DstPort)),
			strconv.Itoa(int(f.Key.Proto)),
			strconv.Itoa(f.Expected),
			strconv.Itoa(f.PacketsSent),
			strconv.Itoa(f.PacketsRecv),
			strconv.FormatUint(f.BytesSent, 10),
			strconv.FormatUint(f.BytesRecv, 10),
			strconv.FormatFloat(f.FirstSent.Seconds(), 'f', 6, 64),
			strconv.FormatFloat(f.FirstRecv.Seconds(), 'f', 6, 64),
			strconv.FormatFloat(f.LastRecv.Seconds(), 'f', 6, 64),
			strconv.FormatBool(f.Delivered()),
			strconv.FormatBool(f.Completed()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
