package capture

import (
	"scotch/internal/device"
	"scotch/internal/metrics"
	"scotch/internal/netaddr"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

// FlowRecord tracks one flow end to end.
type FlowRecord struct {
	ID    uint64
	Key   netaddr.FlowKey
	Class string // traffic class ("client", "attack", ...)

	Expected    int // packets the source will send
	PacketsSent int
	BytesSent   uint64
	PacketsRecv int
	BytesRecv   uint64

	FirstSent sim.Time
	FirstRecv sim.Time
	LastRecv  sim.Time
}

// Delivered reports whether at least one packet of the flow arrived.
func (f *FlowRecord) Delivered() bool { return f.PacketsRecv > 0 }

// Completed reports whether every sent packet arrived.
func (f *FlowRecord) Completed() bool {
	return f.PacketsSent > 0 && f.PacketsRecv >= f.PacketsSent && f.PacketsSent >= f.Expected
}

// Capture aggregates flow records for one experiment.
type Capture struct {
	eng sim.Proc
	// flows indexes records by flow ID: IDs are dense (1, 2, 3, ...), so
	// record i lives at flows[i-1]. arena is the current allocation block
	// records are carved from, so registering a flow costs one heap
	// allocation per block of flows rather than one per flow.
	flows   []*FlowRecord
	arena   []FlowRecord
	byKey   map[netaddr.FlowKey]*FlowRecord
	latency map[string]*metrics.Histogram // per-class one-way packet delay
	nextID  uint64

	// OnFirstDelivery, when set, fires once per flow at the moment its
	// first packet is delivered — the flow-setup completion event the
	// scenario engine's latency trackers observe (now - f.FirstSent spans
	// Packet-In → RuleApplied → Delivered).
	OnFirstDelivery func(f *FlowRecord, now sim.Time)
}

// New returns an empty capture.
func New(eng sim.Proc) *Capture {
	return &Capture{
		eng:     eng,
		byKey:   make(map[netaddr.FlowKey]*FlowRecord),
		latency: make(map[string]*metrics.Histogram),
	}
}

// NewFlow registers a flow about to be sent and returns its record. The
// returned record's ID must be stamped into packet Meta.FlowID.
func (c *Capture) NewFlow(key netaddr.FlowKey, class string, expected int) *FlowRecord {
	c.nextID++
	if len(c.arena) == 0 {
		c.arena = make([]FlowRecord, 256)
	}
	f := &c.arena[0]
	c.arena = c.arena[1:]
	*f = FlowRecord{ID: c.nextID, Key: key, Class: class, Expected: expected, FirstSent: c.eng.Now()}
	c.flows = append(c.flows, f)
	c.byKey[key] = f
	return f
}

// RecordSend notes the transmission of a packet belonging to a registered
// flow (identified through Meta.FlowID).
func (c *Capture) RecordSend(pkt *packet.Packet) {
	if f := c.lookup(pkt); f != nil {
		if f.PacketsSent == 0 {
			f.FirstSent = c.eng.Now()
		}
		f.PacketsSent++
		f.BytesSent += uint64(pkt.Size)
	}
}

// lookup resolves a packet to its flow record. Metadata is preferred, but
// packets that crossed a Packet-In/Packet-Out wire round trip lose their
// simulation metadata, so the 5-tuple is the fallback identity.
func (c *Capture) lookup(pkt *packet.Packet) *FlowRecord {
	if id := pkt.Meta.FlowID; id >= 1 && id <= uint64(len(c.flows)) {
		return c.flows[id-1]
	}
	return c.byKey[pkt.FlowKey()]
}

// RecordRecv notes the delivery of a packet belonging to a registered flow.
func (c *Capture) RecordRecv(pkt *packet.Packet, now sim.Time) {
	if f := c.lookup(pkt); f != nil {
		if f.PacketsRecv == 0 {
			f.FirstRecv = now
			if c.OnFirstDelivery != nil {
				c.OnFirstDelivery(f, now)
			}
		}
		f.PacketsRecv++
		f.BytesRecv += uint64(pkt.Size)
		f.LastRecv = now
		if pkt.Meta.SentAt > 0 {
			h := c.latency[f.Class]
			if h == nil {
				h = &metrics.Histogram{}
				c.latency[f.Class] = h
			}
			h.AddDuration(now - pkt.Meta.SentAt)
		}
	}
}

// PacketLatency returns the one-way packet delay distribution (seconds)
// observed for a class. Packets that crossed a Packet-In/Packet-Out round
// trip lose their send timestamp and are not included.
func (c *Capture) PacketLatency(class string) *metrics.Histogram {
	if h := c.latency[class]; h != nil {
		return h
	}
	return &metrics.Histogram{}
}

// Attach hooks the capture into a host's receive path, chaining any
// existing observer.
func (c *Capture) Attach(h *device.Host) {
	prev := h.OnReceive
	h.OnReceive = func(pkt *packet.Packet, now sim.Time) {
		c.RecordRecv(pkt, now)
		if prev != nil {
			prev(pkt, now)
		}
	}
}

// eachFlow visits the class's records ("" = all) in flow-creation order.
// Aggregates must not inherit map iteration order: histogram fills and
// float sums would differ between byte-identical reruns.
func (c *Capture) eachFlow(class string, fn func(*FlowRecord)) {
	for _, f := range c.flows {
		if class != "" && f.Class != class {
			continue
		}
		fn(f)
	}
}

// Flows returns the records of a class ("" = all), in creation order.
func (c *Capture) Flows(class string) []*FlowRecord {
	var out []*FlowRecord
	c.eachFlow(class, func(f *FlowRecord) { out = append(out, f) })
	return out
}

// FailureFraction returns the fraction of the class's sent flows with zero
// delivered packets — the paper's headline metric.
func (c *Capture) FailureFraction(class string) float64 {
	sent, failed := 0, 0
	c.eachFlow(class, func(f *FlowRecord) {
		if f.PacketsSent == 0 {
			return
		}
		sent++
		if !f.Delivered() {
			failed++
		}
	})
	if sent == 0 {
		return 0
	}
	return float64(failed) / float64(sent)
}

// DeliveryRatio returns delivered packets / sent packets for a class.
func (c *Capture) DeliveryRatio(class string) float64 {
	var sent, recv int
	c.eachFlow(class, func(f *FlowRecord) {
		sent += f.PacketsSent
		recv += f.PacketsRecv
	})
	if sent == 0 {
		return 0
	}
	return float64(recv) / float64(sent)
}

// CompletionFraction returns the fraction of the class's flows that
// delivered every packet.
func (c *Capture) CompletionFraction(class string) float64 {
	n, done := 0, 0
	c.eachFlow(class, func(f *FlowRecord) {
		if f.PacketsSent == 0 {
			return
		}
		n++
		if f.Completed() {
			done++
		}
	})
	if n == 0 {
		return 0
	}
	return float64(done) / float64(n)
}

// FCT returns the flow-completion-time distribution (seconds) of the
// class's completed flows.
func (c *Capture) FCT(class string) *metrics.Histogram {
	var h metrics.Histogram
	c.eachFlow(class, func(f *FlowRecord) {
		if f.Completed() {
			h.AddDuration(f.LastRecv - f.FirstSent)
		}
	})
	return &h
}

// FirstPacketLatency returns the distribution of first-packet delivery
// latencies (flow setup + transit) for delivered flows of the class.
func (c *Capture) FirstPacketLatency(class string) *metrics.Histogram {
	var h metrics.Histogram
	c.eachFlow(class, func(f *FlowRecord) {
		if f.Delivered() {
			h.AddDuration(f.FirstRecv - f.FirstSent)
		}
	})
	return &h
}

// Counts returns (flows sent, flows delivered) for a class.
func (c *Capture) Counts(class string) (sent, delivered int) {
	c.eachFlow(class, func(f *FlowRecord) {
		if f.PacketsSent == 0 {
			return
		}
		sent++
		if f.Delivered() {
			delivered++
		}
	})
	return sent, delivered
}
