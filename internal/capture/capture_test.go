package capture

import (
	"strings"
	"testing"
	"time"

	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

var (
	srcIP = netaddr.MakeIPv4(10, 0, 0, 1)
	dstIP = netaddr.MakeIPv4(10, 0, 1, 1)
)

func key(port uint16) netaddr.FlowKey {
	return netaddr.FlowKey{Src: srcIP, Dst: dstIP, Proto: netaddr.ProtoTCP, SrcPort: port, DstPort: 80}
}

func TestFlowLifecycle(t *testing.T) {
	eng := sim.New(1)
	c := New(eng)
	f := c.NewFlow(key(1), "client", 3)
	for i := 0; i < 3; i++ {
		p := packet.NewTCP(srcIP, dstIP, 1, 80, 0)
		p.Meta.FlowID = f.ID
		c.RecordSend(p)
		c.RecordRecv(p, eng.Now())
	}
	if !f.Delivered() || !f.Completed() {
		t.Fatalf("flow state: delivered=%v completed=%v", f.Delivered(), f.Completed())
	}
	if c.FailureFraction("client") != 0 || c.CompletionFraction("client") != 1 {
		t.Fatal("class metrics wrong")
	}
}

func TestLookupFallsBackToFlowKey(t *testing.T) {
	// Packets that crossed a Packet-In/Packet-Out wire round trip lose
	// their Meta; the capture must still attribute them via the 5-tuple.
	eng := sim.New(1)
	c := New(eng)
	f := c.NewFlow(key(9), "client", 1)
	p := packet.NewTCP(srcIP, dstIP, 9, 80, 0)
	p.Meta.FlowID = f.ID
	c.RecordSend(p)
	reparsed, err := packet.Parse(p.Marshal()) // Meta is gone
	if err != nil {
		t.Fatal(err)
	}
	if reparsed.Meta.FlowID != 0 {
		t.Fatal("meta survived the wire?")
	}
	c.RecordRecv(reparsed, 5*time.Millisecond)
	if f.PacketsRecv != 1 {
		t.Fatal("key-based lookup failed")
	}
}

func TestFailureFraction(t *testing.T) {
	eng := sim.New(1)
	c := New(eng)
	for i := 0; i < 10; i++ {
		f := c.NewFlow(key(uint16(100+i)), "attack", 1)
		p := packet.NewTCP(srcIP, dstIP, uint16(100+i), 80, 0)
		p.Meta.FlowID = f.ID
		c.RecordSend(p)
		if i < 3 { // only three delivered
			c.RecordRecv(p, eng.Now())
		}
	}
	if got := c.FailureFraction("attack"); got != 0.7 {
		t.Fatalf("failure fraction = %v, want 0.7", got)
	}
	if got := c.DeliveryRatio("attack"); got != 0.3 {
		t.Fatalf("delivery ratio = %v, want 0.3", got)
	}
	sent, delivered := c.Counts("attack")
	if sent != 10 || delivered != 3 {
		t.Fatalf("counts = %d/%d", sent, delivered)
	}
	// Unknown class is empty, not a divide-by-zero.
	if c.FailureFraction("nope") != 0 {
		t.Fatal("unknown class failure nonzero")
	}
}

func TestRegisteredButNeverSentExcluded(t *testing.T) {
	eng := sim.New(1)
	c := New(eng)
	c.NewFlow(key(1), "client", 1) // registered, zero packets sent
	if c.FailureFraction("client") != 0 {
		t.Fatal("unsent flow counted as failure")
	}
}

func TestFCTAndLatency(t *testing.T) {
	eng := sim.New(1)
	c := New(eng)
	f := c.NewFlow(key(5), "client", 2)
	p1 := packet.NewTCP(srcIP, dstIP, 5, 80, 0)
	p1.Meta.FlowID = f.ID
	p1.Meta.SentAt = 0
	c.RecordSend(p1)
	eng.RunUntil(2 * time.Millisecond)
	c.RecordRecv(p1, eng.Now())

	p2 := packet.NewTCP(srcIP, dstIP, 5, 80, 0)
	p2.Meta.FlowID = f.ID
	p2.Meta.SentAt = 8 * time.Millisecond
	c.RecordSend(p2)
	c.RecordRecv(p2, 10*time.Millisecond)

	fct := c.FCT("client")
	if fct.Count() != 1 {
		t.Fatalf("fct count = %d", fct.Count())
	}
	if got := fct.Quantile(0.5); got < 0.009 || got > 0.011 {
		t.Fatalf("fct = %v, want ~10ms", got)
	}
	first := c.FirstPacketLatency("client")
	if got := first.Quantile(0.5); got < 0.0019 || got > 0.0021 {
		t.Fatalf("first packet latency = %v, want ~2ms", got)
	}
	lat := c.PacketLatency("client")
	if lat.Count() != 1 { // only p2 carried SentAt
		t.Fatalf("latency samples = %d", lat.Count())
	}
	if got := lat.Quantile(0.5); got < 0.0019 || got > 0.0021 {
		t.Fatalf("packet latency = %v, want ~2ms", got)
	}
	if c.PacketLatency("empty").Count() != 0 {
		t.Fatal("unknown class latency not empty")
	}
}

func TestAttachChainsObservers(t *testing.T) {
	eng := sim.New(1)
	c := New(eng)
	h := device.NewHost(eng, "h", dstIP, netaddr.MakeMAC(1))
	observed := 0
	h.OnReceive = func(*packet.Packet, sim.Time) { observed++ }
	c.Attach(h)

	f := c.NewFlow(key(3), "client", 1)
	src := device.NewHost(eng, "src", srcIP, netaddr.MakeMAC(2))
	device.Connect(src, 1, h, 1, device.LinkConfig{})
	p := packet.NewTCP(srcIP, dstIP, 3, 80, 0)
	p.Meta.FlowID = f.ID
	c.RecordSend(p)
	src.Send(p)
	eng.RunUntil(time.Second)

	if f.PacketsRecv != 1 {
		t.Fatal("capture did not record the delivery")
	}
	if observed != 1 {
		t.Fatal("original observer was not chained")
	}
}

func TestFlowsByClass(t *testing.T) {
	eng := sim.New(1)
	c := New(eng)
	c.NewFlow(key(1), "a", 1)
	c.NewFlow(key(2), "b", 1)
	c.NewFlow(key(3), "a", 1)
	if got := len(c.Flows("a")); got != 2 {
		t.Fatalf("class a flows = %d", got)
	}
	if got := len(c.Flows("")); got != 3 {
		t.Fatalf("all flows = %d", got)
	}
}

func TestWriteCSV(t *testing.T) {
	eng := sim.New(1)
	c := New(eng)
	f := c.NewFlow(key(1), "client", 1)
	p := packet.NewTCP(srcIP, dstIP, 1, 80, 0)
	p.Meta.FlowID = f.ID
	c.RecordSend(p)
	c.RecordRecv(p, 3*time.Millisecond)
	c.NewFlow(key(2), "attack", 1)

	var buf strings.Builder
	if err := c.WriteCSV(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 flows
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "id,class,src") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "10.0.0.1") || !strings.Contains(lines[1], "true") {
		t.Fatalf("row = %q", lines[1])
	}
	// Class filter.
	buf.Reset()
	if err := c.WriteCSV(&buf, "attack"); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 2 {
		t.Fatalf("filtered csv lines = %d", got)
	}
}
