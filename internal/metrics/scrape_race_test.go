package metrics

import (
	"sync"
	"testing"
	"time"
)

// TestTimeSeriesConcurrentAddPoints hammers Add from writer goroutines
// while readers drain Points/RatePoints; run with -race. The final binned
// totals must account for every write.
func TestTimeSeriesConcurrentAddPoints(t *testing.T) {
	ts := NewTimeSeries(100 * time.Millisecond)
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Spread writes over ten bins so reads see zero-fill
				// ranges being extended concurrently.
				now := time.Duration(i%10)*100*time.Millisecond + time.Duration(w)
				ts.Add(now, 1)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = ts.Points()
			_ = ts.RatePoints()
		}
	}()
	wg.Wait()

	var total float64
	for _, p := range ts.Points() {
		total += p.V
	}
	if want := float64(writers * perWriter); total != want {
		t.Fatalf("binned total = %v, want %v", total, want)
	}
}

// TestBucketHistogramConcurrentScrape runs Observe against the full read
// surface (Counts, Quantile, Mean, String) under -race, then checks the
// totals. Complements TestBucketHistogramConcurrent by scraping the same
// methods the observatory's SLO evaluator uses.
func TestBucketHistogramConcurrentScrape(t *testing.T) {
	h := NewBucketHistogram(nil)
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(i%100)*1e-4 + float64(w)*1e-6)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			counts := h.Counts()
			var n uint64
			for _, c := range counts {
				n += c
			}
			if n > uint64(writers*perWriter) {
				t.Error("snapshot counted more samples than were written")
				return
			}
			_ = h.Quantile(0.99)
			_ = h.Mean()
			_ = h.String()
		}
	}()
	wg.Wait()
	if n := h.Count(); n != writers*perWriter {
		t.Fatalf("count = %d, want %d", n, writers*perWriter)
	}
}

// TestRateMeterConcurrentWrap exercises the sliding-window ring buffer's
// wrap path (advances far beyond the bucket count) while concurrent
// readers call Rate; run with -race.
func TestRateMeterConcurrentWrap(t *testing.T) {
	m := NewRateMeter(time.Second, 10)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			// Alternate small steps with jumps larger than the window so
			// advance() takes both its copy-shift and full-reset branches.
			now := time.Duration(i) * 100 * time.Millisecond
			if i%7 == 0 {
				now += 3 * time.Second
			}
			m.Add(now, 1)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			_ = m.Rate(time.Duration(i) * 100 * time.Millisecond)
			_ = m.Total()
		}
	}()
	wg.Wait()
	if m.Total() != 5000 {
		t.Fatalf("total = %v, want 5000", m.Total())
	}
}

// TestQuantileFromCountsOverflowClamp pins the interpolated quantile's
// overflow behavior: with every sample past the last bound, any quantile
// clamps to that bound instead of extrapolating, and windowed deltas
// (the observatory's use) behave the same as direct counts.
func TestQuantileFromCountsOverflowClamp(t *testing.T) {
	bounds := []float64{0.01, 0.1, 1}
	h := NewBucketHistogram(bounds)
	for i := 0; i < 100; i++ {
		h.Observe(50) // far past the last bound
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1 {
			t.Fatalf("Quantile(%v) = %v, want clamp to last bound 1", q, got)
		}
	}

	// Delta form: subtracting an earlier snapshot keeps the clamp.
	before := h.Counts()
	for i := 0; i < 10; i++ {
		h.Observe(2)
	}
	after := h.Counts()
	delta := make([]uint64, len(after))
	for i := range after {
		delta[i] = after[i] - before[i]
	}
	if got := QuantileFromCounts(bounds, delta, 0.99); got != 1 {
		t.Fatalf("delta Quantile(0.99) = %v, want 1", got)
	}
	if got := QuantileFromCounts(bounds, delta, 0); got <= 0 || got > 1 {
		t.Fatalf("delta Quantile(0) = %v, want within (0, 1]", got)
	}

	// Degenerate inputs are safe.
	if got := QuantileFromCounts(nil, delta, 0.5); got != 0 {
		t.Fatalf("no bounds: got %v, want 0", got)
	}
	if got := QuantileFromCounts(bounds, nil, 0.5); got != 0 {
		t.Fatalf("no counts: got %v, want 0", got)
	}
	if got := QuantileFromCounts(bounds, []uint64{0, 0, 0, 0}, 0.5); got != 0 {
		t.Fatalf("zero counts: got %v, want 0", got)
	}
}
