package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestRateMeterRateDoesNotMutate pins the telemetry-safety contract: an
// arbitrary number of interleaved Rate calls (e.g. HTTP scrapes) between
// Adds must not change any subsequent reading compared to a meter that was
// never scraped.
func TestRateMeterRateDoesNotMutate(t *testing.T) {
	scraped := NewRateMeter(time.Second, 10)
	clean := NewRateMeter(time.Second, 10)
	times := []time.Duration{
		0, 50 * time.Millisecond, 400 * time.Millisecond,
		time.Second, 2500 * time.Millisecond, time.Minute, time.Hour,
	}
	for i, now := range times {
		scraped.Add(now, float64(i+1))
		clean.Add(now, float64(i+1))
		// Scrape the first meter aggressively, including far-future
		// queries that would roll every bucket out if Rate advanced.
		scraped.Rate(now)
		scraped.Rate(now + 10*time.Second)
		scraped.Rate(now + time.Hour)
		for _, q := range times {
			if a, b := scraped.Rate(q), clean.Rate(q); a != b {
				t.Fatalf("after add %d: scraped.Rate(%v)=%v != clean %v", i, q, a, b)
			}
		}
	}
}

// TestRateMeterConcurrentReaders runs writers on one goroutine against
// telemetry readers on others; run with -race.
func TestRateMeterConcurrentReaders(t *testing.T) {
	m := NewRateMeter(time.Second, 10)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					m.Rate(time.Second)
					m.Total()
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		m.Add(time.Duration(i)*time.Millisecond, 1)
	}
	close(stop)
	wg.Wait()
	if m.Total() != 5000 {
		t.Fatalf("total = %v, want 5000", m.Total())
	}
}

// TestHistogramConcurrentQuantile races Adds against Quantile/Snapshot
// readers; run with -race. The cached sorted copy must never expose a
// partially sorted view.
func TestHistogramConcurrentQuantile(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					q := h.Quantile(0.99)
					if math.IsNaN(q) {
						t.Error("NaN quantile")
						return
					}
					s := h.Snapshot()
					for i := 1; i < len(s); i++ {
						if s[i] < s[i-1] {
							t.Error("snapshot not sorted")
							return
						}
					}
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		h.Add(float64(i % 97))
	}
	close(stop)
	wg.Wait()
	if h.Count() != 5000 {
		t.Fatalf("count = %d", h.Count())
	}
}

// TestHistogramQuantileDoesNotReorder confirms Quantile leaves the sample
// slice in insertion order (it sorts a cached copy), so code that mixes
// quantile queries with order-sensitive reads keeps seeing insertion order.
func TestHistogramQuantileDoesNotReorder(t *testing.T) {
	var h Histogram
	h.Add(3)
	h.Add(1)
	h.Add(2)
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("median = %v", q)
	}
	if h.samples[0] != 3 || h.samples[1] != 1 || h.samples[2] != 2 {
		t.Fatalf("samples reordered: %v", h.samples)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 9, 3} {
		h.Add(v)
	}
	s := h.Snapshot()
	if s.Count() != 4 {
		t.Fatalf("snapshot count = %d", s.Count())
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("snapshot min = %v", q)
	}
	if q := s.Quantile(1); q != 9 {
		t.Fatalf("snapshot max = %v", q)
	}
	// The snapshot is immutable: later Adds don't change it.
	h.Add(100)
	if s.Count() != 4 || s.Quantile(1) != 9 {
		t.Fatal("snapshot mutated by later Add")
	}
	var empty Histogram
	if s := empty.Snapshot(); s.Count() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot not zero")
	}
}

// TestTimeSeriesZeroFillLongGap covers zero-fill across a gap much longer
// than a single bin: every intermediate bin appears exactly once with V=0.
func TestTimeSeriesZeroFillLongGap(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Add(500*time.Millisecond, 2)
	ts.Add(100*time.Second+500*time.Millisecond, 7)
	pts := ts.Points()
	if len(pts) != 101 {
		t.Fatalf("points = %d, want 101", len(pts))
	}
	if pts[0].T != 0 || pts[0].V != 2 {
		t.Fatalf("first point = %+v", pts[0])
	}
	if last := pts[100]; last.T != 100*time.Second || last.V != 7 {
		t.Fatalf("last point = %+v", last)
	}
	for i := 1; i < 100; i++ {
		if pts[i].V != 0 {
			t.Fatalf("gap bin %d = %v, want 0", i, pts[i].V)
		}
		if pts[i].T != time.Duration(i)*time.Second {
			t.Fatalf("gap bin %d time = %v", i, pts[i].T)
		}
	}
}
