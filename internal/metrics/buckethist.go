package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// LatencyBuckets returns the default bucket bounds (seconds) for flow-setup
// latency histograms: log-spaced from 10µs to 10s, six buckets per decade.
// The range spans a quiet direct-path flow setup (~100µs) up to the
// multi-second Packet-In queueing delays of a saturated OFA.
func LatencyBuckets() []float64 {
	var b []float64
	for e := -5; e < 1; e++ {
		decade := math.Pow(10, float64(e))
		for _, m := range []float64{1, 1.5, 2.2, 3.3, 4.7, 6.8} {
			b = append(b, m*decade)
		}
	}
	return append(b, 10)
}

// BucketHistogram is a fixed-bucket histogram with atomic counters, modeled
// on the tracking histograms of load-test drivers: writers on the hot path
// pay two atomic adds, readers estimate quantiles from the bucket counts
// without ever locking writers out. Unlike Histogram it never stores raw
// samples, so a million-flow scenario costs a fixed few hundred bytes per
// tenant regardless of flow count.
//
// Bounds are upper bucket edges in ascending order; a sample lands in the
// first bucket whose bound is >= the value, or in the implicit overflow
// bucket past the last bound. Observe is safe for concurrent use with
// itself and with every read method.
type BucketHistogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	total   atomic.Uint64
	sumBits atomic.Uint64
}

// NewBucketHistogram returns a histogram with the given bounds (a private
// copy is taken). Nil or empty bounds select LatencyBuckets. It panics if
// bounds are not strictly ascending or not finite.
func NewBucketHistogram(bounds []float64) *BucketHistogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets()
	}
	b := append([]float64(nil), bounds...)
	for i, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic("metrics: non-finite bucket bound")
		}
		if i > 0 && v <= b[i-1] {
			panic("metrics: bucket bounds not strictly ascending")
		}
	}
	return &BucketHistogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *BucketHistogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration sample in seconds.
func (h *BucketHistogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of samples, including overflowed ones.
func (h *BucketHistogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *BucketHistogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the sample mean, or 0 with no samples.
func (h *BucketHistogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Bounds returns the bucket upper bounds (not a copy; do not mutate).
func (h *BucketHistogram) Bounds() []float64 { return h.bounds }

// Counts returns a point-in-time copy of the per-bucket counts; the last
// entry is the overflow bucket.
func (h *BucketHistogram) Counts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Overflow returns the number of samples past the last bound.
func (h *BucketHistogram) Overflow() uint64 {
	return h.counts[len(h.counts)-1].Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the bucket holding the target rank; the first bucket interpolates
// from zero (bounds here are nonnegative latencies). Samples in the
// overflow bucket are clamped to the last bound, so quantiles never
// extrapolate past the histogram's range. Returns 0 with no samples.
func (h *BucketHistogram) Quantile(q float64) float64 {
	return QuantileFromCounts(h.bounds, h.Counts(), q)
}

// QuantileFromCounts estimates the q-quantile from a per-bucket count
// vector over the given bounds, with the same interpolation and
// overflow-clamp rules as BucketHistogram.Quantile. counts may have
// len(bounds) or len(bounds)+1 entries; a final extra entry is the
// overflow bucket. It is the building block for windowed quantiles: the
// caller differences two Counts() snapshots and asks for the quantile of
// the samples that arrived in between. Returns 0 with no samples.
func QuantileFromCounts(bounds []float64, counts []uint64, q float64) float64 {
	if len(bounds) == 0 {
		return 0
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: clamp to the largest bound.
			return bounds[len(bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		upper := bounds[i]
		return lower + (upper-lower)*(rank-prev)/float64(c)
	}
	return bounds[len(bounds)-1]
}

// Merge adds every bucket of o into h (for aggregating per-tenant or
// per-shard histograms). The two histograms must share identical bounds.
func (h *BucketHistogram) Merge(o *BucketHistogram) error {
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("metrics: merge of mismatched histograms (%d vs %d buckets)",
			len(h.bounds), len(o.bounds))
	}
	for i, b := range h.bounds {
		if b != o.bounds[i] {
			return fmt.Errorf("metrics: merge of mismatched histograms (bound %d: %v vs %v)",
				i, b, o.bounds[i])
		}
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n > 0 {
			h.counts[i].Add(n)
			h.total.Add(n)
		}
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + o.Sum())
		if h.sumBits.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// String summarizes the distribution.
func (h *BucketHistogram) String() string {
	return fmt.Sprintf("n=%d mean=%.6f p50=%.6f p99=%.6f overflow=%d",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Overflow())
}
