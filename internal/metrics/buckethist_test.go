package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketHistogramEmpty(t *testing.T) {
	h := NewBucketHistogram(nil)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Overflow() != 0 {
		t.Fatalf("fresh histogram not zero: %s", h)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestBucketHistogramSingleSample(t *testing.T) {
	h := NewBucketHistogram([]float64{1, 2, 4})
	h.Observe(1.5)
	if h.Count() != 1 || h.Sum() != 1.5 || h.Mean() != 1.5 {
		t.Fatalf("count/sum/mean = %d/%v/%v", h.Count(), h.Sum(), h.Mean())
	}
	// Every quantile of a single sample interpolates inside its (1, 2]
	// bucket, landing on the upper edge (rank is clamped to >= 1 sample).
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 2 {
			t.Errorf("Quantile(%v) = %v, want bucket edge 2", q, got)
		}
	}
	// Negative and >1 q clamp rather than misbehave.
	if h.Quantile(-3) != h.Quantile(0) || h.Quantile(7) != h.Quantile(1) {
		t.Error("out-of-range q not clamped")
	}
}

func TestBucketHistogramOverflow(t *testing.T) {
	h := NewBucketHistogram([]float64{1, 2})
	h.Observe(100)
	h.Observe(3)
	h.Observe(0.5)
	if h.Overflow() != 2 {
		t.Fatalf("overflow = %d, want 2", h.Overflow())
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	// Overflowed samples clamp the quantile to the last bound — it must
	// never extrapolate past the histogram's range.
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("p99 with overflow = %v, want clamp to 2", got)
	}
	counts := h.Counts()
	if len(counts) != 3 || counts[0] != 1 || counts[1] != 0 || counts[2] != 2 {
		t.Errorf("counts = %v, want [1 0 2]", counts)
	}
}

func TestBucketHistogramBoundaryPlacement(t *testing.T) {
	h := NewBucketHistogram([]float64{1, 2})
	h.Observe(1) // exactly on a bound lands in that bucket (upper edge is inclusive)
	h.Observe(2)
	if c := h.Counts(); c[0] != 1 || c[1] != 1 || c[2] != 0 {
		t.Errorf("boundary samples landed in %v, want [1 1 0]", c)
	}
}

func TestBucketHistogramQuantileInterpolation(t *testing.T) {
	h := NewBucketHistogram([]float64{10, 20, 30})
	for i := 0; i < 100; i++ {
		h.Observe(15) // all in the (10, 20] bucket
	}
	// Rank q*100 interpolates linearly across the bucket: p50 → middle.
	if got := h.Quantile(0.5); math.Abs(got-15) > 1e-9 {
		t.Errorf("p50 = %v, want 15", got)
	}
	if got := h.Quantile(1); math.Abs(got-20) > 1e-9 {
		t.Errorf("p100 = %v, want 20", got)
	}
	// First bucket interpolates from zero.
	g := NewBucketHistogram([]float64{10, 20})
	for i := 0; i < 10; i++ {
		g.Observe(1)
	}
	if got := g.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("first-bucket p50 = %v, want 5", got)
	}
}

func TestBucketHistogramMerge(t *testing.T) {
	a := NewBucketHistogram([]float64{1, 2, 4})
	b := NewBucketHistogram([]float64{1, 2, 4})
	a.Observe(0.5)
	a.Observe(3)
	b.Observe(1.5)
	b.Observe(100)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 4 {
		t.Fatalf("merged count = %d, want 4", a.Count())
	}
	if math.Abs(a.Sum()-105) > 1e-9 {
		t.Fatalf("merged sum = %v, want 105", a.Sum())
	}
	if a.Overflow() != 1 {
		t.Fatalf("merged overflow = %d, want 1", a.Overflow())
	}
	// b is untouched.
	if b.Count() != 2 {
		t.Fatalf("merge mutated its source: count = %d", b.Count())
	}
	// Mismatched bounds are rejected, not silently mangled.
	for _, other := range []*BucketHistogram{
		NewBucketHistogram([]float64{1, 2}),
		NewBucketHistogram([]float64{1, 2, 5}),
	} {
		if err := a.Merge(other); err == nil {
			t.Error("merge of mismatched bounds accepted")
		}
	}
}

func TestBucketHistogramBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"descending": {2, 1},
		"duplicate":  {1, 1},
		"nan":        {1, math.NaN()},
		"inf":        {1, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v bounds accepted", name)
				}
			}()
			NewBucketHistogram(bounds)
		}()
	}
}

func TestBucketHistogramObserveDuration(t *testing.T) {
	h := NewBucketHistogram(nil)
	h.ObserveDuration(150 * time.Millisecond)
	if math.Abs(h.Sum()-0.15) > 1e-12 {
		t.Errorf("duration sum = %v, want 0.15", h.Sum())
	}
	if h.Overflow() != 0 {
		t.Error("150ms overflowed the default latency buckets")
	}
}

// TestBucketHistogramConcurrent hammers Observe from many goroutines while
// a reader scrapes quantiles and merges — run under -race this pins the
// lock-free contract.
func TestBucketHistogramConcurrent(t *testing.T) {
	h := NewBucketHistogram([]float64{0.25, 0.5, 0.75, 1})
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		agg := NewBucketHistogram([]float64{0.25, 0.5, 0.75, 1})
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = h.Quantile(0.99)
			_ = h.Counts()
			_ = h.Mean()
			_ = agg.Merge(h)
			_ = h.String()
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(i%100) / 100)
			}
		}(w)
	}
	// Wait for writers by counting total; then release the scraper.
	for h.Count() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if h.Count() != writers*perWriter {
		t.Fatalf("count = %d, want %d", h.Count(), writers*perWriter)
	}
	var n uint64
	for _, c := range h.Counts() {
		n += c
	}
	if n != writers*perWriter {
		t.Fatalf("bucket counts sum to %d, want %d", n, writers*perWriter)
	}
}

// TestLatencyBucketsShape pins the default bucket layout the scenario
// experiments report against.
func TestLatencyBucketsShape(t *testing.T) {
	b := LatencyBuckets()
	if len(b) != 37 {
		t.Fatalf("default buckets = %d, want 37", len(b))
	}
	if b[0] != 1e-5 || b[len(b)-1] != 10 {
		t.Fatalf("bucket range [%v, %v], want [1e-5, 10]", b[0], b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not ascending at %d: %v <= %v", i, b[i], b[i-1])
		}
	}
}
