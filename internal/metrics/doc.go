// Package metrics provides the measurement primitives the experiments
// use: windowed rate meters, binned time series, and quantile histograms.
// All of them are driven by the simulator's virtual clock, so measurement
// never perturbs simulated time.
package metrics
