package metrics

import (
	"math"
	"testing"
	"time"
)

func TestRateMeterSteadyRate(t *testing.T) {
	m := NewRateMeter(time.Second, 10)
	// 200 events/s for 2 seconds.
	for i := 0; i < 400; i++ {
		m.Add(time.Duration(i)*5*time.Millisecond, 1)
	}
	got := m.Rate(2 * time.Second)
	if math.Abs(got-200) > 20 {
		t.Fatalf("Rate = %v, want ~200", got)
	}
}

func TestRateMeterDecays(t *testing.T) {
	m := NewRateMeter(time.Second, 10)
	m.Add(0, 100)
	if r := m.Rate(100 * time.Millisecond); r < 90 {
		t.Fatalf("fresh rate = %v", r)
	}
	if r := m.Rate(5 * time.Second); r != 0 {
		t.Fatalf("stale rate = %v, want 0", r)
	}
}

func TestRateMeterPartialWindow(t *testing.T) {
	m := NewRateMeter(time.Second, 4)
	m.Add(0, 50)
	m.Add(600*time.Millisecond, 50)
	// Just before t=1s the window still covers both bursts; by 1.3s the
	// first bucket has rolled out.
	if r := m.Rate(999 * time.Millisecond); math.Abs(r-100) > 1 {
		t.Fatalf("rate = %v, want 100", r)
	}
	if r := m.Rate(1300 * time.Millisecond); math.Abs(r-50) > 1 {
		t.Fatalf("rate after roll-out = %v, want 50", r)
	}
}

func TestRateMeterWindowWrapAfterLongIdle(t *testing.T) {
	// An idle gap far longer than the window must fully reset the buckets
	// (the advance() shift exceeds the bucket count), so old events cannot
	// leak into the new window.
	m := NewRateMeter(time.Second, 10)
	m.Add(0, 500)
	m.Add(time.Hour, 10)
	if r := m.Rate(time.Hour); math.Abs(r-10) > 1e-9 {
		t.Fatalf("rate after hour-long idle = %v, want 10", r)
	}
	// The next event after the wrap lands in the right bucket relative to
	// the rebased window.
	m.Add(time.Hour+500*time.Millisecond, 10)
	if r := m.Rate(time.Hour + 500*time.Millisecond); math.Abs(r-20) > 1e-9 {
		t.Fatalf("rate after post-wrap add = %v, want 20", r)
	}
}

func TestRateMeterZeroEventWindow(t *testing.T) {
	// Querying a window that never saw an event reports zero, both on a
	// fresh meter and after prior activity has rolled out bucket by bucket.
	m := NewRateMeter(time.Second, 10)
	if r := m.Rate(0); r != 0 {
		t.Fatalf("fresh meter rate = %v, want 0", r)
	}
	if r := m.Rate(10 * time.Second); r != 0 {
		t.Fatalf("idle meter rate = %v, want 0", r)
	}
	m.Add(10*time.Second, 7)
	// Walk the window forward one bucket at a time past the event: a
	// shift < len(buckets) each step exercises the copy path, and the
	// rate must reach exactly zero once the event ages out.
	for i := 1; i <= 12; i++ {
		now := 10*time.Second + time.Duration(i)*100*time.Millisecond
		r := m.Rate(now)
		if i >= 10 && r != 0 {
			t.Fatalf("rate at +%d00ms = %v, want 0 after roll-out", i, r)
		}
		if i < 10 && math.Abs(r-7) > 1e-9 {
			t.Fatalf("rate at +%d00ms = %v, want 7 inside window", i, r)
		}
	}
}

func TestRateMeterTotalLifetime(t *testing.T) {
	// Total is a lifetime counter: unaffected by window roll-out or the
	// full reset after a long idle gap.
	m := NewRateMeter(time.Second, 10)
	if m.Total() != 0 {
		t.Fatalf("fresh total = %v", m.Total())
	}
	m.Add(0, 3)
	m.Add(500*time.Millisecond, 4)
	m.Add(time.Hour, 5)
	if m.Total() != 12 {
		t.Fatalf("total = %v, want 12", m.Total())
	}
	if r := m.Rate(time.Hour); math.Abs(r-5) > 1e-9 {
		t.Fatalf("windowed rate = %v, want 5", r)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Add(100*time.Millisecond, 1)
	ts.Add(900*time.Millisecond, 2)
	ts.Add(2500*time.Millisecond, 5)
	pts := ts.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0].V != 3 || pts[1].V != 0 || pts[2].V != 5 {
		t.Fatalf("values = %v", pts)
	}
	rates := ts.RatePoints()
	if rates[0].V != 3 {
		t.Fatalf("rate = %v", rates[0].V)
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	if pts := ts.Points(); pts != nil {
		t.Fatalf("empty series points = %v", pts)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	if q := h.Quantile(0.5); math.Abs(q-50.5) > 1 {
		t.Fatalf("p50 = %v", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 = %v", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("p100 = %v", q)
	}
	if q := h.Quantile(0.99); q < 98 || q > 100 {
		t.Fatalf("p99 = %v", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramAddAfterQuantile(t *testing.T) {
	var h Histogram
	h.Add(10)
	_ = h.Quantile(0.5)
	h.Add(1)
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 after re-add = %v", q)
	}
}
