package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"scotch/internal/sim"
)

// RateMeter estimates an event rate over a sliding window using fixed-size
// buckets. It is the controller's tool for monitoring per-switch Packet-In
// rates (the paper's congestion signal).
//
// Writers live on the simulation event loop, but telemetry scrapes read
// concurrently from an HTTP goroutine, so all methods lock; reads (Rate,
// Total) never mutate meter state.
type RateMeter struct {
	mu      sync.Mutex
	bucket  time.Duration
	buckets []float64
	base    int64 // index of buckets[0] in units of bucket since t=0
	total   float64
}

// NewRateMeter returns a meter with the given window, divided into n
// buckets.
func NewRateMeter(window time.Duration, n int) *RateMeter {
	if n <= 0 || window <= 0 {
		panic("metrics: invalid rate meter shape")
	}
	return &RateMeter{bucket: window / time.Duration(n), buckets: make([]float64, n)}
}

func (m *RateMeter) idx(now sim.Time) int64 { return int64(now / m.bucket) }

func (m *RateMeter) advance(now sim.Time) {
	cur := m.idx(now)
	shift := cur - (m.base + int64(len(m.buckets)) - 1)
	if shift <= 0 {
		return
	}
	if shift >= int64(len(m.buckets)) {
		for i := range m.buckets {
			m.buckets[i] = 0
		}
	} else {
		copy(m.buckets, m.buckets[shift:])
		for i := len(m.buckets) - int(shift); i < len(m.buckets); i++ {
			m.buckets[i] = 0
		}
	}
	m.base = cur - int64(len(m.buckets)) + 1
}

// Add records n events at virtual time now.
func (m *RateMeter) Add(now sim.Time, n float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.advance(now)
	i := m.idx(now) - m.base
	if i >= 0 && i < int64(len(m.buckets)) {
		m.buckets[i] += n
	}
	m.total += n
}

// Total returns the lifetime event count, independent of the window.
func (m *RateMeter) Total() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// Rate returns the average event rate (events/second) over the window
// ending at now. It does not advance the meter: only buckets inside the
// window (bucket indices in (now-window, now]) are summed, which is
// numerically identical to advancing first, so interleaving extra Rate
// calls (e.g. telemetry scrapes) can never change subsequent readings.
func (m *RateMeter) Rate(now sim.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.idx(now)
	n := int64(len(m.buckets))
	var sum float64
	for i, v := range m.buckets {
		abs := m.base + int64(i)
		if abs > cur-n && abs <= cur {
			sum += v
		}
	}
	window := m.bucket * time.Duration(n)
	return sum / window.Seconds()
}

// TimeSeries accumulates values into fixed-duration bins, producing the
// x/y series plotted in the paper's figures.
//
// Like RateMeter, writers live on the simulation event loop while
// telemetry readers (scrapes, the observatory) may call Points
// concurrently, so Add and the read methods lock.
type TimeSeries struct {
	Bin time.Duration

	mu   sync.Mutex
	bins map[int64]float64
}

// NewTimeSeries returns a series with the given bin width.
func NewTimeSeries(bin time.Duration) *TimeSeries {
	return &TimeSeries{Bin: bin, bins: make(map[int64]float64)}
}

// Add accumulates v into the bin containing now.
func (ts *TimeSeries) Add(now sim.Time, v float64) {
	ts.mu.Lock()
	ts.bins[int64(now/ts.Bin)] += v
	ts.mu.Unlock()
}

// Point is one (time, value) sample.
type Point struct {
	T time.Duration
	V float64
}

// Points returns the binned samples in time order. Empty bins between the
// first and last sample are included as zeros.
func (ts *TimeSeries) Points() []Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(ts.bins) == 0 {
		return nil
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for k := range ts.bins {
		if k < lo {
			lo = k
		}
		if k > hi {
			hi = k
		}
	}
	out := make([]Point, 0, hi-lo+1)
	for k := lo; k <= hi; k++ {
		out = append(out, Point{T: time.Duration(k) * ts.Bin, V: ts.bins[k]})
	}
	return out
}

// RatePoints converts binned counts to per-second rates.
func (ts *TimeSeries) RatePoints() []Point {
	pts := ts.Points()
	for i := range pts {
		pts[i].V /= ts.Bin.Seconds()
	}
	return pts
}

// Histogram collects samples for quantile queries (latency distributions).
// Reads sort a cached copy rather than the sample slice itself, so quantile
// queries from a concurrent telemetry reader neither block writers for long
// nor perturb insertion order.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  []float64 // cached sorted copy; valid while len matches samples
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, v)
	h.sorted = nil
}

// AddDuration records a duration sample in seconds.
func (h *Histogram) AddDuration(d time.Duration) { h.Add(d.Seconds()) }

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range h.samples {
		s += v
	}
	return s / float64(len(h.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1), or 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantileSorted(h.sortedLocked(), q)
}

// Snapshot returns an immutable sorted view of the samples for repeated
// quantile queries without re-locking per call.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Snapshot(h.sortedLocked())
}

func (h *Histogram) sortedLocked() []float64 {
	if h.sorted == nil || len(h.sorted) != len(h.samples) {
		h.sorted = append([]float64(nil), h.samples...)
		sort.Float64s(h.sorted)
	}
	return h.sorted
}

// Snapshot is a sorted, point-in-time copy of a histogram's samples.
type Snapshot []float64

// Count returns the number of samples in the snapshot.
func (s Snapshot) Count() int { return len(s) }

// Quantile returns the q-quantile of the snapshot.
func (s Snapshot) Quantile(q float64) float64 { return quantileSorted(s, q) }

func quantileSorted(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	if q <= 0 {
		return samples[0]
	}
	if q >= 1 {
		return samples[len(samples)-1]
	}
	pos := q * float64(len(samples)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(samples) {
		return samples[i]
	}
	return samples[i]*(1-frac) + samples[i+1]*frac
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.6f p50=%.6f p99=%.6f",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
}
