package netaddr

import (
	"testing"
	"testing/quick"
)

func TestIPv4RoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "10.0.0.1", "192.168.255.254", "255.255.255.255"}
	for _, s := range cases {
		ip, err := ParseIPv4(s)
		if err != nil {
			t.Fatalf("ParseIPv4(%q): %v", s, err)
		}
		if got := ip.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestIPv4ParseErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"} {
		if _, err := ParseIPv4(s); err == nil {
			t.Errorf("ParseIPv4(%q) succeeded, want error", s)
		}
	}
}

func TestIPv4PropertyRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IPv4(v)
		back, err := ParseIPv4(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakeIPv4(t *testing.T) {
	if got := MakeIPv4(10, 1, 2, 3).String(); got != "10.1.2.3" {
		t.Fatalf("MakeIPv4 = %s", got)
	}
}

func TestIn(t *testing.T) {
	ip := MustParseIPv4("10.1.2.3")
	if !ip.In(MustParseIPv4("10.1.0.0"), 0xffff0000) {
		t.Error("10.1.2.3 not in 10.1/16")
	}
	if ip.In(MustParseIPv4("10.2.0.0"), 0xffff0000) {
		t.Error("10.1.2.3 in 10.2/16")
	}
	if !ip.In(0, 0) {
		t.Error("wildcard mask did not match")
	}
	if !ip.In(ip, 0xffffffff) {
		t.Error("exact mask did not match itself")
	}
}

func TestMAC(t *testing.T) {
	m := MakeMAC(0x01020304)
	if got := m.String(); got != "02:00:01:02:03:04" {
		t.Fatalf("MAC string = %s", got)
	}
	if m.IsBroadcast() {
		t.Error("unicast MAC reported broadcast")
	}
	if !Broadcast.IsBroadcast() {
		t.Error("broadcast MAC not detected")
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{Src: MakeIPv4(1, 2, 3, 4), Dst: MakeIPv4(5, 6, 7, 8), Proto: ProtoTCP, SrcPort: 1234, DstPort: 80}
	r := k.Reverse()
	if r.Src != k.Dst || r.Dst != k.Src || r.SrcPort != k.DstPort || r.DstPort != k.SrcPort {
		t.Fatalf("Reverse = %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse is not identity")
	}
}

func TestFlowKeyHashDistinct(t *testing.T) {
	// Hash must distinguish flows that differ in a single field.
	base := FlowKey{Src: MakeIPv4(1, 2, 3, 4), Dst: MakeIPv4(5, 6, 7, 8), Proto: ProtoTCP, SrcPort: 1234, DstPort: 80}
	variants := []FlowKey{
		{Src: base.Src + 1, Dst: base.Dst, Proto: base.Proto, SrcPort: base.SrcPort, DstPort: base.DstPort},
		{Src: base.Src, Dst: base.Dst + 1, Proto: base.Proto, SrcPort: base.SrcPort, DstPort: base.DstPort},
		{Src: base.Src, Dst: base.Dst, Proto: ProtoUDP, SrcPort: base.SrcPort, DstPort: base.DstPort},
		{Src: base.Src, Dst: base.Dst, Proto: base.Proto, SrcPort: base.SrcPort + 1, DstPort: base.DstPort},
		{Src: base.Src, Dst: base.Dst, Proto: base.Proto, SrcPort: base.SrcPort, DstPort: base.DstPort + 1},
	}
	h := base.Hash()
	for i, v := range variants {
		if v.Hash() == h {
			t.Errorf("variant %d collides with base", i)
		}
	}
}

func TestSymHashSymmetric(t *testing.T) {
	f := func(src, dst uint32, proto uint8, sp, dp uint16) bool {
		k := FlowKey{Src: IPv4(src), Dst: IPv4(dst), Proto: proto, SrcPort: sp, DstPort: dp}
		return k.SymHash() == k.Reverse().SymHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashUniformity(t *testing.T) {
	// ECMP bucket selection must spread sequentially numbered flows evenly.
	const buckets, flows = 8, 8000
	var count [buckets]int
	for i := 0; i < flows; i++ {
		k := FlowKey{Src: IPv4(i), Dst: MakeIPv4(10, 0, 0, 1), Proto: ProtoTCP, SrcPort: uint16(1000 + i), DstPort: 80}
		count[k.Hash()%buckets]++
	}
	for b, c := range count {
		if c < flows/buckets*70/100 || c > flows/buckets*130/100 {
			t.Errorf("bucket %d has %d flows, want ~%d", b, c, flows/buckets)
		}
	}
}

func TestFlowKeyString(t *testing.T) {
	k := FlowKey{Src: MakeIPv4(1, 2, 3, 4), Dst: MakeIPv4(5, 6, 7, 8), Proto: ProtoTCP, SrcPort: 1234, DstPort: 80}
	want := "1.2.3.4:1234->5.6.7.8:80/6"
	if got := k.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
