package netaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// IPv4 is an IPv4 address in host byte order. The zero value is 0.0.0.0.
type IPv4 uint32

// MakeIPv4 assembles an address from its four octets.
func MakeIPv4(a, b, c, d byte) IPv4 {
	return IPv4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseIPv4 parses dotted-quad notation.
func ParseIPv4(s string) (IPv4, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: invalid IPv4 %q", s)
	}
	var ip IPv4
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("netaddr: invalid IPv4 %q", s)
		}
		ip = ip<<8 | IPv4(v)
	}
	return ip, nil
}

// MustParseIPv4 is ParseIPv4 that panics on error, for tests and literals.
func MustParseIPv4(s string) IPv4 {
	ip, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String returns dotted-quad notation.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Octets returns the address as four bytes in network order.
func (ip IPv4) Octets() [4]byte {
	return [4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)}
}

// In reports whether the address matches prefix under mask (both in host
// order; mask 0xffffffff is an exact match, mask 0 matches everything).
func (ip IPv4) In(prefix IPv4, mask uint32) bool {
	return uint32(ip)&mask == uint32(prefix)&mask
}

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// MakeMAC derives a locally administered unicast MAC from a 32-bit id,
// convenient for assigning stable addresses to simulated nodes.
func MakeMAC(id uint32) MAC {
	return MAC{0x02, 0x00, byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id)}
}

// Broadcast is the Ethernet broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String returns the conventional colon-separated hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IP protocol numbers used by the simulator.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
	ProtoGRE  = 47
)

// FlowKey identifies a transport flow by its 5-tuple. It is comparable and
// therefore usable as a map key.
type FlowKey struct {
	Src, Dst         IPv4
	Proto            uint8
	SrcPort, DstPort uint16
}

// Reverse returns the key of the opposite direction of the flow.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, Proto: k.Proto, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// String formats the key as "src:sport->dst:dport/proto".
func (k FlowKey) String() string {
	return fmt.Sprintf("%v:%d->%v:%d/%d", k.Src, k.SrcPort, k.Dst, k.DstPort, k.Proto)
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash returns a 64-bit FNV-1a hash of the key, suitable for ECMP bucket
// selection (the paper's "hash function based on the flow id").
func (k FlowKey) Hash() uint64 {
	h := uint64(fnvOffset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= fnvPrime
	}
	for i := 24; i >= 0; i -= 8 {
		mix(byte(k.Src >> i))
	}
	for i := 24; i >= 0; i -= 8 {
		mix(byte(k.Dst >> i))
	}
	mix(k.Proto)
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.SrcPort))
	mix(byte(k.DstPort >> 8))
	mix(byte(k.DstPort))
	// Finalize with an avalanche step (the 64-bit murmur3 finalizer): raw
	// FNV distributes sequential inputs poorly modulo small powers of two,
	// which is exactly how ECMP bucket selection uses this hash.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// SymHash returns a direction-independent hash: both directions of a flow
// hash identically (like gopacket's Flow.FastHash), so bidirectional
// traffic always selects the same ECMP bucket.
func (k FlowKey) SymHash() uint64 {
	a, b := k.Hash(), k.Reverse().Hash()
	if a < b {
		return a*fnvPrime ^ b
	}
	return b*fnvPrime ^ a
}
