package netaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix is an IPv4 CIDR prefix: the address plan of a tenant or of a whole
// fabric. A /12 already spans 2^20 > 10^6 addresses, which is how the
// scenario engine addresses a million hosts without instantiating them:
// sources are drawn from a prefix, and only the hosts an experiment
// actually attaches exist as simulated devices.
type Prefix struct {
	IP   IPv4 // canonical base: host bits are zero
	Bits int  // prefix length, 0..32
}

// MakePrefix returns the prefix of the given length containing ip; host
// bits of ip are masked off. It panics on an out-of-range length.
func MakePrefix(ip IPv4, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic(fmt.Sprintf("netaddr: invalid prefix length %d", bits))
	}
	return Prefix{IP: IPv4(uint32(ip) & maskOf(bits)), Bits: bits}
}

// ParsePrefix parses "a.b.c.d/len" notation.
func ParsePrefix(s string) (Prefix, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("netaddr: invalid prefix %q", s)
	}
	ip, err := ParseIPv4(s[:i])
	if err != nil {
		return Prefix{}, fmt.Errorf("netaddr: invalid prefix %q", s)
	}
	bits, err := strconv.Atoi(s[i+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: invalid prefix %q", s)
	}
	return MakePrefix(ip, bits), nil
}

// MustParsePrefix is ParsePrefix that panics on error, for literals.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func maskOf(bits int) uint32 {
	if bits == 0 {
		return 0
	}
	return ^uint32(0) << (32 - bits)
}

// Mask returns the prefix's netmask in host order.
func (p Prefix) Mask() uint32 { return maskOf(p.Bits) }

// NumAddrs returns the number of addresses the prefix spans (2^(32-Bits)).
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - p.Bits) }

// Addr returns the i-th address of the prefix; i wraps modulo NumAddrs, so
// a counter can walk the space forever (the DDoS spoofed-source walk).
func (p Prefix) Addr(i uint64) IPv4 {
	host := uint32(i & (p.NumAddrs() - 1))
	return IPv4(uint32(p.IP) | host)
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IPv4) bool { return ip.In(p.IP, p.Mask()) }

// String returns CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%v/%d", p.IP, p.Bits) }
