package netaddr

import "testing"

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "10.0.0.0/8" {
		t.Errorf("String() = %q", p.String())
	}
	if p.NumAddrs() != 1<<24 {
		t.Errorf("NumAddrs() = %d, want 2^24", p.NumAddrs())
	}
	// Host bits are masked off to the canonical base.
	q := MustParsePrefix("172.17.3.9/12")
	if q.IP != MakeIPv4(172, 16, 0, 0) {
		t.Errorf("base = %v, want 172.16.0.0", q.IP)
	}
	for _, bad := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "300.0.0.0/8", "10.0.0.0/x"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) accepted", bad)
		}
	}
}

// TestPrefixMillionAddressable pins the scenario-engine scale requirement:
// a /12 spoofing prefix and the fabric /8 both span more than a million
// distinct addresses, and the indexed walk visits them without collision
// at the wrap boundary.
func TestPrefixMillionAddressable(t *testing.T) {
	p := MustParsePrefix("172.16.0.0/12")
	if p.NumAddrs() < 1_000_000 {
		t.Fatalf("/12 spans %d addrs, want >= 1e6", p.NumAddrs())
	}
	if p.Addr(0) != p.IP {
		t.Errorf("Addr(0) = %v, want base %v", p.Addr(0), p.IP)
	}
	if p.Addr(p.NumAddrs()) != p.Addr(0) {
		t.Errorf("walk does not wrap at NumAddrs")
	}
	if p.Addr(1) == p.Addr(2) {
		t.Errorf("adjacent walk steps collide")
	}
	last := p.Addr(p.NumAddrs() - 1)
	if !p.Contains(last) {
		t.Errorf("last address %v escapes the prefix", last)
	}
	if p.Contains(MakeIPv4(172, 32, 0, 0)) {
		t.Errorf("address outside the /12 reported as contained")
	}
}

func TestPrefixExtremes(t *testing.T) {
	all := MakePrefix(0, 0)
	if all.NumAddrs() != 1<<32 {
		t.Errorf("/0 spans %d", all.NumAddrs())
	}
	if !all.Contains(MakeIPv4(255, 255, 255, 255)) {
		t.Error("/0 must contain everything")
	}
	one := MakePrefix(MakeIPv4(1, 2, 3, 4), 32)
	if one.NumAddrs() != 1 {
		t.Errorf("/32 spans %d", one.NumAddrs())
	}
	if one.Addr(7) != MakeIPv4(1, 2, 3, 4) {
		t.Errorf("/32 walk must stay on its single address")
	}
}
