// Package netaddr provides compact address and flow-key types used across
// the simulator: IPv4 addresses, MAC addresses, and transport 5-tuples
// with fast non-cryptographic hashing (in the style of gopacket's
// Flow/Endpoint). The flow-key hash is also what select groups use to
// pick a bucket, mirroring the switch-side ECMP hash.
package netaddr
