package packet

import (
	"fmt"
	"time"

	"scotch/internal/netaddr"
)

// Meta carries per-packet simulator metadata that is not part of the wire
// encoding: flow bookkeeping for the capture subsystem and, like Open
// vSwitch, an out-of-band tunnel register populated at decapsulation and
// matchable by flow rules (OXM tunnel_id).
type Meta struct {
	FlowID    uint64        // generator-assigned flow identity (0 = unset)
	Seq       int           // packet index within its flow
	TunnelID  uint64        // set when the packet leaves a tunnel
	InnerKey  uint32        // inner MPLS label / GRE key popped at decap (ingress port id)
	FirstOfFl bool          // first packet of its flow (drives flow-setup accounting)
	SentAt    time.Duration // virtual send time, for one-way delay measurement
}

// Packet is a decoded packet plus simulation metadata. The header stack is
// Ethernet [MPLS*] [outer IPv4+GRE] IPv4 [TCP|UDP] payload.
type Packet struct {
	Eth  Ethernet
	MPLS []MPLSLabel // label stack, outermost first
	// GRE encapsulation: when Outer != nil the packet is IP-in-GRE and IP
	// below is the inner header.
	Outer *IPv4
	GRE   *GRE

	IP  IPv4
	TCP *TCP
	UDP *UDP

	Payload []byte
	// Size is the logical wire length in bytes used for bandwidth
	// accounting. Marshal emits headers plus Payload; generators set Size
	// to model MTU-sized packets without materializing their bytes.
	Size int

	Meta Meta
}

// boxed bundles a Packet with inline storage for every optional header so
// the constructors, Clone, and Parse cost one heap allocation instead of
// one per present header. The Packet's pointer fields point into the same
// box; a Packet built any other way still works, it just came from more
// allocations.
type boxed struct {
	p     Packet
	outer IPv4
	gre   GRE
	tcp   TCP
	udp   UDP
	// mpls backs the packet's label stack for up to two labels (the overlay
	// never nests deeper: one transit label, one ingress-port label), so
	// PushMPLS on a boxed packet appends in place instead of allocating.
	mpls [2]MPLSLabel
}

// NewTCP builds an IPv4/TCP packet with sensible defaults.
func NewTCP(src, dst netaddr.IPv4, srcPort, dstPort uint16, flags uint8) *Packet {
	bx := &boxed{
		p: Packet{
			Eth:  Ethernet{EtherType: EtherTypeIPv4},
			IP:   IPv4{TTL: 64, Protocol: netaddr.ProtoTCP, Src: src, Dst: dst},
			Size: ethernetLen + ipv4Len + tcpLen,
		},
		tcp: TCP{SrcPort: srcPort, DstPort: dstPort, Flags: flags, Window: 65535},
	}
	bx.p.TCP = &bx.tcp
	bx.p.MPLS = bx.mpls[:0]
	return &bx.p
}

// NewUDP builds an IPv4/UDP packet with sensible defaults.
func NewUDP(src, dst netaddr.IPv4, srcPort, dstPort uint16, payloadLen int) *Packet {
	bx := &boxed{
		p: Packet{
			Eth:  Ethernet{EtherType: EtherTypeIPv4},
			IP:   IPv4{TTL: 64, Protocol: netaddr.ProtoUDP, Src: src, Dst: dst},
			Size: ethernetLen + ipv4Len + udpLen + payloadLen,
		},
		udp: UDP{SrcPort: srcPort, DstPort: dstPort},
	}
	bx.p.UDP = &bx.udp
	bx.p.MPLS = bx.mpls[:0]
	return &bx.p
}

// FlowKey returns the 5-tuple of the *inner* packet (tunnel headers are
// transparent to flow identity).
func (p *Packet) FlowKey() netaddr.FlowKey {
	k := netaddr.FlowKey{Src: p.IP.Src, Dst: p.IP.Dst, Proto: p.IP.Protocol}
	switch {
	case p.TCP != nil:
		k.SrcPort, k.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	case p.UDP != nil:
		k.SrcPort, k.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	}
	return k
}

// Clone returns a deep copy. Forwarding elements that duplicate a packet
// (e.g. group buckets of type all) must clone before mutating.
func (p *Packet) Clone() *Packet {
	bx := &boxed{p: *p}
	q := &bx.p
	// Copy the label stack into the new box's inline storage (spilling to
	// the heap only past two labels) so the clone neither aliases the
	// original's stack nor costs an extra allocation.
	q.MPLS = append(bx.mpls[:0], p.MPLS...)
	if p.Outer != nil {
		bx.outer = *p.Outer
		q.Outer = &bx.outer
	}
	if p.GRE != nil {
		bx.gre = *p.GRE
		q.GRE = &bx.gre
	}
	if p.TCP != nil {
		bx.tcp = *p.TCP
		q.TCP = &bx.tcp
	}
	if p.UDP != nil {
		bx.udp = *p.UDP
		q.UDP = &bx.udp
	}
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	return q
}

// PushMPLS pushes a label onto the stack (outermost position) and flips the
// EtherType to MPLS, as the OpenFlow push_mpls+set_field action pair does.
func (p *Packet) PushMPLS(label uint32) {
	// Shift in place rather than building a fresh slice: each packet owns
	// its stack exclusively (Clone deep-copies), so a pop's spare capacity
	// is safely reused by the next push along the path.
	p.MPLS = append(p.MPLS, MPLSLabel{})
	copy(p.MPLS[1:], p.MPLS)
	// Only the innermost entry keeps the S bit; the old bottom entry is
	// still last after the shift, so normalization is just the new head.
	p.MPLS[0] = MPLSLabel{Label: label, Bottom: len(p.MPLS) == 1, TTL: 64}
	p.Eth.EtherType = EtherTypeMPLS
	p.Size += mplsLen
}

// PopMPLS pops the outermost label, returning it. When the stack empties
// the EtherType reverts to IPv4.
func (p *Packet) PopMPLS() (uint32, error) {
	if len(p.MPLS) == 0 {
		return 0, fmt.Errorf("packet: pop on empty MPLS stack")
	}
	label := p.MPLS[0].Label
	copy(p.MPLS, p.MPLS[1:])
	// Keep the emptied slice (and its capacity) so a later push reuses it;
	// all consumers test len, not nil-ness.
	p.MPLS = p.MPLS[:len(p.MPLS)-1]
	if len(p.MPLS) == 0 {
		p.Eth.EtherType = EtherTypeIPv4
	}
	p.Size -= mplsLen
	return label, nil
}

// EncapGRE wraps the packet in an outer IPv4+GRE header addressed from src
// to dst, with the given tunnel key.
func (p *Packet) EncapGRE(src, dst netaddr.IPv4, key uint32) error {
	if p.Outer != nil {
		return fmt.Errorf("packet: already GRE-encapsulated")
	}
	if len(p.MPLS) > 0 {
		return fmt.Errorf("packet: cannot GRE-encapsulate an MPLS packet")
	}
	og := &struct {
		ip  IPv4
		gre GRE
	}{
		ip:  IPv4{TTL: 64, Protocol: netaddr.ProtoGRE, Src: src, Dst: dst},
		gre: GRE{KeyPresent: true, Protocol: EtherTypeIPv4, Key: key},
	}
	p.Outer, p.GRE = &og.ip, &og.gre
	p.Size += ipv4Len + 8
	return nil
}

// DecapGRE strips the outer IPv4+GRE header, returning the tunnel key.
func (p *Packet) DecapGRE() (uint32, error) {
	if p.Outer == nil || p.GRE == nil {
		return 0, fmt.Errorf("packet: not GRE-encapsulated")
	}
	key := p.GRE.Key
	p.Outer, p.GRE = nil, nil
	p.Size -= ipv4Len + 8
	return key, nil
}

// Marshal encodes the packet to wire bytes. All header lengths are fixed,
// so the layers serialize straight into one exactly-sized buffer — the
// whole encode is a single allocation.
func (p *Packet) Marshal() []byte {
	var l4Len int
	switch {
	case p.TCP != nil:
		l4Len = tcpLen
	case p.UDP != nil:
		l4Len = udpLen
	}
	innerLen := ipv4Len + l4Len + len(p.Payload)
	size := ethernetLen + len(p.MPLS)*mplsLen + innerLen
	greLen := 0
	if p.Outer != nil {
		greLen = 4
		if p.GRE.KeyPresent {
			greLen += 4
		}
		size += ipv4Len + greLen
	}
	b := make([]byte, 0, size)
	b = p.Eth.SerializeTo(b)
	for i := range p.MPLS {
		b = p.MPLS[i].SerializeTo(b)
	}
	if p.Outer != nil {
		b = p.Outer.SerializeTo(b, greLen+innerLen)
		b = p.GRE.SerializeTo(b)
	}
	b = p.IP.SerializeTo(b, l4Len+len(p.Payload))
	switch {
	case p.TCP != nil:
		b = p.TCP.SerializeTo(b)
	case p.UDP != nil:
		b = p.UDP.SerializeTo(b, len(p.Payload))
	}
	return append(b, p.Payload...)
}

// Parse decodes wire bytes produced by Marshal. The returned packet has
// zero Meta; Size is set to the wire length.
func Parse(b []byte) (*Packet, error) {
	bx := &boxed{p: Packet{Size: len(b)}}
	p := &bx.p
	rest, err := p.Eth.DecodeFromBytes(b)
	if err != nil {
		return nil, err
	}
	et := p.Eth.EtherType
	if et == EtherTypeMPLS {
		p.MPLS = bx.mpls[:0]
	}
	for et == EtherTypeMPLS {
		var m MPLSLabel
		if rest, err = m.DecodeFromBytes(rest); err != nil {
			return nil, err
		}
		p.MPLS = append(p.MPLS, m)
		if m.Bottom {
			et = EtherTypeIPv4
		}
	}
	if et != EtherTypeIPv4 {
		return nil, fmt.Errorf("packet: unsupported EtherType %#04x", et)
	}
	var ip IPv4
	if rest, err = ip.DecodeFromBytes(rest); err != nil {
		return nil, err
	}
	if ip.Protocol == netaddr.ProtoGRE {
		bx.outer = ip
		p.Outer = &bx.outer
		p.GRE = &bx.gre
		if rest, err = p.GRE.DecodeFromBytes(rest); err != nil {
			return nil, err
		}
		if p.GRE.Protocol != EtherTypeIPv4 {
			return nil, fmt.Errorf("packet: unsupported GRE payload %#04x", p.GRE.Protocol)
		}
		if rest, err = p.IP.DecodeFromBytes(rest); err != nil {
			return nil, err
		}
	} else {
		p.IP = ip
	}
	switch p.IP.Protocol {
	case netaddr.ProtoTCP:
		p.TCP = &bx.tcp
		if rest, err = p.TCP.DecodeFromBytes(rest); err != nil {
			return nil, err
		}
	case netaddr.ProtoUDP:
		p.UDP = &bx.udp
		if rest, err = p.UDP.DecodeFromBytes(rest); err != nil {
			return nil, err
		}
	}
	if len(rest) > 0 {
		p.Payload = append([]byte(nil), rest...)
	}
	return p, nil
}

// String summarizes the packet for logs and test failures.
func (p *Packet) String() string {
	s := ""
	if len(p.MPLS) > 0 {
		s += fmt.Sprintf("MPLS%v ", labels(p.MPLS))
	}
	if p.Outer != nil {
		s += fmt.Sprintf("GRE[key=%d %v->%v] ", p.GRE.Key, p.Outer.Src, p.Outer.Dst)
	}
	return s + p.FlowKey().String()
}

func labels(ms []MPLSLabel) []uint32 {
	out := make([]uint32, len(ms))
	for i, m := range ms {
		out[i] = m.Label
	}
	return out
}
