package packet

import (
	"fmt"
	"time"

	"scotch/internal/netaddr"
)

// Meta carries per-packet simulator metadata that is not part of the wire
// encoding: flow bookkeeping for the capture subsystem and, like Open
// vSwitch, an out-of-band tunnel register populated at decapsulation and
// matchable by flow rules (OXM tunnel_id).
type Meta struct {
	FlowID    uint64        // generator-assigned flow identity (0 = unset)
	Seq       int           // packet index within its flow
	TunnelID  uint64        // set when the packet leaves a tunnel
	InnerKey  uint32        // inner MPLS label / GRE key popped at decap (ingress port id)
	FirstOfFl bool          // first packet of its flow (drives flow-setup accounting)
	SentAt    time.Duration // virtual send time, for one-way delay measurement
}

// Packet is a decoded packet plus simulation metadata. The header stack is
// Ethernet [MPLS*] [outer IPv4+GRE] IPv4 [TCP|UDP] payload.
type Packet struct {
	Eth  Ethernet
	MPLS []MPLSLabel // label stack, outermost first
	// GRE encapsulation: when Outer != nil the packet is IP-in-GRE and IP
	// below is the inner header.
	Outer *IPv4
	GRE   *GRE

	IP  IPv4
	TCP *TCP
	UDP *UDP

	Payload []byte
	// Size is the logical wire length in bytes used for bandwidth
	// accounting. Marshal emits headers plus Payload; generators set Size
	// to model MTU-sized packets without materializing their bytes.
	Size int

	Meta Meta
}

// NewTCP builds an IPv4/TCP packet with sensible defaults.
func NewTCP(src, dst netaddr.IPv4, srcPort, dstPort uint16, flags uint8) *Packet {
	p := &Packet{
		Eth: Ethernet{EtherType: EtherTypeIPv4},
		IP:  IPv4{TTL: 64, Protocol: netaddr.ProtoTCP, Src: src, Dst: dst},
		TCP: &TCP{SrcPort: srcPort, DstPort: dstPort, Flags: flags, Window: 65535},
	}
	p.Size = ethernetLen + ipv4Len + tcpLen
	return p
}

// NewUDP builds an IPv4/UDP packet with sensible defaults.
func NewUDP(src, dst netaddr.IPv4, srcPort, dstPort uint16, payloadLen int) *Packet {
	p := &Packet{
		Eth: Ethernet{EtherType: EtherTypeIPv4},
		IP:  IPv4{TTL: 64, Protocol: netaddr.ProtoUDP, Src: src, Dst: dst},
		UDP: &UDP{SrcPort: srcPort, DstPort: dstPort},
	}
	p.Size = ethernetLen + ipv4Len + udpLen + payloadLen
	return p
}

// FlowKey returns the 5-tuple of the *inner* packet (tunnel headers are
// transparent to flow identity).
func (p *Packet) FlowKey() netaddr.FlowKey {
	k := netaddr.FlowKey{Src: p.IP.Src, Dst: p.IP.Dst, Proto: p.IP.Protocol}
	switch {
	case p.TCP != nil:
		k.SrcPort, k.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	case p.UDP != nil:
		k.SrcPort, k.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	}
	return k
}

// Clone returns a deep copy. Forwarding elements that duplicate a packet
// (e.g. group buckets of type all) must clone before mutating.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.MPLS != nil {
		q.MPLS = append([]MPLSLabel(nil), p.MPLS...)
	}
	if p.Outer != nil {
		o := *p.Outer
		q.Outer = &o
	}
	if p.GRE != nil {
		g := *p.GRE
		q.GRE = &g
	}
	if p.TCP != nil {
		t := *p.TCP
		q.TCP = &t
	}
	if p.UDP != nil {
		u := *p.UDP
		q.UDP = &u
	}
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	return &q
}

// PushMPLS pushes a label onto the stack (outermost position) and flips the
// EtherType to MPLS, as the OpenFlow push_mpls+set_field action pair does.
func (p *Packet) PushMPLS(label uint32) {
	bottom := len(p.MPLS) == 0
	p.MPLS = append([]MPLSLabel{{Label: label, Bottom: bottom, TTL: 64}}, p.MPLS...)
	if !bottom {
		// Only the innermost entry keeps the S bit.
		for i := 1; i < len(p.MPLS); i++ {
			p.MPLS[i].Bottom = i == len(p.MPLS)-1
		}
	}
	p.Eth.EtherType = EtherTypeMPLS
	p.Size += mplsLen
}

// PopMPLS pops the outermost label, returning it. When the stack empties
// the EtherType reverts to IPv4.
func (p *Packet) PopMPLS() (uint32, error) {
	if len(p.MPLS) == 0 {
		return 0, fmt.Errorf("packet: pop on empty MPLS stack")
	}
	label := p.MPLS[0].Label
	p.MPLS = p.MPLS[1:]
	if len(p.MPLS) == 0 {
		p.MPLS = nil
		p.Eth.EtherType = EtherTypeIPv4
	}
	p.Size -= mplsLen
	return label, nil
}

// EncapGRE wraps the packet in an outer IPv4+GRE header addressed from src
// to dst, with the given tunnel key.
func (p *Packet) EncapGRE(src, dst netaddr.IPv4, key uint32) error {
	if p.Outer != nil {
		return fmt.Errorf("packet: already GRE-encapsulated")
	}
	if len(p.MPLS) > 0 {
		return fmt.Errorf("packet: cannot GRE-encapsulate an MPLS packet")
	}
	p.Outer = &IPv4{TTL: 64, Protocol: netaddr.ProtoGRE, Src: src, Dst: dst}
	p.GRE = &GRE{KeyPresent: true, Protocol: EtherTypeIPv4, Key: key}
	p.Size += ipv4Len + 8
	return nil
}

// DecapGRE strips the outer IPv4+GRE header, returning the tunnel key.
func (p *Packet) DecapGRE() (uint32, error) {
	if p.Outer == nil || p.GRE == nil {
		return 0, fmt.Errorf("packet: not GRE-encapsulated")
	}
	key := p.GRE.Key
	p.Outer, p.GRE = nil, nil
	p.Size -= ipv4Len + 8
	return key, nil
}

// Marshal encodes the packet to wire bytes.
func (p *Packet) Marshal() []byte {
	b := make([]byte, 0, ethernetLen+len(p.MPLS)*mplsLen+2*ipv4Len+tcpLen+len(p.Payload)+16)
	b = p.Eth.SerializeTo(b)
	for i := range p.MPLS {
		b = p.MPLS[i].SerializeTo(b)
	}
	inner := p.marshalInner()
	if p.Outer != nil {
		greLen := 4
		if p.GRE.KeyPresent {
			greLen += 4
		}
		b = p.Outer.SerializeTo(b, greLen+len(inner))
		b = p.GRE.SerializeTo(b)
	}
	return append(b, inner...)
}

func (p *Packet) marshalInner() []byte {
	var l4 []byte
	switch {
	case p.TCP != nil:
		l4 = p.TCP.SerializeTo(nil)
	case p.UDP != nil:
		l4 = p.UDP.SerializeTo(nil, len(p.Payload))
	}
	b := p.IP.SerializeTo(nil, len(l4)+len(p.Payload))
	b = append(b, l4...)
	return append(b, p.Payload...)
}

// Parse decodes wire bytes produced by Marshal. The returned packet has
// zero Meta; Size is set to the wire length.
func Parse(b []byte) (*Packet, error) {
	p := &Packet{Size: len(b)}
	rest, err := p.Eth.DecodeFromBytes(b)
	if err != nil {
		return nil, err
	}
	et := p.Eth.EtherType
	for et == EtherTypeMPLS {
		var m MPLSLabel
		if rest, err = m.DecodeFromBytes(rest); err != nil {
			return nil, err
		}
		p.MPLS = append(p.MPLS, m)
		if m.Bottom {
			et = EtherTypeIPv4
		}
	}
	if et != EtherTypeIPv4 {
		return nil, fmt.Errorf("packet: unsupported EtherType %#04x", et)
	}
	var ip IPv4
	if rest, err = ip.DecodeFromBytes(rest); err != nil {
		return nil, err
	}
	if ip.Protocol == netaddr.ProtoGRE {
		p.Outer = &ip
		p.GRE = &GRE{}
		if rest, err = p.GRE.DecodeFromBytes(rest); err != nil {
			return nil, err
		}
		if p.GRE.Protocol != EtherTypeIPv4 {
			return nil, fmt.Errorf("packet: unsupported GRE payload %#04x", p.GRE.Protocol)
		}
		if rest, err = p.IP.DecodeFromBytes(rest); err != nil {
			return nil, err
		}
	} else {
		p.IP = ip
	}
	switch p.IP.Protocol {
	case netaddr.ProtoTCP:
		p.TCP = &TCP{}
		if rest, err = p.TCP.DecodeFromBytes(rest); err != nil {
			return nil, err
		}
	case netaddr.ProtoUDP:
		p.UDP = &UDP{}
		if rest, err = p.UDP.DecodeFromBytes(rest); err != nil {
			return nil, err
		}
	}
	if len(rest) > 0 {
		p.Payload = append([]byte(nil), rest...)
	}
	return p, nil
}

// String summarizes the packet for logs and test failures.
func (p *Packet) String() string {
	s := ""
	if len(p.MPLS) > 0 {
		s += fmt.Sprintf("MPLS%v ", labels(p.MPLS))
	}
	if p.Outer != nil {
		s += fmt.Sprintf("GRE[key=%d %v->%v] ", p.GRE.Key, p.Outer.Src, p.Outer.Dst)
	}
	return s + p.FlowKey().String()
}

func labels(ms []MPLSLabel) []uint32 {
	out := make([]uint32, len(ms))
	for i, m := range ms {
		out[i] = m.Label
	}
	return out
}
