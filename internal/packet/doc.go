// Package packet models network packets and their wire encoding.
//
// The design mirrors gopacket: each protocol layer is a struct with
// SerializeTo/DecodeFromBytes methods, and a Packet bundles a decoded
// layer stack. The simulator passes *Packet values between nodes; the
// wire codec is exercised whenever packets cross an encapsulation
// boundary (the MPLS/GRE overlay tunnels of §4.1) or are embedded into
// OpenFlow Packet-In messages.
package packet
