package packet

import (
	"encoding/binary"
	"fmt"

	"scotch/internal/netaddr"
)

// EtherType values understood by the simulator.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeMPLS uint16 = 0x8847
)

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst, Src  netaddr.MAC
	EtherType uint16
}

const ethernetLen = 14

// SerializeTo appends the wire form of the header to b.
func (e *Ethernet) SerializeTo(b []byte) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	return binary.BigEndian.AppendUint16(b, e.EtherType)
}

// DecodeFromBytes parses the header and returns the remaining payload.
func (e *Ethernet) DecodeFromBytes(b []byte) ([]byte, error) {
	if len(b) < ethernetLen {
		return nil, fmt.Errorf("packet: ethernet header truncated (%d bytes)", len(b))
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	return b[ethernetLen:], nil
}

// MPLSLabel is one entry of an MPLS label stack.
type MPLSLabel struct {
	Label  uint32 // 20 bits
	TC     uint8  // 3 bits (traffic class)
	Bottom bool   // S bit
	TTL    uint8
}

const mplsLen = 4

// SerializeTo appends the 4-byte label stack entry to b.
func (m *MPLSLabel) SerializeTo(b []byte) []byte {
	v := m.Label<<12 | uint32(m.TC&0x7)<<9 | uint32(m.TTL)
	if m.Bottom {
		v |= 1 << 8
	}
	return binary.BigEndian.AppendUint32(b, v)
}

// DecodeFromBytes parses one label stack entry and returns the rest.
func (m *MPLSLabel) DecodeFromBytes(b []byte) ([]byte, error) {
	if len(b) < mplsLen {
		return nil, fmt.Errorf("packet: MPLS entry truncated (%d bytes)", len(b))
	}
	v := binary.BigEndian.Uint32(b)
	m.Label = v >> 12
	m.TC = uint8(v>>9) & 0x7
	m.Bottom = v&(1<<8) != 0
	m.TTL = uint8(v)
	return b[mplsLen:], nil
}

// GRE is a minimal GRE header (RFC 2890) with an optional key, the field
// Scotch uses to carry the original ingress port across a GRE tunnel.
type GRE struct {
	KeyPresent bool
	Protocol   uint16 // EtherType of the inner payload
	Key        uint32
}

// SerializeTo appends the wire form of the header to b.
func (g *GRE) SerializeTo(b []byte) []byte {
	var flags uint16
	if g.KeyPresent {
		flags |= 0x2000
	}
	b = binary.BigEndian.AppendUint16(b, flags)
	b = binary.BigEndian.AppendUint16(b, g.Protocol)
	if g.KeyPresent {
		b = binary.BigEndian.AppendUint32(b, g.Key)
	}
	return b
}

// DecodeFromBytes parses the header and returns the remaining payload.
func (g *GRE) DecodeFromBytes(b []byte) ([]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("packet: GRE header truncated (%d bytes)", len(b))
	}
	flags := binary.BigEndian.Uint16(b)
	g.Protocol = binary.BigEndian.Uint16(b[2:4])
	g.KeyPresent = flags&0x2000 != 0
	b = b[4:]
	if g.KeyPresent {
		if len(b) < 4 {
			return nil, fmt.Errorf("packet: GRE key truncated")
		}
		g.Key = binary.BigEndian.Uint32(b)
		b = b[4:]
	}
	return b, nil
}

// IPv4 is an IPv4 header without options.
type IPv4 struct {
	TOS      uint8
	Length   uint16 // total length including header; filled by SerializeTo if zero
	ID       uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16 // filled by SerializeTo
	Src, Dst netaddr.IPv4
}

const ipv4Len = 20

// SerializeTo appends the wire form of the header to b; payloadLen is the
// number of payload bytes that will follow.
func (ip *IPv4) SerializeTo(b []byte, payloadLen int) []byte {
	start := len(b)
	total := uint16(ipv4Len + payloadLen)
	ip.Length = total
	b = append(b, 0x45, ip.TOS)
	b = binary.BigEndian.AppendUint16(b, total)
	b = binary.BigEndian.AppendUint16(b, ip.ID)
	b = binary.BigEndian.AppendUint16(b, 0) // flags+fragment offset
	b = append(b, ip.TTL, ip.Protocol)
	b = binary.BigEndian.AppendUint16(b, 0) // checksum placeholder
	b = binary.BigEndian.AppendUint32(b, uint32(ip.Src))
	b = binary.BigEndian.AppendUint32(b, uint32(ip.Dst))
	ip.Checksum = ipChecksum(b[start : start+ipv4Len])
	binary.BigEndian.PutUint16(b[start+10:], ip.Checksum)
	return b
}

// DecodeFromBytes parses the header and returns the remaining payload,
// verifying the header checksum.
func (ip *IPv4) DecodeFromBytes(b []byte) ([]byte, error) {
	if len(b) < ipv4Len {
		return nil, fmt.Errorf("packet: IPv4 header truncated (%d bytes)", len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return nil, fmt.Errorf("packet: IPv4 version = %d", v)
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < ipv4Len || len(b) < ihl {
		return nil, fmt.Errorf("packet: bad IHL %d", ihl)
	}
	if ipChecksum(b[:ihl]) != 0 {
		return nil, fmt.Errorf("packet: IPv4 checksum mismatch")
	}
	ip.TOS = b[1]
	ip.Length = binary.BigEndian.Uint16(b[2:])
	ip.ID = binary.BigEndian.Uint16(b[4:])
	ip.TTL = b[8]
	ip.Protocol = b[9]
	ip.Checksum = binary.BigEndian.Uint16(b[10:])
	ip.Src = netaddr.IPv4(binary.BigEndian.Uint32(b[12:]))
	ip.Dst = netaddr.IPv4(binary.BigEndian.Uint32(b[16:]))
	if int(ip.Length) < ihl || int(ip.Length) > len(b) {
		return nil, fmt.Errorf("packet: IPv4 length %d out of range", ip.Length)
	}
	return b[ihl:ip.Length], nil
}

func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// TCP is a TCP header without options. Checksums are not modelled; the
// simulator treats payload integrity as given.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

const tcpLen = 20

// SerializeTo appends the wire form of the header to b.
func (t *TCP) SerializeTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, t.SrcPort)
	b = binary.BigEndian.AppendUint16(b, t.DstPort)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	b = append(b, 5<<4, t.Flags)
	b = binary.BigEndian.AppendUint16(b, t.Window)
	b = binary.BigEndian.AppendUint16(b, 0) // checksum (unmodelled)
	return binary.BigEndian.AppendUint16(b, 0)
}

// DecodeFromBytes parses the header and returns the remaining payload.
func (t *TCP) DecodeFromBytes(b []byte) ([]byte, error) {
	if len(b) < tcpLen {
		return nil, fmt.Errorf("packet: TCP header truncated (%d bytes)", len(b))
	}
	t.SrcPort = binary.BigEndian.Uint16(b)
	t.DstPort = binary.BigEndian.Uint16(b[2:])
	t.Seq = binary.BigEndian.Uint32(b[4:])
	t.Ack = binary.BigEndian.Uint32(b[8:])
	off := int(b[12]>>4) * 4
	if off < tcpLen || off > len(b) {
		return nil, fmt.Errorf("packet: bad TCP data offset %d", off)
	}
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:])
	return b[off:], nil
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16 // filled by SerializeTo if zero
}

const udpLen = 8

// SerializeTo appends the wire form of the header to b; payloadLen is the
// number of payload bytes that will follow.
func (u *UDP) SerializeTo(b []byte, payloadLen int) []byte {
	u.Length = uint16(udpLen + payloadLen)
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, u.Length)
	return binary.BigEndian.AppendUint16(b, 0) // checksum (unmodelled)
}

// DecodeFromBytes parses the header and returns the remaining payload.
func (u *UDP) DecodeFromBytes(b []byte) ([]byte, error) {
	if len(b) < udpLen {
		return nil, fmt.Errorf("packet: UDP header truncated (%d bytes)", len(b))
	}
	u.SrcPort = binary.BigEndian.Uint16(b)
	u.DstPort = binary.BigEndian.Uint16(b[2:])
	u.Length = binary.BigEndian.Uint16(b[4:])
	if int(u.Length) < udpLen || int(u.Length) > len(b) {
		return nil, fmt.Errorf("packet: UDP length %d out of range", u.Length)
	}
	return b[udpLen:u.Length], nil
}
