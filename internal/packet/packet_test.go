package packet

import (
	"bytes"
	"testing"
	"testing/quick"

	"scotch/internal/netaddr"
)

var (
	srcIP = netaddr.MakeIPv4(10, 0, 0, 1)
	dstIP = netaddr.MakeIPv4(10, 0, 1, 2)
)

func TestTCPRoundTrip(t *testing.T) {
	p := NewTCP(srcIP, dstIP, 12345, 80, FlagSYN)
	p.Eth.Src = netaddr.MakeMAC(1)
	p.Eth.Dst = netaddr.MakeMAC(2)
	p.Payload = []byte("hello")

	q, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.Eth != p.Eth {
		t.Errorf("ethernet mismatch: %+v vs %+v", q.Eth, p.Eth)
	}
	if q.IP.Src != srcIP || q.IP.Dst != dstIP || q.IP.Protocol != netaddr.ProtoTCP {
		t.Errorf("IP mismatch: %+v", q.IP)
	}
	if q.TCP == nil || q.TCP.SrcPort != 12345 || q.TCP.DstPort != 80 || q.TCP.Flags != FlagSYN {
		t.Errorf("TCP mismatch: %+v", q.TCP)
	}
	if !bytes.Equal(q.Payload, []byte("hello")) {
		t.Errorf("payload = %q", q.Payload)
	}
	if q.FlowKey() != p.FlowKey() {
		t.Errorf("flow key changed across the wire")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	p := NewUDP(srcIP, dstIP, 53, 5353, 3)
	p.Payload = []byte{1, 2, 3}
	q, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.UDP == nil || q.UDP.SrcPort != 53 || q.UDP.DstPort != 5353 {
		t.Fatalf("UDP mismatch: %+v", q.UDP)
	}
	if !bytes.Equal(q.Payload, []byte{1, 2, 3}) {
		t.Fatalf("payload = %v", q.Payload)
	}
}

func TestMPLSStack(t *testing.T) {
	p := NewTCP(srcIP, dstIP, 1, 2, FlagSYN)
	base := p.Size
	p.PushMPLS(7)   // inner (ingress-port label)
	p.PushMPLS(100) // outer (tunnel label)
	if p.Eth.EtherType != EtherTypeMPLS {
		t.Fatal("EtherType not MPLS after push")
	}
	if p.Size != base+2*mplsLen {
		t.Fatalf("Size = %d, want %d", p.Size, base+2*mplsLen)
	}

	q, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.MPLS) != 2 || q.MPLS[0].Label != 100 || q.MPLS[1].Label != 7 {
		t.Fatalf("MPLS stack = %+v", q.MPLS)
	}
	if q.MPLS[0].Bottom || !q.MPLS[1].Bottom {
		t.Fatalf("S bits wrong: %+v", q.MPLS)
	}

	outer, err := q.PopMPLS()
	if err != nil || outer != 100 {
		t.Fatalf("pop outer = %d, %v", outer, err)
	}
	inner, err := q.PopMPLS()
	if err != nil || inner != 7 {
		t.Fatalf("pop inner = %d, %v", inner, err)
	}
	if q.Eth.EtherType != EtherTypeIPv4 {
		t.Fatal("EtherType not restored after popping the stack")
	}
	if _, err := q.PopMPLS(); err == nil {
		t.Fatal("pop on empty stack succeeded")
	}
	if q.FlowKey() != p.FlowKey() {
		t.Fatal("flow key damaged by MPLS round trip")
	}
}

func TestGREEncapDecap(t *testing.T) {
	p := NewTCP(srcIP, dstIP, 1000, 80, FlagSYN|FlagACK)
	tepA := netaddr.MakeIPv4(192, 168, 0, 1)
	tepB := netaddr.MakeIPv4(192, 168, 0, 2)
	if err := p.EncapGRE(tepA, tepB, 42); err != nil {
		t.Fatal(err)
	}
	if err := p.EncapGRE(tepA, tepB, 43); err == nil {
		t.Fatal("double encapsulation succeeded")
	}

	q, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.Outer == nil || q.GRE == nil {
		t.Fatal("GRE encapsulation lost on the wire")
	}
	if q.Outer.Src != tepA || q.Outer.Dst != tepB {
		t.Fatalf("outer IP = %v->%v", q.Outer.Src, q.Outer.Dst)
	}
	key, err := q.DecapGRE()
	if err != nil || key != 42 {
		t.Fatalf("decap key = %d, %v", key, err)
	}
	if q.IP.Src != srcIP || q.IP.Dst != dstIP {
		t.Fatalf("inner IP damaged: %+v", q.IP)
	}
	if _, err := q.DecapGRE(); err == nil {
		t.Fatal("decap of plain packet succeeded")
	}
}

func TestParseErrors(t *testing.T) {
	p := NewTCP(srcIP, dstIP, 1, 2, FlagSYN)
	wire := p.Marshal()
	for n := 0; n < len(wire); n += 5 {
		if _, err := Parse(wire[:n]); err == nil {
			t.Errorf("Parse of %d-byte prefix succeeded", n)
		}
	}
	// Corrupt the IP checksum.
	bad := append([]byte(nil), wire...)
	bad[ethernetLen+10] ^= 0xff
	if _, err := Parse(bad); err == nil {
		t.Error("Parse accepted corrupted IP checksum")
	}
	// Unknown EtherType.
	bad2 := append([]byte(nil), wire...)
	bad2[12], bad2[13] = 0x86, 0xdd // IPv6
	if _, err := Parse(bad2); err == nil {
		t.Error("Parse accepted unsupported EtherType")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := NewTCP(srcIP, dstIP, 1, 2, FlagSYN)
	p.PushMPLS(5)
	p.Payload = []byte{9}
	q := p.Clone()
	q.MPLS[0].Label = 6
	q.TCP.DstPort = 99
	q.Payload[0] = 1
	if p.MPLS[0].Label != 5 || p.TCP.DstPort != 2 || p.Payload[0] != 9 {
		t.Fatal("Clone shares storage with the original")
	}
}

func TestIPv4ChecksumProperty(t *testing.T) {
	f := func(src, dst uint32, tos, ttl uint8, id uint16) bool {
		ip := IPv4{TOS: tos, ID: id, TTL: ttl, Protocol: netaddr.ProtoTCP,
			Src: netaddr.IPv4(src), Dst: netaddr.IPv4(dst)}
		b := ip.SerializeTo(nil, 0)
		var back IPv4
		_, err := back.DecodeFromBytes(b)
		return err == nil && back.Src == ip.Src && back.Dst == ip.Dst &&
			back.TOS == tos && back.TTL == ttl && back.ID == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMPLSEntryProperty(t *testing.T) {
	f := func(label uint32, tc uint8, bottom bool, ttl uint8) bool {
		m := MPLSLabel{Label: label & 0xfffff, TC: tc & 7, Bottom: bottom, TTL: ttl}
		b := m.SerializeTo(nil)
		var back MPLSLabel
		_, err := back.DecodeFromBytes(b)
		return err == nil && back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSizeAccounting(t *testing.T) {
	p := NewTCP(srcIP, dstIP, 1, 2, FlagSYN)
	if p.Size != len(p.Marshal()) {
		t.Fatalf("TCP Size = %d, wire = %d", p.Size, len(p.Marshal()))
	}
	p.PushMPLS(1)
	if p.Size != len(p.Marshal()) {
		t.Fatalf("MPLS Size = %d, wire = %d", p.Size, len(p.Marshal()))
	}
	p.PopMPLS()
	p.EncapGRE(srcIP, dstIP, 1)
	if p.Size != len(p.Marshal()) {
		t.Fatalf("GRE Size = %d, wire = %d", p.Size, len(p.Marshal()))
	}
}

func BenchmarkMarshalParse(b *testing.B) {
	p := NewTCP(srcIP, dstIP, 1234, 80, FlagSYN)
	p.Payload = bytes.Repeat([]byte{0xab}, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire := p.Marshal()
		if _, err := Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}
