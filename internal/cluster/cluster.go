package cluster

import (
	"sort"
	"time"

	"fmt"

	"scotch/internal/controller"
	"scotch/internal/openflow"
	"scotch/internal/sim"
	"scotch/internal/telemetry"
)

// PodApp is a controller application a pod carries between replicas. The
// Scotch app satisfies it: Rebind moves all handle resolution onto the new
// replica's controller, SetOwner restricts which punting switches the app
// claims.
type PodApp interface {
	controller.App
	Rebind(*controller.Controller)
	SetOwner(func(dpid uint64) bool)
}

// PolicyPusher is optionally implemented by pod apps that devolve policy
// to switch-resident caches (the Scotch app's control devolution). The
// coordinator calls RepublishPolicy once a migration's role handoff is
// barrier-confirmed, so every cache is re-fed — generation-fenced — by
// the new master and stale policy from the old one is invalidated.
type PolicyPusher interface {
	RepublishPolicy()
}

// Config tunes the coordinator.
type Config struct {
	// HeartbeatInterval and HeartbeatMisses govern replica failure
	// detection: a replica silent for Misses consecutive beats is declared
	// dead. The defaults (100ms x 3) detect a controller crash well inside
	// the Scotch app's own vSwitch-death window (500ms x 3), so switch
	// liveness state is not poisoned while mastership is in limbo.
	HeartbeatInterval time.Duration
	HeartbeatMisses   int

	// BalanceInterval is how often load is compared across replicas.
	// Zero or negative disables the coordinator's built-in balance loop
	// entirely; an external controller (the joint balancer in
	// internal/balance) then owns migration decisions via MigratePod.
	BalanceInterval time.Duration
	// ImbalanceFactor triggers migration when the most loaded replica
	// exceeds this multiple of the least loaded one.
	ImbalanceFactor float64
	// MinLoad suppresses rebalancing while the hottest replica is below
	// this load (Packet-Ins/s + queued punts): idle clusters don't churn.
	MinLoad float64
	// MigrationCooldown is the minimum spacing between load-triggered
	// migrations, damping oscillation.
	MigrationCooldown time.Duration
}

// DefaultConfig returns the calibrated defaults.
func DefaultConfig() Config {
	return Config{
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMisses:   3,
		BalanceInterval:   500 * time.Millisecond,
		ImbalanceFactor:   2,
		MinLoad:           50,
		MigrationCooldown: time.Second,
	}
}

// Stats counts coordinator activity.
type Stats struct {
	Migrations   uint64 // cooperative handoffs (load-triggered or explicit)
	Failovers    uint64 // pods reassigned after a replica death
	ReplicasLost uint64
	Retired      uint64 // replicas gracefully retired (pods migrated off first)

	// DetectedAt is when the most recent replica death was declared;
	// HandoffDoneAt is when the most recent handoff's barriers all drained
	// (every pod switch confirmed processing the new master's role claim).
	DetectedAt    sim.Time
	HandoffDoneAt sim.Time
}

// Replica is one controller process in the cluster.
type Replica struct {
	ID int
	C  *controller.Controller

	killed bool
	dead   bool
	missed int
}

// Kill simulates the replica process dying: its switch connections drop
// and its heartbeats stop. The coordinator notices after the detection
// window and reassigns its pods — without flow-state transfer, since the
// state died with the process.
func (r *Replica) Kill() {
	r.killed = true
	r.C.Disconnect()
}

// Alive reports whether the coordinator still considers the replica up.
func (r *Replica) Alive() bool { return !r.dead }

// Partition cuts the replica off from every switch it manages: control
// connections drop and heartbeats stop, exactly as Kill, but the process
// survives and may later Heal. From the coordinator's perspective the two
// are indistinguishable — that ambiguity is the point.
func (r *Replica) Partition() {
	r.killed = true
	r.C.Disconnect()
}

// Heal ends a partition: the replica's control connections re-establish
// with equal roles. The coordinator has long since declared the replica
// dead and failed its pods over, and does not re-admit healed replicas;
// Heal exists to prove the adversarial half of OF 1.3 §6.3 — a healed
// ex-master that replays a stale generation id must be fenced to
// read-only by the switches, not regain mastership.
func (r *Replica) Heal() {
	r.killed = false
	r.C.Reconnect()
}

// Pod is the unit of migration: a set of switches (protected edges plus
// their mesh vSwitches) and the application instance managing them.
type Pod struct {
	Name  string
	App   PodApp
	DPIDs []uint64

	set map[uint64]bool
}

// Owns reports whether the pod contains the switch.
func (p *Pod) Owns(dpid uint64) bool { return p.set[dpid] }

// Coordinator owns the switch-to-replica assignment map and performs
// migrations and failovers. All methods run inside the simulation's
// single-threaded event loop.
type Coordinator struct {
	Eng sim.Proc
	Cfg Config

	Replicas []*Replica
	Stats    Stats

	// OnMigrate, when set, fires as each pod handoff is initiated.
	OnMigrate func(pod string, from, to int, failover bool)

	// Trace, when set, records each handoff as an instant event in the
	// control-path trace timeline.
	Trace *telemetry.Tracer

	pods     []*Pod
	byName   map[string]*Pod
	assign   map[string]int
	gen      uint64
	lastMove sim.Time
}

// New creates a coordinator on the simulation engine.
func New(eng sim.Proc, cfg Config) *Coordinator {
	return &Coordinator{
		Eng:    eng,
		Cfg:    cfg,
		byName: make(map[string]*Pod),
		assign: make(map[string]int),
	}
}

// BindMetrics registers the coordinator's per-replica load signals and
// handoff counters with a telemetry registry.
func (co *Coordinator) BindMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("scotch_cluster_migrations_total", func() uint64 { return co.Stats.Migrations })
	reg.CounterFunc("scotch_cluster_failovers_total", func() uint64 { return co.Stats.Failovers })
	reg.CounterFunc("scotch_cluster_replicas_lost_total", func() uint64 { return co.Stats.ReplicasLost })
	reg.CounterFunc("scotch_cluster_replicas_retired_total", func() uint64 { return co.Stats.Retired })
	for _, r := range co.Replicas {
		r := r
		lbl := telemetry.Labels("replica", fmt.Sprint(r.ID))
		reg.GaugeFunc("scotch_cluster_replica_load"+lbl, func() float64 { return co.Load(r) })
		reg.GaugeFunc("scotch_cluster_replica_alive"+lbl, func() float64 {
			if r.Alive() {
				return 1
			}
			return 0
		})
	}
}

// AddReplica enrolls a controller as a cluster replica.
func (co *Coordinator) AddReplica(c *controller.Controller) *Replica {
	r := &Replica{ID: len(co.Replicas), C: c}
	co.Replicas = append(co.Replicas, r)
	return r
}

// AddPod enrolls a pod initially assigned to home, whose controller the
// app must already be built on and registered with. The app is restricted
// to punts from the pod's switches, so several pods can share a replica.
func (co *Coordinator) AddPod(name string, app PodApp, home *Replica, dpids ...uint64) *Pod {
	p := &Pod{Name: name, App: app, DPIDs: append([]uint64(nil), dpids...), set: make(map[uint64]bool)}
	sort.Slice(p.DPIDs, func(i, j int) bool { return p.DPIDs[i] < p.DPIDs[j] })
	for _, d := range p.DPIDs {
		p.set[d] = true
	}
	app.SetOwner(p.Owns)
	co.pods = append(co.pods, p)
	co.byName[name] = p
	co.assign[name] = home.ID
	return p
}

// Owner returns the id of the replica currently assigned a pod (-1 if the
// pod is unknown).
func (co *Coordinator) Owner(name string) int {
	if _, ok := co.byName[name]; !ok {
		return -1
	}
	return co.assign[name]
}

// Pod returns a pod by name, or nil.
func (co *Coordinator) Pod(name string) *Pod { return co.byName[name] }

// Load is a replica's scalar load signal: aggregate Packet-In arrival
// rate plus punts queued behind its processing capacity.
func (co *Coordinator) Load(r *Replica) float64 {
	return r.C.InRate.Rate(co.Eng.Now()) + float64(r.C.QueueDepth())
}

// Start claims the initial roles — each pod's home replica becomes master
// on the pod's switches, every other replica slave — and begins the
// heartbeat and load-balance tickers.
func (co *Coordinator) Start() {
	for _, p := range co.pods {
		owner := co.assign[p.Name]
		gen := co.nextGen()
		for _, dpid := range p.DPIDs {
			for _, r := range co.Replicas {
				h := r.C.Switch(dpid)
				if h == nil {
					continue
				}
				if r.ID == owner {
					h.RequestRole(openflow.RoleMaster, gen, nil)
				} else {
					h.RequestRole(openflow.RoleSlave, gen, nil)
				}
			}
		}
	}
	co.Eng.Every(co.Cfg.HeartbeatInterval, co.heartbeat)
	if co.Cfg.BalanceInterval > 0 {
		co.Eng.Every(co.Cfg.BalanceInterval, co.balance)
	}
}

// Enroll adds a controller to an already-running cluster as a fresh
// replica and immediately claims slave on every pod switch it is
// connected to, so the newcomer receives no Packet-Ins until a pod is
// migrated onto it. (New connections default to RoleEqual, which would
// otherwise mirror every punt to the newcomer and distort its load
// signal.) The controller must already be connected to the network.
func (co *Coordinator) Enroll(c *controller.Controller) *Replica {
	r := co.AddReplica(c)
	gen := co.nextGen()
	for _, p := range co.pods {
		for _, dpid := range p.DPIDs {
			if h := c.Switch(dpid); h != nil {
				h.RequestRole(openflow.RoleSlave, gen, nil)
			}
		}
	}
	return r
}

// Retire gracefully removes a live replica: every pod it carries is
// cooperatively migrated to the least-loaded survivor, then the replica
// is marked dead so it is never again a migration or failover target.
// Retiring the last live replica (or one already dead) is refused.
func (co *Coordinator) Retire(id int) bool {
	if id < 0 || id >= len(co.Replicas) {
		return false
	}
	r := co.Replicas[id]
	if r.dead {
		return false
	}
	alive := 0
	for _, o := range co.Replicas {
		if !o.dead {
			alive++
		}
	}
	if alive < 2 {
		return false
	}
	for _, p := range co.pods { // AddPod order: deterministic
		if co.assign[p.Name] != id {
			continue
		}
		if to := co.leastLoaded(r); to != nil {
			co.migrate(p, to, false)
		}
	}
	r.dead = true
	co.Stats.Retired++
	if co.Trace != nil {
		co.Trace.Mark(fmt.Sprintf("replica-retire %d", id), co.Eng.Now())
	}
	return true
}

// MigratePod asks the coordinator to move one pod from replica `from` to
// replica `to`, applying the same EASM-style pod selection as the
// internal balance loop: among the source's pods it picks the one whose
// move most narrows the load spread, and refuses moves that would merely
// relocate the hotspot. Returns the migrated pod's name, or ok=false
// when the ids are invalid, a replica is dead, or no pod improves the
// spread.
func (co *Coordinator) MigratePod(from, to int) (pod string, ok bool) {
	if from == to || from < 0 || to < 0 || from >= len(co.Replicas) || to >= len(co.Replicas) {
		return "", false
	}
	src, dst := co.Replicas[from], co.Replicas[to]
	if src.dead || dst.dead {
		return "", false
	}
	best := co.pickPod(src, dst)
	if best == nil {
		return "", false
	}
	co.migrate(best, dst, false)
	return best.Name, true
}

// Migrate performs an explicit cooperative migration of a pod.
func (co *Coordinator) Migrate(name string, to *Replica) {
	if p := co.byName[name]; p != nil {
		co.migrate(p, to, false)
	}
}

func (co *Coordinator) nextGen() uint64 {
	co.gen++
	return co.gen
}

// migrate hands a pod to another replica. Cooperative migrations move the
// pod's flow-state subset first (EASM-style make-before-break); failovers
// cannot — the dead replica's state is gone, and recovering flows re-punt
// to the new master and are re-admitted from scratch. Work already queued
// in the app's install schedulers re-resolves switch handles at service
// time, so it drains through the new master's connections.
func (co *Coordinator) migrate(p *Pod, to *Replica, failover bool) {
	fromID := co.assign[p.Name]
	if fromID == to.ID || to.dead {
		return
	}
	from := co.Replicas[fromID]

	if !failover {
		for _, fi := range from.C.FlowDB.All() {
			if p.set[fi.FirstHop] {
				to.C.FlowDB.Put(fi)
				from.C.FlowDB.Delete(fi.Key)
			}
		}
	}
	from.C.Unregister(p.App)
	p.App.Rebind(to.C)
	to.C.Register(p.App)
	co.assign[p.Name] = to.ID
	co.lastMove = co.Eng.Now()

	// Role handoff, fenced by a fresh generation id so the old master —
	// even if partitioned rather than dead — can never reclaim the shard
	// with a stale generation. OpenFlow has no demotion notification, so
	// cooperative migrations tell the old master out of band; the switch
	// itself demotes that connection when the new master's claim lands.
	gen := co.nextGen()
	pending := 0
	for _, dpid := range p.DPIDs {
		if !failover && !from.killed {
			if h := from.C.Switch(dpid); h != nil {
				h.NoteRole(openflow.RoleSlave)
			}
		}
		h := to.C.Switch(dpid)
		if h == nil {
			continue
		}
		pending++
		h.RequestRole(openflow.RoleMaster, gen, nil)
		// The barrier confirms the switch processed the role claim (and
		// everything queued before it); when the last one drains, the
		// handoff is complete.
		h.Barrier(func() {
			pending--
			if pending == 0 {
				co.Stats.HandoffDoneAt = co.Eng.Now()
				if pp, ok := p.App.(PolicyPusher); ok {
					pp.RepublishPolicy()
				}
			}
		})
	}
	if pending == 0 {
		// No switch handles on the target yet (e.g. all dead): still
		// refresh devolved policy through whatever masters remain.
		if pp, ok := p.App.(PolicyPusher); ok {
			pp.RepublishPolicy()
		}
	}
	if failover {
		co.Stats.Failovers++
	} else {
		co.Stats.Migrations++
	}
	if co.Trace != nil {
		kind := "pod-migrate"
		if failover {
			kind = "failover"
		}
		co.Trace.Mark(fmt.Sprintf("%s %s %d->%d", kind, p.Name, fromID, to.ID), co.Eng.Now())
	}
	if co.OnMigrate != nil {
		co.OnMigrate(p.Name, fromID, to.ID, failover)
	}
}

// heartbeat is the replica failure detector: killed replicas stop
// beating, and after HeartbeatMisses silent intervals their pods are
// reassigned to the least-loaded survivors.
func (co *Coordinator) heartbeat() {
	for _, r := range co.Replicas {
		if r.dead {
			continue
		}
		if !r.killed {
			r.missed = 0
			continue
		}
		r.missed++
		if r.missed >= co.Cfg.HeartbeatMisses {
			r.dead = true
			co.Stats.ReplicasLost++
			co.Stats.DetectedAt = co.Eng.Now()
			co.failover(r)
		}
	}
}

func (co *Coordinator) failover(dead *Replica) {
	for _, p := range co.pods { // AddPod order: deterministic
		if co.assign[p.Name] != dead.ID {
			continue
		}
		if to := co.leastLoaded(dead); to != nil {
			co.migrate(p, to, true)
		}
	}
}

func (co *Coordinator) leastLoaded(exclude *Replica) *Replica {
	var best *Replica
	var bestLoad float64
	for _, r := range co.Replicas {
		if r.dead || r == exclude {
			continue
		}
		if l := co.Load(r); best == nil || l < bestLoad {
			best, bestLoad = r, l
		}
	}
	return best
}

// balance compares replica loads and migrates the pod whose move best
// narrows the spread, when the hottest replica is both busy in absolute
// terms and ImbalanceFactor times busier than the coolest.
func (co *Coordinator) balance() {
	now := co.Eng.Now()
	if co.lastMove > 0 && now-co.lastMove < co.Cfg.MigrationCooldown {
		return
	}
	var alive []*Replica
	for _, r := range co.Replicas {
		if !r.dead {
			alive = append(alive, r)
		}
	}
	if len(alive) < 2 {
		return
	}
	maxR, minR := alive[0], alive[0]
	maxL, minL := co.Load(alive[0]), co.Load(alive[0])
	for _, r := range alive[1:] {
		l := co.Load(r)
		if l > maxL {
			maxR, maxL = r, l
		}
		if l < minL {
			minR, minL = r, l
		}
	}
	if maxR == minR || maxL < co.Cfg.MinLoad || maxL <= co.Cfg.ImbalanceFactor*minL {
		return
	}
	if best := co.pickPod(maxR, minR); best != nil {
		co.migrate(best, minR, false)
	}
}

// pickPod selects the source pod whose move to dst minimizes the
// post-move load spread |gap - 2*rate|; a move that would merely
// relocate the hotspot (no strict improvement) is skipped. Returns nil
// when no pod on src improves the spread.
func (co *Coordinator) pickPod(src, dst *Replica) *Pod {
	gap := co.Load(src) - co.Load(dst)
	if gap <= 0 {
		return nil
	}
	var best *Pod
	var bestGap float64
	for _, p := range co.pods {
		if co.assign[p.Name] != src.ID {
			continue
		}
		rate := co.podRate(p, src)
		ng := gap - 2*rate
		if ng < 0 {
			ng = -ng
		}
		if ng >= gap {
			continue
		}
		if best == nil || ng < bestGap {
			best, bestGap = p, ng
		}
	}
	return best
}

// podRate is the pod's contribution to a replica's load: the summed
// Packet-In rates of its switches on that replica's connections.
func (co *Coordinator) podRate(p *Pod, r *Replica) float64 {
	now := co.Eng.Now()
	var sum float64
	for _, dpid := range p.DPIDs {
		if h := r.C.Switch(dpid); h != nil {
			sum += h.PacketInRate.Rate(now)
		}
	}
	return sum
}
