package cluster

import (
	"testing"
	"time"

	"scotch/internal/capture"
	"scotch/internal/controller"
	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

// reactiveApp is a minimal PodApp: a reactive router that installs an
// exact-match rule plus a Packet-Out for each punt on switches it owns.
type reactiveApp struct {
	name    string
	c       *controller.Controller
	owns    func(uint64) bool
	outPort map[netaddr.IPv4]uint32
	handled int
}

func (t *reactiveApp) Name() string                       { return t.name }
func (t *reactiveApp) Rebind(c *controller.Controller)    { t.c = c }
func (t *reactiveApp) SetOwner(fn func(dpid uint64) bool) { t.owns = fn }

func (t *reactiveApp) HandlePacketIn(sw *controller.SwitchHandle, pin *openflow.PacketIn, pkt *packet.Packet) bool {
	if t.owns != nil && !t.owns(sw.DPID) {
		return false
	}
	if pkt == nil {
		return false
	}
	key := pkt.FlowKey()
	out, ok := t.outPort[key.Dst]
	if !ok {
		return false
	}
	if t.c.FlowDB.Lookup(key) != nil {
		// Duplicate punt (a later packet raced the rule install):
		// re-forward without new state, as the real apps do.
		sw.SendPacketOut(&openflow.PacketOut{
			BufferID: 0xffffffff, InPort: openflow.PortController,
			Actions: []openflow.Action{openflow.OutputAction(out)},
			Data:    pin.Data,
		})
		return true
	}
	t.handled++
	sw.InstallFlow(&openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 10, IdleTimeout: 60,
		Match: openflow.Match{
			Fields:  openflow.FieldEthType | openflow.FieldIPProto | openflow.FieldIPv4Src | openflow.FieldIPv4Dst | openflow.FieldTCPSrc | openflow.FieldTCPDst,
			EthType: packet.EtherTypeIPv4, IPProto: key.Proto,
			IPv4Src: key.Src, IPv4Dst: key.Dst, TCPSrc: key.SrcPort, TCPDst: key.DstPort,
		},
		Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.OutputAction(out))},
	})
	sw.SendPacketOut(&openflow.PacketOut{
		BufferID: 0xffffffff, InPort: openflow.PortController,
		Actions: []openflow.Action{openflow.OutputAction(out)},
		Data:    pin.Data,
	})
	t.c.FlowDB.Put(&controller.FlowInfo{Key: key, FirstHop: sw.DPID, Created: t.c.Eng.Now()})
	return true
}

// twoShardRig is two independent edge switches, each its own pod with a
// client and a server, shared by two controller replicas.
type twoShardRig struct {
	eng     *sim.Engine
	net     *topo.Network
	sw      [2]*device.Switch
	clients [2]*device.Host
	servers [2]*device.Host
	cap     *capture.Capture
	co      *Coordinator
	r       [2]*Replica
	apps    [2]*reactiveApp
}

func newTwoShardRig(t *testing.T, cfg Config) *twoShardRig {
	t.Helper()
	rg := &twoShardRig{eng: sim.New(1)}
	rg.net = topo.New(rg.eng)
	link := device.LinkConfig{Delay: 50 * time.Microsecond, RateBps: 1e9}
	rg.cap = capture.New(rg.eng)
	outPorts := [2]map[netaddr.IPv4]uint32{}
	for i := 0; i < 2; i++ {
		rg.sw[i] = rg.net.AddSwitch([]string{"e0", "e1"}[i], device.Pica8Profile())
		rg.clients[i] = rg.net.AddHost([]string{"c0", "c1"}[i], netaddr.MakeIPv4(10, byte(i), 0, 10))
		rg.net.AttachHost(rg.clients[i], rg.sw[i], link)
		rg.servers[i] = rg.net.AddHost([]string{"s0", "s1"}[i], netaddr.MakeIPv4(10, byte(i), 1, 10))
		srvPort := rg.net.AttachHost(rg.servers[i], rg.sw[i], link)
		rg.cap.Attach(rg.servers[i])
		outPorts[i] = map[netaddr.IPv4]uint32{rg.servers[i].IP: srvPort}
	}

	rg.co = New(rg.eng, cfg)
	for i := 0; i < 2; i++ {
		c := controller.New(rg.eng, rg.net)
		c.ConnectAll()
		rg.r[i] = rg.co.AddReplica(c)
	}
	for i := 0; i < 2; i++ {
		app := &reactiveApp{name: []string{"pod-a", "pod-b"}[i], c: rg.r[i].C, outPort: outPorts[i]}
		rg.r[i].C.Register(app)
		rg.apps[i] = app
		rg.co.AddPod(app.name, app, rg.r[i], rg.sw[i].DPID)
	}
	rg.co.Start()
	rg.eng.RunUntil(50 * time.Millisecond) // let the role claims settle
	return rg
}

// sendFlow emits one 3-packet client flow toward the shard's server.
func (rg *twoShardRig) sendFlow(shard int, srcPort uint16) {
	em := workload.NewEmitter(rg.eng, rg.clients[shard], rg.cap)
	em.Start(workload.Flow{
		Key: netaddr.FlowKey{Src: rg.clients[shard].IP, Dst: rg.servers[shard].IP,
			Proto: netaddr.ProtoTCP, SrcPort: srcPort, DstPort: 80},
		Packets: 3, Interval: 5 * time.Millisecond, Size: 64, Class: "client",
	})
}

func TestShardedPuntRouting(t *testing.T) {
	rg := newTwoShardRig(t, DefaultConfig())
	if got := rg.r[0].C.Switch(rg.sw[0].DPID).Role(); got != openflow.RoleMaster {
		t.Fatalf("replica 0 role on own shard = %s", openflow.RoleName(got))
	}
	if got := rg.r[0].C.Switch(rg.sw[1].DPID).Role(); got != openflow.RoleSlave {
		t.Fatalf("replica 0 role on other shard = %s", openflow.RoleName(got))
	}

	rg.sendFlow(0, 2000)
	rg.sendFlow(1, 2001)
	rg.eng.RunUntil(200 * time.Millisecond)

	if rg.apps[0].handled != 1 || rg.apps[1].handled != 1 {
		t.Fatalf("handled = %d/%d, want 1/1", rg.apps[0].handled, rg.apps[1].handled)
	}
	// Each replica saw punts only from its own shard: the switch withholds
	// Packet-Ins from slave connections.
	for i := 0; i < 2; i++ {
		own := rg.r[i].C.Switch(rg.sw[i].DPID).PacketInRate.Total()
		cross := rg.r[i].C.Switch(rg.sw[1-i].DPID).PacketInRate.Total()
		if own == 0 {
			t.Fatalf("replica %d saw no punts from its own shard", i)
		}
		if cross != 0 {
			t.Fatalf("replica %d saw %v punts from the other shard (slave leak)", i, cross)
		}
	}
	if f := rg.cap.FailureFraction("client"); f != 0 {
		t.Fatalf("client flow failure fraction = %v", f)
	}
}

func TestCooperativeMigrationMovesMastershipAndState(t *testing.T) {
	rg := newTwoShardRig(t, DefaultConfig())
	rg.sendFlow(0, 3000)
	rg.eng.RunUntil(200 * time.Millisecond)
	if rg.r[0].C.FlowDB.Len() != 1 {
		t.Fatalf("flow state on home replica = %d", rg.r[0].C.FlowDB.Len())
	}

	rg.co.Migrate("pod-a", rg.r[1])
	rg.eng.RunUntil(300 * time.Millisecond)

	if got := rg.co.Owner("pod-a"); got != rg.r[1].ID {
		t.Fatalf("owner after migrate = %d", got)
	}
	if got := rg.r[1].C.Switch(rg.sw[0].DPID).Role(); got != openflow.RoleMaster {
		t.Fatalf("new master role = %s", openflow.RoleName(got))
	}
	if got := rg.r[0].C.Switch(rg.sw[0].DPID).Role(); got != openflow.RoleSlave {
		t.Fatalf("old master role = %s", openflow.RoleName(got))
	}
	if rg.r[0].C.FlowDB.Len() != 0 || rg.r[1].C.FlowDB.Len() != 1 {
		t.Fatalf("flow state after migrate = %d/%d, want 0/1",
			rg.r[0].C.FlowDB.Len(), rg.r[1].C.FlowDB.Len())
	}
	if rg.co.Stats.Migrations != 1 {
		t.Fatalf("Migrations = %d", rg.co.Stats.Migrations)
	}
	if rg.co.Stats.HandoffDoneAt == 0 {
		t.Fatal("handoff barriers never drained")
	}

	// New flows on the migrated shard are served by the new replica only.
	before0 := rg.r[0].C.Stats.PacketIns
	rg.sendFlow(0, 3001)
	rg.eng.RunUntil(500 * time.Millisecond)
	if rg.apps[0].handled != 2 {
		t.Fatalf("pod app handled = %d, want 2", rg.apps[0].handled)
	}
	if rg.apps[0].c != rg.r[1].C {
		t.Fatal("pod app not rebound to the new replica")
	}
	if rg.r[0].C.Stats.PacketIns != before0 {
		t.Fatal("demoted replica still receives Packet-Ins")
	}
	if f := rg.cap.FailureFraction("client"); f != 0 {
		t.Fatalf("client flow failure fraction = %v", f)
	}
}

func TestFailoverReassignsPodsAfterDetectionWindow(t *testing.T) {
	cfg := DefaultConfig()
	rg := newTwoShardRig(t, cfg)

	killAt := 1050 * time.Millisecond
	rg.eng.Schedule(killAt-rg.eng.Now(), func() { rg.r[0].Kill() })
	rg.eng.RunUntil(2 * time.Second)

	if rg.r[0].Alive() {
		t.Fatal("killed replica still considered alive")
	}
	if got := rg.co.Owner("pod-a"); got != rg.r[1].ID {
		t.Fatalf("owner after failover = %d", got)
	}
	if rg.co.Stats.Failovers != 1 || rg.co.Stats.ReplicasLost != 1 {
		t.Fatalf("Failovers/ReplicasLost = %d/%d",
			rg.co.Stats.Failovers, rg.co.Stats.ReplicasLost)
	}
	detect := rg.co.Stats.DetectedAt - sim.Time(killAt)
	window := time.Duration(cfg.HeartbeatMisses) * cfg.HeartbeatInterval
	if detect <= 0 || detect > window+cfg.HeartbeatInterval {
		t.Fatalf("detection latency = %v, want within (0, %v]", detect, window+cfg.HeartbeatInterval)
	}

	// The surviving replica serves the failed shard's new flows.
	rg.sendFlow(0, 4000)
	rg.eng.RunUntil(2500 * time.Millisecond)
	if rg.apps[0].handled != 1 {
		t.Fatalf("pod app handled = %d, want 1", rg.apps[0].handled)
	}
	if f := rg.cap.FailureFraction("client"); f != 0 {
		t.Fatalf("client flow failure fraction = %v", f)
	}
}

func TestBalancerMigratesHotPod(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinLoad = 50
	rg := &twoShardRig{eng: sim.New(7)}
	rg.net = topo.New(rg.eng)
	link := device.LinkConfig{Delay: 50 * time.Microsecond, RateBps: 1e9}
	rg.cap = capture.New(rg.eng)
	outPorts := [2]map[netaddr.IPv4]uint32{}
	for i := 0; i < 2; i++ {
		rg.sw[i] = rg.net.AddSwitch([]string{"e0", "e1"}[i], device.Pica8Profile())
		rg.clients[i] = rg.net.AddHost([]string{"c0", "c1"}[i], netaddr.MakeIPv4(10, byte(i), 0, 10))
		rg.net.AttachHost(rg.clients[i], rg.sw[i], link)
		rg.servers[i] = rg.net.AddHost([]string{"s0", "s1"}[i], netaddr.MakeIPv4(10, byte(i), 1, 10))
		srvPort := rg.net.AttachHost(rg.servers[i], rg.sw[i], link)
		rg.cap.Attach(rg.servers[i])
		outPorts[i] = map[netaddr.IPv4]uint32{rg.servers[i].IP: srvPort}
	}
	rg.co = New(rg.eng, cfg)
	for i := 0; i < 2; i++ {
		c := controller.New(rg.eng, rg.net)
		c.ConnectAll()
		rg.r[i] = rg.co.AddReplica(c)
	}
	// Both pods start on replica 0; replica 1 is an idle spare.
	for i := 0; i < 2; i++ {
		app := &reactiveApp{name: []string{"pod-a", "pod-b"}[i], c: rg.r[0].C, outPort: outPorts[i]}
		rg.r[0].C.Register(app)
		rg.apps[i] = app
		rg.co.AddPod(app.name, app, rg.r[0], rg.sw[i].DPID)
	}
	rg.co.Start()
	rg.eng.RunUntil(50 * time.Millisecond)

	// Pod A runs hot (every spoofed flow punts once); pod B stays light.
	atk := workload.StartDDoS(workload.NewEmitter(rg.eng, rg.clients[0], rg.cap), rg.servers[0].IP, 300)
	cli := workload.StartClient(workload.NewEmitter(rg.eng, rg.clients[1], rg.cap), rg.servers[1].IP, 20, 1, 0)
	rg.eng.RunUntil(5 * time.Second)
	atk.Stop()
	cli.Stop()

	if rg.co.Stats.Migrations == 0 {
		t.Fatal("balancer never migrated under sustained imbalance")
	}
	if got := rg.co.Owner("pod-a"); got != rg.r[1].ID {
		t.Fatalf("hot pod owner = %d, want the idle replica", got)
	}
	if got := rg.co.Owner("pod-b"); got != rg.r[0].ID {
		t.Fatalf("light pod owner = %d, want to stay put", got)
	}
}

// pusherApp is a reactiveApp that also devolves policy: the coordinator
// must call RepublishPolicy once a migration's role handoff completes,
// so switch-resident caches are re-fed by the new master.
type pusherApp struct {
	reactiveApp
	republished int
}

func (p *pusherApp) RepublishPolicy() { p.republished++ }

func TestMigrationRepublishesDevolvedPolicy(t *testing.T) {
	rg := newTwoShardRig(t, DefaultConfig())
	app := &pusherApp{reactiveApp: *rg.apps[0]}
	// Swap the pod's app for the policy-pushing variant.
	rg.co.byName["pod-a"].App = app

	rg.co.Migrate("pod-a", rg.r[1])
	if app.republished != 0 {
		t.Fatal("policy republished before the role handoff was confirmed")
	}
	rg.eng.RunUntil(300 * time.Millisecond)
	if app.republished != 1 {
		t.Fatalf("republished = %d, want 1 (after barrier-confirmed handoff)", app.republished)
	}

	// A pod without PolicyPusher must keep migrating fine (interface is
	// optional): move pod-b cooperatively too.
	rg.co.Migrate("pod-b", rg.r[0])
	rg.eng.RunUntil(600 * time.Millisecond)
	if rg.co.Stats.Migrations != 2 {
		t.Fatalf("Migrations = %d, want 2", rg.co.Stats.Migrations)
	}
}
