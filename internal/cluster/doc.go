// Package cluster shards the SDN control plane across multiple controller
// replicas, going beyond the paper's single-controller evaluation: §7
// observes that Scotch "can be easily extended to support multiple
// controllers" by partitioning switches among them. Each replica is a full
// controller.Controller running the Scotch application over its shard; a
// coordinator watches per-replica load (Packet-In rate plus queue depth)
// and rebalances by migrating pods — OpenFlow 1.3 master/slave role
// handoff with generation fencing, flow-state transfer, and in-flight
// work draining through the new master — and recovers from replica death
// via heartbeat-based failure detection.
package cluster
