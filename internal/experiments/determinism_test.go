package experiments

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"strings"
	"testing"
)

// fastIDs are the experiments cheap enough to run repeatedly in the normal
// test cycle (each well under ~5s). Set SCOTCH_DETERMINISM_ALL=1 to run the
// properties over every registered experiment (several minutes).
var fastIDs = []string{"table1", "fig4", "fig8", "fig9", "fig14", "elastic",
	"scenario-multitenant", "scenario-fattree", "scenario-replay",
	"devolve-ablation", "devolve-invalidate", "obs-slo",
	"elastic-under-migration", "replica-scale-out"}

func determinismIDs(t *testing.T) []string {
	t.Helper()
	if os.Getenv("SCOTCH_DETERMINISM_ALL") != "" {
		var ids []string
		for _, e := range All() {
			ids = append(ids, e.ID)
		}
		return ids
	}
	if testing.Short() || raceEnabled {
		// The race detector slows these sim-heavy runs 10-20x; two
		// experiments still exercise the serial-vs-parallel machinery.
		return fastIDs[:2]
	}
	return fastIDs
}

// TestSameSeedByteIdentical runs each experiment twice and requires
// byte-identical output: every experiment builds its world on a freshly
// seeded sim.Engine, so a repeat run must reproduce the exact same bytes.
// Any divergence means nondeterminism leaked into a model (map iteration,
// wall-clock reads, shared state across runs).
func TestSameSeedByteIdentical(t *testing.T) {
	for _, id := range determinismIDs(t) {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			var a, b bytes.Buffer
			if err := e.Run(&a); err != nil {
				t.Fatal(err)
			}
			if err := e.Run(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("two runs of %s diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
					id, a.String(), b.String())
			}
		})
	}
}

// TestSerialParallelIdentical requires the parallel runner's concatenated
// output to be byte-identical to a serial run of the same ids, for several
// parallelism degrees. Goroutine interleaving must not be observable.
func TestSerialParallelIdentical(t *testing.T) {
	ids := determinismIDs(t)
	serial, err := RunAll(context.Background(), ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteResults(&want, serial); err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("serial run produced no output")
	}
	for _, par := range []int{2, 4, len(ids)} {
		results, err := RunAll(context.Background(), ids, par)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := WriteResults(&got, results); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("parallelism %d: concatenated output differs from serial run", par)
		}
		for i, r := range results {
			if r.ID != ids[i] {
				t.Errorf("parallelism %d: result %d is %q, want %q", par, i, r.ID, ids[i])
			}
			if r.Wall <= 0 {
				t.Errorf("parallelism %d: %s reported non-positive wall time", par, r.ID)
			}
		}
	}
}

// TestRunAllUnknownID verifies the runner rejects unknown experiments
// before starting any work.
func TestRunAllUnknownID(t *testing.T) {
	if _, err := RunAll(context.Background(), []string{"table1", "nope"}, 2); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

// TestRunAllCancellation verifies a canceled context stops the feed: with
// parallelism 1 and a pre-canceled context, no experiment should start.
func TestRunAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := RunAll(ctx, []string{"table1", "fig14"}, 1)
	if err == nil {
		t.Fatal("expected context error")
	}
	for _, r := range results {
		if r.ID != "" {
			t.Fatalf("experiment %s ran despite canceled context", r.ID)
		}
	}
}

// TestRunAllErrorPropagation temporarily registers a failing experiment and
// checks RunAll reports its error wrapped with the experiment id, while the
// healthy experiments before it in the id list still produce output.
func TestRunAllErrorPropagation(t *testing.T) {
	const id = "test-failing-experiment"
	register(Experiment{
		ID:    id,
		Title: "always fails (test only)",
		Run:   func(io.Writer) error { return errors.New("boom") },
	})
	defer func() {
		delete(registry, id)
		order = order[:len(order)-1]
	}()

	results, err := RunAll(context.Background(), []string{"table1", id}, 1)
	if err == nil || !strings.Contains(err.Error(), id) || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want wrapped boom from %s", err, id)
	}
	if len(results) != 2 || len(results[0].Output) == 0 {
		t.Fatalf("healthy experiment before the failure lost its output: %+v", results)
	}
	if results[1].Err == nil {
		t.Fatal("failing experiment's result has nil Err")
	}
}
