package experiments

import (
	"bytes"
	"context"
	"testing"
)

// TestClusterScaleImprovement is the headline acceptance criterion for the
// cluster subsystem: at flash-crowd saturation, four replicas must sustain
// at least twice the successful-flow rate of a single replica.
func TestClusterScaleImprovement(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster sweep")
	}
	_, d1, r1, _ := clusterScalePoint(1, 11)
	_, d4, r4, drops4 := clusterScalePoint(4, 11)
	if d1 == 0 {
		t.Fatal("single replica delivered nothing; workload broken")
	}
	if float64(d4) < 2*float64(d1) {
		t.Errorf("4 replicas delivered %d flows vs %d on 1 replica; want >= 2x", d4, d1)
	}
	if r4 < 2*r1 {
		t.Errorf("4-replica success rate %.1f/s vs %.1f/s on 1 replica; want >= 2x", r4, r1)
	}
	if drops4 != 0 {
		t.Errorf("4 replicas dropped %d punts; the sharded cluster should absorb the crowd", drops4)
	}
}

// TestClusterMigrateZeroLoss checks the migration experiment's acceptance
// criteria: the balancer hands the hot pod to the idle replica mid-surge
// and no client flow is lost across the mastership change.
func TestClusterMigrateZeroLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster run")
	}
	res := clusterMigratePoint(13)
	if res.migrations < 1 {
		t.Fatalf("migrations = %d, want >= 1", res.migrations)
	}
	if res.ownerAfter == res.ownerBefore {
		t.Errorf("hot pod still on replica %d after the surge", res.ownerAfter)
	}
	if res.clientSent == 0 {
		t.Fatal("no client flows emitted; workload broken")
	}
	if res.clientFailFrac != 0 {
		t.Errorf("client failure fraction = %.4f across the handoff, want 0", res.clientFailFrac)
	}
}

// TestClusterFailoverDetection checks that a killed replica is detected
// within the heartbeat window and its shard re-mastered on the survivor.
func TestClusterFailoverDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster run")
	}
	res := clusterFailoverPoint(17)
	if res.failovers != 1 {
		t.Fatalf("failovers = %d, want 1", res.failovers)
	}
	// Detection is heartbeat-driven: at most misses*interval + one interval
	// of phase slack (default 3x100ms + 100ms).
	if res.detectMs <= 0 || res.detectMs > 400 {
		t.Errorf("detection latency = %.1fms, want in (0, 400]", res.detectMs)
	}
	if res.handoffMs < res.detectMs {
		t.Errorf("handoff (%.1fms) completed before detection (%.1fms)", res.handoffMs, res.detectMs)
	}
	if res.clientFailFrac != 0 {
		t.Errorf("client failure fraction = %.4f across the failover, want 0", res.clientFailFrac)
	}
}

// TestClusterDeterminism runs each cluster experiment twice with the same
// seed and requires byte-identical output, then checks that the parallel
// runner produces the same bytes as the serial one.
func TestClusterDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster runs")
	}
	ids := []string{"cluster-scale", "cluster-migrate", "cluster-failover"}
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		var a, b bytes.Buffer
		if err := e.Run(&a); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := e.Run(&b); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: same-seed reruns differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", id, a.String(), b.String())
		}
	}

	serial := runAllOutputs(t, ids, 1)
	parallel := runAllOutputs(t, ids, 2)
	for _, id := range ids {
		if serial[id] != parallel[id] {
			t.Errorf("%s: serial vs parallel output differs:\n--- serial ---\n%s--- parallel ---\n%s",
				id, serial[id], parallel[id])
		}
	}
}

func runAllOutputs(t *testing.T, ids []string, parallelism int) map[string]string {
	t.Helper()
	results, err := RunAll(context.Background(), ids, parallelism)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(results))
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		out[r.ID] = string(r.Output)
	}
	return out
}
