package experiments

import "testing"

// TestDevolveAblationBounds pins the tentpole acceptance criteria: with
// per-tenant policies devolved to a pool of 4 mesh vSwitches, the
// controller's Packet-In count must drop to at most centralized/pool x
// 1.25, and the legitimate (base) tenant's p99 flow-setup latency must
// stay within 1.1x of the centralized run.
func TestDevolveAblationBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two 12s scenario simulations")
	}
	res := devolveAblationPoint(71)
	if res.centralized.packetIns == 0 {
		t.Fatal("centralized run produced no controller Packet-Ins")
	}
	bound := 1.25 / float64(devolvePool)
	if res.piRatio > bound {
		t.Errorf("devolved/centralized Packet-In ratio %.4f, bound <= %.4f",
			res.piRatio, bound)
	}
	if res.p99Ratio <= 0 {
		t.Fatalf("degenerate base p99 ratio %v", res.p99Ratio)
	}
	if res.p99Ratio > 1.1 {
		t.Errorf("base tenant p99 ratio devolved/centralized = %.3f, bound <= 1.1", res.p99Ratio)
	}
	if res.devolved.hits == 0 {
		t.Error("devolved run absorbed no misses locally")
	}
	// Every tenant must appear in both arms with flows observed.
	for _, arm := range []struct {
		name string
		rows []latRow
	}{{"centralized", res.centralized.rows}, {"devolved", res.devolved.rows}} {
		seen := map[string]bool{}
		for _, r := range arm.rows {
			seen[r.tenant] = true
			if r.flows == 0 {
				t.Errorf("%s: tenant %s observed no flows", arm.name, r.tenant)
			}
		}
		for _, tenant := range []string{"base", "crowd", "ddos"} {
			if !seen[tenant] {
				t.Errorf("%s: tenant %s missing", arm.name, tenant)
			}
		}
	}
}

// TestDevolveInvalidateNoStaleDelivery pins the invalidation claims: a
// revoked tenant gains no local hits after the revoke lands, stale
// policy generations are fenced (including at a flushed post-drain
// cache), and traffic keeps completing through central fallback.
func TestDevolveInvalidateNoStaleDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 10s scenario simulation")
	}
	res := devolveInvalidatePoint(72)
	if res.webHitsAtRevoke == 0 {
		t.Fatal("web tenant never devolved before the revoke")
	}
	if res.webHitsFinal != res.webHitsAtRevoke {
		t.Errorf("web hits grew after revoke: %d -> %d (stale policy delivered)",
			res.webHitsAtRevoke, res.webHitsFinal)
	}
	if res.bulkHitsFinal == 0 {
		t.Error("bulk tenant stopped devolving after an unrelated revoke")
	}
	if res.staleRejected < 2 {
		t.Errorf("staleRejected = %d, want >= 2 (replayed table + post-drain replay)",
			res.staleRejected)
	}
	if !res.drainFlushed {
		t.Error("drained member's cache was not flushed")
	}
	if !res.drainStaleOK {
		t.Error("flushed cache accepted a stale generation")
	}
	if res.webCompletion < 0.9 || res.bulkCompletion < 0.9 {
		t.Errorf("completions web=%.3f bulk=%.3f, want >= 0.9 (central fallback)",
			res.webCompletion, res.bulkCompletion)
	}
}
