package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"scotch/internal/balance"
	"scotch/internal/cluster"
	"scotch/internal/controller"
	"scotch/internal/elastic"
	"scotch/internal/obs"
	"scotch/internal/scotch"
	"scotch/internal/sim"
	"scotch/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "elastic-under-migration",
		Title: "Joint balancer: vSwitch pool grows while a pod migration is in flight, zero client-flow loss (beyond paper, §3+§7)",
		Run:   runElasticUnderMigration,
	})
	register(Experiment{
		ID:    "replica-scale-out",
		Title: "Joint balancer: flash crowd saturates the cluster, SLO burn escalates to a replica spawn, burn recovers (beyond paper, §7)",
		Run:   runReplicaScaleOut,
	})
}

// The balance advisor is armed process-wide like tracing and health
// observation: when enabled, every rig whose observatory arms also gets
// an Advise-mode balancer reading that observatory's snapshots. Advise
// mode never actuates, so arming it cannot change experiment outputs —
// the determinism suite pins that byte-for-byte.
var balanceState struct {
	sync.Mutex
	enabled bool
	n       int
	runs    []NamedBalance
}

// NamedBalance pairs one rig's advisory balancer with its build-order
// run name ("run1", "run2", ...).
type NamedBalance struct {
	Name string
	B    *balance.Balancer
}

// EnableBalanceAdvisor arms an Advise-mode joint balancer on every rig
// built from now on. It requires the observatory to be armed too (the
// advisor's only input is the observatory's ClusterView); call
// EnableObservatory first. Clears previously collected runs.
func EnableBalanceAdvisor() {
	balanceState.Lock()
	defer balanceState.Unlock()
	balanceState.enabled = true
	balanceState.n = 0
	balanceState.runs = nil
}

// DisableBalanceAdvisor disarms the advisor and drops collected runs.
func DisableBalanceAdvisor() {
	balanceState.Lock()
	defer balanceState.Unlock()
	balanceState.enabled = false
	balanceState.n = 0
	balanceState.runs = nil
}

// CollectedBalance returns the advisory balancers of every rig built
// since EnableBalanceAdvisor, in build order.
func CollectedBalance() []NamedBalance {
	balanceState.Lock()
	defer balanceState.Unlock()
	return append([]NamedBalance(nil), balanceState.runs...)
}

// newRunAdvisor attaches an Advise-mode balancer to a freshly armed rig
// observatory. Called by newRunObservatory/newClusterRunObservatory; a
// nil observatory (observation disarmed) leaves the rig advisor-free.
func newRunAdvisor(eng sim.Proc, o *obs.Observatory) {
	if o == nil {
		return
	}
	balanceState.Lock()
	defer balanceState.Unlock()
	if !balanceState.enabled {
		return
	}
	balanceState.n++
	cfg := balance.DefaultConfig()
	cfg.Advise = true
	b := balance.New(eng, cfg, o.Snapshot, balance.Actuators{}).Start()
	balanceState.runs = append(balanceState.runs, NamedBalance{
		Name: fmt.Sprintf("run%d", balanceState.n),
		B:    b,
	})
}

// WriteDecisions prints a balancer's decision log in a compact,
// deterministic form: one line per decision with its simulation
// timestamp, action, applied/held status, and operator-facing reason.
// Both balance experiments and scotchsim's -balance flag render with it.
func WriteDecisions(w io.Writer, log []balance.DecisionRecord) {
	for _, d := range log {
		applied := "applied"
		if !d.Applied {
			applied = "held"
		}
		extra := ""
		switch d.Action {
		case balance.ActionMigrate:
			if d.Pod != "" {
				extra = fmt.Sprintf(" pod=%s %d->%d", d.Pod, d.From, d.To)
			}
		case balance.ActionRetireReplica:
			extra = fmt.Sprintf(" id=%d", d.Retire)
		}
		errText := ""
		if d.Err != "" {
			errText = " err=" + d.Err
		}
		fmt.Fprintf(w, "%7.2fs %-14s %-7s%s  (%s)%s\n",
			d.At.Seconds(), d.Action, applied, extra, d.Reason, errText)
	}
}

// elasticUnderMigrationResult is one joint pool+migration run: the
// per-second pool-size and pod0-ownership trajectories, the balancer's
// action counts, and the loss accounting the acceptance test pins.
type elasticUnderMigrationResult struct {
	sizes  []int // pool size at t = 1s, 2s, ...
	owners []int // pod0's owning replica at t = 1s, 2s, ...

	grows      uint64
	drains     uint64
	migrations uint64
	finalPool  int

	// firstGrow / firstMigrate / growAfterMigrate order-stamp the
	// interleaving the experiment exists to demonstrate: the pool grew,
	// then a pod migrated, then the pool grew again — elasticity and
	// migration active over the same rig at the same time.
	firstGrow, firstMigrate, growAfterMigrate sim.Time

	clientSent int
	clientFail float64
	log        []balance.DecisionRecord
}

// elasticUnderMigrationPoint runs two pods, both homed on replica 0 with
// replica 1 an idle spare, and pod 0 carrying the elastic vSwitch pool
// (2 mesh members + 3 standbys). A steady 600 flows/s crowd loads pod 1
// and a ramping 0->1200 flows/s crowd hits pod 0, so two independent
// pressures build: the pod-0 overlay saturates (pool must grow) and
// replica 0 carries everything (a pod must migrate). The joint balancer
// is the only controller of both: the coordinator's internal balance
// loop is off (BalanceInterval 0) and no standalone autoscaler runs.
// Replica capacity is infinite, so any client-flow loss would be
// attributable to the growth/drain/migration machinery itself — the
// experiment asserts there is none.
func elasticUnderMigrationPoint(seed int64) elasticUnderMigrationResult {
	const dur = 18 * time.Second
	scfg := scotch.DefaultConfig()
	// Fast rule idle-out so drained members' flow tables quiesce within
	// the run, as the elastic experiment does.
	scfg.RuleIdleTimeout = 2 * time.Second
	// Slow TCAM pacing makes the overlay carry everything beyond 200
	// flows/s — the surge is control-plane pressure on the pool, not on
	// the physical install path.
	scfg.InstallRate = 200
	ccfg := cluster.DefaultConfig()
	ccfg.BalanceInterval = 0 // the joint balancer owns migration
	r := newClusterRig(clusterRigConfig{
		seed:     seed,
		pods:     2,
		replicas: 2,
		scfg:     scfg,
		ccfg:     ccfg,
		homes:    []int{0, 0},
		standby:  3,
	})

	// The balancer's only input is a ClusterView, so the experiment owns
	// an observatory over the rig: coordinator (replica loads/liveness)
	// plus pod 0's vSwitch pool and its overlay-rate load signal.
	o := obs.New(r.eng, obs.Config{})
	o.WatchCoordinator(r.co)
	standby := make([]uint64, 0, len(r.pods[0].standby))
	for _, sb := range r.pods[0].standby {
		standby = append(standby, sb.DPID)
	}
	pool := elastic.NewVSwitchPool(r.pods[0].app, standby)
	o.WatchPool(pool, nil)
	o.Series("elastic", "load", elastic.OverlayRate(r.eng, r.pods[0].app, pool))
	o.Start()

	bcfg := balance.DefaultConfig()
	bcfg.MinPool = 2 // the rig's two permanent mesh members never drain
	bcfg.MaxPool = 5 // 2 permanent + 3 standbys
	bcfg.PoolGrowLoad = 100
	bcfg.MigrateMinLoad = 1300
	b := balance.New(r.eng, bcfg, o.Snapshot, balance.Actuators{
		Pool:     pool,
		Migrator: r.co,
	}).Start()

	cli0 := workload.StartClient(workload.NewEmitter(r.eng, r.pods[0].client, r.cap),
		r.pods[0].server.IP, 40, 4, 10*time.Millisecond)
	cli1 := workload.StartClient(workload.NewEmitter(r.eng, r.pods[1].client, r.cap),
		r.pods[1].server.IP, 40, 4, 10*time.Millisecond)
	surge := r.startCrowd(0, workload.FlashCrowd{
		Base: 0, Peak: 1200,
		RampStart: 2 * time.Second, PeakStart: 6 * time.Second,
		PeakEnd: 10 * time.Second, RampEnd: 12 * time.Second,
	}, "crowd")
	// Ramped, not instant: a cold pod cannot absorb 600/s before its
	// overlay activates, and early punt loss would pollute the zero-loss
	// assertion this experiment makes about the balancer's actions.
	steady := r.startCrowd(1, workload.FlashCrowd{
		Base: 20, Peak: 600,
		RampStart: time.Second, PeakStart: 3 * time.Second,
		PeakEnd: 16 * time.Second, RampEnd: 17 * time.Second,
	}, "crowd")

	var res elasticUnderMigrationResult
	r.eng.Every(time.Second, func() {
		res.sizes = append(res.sizes, pool.Size())
		res.owners = append(res.owners, r.co.Owner("pod0"))
	})

	r.eng.RunUntil(dur)
	surge.Stop()
	steady.Stop()
	cli0.Stop()
	cli1.Stop()
	// Let in-flight flows land and the last drains finish.
	r.eng.RunUntil(dur + 2*time.Second)
	b.Stop()
	o.Stop()

	res.grows = b.Stats.Grows
	res.drains = b.Stats.Drains
	res.migrations = b.Stats.Migrations
	res.finalPool = pool.Size()
	res.log = b.Log()
	for _, d := range res.log {
		if !d.Applied {
			continue
		}
		switch d.Action {
		case balance.ActionGrowPool:
			if res.firstGrow == 0 {
				res.firstGrow = d.At
			}
			if res.firstMigrate != 0 && res.growAfterMigrate == 0 {
				res.growAfterMigrate = d.At
			}
		case balance.ActionMigrate:
			if res.firstMigrate == 0 {
				res.firstMigrate = d.At
			}
		}
	}
	res.clientSent, _ = r.cap.Counts("client")
	res.clientFail = r.cap.FailureFraction("client")
	return res
}

func runElasticUnderMigration(w io.Writer) error {
	res := elasticUnderMigrationPoint(23)
	t := newTable(w, "t_s", "pool_size", "pod0_owner")
	for i := range res.sizes {
		t.row(i+1, res.sizes[i], res.owners[i])
	}
	t.flush()
	fmt.Fprintln(w, "decisions:")
	WriteDecisions(w, res.log)
	fmt.Fprintf(w, "grows=%d drains=%d migrations=%d final_pool=%d\n",
		res.grows, res.drains, res.migrations, res.finalPool)
	fmt.Fprintf(w, "first_grow=%.2fs first_migrate=%.2fs grow_after_migrate=%.2fs\n",
		res.firstGrow.Seconds(), res.firstMigrate.Seconds(), res.growAfterMigrate.Seconds())
	fmt.Fprintf(w, "client_flows=%d client_fail=%.3f\n", res.clientSent, res.clientFail)
	return nil
}

// replicaScaleOutResult is one burn-driven replica scale-out run: the
// per-second alive-replica and pod-placement trajectories, the balancer's
// action counts, and the SLO digest facts the acceptance test pins.
type replicaScaleOutResult struct {
	alive    []int // alive replicas at t = 1s, 2s, ...
	podSplit []int // flattened pods-per-replica, maxReplicas wide per row
	queueSum []int // summed replica ingress queue depth at t = 1s, 2s, ...

	spawns     uint64
	retires    uint64
	migrations uint64
	finalAlive int

	verdictPath  string
	peakBurnLong float64

	clientSent int
	log        []balance.DecisionRecord
}

// replicaScaleOutMaxReplicas bounds the run's replica count; the
// podSplit table is this many columns wide.
const replicaScaleOutMaxReplicas = 3

// replicaScaleOutPoint runs six pods split evenly across two replicas of
// 450 Packet-Ins/s capacity each. A flash crowd ramps every pod to 150
// flows/s on top of 20 flows/s of steady clients — 1020 flows/s
// aggregate against 900/s of processing, so queues grow, flow-setup p99
// blows through its 50ms objective, and the SLO burn rate spikes.
// Cheaper remedies can't help: there is no vSwitch pool to grow, and
// with both replicas equally hot there is no migration target. Burn is
// the escalation signal — the balancer spawns a third replica, then
// rebalances pods onto it by migration, and the burn recovers. After the
// crowd subsides the cluster goes idle and the balancer retires the
// coldest replica back to the floor of two. Six pods matter: an odd pod
// count per replica leaves a visible imbalance after the spawn, which is
// exactly what the migration rung exists to fix.
func replicaScaleOutPoint(seed int64) replicaScaleOutResult {
	const (
		dur      = 18 * time.Second
		capacity = 450
		queue    = 256
	)
	ccfg := cluster.DefaultConfig()
	ccfg.BalanceInterval = 0 // the joint balancer owns migration
	r := newClusterRig(clusterRigConfig{
		seed:     seed,
		pods:     6,
		replicas: 2,
		capacity: capacity,
		queue:    queue,
		scfg:     scotch.DefaultConfig(),
		ccfg:     ccfg,
		homes:    []int{0, 1, 0, 1, 0, 1},
	})

	// Experiment-owned observatory: replica loads/liveness for the
	// policy, plus the client flow-setup SLO whose burn rate is the
	// spawn escalation signal.
	o := obs.New(r.eng, obs.Config{SLOs: []obs.SLO{{
		Name:   "client-p99",
		Tenant: "client",
		Target: 50 * time.Millisecond,
	}}})
	o.WatchCoordinator(r.co)
	lt := workload.NewLatencyTracker(nil)
	lt.AttachCapture(r.cap)
	o.WatchLatency(lt)
	o.Start()

	bcfg := balance.DefaultConfig()
	bcfg.MigrateMinLoad = 200
	bcfg.ReplicaHotLoad = 300
	bcfg.ReplicaIdleLoad = 80
	bcfg.MinReplicas = 2
	bcfg.MaxReplicas = replicaScaleOutMaxReplicas
	b := balance.New(r.eng, bcfg, o.Snapshot, balance.Actuators{
		Migrator: r.co,
		Replicas: balance.ReplicaFuncs{
			SpawnFn: func() error {
				c := controller.New(r.eng, r.net)
				c.SetCapacity(capacity, queue)
				c.ConnectAll()
				r.replicas = append(r.replicas, r.co.Enroll(c))
				// Re-watching the coordinator picks the new replica up;
				// existing series keep their rings.
				o.WatchCoordinator(r.co)
				return nil
			},
			RetireFn: func(id int) error {
				if !r.co.Retire(id) {
					return fmt.Errorf("coordinator refused to retire replica %d", id)
				}
				return nil
			},
		},
	}).Start()

	var clients []*workload.ClientGen
	var crowds []*workload.FlashCrowd
	for p := range r.pods {
		clients = append(clients, workload.StartClient(
			workload.NewEmitter(r.eng, r.pods[p].client, r.cap),
			r.pods[p].server.IP, 20, 4, 10*time.Millisecond))
		crowds = append(crowds, r.startCrowd(p, workload.FlashCrowd{
			Base: 10, Peak: 150,
			RampStart: 2 * time.Second, PeakStart: 5 * time.Second,
			PeakEnd: 12 * time.Second, RampEnd: 13 * time.Second,
		}, "crowd"))
	}

	var res replicaScaleOutResult
	r.eng.Every(time.Second, func() {
		n, qsum := 0, 0
		counts := make([]int, replicaScaleOutMaxReplicas)
		for _, rep := range r.co.Replicas {
			if rep.Alive() {
				n++
				qsum += rep.C.QueueDepth()
			}
		}
		for p := range r.pods {
			if owner := r.co.Owner(r.pods[p].name); owner >= 0 && owner < len(counts) {
				counts[owner]++
			}
		}
		res.alive = append(res.alive, n)
		res.queueSum = append(res.queueSum, qsum)
		res.podSplit = append(res.podSplit, counts...)
	})

	r.eng.RunUntil(dur)
	for _, c := range crowds {
		c.Stop()
	}
	for _, c := range clients {
		c.Stop()
	}
	r.eng.RunUntil(dur + time.Second)
	b.Stop()
	o.Stop()

	res.spawns = b.Stats.Spawns
	res.retires = b.Stats.Retires
	res.migrations = b.Stats.Migrations
	res.log = b.Log()
	for _, rep := range r.co.Replicas {
		if rep.Alive() {
			res.finalAlive++
		}
	}
	if s := o.Digest("replica-scale-out").SLO("client-p99"); s != nil {
		res.verdictPath = s.VerdictPath
		res.peakBurnLong = s.PeakBurnLong
	}
	res.clientSent, _ = r.cap.Counts("client")
	return res
}

func runReplicaScaleOut(w io.Writer) error {
	res := replicaScaleOutPoint(31)
	t := newTable(w, "t_s", "alive", "pods_r0", "pods_r1", "pods_r2", "queue_sum")
	for i := range res.alive {
		row := res.podSplit[i*replicaScaleOutMaxReplicas : (i+1)*replicaScaleOutMaxReplicas]
		t.row(i+1, res.alive[i], row[0], row[1], row[2], res.queueSum[i])
	}
	t.flush()
	fmt.Fprintln(w, "decisions:")
	WriteDecisions(w, res.log)
	fmt.Fprintf(w, "spawns=%d retires=%d migrations=%d final_alive=%d\n",
		res.spawns, res.retires, res.migrations, res.finalAlive)
	fmt.Fprintf(w, "client-p99: verdict_path=%s peak_burn_long=%.1f client_flows=%d\n",
		res.verdictPath, res.peakBurnLong, res.clientSent)
	return nil
}
