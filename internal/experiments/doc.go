// Package experiments contains one runnable reproduction per table and
// figure of the paper's evaluation (§6), plus the ablations DESIGN.md
// calls out, the multi-controller cluster scenarios (§7), and the chaos
// scenarios that drive the §5 reliability mechanisms through injected
// faults. Each experiment builds its topology and workload on a fresh
// simulation engine, runs for a fixed span of virtual time, and prints
// the same rows/series the paper reports. EXPERIMENTS.md records
// paper-vs-measured for each.
package experiments
