package experiments

import (
	"fmt"
	"sync"
	"time"

	"scotch/internal/obs"
	"scotch/internal/workload"
)

// The observatory is armed process-wide and attached to every rig built
// afterward, mirroring the tracing arming pattern: each rig gets a
// private observatory, collected in build order. Like tracing, an armed
// observatory is meant for serial runs of a single experiment; the
// determinism suite verifies separately that arming it does not change
// any experiment's output bytes.
var obsState struct {
	sync.Mutex
	enabled bool
	cfg     obs.Config
	n       int
	runs    []NamedHealth
	current *obs.Observatory
}

// NamedHealth pairs one rig's observatory with its build-order run name
// ("run1", "run2", ...).
type NamedHealth struct {
	Name string
	Obs  *obs.Observatory
}

// defaultRigSLOs are the objectives armed observatories evaluate on
// every rig: flow-setup p99 under 50ms over 1s/3s burn windows, for the
// tenant classes the stock experiments emit.
func defaultRigSLOs() []obs.SLO {
	var out []obs.SLO
	for _, tenant := range []string{"client", "base", "crowd"} {
		out = append(out, obs.SLO{
			Name:   tenant + "-p99",
			Tenant: tenant,
			Target: 50 * time.Millisecond,
		})
	}
	return out
}

// EnableObservatory arms health observation for rigs built from now on
// with the default config, and clears previously collected runs.
func EnableObservatory() {
	EnableObservatoryWith(obs.Config{SLOs: defaultRigSLOs()})
}

// EnableObservatoryWith arms health observation with an explicit
// observatory config (e.g. to set a ProfileDir for breach captures). A
// nil SLO list selects the default rig objectives.
func EnableObservatoryWith(cfg obs.Config) {
	if cfg.SLOs == nil {
		cfg.SLOs = defaultRigSLOs()
	}
	obsState.Lock()
	defer obsState.Unlock()
	obsState.enabled = true
	obsState.cfg = cfg
	obsState.n = 0
	obsState.runs = nil
	obsState.current = nil
}

// DisableObservatory disarms observation and drops collected runs.
func DisableObservatory() {
	obsState.Lock()
	defer obsState.Unlock()
	obsState.enabled = false
	obsState.n = 0
	obsState.runs = nil
	obsState.current = nil
}

// CollectedHealth returns the observatories of every rig built since
// EnableObservatory, in build order.
func CollectedHealth() []NamedHealth {
	obsState.Lock()
	defer obsState.Unlock()
	return append([]NamedHealth(nil), obsState.runs...)
}

// CurrentClusterView snapshots the most recently built rig's
// observatory — the live source behind scotchsim's /statusz endpoint.
// Returns nil before the first armed rig exists.
func CurrentClusterView() *obs.ClusterView {
	obsState.Lock()
	o := obsState.current
	obsState.Unlock()
	if o == nil {
		return nil
	}
	return o.Snapshot()
}

// newRunObservatory wires a fresh observatory over every subsystem the
// rig holds and starts it sampling, or returns nil when observation is
// off. The latency tracker it attaches observes capture deliveries by
// flow class, which is how experiment workloads name tenants.
func newRunObservatory(r *rig) *obs.Observatory {
	obsState.Lock()
	defer obsState.Unlock()
	if !obsState.enabled {
		return nil
	}
	obsState.n++
	o := obs.New(r.eng, obsState.cfg)
	o.WatchApp(r.app)
	o.WatchController("controller", r.c)
	o.WatchSwitch(r.edge)
	for _, vs := range r.vs {
		o.WatchSwitch(vs)
	}
	for _, sb := range r.standby {
		o.WatchSwitch(sb)
	}
	lt := workload.NewLatencyTracker(nil)
	lt.AttachCapture(r.cap)
	o.WatchLatency(lt)
	o.Start()
	obsState.runs = append(obsState.runs, NamedHealth{
		Name: fmt.Sprintf("run%d", obsState.n),
		Obs:  o,
	})
	obsState.current = o
	newRunAdvisor(r.eng, o)
	return o
}

// newClusterRunObservatory is newRunObservatory for the multi-pod
// cluster rig: it additionally watches the coordinator (per-replica
// load/liveness plus migration counters), every pod's app and switches,
// and the shared capture's latency classes. Observation is read-only,
// so arming it cannot change experiment output bytes.
func newClusterRunObservatory(r *clusterRig) *obs.Observatory {
	obsState.Lock()
	defer obsState.Unlock()
	if !obsState.enabled {
		return nil
	}
	obsState.n++
	o := obs.New(r.eng, obsState.cfg)
	o.WatchCoordinator(r.co)
	for _, pod := range r.pods {
		o.WatchAppAs("scotch/"+pod.name, pod.app)
		o.WatchSwitch(pod.edge)
		for _, vs := range pod.vs {
			o.WatchSwitch(vs)
		}
		for _, sb := range pod.standby {
			o.WatchSwitch(sb)
		}
	}
	lt := workload.NewLatencyTracker(nil)
	lt.AttachCapture(r.cap)
	o.WatchLatency(lt)
	o.Start()
	obsState.runs = append(obsState.runs, NamedHealth{
		Name: fmt.Sprintf("run%d", obsState.n),
		Obs:  o,
	})
	obsState.current = o
	newRunAdvisor(r.eng, o)
	return o
}
