package experiments

import (
	"fmt"
	"io"
	"time"

	"scotch/internal/elastic"
	"scotch/internal/netaddr"
	"scotch/internal/scotch"
	"scotch/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "elastic",
		Title: "Elastic vSwitch pool: autoscaler grows the mesh under a ramping attack and drains it back (§3)",
		Run:   runElastic,
	})
}

// elasticResult is one full autoscaler run: the pool-size trajectory
// sampled once per second plus the resize and loss accounting. The
// experiment table and the Go acceptance test share it.
type elasticResult struct {
	sizes      []int // pool size at t = 1s, 2s, ...
	peak       int
	final      int
	ups        uint64 // autoscaler grow decisions
	downs      uint64 // autoscaler shrink decisions
	added      uint64 // overlay members added live
	drained    uint64 // overlay members drained to completion
	clientFail float64
	probeFail  float64 // loss of flows started inside the drain window
}

// elasticPoint drives the paper's single-edge rig through one load
// cycle: a flash-crowd attack ramps from nothing to 3000 spoofed
// flows/s and back, while a steady 20 flows/s client shares the switch.
// The autoscaler watches the overlay-routed rate per member and must
// grow the one-primary mesh into the standby pool during the ramp, then
// drain back down to the floor after the attack subsides. A second
// client ("drain probe") runs only inside the drain window: any loss
// there would be attributable to the scale-down path.
func elasticPoint(seed int64) elasticResult {
	const dur = 24 * time.Second
	cfg := scotch.DefaultConfig()
	// Fast rule idle-out so the drained members' flow tables quiesce
	// within the run (the same trick chaos-churn uses).
	cfg.RuleIdleTimeout = 2 * time.Second
	r := newRig(rigConfig{seed: seed, cfg: cfg,
		nClients: 2, nServers: 1, nPrimary: 1, nStandby: 3})

	standby := make([]uint64, 0, len(r.standby))
	for _, sb := range r.standby {
		standby = append(standby, sb.DPID)
	}
	pool := elastic.NewVSwitchPool(r.app, standby)
	as := elastic.New(r.eng, elastic.DefaultConfig(), pool,
		elastic.OverlayRate(r.eng, r.app, pool))
	as.SetTracer(r.c.Tracer())
	as.Start()

	atkEm := r.emitter(r.clients[0])
	var n uint64
	fc := workload.StartFlashCrowd(r.eng, workload.FlashCrowd{
		Base: 0, Peak: 3000,
		RampStart: 2 * time.Second, PeakStart: 6 * time.Second,
		PeakEnd: 12 * time.Second, RampEnd: 14 * time.Second,
	}, func() {
		n++
		// Spoofed source walk, as StartDDoS does: every arrival is a
		// distinct one-packet flow, i.e. pure control-plane load.
		src := netaddr.MakeIPv4(172, byte(16+(n>>16)&0x0f), byte(n>>8), byte(n))
		atkEm.Start(workload.Flow{
			Key: netaddr.FlowKey{Src: src, Dst: r.servers[0].IP,
				Proto: netaddr.ProtoTCP, SrcPort: uint16(1024 + n%50000), DstPort: 80},
			Packets: 1, Size: 64, Class: "attack",
		})
	})
	cli := workload.StartClient(r.emitter(r.clients[1]), r.servers[0].IP, 20, 1, 0)

	var res elasticResult
	r.eng.Every(time.Second, func() {
		res.sizes = append(res.sizes, pool.Size())
	})
	var probe *workload.ClientGen
	r.eng.Schedule(14500*time.Millisecond, func() {
		probe = workload.StartClient(r.emitter(r.clients[1]), r.servers[0].IP, 20, 1, 0)
		probe.Class = "drainprobe"
	})
	r.eng.Schedule(22*time.Second, func() { probe.Stop() })

	r.eng.RunUntil(dur)
	fc.Stop()
	cli.Stop()
	// Let in-flight flows land and the last drains finish before the
	// final size sample.
	r.eng.RunUntil(dur + 2*time.Second)
	as.Stop()

	for _, s := range res.sizes {
		if s > res.peak {
			res.peak = s
		}
	}
	res.final = pool.Size()
	res.ups = as.Stats.Ups
	res.downs = as.Stats.Downs
	res.added = r.app.Stats.VSwitchesAdded
	res.drained = r.app.Stats.VSwitchesDrained
	res.clientFail = r.cap.FailureFraction("client")
	res.probeFail = r.cap.FailureFraction("drainprobe")
	return res
}

func runElastic(w io.Writer) error {
	res := elasticPoint(47)
	fmt.Fprintln(w, "t(s)  pool_size")
	for i, s := range res.sizes {
		fmt.Fprintf(w, "%-5d %d\n", i+1, s)
	}
	fmt.Fprintf(w, "peak=%d final=%d grows=%d drains_started=%d members_added=%d members_drained=%d\n",
		res.peak, res.final, res.ups, res.downs, res.added, res.drained)
	fmt.Fprintf(w, "client_fail=%.3f drain_window_fail=%.3f\n",
		res.clientFail, res.probeFail)
	return nil
}
