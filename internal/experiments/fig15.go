package experiments

import (
	"io"
	"time"

	"scotch/internal/capture"
	"scotch/internal/controller"
	"scotch/internal/netaddr"
	"scotch/internal/scotch"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig15",
		Title: "Trace-driven flash crowd on a leaf-spine DC: application performance (reconstructed)",
		Run:   runFig15,
	})
}

// dcRig deploys Scotch (or the reactive baseline) over a leaf-spine data
// center with per-rack vSwitch pools.
type dcRig struct {
	eng *sim.Engine
	ls  *topo.LeafSpine
	c   *controller.Controller
	app *scotch.App
	cap *capture.Capture
}

func newDCRig(seed int64, cfg scotch.Config, baseline bool) *dcRig {
	eng := sim.New(seed)
	lsCfg := topo.DefaultLeafSpineConfig()
	ls := topo.NewLeafSpine(eng, lsCfg)
	r := &dcRig{eng: eng, ls: ls}
	if baseline {
		r.c = controller.New(eng, ls.Net)
		controller.NewReactiveRouter(r.c)
		r.c.ConnectAll()
	} else {
		var err error
		r.c, r.app, err = scotch.NewLeafSpineDeployment(ls, lsCfg, cfg)
		if err != nil {
			panic(err)
		}
	}
	r.cap = capture.New(eng)
	for _, hosts := range ls.Hosts {
		for _, h := range hosts {
			r.cap.Attach(h)
		}
	}
	return r
}

func runFig15(w io.Writer) error {
	t := newTable(w, "controller", "flows", "failure_fraction", "completion_fraction",
		"fct_ms_p50", "fct_ms_p99")
	const dur = 25 * time.Second
	for _, baseline := range []bool{true, false} {
		r := newDCRig(15, scotch.DefaultConfig(), baseline)
		ls := r.ls

		// Background: steady all-to-all trace with heavy-tailed sizes.
		var sources []*workload.Emitter
		var dsts []netaddr.IPv4
		for _, hosts := range ls.Hosts {
			for _, h := range hosts {
				sources = append(sources, workload.NewEmitter(r.eng, h, r.cap))
				dsts = append(dsts, h.IP)
			}
		}
		tg := &workload.TraceGen{
			Eng: r.eng, Sources: sources, Dsts: dsts,
			Rate: 50, MaxPkts: 200, PktIval: 2 * time.Millisecond,
		}
		tg.Start()

		// Flash crowd: everyone suddenly wants leaf-0/host-0. New flows
		// spike far beyond its leaf's OFA capacity.
		target := topo.HostIP(0, 0)
		n := 0
		fc := workload.StartFlashCrowd(r.eng, workload.FlashCrowd{
			Base: 50, Peak: 2500,
			RampStart: 5 * time.Second, PeakStart: 7 * time.Second,
			PeakEnd: 15 * time.Second, RampEnd: 17 * time.Second,
		}, func() {
			n++
			src := sources[(n*7)%len(sources)]
			if src.Host.IP == target {
				src = sources[(n*7+1)%len(sources)]
			}
			src.Start(workload.Flow{
				Key: netaddr.FlowKey{Src: src.Host.IP, Dst: target, Proto: netaddr.ProtoTCP,
					SrcPort: uint16(10000 + n%50000), DstPort: 80},
				Packets: 3, Interval: 5 * time.Millisecond, Class: "crowd",
			})
		})

		r.eng.RunUntil(dur)
		tg.Stop()
		fc.Stop()
		r.eng.RunUntil(dur + 2*time.Second)

		name := "scotch"
		if baseline {
			name = "baseline"
		}
		sent, _ := r.cap.Counts("crowd")
		fct := r.cap.FCT("crowd")
		t.row(name, sent,
			r.cap.FailureFraction("crowd"),
			r.cap.CompletionFraction("crowd"),
			fct.Quantile(0.5)*1000,
			fct.Quantile(0.99)*1000)
	}
	t.flush()
	return nil
}
