package experiments

import (
	"io"
	"testing"
)

// BenchmarkDevolveAblationRun and BenchmarkClusterScaleRun are the two
// macro benchmarks the sim hot-path allocation diet was driven by: both
// experiments push millions of packets through the full admit path
// (Packet-In decode, scheduler, rule install, devolved fast path), so
// allocs/op here is the canary for any per-packet or per-message
// allocation creeping back in.

func BenchmarkDevolveAblationRun(b *testing.B) {
	benchExperiment(b, "devolve-ablation")
}

func BenchmarkClusterScaleRun(b *testing.B) {
	benchExperiment(b, "cluster-scale")
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHotPathAllocBudget pins the allocation diet: each run sits ~15-20%
// under its budget today (devolve-ablation ~485k, cluster-scale ~482k
// allocs/run, down from ~1.77M/~1.68M before the diet), so a failure
// here means a hot path regained a per-packet or per-message allocation
// — look for new closures over []byte, FlowMods built field-by-field
// instead of via openflow.FlowMod1/Apply1, or lost arena/pool reuse.
func TestHotPathAllocBudget(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("alloc counts are only meaningful without -short/-race")
	}
	for _, tc := range []struct {
		id     string
		budget int64 // allocs per full experiment run
	}{
		{"devolve-ablation", 589_000},
		{"cluster-scale", 559_000},
	} {
		e, ok := ByID(tc.id)
		if !ok {
			t.Fatalf("experiment %q not registered", tc.id)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := e.Run(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
		if allocs := res.AllocsPerOp(); allocs > tc.budget {
			t.Errorf("%s: %d allocs/run exceeds budget %d", tc.id, allocs, tc.budget)
		} else {
			t.Logf("%s: %d allocs/run (budget %d)", tc.id, allocs, tc.budget)
		}
	}
}
