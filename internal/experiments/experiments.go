package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Experiment is one reproducible measurement.
type Experiment struct {
	ID    string
	Title string
	// Run executes the experiment, writing its result table to w.
	Run func(w io.Writer) error
}

var registry = map[string]Experiment{}
var order []string

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
	order = append(order, e.ID)
}

// All returns every experiment in registration order.
func All() []Experiment {
	out := make([]Experiment, 0, len(order))
	for _, id := range order {
		out = append(out, registry[id])
	}
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	ids := append([]string(nil), order...)
	sort.Strings(ids)
	return ids
}

// table is a small column-aligned printer for experiment output.
type table struct {
	w   *tabwriter.Writer
	out io.Writer
}

func newTable(w io.Writer, headers ...string) *table {
	t := &table{w: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0), out: w}
	for i, h := range headers {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprint(t.w, h)
	}
	fmt.Fprintln(t.w)
	return t
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(t.w, "%.3f", v)
		default:
			fmt.Fprintf(t.w, "%v", v)
		}
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() { t.w.Flush() }

func banner(w io.Writer, e Experiment) {
	fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
}
