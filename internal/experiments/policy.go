package experiments

import (
	"io"
	"time"

	"scotch/internal/capture"
	"scotch/internal/controller"
	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/scotch"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Policy consistency across migration (§5.4): same-middlebox vs naive rerouting",
		Run:   runFig8,
	})
}

// policyRig builds a diamond topology with two stateful firewalls inline
// on the two branches:
//
//	           +--(SA_u)==FW_A==(SA_d)--+        <- longer branch
//	client--S0-+                        +-S3--server
//	           +--(SB_u)==FW_B==(SB_d)--+        <- shortest path
//
// The Scotch overlay chain pins flows through FW_A; the plain shortest
// path crosses FW_B. A naive migrator therefore reroutes established flows
// through a firewall with no state for them.
type policyRig struct {
	eng            *sim.Engine
	net            *topo.Network
	s0             *device.Switch
	fwA, fwB       *device.Firewall
	client, server *device.Host
	c              *controller.Controller
	app            *scotch.App
	cap            *capture.Capture
}

func newPolicyRig(seed int64, naive bool) *policyRig {
	eng := sim.New(seed)
	net := topo.New(eng)
	r := &policyRig{eng: eng, net: net}

	prof := device.Pica8Profile()
	r.s0 = net.AddSwitch("s0", prof)
	sau := net.AddSwitch("sa-u", prof)
	sad := net.AddSwitch("sa-d", prof)
	sbu := net.AddSwitch("sb-u", prof)
	sbd := net.AddSwitch("sb-d", prof)
	s3 := net.AddSwitch("s3", prof)

	slow := device.LinkConfig{Delay: 500 * time.Microsecond, RateBps: 1e9}
	fast := device.LinkConfig{Delay: 100 * time.Microsecond, RateBps: 1e9}

	r.fwA = device.NewFirewall(eng, "fw-a", 50*time.Microsecond)
	r.fwB = device.NewFirewall(eng, "fw-b", 50*time.Microsecond)

	// Branch A (longer): s0 - sa-u =FW_A= sa-d - s3.
	net.LinkSwitches(r.s0, sau, slow)
	suOutA, sdInA := net.LinkSwitchesVia(sau, r.fwA, sad, slow)
	net.LinkSwitches(sad, s3, slow)
	// Branch B (shortest): s0 - sb-u =FW_B= sb-d - s3.
	net.LinkSwitches(r.s0, sbu, fast)
	net.LinkSwitchesVia(sbu, r.fwB, sbd, fast)
	net.LinkSwitches(sbd, s3, fast)

	r.client = net.AddHost("client", netaddr.MakeIPv4(10, 0, 0, 1))
	r.server = net.AddHost("server", netaddr.MakeIPv4(10, 0, 1, 1))
	cliPort := net.AttachHost(r.client, r.s0, fast)
	net.AttachHost(r.server, s3, fast)

	// Two vSwitches off s0's rack and one near s3 for delivery.
	vs1 := net.AddSwitch("vs1", device.OVSProfile())
	vs2 := net.AddSwitch("vs2", device.OVSProfile())
	net.LinkSwitches(r.s0, vs1, fast)
	net.LinkSwitches(s3, vs2, fast)

	cfg := scotch.DefaultConfig()
	cfg.NaiveMigration = naive
	cfg.ElephantBytes = 10 << 10
	cfg.OverlayThreshold = 0 // force all congested-switch flows onto the overlay
	cfg.ActivateRate = 50
	cfg.DeactivateRate = 0 // never withdraw during the run
	r.c = controller.New(eng, net)
	r.app = scotch.New(r.c, cfg)
	r.app.AddVSwitch(vs1.DPID, false)
	r.app.AddVSwitch(vs2.DPID, false)
	r.app.AssignHost(r.server.IP, vs2.DPID, 0)
	r.app.Protect(r.s0.DPID, cliPort)
	r.app.AddMiddlebox("fw-a", sau.DPID, sad.DPID, suOutA, sdInA)
	cfg2 := r.app.Cfg
	cfg2.Policy = func(key netaddr.FlowKey) []string {
		if key.Dst == r.server.IP {
			return []string{"fw-a"}
		}
		return nil
	}
	r.app.Cfg = cfg2
	r.c.ConnectAll()
	if err := r.app.Build(); err != nil {
		panic(err)
	}

	r.cap = capture.New(eng)
	r.cap.Attach(r.server)
	return r
}

func runFig8(w io.Writer) error {
	t := newTable(w, "migration_mode", "migrated", "fwA_passed", "fwB_rejected",
		"elephant_delivery_ratio", "elephant_stalled")
	const dur = 20 * time.Second
	for _, naive := range []bool{false, true} {
		r := newPolicyRig(8, naive)
		em := workload.NewEmitter(r.eng, r.client, r.cap)
		// Saturate s0's control path so flows take the overlay (through
		// FW_A via the chain tunnels).
		atk := workload.StartClient(em, r.server.IP, 400, 1, 0)
		atk.Class = "noise"
		// The elephant that will be migrated.
		key := netaddr.FlowKey{Src: r.client.IP, Dst: r.server.IP, Proto: netaddr.ProtoTCP,
			SrcPort: 6000, DstPort: 80}
		r.eng.Schedule(2*time.Second, func() {
			em.Start(workload.Flow{Key: key, Packets: 7000, Interval: 2 * time.Millisecond,
				Size: 1000, Class: "elephant"})
		})
		r.eng.RunUntil(dur)
		atk.Stop()
		r.eng.RunUntil(dur + time.Second)

		fl := r.cap.Flows("elephant")
		ratio := 0.0
		stalled := true
		if len(fl) == 1 {
			ratio = float64(fl[0].PacketsRecv) / float64(fl[0].PacketsSent)
			stalled = fl[0].LastRecv < 16*time.Second
		}
		mode := "policy-aware"
		if naive {
			mode = "naive-shortest-path"
		}
		t.row(mode, r.app.Stats.Migrated, r.fwA.Passed, r.fwB.Rejected, ratio, stalled)
	}
	t.flush()
	return nil
}
