package experiments

import (
	"fmt"
	"sync"

	"scotch/internal/device"
	"scotch/internal/packet"
	"scotch/internal/sim"
	"scotch/internal/telemetry"
)

// Control-path tracing is armed process-wide and attached to every rig
// built afterward: each rig (one per simulation engine) gets a private
// tracer, collected in build order. Tracing is intended for serial runs of
// a single experiment; the determinism suite and the parallel runner keep
// it off, so their byte-identical guarantees are verified untraced.
var traceState struct {
	sync.Mutex
	enabled bool
	n       int
	traces  []telemetry.NamedTrace
}

// EnableTracing arms control-path tracing for rigs built from now on and
// clears previously collected traces.
func EnableTracing() {
	traceState.Lock()
	defer traceState.Unlock()
	traceState.enabled = true
	traceState.n = 0
	traceState.traces = nil
}

// DisableTracing disarms tracing and drops collected traces.
func DisableTracing() {
	traceState.Lock()
	defer traceState.Unlock()
	traceState.enabled = false
	traceState.n = 0
	traceState.traces = nil
}

// CollectedTraces returns the tracers of every rig built since
// EnableTracing, in build order ("run1", "run2", ...).
func CollectedTraces() []telemetry.NamedTrace {
	traceState.Lock()
	defer traceState.Unlock()
	return append([]telemetry.NamedTrace(nil), traceState.traces...)
}

// newRunTracer returns a fresh collected tracer, or nil when tracing is
// off.
func newRunTracer() *telemetry.Tracer {
	traceState.Lock()
	defer traceState.Unlock()
	if !traceState.enabled {
		return nil
	}
	traceState.n++
	t := telemetry.NewTracer()
	traceState.traces = append(traceState.traces, telemetry.NamedTrace{
		Name:   fmt.Sprintf("run%d", traceState.n),
		Tracer: t,
	})
	return t
}

// traceDelivery chains a first-packet-delivery trace point onto a host's
// receive observer, preserving any existing observer (e.g. the capture
// subsystem's).
func traceDelivery(tr *telemetry.Tracer, h *device.Host) {
	prev := h.OnReceive
	h.OnReceive = func(pkt *packet.Packet, now sim.Time) {
		tr.Point(telemetry.PointDelivered, pkt.FlowKey(), 0, now)
		if prev != nil {
			prev(pkt, now)
		}
	}
}
