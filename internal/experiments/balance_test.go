package experiments

import (
	"bytes"
	"testing"

	"scotch/internal/balance"
)

// TestElasticUnderMigration pins the joint balancer's headline property:
// the vSwitch pool grows while a pod migration lands in between — both
// actuation paths active over the same rig — and none of it costs a
// single client flow (replica capacity is infinite, so any loss would be
// the balancer's fault).
func TestElasticUnderMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := elasticUnderMigrationPoint(23)

	if res.grows < 2 {
		t.Errorf("grows = %d, want >= 2", res.grows)
	}
	if res.migrations < 1 {
		t.Errorf("migrations = %d, want >= 1", res.migrations)
	}
	if res.drains < 1 {
		t.Errorf("drains = %d, want >= 1", res.drains)
	}
	if res.finalPool != 2 {
		t.Errorf("final pool = %d, want back at the floor of 2", res.finalPool)
	}

	// The interleaving is the point: grow, then migrate, then grow again.
	switch {
	case res.firstGrow == 0 || res.firstMigrate == 0 || res.growAfterMigrate == 0:
		t.Errorf("missing actions: first_grow=%v first_migrate=%v grow_after_migrate=%v",
			res.firstGrow, res.firstMigrate, res.growAfterMigrate)
	case !(res.firstGrow < res.firstMigrate && res.firstMigrate < res.growAfterMigrate):
		t.Errorf("want grow < migrate < grow, got %v < %v < %v",
			res.firstGrow, res.firstMigrate, res.growAfterMigrate)
	}

	// Pod 0 (the surging pod) must have left its overloaded home.
	last := len(res.owners) - 1
	if res.owners[0] != 0 || res.owners[last] != 1 {
		t.Errorf("pod0 owner path %v, want 0 -> 1", res.owners)
	}

	if res.clientSent == 0 {
		t.Fatal("no client flows ran")
	}
	if res.clientFail != 0 {
		t.Errorf("client flow loss = %.4f, want exactly 0", res.clientFail)
	}
}

// TestReplicaScaleOut pins the escalation rung: a flash crowd saturates
// both replicas, the SLO burn signal (not load alone) triggers a replica
// spawn, migrations rebalance pods onto the new replica, the burn
// recovers, and the idle cluster retires back to the floor.
func TestReplicaScaleOut(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := replicaScaleOutPoint(31)

	if res.spawns != 1 {
		t.Errorf("spawns = %d, want exactly 1 (MaxReplicas bounds repeats)", res.spawns)
	}
	if res.migrations < 2 {
		t.Errorf("migrations = %d, want >= 2 (rebalance onto the spawned replica)", res.migrations)
	}
	if res.retires != 1 {
		t.Errorf("retires = %d, want 1 (idle cluster returns to the floor)", res.retires)
	}
	if res.finalAlive != 2 {
		t.Errorf("final alive replicas = %d, want 2", res.finalAlive)
	}

	if res.verdictPath != "healthy->burning->healthy" {
		t.Errorf("client-p99 verdict path = %q, want healthy->burning->healthy", res.verdictPath)
	}
	if res.peakBurnLong < 2 {
		t.Errorf("peak long-window burn = %.1f, want >= 2 (the spawn threshold)", res.peakBurnLong)
	}

	// The spawn must precede every applied migration to the new replica:
	// burn escalates, then rebalancing uses the new capacity.
	var spawnAt, firstMigrate int64 = -1, -1
	for _, d := range res.log {
		if !d.Applied {
			continue
		}
		switch d.Action {
		case balance.ActionSpawnReplica:
			if spawnAt < 0 {
				spawnAt = int64(d.At)
			}
		case balance.ActionMigrate:
			if firstMigrate < 0 {
				firstMigrate = int64(d.At)
			}
		}
	}
	if spawnAt < 0 || firstMigrate < 0 || spawnAt >= firstMigrate {
		t.Errorf("want spawn before first migration, got spawn=%d migrate=%d", spawnAt, firstMigrate)
	}
}

// TestBalanceAdvisorDoesNotChangeOutput is the golden determinism check
// for the advisor: arming an Advise-mode balancer (plus the observatory
// it reads) must leave every experiment's output byte-identical. The
// advisor adds policy ticks to the engine but never actuates, so the
// experiment's own event sequence cannot shift.
func TestBalanceAdvisorDoesNotChangeOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, id := range []string{"elastic", "cluster-migrate"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("%s not registered", id)
			}
			var clean bytes.Buffer
			if err := e.Run(&clean); err != nil {
				t.Fatal(err)
			}

			EnableObservatory()
			EnableBalanceAdvisor()
			defer DisableBalanceAdvisor()
			defer DisableObservatory()
			var advised bytes.Buffer
			if err := e.Run(&advised); err != nil {
				t.Fatal(err)
			}

			if !bytes.Equal(clean.Bytes(), advised.Bytes()) {
				t.Errorf("advisor changed %s output:\n--- clean ---\n%s\n--- advised ---\n%s",
					id, clean.String(), advised.String())
			}

			runs := CollectedBalance()
			if len(runs) == 0 {
				t.Fatal("no advisory balancers collected")
			}
			for _, nb := range runs {
				if nb.B.Stats.Ticks == 0 {
					t.Errorf("%s: advisor never ticked", nb.Name)
				}
				if n := nb.B.Stats.Grows + nb.B.Stats.Drains + nb.B.Stats.Migrations +
					nb.B.Stats.Spawns + nb.B.Stats.Retires; n != 0 {
					t.Errorf("%s: advise mode actuated %d times", nb.Name, n)
				}
			}
		})
	}
}
