package experiments

import (
	"bytes"
	_ "embed"
	"fmt"
	"io"
	"time"

	"scotch/internal/capture"
	"scotch/internal/elastic"
	"scotch/internal/metrics"
	"scotch/internal/netaddr"
	"scotch/internal/scotch"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "scenario-multitenant",
		Title: "Multi-tenant scenario: DDoS tenant must not shift the baseline tenant's latency CDF (§3, §5)",
		Run:   runScenarioMultitenant,
	})
	register(Experiment{
		ID:    "scenario-fattree",
		Title: "Flash crowd on a k=8 fat-tree: per-tenant flow-setup latency CDFs under Scotch (§5.6)",
		Run:   runScenarioFattree,
	})
	register(Experiment{
		ID:    "scenario-replay",
		Title: "Trace-file replay: external CSV trace drives the rig, per-tenant latency CDFs (§6)",
		Run:   runScenarioReplay,
	})
}

// latRow condenses one tenant's latency histogram for a results table.
type latRow struct {
	tenant              string
	flows               uint64
	p50ms, p95ms, p99ms float64
}

func latencyRows(tr *workload.LatencyTracker) []latRow {
	var rows []latRow
	for _, name := range tr.TenantNames() {
		h := tr.Tenant(name)
		rows = append(rows, latRow{
			tenant: name,
			flows:  h.Count(),
			p50ms:  h.Quantile(0.5) * 1000,
			p95ms:  h.Quantile(0.95) * 1000,
			p99ms:  h.Quantile(0.99) * 1000,
		})
	}
	return rows
}

func latencyTable(w io.Writer, rows []latRow) {
	t := newTable(w, "tenant", "flows", "setup_ms_p50", "setup_ms_p95", "setup_ms_p99")
	for _, r := range rows {
		t.row(r.tenant, r.flows, r.p50ms, r.p95ms, r.p99ms)
	}
	t.flush()
}

// multitenantResult is one scenario-multitenant run pair; the experiment
// table and the acceptance test share it.
type multitenantResult struct {
	quiet    []latRow // base + crowd, overlay + autoscaler active
	attacked []latRow // the same mix plus the DDoS tenant
	peakPool int      // autoscaler peak during the attacked run
	// p99Ratio is the baseline tenant's attacked p99 over its quiet p99 —
	// the paper's isolation claim bounds this below 2.
	p99Ratio float64
}

// multitenantRun composes the three-tenant mix on the single-edge rig with
// the elastic autoscaler active and returns the per-tenant latency rows.
func multitenantRun(seed int64, withDDoS bool) ([]latRow, int) {
	const dur = 12 * time.Second
	cfg := scotch.DefaultConfig()
	cfg.RuleIdleTimeout = 2 * time.Second
	r := newRig(rigConfig{seed: seed, cfg: cfg,
		nClients: 3, nServers: 2, nPrimary: 1, nStandby: 3})

	standby := make([]uint64, 0, len(r.standby))
	for _, sb := range r.standby {
		standby = append(standby, sb.DPID)
	}
	pool := elastic.NewVSwitchPool(r.app, standby)
	as := elastic.New(r.eng, elastic.DefaultConfig(), pool,
		elastic.OverlayRate(r.eng, r.app, pool))
	as.Start()

	lat := workload.NewLatencyTracker(nil)
	lat.AttachCapture(r.cap)

	dsts := []netaddr.IPv4{r.servers[0].IP, r.servers[1].IP}
	spoof := netaddr.MustParsePrefix("172.16.0.0/12")
	sc := workload.NewScenario(r.eng, seed)
	sc.Add(workload.TenantSpec{
		Name: "base", Curve: workload.ConstantCurve(100),
		Size:    workload.ParetoSampler{Alpha: 1.2, MinPkts: 1, MaxPkts: 20},
		PktIval: time.Millisecond,
		Sources: []*workload.Emitter{r.emitter(r.clients[0])}, Dsts: dsts,
	})
	sc.Add(workload.TenantSpec{
		Name: "crowd",
		Curve: workload.TrapezoidCurve{Base: 0, Peak: 800,
			RampStart: 2 * time.Second, PeakStart: 4 * time.Second,
			PeakEnd: 8 * time.Second, RampEnd: 10 * time.Second},
		Sources: []*workload.Emitter{r.emitter(r.clients[1])}, Dsts: dsts[:1],
	})
	if withDDoS {
		sc.Add(workload.TenantSpec{
			Name: "ddos",
			Curve: workload.OnOffCurve{Rate: 1500,
				Start: 3 * time.Second, End: 9 * time.Second},
			Sources: []*workload.Emitter{r.emitter(r.clients[2])}, Dsts: dsts[:1],
			Spoof: &spoof,
		})
	}
	sc.Start()

	peak := 0
	r.eng.Every(time.Second, func() {
		if s := pool.Size(); s > peak {
			peak = s
		}
	})
	r.eng.RunUntil(dur)
	sc.Stop()
	r.eng.RunUntil(dur + 2*time.Second)
	as.Stop()
	return latencyRows(lat), peak
}

func multitenantPoint(seed int64) multitenantResult {
	var res multitenantResult
	res.quiet, _ = multitenantRun(seed, false)
	res.attacked, res.peakPool = multitenantRun(seed, true)
	var quietP99, attackedP99 float64
	for _, r := range res.quiet {
		if r.tenant == "base" {
			quietP99 = r.p99ms
		}
	}
	for _, r := range res.attacked {
		if r.tenant == "base" {
			attackedP99 = r.p99ms
		}
	}
	if quietP99 > 0 {
		res.p99Ratio = attackedP99 / quietP99
	}
	return res
}

func runScenarioMultitenant(w io.Writer) error {
	res := multitenantPoint(61)
	fmt.Fprintln(w, "quiet run (base + crowd, overlay + autoscaler):")
	latencyTable(w, res.quiet)
	fmt.Fprintln(w, "attacked run (base + crowd + ddos):")
	latencyTable(w, res.attacked)
	fmt.Fprintf(w, "pool_peak=%d base_p99_ratio=%.3f (bound < 2.0)\n",
		res.peakPool, res.p99Ratio)
	return nil
}

// fattreeResult is one scenario-fattree run.
type fattreeResult struct {
	rows            []latRow
	crowdCompletion float64
	baseCompletion  float64
}

// fattreePoint drives a flash crowd against one pod of a k=8 fat-tree
// (80 switches, hosts subsampled to two per edge) deployed under Scotch,
// with a steady all-to-all baseline tenant underneath.
func fattreePoint(seed int64) fattreeResult {
	const dur = 10 * time.Second
	ftCfg := topo.DefaultFatTreeConfig(8)
	ftCfg.HostsPerEdge = 2
	eng := sim.New(seed)
	ft := topo.NewFatTree(eng, ftCfg)
	_, _, err := scotch.NewFatTreeDeployment(ft, scotch.DefaultConfig())
	if err != nil {
		panic(err)
	}
	cap := capture.New(eng)
	for _, h := range ft.AllHosts() {
		cap.Attach(h)
	}
	lat := workload.NewLatencyTracker(nil)
	lat.AttachCapture(cap)

	var sources []*workload.Emitter
	var dsts []netaddr.IPv4
	target := topo.FatTreeHostIP(0, 0, 0)
	var crowdSources []*workload.Emitter
	for _, hosts := range ft.Hosts {
		for _, h := range hosts {
			em := workload.NewEmitter(eng, h, cap)
			sources = append(sources, em)
			dsts = append(dsts, h.IP)
			if h.IP != target {
				crowdSources = append(crowdSources, em)
			}
		}
	}

	sc := workload.NewScenario(eng, seed)
	sc.Add(workload.TenantSpec{
		Name: "base", Curve: workload.ConstantCurve(50),
		Size:    workload.ParetoSampler{Alpha: 1.2, MinPkts: 1, MaxPkts: 50},
		PktIval: 2 * time.Millisecond,
		Sources: sources, Dsts: dsts,
	})
	sc.Add(workload.TenantSpec{
		Name: "crowd",
		Curve: workload.TrapezoidCurve{Base: 0, Peak: 600,
			RampStart: 2 * time.Second, PeakStart: 4 * time.Second,
			PeakEnd: 6 * time.Second, RampEnd: 8 * time.Second},
		Size:    workload.FixedSampler{Pkts: 3},
		PktIval: 5 * time.Millisecond,
		Sources: crowdSources, Dsts: []netaddr.IPv4{target},
	})
	sc.Start()
	eng.RunUntil(dur)
	sc.Stop()
	eng.RunUntil(dur + 2*time.Second)

	return fattreeResult{
		rows:            latencyRows(lat),
		crowdCompletion: cap.CompletionFraction("crowd"),
		baseCompletion:  cap.CompletionFraction("base"),
	}
}

func runScenarioFattree(w io.Writer) error {
	res := fattreePoint(62)
	latencyTable(w, res.rows)
	fmt.Fprintf(w, "base_completion=%.3f crowd_completion=%.3f\n",
		res.baseCompletion, res.crowdCompletion)
	return nil
}

//go:embed testdata/scenario_replay.csv
var scenarioReplayTrace []byte

// replayResult is one scenario-replay run.
type replayResult struct {
	events    int
	scheduled int
	rows      []latRow
	merged    *metrics.BucketHistogram
}

// replayPoint parses the embedded trace and replays it over the rig,
// hashing trace endpoints onto the rig's clients and servers. The trace's
// tenant column ("web", "batch", and unlabeled → "replay") drives the
// per-tenant latency CDFs.
func replayPoint(seed int64) replayResult {
	const dur = 8 * time.Second
	r := newRig(rigConfig{seed: seed, cfg: scotch.DefaultConfig(),
		nClients: 2, nServers: 2, nPrimary: 1, nBackup: 1})
	lat := workload.NewLatencyTracker(nil)
	lat.AttachCapture(r.cap)

	events, err := workload.ParseTrace("scenario_replay.csv",
		bytes.NewReader(scenarioReplayTrace))
	if err != nil {
		panic(err)
	}
	ems := []*workload.Emitter{r.emitter(r.clients[0]), r.emitter(r.clients[1])}
	n := workload.Replay(r.eng, events, workload.ReplayConfig{
		MSS:     1000,
		PktIval: time.Millisecond,
		Resolve: func(ev workload.TraceEvent) (*workload.Emitter, netaddr.IPv4) {
			em := ems[int(uint32(ev.Src))%len(ems)]
			srv := r.servers[int(uint32(ev.Dst))%len(r.servers)]
			return em, srv.IP
		},
	})
	r.eng.RunUntil(dur)
	return replayResult{
		events:    len(events),
		scheduled: n,
		rows:      latencyRows(lat),
		merged:    lat.Merged(),
	}
}

func runScenarioReplay(w io.Writer) error {
	res := replayPoint(63)
	fmt.Fprintf(w, "trace_events=%d scheduled=%d\n", res.events, res.scheduled)
	latencyTable(w, res.rows)
	fmt.Fprintf(w, "all_tenants: n=%d p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f\n",
		res.merged.Count(), res.merged.Quantile(0.5)*1000,
		res.merged.Quantile(0.95)*1000, res.merged.Quantile(0.99)*1000)
	return nil
}
