package experiments

import (
	"fmt"
	"time"

	"scotch/internal/capture"
	"scotch/internal/controller"
	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/scotch"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

// rig is a single-edge-switch Scotch deployment: the paper's testbed plus
// a vSwitch pool, with any number of client-side hosts (each on its own
// ingress port) and servers (spread across delivery vSwitches).
type rig struct {
	eng     *sim.Engine
	net     *topo.Network
	edge    *device.Switch
	clients []*device.Host
	servers []*device.Host
	vs      []*device.Switch
	standby []*device.Switch
	c       *controller.Controller
	app     *scotch.App
	cap     *capture.Capture
}

type rigConfig struct {
	seed     int64
	cfg      scotch.Config
	nClients int
	nServers int
	nPrimary int
	nBackup  int
	// nStandby provisions extra vSwitches that are linked and connected
	// to the controller but left out of the mesh: spare capacity for the
	// elastic autoscaler to grow into.
	nStandby  int
	noOverlay bool // run the plain reactive baseline instead of Scotch
}

func newRig(rc rigConfig) *rig {
	eng := sim.New(rc.seed)
	net := topo.New(eng)
	edge := net.AddSwitch("edge", device.Pica8Profile())
	r := &rig{eng: eng, net: net, edge: edge}
	link := device.LinkConfig{Delay: 50 * time.Microsecond, RateBps: 1e9}

	var clientPorts []uint32
	for i := 0; i < rc.nClients; i++ {
		h := net.AddHost(fmt.Sprintf("c%d", i), netaddr.MakeIPv4(10, 0, 0, byte(10+i)))
		clientPorts = append(clientPorts, net.AttachHost(h, edge, link))
		r.clients = append(r.clients, h)
	}
	for i := 0; i < rc.nServers; i++ {
		h := net.AddHost(fmt.Sprintf("srv%d", i), netaddr.MakeIPv4(10, 0, 1, byte(10+i)))
		net.AttachHost(h, edge, link)
		r.servers = append(r.servers, h)
	}
	for i := 0; i < rc.nPrimary+rc.nBackup; i++ {
		vs := net.AddSwitch(fmt.Sprintf("vs%d", i), device.OVSProfile())
		net.LinkSwitches(edge, vs, device.LinkConfig{Delay: 20 * time.Microsecond, RateBps: 1e9})
		r.vs = append(r.vs, vs)
	}
	for i := 0; i < rc.nStandby; i++ {
		sb := net.AddSwitch(fmt.Sprintf("sb%d", i), device.OVSProfile())
		net.LinkSwitches(edge, sb, device.LinkConfig{Delay: 20 * time.Microsecond, RateBps: 1e9})
		r.standby = append(r.standby, sb)
	}

	r.c = controller.New(eng, net)
	if rc.noOverlay {
		controller.NewReactiveRouter(r.c)
		r.c.ConnectAll()
	} else {
		r.app = scotch.New(r.c, rc.cfg)
		for i, vs := range r.vs {
			r.app.AddVSwitch(vs.DPID, i >= rc.nPrimary)
		}
		for i, srv := range r.servers {
			primary := r.vs[i%rc.nPrimary].DPID
			var backup uint64
			if rc.nBackup > 0 {
				backup = r.vs[rc.nPrimary+(i%rc.nBackup)].DPID
			}
			r.app.AssignHost(srv.IP, primary, backup)
		}
		r.app.Protect(edge.DPID, clientPorts...)
		r.c.ConnectAll()
		if err := r.app.Build(); err != nil {
			panic(err)
		}
	}

	r.cap = capture.New(eng)
	for _, srv := range r.servers {
		r.cap.Attach(srv)
	}
	if tr := newRunTracer(); tr != nil {
		r.c.SetTracer(tr)
		edge.SetTracer(tr)
		for _, vs := range r.vs {
			vs.SetTracer(tr)
		}
		for _, sb := range r.standby {
			sb.SetTracer(tr)
		}
		for _, srv := range r.servers {
			traceDelivery(tr, srv)
		}
	}
	newRunObservatory(r)
	return r
}

func (r *rig) emitter(h *device.Host) *workload.Emitter {
	return workload.NewEmitter(r.eng, h, r.cap)
}
