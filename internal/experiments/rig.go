package experiments

import (
	"fmt"
	"time"

	"scotch/internal/capture"
	"scotch/internal/controller"
	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/scotch"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

// rig is a single-edge-switch Scotch deployment: the paper's testbed plus
// a vSwitch pool, with any number of client-side hosts (each on its own
// ingress port) and servers (spread across delivery vSwitches).
type rig struct {
	eng     sim.System
	sh      *sim.Sharded // non-nil when the rig runs partitioned
	net     *topo.Network
	edge    *device.Switch
	clients []*device.Host
	servers []*device.Host
	vs      []*device.Switch
	standby []*device.Switch
	c       *controller.Controller
	app     *scotch.App
	cap     *capture.Capture
}

type rigConfig struct {
	seed     int64
	cfg      scotch.Config
	nClients int
	nServers int
	nPrimary int
	nBackup  int
	// nStandby provisions extra vSwitches that are linked and connected
	// to the controller but left out of the mesh: spare capacity for the
	// elastic autoscaler to grow into.
	nStandby  int
	noOverlay bool // run the plain reactive baseline instead of Scotch
	// shardable marks rigs whose run never mutates the topology and whose
	// driver only touches lane-0 state mid-run: with -shards armed, each
	// vSwitch gets its own partition lane of a sim.Sharded engine.
	// Experiments that add/drain mesh members, enable devolution, or
	// sample vSwitch state mid-run must leave this false.
	shardable bool
}

// vsLinkDelay is the edge-to-vSwitch link propagation delay. It is the
// minimum latency of any cross-partition interaction (mesh and delivery
// tunnels aggregate at least one such hop; the control channel's
// CtrlDelay is 10x larger), so it is the sharded engine's lookahead.
const vsLinkDelay = 20 * time.Microsecond

func newRig(rc rigConfig) *rig {
	var (
		eng sim.System
		sh  *sim.Sharded
	)
	nVS := rc.nPrimary + rc.nBackup + rc.nStandby
	if w := Shards(); w > 0 && rc.shardable && nVS > 0 &&
		!observatoryArmed() && !tracingArmed() {
		// One lane per vSwitch plus lane 0 for everything the driver and
		// controller touch: edge switch, hosts, capture, workload. Lane 0
		// holds the raw seed, so output matches the serial engine.
		sh = sim.NewSharded(rc.seed, 1+nVS, vsLinkDelay, w)
		eng = sh.System()
	} else {
		eng = sim.New(rc.seed)
	}
	net := topo.New(eng)
	edge := net.AddSwitch("edge", device.Pica8Profile())
	r := &rig{eng: eng, sh: sh, net: net, edge: edge}
	link := device.LinkConfig{Delay: 50 * time.Microsecond, RateBps: 1e9}

	var clientPorts []uint32
	for i := 0; i < rc.nClients; i++ {
		h := net.AddHost(fmt.Sprintf("c%d", i), netaddr.MakeIPv4(10, 0, 0, byte(10+i)))
		clientPorts = append(clientPorts, net.AttachHost(h, edge, link))
		r.clients = append(r.clients, h)
	}
	for i := 0; i < rc.nServers; i++ {
		h := net.AddHost(fmt.Sprintf("srv%d", i), netaddr.MakeIPv4(10, 0, 1, byte(10+i)))
		net.AttachHost(h, edge, link)
		r.servers = append(r.servers, h)
	}
	vsLink := device.LinkConfig{Delay: vsLinkDelay, RateBps: 1e9}
	for i := 0; i < rc.nPrimary+rc.nBackup; i++ {
		if sh != nil {
			net.UseProc(sh.Lane(1 + i))
		}
		vs := net.AddSwitch(fmt.Sprintf("vs%d", i), device.OVSProfile())
		net.LinkSwitches(edge, vs, vsLink)
		r.vs = append(r.vs, vs)
	}
	for i := 0; i < rc.nStandby; i++ {
		if sh != nil {
			net.UseProc(sh.Lane(1 + rc.nPrimary + rc.nBackup + i))
		}
		sb := net.AddSwitch(fmt.Sprintf("sb%d", i), device.OVSProfile())
		net.LinkSwitches(edge, sb, vsLink)
		r.standby = append(r.standby, sb)
	}
	if sh != nil {
		net.UseProc(nil)
	}

	r.c = controller.New(eng, net)
	if rc.noOverlay {
		controller.NewReactiveRouter(r.c)
		r.c.ConnectAll()
	} else {
		r.app = scotch.New(r.c, rc.cfg)
		for i, vs := range r.vs {
			r.app.AddVSwitch(vs.DPID, i >= rc.nPrimary)
		}
		for i, srv := range r.servers {
			primary := r.vs[i%rc.nPrimary].DPID
			var backup uint64
			if rc.nBackup > 0 {
				backup = r.vs[rc.nPrimary+(i%rc.nBackup)].DPID
			}
			r.app.AssignHost(srv.IP, primary, backup)
		}
		r.app.Protect(edge.DPID, clientPorts...)
		r.c.ConnectAll()
		if err := r.app.Build(); err != nil {
			panic(err)
		}
	}

	r.cap = capture.New(eng)
	for _, srv := range r.servers {
		r.cap.Attach(srv)
	}
	if tr := newRunTracer(); tr != nil {
		r.c.SetTracer(tr)
		edge.SetTracer(tr)
		for _, vs := range r.vs {
			vs.SetTracer(tr)
		}
		for _, sb := range r.standby {
			sb.SetTracer(tr)
		}
		for _, srv := range r.servers {
			traceDelivery(tr, srv)
		}
	}
	newRunObservatory(r)
	return r
}

func (r *rig) emitter(h *device.Host) *workload.Emitter {
	return workload.NewEmitter(r.eng, h, r.cap)
}
