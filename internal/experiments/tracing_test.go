package experiments

import (
	"bytes"
	"testing"

	"scotch/internal/telemetry"
)

// TestTracingDoesNotChangeOutput is the golden determinism check for the
// observability layer: running an experiment with control-path tracing
// armed must produce byte-identical output to the untraced run, and the
// collected trace must cover the full control path (>= 5 distinct stages).
func TestTracingDoesNotChangeOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e, ok := ByID("fig14")
	if !ok {
		t.Fatal("fig14 not registered")
	}

	var clean bytes.Buffer
	if err := e.Run(&clean); err != nil {
		t.Fatal(err)
	}

	EnableTracing()
	defer DisableTracing()
	var traced bytes.Buffer
	if err := e.Run(&traced); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(clean.Bytes(), traced.Bytes()) {
		t.Errorf("tracing changed experiment output:\n--- untraced ---\n%s\n--- traced ---\n%s",
			clean.String(), traced.String())
	}

	traces := CollectedTraces()
	if len(traces) == 0 {
		t.Fatal("no traces collected")
	}
	stages := make(map[string]bool)
	spans := 0
	for _, nt := range traces {
		for _, s := range nt.Tracer.Spans() {
			stages[s.Stage] = true
			spans++
			if s.End < s.Start {
				t.Fatalf("negative span %+v", s)
			}
		}
	}
	if spans == 0 {
		t.Fatal("traced run recorded no spans")
	}
	if len(stages) < 5 {
		t.Fatalf("distinct stages = %d (%v), want >= 5", len(stages), stages)
	}

	// The export of the collected traces is valid Chrome trace JSON.
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, traces...); err != nil {
		t.Fatal(err)
	}
}

// TestDisableTracingDropsState confirms rigs built after DisableTracing are
// untraced and previously collected traces are gone.
func TestDisableTracingDropsState(t *testing.T) {
	EnableTracing()
	if newRunTracer() == nil {
		t.Fatal("armed tracer is nil")
	}
	DisableTracing()
	if tr := newRunTracer(); tr != nil {
		t.Fatal("disarmed tracing still returns tracers")
	}
	if traces := CollectedTraces(); len(traces) != 0 {
		t.Fatalf("collected traces survive disable: %d", len(traces))
	}
}
