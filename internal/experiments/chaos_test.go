package experiments

import (
	"bytes"
	"context"
	"testing"

	"scotch/internal/fault"
)

var chaosIDs = []string{"chaos-vswitch", "chaos-partition", "chaos-churn"}

// chaosTestIDs trims the set under -short / -race, where the 6×15s
// chaos-vswitch sweep dominates the package's wall time; the two cheap
// runs still exercise every fault kind.
func chaosTestIDs(t *testing.T) []string {
	t.Helper()
	if testing.Short() || raceEnabled {
		return []string{"chaos-partition", "chaos-churn"}
	}
	return chaosIDs
}

// TestChaosDeterministic requires the chaos experiments to be as
// reproducible as the fault-free ones: the fault plans are seeded and the
// runner schedules events on the sim clock, so a repeat run — serial or
// under the parallel runner — must produce byte-identical tables.
func TestChaosDeterministic(t *testing.T) {
	ids := chaosTestIDs(t)
	serial, err := RunAll(context.Background(), ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		i, id := i, id
		t.Run(id, func(t *testing.T) {
			e, _ := ByID(id)
			var again bytes.Buffer
			if err := e.Run(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Contains(serial[i].Output, again.Bytes()) {
				t.Errorf("repeat run of %s diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
					id, serial[i].Output, again.String())
			}
		})
	}
	parallel, err := RunAll(context.Background(), ids, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if !bytes.Equal(serial[i].Output, parallel[i].Output) {
			t.Errorf("parallel run of %s diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial[i].Output, parallel[i].Output)
		}
	}
}

// TestChaosVSwitchBound is the experiment's acceptance bound: with a
// primary mesh vSwitch dead from 4s onward, client failure must stay
// within 2× of the fault-free Scotch curve — client flows never depended
// on the dead overlay node and the promoted backup absorbs the attack.
func TestChaosVSwitchBound(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("two 15s sim runs; skipped under -short / -race")
	}
	base := chaosVSwitchPoint(2000, fault.Plan{})
	ch := chaosVSwitchPoint(2000, chaosVSwitchPlan())
	if ch.swaps == 0 {
		t.Fatal("no backup promotion recorded — the kill never landed")
	}
	if ch.injected != 2 {
		t.Fatalf("faults injected = %d, want 2 (crash + restart)", ch.injected)
	}
	if base.clientFail <= 0 {
		t.Fatalf("degenerate baseline: client failure %v", base.clientFail)
	}
	if ch.clientFail > 2*base.clientFail {
		t.Errorf("chaos client failure %.3f exceeds 2x no-fault %.3f",
			ch.clientFail, base.clientFail)
	}
}

// TestChaosPartitionBound checks the failover pipeline under a partition
// (not a crash): detection within the 250ms heartbeat bound, and every
// stale mastership claim the healed ex-master replays is fenced — one per
// pod0 switch (edge + 2 vSwitches).
func TestChaosPartitionBound(t *testing.T) {
	res := chaosPartitionPoint(43)
	if res.failovers != 1 {
		t.Fatalf("failovers = %d, want 1", res.failovers)
	}
	if res.detectMs <= 0 || res.detectMs > 250+1 {
		t.Errorf("detection took %.1fms, want within the 250ms heartbeat bound", res.detectMs)
	}
	if res.handoffMs < res.detectMs {
		t.Errorf("handoff (%.1fms) precedes detection (%.1fms)", res.handoffMs, res.detectMs)
	}
	if res.staleFenced != 3 {
		t.Errorf("stale claims fenced = %d, want 3 (pod0 edge + 2 vSwitches)", res.staleFenced)
	}
	if res.clientFailFrac > 0.05 {
		t.Errorf("client failure %.3f during partition, want near zero", res.clientFailFrac)
	}
}

// TestChaosChurnConverges checks §5.5 under link flaps: each down period
// triggers a withdrawal, each up period a fresh activation, and after the
// last flap the overlay ends withdrawn — deploy/withdraw cycling instead
// of wedging in either state.
func TestChaosChurnConverges(t *testing.T) {
	res := chaosChurnPoint(47)
	if res.flaps < 2 {
		t.Fatalf("plan produced %d flaps, want >= 2", res.flaps)
	}
	if res.activations < 2 || res.withdrawals < 2 {
		t.Errorf("activations=%d withdrawals=%d, want >= 2 cycles", res.activations, res.withdrawals)
	}
	if res.activations != res.withdrawals {
		t.Errorf("activations=%d withdrawals=%d, want balanced cycles", res.activations, res.withdrawals)
	}
	if res.finalActive {
		t.Error("overlay still active after the attack stopped")
	}
	if res.injected != uint64(2*res.flaps) {
		t.Errorf("faults injected = %d, want %d (down+up per flap)", res.injected, 2*res.flaps)
	}
}

// TestChaosEnvUnknownTargets verifies fault application fails loudly on
// typos instead of silently skipping events.
func TestChaosEnvUnknownTargets(t *testing.T) {
	env := &chaosEnv{}
	for _, ev := range []fault.Event{
		{Kind: fault.SwitchCrash, Target: "nope"},
		{Kind: fault.LinkDown, Target: "nope"},
		{Kind: fault.ControllerPartition, Target: "nope"},
		{Kind: fault.Kind(99), Target: "nope"},
	} {
		if err := env.ApplyFault(ev); err == nil {
			t.Errorf("ApplyFault(%v %q) succeeded, want error", ev.Kind, ev.Target)
		}
	}
}
