package experiments

import (
	"testing"
)

// TestMultitenantIsolation pins the experiment's headline claim: with the
// overlay and autoscaler active, adding a 1500 flows/s spoofed-source DDoS
// tenant moves the baseline tenant's p99 flow-setup latency by less than
// 2x relative to the same mix without the attacker.
func TestMultitenantIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two 12s scenario simulations")
	}
	res := multitenantPoint(61)
	if res.p99Ratio <= 0 {
		t.Fatalf("degenerate p99 ratio %v (no baseline latencies observed?)", res.p99Ratio)
	}
	if res.p99Ratio >= 2 {
		t.Errorf("ddos tenant moved baseline p99 by %.2fx, bound is < 2x", res.p99Ratio)
	}
	if res.peakPool < 2 {
		t.Errorf("autoscaler never grew the pool under attack (peak %d)", res.peakPool)
	}
	// Every tenant of the attacked run produced flows and latencies.
	want := map[string]bool{"base": false, "crowd": false, "ddos": false}
	for _, r := range res.attacked {
		if _, ok := want[r.tenant]; !ok {
			t.Errorf("unexpected tenant %q in attacked run", r.tenant)
			continue
		}
		want[r.tenant] = true
		if r.flows == 0 {
			t.Errorf("tenant %s observed no latencies", r.tenant)
		}
		if r.p50ms <= 0 || r.p99ms < r.p50ms {
			t.Errorf("tenant %s has malformed quantiles: p50=%v p99=%v",
				r.tenant, r.p50ms, r.p99ms)
		}
	}
	for tenant, seen := range want {
		if !seen {
			t.Errorf("tenant %s missing from attacked run", tenant)
		}
	}
}

// TestFattreeScenario checks the k=8 fat-tree flash crowd completes with
// both tenants delivering the bulk of their flows through the overlay.
func TestFattreeScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 96-switch fat-tree scenario")
	}
	res := fattreePoint(62)
	if res.baseCompletion < 0.9 {
		t.Errorf("base completion %.3f, want >= 0.9", res.baseCompletion)
	}
	if res.crowdCompletion < 0.8 {
		t.Errorf("crowd completion %.3f, want >= 0.8", res.crowdCompletion)
	}
	tenants := map[string]bool{}
	for _, r := range res.rows {
		tenants[r.tenant] = true
		if r.flows == 0 || r.p99ms <= 0 {
			t.Errorf("tenant %s: flows=%d p99=%v", r.tenant, r.flows, r.p99ms)
		}
	}
	if !tenants["base"] || !tenants["crowd"] {
		t.Errorf("tenants observed = %v, want base and crowd", tenants)
	}
}

// TestReplayScenario checks the embedded trace parses, schedules fully,
// and yields per-tenant latency rows for all three tenant labels.
func TestReplayScenario(t *testing.T) {
	res := replayPoint(63)
	if res.events == 0 || res.scheduled != res.events {
		t.Fatalf("scheduled %d of %d trace events", res.scheduled, res.events)
	}
	var total uint64
	tenants := map[string]bool{}
	for _, r := range res.rows {
		tenants[r.tenant] = true
		total += r.flows
	}
	for _, want := range []string{"web", "batch", "replay"} {
		if !tenants[want] {
			t.Errorf("tenant %s missing from replay results", want)
		}
	}
	// Nearly all trace flows must deliver their first packet in-run.
	if float64(total) < 0.9*float64(res.events) {
		t.Errorf("observed latencies for %d of %d trace flows", total, res.events)
	}
	if res.merged.Count() != total {
		t.Errorf("merged CDF has %d samples, tenant rows sum to %d", res.merged.Count(), total)
	}
}
