package experiments

import (
	"bytes"
	"context"
	"testing"
)

// TestElasticGrowsAndDrains is the acceptance test for the elastic
// control loop: under the ramping attack the autoscaler must grow the
// one-primary mesh into the standby pool, and after the attack subsides
// it must drain every grown member back out, completing each drain —
// with zero loss among the client flows started inside the drain window
// (loss there would be attributable to the scale-down path, not to the
// attack).
func TestElasticGrowsAndDrains(t *testing.T) {
	res := elasticPoint(47)
	if res.peak < 2 {
		t.Fatalf("pool never grew under the attack (peak=%d)", res.peak)
	}
	if res.final != 1 {
		t.Fatalf("pool did not drain back to the floor (final=%d)", res.final)
	}
	if res.ups == 0 || res.downs == 0 {
		t.Fatalf("autoscaler idle: ups=%d downs=%d", res.ups, res.downs)
	}
	if res.added != res.ups {
		t.Fatalf("grow decisions (%d) and live adds (%d) disagree", res.ups, res.added)
	}
	if res.drained != res.downs {
		t.Fatalf("shrink decisions (%d) and completed drains (%d) disagree — a drain hung", res.downs, res.drained)
	}
	if res.probeFail != 0 {
		t.Fatalf("drain-window client loss = %.3f, want exactly 0", res.probeFail)
	}
	// The steady client shares the switch with a 3000 flows/s attack;
	// its loss must stay inside the paper's protected envelope.
	if res.clientFail > 0.15 {
		t.Fatalf("client loss across the whole run = %.3f", res.clientFail)
	}
}

// TestElasticDeterministic locks the elastic experiment's byte output
// across repeat runs and across the parallel runner: autoscaler
// decisions ride the sim clock only.
func TestElasticDeterministic(t *testing.T) {
	// Pair the elastic run with another experiment so parallelism is real.
	ids := []string{"elastic", "fig4"}
	serial, err := RunAll(context.Background(), ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunAll(context.Background(), ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAll(context.Background(), ids, 2)
	if err != nil {
		t.Fatal(err)
	}
	var a, b, c bytes.Buffer
	for _, pair := range []struct {
		buf *bytes.Buffer
		res []RunResult
	}{{&a, serial}, {&b, again}, {&c, parallel}} {
		if err := WriteResults(pair.buf, pair.res); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two serial elastic runs diverged")
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("parallel elastic run diverged from serial")
	}
}
