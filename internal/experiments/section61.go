package experiments

import (
	"io"
	"time"

	"scotch/internal/capture"
	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Maximum flow rule insertion rate at the Pica8 switch",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Interaction of the data path and the control path (loss vs insertion rate)",
		Run:   runFig10,
	})
}

// driveInserts sends distinct FlowMods to the switch at the attempted rate
// for dur. Rules carry the paper's 10-second timeout.
func driveInserts(eng *sim.Engine, sw *device.Switch, rate float64, dur time.Duration) {
	i := 0
	tick := eng.Every(time.Duration(float64(time.Second)/rate), func() {
		i++
		fm := &openflow.FlowMod{
			Command:     openflow.FlowAdd,
			Priority:    500,
			IdleTimeout: 10,
			HardTimeout: 10,
			Match: openflow.Match{
				Fields:  openflow.FieldIPv4Src | openflow.FieldIPv4Dst,
				IPv4Src: netaddr.IPv4(i),
				IPv4Dst: netaddr.MakeIPv4(10, 0, 1, 1),
			},
			Instructions: openflow.Apply1(openflow.OutputAction(3)),
		}
		b, err := openflow.Marshal(fm, uint32(i))
		if err != nil {
			panic(err)
		}
		sw.DeliverControl(b)
	})
	eng.Schedule(dur, tick.Stop)
}

func runFig9(w io.Writer) error {
	// "We let the Ryu controller generate flow rules at a constant rate
	// and send them to the Pica8 switch... there is no data traffic."
	rates := []float64{250, 500, 1000, 1500, 2000, 2250, 2500, 3000}
	t := newTable(w, "attempted_insert_per_s", "successful_insert_per_s")
	const dur = 10 * time.Second
	for _, r := range rates {
		eng := sim.New(9)
		prof := device.Pica8Profile()
		prof.TableCapacity = 0 // isolate OFA throughput from TCAM size
		sw := device.NewSwitch(eng, "pica8", 1, prof)
		driveInserts(eng, sw, r, dur)
		eng.RunUntil(dur)
		t.row(int(r), float64(sw.Stats.RulesInstalled)/dur.Seconds())
	}
	t.flush()
	return nil
}

func runFig10(w io.Writer) error {
	// Data traffic through a pre-installed rule while the controller
	// inserts unrelated rules at a given rate; measure data-path loss.
	insertRates := []float64{100, 400, 800, 1200, 1300, 1400, 1600, 2000}
	dataRates := []float64{500, 1000, 2000}
	t := newTable(w, "insert_per_s", "loss_500pps", "loss_1000pps", "loss_2000pps")
	const dur = 5 * time.Second
	for _, ir := range insertRates {
		row := []any{int(ir)}
		for _, dr := range dataRates {
			eng := sim.New(10)
			net := topo.New(eng)
			prof := device.Pica8Profile()
			prof.TableCapacity = 0
			sw := net.AddSwitch("pica8", prof)
			src := net.AddHost("src", netaddr.MakeIPv4(10, 0, 0, 1))
			dst := net.AddHost("dst", netaddr.MakeIPv4(10, 0, 1, 1))
			net.AttachHost(src, sw, device.LinkConfig{})
			dstPort := net.AttachHost(dst, sw, device.LinkConfig{})

			// Pre-install the forwarding rule for the measured flow.
			pre := &openflow.FlowMod{
				Command: openflow.FlowAdd, Priority: 900,
				Match: openflow.Match{Fields: openflow.FieldIPv4Dst, IPv4Dst: dst.IP},
				Instructions: openflow.Apply1(openflow.OutputAction(dstPort)),
			}
			b, err := openflow.Marshal(pre, 1)
			if err != nil {
				return err
			}
			sw.DeliverControl(b)
			eng.RunUntil(100 * time.Millisecond)

			cap := capture.New(eng)
			cap.Attach(dst)
			em := workload.NewEmitter(eng, src, cap)
			// Let the insertion load reach steady state before measuring
			// data-path loss (the paper measures steady state).
			driveInserts(eng, sw, ir, 2*time.Second+dur)
			eng.Schedule(2*time.Second, func() {
				em.Start(workload.Flow{
					Key: netaddr.FlowKey{Src: src.IP, Dst: dst.IP, Proto: netaddr.ProtoTCP,
						SrcPort: 9000, DstPort: 80},
					Packets:  int(dr * dur.Seconds()),
					Interval: time.Duration(float64(time.Second) / dr),
					Class:    "data",
				})
			})
			eng.RunUntil(2*time.Second + dur + time.Second)
			row = append(row, 1-cap.DeliveryRatio("data"))
		}
		t.row(row...)
	}
	t.flush()
	return nil
}
