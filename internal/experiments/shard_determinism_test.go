package experiments

import (
	"bytes"
	"os"
	"testing"
)

// shardableIDs are the registered experiments whose rigs build on the
// partitioned engine when sharding is armed (static topology, no
// mid-run cross-partition sampling). Everything else falls back to the
// serial engine, so running it here would test nothing.
var shardableIDs = []string{
	"fig11", "fig13",
	"ablation-fanout", "ablation-elephant-threshold",
	"ablation-scheduler", "ablation-withdrawal",
}

// shardWorkerCounts covers the degenerate single-lane case, the even
// split, more workers than cores, and a prime count that leaves lanes
// unevenly loaded.
var shardWorkerCounts = []int{1, 2, 4, 7}

// shardDeterminismIDs picks the experiments to pin. The default set is
// the three cheapest shardable rigs (~80s for the full worker matrix);
// SCOTCH_DETERMINISM_ALL=1 runs all six (~6 min). Under -short or the
// race detector (10-20x slowdown on these sim-heavy runs) only the
// cheapest experiment runs, at two worker counts.
func shardDeterminismIDs(t *testing.T) ([]string, []int) {
	t.Helper()
	if os.Getenv("SCOTCH_DETERMINISM_ALL") != "" {
		return shardableIDs, shardWorkerCounts
	}
	if testing.Short() || raceEnabled {
		return []string{"ablation-withdrawal"}, []int{2, 7}
	}
	return []string{"fig13", "ablation-elephant-threshold", "ablation-withdrawal"}, shardWorkerCounts
}

// TestShardedByteIdentical pins the conservative-DES contract: a run on
// the partitioned engine must be byte-identical to the serial run at
// every worker count. Any divergence means lane-local state leaked
// across a partition boundary (RNG draws off lane 0, a cross-lane Defer
// below lookahead, or a driver touching foreign-lane state mid-window).
func TestShardedByteIdentical(t *testing.T) {
	defer SetShards(0)
	ids, workerCounts := shardDeterminismIDs(t)
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			SetShards(0)
			var serial bytes.Buffer
			if err := e.Run(&serial); err != nil {
				t.Fatal(err)
			}
			if serial.Len() == 0 {
				t.Fatal("serial run produced no output")
			}
			for _, workers := range workerCounts {
				SetShards(workers)
				var got bytes.Buffer
				err := e.Run(&got)
				SetShards(0)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !bytes.Equal(serial.Bytes(), got.Bytes()) {
					t.Errorf("workers=%d diverged from serial run:\n--- serial ---\n%s\n--- sharded ---\n%s",
						workers, serial.String(), got.String())
				}
			}
		})
	}
}
