//go:build race

package experiments

// raceEnabled trims the determinism-test workload when the race detector
// (~10-20x slowdown on these sim-heavy tests) is on.
const raceEnabled = true
