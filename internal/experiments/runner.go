package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// RunResult is the outcome of one experiment executed by the runner.
type RunResult struct {
	ID    string
	Title string
	// Output is the experiment's complete byte output: the banner line
	// followed by its result table. Concatenating the outputs of a RunAll
	// call in order reproduces, byte for byte, what a sequential run of
	// the same ids would print (experiments are deterministic and each one
	// owns a private sim.Engine, so workers never share state).
	Output []byte
	// Wall is the wall-clock time the experiment took on its worker.
	Wall time.Duration
	// Err is the experiment's error, if it failed.
	Err error
}

// RunAll executes the experiments with the given ids on a pool of
// parallelism workers and returns their results in the order ids were
// given. parallelism <= 0 means runtime.NumCPU().
//
// Each experiment's output is captured into a per-experiment buffer, so
// parallel execution cannot interleave output. The first experiment error
// cancels the context and stops workers from starting further experiments
// (already-running experiments finish; their results are still reported).
// The returned error is the first error in id order, wrapped with its
// experiment id.
func RunAll(ctx context.Context, ids []string, parallelism int) ([]RunResult, error) {
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, ok := ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (try 'scotchsim list')", id)
		}
		exps[i] = e
	}
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	if parallelism > len(exps) {
		parallelism = len(exps)
	}
	if parallelism < 1 {
		parallelism = 1
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]RunResult, len(exps))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = runCaptured(exps[i])
				if results[i].Err != nil {
					cancel()
				}
			}
		}()
	}
	// Feed indexes in registry/argument order so, under any parallelism,
	// early experiments start first and results stay position-stable.
feed:
	for i := range exps {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("%s: %w", results[i].ID, results[i].Err)
		}
	}
	return results, ctx.Err()
}

// runCaptured runs one experiment, capturing banner and table output.
func runCaptured(e Experiment) RunResult {
	var buf bytes.Buffer
	banner(&buf, e)
	start := time.Now()
	err := e.Run(&buf)
	return RunResult{
		ID:     e.ID,
		Title:  e.Title,
		Output: buf.Bytes(),
		Wall:   time.Since(start),
		Err:    err,
	}
}

// WriteResults writes the results' outputs to w in order, reproducing the
// sequential byte stream.
func WriteResults(w io.Writer, results []RunResult) error {
	for i := range results {
		if _, err := w.Write(results[i].Output); err != nil {
			return err
		}
	}
	return nil
}
