package experiments

import (
	"bytes"
	"testing"

	"scotch/internal/obs"
)

// TestObsSLOBurnAndRecover pins the obs-slo experiment's health story:
// the crowd tenant's p99 SLO crosses into burning during the flash
// crowd and recovers after it, while the base tenant — briefly burned
// by the activation lag — recovers much earlier, showing the overlay's
// isolation once it engages.
func TestObsSLOBurnAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := obsSLOPoint(47)

	if res.digest.Samples == 0 {
		t.Fatal("observatory took no samples")
	}
	if res.crowd == nil || res.base == nil {
		t.Fatal("digest is missing an SLO report")
	}

	if got := res.crowd.VerdictPath; got != "healthy->burning->healthy" {
		t.Errorf("crowd verdict path = %q, want healthy->burning->healthy", got)
	}
	if res.crowd.Final != obs.Healthy {
		t.Errorf("crowd final verdict = %v, want healthy", res.crowd.Final)
	}
	if len(res.crowd.Transitions) != 2 {
		t.Fatalf("crowd transitions = %d, want 2", len(res.crowd.Transitions))
	}
	if res.crowd.PeakBurnShort < 1 || res.crowd.PeakBurnLong < 1 {
		t.Errorf("crowd peak burns %.2f/%.2f never crossed the threshold",
			res.crowd.PeakBurnShort, res.crowd.PeakBurnLong)
	}
	if res.crowd.PeakWindowQuantileSeconds <= 0.05 {
		t.Errorf("crowd peak windowed p99 = %.4fs, want above the 50ms objective",
			res.crowd.PeakWindowQuantileSeconds)
	}

	if res.base.Final != obs.Healthy {
		t.Errorf("base final verdict = %v, want healthy", res.base.Final)
	}
	// Isolation: once the overlay engages, base recovers while the crowd
	// keeps burning until the event ends.
	if n := len(res.base.Transitions); n > 0 {
		baseRecovery := res.base.Transitions[n-1].At
		crowdRecovery := res.crowd.Transitions[1].At
		if baseRecovery >= crowdRecovery {
			t.Errorf("base recovered at %v, not before crowd's recovery at %v",
				baseRecovery, crowdRecovery)
		}
	}
}

// TestObsSLOTableDeterministic runs the experiment's Run function twice
// and requires byte-identical tables — the digest path itself (not just
// the underlying simulation) must be deterministic.
func TestObsSLOTableDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e, ok := ByID("obs-slo")
	if !ok {
		t.Fatal("obs-slo not registered")
	}
	var a, b bytes.Buffer
	if err := e.Run(&a); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("obs-slo output diverged between runs:\n--- 1 ---\n%s\n--- 2 ---\n%s",
			a.String(), b.String())
	}
}
