package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig3", "fig4", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15",
		"ablation-fanout", "ablation-elephant-threshold", "ablation-scheduler",
		"ablation-fifo-scheduler", "ablation-withdrawal",
		"cluster-scale", "cluster-migrate", "cluster-failover",
		"chaos-vswitch", "chaos-partition", "chaos-churn",
		"elastic",
		"scenario-multitenant", "scenario-fattree", "scenario-replay",
		"devolve-ablation", "devolve-invalidate",
		"obs-slo",
		"elastic-under-migration", "replica-scale-out",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id resolved")
	}
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
}

func TestTable1Runs(t *testing.T) {
	e, _ := ByID("table1")
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pica8-pronto-3780", "hp-procurve-6600", "open-vswitch"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig14Runs(t *testing.T) {
	// fig14 is the fastest full experiment; it doubles as a smoke test of
	// the rig builder.
	if testing.Short() {
		t.Skip("short mode")
	}
	e, _ := ByID("fig14")
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "physical") || !strings.Contains(out, "overlay") {
		t.Fatalf("fig14 output incomplete:\n%s", out)
	}
}

func TestFig9ShapeMatchesPaper(t *testing.T) {
	// The paper's §6.1 result: insertion is loss-free to the maximum, then
	// the successful rate falls and flattens. Parse our own table and
	// assert the shape.
	if testing.Short() {
		t.Skip("short mode")
	}
	e, _ := ByID("fig9")
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	type pt struct{ attempted, successful float64 }
	var pts []pt
	for _, ln := range lines[1:] {
		fields := strings.Fields(ln)
		if len(fields) < 2 {
			t.Fatalf("unparseable row %q", ln)
		}
		a, err1 := strconv.ParseFloat(fields[0], 64)
		s, err2 := strconv.ParseFloat(fields[1], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %q", ln)
		}
		pts = append(pts, pt{a, s})
	}
	for _, p := range pts {
		switch {
		case p.attempted <= 2000:
			if p.successful < p.attempted*0.97 {
				t.Errorf("loss below the loss-free rate: %+v", p)
			}
		case p.attempted >= 2250:
			if p.successful < 900 || p.successful > 1100 {
				t.Errorf("overdriven rate should flatten near 1000: %+v", p)
			}
		}
	}
}
