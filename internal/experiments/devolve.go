package experiments

import (
	"fmt"
	"io"
	"time"

	"scotch/internal/devolve"
	"scotch/internal/netaddr"
	"scotch/internal/scotch"
	"scotch/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "devolve-ablation",
		Title: "Control devolution ablation: devolved vs centralized under the multi-tenant DDoS mix (ROADMAP item 4)",
		Run:   runDevolveAblation,
	})
	register(Experiment{
		ID:    "devolve-invalidate",
		Title: "Devolution policy invalidation: live revoke, stale-generation fencing, and drain flush deliver no stale policy",
		Run:   runDevolveInvalidate,
	})
}

// devolvePool is the mesh size of the ablation rig; the acceptance bound
// scales with it (devolved Packet-Ins <= centralized/pool * 1.25).
const devolvePool = 4

// devolveRunResult is one arm of the ablation.
type devolveRunResult struct {
	rows      []latRow
	packetIns uint64 // controller Packet-Ins processed
	hits      uint64 // misses absorbed at the vSwitch tier
	escal     uint64 // misses escalated to the controller by the caches
}

// devolveRun drives the three-tenant DDoS mix over a four-primary mesh,
// either centralized (every miss punts to the controller) or devolved
// (per-tenant policies absorb mice at the vSwitch tier). The elephant
// byte threshold is raised out of reach so the ablation isolates the
// mice fast path; elephant escalation has its own unit tests.
func devolveRun(seed int64, devolved bool) devolveRunResult {
	const dur = 10 * time.Second
	cfg := scotch.DefaultConfig()
	cfg.RuleIdleTimeout = 2 * time.Second
	cfg.FanOut = 4
	cfg.ElephantBytes = 1 << 30
	r := newRig(rigConfig{seed: seed, cfg: cfg,
		nClients: 3, nServers: 2, nPrimary: devolvePool})

	if devolved {
		r.app.EnableDevolution()
		r.app.DevolveTenant("base", netaddr.MakePrefix(r.clients[0].IP, 32), false)
		r.app.DevolveTenant("crowd", netaddr.MakePrefix(r.clients[1].IP, 32), false)
		r.app.DevolveTenant("ddos", netaddr.MustParsePrefix("172.16.0.0/12"), false)
	}

	lat := workload.NewLatencyTracker(nil)
	lat.AttachCapture(r.cap)

	dsts := []netaddr.IPv4{r.servers[0].IP, r.servers[1].IP}
	spoof := netaddr.MustParsePrefix("172.16.0.0/12")
	sc := workload.NewScenario(r.eng, seed)
	sc.Add(workload.TenantSpec{
		Name: "base", Curve: workload.ConstantCurve(120),
		Size:    workload.ParetoSampler{Alpha: 1.2, MinPkts: 1, MaxPkts: 20},
		PktIval: time.Millisecond,
		Sources: []*workload.Emitter{r.emitter(r.clients[0])}, Dsts: dsts,
	})
	sc.Add(workload.TenantSpec{
		Name: "crowd",
		Curve: workload.TrapezoidCurve{Base: 0, Peak: 600,
			RampStart: 2 * time.Second, PeakStart: 4 * time.Second,
			PeakEnd: 7 * time.Second, RampEnd: 9 * time.Second},
		Sources: []*workload.Emitter{r.emitter(r.clients[1])}, Dsts: dsts[:1],
	})
	sc.Add(workload.TenantSpec{
		Name: "ddos",
		Curve: workload.OnOffCurve{Rate: 1500,
			Start: 2 * time.Second, End: 8 * time.Second},
		Sources: []*workload.Emitter{r.emitter(r.clients[2])}, Dsts: dsts[:1],
		Spoof: &spoof,
	})
	sc.Start()
	r.eng.RunUntil(dur)
	sc.Stop()
	r.eng.RunUntil(dur + 2*time.Second)

	res := devolveRunResult{
		rows:      latencyRows(lat),
		packetIns: r.c.Stats.PacketIns,
	}
	if m := r.app.DevolveMetrics(); m != nil {
		res.hits = m.TotalHits()
		res.escal = m.TotalEscalations()
	}
	return res
}

// devolveAblationResult pairs the two arms with the acceptance ratios.
type devolveAblationResult struct {
	centralized devolveRunResult
	devolved    devolveRunResult
	// piRatio is devolved Packet-Ins over centralized; the pool-factor
	// claim bounds it by 1.25/pool.
	piRatio float64
	// p99Ratio is the base (legitimate) tenant's devolved p99 over its
	// centralized p99; devolution must keep it within 1.1x.
	p99Ratio float64
}

func baseP99(rows []latRow) float64 {
	for _, r := range rows {
		if r.tenant == "base" {
			return r.p99ms
		}
	}
	return 0
}

func devolveAblationPoint(seed int64) devolveAblationResult {
	res := devolveAblationResult{
		centralized: devolveRun(seed, false),
		devolved:    devolveRun(seed, true),
	}
	if res.centralized.packetIns > 0 {
		res.piRatio = float64(res.devolved.packetIns) / float64(res.centralized.packetIns)
	}
	if c := baseP99(res.centralized.rows); c > 0 {
		res.p99Ratio = baseP99(res.devolved.rows) / c
	}
	return res
}

func runDevolveAblation(w io.Writer) error {
	res := devolveAblationPoint(71)
	fmt.Fprintln(w, "centralized (every miss punts to the controller):")
	latencyTable(w, res.centralized.rows)
	fmt.Fprintln(w, "devolved (per-tenant policy caches at the mesh vSwitches):")
	latencyTable(w, res.devolved.rows)
	fmt.Fprintf(w, "pool=%d packet_ins_centralized=%d packet_ins_devolved=%d devolve_hits=%d escalations=%d\n",
		devolvePool, res.centralized.packetIns, res.devolved.packetIns,
		res.devolved.hits, res.devolved.escal)
	fmt.Fprintf(w, "pi_ratio=%.4f (bound <= %.4f) base_p99_ratio=%.3f (bound <= 1.1)\n",
		res.piRatio, 1.25/float64(devolvePool), res.p99Ratio)
	return nil
}

// devolveInvalidateResult is one devolve-invalidate run.
type devolveInvalidateResult struct {
	webHitsAtRevoke uint64 // web tenant hits when the revoke landed
	webHitsFinal    uint64 // must equal webHitsAtRevoke: no stale delivery
	bulkHitsFinal   uint64 // the surviving tenant keeps devolving
	staleRejected   uint64 // fenced-off pushes (>=1: the replayed table)
	drainFlushed    bool   // drained member's cache emptied
	drainStaleOK    bool   // flushed cache still fences stale generations
	webCompletion   float64
	bulkCompletion  float64
	finalGen        uint64
}

// devolveInvalidatePoint exercises the invalidation paths end to end on
// a two-member mesh: revoke a tenant mid-run (its locally installed
// rules must delete, freezing its hit counter), replay a stale policy
// table (the generation fence must reject it), then drain a member (its
// cache must flush and keep fencing afterwards). Traffic continues
// throughout; revoked-tenant flows fall back to central admission, so
// completions stay high.
func devolveInvalidatePoint(seed int64) devolveInvalidateResult {
	const dur = 8 * time.Second
	cfg := scotch.DefaultConfig()
	cfg.ActivateRate = 20 // engage the overlay promptly
	cfg.RuleIdleTimeout = time.Second
	r := newRig(rigConfig{seed: seed, cfg: cfg,
		nClients: 2, nServers: 1, nPrimary: 2})
	r.app.EnableDevolution()
	r.app.DevolveTenant("web", netaddr.MakePrefix(r.clients[0].IP, 32), false)
	r.app.DevolveTenant("bulk", netaddr.MakePrefix(r.clients[1].IP, 32), false)

	sc := workload.NewScenario(r.eng, seed)
	sc.Add(workload.TenantSpec{
		Name: "web", Curve: workload.ConstantCurve(150),
		Sources: []*workload.Emitter{r.emitter(r.clients[0])},
		Dsts:    []netaddr.IPv4{r.servers[0].IP},
	})
	sc.Add(workload.TenantSpec{
		Name: "bulk", Curve: workload.ConstantCurve(100),
		Sources: []*workload.Emitter{r.emitter(r.clients[1])},
		Dsts:    []netaddr.IPv4{r.servers[0].IP},
	})
	sc.Start()

	var res devolveInvalidateResult
	m := r.app.DevolveMetrics()
	r.eng.Schedule(3*time.Second, func() {
		r.app.RevokeDevolveTenant("web")
	})
	r.eng.Schedule(3300*time.Millisecond, func() {
		// The revoke (plus control delay) has landed everywhere; from here
		// on the web tenant must gain no further local hits.
		res.webHitsAtRevoke = m.Hits("web")
	})
	r.eng.Schedule(4*time.Second, func() {
		// A partitioned ex-master replays an ancient policy table at one
		// member: the generation fence must reject it.
		if c := r.app.DevolveCache(r.vs[0].DPID); c != nil {
			c.Apply(&devolve.Table{Gen: 1})
		}
	})
	drained := r.vs[1].DPID
	var drainedCache *devolve.Cache
	r.eng.Schedule(5*time.Second, func() {
		drainedCache = r.app.DevolveCache(drained)
		if err := r.app.DrainVSwitch(drained); err != nil {
			panic(err)
		}
		res.drainFlushed = drainedCache != nil && !drainedCache.Active()
		res.drainStaleOK = drainedCache != nil && !drainedCache.Apply(&devolve.Table{Gen: 2})
	})
	r.eng.RunUntil(dur)
	sc.Stop()
	r.eng.RunUntil(dur + 2*time.Second)

	res.webHitsFinal = m.Hits("web")
	res.bulkHitsFinal = m.Hits("bulk")
	if c := r.app.DevolveCache(r.vs[0].DPID); c != nil {
		res.staleRejected += c.Stats().StaleRejected
	}
	if drainedCache != nil {
		res.staleRejected += drainedCache.Stats().StaleRejected
	}
	res.webCompletion = r.cap.CompletionFraction("web")
	res.bulkCompletion = r.cap.CompletionFraction("bulk")
	res.finalGen = r.app.PolicyGeneration()
	return res
}

func runDevolveInvalidate(w io.Writer) error {
	res := devolveInvalidatePoint(72)
	t := newTable(w, "tenant", "hits_at_revoke", "hits_final", "completion")
	t.row("web", res.webHitsAtRevoke, res.webHitsFinal, res.webCompletion)
	t.row("bulk", uint64(0), res.bulkHitsFinal, res.bulkCompletion)
	t.flush()
	fmt.Fprintf(w, "stale_rejected=%d drain_flushed=%v drain_fences_stale=%v final_gen=%d\n",
		res.staleRejected, res.drainFlushed, res.drainStaleOK, res.finalGen)
	fmt.Fprintf(w, "web_frozen_after_revoke=%v bulk_kept_devolving=%v\n",
		res.webHitsFinal == res.webHitsAtRevoke, res.bulkHitsFinal > 0)
	return nil
}
