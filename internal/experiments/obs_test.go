package experiments

import (
	"bytes"
	"testing"
)

// TestObservatoryDoesNotChangeOutput is the golden determinism check for
// the observatory: running an experiment with health observation armed
// must produce byte-identical output to the unobserved run. Observation
// adds sampling events to the engine but reads model state strictly
// read-only, so the experiment's own event sequence — and therefore its
// output — must not shift by a single byte.
func TestObservatoryDoesNotChangeOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, id := range []string{"fig14", "elastic"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("%s not registered", id)
			}
			var clean bytes.Buffer
			if err := e.Run(&clean); err != nil {
				t.Fatal(err)
			}

			EnableObservatory()
			defer DisableObservatory()
			var observed bytes.Buffer
			if err := e.Run(&observed); err != nil {
				t.Fatal(err)
			}

			if !bytes.Equal(clean.Bytes(), observed.Bytes()) {
				t.Errorf("observation changed %s output:\n--- unobserved ---\n%s\n--- observed ---\n%s",
					id, clean.String(), observed.String())
			}

			runs := CollectedHealth()
			if len(runs) == 0 {
				t.Fatal("no health runs collected")
			}
			for _, nh := range runs {
				d := nh.Obs.Digest(nh.Name)
				if d.Samples == 0 {
					t.Errorf("%s: observatory took no samples", nh.Name)
				}
				if len(d.Components) == 0 {
					t.Errorf("%s: digest has no components", nh.Name)
				}
			}
		})
	}
}

// TestDisableObservatoryDropsState confirms rigs built after
// DisableObservatory are unobserved and collected runs are gone.
func TestDisableObservatoryDropsState(t *testing.T) {
	EnableObservatory()
	obsState.Lock()
	enabled := obsState.enabled
	obsState.Unlock()
	if !enabled {
		t.Fatal("EnableObservatory did not arm")
	}
	DisableObservatory()
	if runs := CollectedHealth(); len(runs) != 0 {
		t.Fatalf("collected runs survive disable: %d", len(runs))
	}
	if v := CurrentClusterView(); v != nil {
		t.Fatalf("current view survives disable: %+v", v)
	}
}

// TestCurrentClusterViewLive checks the /statusz source: after an armed
// run, the most recent rig's snapshot is served and carries data.
func TestCurrentClusterViewLive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	EnableObservatory()
	defer DisableObservatory()
	e, _ := ByID("fig14")
	var out bytes.Buffer
	if err := e.Run(&out); err != nil {
		t.Fatal(err)
	}
	v := CurrentClusterView()
	if v == nil || len(v.Components) == 0 || v.At == 0 {
		t.Fatalf("current cluster view = %+v, want populated", v)
	}
}
