package experiments

import (
	"io"
	"time"

	"scotch/internal/capture"
	"scotch/internal/controller"
	"scotch/internal/device"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Client flow failure fraction vs attack rate (HP Procurve, Pica8, OVS)",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Control path profiling: Packet-In rate = rule install rate = success rate (Pica8)",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "table1",
		Title: "Calibrated switch profiles (testbed equipment stand-ins)",
		Run:   runTable1,
	})
}

// fig3Point runs the paper's §3.2 measurement once: a reactive baseline
// controller on a single switch, a 100 flows/s client, and an attacker at
// the given rate. Returns the client flow failure fraction.
func fig3Point(prof device.Profile, attackRate float64, dur time.Duration, seed int64) float64 {
	eng := sim.New(seed)
	tb := topo.NewTestbed(eng, prof)
	c := controller.New(eng, tb.Net)
	controller.NewReactiveRouter(c)
	c.ConnectAll()
	cap := capture.New(eng)
	cap.Attach(tb.Server)

	atk := workload.StartDDoS(workload.NewEmitter(eng, tb.Attacker, cap), tb.Server.IP, attackRate)
	cli := workload.StartClient(workload.NewEmitter(eng, tb.Client, cap), tb.Server.IP, 100, 1, 0)
	eng.RunUntil(dur)
	atk.Stop()
	cli.Stop()
	eng.RunUntil(dur + time.Second) // drain in-flight packets
	return cap.FailureFraction("client")
}

func runFig3(w io.Writer) error {
	rates := []float64{100, 500, 1000, 1500, 2000, 2500, 3000, 3800}
	profiles := []device.Profile{
		device.ProcurveProfile(),
		device.Pica8Profile(),
		device.OVSProfile(),
	}
	t := newTable(w, "attack_flows_per_s", "hp_procurve", "pica8_pronto", "open_vswitch")
	for _, r := range rates {
		row := []any{int(r)}
		for _, p := range profiles {
			row = append(row, fig3Point(p, r, 8*time.Second, 3))
		}
		t.row(row...)
	}
	t.flush()
	return nil
}

func runFig4(w io.Writer) error {
	rates := []float64{50, 100, 150, 200, 300, 500, 1000}
	t := newTable(w, "offered_new_flows_per_s", "packet_in_per_s", "rule_install_per_s", "success_flows_per_s")
	for _, r := range rates {
		eng := sim.New(5)
		tb := topo.NewTestbed(eng, device.Pica8Profile())
		c := controller.New(eng, tb.Net)
		controller.NewReactiveRouter(c)
		c.ConnectAll()
		cap := capture.New(eng)
		cap.Attach(tb.Server)
		if tr := newRunTracer(); tr != nil {
			c.SetTracer(tr)
			tb.Switch.SetTracer(tr)
			traceDelivery(tr, tb.Server)
		}
		const dur = 10 * time.Second
		cli := workload.StartClient(workload.NewEmitter(eng, tb.Client, cap), tb.Server.IP, r, 1, 0)
		eng.RunUntil(dur)
		cli.Stop()
		eng.RunUntil(dur + time.Second)

		secs := dur.Seconds()
		sent, delivered := cap.Counts("client")
		_ = sent
		t.row(int(r),
			float64(tb.Switch.Stats.PacketInSent)/secs,
			float64(tb.Switch.Stats.RulesInstalled)/secs,
			float64(delivered)/secs)
	}
	t.flush()
	return nil
}

func runTable1(w io.Writer) error {
	t := newTable(w, "profile", "packet_in_per_s", "insert_lossfree_per_s",
		"insert_overload_per_s", "stall_knee_per_s", "dataplane_pps", "tcam")
	for _, name := range []string{"pica8", "procurve", "ovs"} {
		p := device.Profiles()[name]
		t.row(p.Name, p.PacketInRate, p.RuleInsertRate, p.RuleOverloadRate,
			p.StallKnee, p.DataPlanePPS, p.TableCapacity)
	}
	t.flush()
	return nil
}
