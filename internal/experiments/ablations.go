package experiments

import (
	"io"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/scotch"
	"scotch/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ablation-fanout",
		Title: "Ablation: select-group fan-out width (1 vSwitch vs load-balanced mesh)",
		Run:   runAblationFanout,
	})
	register(Experiment{
		ID:    "ablation-elephant-threshold",
		Title: "Ablation: elephant migration threshold sweep",
		Run:   runAblationElephant,
	})
	register(Experiment{
		ID:    "ablation-scheduler",
		Title: "Ablation: install pacing rate R vs insertion failures and data-path stall",
		Run:   runAblationScheduler,
	})
}

// runAblationFanout compares tunneling all offloaded flows to a single
// vSwitch against hashing them across the mesh (paper §5.1's select
// group). With one bucket, the single vSwitch OFA becomes the new
// bottleneck.
func runAblationFanout(w io.Writer) error {
	t := newTable(w, "fanout", "offered_flows_per_s", "delivered_fraction", "max_vswitch_punt_share")
	const offered = 16000.0
	const dur = 5 * time.Second
	for _, fan := range []int{1, 2, 4} {
		cfg := scotch.DefaultConfig()
		cfg.FanOut = fan
		cfg.OverlayInstallRate = 1e6
		r := newRig(rigConfig{seed: 21, cfg: cfg, nClients: 2, nServers: 4, nPrimary: 4, shardable: true})
		var gens []*workload.DDoS
		for i, cl := range r.clients {
			for j := 0; j < 2; j++ {
				srv := r.servers[(2*i+j)%len(r.servers)]
				gens = append(gens, workload.StartDDoS(r.emitter(cl), srv.IP, offered/4))
			}
		}
		r.eng.RunUntil(dur)
		for _, g := range gens {
			g.Stop()
		}
		r.eng.RunUntil(dur + time.Second)
		sent, delivered := r.cap.Counts("attack")
		var total, max uint64
		for _, vs := range r.vs {
			total += vs.Stats.PacketInSent
			if vs.Stats.PacketInSent > max {
				max = vs.Stats.PacketInSent
			}
		}
		share := 0.0
		if total > 0 {
			share = float64(max) / float64(total)
		}
		t.row(fan, offered, float64(delivered)/float64(sent), share)
	}
	t.flush()
	return nil
}

// runAblationElephant sweeps the migration byte threshold and reports how
// many flows migrate and how much elephant traffic stays on the (slower)
// overlay data plane.
func runAblationElephant(w io.Writer) error {
	t := newTable(w, "threshold_kb", "migrated", "elephant_delivery_ratio")
	const dur = 15 * time.Second
	for _, kb := range []int{5, 20, 100, 1 << 20} {
		cfg := scotch.DefaultConfig()
		cfg.ElephantBytes = uint64(kb) << 10
		r := newRig(rigConfig{seed: 22, cfg: cfg, nClients: 2, nServers: 1, nPrimary: 2, shardable: true})
		atk := workload.StartDDoS(r.emitter(r.clients[0]), r.servers[0].IP, 2000)
		em := r.emitter(r.clients[1])
		r.eng.Schedule(time.Second, func() {
			for i := 0; i < 30; i++ {
				em.Start(workload.Flow{Key: netaddr.FlowKey{
					Src: r.clients[1].IP, Dst: r.servers[0].IP, Proto: netaddr.ProtoTCP,
					SrcPort: uint16(2000 + i), DstPort: 80}, Packets: 1, Class: "filler"})
			}
			for i := 0; i < 4; i++ {
				em.Start(workload.Flow{Key: netaddr.FlowKey{
					Src: r.clients[1].IP, Dst: r.servers[0].IP, Proto: netaddr.ProtoTCP,
					SrcPort: uint16(5000 + i), DstPort: 80},
					Packets: 5000, Interval: 2 * time.Millisecond, Size: 1000, Class: "elephant"})
			}
		})
		r.eng.RunUntil(dur)
		atk.Stop()
		r.eng.RunUntil(dur + time.Second)
		label := kb
		t.row(label, r.app.Stats.Migrated, r.cap.DeliveryRatio("elephant"))
	}
	t.flush()
	return nil
}

// runAblationScheduler sweeps Scotch's install pacing R. Too low wastes
// physical capacity; too high drives the switch into the Fig. 9/10
// regimes (insertion failures and data-path stall drops).
func runAblationScheduler(w io.Writer) error {
	t := newTable(w, "install_rate_R", "client_failure", "insert_failures", "stall_drops")
	const dur = 10 * time.Second
	for _, rate := range []float64{100, 500, 1000, 1500, 2500} {
		cfg := scotch.DefaultConfig()
		cfg.InstallRate = rate
		r := newRig(rigConfig{seed: 23, cfg: cfg, nClients: 2, nServers: 1, nPrimary: 2, shardable: true})
		atk := workload.StartDDoS(r.emitter(r.clients[0]), r.servers[0].IP, 2500)
		cli := workload.StartClient(r.emitter(r.clients[1]), r.servers[0].IP, 100, 1, 0)
		r.eng.RunUntil(dur)
		atk.Stop()
		cli.Stop()
		r.eng.RunUntil(dur + time.Second)
		t.row(int(rate), r.cap.FailureFraction("client"),
			r.edge.Stats.InsertQueueDrop, r.edge.Stats.StallDrops)
	}
	t.flush()
	return nil
}
