package experiments

import (
	"fmt"
	"io"
	"time"

	"scotch/internal/cluster"
	"scotch/internal/device"
	"scotch/internal/fault"
	"scotch/internal/openflow"
	"scotch/internal/scotch"
	"scotch/internal/sim"
	"scotch/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "chaos-vswitch",
		Title: "Mesh vSwitch crashes mid-attack: backup promotion bounds client damage (§5.6)",
		Run:   runChaosVSwitch,
	})
	register(Experiment{
		ID:    "chaos-partition",
		Title: "Controller partition and heal: failover detection bound and stale-master fencing (§5, OF 1.3 §6.3)",
		Run:   runChaosPartition,
	})
	register(Experiment{
		ID:    "chaos-churn",
		Title: "Continuous access-link flaps: overlay deploy/withdraw converges (§5.5)",
		Run:   runChaosChurn,
	})
}

// chaosEnv adapts an experiment rig to fault.Environment: the experiment
// registers the named switches, links, and controller replicas its plan
// targets, and events resolve against those maps.
type chaosEnv struct {
	switches map[string]*device.Switch
	links    map[string]*device.Link
	replicas map[string]*cluster.Replica
}

func (e *chaosEnv) ApplyFault(ev fault.Event) error {
	switch ev.Kind {
	case fault.SwitchCrash, fault.SwitchRestart:
		sw := e.switches[ev.Target]
		if sw == nil {
			return fmt.Errorf("chaos: unknown switch %q", ev.Target)
		}
		if ev.Kind == fault.SwitchCrash {
			sw.Fail()
		} else {
			sw.Restart()
		}
	case fault.LinkDown, fault.LinkUp:
		l := e.links[ev.Target]
		if l == nil {
			return fmt.Errorf("chaos: unknown link %q", ev.Target)
		}
		l.SetDown(ev.Kind == fault.LinkDown)
	case fault.ControllerPartition, fault.ControllerHeal:
		rep := e.replicas[ev.Target]
		if rep == nil {
			return fmt.Errorf("chaos: unknown replica %q", ev.Target)
		}
		if ev.Kind == fault.ControllerPartition {
			rep.Partition()
		} else {
			rep.Heal()
		}
	default:
		return fmt.Errorf("chaos: unsupported fault kind %v", ev.Kind)
	}
	return nil
}

// chaosVSwitchPlan kills one primary mesh vSwitch mid-attack (4s into
// the run) and cold-restarts it at 10s. The restart deliberately does
// not rejoin the overlay: the heartbeat layer declared the switch dead
// and the promoted backup keeps the traffic, so the restarted process
// sits idle — operator re-admission is out of scope.
func chaosVSwitchPlan() fault.Plan {
	return fault.CrashRestart("vs0", 4*time.Second, 10*time.Second)
}

// chaosVSwitchResult is one (attack rate, plan) measurement.
type chaosVSwitchResult struct {
	clientFail float64
	atkFail    float64
	swaps      uint64
	injected   uint64
}

// chaosVSwitchPoint runs the fig11 attack/client rig with two primary and
// two backup mesh vSwitches under the given fault plan. Client traffic
// rides a separate ingress port, so per-port differentiation (§5.2) keeps
// it on the physical path; the vSwitch kills land on the attack overlay,
// and §5.6 promotion decides how much attack traffic survives.
func chaosVSwitchPoint(attackRate float64, plan fault.Plan) chaosVSwitchResult {
	const dur = 15 * time.Second
	r := newRig(rigConfig{seed: 41, cfg: scotch.DefaultConfig(),
		nClients: 2, nServers: 1, nPrimary: 2, nBackup: 2})
	env := &chaosEnv{switches: make(map[string]*device.Switch)}
	for _, vs := range r.vs {
		env.switches[vs.Name()] = vs
	}
	fr := fault.NewRunner(r.eng, env, r.c.Tracer())
	fr.Schedule(plan)

	atk := workload.StartDDoS(r.emitter(r.clients[0]), r.servers[0].IP, attackRate)
	cli := workload.StartClient(r.emitter(r.clients[1]), r.servers[0].IP, 20, 1, 0)
	r.eng.RunUntil(dur)
	atk.Stop()
	cli.Stop()
	r.eng.RunUntil(dur + time.Second)
	return chaosVSwitchResult{
		clientFail: r.cap.FailureFraction("client"),
		atkFail:    r.cap.FailureFraction("attack"),
		swaps:      r.app.Stats.FailoverSwaps,
		injected:   fr.Injected(),
	}
}

// runChaosVSwitch compares each attack rate with and without the kill
// plan. The acceptance bound: with ≥1 mesh vSwitch down from 4s onward,
// the chaos client failure fraction stays within 2× of the no-fault
// Scotch curve, because client flows never depended on the dead overlay
// nodes and the promoted backups absorb the attack-side load.
func runChaosVSwitch(w io.Writer) error {
	rates := []float64{1000, 2000, 3000}
	t := newTable(w, "attack_flows_per_s",
		"nofault_client_fail", "chaos_client_fail",
		"nofault_attack_fail", "chaos_attack_fail",
		"failover_swaps", "faults_injected")
	for _, ar := range rates {
		base := chaosVSwitchPoint(ar, fault.Plan{})
		ch := chaosVSwitchPoint(ar, chaosVSwitchPlan())
		t.row(int(ar), base.clientFail, ch.clientFail,
			base.atkFail, ch.atkFail, int(ch.swaps), int(ch.injected))
	}
	t.flush()
	return nil
}

// chaosPartitionResult is what the partition/heal run reports.
type chaosPartitionResult struct {
	failovers      uint64
	detectMs       float64
	handoffMs      float64
	staleFenced    uint64
	clientFailFrac float64
	injected       uint64
}

// chaosPartitionPoint partitions replica 0 away from its switches at
// 5050ms (indistinguishable from the clusterFailoverPoint kill), heals it
// at 6500ms — after the coordinator has failed pod0 over to replica 1 —
// and then has the healed ex-master replay its original mastership claim
// (generation 1). The switches hold the failover generation, so every
// replayed claim must be fenced with OFPRRFC_STALE.
func chaosPartitionPoint(seed int64) chaosPartitionResult {
	const dur = 9 * time.Second
	cutAt := 5050 * time.Millisecond
	healAt := 6500 * time.Millisecond
	r := newClusterRig(clusterRigConfig{
		seed:     seed,
		pods:     2,
		replicas: 2,
		capacity: 800,
		queue:    512,
		scfg:     scotch.DefaultConfig(),
		ccfg:     cluster.DefaultConfig(),
	})
	env := &chaosEnv{replicas: map[string]*cluster.Replica{"replica0": r.replicas[0]}}
	fr := fault.NewRunner(r.eng, env, r.replicas[0].C.Tracer())
	fr.Schedule(fault.PartitionHeal("replica0", cutAt, healAt))

	pod0 := r.pods[0]
	pod0DPIDs := []uint64{pod0.edge.DPID}
	for _, vs := range pod0.vs {
		pod0DPIDs = append(pod0DPIDs, vs.DPID)
	}
	staleBefore := uint64(0)
	for _, dpid := range pod0DPIDs {
		staleBefore += r.net.Switch(dpid).Stats.RoleStale
	}
	// The adversarial probe: once healed, the ex-master tries to take its
	// old shard back with the generation it was granted at startup.
	r.eng.At(7*time.Second, func() {
		for _, dpid := range pod0DPIDs {
			if h := r.replicas[0].C.Switch(dpid); h != nil {
				h.RequestRole(openflow.RoleMaster, 1, nil)
			}
		}
	})

	cli0 := workload.StartClient(workload.NewEmitter(r.eng, pod0.client, r.cap), pod0.server.IP, 50, 8, 50*time.Millisecond)
	cli1 := workload.StartClient(workload.NewEmitter(r.eng, r.pods[1].client, r.cap), r.pods[1].server.IP, 50, 8, 50*time.Millisecond)
	r.eng.RunUntil(dur)
	cli0.Stop()
	cli1.Stop()
	r.eng.RunUntil(dur + time.Second)

	res := chaosPartitionResult{
		failovers:      r.co.Stats.Failovers,
		clientFailFrac: r.cap.FailureFraction("client"),
		injected:       fr.Injected(),
	}
	for _, dpid := range pod0DPIDs {
		res.staleFenced += r.net.Switch(dpid).Stats.RoleStale
	}
	res.staleFenced -= staleBefore
	if r.co.Stats.DetectedAt > 0 {
		res.detectMs = float64(r.co.Stats.DetectedAt-sim.Time(cutAt)) / float64(time.Millisecond)
	}
	if r.co.Stats.HandoffDoneAt > 0 {
		res.handoffMs = float64(r.co.Stats.HandoffDoneAt-sim.Time(cutAt)) / float64(time.Millisecond)
	}
	return res
}

func runChaosPartition(w io.Writer) error {
	res := chaosPartitionPoint(43)
	t := newTable(w, "failovers", "detect_ms", "handoff_ms",
		"stale_claims_fenced", "client_fail_frac", "faults_injected")
	t.row(int(res.failovers), res.detectMs, res.handoffMs,
		int(res.staleFenced), res.clientFailFrac, int(res.injected))
	t.flush()
	return nil
}

// chaosChurnResult is what the link-flap run reports.
type chaosChurnResult struct {
	flaps          int
	activations    uint64
	withdrawals    uint64
	finalActive    bool
	clientFailFrac float64
	injected       uint64
}

// chaosChurnPoint flaps the attacker's access link (≈3s down, ≈2s up,
// ±5% seeded jitter) under a sustained attack. Every down period starves
// the overlay's new-flow rate long enough for §5.5 withdrawal (10 quiet
// 100ms checks after the 1s rate window drains); every up period rebuilds
// the backlog and re-activates the overlay. The steady client stays below
// DeactivateRate on purpose: while the overlay is active every edge miss
// — client flows included — detours through the mesh and counts into the
// withdrawal signal, so a client above that rate would pin the overlay up
// even with the attacker dark.
func chaosChurnPoint(seed int64) chaosChurnResult {
	const dur = 14 * time.Second
	cfg := scotch.DefaultConfig()
	// Let offload rules idle out between flaps so each cycle starts from
	// a clean table instead of accumulating dead state.
	cfg.RuleIdleTimeout = 2 * time.Second
	r := newRig(rigConfig{seed: seed, cfg: cfg, nClients: 2, nServers: 1, nPrimary: 2})
	env := &chaosEnv{links: map[string]*device.Link{
		"link:c0": r.net.HostLink(r.clients[0].IP),
	}}
	fr := fault.NewRunner(r.eng, env, r.c.Tracer())
	plan := fault.Flap(seed, "link:c0", 3*time.Second, 13*time.Second, 3*time.Second, 2*time.Second, 0.05)
	fr.Schedule(plan)
	flaps := 0
	for _, ev := range plan.Events {
		if ev.Kind == fault.LinkDown {
			flaps++
		}
	}

	atk := workload.StartDDoS(r.emitter(r.clients[0]), r.servers[0].IP, 3000)
	cli := workload.StartClient(r.emitter(r.clients[1]), r.servers[0].IP, 20, 1, 0)
	r.eng.RunUntil(dur)
	atk.Stop()
	cli.Stop()
	r.eng.RunUntil(dur + 3*time.Second)

	return chaosChurnResult{
		flaps:          flaps,
		activations:    r.app.Stats.Activations,
		withdrawals:    r.app.Stats.Withdrawals,
		finalActive:    r.app.Active(r.edge.DPID),
		clientFailFrac: r.cap.FailureFraction("client"),
		injected:       fr.Injected(),
	}
}

func runChaosChurn(w io.Writer) error {
	res := chaosChurnPoint(47)
	t := newTable(w, "link_flaps", "activations", "withdrawals",
		"overlay_active_at_end", "client_fail_frac", "faults_injected")
	t.row(res.flaps, int(res.activations), int(res.withdrawals),
		res.finalActive, res.clientFailFrac, int(res.injected))
	t.flush()
	return nil
}
