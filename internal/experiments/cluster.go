package experiments

import (
	"fmt"
	"io"
	"time"

	"scotch/internal/capture"
	"scotch/internal/cluster"
	"scotch/internal/controller"
	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/scotch"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "cluster-scale",
		Title: "Controller cluster: successful-flow rate vs replica count under a flash crowd (beyond paper, §7)",
		Run:   runClusterScale,
	})
	register(Experiment{
		ID:    "cluster-migrate",
		Title: "Controller cluster: load-triggered switch migration during a surge, client flow loss (beyond paper, §7)",
		Run:   runClusterMigrate,
	})
	register(Experiment{
		ID:    "cluster-failover",
		Title: "Controller cluster: replica kill, failure detection and mastership failover time (beyond paper, §7)",
		Run:   runClusterFailover,
	})
}

// clusterPod is one shard of the cluster rig: an edge switch with a
// client and a server, its own two-vSwitch overlay, and the Scotch app
// instance managing them.
type clusterPod struct {
	edge       *device.Switch
	client     *device.Host
	server     *device.Host
	clientPort uint32
	vs         []*device.Switch
	standby    []*device.Switch // attached but not mesh members; pool growth headroom
	app        *scotch.App
	name       string
}

// clusterRig is P independent Scotch pods behind R controller replicas
// coordinated by the cluster subsystem. Each replica connects to every
// switch; mastership over a pod's switches follows the assignment map.
type clusterRig struct {
	eng      *sim.Engine
	net      *topo.Network
	cap      *capture.Capture
	co       *cluster.Coordinator
	replicas []*cluster.Replica
	pods     []*clusterPod
}

type clusterRigConfig struct {
	seed     int64
	pods     int
	replicas int
	capacity float64 // per-replica Packet-In processing rate (0 = infinite)
	queue    int
	scfg     scotch.Config
	ccfg     cluster.Config
	homes    []int // pod -> initial replica index; nil = round robin
	standby  int   // standby vSwitches on pod 0 (elastic growth headroom)
}

func newClusterRig(cc clusterRigConfig) *clusterRig {
	eng := sim.New(cc.seed)
	r := &clusterRig{eng: eng, net: topo.New(eng), cap: capture.New(eng)}
	hostLink := device.LinkConfig{Delay: 50 * time.Microsecond, RateBps: 1e9}
	meshLink := device.LinkConfig{Delay: 20 * time.Microsecond, RateBps: 1e9}

	for p := 0; p < cc.pods; p++ {
		pod := &clusterPod{name: fmt.Sprintf("pod%d", p)}
		pod.edge = r.net.AddSwitch(fmt.Sprintf("edge%d", p), device.Pica8Profile())
		pod.client = r.net.AddHost(fmt.Sprintf("c%d", p), netaddr.MakeIPv4(10, byte(p), 0, 10))
		pod.clientPort = r.net.AttachHost(pod.client, pod.edge, hostLink)
		pod.server = r.net.AddHost(fmt.Sprintf("srv%d", p), netaddr.MakeIPv4(10, byte(p), 1, 10))
		r.net.AttachHost(pod.server, pod.edge, hostLink)
		for j := 0; j < 2; j++ {
			vs := r.net.AddSwitch(fmt.Sprintf("vs%d-%d", p, j), device.OVSProfile())
			r.net.LinkSwitches(pod.edge, vs, meshLink)
			pod.vs = append(pod.vs, vs)
		}
		if p == 0 {
			for j := 0; j < cc.standby; j++ {
				sb := r.net.AddSwitch(fmt.Sprintf("sb%d-%d", p, j), device.OVSProfile())
				r.net.LinkSwitches(pod.edge, sb, meshLink)
				pod.standby = append(pod.standby, sb)
			}
		}
		r.cap.Attach(pod.server)
		r.pods = append(r.pods, pod)
	}

	r.co = cluster.New(eng, cc.ccfg)
	for i := 0; i < cc.replicas; i++ {
		c := controller.New(eng, r.net)
		if cc.capacity > 0 {
			c.SetCapacity(cc.capacity, cc.queue)
		}
		c.ConnectAll()
		r.replicas = append(r.replicas, r.co.AddReplica(c))
	}
	for p, pod := range r.pods {
		homeIdx := p % cc.replicas
		if cc.homes != nil {
			homeIdx = cc.homes[p]
		}
		home := r.replicas[homeIdx]
		pod.app = scotch.New(home.C, cc.scfg)
		for _, vs := range pod.vs {
			pod.app.AddVSwitch(vs.DPID, false)
		}
		pod.app.AssignHost(pod.server.IP, pod.vs[0].DPID, pod.vs[1].DPID)
		pod.app.Protect(pod.edge.DPID, pod.clientPort)
		if err := pod.app.Build(); err != nil {
			panic(err)
		}
		dpids := []uint64{pod.edge.DPID}
		for _, vs := range pod.vs {
			dpids = append(dpids, vs.DPID)
		}
		// Standbys ride in the pod's DPID set so mastership (and any
		// later migration) covers them before the pool grows them in.
		for _, sb := range pod.standby {
			dpids = append(dpids, sb.DPID)
		}
		r.co.AddPod(pod.name, pod.app, home, dpids...)
	}
	r.co.Start()
	if tr := newRunTracer(); tr != nil {
		r.co.Trace = tr
		for _, rep := range r.replicas {
			rep.C.SetTracer(tr)
		}
		for _, pod := range r.pods {
			pod.edge.SetTracer(tr)
			for _, vs := range pod.vs {
				vs.SetTracer(tr)
			}
			traceDelivery(tr, pod.server)
		}
	}
	newClusterRunObservatory(r)
	return r
}

// startCrowd drives a flash-crowd arrival process of single-packet
// spoofed-source flows (each one a brand-new flow to the network, as in
// the paper's §3.2 workload) from the pod's client toward its server.
func (r *clusterRig) startCrowd(p int, fc workload.FlashCrowd, class string) *workload.FlashCrowd {
	pod := r.pods[p]
	em := workload.NewEmitter(r.eng, pod.client, r.cap)
	var n uint32
	return workload.StartFlashCrowd(r.eng, fc, func() {
		n++
		src := netaddr.MakeIPv4(172, byte(16+p), byte(n>>8), byte(n))
		em.Start(workload.Flow{
			Key: netaddr.FlowKey{Src: src, Dst: pod.server.IP, Proto: netaddr.ProtoTCP,
				SrcPort: uint16(1024 + n%50000), DstPort: 80},
			Packets: 1, Size: 64, Class: class,
		})
	})
}

// clusterScalePoint measures one replica count: 4 pods, each ramping to a
// 350 flows/s crowd peak (1400/s aggregate), against replicas of 500
// Packet-Ins/s processing capacity each. Returns offered and delivered
// crowd flows, the per-second successful-flow rate over the crowd span,
// and total punts dropped at replica ingress queues.
func clusterScalePoint(replicas int, seed int64) (offered, delivered int, successRate float64, drops uint64) {
	const dur = 10 * time.Second
	r := newClusterRig(clusterRigConfig{
		seed:     seed,
		pods:     4,
		replicas: replicas,
		capacity: 500,
		queue:    256,
		scfg:     scotch.DefaultConfig(),
		ccfg:     cluster.DefaultConfig(),
	})
	var crowds []*workload.FlashCrowd
	for p := range r.pods {
		crowds = append(crowds, r.startCrowd(p, workload.FlashCrowd{
			Base: 20, Peak: 350,
			RampStart: time.Second, PeakStart: 2 * time.Second,
			PeakEnd: 9 * time.Second, RampEnd: 9500 * time.Millisecond,
		}, "crowd"))
	}
	r.eng.RunUntil(dur)
	for _, c := range crowds {
		c.Stop()
	}
	r.eng.RunUntil(dur + time.Second)

	offered, delivered = r.cap.Counts("crowd")
	successRate = float64(delivered) / dur.Seconds()
	for _, rep := range r.replicas {
		drops += rep.C.Stats.PacketInsDropped
	}
	return offered, delivered, successRate, drops
}

func runClusterScale(w io.Writer) error {
	t := newTable(w, "replicas", "offered_flows", "delivered_flows", "success_flows_per_s", "replica_queue_drops")
	for _, n := range []int{1, 2, 4} {
		offered, delivered, rate, drops := clusterScalePoint(n, 11)
		t.row(n, offered, delivered, rate, drops)
	}
	t.flush()
	return nil
}

// clusterMigrateResult is what the migration-under-surge run reports.
type clusterMigrateResult struct {
	migrations     uint64
	ownerBefore    int
	ownerAfter     int
	handoffMs      float64 // initiation to last barrier drain
	clientFailFrac float64
	clientSent     int
}

// clusterMigratePoint starts both pods on replica 0 with replica 1 as an
// idle spare, runs steady multi-packet client flows on both, and surges
// pod 0 with a crowd. The coordinator's balancer must hand pod 0 to the
// spare mid-surge; client flows (4 packets each) must all survive the
// handoff — packets in flight during the mastership change re-punt to the
// new master and are re-admitted.
func clusterMigratePoint(seed int64) clusterMigrateResult {
	const dur = 8 * time.Second
	ccfg := cluster.DefaultConfig()
	r := newClusterRig(clusterRigConfig{
		seed:     seed,
		pods:     2,
		replicas: 2,
		capacity: 800,
		queue:    512,
		scfg:     scotch.DefaultConfig(),
		ccfg:     ccfg,
		homes:    []int{0, 0},
	})
	res := clusterMigrateResult{ownerBefore: r.co.Owner("pod0"), ownerAfter: -1}
	var migratedAt sim.Time
	r.co.OnMigrate = func(pod string, from, to int, failover bool) {
		if migratedAt == 0 {
			migratedAt = r.eng.Now()
		}
	}

	cli0 := workload.StartClient(workload.NewEmitter(r.eng, r.pods[0].client, r.cap), r.pods[0].server.IP, 60, 4, 10*time.Millisecond)
	cli1 := workload.StartClient(workload.NewEmitter(r.eng, r.pods[1].client, r.cap), r.pods[1].server.IP, 30, 4, 10*time.Millisecond)
	crowd := r.startCrowd(0, workload.FlashCrowd{
		Base: 0, Peak: 300,
		RampStart: 2 * time.Second, PeakStart: 2500 * time.Millisecond,
		PeakEnd: 6 * time.Second, RampEnd: 6500 * time.Millisecond,
	}, "crowd")
	r.eng.RunUntil(dur)
	cli0.Stop()
	cli1.Stop()
	crowd.Stop()
	r.eng.RunUntil(dur + time.Second)

	res.migrations = r.co.Stats.Migrations
	res.ownerAfter = r.co.Owner("pod0")
	if migratedAt > 0 && r.co.Stats.HandoffDoneAt >= migratedAt {
		res.handoffMs = float64(r.co.Stats.HandoffDoneAt-migratedAt) / float64(time.Millisecond)
	}
	res.clientFailFrac = r.cap.FailureFraction("client")
	res.clientSent, _ = r.cap.Counts("client")
	return res
}

func runClusterMigrate(w io.Writer) error {
	res := clusterMigratePoint(13)
	t := newTable(w, "migrations", "owner_before", "owner_after", "handoff_ms", "client_flows", "client_fail_frac")
	t.row(int(res.migrations), res.ownerBefore, res.ownerAfter, res.handoffMs, res.clientSent, res.clientFailFrac)
	t.flush()
	return nil
}

// clusterFailoverResult is what the replica-kill run reports.
type clusterFailoverResult struct {
	detectMs       float64 // kill to heartbeat-based death declaration
	handoffMs      float64 // kill to the last role-claim barrier draining
	failovers      uint64
	clientFailFrac float64
}

// clusterFailoverPoint runs two pods split across two replicas under
// steady client load, kills replica 0 mid-run, and measures how long the
// coordinator takes to detect the death and re-master the orphaned shard
// on the survivor. Client flows are long enough (8 packets over 350ms) to
// straddle the outage window, so most survive the failover.
func clusterFailoverPoint(seed int64) clusterFailoverResult {
	const dur = 8 * time.Second
	killAt := 5050 * time.Millisecond
	ccfg := cluster.DefaultConfig()
	r := newClusterRig(clusterRigConfig{
		seed:     seed,
		pods:     2,
		replicas: 2,
		capacity: 800,
		queue:    512,
		scfg:     scotch.DefaultConfig(),
		ccfg:     ccfg,
	})
	cli0 := workload.StartClient(workload.NewEmitter(r.eng, r.pods[0].client, r.cap), r.pods[0].server.IP, 50, 8, 50*time.Millisecond)
	cli1 := workload.StartClient(workload.NewEmitter(r.eng, r.pods[1].client, r.cap), r.pods[1].server.IP, 50, 8, 50*time.Millisecond)
	r.eng.Schedule(killAt, func() { r.replicas[0].Kill() })
	r.eng.RunUntil(dur)
	cli0.Stop()
	cli1.Stop()
	r.eng.RunUntil(dur + time.Second)

	res := clusterFailoverResult{
		failovers:      r.co.Stats.Failovers,
		clientFailFrac: r.cap.FailureFraction("client"),
	}
	if r.co.Stats.DetectedAt > 0 {
		res.detectMs = float64(r.co.Stats.DetectedAt-sim.Time(killAt)) / float64(time.Millisecond)
	}
	if r.co.Stats.HandoffDoneAt > 0 {
		res.handoffMs = float64(r.co.Stats.HandoffDoneAt-sim.Time(killAt)) / float64(time.Millisecond)
	}
	return res
}

func runClusterFailover(w io.Writer) error {
	res := clusterFailoverPoint(17)
	t := newTable(w, "failovers", "detect_ms", "handoff_ms", "client_fail_frac")
	t.row(int(res.failovers), res.detectMs, res.handoffMs, res.clientFailFrac)
	t.flush()
	return nil
}
