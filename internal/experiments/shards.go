package experiments

import "sync"

// shardState is the process-wide sharding knob, set from the -shards CLI
// flag. Like the tracing and observatory toggles it applies to every
// experiment run until changed; the zero value (0 workers) selects the
// plain serial engine.
var shardState struct {
	sync.Mutex
	workers int
}

// SetShards arms intra-run parallelism: experiments whose rig is marked
// shardable build their world on a partitioned sim.Sharded engine with n
// worker goroutines instead of a plain serial engine. n <= 0 disarms.
//
// Sharding never changes output. The rig places every RNG consumer and
// every piece of state the experiment driver touches mid-run on lane 0
// (which holds the raw seed), so a sharded run is byte-identical to the
// serial run — the shard determinism suite pins this for the fast set at
// several worker counts. Experiments that mutate the topology mid-run or
// sample cross-partition state (elastic scaling, chaos, devolution,
// armed observatory or tracer) fall back to the serial engine.
func SetShards(n int) {
	shardState.Lock()
	defer shardState.Unlock()
	if n < 0 {
		n = 0
	}
	shardState.workers = n
}

// Shards returns the currently armed worker count (0 = serial).
func Shards() int {
	shardState.Lock()
	defer shardState.Unlock()
	return shardState.workers
}

// observatoryArmed reports whether per-run observatories are enabled; an
// observatory samples switch state across partitions mid-run, so armed
// runs stay on the serial engine.
func observatoryArmed() bool {
	obsState.Lock()
	defer obsState.Unlock()
	return obsState.enabled
}

// tracingArmed reports whether per-run flow tracing is enabled; tracers
// append to one shared trace from every device, so armed runs stay on
// the serial engine.
func tracingArmed() bool {
	traceState.Lock()
	defer traceState.Unlock()
	return traceState.enabled
}
