package experiments

import (
	"fmt"
	"io"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/obs"
	"scotch/internal/scotch"
	"scotch/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "obs-slo",
		Title: "Observatory SLO burn: a flash crowd drives a tenant's error budget through burning and back",
		Run:   runObsSLO,
	})
}

// obsSLOResult is one observatory run over the flash-crowd rig: the
// digest plus the two SLO reports the table and the acceptance test
// both read.
type obsSLOResult struct {
	digest *obs.Digest
	base   *obs.SLODigest
	crowd  *obs.SLODigest
}

// obsSLOPoint runs the burn-rate demonstration: a steady 20 flows/s
// "base" tenant shares the protected edge switch with a "crowd" tenant
// whose flash crowd ramps to 6000 new flows/s — well past the overlay
// install pacing — so crowd flow setups queue behind the paced
// scheduler and the crowd p99 SLO burns through its budget for the
// whole event. The base tenant tells the paper's story in miniature:
// it dips into burning during the activation lag (the windowed rate
// estimate must cross ActivateRate before the overlay engages, and
// until then crowd installs share the physical scheduler), then
// recovers quickly once Scotch diverts the crowd, long before the
// crowd itself recovers. After the ramp subsides the windows empty and
// both verdicts end healthy: healthy -> burning -> healthy.
func obsSLOPoint(seed int64) obsSLOResult {
	const dur = 20 * time.Second
	r := newRig(rigConfig{seed: seed, cfg: scotch.DefaultConfig(),
		nClients: 2, nServers: 1, nPrimary: 2, nBackup: 1})

	// The experiment carries its own always-on observatory with the SLOs
	// under test; the process-wide arming (-health) layers a second,
	// independent one over the same rig when requested.
	lt := workload.NewLatencyTracker(nil)
	lt.AttachCapture(r.cap)
	o := obs.New(r.eng, obs.Config{
		SLOs: []obs.SLO{
			{Name: "base-p99", Tenant: "base", Target: 50 * time.Millisecond},
			{Name: "crowd-p99", Tenant: "crowd", Target: 50 * time.Millisecond},
		},
	})
	o.WatchApp(r.app)
	o.WatchController("controller", r.c)
	o.WatchSwitch(r.edge)
	for _, vs := range r.vs {
		o.WatchSwitch(vs)
	}
	o.WatchLatency(lt)
	o.Start()

	base := workload.StartClient(r.emitter(r.clients[0]), r.servers[0].IP, 20, 1, 0)
	base.Class = "base"

	crowdEm := r.emitter(r.clients[1])
	var n uint64
	fc := workload.StartFlashCrowd(r.eng, workload.FlashCrowd{
		Base: 0, Peak: 6000,
		RampStart: 2 * time.Second, PeakStart: 6 * time.Second,
		PeakEnd: 10 * time.Second, RampEnd: 12 * time.Second,
	}, func() {
		n++
		// Distinct sources: every arrival is a fresh flow setup.
		src := netaddr.MakeIPv4(172, byte(16+(n>>16)&0x0f), byte(n>>8), byte(n))
		crowdEm.Start(workload.Flow{
			Key: netaddr.FlowKey{Src: src, Dst: r.servers[0].IP,
				Proto: netaddr.ProtoTCP, SrcPort: uint16(1024 + n%50000), DstPort: 80},
			Packets: 1, Size: 64, Class: "crowd",
		})
	})

	r.eng.RunUntil(dur)
	fc.Stop()
	base.Stop()
	// Let the install backlog drain and the burn windows empty so the
	// crowd SLO's recovery transition lands before the digest.
	r.eng.RunUntil(dur + 4*time.Second)
	o.Stop()

	d := o.Digest("obs-slo")
	return obsSLOResult{digest: d, base: d.SLO("base-p99"), crowd: d.SLO("crowd-p99")}
}

func runObsSLO(w io.Writer) error {
	res := obsSLOPoint(47)
	fmt.Fprintln(w, "slo        tenant  verdict_path               peak_burn_short  peak_burn_long  peak_window_p99(s)")
	for _, s := range []*obs.SLODigest{res.base, res.crowd} {
		fmt.Fprintf(w, "%-10s %-7s %-26s %-16.1f %-15.1f %.4f\n",
			s.Name, s.Tenant, s.VerdictPath, s.PeakBurnShort, s.PeakBurnLong,
			s.PeakWindowQuantileSeconds)
	}
	for _, tr := range res.crowd.Transitions {
		fmt.Fprintf(w, "crowd transition t=%-6v %s -> %s\n", tr.At, tr.From, tr.To)
	}
	return res.digest.WriteText(w)
}
