package experiments

import (
	"io"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/scotch"
	"scotch/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Ingress-port differentiation under attack (reconstructed from §6 roadmap)",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Overlay control-plane capacity vs vSwitch pool size (reconstructed)",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Large-flow migration moves bytes back to the physical network (reconstructed)",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Extra relay delay of the overlay path (reconstructed)",
		Run:   runFig14,
	})
}

// runFig11 compares the client flow failure fraction with and without
// Scotch while an attacker on a different ingress port sweeps its rate.
// With Scotch, per-port queues isolate the attack (paper §5.2).
func runFig11(w io.Writer) error {
	rates := []float64{500, 1000, 2000, 3000, 3800}
	t := newTable(w, "attack_flows_per_s", "baseline_client_failure", "scotch_client_failure", "scotch_attack_failure")
	const dur = 15 * time.Second
	for _, ar := range rates {
		run := func(noOverlay bool) (float64, float64) {
			r := newRig(rigConfig{seed: 11, cfg: scotch.DefaultConfig(), shardable: true,
				nClients: 2, nServers: 1, nPrimary: 2, noOverlay: noOverlay})
			atk := workload.StartDDoS(r.emitter(r.clients[0]), r.servers[0].IP, ar)
			cli := workload.StartClient(r.emitter(r.clients[1]), r.servers[0].IP, 100, 1, 0)
			r.eng.RunUntil(dur)
			atk.Stop()
			cli.Stop()
			r.eng.RunUntil(dur + time.Second)
			return r.cap.FailureFraction("client"), r.cap.FailureFraction("attack")
		}
		base, _ := run(true)
		sc, scAtk := run(false)
		t.row(int(ar), base, sc, scAtk)
	}
	t.flush()
	return nil
}

// runFig12 grows the vSwitch pool under a fixed control-plane overload and
// reports the aggregate rate of successfully handled new flows: Scotch's
// elastic capacity scaling.
func runFig12(w io.Writer) error {
	t := newTable(w, "vswitches", "offered_flows_per_s", "handled_flows_per_s", "delivered_flows_per_s")
	const offered = 25000.0
	const dur = 5 * time.Second
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		cfg := scotch.DefaultConfig()
		// Expose the vSwitch OFA limit rather than the controller's own
		// per-switch pacing.
		cfg.OverlayInstallRate = 1e6
		cfg.FanOut = n
		r := newRig(rigConfig{seed: 12, cfg: cfg, nClients: 2, nServers: 8, nPrimary: n, shardable: true})
		// Two attackers spread over the servers to exercise every
		// delivery vSwitch.
		var gens []*workload.DDoS
		for i, cl := range r.clients {
			for j := 0; j < 4; j++ {
				srv := r.servers[(i*4+j)%len(r.servers)]
				gens = append(gens, workload.StartDDoS(r.emitter(cl), srv.IP, offered/8))
			}
		}
		r.eng.RunUntil(dur)
		for _, g := range gens {
			g.Stop()
		}
		r.eng.RunUntil(dur + time.Second)
		sent, delivered := r.cap.Counts("attack")
		handled := r.app.Stats.OverlayRouted + r.app.Stats.PhysicalAdmitted
		t.row(n, float64(sent)/dur.Seconds(), float64(handled)/dur.Seconds(),
			float64(delivered)/dur.Seconds())
	}
	t.flush()
	return nil
}

// runFig13 measures where an elephant's bytes land with and without
// migration: with the migrator on, the bulk of the bytes return to the
// physical network shortly after detection.
func runFig13(w io.Writer) error {
	t := newTable(w, "migration", "elephant_bytes_overlay", "elephant_bytes_physical",
		"physical_fraction", "elephants_migrated")
	const dur = 20 * time.Second
	for _, enabled := range []bool{false, true} {
		cfg := scotch.DefaultConfig()
		if !enabled {
			cfg.ElephantBytes = 1 << 40
		}
		r := newRig(rigConfig{seed: 13, cfg: cfg, nClients: 2, nServers: 1, nPrimary: 2, shardable: true})
		// Attack keeps the control path saturated so new flows take the
		// overlay.
		atk := workload.StartDDoS(r.emitter(r.clients[0]), r.servers[0].IP, 2000)
		// Five elephants from the client port; the port backlog pushes
		// them onto the overlay.
		em := r.emitter(r.clients[1])
		r.eng.Schedule(time.Second, func() {
			for i := 0; i < 40; i++ {
				em.Start(workload.Flow{Key: netaddr.FlowKey{
					Src: r.clients[1].IP, Dst: r.servers[0].IP, Proto: netaddr.ProtoTCP,
					SrcPort: uint16(2000 + i), DstPort: 80},
					Packets: 1, Class: "filler"})
			}
			for i := 0; i < 5; i++ {
				em.Start(workload.Flow{Key: netaddr.FlowKey{
					Src: r.clients[1].IP, Dst: r.servers[0].IP, Proto: netaddr.ProtoTCP,
					SrcPort: uint16(5000 + i), DstPort: 80},
					Packets: 6000, Interval: 2 * time.Millisecond, Size: 1000, Class: "elephant"})
			}
		})
		// Sample each elephant's delivered bytes every 100ms and attribute
		// the delta to the path the flow was on at that instant.
		var ovBytes, physBytes uint64
		lastBytes := map[netaddr.FlowKey]uint64{}
		sampler := r.eng.Every(100*time.Millisecond, func() {
			for _, f := range r.cap.Flows("elephant") {
				delta := f.BytesRecv - lastBytes[f.Key]
				lastBytes[f.Key] = f.BytesRecv
				fi := r.c.FlowDB.Lookup(f.Key)
				if fi != nil && fi.Migrated {
					physBytes += delta
				} else {
					ovBytes += delta
				}
			}
		})
		r.eng.RunUntil(dur)
		atk.Stop()
		r.eng.RunUntil(dur + time.Second)
		sampler.Stop()

		frac := 0.0
		if total := ovBytes + physBytes; total > 0 {
			frac = float64(physBytes) / float64(total)
		}
		mode := "off"
		if enabled {
			mode = "on"
		}
		t.row(mode, ovBytes, physBytes, frac, r.app.Stats.Migrated)
	}
	t.flush()
	return nil
}

// runFig14 compares flow-setup latency and steady-state per-packet delay
// on the physical path versus the three-tunnel overlay path.
func runFig14(w io.Writer) error {
	t := newTable(w, "path", "first_packet_ms_p50", "steady_delay_ms_p50", "steady_delay_ms_p99")
	const dur = 10 * time.Second

	run := func(forceOverlay bool) (first, p50, p99 float64) {
		cfg := scotch.DefaultConfig()
		if forceOverlay {
			// Route everything over the overlay: zero overlay threshold
			// and no migration.
			cfg.OverlayThreshold = 0
			cfg.ElephantBytes = 1 << 40
			cfg.ActivateRate = 0.1
			cfg.DeactivateRate = 0
		}
		r := newRig(rigConfig{seed: 14, cfg: cfg, nClients: 1, nServers: 1, nPrimary: 2, shardable: true})
		em := r.emitter(r.clients[0])
		// A warm-up flow triggers overlay activation when forced.
		if forceOverlay {
			workload.StartClient(em, r.servers[0].IP, 50, 1, 0)
			r.eng.RunUntil(2 * time.Second)
		}
		em.Start(workload.Flow{Key: netaddr.FlowKey{
			Src: r.clients[0].IP, Dst: r.servers[0].IP, Proto: netaddr.ProtoTCP,
			SrcPort: 7000, DstPort: 80},
			Packets: 2000, Interval: 2 * time.Millisecond, Class: "probe"})
		r.eng.RunUntil(r.eng.Now() + dur)
		fp := r.cap.FirstPacketLatency("probe").Quantile(0.5) * 1000
		lat := r.cap.PacketLatency("probe")
		return fp, lat.Quantile(0.5) * 1000, lat.Quantile(0.99) * 1000
	}

	f, p50, p99 := run(false)
	t.row("physical", f, p50, p99)
	f, p50, p99 = run(true)
	t.row("overlay", f, p50, p99)
	t.flush()
	return nil
}
