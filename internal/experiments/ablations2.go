package experiments

import (
	"io"
	"time"

	"scotch/internal/scotch"
	"scotch/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ablation-fifo-scheduler",
		Title: "Ablation: priority classes + per-port RR vs a single FIFO install queue",
		Run:   runAblationFIFO,
	})
	register(Experiment{
		ID:    "ablation-withdrawal",
		Title: "Ablation: automatic withdrawal vs leaving the overlay engaged forever",
		Run:   runAblationWithdrawal,
	})
}

// runAblationFIFO shows why the paper's scheduler has per-port round robin
// and priority classes: with a single FIFO, the attacker's request flood
// sits in front of the client's requests, so the client's flow setup
// starves even though Scotch is otherwise active.
func runAblationFIFO(w io.Writer) error {
	t := newTable(w, "scheduler", "client_failure", "client_first_packet_ms_p50", "client_first_packet_ms_p99")
	const dur = 15 * time.Second
	for _, fifo := range []bool{false, true} {
		cfg := scotch.DefaultConfig()
		cfg.FIFOScheduler = fifo
		r := newRig(rigConfig{seed: 24, cfg: cfg, nClients: 2, nServers: 1, nPrimary: 2, shardable: true})
		atk := workload.StartDDoS(r.emitter(r.clients[0]), r.servers[0].IP, 2500)
		cli := workload.StartClient(r.emitter(r.clients[1]), r.servers[0].IP, 100, 1, 0)
		r.eng.RunUntil(dur)
		atk.Stop()
		cli.Stop()
		r.eng.RunUntil(dur + time.Second)
		name := "priority+rr"
		if fifo {
			name = "fifo"
		}
		lat := r.cap.FirstPacketLatency("client")
		t.row(name, r.cap.FailureFraction("client"),
			lat.Quantile(0.5)*1000, lat.Quantile(0.99)*1000)
	}
	t.flush()
	return nil
}

// runAblationWithdrawal compares the paper's automatic withdrawal (§5.5)
// against leaving the overlay engaged after the surge ends: without
// withdrawal, new flows keep detouring through the vSwitch mesh long
// after the hardware control path has recovered, paying the overlay's
// relay delay for nothing.
func runAblationWithdrawal(w io.Writer) error {
	t := newTable(w, "withdrawal", "active_after_quiet", "postsurge_edge_punts",
		"postsurge_vswitch_punts", "postsurge_first_packet_ms_p50")
	const surgeEnd = 5 * time.Second
	const quietEnd = 15 * time.Second
	const measureEnd = 25 * time.Second
	for _, enabled := range []bool{true, false} {
		cfg := scotch.DefaultConfig()
		cfg.DeactivateChecks = 5
		if !enabled {
			cfg.DeactivateRate = 0 // rate never falls below zero: no withdrawal
		}
		r := newRig(rigConfig{seed: 25, cfg: cfg, nClients: 2, nServers: 1, nPrimary: 2, shardable: true})
		atk := workload.StartDDoS(r.emitter(r.clients[0]), r.servers[0].IP, 2500)
		r.eng.Schedule(surgeEnd, atk.Stop)
		r.eng.RunUntil(quietEnd)

		// Post-surge workload: a modest client that the hardware path can
		// serve reactively. With withdrawal the punts return to the edge
		// OFA; without it every new flow still detours through the mesh
		// (its first packet is punted by a vSwitch) and the offload rules
		// and tunnels stay occupied indefinitely.
		edgeBefore := r.edge.Stats.PacketInSent
		var vsBefore uint64
		for _, vs := range r.vs {
			vsBefore += vs.Stats.PacketInSent
		}
		cli := workload.StartClient(r.emitter(r.clients[1]), r.servers[0].IP, 50, 1, 0)
		cli.Class = "postsurge"
		r.eng.RunUntil(measureEnd)
		cli.Stop()
		r.eng.RunUntil(measureEnd + time.Second)

		name := "on"
		if !enabled {
			name = "off"
		}
		var vsAfter uint64
		for _, vs := range r.vs {
			vsAfter += vs.Stats.PacketInSent
		}
		lat := r.cap.FirstPacketLatency("postsurge")
		t.row(name, r.app.Active(r.edge.DPID),
			r.edge.Stats.PacketInSent-edgeBefore,
			vsAfter-vsBefore,
			lat.Quantile(0.5)*1000)
	}
	t.flush()
	return nil
}
