package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp, expressed as a duration since the start of
// the simulation.
type Time = time.Duration

// eventNode is the heap-resident record for a scheduled callback. Nodes are
// recycled through the engine's free list once they fire, so macro
// workloads (millions of Schedule calls) run allocation-free in steady
// state. The seq field doubles as a generation counter: it changes every
// time the node is reused, which lets stale Event handles detect that
// "their" event is gone.
type eventNode struct {
	at  Time
	seq uint64
	fn  func()
	// fn2/a1/a2 are the argument-carrying form used by DeferCall: a
	// static function plus two operands, so packet-delivery events on the
	// hottest paths cost no closure allocation. Exactly one of fn and fn2
	// is set.
	fn2    func(a1, a2 any)
	a1, a2 any
	// fnB/id/b are the wire-delivery form used by DeferBytes: the byte
	// buffer and small integer ride in the node directly (a1 carries the
	// receiver), so control-channel deliveries cost no closure and no
	// interface-boxing of the slice header. At most one of fn, fn2, fnB
	// is set.
	fnB      func(obj any, id int, b []byte)
	id       int
	b        []byte
	index    int // heap index, -1 when not queued
	canceled bool
}

// Event is a handle on a scheduled callback, returned by Schedule/At/Every.
// It is a small value (copy freely). Events are ordered by time, then by
// scheduling sequence number so that events scheduled earlier for the same
// instant run first.
//
// Handles stay safe after the event fires: the underlying node may be
// recycled for a later event, and a stale Cancel or Canceled call on the
// old handle is a no-op (the generation check prevents it from touching
// the node's new occupant).
type Event struct {
	n   *eventNode
	seq uint64
	at  Time
}

// Cancel prevents the event's callback from running. Canceling an event
// that already fired (or was already canceled) is a no-op.
func (ev Event) Cancel() {
	if ev.n != nil && ev.n.seq == ev.seq {
		ev.n.canceled = true
	}
}

// Canceled reports whether Cancel was called on the event and its node has
// not yet been recycled. A handle whose event fired normally reports
// false; once a canceled event's scheduled time passes and the engine
// reclaims its node (bumping the node's generation), the stale handle also
// reports false — the generation check keeps it from ever observing the
// node's next occupant.
func (ev Event) Canceled() bool {
	return ev.n != nil && ev.n.seq == ev.seq && ev.n.canceled
}

// At returns the virtual time the event was scheduled for.
func (ev Event) At() Time { return ev.at }

type eventHeap []*eventNode

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*eventNode)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// New.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	free    []*eventNode // recycled nodes (never holds canceled nodes)
	rng     *rand.Rand
	stopped bool
	fired   uint64
}

// New returns an Engine whose random source is seeded with seed, so that
// simulations are reproducible.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's seeded random source. All model randomness must
// come from here to keep runs reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of queued (possibly canceled) events.
func (e *Engine) Pending() int { return len(e.events) }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule runs fn after delay d of virtual time. A negative delay is
// treated as zero. It returns the Event so the caller may cancel it.
func (e *Engine) Schedule(d time.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past panics:
// it is always a model bug.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v, before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	e.seq++
	ev := e.takeNode()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	heap.Push(&e.events, ev)
	return Event{n: ev, seq: e.seq, at: t}
}

// at2 is At for the argument-carrying event form; it supports no cancel
// handle, which delivery events never need.
func (e *Engine) at2(t Time, fn func(a1, a2 any), a1, a2 any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v, before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	e.seq++
	ev := e.takeNode()
	ev.at = t
	ev.seq = e.seq
	ev.fn2 = fn
	ev.a1, ev.a2 = a1, a2
	heap.Push(&e.events, ev)
}

// atB is At for the wire-delivery event form (DeferBytes); like at2 it
// supports no cancel handle.
func (e *Engine) atB(t Time, fn func(obj any, id int, b []byte), obj any, id int, b []byte) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v, before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	e.seq++
	ev := e.takeNode()
	ev.at = t
	ev.seq = e.seq
	ev.fnB = fn
	ev.a1 = obj
	ev.id = id
	ev.b = b
	heap.Push(&e.events, ev)
}

// takeNode pops a recycled node or allocates a fresh one; the caller sets
// at/seq and exactly one of fn, fn2, fnB.
func (e *Engine) takeNode() *eventNode {
	var ev *eventNode
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &eventNode{}
	}
	ev.index = -1
	ev.canceled = false
	return ev
}

// release returns a fired node to the free list. Canceled nodes take the
// reclaim path instead: their generation must be bumped first so stale
// handles cannot cancel the node's next occupant.
func (e *Engine) release(ev *eventNode) {
	if ev.canceled {
		return
	}
	ev.fn = nil
	ev.fn2 = nil
	ev.a1, ev.a2 = nil, nil
	ev.fnB = nil
	ev.b = nil
	e.free = append(e.free, ev)
}

// reclaim recycles a canceled node as its (never-run) event is popped.
// Bumping the generation invalidates every outstanding handle: a stale
// Cancel becomes a no-op and a stale Canceled reads false, so the node is
// safe to hand to the next At call. Without this, cancel-heavy patterns
// (elephant sweep timers, Ticker.Stop) would allocate a fresh node per
// reschedule because canceled nodes never re-entered the free list.
func (e *Engine) reclaim(ev *eventNode) {
	ev.seq++ // handles hold the pre-bump value; never handed out again
	ev.canceled = false
	ev.fn = nil
	ev.fn2 = nil
	ev.a1, ev.a2 = nil, nil
	ev.fnB = nil
	ev.b = nil
	e.free = append(e.free, ev)
}

// Stop makes Run and RunUntil return after the currently executing event.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(1<<62 - 1)
}

// RunUntil executes events with timestamps <= end, then advances the clock
// to end (if the queue drained earlier). It returns the number of events
// fired during this call.
func (e *Engine) RunUntil(end Time) uint64 {
	e.stopped = false
	start := e.fired
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > end {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		if next.canceled {
			e.reclaim(next)
			continue
		}
		fn, fn2, a1, a2 := next.fn, next.fn2, next.a1, next.a2
		fnB, id, b := next.fnB, next.id, next.b
		e.fired++
		e.release(next)
		switch {
		case fn != nil:
			fn()
		case fn2 != nil:
			fn2(a1, a2)
		default:
			fnB(a1, id, b)
		}
	}
	if !e.stopped && e.now < end && end < 1<<62-1 {
		e.now = end
	}
	return e.fired - start
}

// Ticker repeatedly schedules a callback at a fixed interval until stopped.
type Ticker struct {
	eng      *Engine
	interval time.Duration
	fn       func()
	ev       Event
	rearm    func() // allocated once; reused for every tick
	stopped  bool
}

// Every runs fn every interval of virtual time, first firing one interval
// from now. It panics if interval is not positive.
func (e *Engine) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: non-positive ticker interval")
	}
	t := &Ticker{eng: e, interval: interval, fn: fn}
	t.rearm = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.eng.Schedule(t.interval, t.rearm)
}

// Stop cancels future ticks. It is safe to call multiple times and from
// within the tick callback.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}
