package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestEventOrderInvariant schedules a random workload (including nested
// and canceled events) and asserts the fundamental DES invariant: callback
// timestamps are non-decreasing and every non-canceled event fires exactly
// once.
func TestEventOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		e := New(int64(trial))
		var last Time = -1
		fired := map[int]int{}
		canceled := map[int]bool{}
		id := 0

		var schedule func(depth int)
		schedule = func(depth int) {
			n := 1 + rng.Intn(10)
			for i := 0; i < n; i++ {
				myID := id
				id++
				d := time.Duration(rng.Intn(1000)) * time.Millisecond
				ev := e.Schedule(d, func() {
					if e.Now() < last {
						t.Fatalf("time went backwards: %v after %v", e.Now(), last)
					}
					last = e.Now()
					fired[myID]++
					if depth < 3 && rng.Intn(4) == 0 {
						schedule(depth + 1)
					}
				})
				if rng.Intn(5) == 0 {
					ev.Cancel()
					canceled[myID] = true
				}
			}
		}
		schedule(0)
		e.RunUntil(time.Hour)

		for eid, n := range fired {
			if n != 1 {
				t.Fatalf("event %d fired %d times", eid, n)
			}
			if canceled[eid] {
				t.Fatalf("canceled event %d fired", eid)
			}
		}
		for eid := range canceled {
			if fired[eid] != 0 {
				t.Fatalf("canceled event %d fired", eid)
			}
		}
	}
}

// TestServerConservation: every submitted item is exactly served or
// dropped, across random rates and queue sizes.
func TestServerConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		e := New(int64(trial))
		served := 0
		s := NewServer(e, float64(1+rng.Intn(500)), rng.Intn(20), func(any) { served++ })
		dropped := 0
		s.OnDrop(func(any) { dropped++ })
		submitted := 1 + rng.Intn(400)
		for i := 0; i < submitted; i++ {
			e.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, func() {
				s.Submit(struct{}{})
			})
		}
		e.RunUntil(time.Hour)
		if served+dropped != submitted {
			t.Fatalf("conservation violated: %d served + %d dropped != %d submitted",
				served, dropped, submitted)
		}
		st := s.Stats()
		if st.Served != uint64(served) || st.Dropped != uint64(dropped) || st.Submitted != uint64(submitted) {
			t.Fatalf("stats mismatch: %+v", st)
		}
	}
}

// TestTokenBucketNeverNegative: the bucket can never grant more tokens
// than rate*time+burst over any horizon.
func TestTokenBucketNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		rate := 1 + rng.Float64()*1000
		burst := 1 + rng.Float64()*50
		tb := NewTokenBucket(rate, burst)
		granted := 0.0
		now := Time(0)
		for step := 0; step < 200; step++ {
			now += time.Duration(rng.Intn(50)) * time.Millisecond
			n := rng.Float64() * 5
			if tb.Take(now, n) {
				granted += n
			}
		}
		budget := rate*now.Seconds() + burst
		if granted > budget+1e-6 {
			t.Fatalf("granted %.3f tokens, budget %.3f", granted, budget)
		}
	}
}
