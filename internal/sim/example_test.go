package sim_test

import (
	"fmt"
	"time"

	"scotch/internal/sim"
)

// A minimal simulation: two events and a rate-limited server.
func Example() {
	eng := sim.New(1)

	eng.Schedule(10*time.Millisecond, func() {
		fmt.Println("first event at", eng.Now())
	})

	srv := sim.NewServer(eng, 100, 10, func(v any) {
		fmt.Printf("served %v at %v\n", v, eng.Now())
	})
	eng.Schedule(20*time.Millisecond, func() { srv.Submit("job") })

	eng.RunUntil(time.Second)
	// Output:
	// first event at 10ms
	// served job at 30ms
}

// Tickers fire repeatedly on the virtual clock until stopped.
func ExampleEngine_Every() {
	eng := sim.New(1)
	n := 0
	var tk *sim.Ticker
	tk = eng.Every(5*time.Millisecond, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	eng.RunUntil(time.Second)
	fmt.Println(n, "ticks, clock at", eng.Now())
	// Output: 3 ticks, clock at 1s
}
