package sim

import (
	"math"
	"testing"
	"time"
)

// drainQueued fills the server's queue to depth items and returns the wall
// time spent serving them all.
func drainQueued(depth int) time.Duration {
	e := New(1)
	s := NewServer[int](e, 1e6, depth+1, func(int) {})
	for i := 0; i <= depth; i++ {
		s.Submit(i)
	}
	start := time.Now()
	e.Run()
	return time.Since(start)
}

// TestServerDeepQueueFlatCost pins the ring-buffer dequeue: per-item cost
// at queue depth 10^4 must be flat, not linear in depth. The pre-fix
// copy-shift dequeue (an O(n) memmove per served item) made the deep run
// ~40x more expensive per item than the shallow one; the ring buffer holds
// the ratio near 1, and the bound of 8 leaves ample room for timer noise.
func TestServerDeepQueueFlatCost(t *testing.T) {
	const shallow, deep = 500, 10000
	perItem := func(depth int) float64 {
		best := math.Inf(1)
		for i := 0; i < 3; i++ { // best-of-3 to shrug off scheduler noise
			if d := float64(drainQueued(depth)) / float64(depth); d < best {
				best = d
			}
		}
		return best
	}
	a, b := perItem(shallow), perItem(deep)
	if b > 8*a {
		t.Fatalf("per-item serve cost grew with queue depth: %.0f ns at depth %d vs %.0f ns at depth %d (O(n) dequeue?)",
			b, deep, a, shallow)
	}
}

// BenchmarkServerDeepQueue serves items through a pre-filled depth-10^4
// queue; with the ring buffer this is O(1) per item regardless of depth.
func BenchmarkServerDeepQueue(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		drainQueued(10000)
	}
}

// TestServerRingWrapFIFO forces the ring buffer to wrap repeatedly and
// checks strict FIFO order survives.
func TestServerRingWrapFIFO(t *testing.T) {
	e := New(1)
	var got []int
	s := NewServer[int](e, 1000, 5, func(v int) { got = append(got, v) })
	next := 0
	for round := 0; round < 20; round++ {
		// Top the queue up, serve a few, repeat: head walks around the ring.
		for s.QueueLen() < 5 {
			s.Submit(next)
			next++
		}
		e.RunUntil(e.Now() + 3*time.Millisecond) // 1000/s => 3 services
	}
	e.Run()
	if len(got) != next {
		t.Fatalf("served %d of %d items", len(got), next)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at index %d: got %d", i, v)
		}
	}
	if d := s.Stats().Dropped; d != 0 {
		t.Fatalf("unexpected drops: %d", d)
	}
}

// TestServerEffectiveRateExact pins the fractional-nanosecond service-time
// accumulation: over 10^6 served items the total elapsed virtual time must
// match the configured rate's ideal to within one clock tick (1 ns) — i.e.
// the effective rate equals the configured rate to within the clock's
// resolution. The pre-fix per-item truncation of 1e9/7000 to 142857 ns
// accumulated ~142857 ns of drift over the same run (effective rate
// 7000.007/s), so this test fails on the old code.
func TestServerEffectiveRateExact(t *testing.T) {
	const rate = 7000.0 // 1e9/7000 = 142857.142857... ns/item: worst-case fraction
	const n = 1_000_000
	e := New(1)
	served := 0
	var s *Server[int]
	s = NewServer[int](e, rate, 1, func(int) {
		served++
		if served < n {
			s.Submit(served) // keep the server busy for exactly n services
		}
	})
	s.Submit(0)
	e.Run()
	if served != n {
		t.Fatalf("served %d items, want %d", served, n)
	}
	elapsed := float64(e.Now())
	ideal := float64(n) * (1e9 / rate)
	if drift := math.Abs(elapsed - ideal); drift >= 1.0 {
		effective := float64(n) * 1e9 / elapsed
		t.Fatalf("service-rate drift: %d items took %v (%.1f ns off ideal), effective rate %.4f/s vs configured %.0f/s",
			n, e.Now(), drift, effective, rate)
	}
}

// TestServerDegenerateRateClamped pins the rate clamp: a configured rate
// above one item per nanosecond cannot be represented on the integer clock
// and previously truncated to zero-duration service that never advanced
// virtual time. It must clamp to 1e9/s so every service still costs a tick.
func TestServerDegenerateRateClamped(t *testing.T) {
	const n = 1000
	e := New(1)
	served := 0
	var s *Server[int]
	s = NewServer[int](e, 5e9, 1, func(int) {
		served++
		if served < n {
			s.Submit(served)
		}
	})
	if got := s.Rate(); got != maxServerRate {
		t.Fatalf("Rate() = %v after clamp, want %v", got, maxServerRate)
	}
	s.Submit(0)
	e.Run()
	if served != n {
		t.Fatalf("served %d items, want %d", served, n)
	}
	if e.Now() != Time(n)*time.Nanosecond {
		t.Fatalf("clock at %v after %d clamped services, want %v (zero-duration service?)",
			e.Now(), n, Time(n)*time.Nanosecond)
	}

	// SetRate must apply the same clamp.
	s.SetRate(2e12)
	if got := s.Rate(); got != maxServerRate {
		t.Fatalf("SetRate left rate %v, want clamp to %v", got, maxServerRate)
	}
}
