// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an event heap. All model
// components (switches, links, traffic generators, the controller)
// schedule callbacks on a single Engine, so an entire experiment is a
// deterministic, seedable, single-goroutine program: running the same
// configuration twice produces byte-identical results. That guarantee is
// what makes the paper-reproduction tables and the chaos experiments
// diffable across machines and runs.
package sim
