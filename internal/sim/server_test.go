package sim

import (
	"testing"
	"time"
)

func TestServerTraceHooks(t *testing.T) {
	e := New(1)
	var served []int
	s := NewServer[int](e, 1000, 4, func(v int) { served = append(served, v) })

	type obs struct {
		v  int
		at Time
	}
	var submits, serves []obs
	s.Trace(
		func(v int, now Time) { submits = append(submits, obs{v, now}) },
		func(v int, now Time) { serves = append(serves, obs{v, now}) },
	)

	s.Submit(1)
	s.Submit(2)
	e.Run()

	if len(submits) != 2 || submits[0].v != 1 || submits[1].v != 2 {
		t.Fatalf("submits = %+v", submits)
	}
	if submits[0].at != 0 || submits[1].at != 0 {
		t.Fatalf("submit times = %+v", submits)
	}
	if len(serves) != 2 || serves[0].v != 1 || serves[1].v != 2 {
		t.Fatalf("serves = %+v", serves)
	}
	// 1000 items/s => 1ms per service; item 2 queues behind item 1.
	if serves[0].at != time.Millisecond || serves[1].at != 2*time.Millisecond {
		t.Fatalf("serve times = %+v", serves)
	}
	if len(served) != 2 {
		t.Fatalf("served = %v", served)
	}

	// The submit hook observes drops too (the item was offered).
	s.Trace(func(v int, now Time) { submits = append(submits, obs{v, now}) }, nil)
	for i := 0; i < 10; i++ {
		s.Submit(100 + i)
	}
	if dropped := s.Stats().Dropped; dropped == 0 {
		t.Fatal("expected drops with a full queue")
	}
	if len(submits) != 12 {
		t.Fatalf("submit hook saw %d offers, want 12", len(submits))
	}

	// Clearing the hooks disables observation.
	s.Trace(nil, nil)
	e.Run()
	if len(serves) != 2 {
		t.Fatalf("serve hook fired after clear: %+v", serves)
	}
}

// TestServerUntracedAllocFree pins the zero-cost-when-disabled contract:
// with nil trace hooks, a steady-state submit/serve cycle must not
// allocate (the hooks add only a nil check to the hot path).
func TestServerUntracedAllocFree(t *testing.T) {
	e := New(1)
	s := NewServer[int](e, 1e6, 16, func(int) {})
	// Warm up the queue backing array and the engine free list.
	for i := 0; i < 32; i++ {
		s.Submit(i)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		s.Submit(1)
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("untraced submit+serve allocates %.1f objects/op, want 0", avg)
	}
}
