package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v, want 3ms", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events ran out of order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	ran := false
	ev := e.Schedule(time.Millisecond, func() { ran = true })
	ev.Cancel()
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	e.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	// Once the canceled event's time passes, the engine reclaims the node
	// and the stale handle reads false.
	if ev.Canceled() {
		t.Fatal("Canceled() = true after the node was reclaimed")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := New(1)
	fired := 0
	e.Schedule(5*time.Millisecond, func() { fired++ })
	e.Schedule(50*time.Millisecond, func() { fired++ })
	n := e.RunUntil(10 * time.Millisecond)
	if n != 1 || fired != 1 {
		t.Fatalf("fired %d events before 10ms, want 1", fired)
	}
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("Now = %v, want 10ms", e.Now())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after Run, want 2", fired)
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := New(1)
	e.Schedule(time.Millisecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(0, func() {})
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	var at []Time
	e.Schedule(time.Millisecond, func() {
		e.Schedule(time.Millisecond, func() { at = append(at, e.Now()) })
	})
	e.Run()
	if len(at) != 1 || at[0] != 2*time.Millisecond {
		t.Fatalf("nested event at %v, want [2ms]", at)
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d after Stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestTicker(t *testing.T) {
	e := New(1)
	var ticks []Time
	tk := e.Every(10*time.Millisecond, func() {
		ticks = append(ticks, e.Now())
	})
	e.Schedule(35*time.Millisecond, func() { tk.Stop() })
	e.Run()
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 ticks", ticks)
	}
	for i, at := range ticks {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStopWithinCallback(t *testing.T) {
	e := New(1)
	n := 0
	var tk *Ticker
	tk = e.Every(time.Millisecond, func() {
		n++
		tk.Stop()
	})
	e.RunUntil(time.Second)
	if n != 1 {
		t.Fatalf("ticker fired %d times after in-callback Stop, want 1", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := New(42)
		var vals []int64
		e.Every(time.Millisecond, func() {
			vals = append(vals, e.Rand().Int63())
		})
		e.RunUntil(20 * time.Millisecond)
		return vals
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("length mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTokenBucket(t *testing.T) {
	tb := NewTokenBucket(100, 10) // 100 tokens/s, burst 10
	if !tb.Take(0, 10) {
		t.Fatal("full bucket refused burst")
	}
	if tb.Take(0, 1) {
		t.Fatal("empty bucket granted a token")
	}
	// After 50ms, 5 tokens should have accumulated.
	if !tb.Take(50*time.Millisecond, 5) {
		t.Fatal("bucket did not refill at rate")
	}
	if tb.Take(50*time.Millisecond, 1) {
		t.Fatal("bucket over-refilled")
	}
	// Refill never exceeds burst.
	if got := tb.Tokens(10 * time.Second); got != 10 {
		t.Fatalf("tokens after long idle = %v, want burst 10", got)
	}
}

func TestServerServesAtRate(t *testing.T) {
	e := New(1)
	var done []Time
	s := NewServer(e, 100, 1000, func(v any) { done = append(done, e.Now()) })
	for i := 0; i < 5; i++ {
		s.Submit(i)
	}
	e.Run()
	if len(done) != 5 {
		t.Fatalf("served %d, want 5", len(done))
	}
	for i, at := range done {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if at != want {
			t.Fatalf("item %d served at %v, want %v", i, at, want)
		}
	}
}

func TestServerDropsOnOverflow(t *testing.T) {
	e := New(1)
	var dropped []any
	s := NewServer(e, 10, 2, func(v any) {})
	s.OnDrop(func(v any) { dropped = append(dropped, v) })
	for i := 0; i < 10; i++ {
		s.Submit(i)
	}
	// One in service + 2 queued; 7 dropped.
	if len(dropped) != 7 {
		t.Fatalf("dropped %d, want 7", len(dropped))
	}
	e.Run()
	st := s.Stats()
	if st.Submitted != 10 || st.Served != 3 || st.Dropped != 7 {
		t.Fatalf("stats = %+v, want 10/3/7", st)
	}
}

func TestServerThroughputMatchesRate(t *testing.T) {
	// Offered load 2x the service rate: served count over 10s must equal
	// rate*10s (+queue drain), drops absorb the rest.
	e := New(1)
	served := 0
	s := NewServer(e, 100, 50, func(v any) { served++ })
	gen := e.Every(5*time.Millisecond, func() { s.Submit(struct{}{}) }) // 200/s
	e.Schedule(10*time.Second, func() { gen.Stop() })
	e.Run()
	if served < 990 || served > 1060 {
		t.Fatalf("served = %d over 10s at rate 100/s, want ~1000", served)
	}
}

func TestServerSetRate(t *testing.T) {
	e := New(1)
	var done []Time
	s := NewServer(e, 1000, 100, func(v any) { done = append(done, e.Now()) })
	s.Submit(1)
	e.Run()
	s.SetRate(10)
	s.Submit(2)
	e.Run()
	if done[0] != time.Millisecond {
		t.Fatalf("first service at %v, want 1ms", done[0])
	}
	if got := done[1] - time.Millisecond; got != 100*time.Millisecond {
		t.Fatalf("second service took %v, want 100ms", got)
	}
}
