package sim

import "time"

// TokenBucket is a classic token-bucket rate limiter driven by the virtual
// clock. Rate is in tokens per second; Burst is the bucket depth.
type TokenBucket struct {
	Rate   float64
	Burst  float64
	tokens float64
	last   Time
	primed bool
}

// NewTokenBucket returns a bucket that starts full.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return &TokenBucket{Rate: rate, Burst: burst, tokens: burst, primed: true}
}

func (tb *TokenBucket) refill(now Time) {
	if !tb.primed {
		tb.tokens = tb.Burst
		tb.primed = true
	} else if now > tb.last {
		tb.tokens += tb.Rate * (now - tb.last).Seconds()
		if tb.tokens > tb.Burst {
			tb.tokens = tb.Burst
		}
	}
	tb.last = now
}

// Take consumes n tokens if available at virtual time now and reports
// whether it succeeded.
func (tb *TokenBucket) Take(now Time, n float64) bool {
	tb.refill(now)
	if tb.tokens+1e-9 < n {
		return false
	}
	tb.tokens -= n
	return true
}

// Tokens returns the number of tokens available at virtual time now.
func (tb *TokenBucket) Tokens(now Time) float64 {
	tb.refill(now)
	return tb.tokens
}

// ServerStats counts a Server's activity.
type ServerStats struct {
	Submitted uint64 // items offered to the server
	Served    uint64 // items whose processing completed
	Dropped   uint64 // items rejected because the queue was full
}

// Server models a single work-conserving service station with a finite FIFO
// queue and a fixed service rate (items per second): the standard model for
// a CPU-limited agent such as a switch's OpenFlow Agent. Items that arrive
// when the queue is full are dropped.
//
// Server is generic over its item type so hot paths (one Submit per
// simulated packet) avoid boxing every item into an interface; the fire
// callback is allocated once at construction rather than once per item.
type Server[T any] struct {
	eng     *Engine
	rate    float64
	cap     int
	queue   []T
	busy    bool
	current T // item in service, valid while busy
	fire    func()
	process func(v T)
	onDrop  func(v T)
	stats   ServerStats

	// Observation hooks (Trace). Nil when unobserved: the nil checks on
	// the submit/serve paths are the entire disabled-tracing cost.
	onSubmit func(v T, now Time)
	onServe  func(v T, now Time)
}

// NewServer returns a server processing items at rate items/second with a
// queue holding up to queueCap items (excluding the one in service).
// process is invoked when an item finishes service. rate must be positive.
func NewServer[T any](eng *Engine, rate float64, queueCap int, process func(v T)) *Server[T] {
	if rate <= 0 {
		panic("sim: non-positive server rate")
	}
	if queueCap < 0 {
		queueCap = 0
	}
	s := &Server[T]{eng: eng, rate: rate, cap: queueCap, process: process}
	s.fire = s.completeService
	return s
}

// OnDrop registers a callback invoked with each item dropped due to queue
// overflow.
func (s *Server[T]) OnDrop(fn func(v T)) { s.onDrop = fn }

// Trace registers observation hooks: onSubmit fires as an item is offered
// (whether or not it is then dropped), onServe as its service completes,
// each with the virtual time of the instant. Either may be nil; passing
// both nil disables observation. Hooks must not mutate the server.
func (s *Server[T]) Trace(onSubmit, onServe func(v T, now Time)) {
	s.onSubmit = onSubmit
	s.onServe = onServe
}

// SetRate changes the service rate for items entering service from now on.
func (s *Server[T]) SetRate(rate float64) {
	if rate <= 0 {
		panic("sim: non-positive server rate")
	}
	s.rate = rate
}

// Rate returns the current service rate in items per second.
func (s *Server[T]) Rate() float64 { return s.rate }

// QueueLen returns the number of queued items (excluding any in service).
func (s *Server[T]) QueueLen() int { return len(s.queue) }

// Busy reports whether an item is currently in service.
func (s *Server[T]) Busy() bool { return s.busy }

// Stats returns a snapshot of the server's counters.
func (s *Server[T]) Stats() ServerStats { return s.stats }

// Submit offers an item to the server. It returns false (and counts a drop)
// if the queue is full.
func (s *Server[T]) Submit(v T) bool {
	s.stats.Submitted++
	if s.onSubmit != nil {
		s.onSubmit(v, s.eng.Now())
	}
	if !s.busy {
		s.serve(v)
		return true
	}
	if len(s.queue) >= s.cap {
		s.stats.Dropped++
		if s.onDrop != nil {
			s.onDrop(v)
		}
		return false
	}
	s.queue = append(s.queue, v)
	return true
}

func (s *Server[T]) serve(v T) {
	s.busy = true
	s.current = v
	d := time.Duration(float64(time.Second) / s.rate)
	s.eng.Schedule(d, s.fire)
}

func (s *Server[T]) completeService() {
	v := s.current
	var zero T
	s.current = zero // don't retain served items
	s.stats.Served++
	if s.onServe != nil {
		s.onServe(v, s.eng.Now())
	}
	s.process(v)
	if len(s.queue) > 0 {
		next := s.queue[0]
		copy(s.queue, s.queue[1:])
		var z T
		s.queue[len(s.queue)-1] = z
		s.queue = s.queue[:len(s.queue)-1]
		s.serve(next)
	} else {
		s.busy = false
	}
}
