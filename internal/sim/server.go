package sim

import "time"

// TokenBucket is a classic token-bucket rate limiter driven by the virtual
// clock. Rate is in tokens per second; Burst is the bucket depth.
type TokenBucket struct {
	Rate   float64
	Burst  float64
	tokens float64
	last   Time
	primed bool
}

// NewTokenBucket returns a bucket that starts full.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return &TokenBucket{Rate: rate, Burst: burst, tokens: burst, primed: true}
}

func (tb *TokenBucket) refill(now Time) {
	if !tb.primed {
		tb.tokens = tb.Burst
		tb.primed = true
	} else if now > tb.last {
		tb.tokens += tb.Rate * (now - tb.last).Seconds()
		if tb.tokens > tb.Burst {
			tb.tokens = tb.Burst
		}
	}
	tb.last = now
}

// Take consumes n tokens if available at virtual time now and reports
// whether it succeeded.
func (tb *TokenBucket) Take(now Time, n float64) bool {
	tb.refill(now)
	if tb.tokens+1e-9 < n {
		return false
	}
	tb.tokens -= n
	return true
}

// Tokens returns the number of tokens available at virtual time now.
func (tb *TokenBucket) Tokens(now Time) float64 {
	tb.refill(now)
	return tb.tokens
}

// ServerStats counts a Server's activity.
type ServerStats struct {
	Submitted uint64 // items offered to the server
	Served    uint64 // items whose processing completed
	Dropped   uint64 // items rejected because the queue was full
}

// maxServerRate caps service rates at one item per nanosecond, the clock's
// resolution. A faster configured rate would truncate to zero-duration
// service, so rates above the cap are clamped to it.
const maxServerRate = float64(time.Second) // 1e9 items/s

// Server models a single work-conserving service station with a finite FIFO
// queue and a fixed service rate (items per second): the standard model for
// a CPU-limited agent such as a switch's OpenFlow Agent. Items that arrive
// when the queue is full are dropped.
//
// Server is generic over its item type so hot paths (one Submit per
// simulated packet) avoid boxing every item into an interface; the fire
// callback is allocated once at construction rather than once per item.
//
// The queue is a ring buffer: dequeue is O(1) regardless of depth, so the
// deep saturated-OFA backlogs Scotch models (thousands of queued misses)
// cost the same per served item as an empty queue.
type Server[T any] struct {
	eng     Proc
	rate    float64
	ivalNs  float64 // ideal service time in (possibly fractional) nanoseconds
	fracNs  float64 // accumulated fractional nanoseconds not yet served
	cap     int
	ring    []T // circular buffer, len(ring) is its capacity
	head    int // index of the oldest queued item
	qlen    int // number of queued items
	busy    bool
	current T // item in service, valid while busy
	fire    func()
	process func(v T)
	onDrop  func(v T)
	stats   ServerStats

	// Observation hooks (Trace). Nil when unobserved: the nil checks on
	// the submit/serve paths are the entire disabled-tracing cost.
	onSubmit func(v T, now Time)
	onServe  func(v T, now Time)
}

// NewServer returns a server processing items at rate items/second with a
// queue holding up to queueCap items (excluding the one in service).
// process is invoked when an item finishes service. rate must be positive;
// rates above one item per nanosecond (the clock resolution) are clamped.
func NewServer[T any](eng Proc, rate float64, queueCap int, process func(v T)) *Server[T] {
	if rate <= 0 {
		panic("sim: non-positive server rate")
	}
	if queueCap < 0 {
		queueCap = 0
	}
	s := &Server[T]{eng: eng, cap: queueCap, process: process}
	s.setRate(rate)
	s.fire = s.completeService
	return s
}

// OnDrop registers a callback invoked with each item dropped due to queue
// overflow.
func (s *Server[T]) OnDrop(fn func(v T)) { s.onDrop = fn }

// Trace registers observation hooks: onSubmit fires as an item is offered
// (whether or not it is then dropped), onServe as its service completes,
// each with the virtual time of the instant. Either may be nil; passing
// both nil disables observation. Hooks must not mutate the server.
func (s *Server[T]) Trace(onSubmit, onServe func(v T, now Time)) {
	s.onSubmit = onSubmit
	s.onServe = onServe
}

// SetRate changes the service rate for items entering service from now on.
// Rates above one item per nanosecond are clamped to the clock resolution.
func (s *Server[T]) SetRate(rate float64) {
	if rate <= 0 {
		panic("sim: non-positive server rate")
	}
	s.setRate(rate)
}

func (s *Server[T]) setRate(rate float64) {
	if rate > maxServerRate {
		rate = maxServerRate
	}
	if rate != s.rate {
		s.rate = rate
		s.ivalNs = float64(time.Second) / rate
	}
}

// Rate returns the current service rate in items per second.
func (s *Server[T]) Rate() float64 { return s.rate }

// QueueLen returns the number of queued items (excluding any in service).
func (s *Server[T]) QueueLen() int { return s.qlen }

// Busy reports whether an item is currently in service.
func (s *Server[T]) Busy() bool { return s.busy }

// Stats returns a snapshot of the server's counters.
func (s *Server[T]) Stats() ServerStats { return s.stats }

// Submit offers an item to the server. It returns false (and counts a drop)
// if the queue is full.
func (s *Server[T]) Submit(v T) bool {
	s.stats.Submitted++
	if s.onSubmit != nil {
		s.onSubmit(v, s.eng.Now())
	}
	if !s.busy {
		s.serve(v)
		return true
	}
	if s.qlen >= s.cap {
		s.stats.Dropped++
		if s.onDrop != nil {
			s.onDrop(v)
		}
		return false
	}
	s.push(v)
	return true
}

func (s *Server[T]) push(v T) {
	if s.qlen == len(s.ring) {
		s.grow()
	}
	s.ring[(s.head+s.qlen)%len(s.ring)] = v
	s.qlen++
}

func (s *Server[T]) grow() {
	next := make([]T, max(4, 2*len(s.ring)))
	for i := 0; i < s.qlen; i++ {
		next[i] = s.ring[(s.head+i)%len(s.ring)]
	}
	s.ring = next
	s.head = 0
}

func (s *Server[T]) pop() T {
	v := s.ring[s.head]
	var zero T
	s.ring[s.head] = zero // don't retain dequeued items
	s.head = (s.head + 1) % len(s.ring)
	s.qlen--
	return v
}

// serve starts service on v. The per-item service time is the configured
// rate's ideal (fractional) interval with the fractional nanoseconds
// carried between items, so the long-run effective rate equals the
// configured rate exactly rather than drifting by per-item truncation
// (e.g. rate 7000 truncated to 142857 ns/item would serve 7000.007/s).
func (s *Server[T]) serve(v T) {
	s.busy = true
	s.current = v
	ideal := s.ivalNs + s.fracNs
	d := time.Duration(ideal)
	s.fracNs = ideal - float64(d)
	s.eng.Schedule(d, s.fire)
}

func (s *Server[T]) completeService() {
	v := s.current
	var zero T
	s.current = zero // don't retain served items
	s.stats.Served++
	if s.onServe != nil {
		s.onServe(v, s.eng.Now())
	}
	s.process(v)
	if s.qlen > 0 {
		s.serve(s.pop())
	} else {
		s.busy = false
	}
}
