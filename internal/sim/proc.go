package sim

import (
	"math/rand"
	"time"
)

// Proc is the scheduling surface a model component sees: the clock, the
// seeded random source, and the ability to schedule work on itself or hand
// work to another component. A Proc is either a plain *Engine (serial mode:
// every component shares one heap) or a *Lane of a Sharded engine (each
// topology partition owns a private heap).
//
// Defer is the one cross-component primitive. Same-owner Defer degenerates
// to Schedule; in sharded mode a cross-lane Defer rides the mailbox and its
// delay must be at least the engine's lookahead — the conservative-DES
// guarantee that the destination lane has not yet simulated past the
// delivery instant.
type Proc interface {
	Now() Time
	Rand() *rand.Rand
	Schedule(d time.Duration, fn func()) Event
	At(t Time, fn func()) Event
	Every(interval time.Duration, fn func()) *Ticker
	Defer(dst Proc, d time.Duration, fn func())
	// DeferCall is Defer for the hottest paths: a static function plus two
	// operands instead of a closure, so per-packet delivery events cost no
	// allocation (interface-boxing a pointer is free). Semantics — delay
	// handling, cross-lane lookahead enforcement, ordering — match Defer.
	DeferCall(dst Proc, d time.Duration, fn func(a1, a2 any), a1, a2 any)
	// DeferBytes is DeferCall for wire-delivery paths: a receiver pointer
	// (or func value), a small integer, and a byte buffer ride in the
	// recycled event node directly, so control-channel deliveries cost no
	// closure and no interface-boxing of the slice header. Semantics
	// match Defer.
	DeferBytes(dst Proc, d time.Duration, fn func(obj any, id int, b []byte), obj any, id int, b []byte)
}

// Runner is the top-level driving surface shared by *Engine and *Sharded:
// what an experiment holds to advance virtual time.
type Runner interface {
	RunUntil(end Time) uint64
	Run()
	Stop()
	Now() Time
}

// System is the full control surface a model driver holds: a scheduling
// context (the Proc its lane-0 / main-partition components run on) plus
// run control. A plain *Engine is a System; a Sharded engine exposes one
// through its System method.
type System interface {
	Proc
	Runner
}

// Defer schedules fn on dst after delay d. On a plain Engine every
// component shares the engine, so dst must be this engine and Defer is
// exactly Schedule. A foreign destination means a model wired components
// across two unrelated engines — always a bug, so it panics.
func (e *Engine) Defer(dst Proc, d time.Duration, fn func()) {
	if de, ok := dst.(*Engine); ok && de == e {
		e.Schedule(d, fn)
		return
	}
	panic("sim: Defer across unrelated engines")
}

// DeferCall implements Proc; see the interface comment.
func (e *Engine) DeferCall(dst Proc, d time.Duration, fn func(a1, a2 any), a1, a2 any) {
	if de, ok := dst.(*Engine); ok && de == e {
		if d < 0 {
			d = 0
		}
		e.at2(e.now+d, fn, a1, a2)
		return
	}
	panic("sim: Defer across unrelated engines")
}

// DeferBytes implements Proc; see the interface comment.
func (e *Engine) DeferBytes(dst Proc, d time.Duration, fn func(obj any, id int, b []byte), obj any, id int, b []byte) {
	if de, ok := dst.(*Engine); ok && de == e {
		if d < 0 {
			d = 0
		}
		e.atB(e.now+d, fn, obj, id, b)
		return
	}
	panic("sim: Defer across unrelated engines")
}

var (
	_ Proc   = (*Engine)(nil)
	_ Runner = (*Engine)(nil)
	_ System = (*Engine)(nil)
)
