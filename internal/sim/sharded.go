package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Sharded is a conservative (lookahead-based) parallel discrete-event
// engine. The model is split into lanes — one per topology partition —
// and each lane owns a private event heap, clock, and seeded RNG for the
// components placed on it. Cross-lane interactions (tunnel hops, control
// channels) go through Defer, whose delay must be at least the engine's
// lookahead: the minimum latency of any cross-partition link.
//
// Execution proceeds in windows. Each round the engine (1) drains every
// lane's outbox into the destination heaps in lane order, (2) finds T, the
// earliest pending event across all lanes, and (3) lets every lane run its
// events in [T, T+lookahead) concurrently. No event inside the window can
// schedule work on another lane earlier than T+lookahead, so lanes never
// observe each other mid-window and the interleaving of workers is
// invisible: output is a pure function of (seed, lane count, lookahead),
// byte-identical at any worker count. Determinism rests on two rules the
// rest of the package enforces: mailbox drain order is fixed (source lane
// index, then append order), and every lane's RNG is derived from the
// engine seed by lane index, so which worker runs a lane never matters.
type Sharded struct {
	lanes     []*Lane
	lookahead time.Duration
	workers   int
	now       Time
	stop      atomic.Bool
	counts    []uint64 // per-lane fired counts, reused across windows
}

// Lane is one shard: a private Engine plus a mailbox to its siblings. It
// embeds the engine, so a *Lane is a Proc with Defer overridden to route
// cross-lane work through the outbox.
type Lane struct {
	*Engine
	sh  *Sharded
	idx int
	out []deferred
}

// deferred is one cross-lane message: run fn (or fn2 with its operands)
// on lane dst at absolute virtual time at.
type deferred struct {
	dst    int
	at     Time
	fn     func()
	fn2    func(a1, a2 any)
	a1, a2 any
	fnB    func(obj any, id int, b []byte)
	id     int
	b      []byte
}

// splitmix64 is the SplitMix64 output function, used to derive
// well-separated per-lane seeds from the single engine seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewSharded returns a sharded engine with the given number of lanes.
// lookahead must be positive and no larger than the minimum cross-lane
// delay the model will use (Defer enforces the per-call side). workers is
// the number of goroutines executing lanes within a window; values < 1
// and values above the lane count are clamped. The worker count affects
// wall-clock time only, never output.
func NewSharded(seed int64, lanes int, lookahead time.Duration, workers int) *Sharded {
	if lanes < 1 {
		panic("sim: sharded engine needs at least one lane")
	}
	if lookahead <= 0 {
		panic("sim: non-positive lookahead")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > lanes {
		workers = lanes
	}
	s := &Sharded{
		lookahead: lookahead,
		workers:   workers,
		lanes:     make([]*Lane, lanes),
		counts:    make([]uint64, lanes),
	}
	for i := range s.lanes {
		// Lane 0 keeps the raw seed so its RNG stream matches a plain
		// New(seed) engine: a model that places every RNG consumer on lane
		// 0 then produces byte-identical output serial or sharded. Other
		// lanes get well-separated SplitMix64-derived streams.
		laneSeed := seed
		if i > 0 {
			laneSeed = int64(splitmix64(uint64(seed) + uint64(i)))
		}
		s.lanes[i] = &Lane{Engine: New(laneSeed), sh: s, idx: i}
	}
	return s
}

// Lane returns lane i, the Proc to hand to components of partition i.
func (s *Sharded) Lane(i int) *Lane { return s.lanes[i] }

// Lanes returns the number of lanes.
func (s *Sharded) Lanes() int { return len(s.lanes) }

// Lookahead returns the engine's lookahead window.
func (s *Sharded) Lookahead() time.Duration { return s.lookahead }

// Now returns the global virtual time: the point every lane has reached at
// the last window boundary.
func (s *Sharded) Now() Time { return s.now }

// Fired returns the total number of events executed across all lanes.
func (s *Sharded) Fired() uint64 {
	var n uint64
	for _, l := range s.lanes {
		n += l.Engine.Fired()
	}
	return n
}

// Pending returns the number of queued events across all lanes, plus
// undelivered mailbox entries.
func (s *Sharded) Pending() int {
	var n int
	for _, l := range s.lanes {
		n += l.Engine.Pending() + len(l.out)
	}
	return n
}

// Stop makes RunUntil return after the window in progress. Unlike
// Engine.Stop it cannot cut a window short: lanes inside a window run
// concurrently, and stopping one mid-window would make output depend on
// worker interleaving.
func (s *Sharded) Stop() { s.stop.Store(true) }

// Run executes events until every heap and mailbox drains or Stop is
// called.
func (s *Sharded) Run() { s.RunUntil(1<<62 - 1) }

// RunUntil executes events with timestamps <= end on every lane, then
// advances all clocks to end. It returns the number of events fired.
func (s *Sharded) RunUntil(end Time) uint64 {
	s.stop.Store(false)
	var fired uint64
	for !s.stop.Load() {
		s.drain()
		t, ok := s.nextEventTime()
		if !ok || t > end {
			break
		}
		limit := t + s.lookahead - 1
		if limit > end {
			limit = end
		}
		fired += s.runWindow(limit)
		s.now = limit
	}
	if !s.stop.Load() && end < 1<<62-1 {
		for _, l := range s.lanes {
			l.Engine.RunUntil(end) // queues hold nothing <= end; advances clocks
		}
		if s.now < end {
			s.now = end
		}
	}
	return fired
}

// drain moves every lane's outbox into the destination heaps. Iteration is
// source-lane index order, then append order, and runs single-threaded
// between windows, so destination sequence numbers — and therefore
// same-instant tie-breaks — are identical regardless of worker count.
func (s *Sharded) drain() {
	for _, src := range s.lanes {
		for i := range src.out {
			d := &src.out[i]
			switch {
			case d.fn != nil:
				s.lanes[d.dst].Engine.At(d.at, d.fn)
			case d.fn2 != nil:
				s.lanes[d.dst].Engine.at2(d.at, d.fn2, d.a1, d.a2)
			default:
				s.lanes[d.dst].Engine.atB(d.at, d.fnB, d.a1, d.id, d.b)
			}
			*d = deferred{}
		}
		src.out = src.out[:0]
	}
}

// nextEventTime returns the earliest pending timestamp across all lanes.
func (s *Sharded) nextEventTime() (Time, bool) {
	var t Time
	ok := false
	for _, l := range s.lanes {
		if len(l.Engine.events) == 0 {
			continue
		}
		if at := l.Engine.events[0].at; !ok || at < t {
			t, ok = at, true
		}
	}
	return t, ok
}

// runWindow runs every lane up to limit. With one worker the lanes run
// inline in index order; otherwise workers claim lanes off a shared atomic
// counter. Lanes touch disjoint state within a window, so the only shared
// writes are the claim counter and the per-lane counts slots.
func (s *Sharded) runWindow(limit Time) uint64 {
	if s.workers == 1 {
		var fired uint64
		for _, l := range s.lanes {
			fired += l.Engine.RunUntil(limit)
		}
		return fired
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.lanes) {
					return
				}
				s.counts[i] = s.lanes[i].Engine.RunUntil(limit)
			}
		}()
	}
	wg.Wait()
	var fired uint64
	for _, c := range s.counts {
		fired += c
	}
	return fired
}

// System returns the engine's full control surface: lane 0 as the
// scheduling context plus the sharded run control. Handing this to a
// model driver written against System makes the sharded engine a drop-in
// replacement for a plain Engine, with lane 0 playing the role of the
// "main" partition (it holds the raw seed, so its RNG stream matches the
// serial engine's).
func (s *Sharded) System() System {
	return shardedSystem{Lane: s.lanes[0], s: s}
}

// shardedSystem combines lane 0's Proc surface with the Sharded run
// control. The embedded lane supplies Now/Rand/Schedule/At/Every/Defer;
// run control routes to the window loop.
type shardedSystem struct {
	*Lane
	s *Sharded
}

func (ss shardedSystem) RunUntil(end Time) uint64 { return ss.s.RunUntil(end) }
func (ss shardedSystem) Run()                     { ss.s.Run() }
func (ss shardedSystem) Stop()                    { ss.s.Stop() }

// asLane unwraps a Proc to its backing lane, if it has one.
func asLane(p Proc) (*Lane, bool) {
	switch v := p.(type) {
	case *Lane:
		return v, true
	case shardedSystem:
		return v.Lane, true
	}
	return nil, false
}

// Defer schedules fn on dst after delay d. Same-lane Defer is Schedule.
// Cross-lane Defer requires d >= lookahead — the conservative guarantee
// that dst has not simulated past the delivery time — and appends to the
// lane-local outbox, delivered at the next window boundary.
func (l *Lane) Defer(dst Proc, d time.Duration, fn func()) {
	dl, ok := asLane(dst)
	if !ok || dl.sh != l.sh {
		panic("sim: Defer across unrelated engines")
	}
	if dl == l {
		l.Schedule(d, fn)
		return
	}
	if d < l.sh.lookahead {
		panic(fmt.Sprintf("sim: cross-lane delay %v below lookahead %v", d, l.sh.lookahead))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	l.out = append(l.out, deferred{dst: dl.idx, at: l.Engine.Now() + d, fn: fn})
}

// DeferCall implements Proc; same routing as Defer, closure-free form.
func (l *Lane) DeferCall(dst Proc, d time.Duration, fn func(a1, a2 any), a1, a2 any) {
	dl, ok := asLane(dst)
	if !ok || dl.sh != l.sh {
		panic("sim: Defer across unrelated engines")
	}
	if dl == l {
		if d < 0 {
			d = 0
		}
		l.Engine.at2(l.Engine.now+d, fn, a1, a2)
		return
	}
	if d < l.sh.lookahead {
		panic(fmt.Sprintf("sim: cross-lane delay %v below lookahead %v", d, l.sh.lookahead))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	l.out = append(l.out, deferred{dst: dl.idx, at: l.Engine.Now() + d, fn2: fn, a1: a1, a2: a2})
}

// DeferBytes implements Proc; same routing as Defer, wire-delivery form.
func (l *Lane) DeferBytes(dst Proc, d time.Duration, fn func(obj any, id int, b []byte), obj any, id int, b []byte) {
	dl, ok := asLane(dst)
	if !ok || dl.sh != l.sh {
		panic("sim: Defer across unrelated engines")
	}
	if dl == l {
		if d < 0 {
			d = 0
		}
		l.Engine.atB(l.Engine.now+d, fn, obj, id, b)
		return
	}
	if d < l.sh.lookahead {
		panic(fmt.Sprintf("sim: cross-lane delay %v below lookahead %v", d, l.sh.lookahead))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	l.out = append(l.out, deferred{dst: dl.idx, at: l.Engine.Now() + d, fnB: fn, a1: obj, id: id, b: b})
}

var (
	_ Proc   = (*Lane)(nil)
	_ Runner = (*Sharded)(nil)
	_ System = shardedSystem{}
)
