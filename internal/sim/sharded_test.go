package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// laneTrace is a per-lane event log. Each lane appends only to its own
// slice, so tracing is race-free even when lanes run on separate workers.
type laneTrace [][]string

func (tr laneTrace) add(lane int, now Time, format string, args ...any) {
	tr[lane] = append(tr[lane], fmt.Sprintf("%d@%v ", lane, now)+fmt.Sprintf(format, args...))
}

// buildPingPong wires a k-lane model where every lane runs local work
// (including RNG draws) and periodically defers a message to the next lane
// with exactly the lookahead delay — the tightest legal cross-lane send.
func buildPingPong(seed int64, lanes, workers int, la time.Duration) (*Sharded, laneTrace) {
	s := NewSharded(seed, lanes, la, workers)
	tr := make(laneTrace, lanes)
	for i := 0; i < lanes; i++ {
		i := i
		l := s.Lane(i)
		// Local periodic work with RNG draws.
		l.Every(7*time.Microsecond, func() {
			tr.add(i, l.Now(), "tick r=%.6f", l.Rand().Float64())
		})
		// Cross-lane chatter at the lookahead bound.
		next := s.Lane((i + 1) % lanes)
		hop := 0
		var send func()
		send = func() {
			hop++
			h := hop
			l.Defer(next, la, func() {
				tr.add(next.idx, next.Now(), "recv hop=%d from=%d", h, i)
			})
			if hop < 50 {
				l.Schedule(11*time.Microsecond, send)
			}
		}
		l.Schedule(time.Microsecond, send)
	}
	return s, tr
}

// TestShardedWorkerCountInvariant is the core determinism property: the
// per-lane event traces (timestamps, RNG draws, message arrival order) are
// a pure function of (seed, lane count, lookahead) — the worker count must
// be invisible. Run under -race this also exercises the mailbox drain and
// window barrier for data races.
func TestShardedWorkerCountInvariant(t *testing.T) {
	const lanes = 5
	la := 3 * time.Microsecond
	var want laneTrace
	var wantFired uint64
	for _, workers := range []int{1, 2, 4, 7} {
		s, tr := buildPingPong(42, lanes, workers, la)
		fired := s.RunUntil(time.Millisecond)
		if want == nil {
			want, wantFired = tr, fired
			continue
		}
		if fired != wantFired {
			t.Errorf("workers=%d fired %d events, want %d", workers, fired, wantFired)
		}
		if !reflect.DeepEqual(tr, want) {
			t.Errorf("workers=%d produced a different event trace than workers=1", workers)
		}
	}
}

// TestShardedDeliveryTiming checks the conservative protocol's timing
// contract: a cross-lane Defer lands at exactly src.Now()+d on the
// destination lane, after destination-local events at earlier times.
func TestShardedDeliveryTiming(t *testing.T) {
	la := 10 * time.Microsecond
	s := NewSharded(1, 2, la, 2)
	a, b := s.Lane(0), s.Lane(1)
	var order []string
	b.Schedule(12*time.Microsecond, func() {
		order = append(order, fmt.Sprintf("local@%v", b.Now()))
	})
	a.Schedule(3*time.Microsecond, func() {
		a.Defer(b, la, func() {
			order = append(order, fmt.Sprintf("recv@%v", b.Now()))
		})
	})
	s.RunUntil(time.Millisecond)
	want := []string{"local@12µs", "recv@13µs"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("delivery order/timing = %v, want %v", order, want)
	}
	if s.Now() != time.Millisecond {
		t.Fatalf("Now() = %v after RunUntil(1ms)", s.Now())
	}
	for i := 0; i < 2; i++ {
		if got := s.Lane(i).Now(); got != time.Millisecond {
			t.Fatalf("lane %d clock = %v, want 1ms", i, got)
		}
	}
}

// TestShardedSameLaneDeferIsSchedule checks that Defer within a lane is
// plain Schedule: no lookahead restriction, runs in-window.
func TestShardedSameLaneDeferIsSchedule(t *testing.T) {
	s := NewSharded(1, 2, 10*time.Microsecond, 1)
	l := s.Lane(0)
	ran := false
	l.Schedule(time.Microsecond, func() {
		l.Defer(l, time.Nanosecond, func() { ran = true }) // below lookahead: legal same-lane
	})
	s.Run()
	if !ran {
		t.Fatal("same-lane Defer did not run")
	}
}

// TestShardedDeferBelowLookaheadPanics checks the conservative guard: a
// cross-lane delay shorter than the lookahead would let a lane schedule
// into its neighbor's already-simulated past.
func TestShardedDeferBelowLookaheadPanics(t *testing.T) {
	s := NewSharded(1, 2, 10*time.Microsecond, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-lane Defer below lookahead did not panic")
		}
	}()
	s.Lane(0).Defer(s.Lane(1), 9*time.Microsecond, func() {})
}

// TestDeferAcrossEnginesPanics checks both Proc implementations reject a
// destination belonging to a different engine.
func TestDeferAcrossEnginesPanics(t *testing.T) {
	t.Run("engine-to-engine", func(t *testing.T) {
		a, b := New(1), New(2)
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		a.Defer(b, time.Millisecond, func() {})
	})
	t.Run("lane-to-foreign-sharded", func(t *testing.T) {
		s1 := NewSharded(1, 2, time.Microsecond, 1)
		s2 := NewSharded(1, 2, time.Microsecond, 1)
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		s1.Lane(0).Defer(s2.Lane(0), time.Millisecond, func() {})
	})
	t.Run("engine-defer-to-self-runs", func(t *testing.T) {
		e := New(1)
		ran := false
		e.Defer(e, time.Millisecond, func() { ran = true })
		e.Run()
		if !ran {
			t.Fatal("Engine.Defer to itself did not run")
		}
	})
}

// TestShardedConstructionDefer checks that cross-lane Defers issued before
// the first RunUntil (model wiring time) are delivered: the mailbox drains
// at the top of every window round, including the first.
func TestShardedConstructionDefer(t *testing.T) {
	s := NewSharded(1, 2, time.Microsecond, 2)
	got := Time(-1)
	s.Lane(0).Defer(s.Lane(1), 5*time.Microsecond, func() { got = s.Lane(1).Now() })
	s.RunUntil(time.Millisecond)
	if got != 5*time.Microsecond {
		t.Fatalf("construction-time Defer delivered at %v, want 5µs", got)
	}
}

// TestShardedStop checks Stop ends the run at a window boundary and a
// subsequent RunUntil resumes cleanly.
func TestShardedStop(t *testing.T) {
	s := NewSharded(1, 2, time.Microsecond, 2)
	l := s.Lane(0)
	count := 0
	l.Every(time.Microsecond, func() {
		count++
		if count == 10 {
			s.Stop()
		}
	})
	s.RunUntil(time.Millisecond)
	if count != 10 {
		t.Fatalf("fired %d ticks before Stop took effect, want 10", count)
	}
	s.RunUntil(time.Millisecond)
	if count != 1000 { // 1µs ticker over 1ms: ticks at 1..1000µs inclusive
		t.Fatalf("after resume fired %d total ticks, want 1000", count)
	}
}

// TestLaneZeroMatchesPlainEngine pins the serial-equivalence contract: a
// Sharded engine's lane 0 holds the raw seed, so a model whose RNG
// consumers all live on lane 0 draws the exact stream a plain New(seed)
// engine would.
func TestLaneZeroMatchesPlainEngine(t *testing.T) {
	for _, seed := range []int64{1, 42, 1 << 40} {
		plain := New(seed)
		sh := NewSharded(seed, 4, time.Microsecond, 2)
		for i := 0; i < 64; i++ {
			if p, l := plain.Rand().Uint64(), sh.Lane(0).Rand().Uint64(); p != l {
				t.Fatalf("seed %d draw %d: plain %d != lane0 %d", seed, i, p, l)
			}
		}
	}
}

// TestShardedSystemSurface checks the System adapter: scheduling lands on
// lane 0 and run control drives the window loop.
func TestShardedSystemSurface(t *testing.T) {
	sh := NewSharded(3, 3, time.Microsecond, 2)
	sys := sh.System()
	var at Time
	sys.Schedule(5*time.Microsecond, func() { at = sys.Now() })
	sys.Defer(sh.Lane(2), 4*time.Microsecond, func() {}) // cross-lane from lane 0
	sys.RunUntil(time.Millisecond)
	if at != 5*time.Microsecond {
		t.Fatalf("System.Schedule fired at %v, want 5µs", at)
	}
	if sys.Now() != time.Millisecond {
		t.Fatalf("System.Now() = %v after RunUntil(1ms)", sys.Now())
	}
}

// TestShardedLaneSeedsDiffer ensures lanes draw from well-separated RNG
// streams even with adjacent lane indices.
func TestShardedLaneSeedsDiffer(t *testing.T) {
	s := NewSharded(7, 4, time.Microsecond, 1)
	seen := map[float64]int{}
	for i := 0; i < 4; i++ {
		v := s.Lane(i).Rand().Float64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("lanes %d and %d drew identical first values (seed derivation broken)", prev, i)
		}
		seen[v] = i
	}
}
