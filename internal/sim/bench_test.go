package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleFire measures the steady-state cost of one
// schedule-and-fire cycle. With the event free list, the engine reuses the
// same node every iteration, so this runs at 0 allocs/op.
func BenchmarkScheduleFire(b *testing.B) {
	e := New(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Microsecond, fn)
		e.Run()
	}
}

// BenchmarkScheduleFireDepth8 keeps eight events in flight, exercising heap
// sift operations alongside the free list.
func BenchmarkScheduleFireDepth8(b *testing.B) {
	e := New(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for d := 1; d <= 8; d++ {
			e.Schedule(time.Duration(d)*time.Microsecond, fn)
		}
		e.Run()
	}
}

// TestScheduleFireAllocFree pins the pooling win down as a regression test:
// after warm-up, a schedule-and-fire cycle must not allocate.
func TestScheduleFireAllocFree(t *testing.T) {
	e := New(1)
	fn := func() {}
	// Warm up: grow the free list and the heap's backing array.
	for i := 0; i < 64; i++ {
		e.Schedule(time.Microsecond, fn)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		e.Schedule(time.Microsecond, fn)
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("schedule+fire allocates %.1f objects/op in steady state, want 0", avg)
	}
}

// TestCanceledNodeRecycledSafely is the pooling safety regression test for
// the cancel path: a canceled node re-enters the free list when its
// scheduled time passes, but the generation bump at reclaim must keep the
// stale handle inert — it can neither cancel nor observe the node's next
// occupant.
func TestCanceledNodeRecycledSafely(t *testing.T) {
	e := New(1)
	canceledFired := false
	ev := e.Schedule(time.Millisecond, func() { canceledFired = true })
	ev.Cancel()
	if !ev.Canceled() {
		t.Fatal("Canceled() = false while the canceled event is still queued")
	}
	e.Run()
	if canceledFired {
		t.Fatal("canceled event fired")
	}
	if ev.Canceled() {
		t.Fatal("stale handle still reports Canceled after its node was reclaimed")
	}

	// The node must now be reusable, and the stale handle must not be able
	// to touch whatever lands on it.
	fired := false
	ev2 := e.Schedule(time.Microsecond, func() { fired = true })
	if ev2.n != ev.n {
		t.Fatal("canceled node was not recycled (free list leak)")
	}
	ev.Cancel() // stale: generation mismatch, must be a no-op
	e.Run()
	if !fired {
		t.Fatal("stale Cancel leaked through to the recycled node's new event")
	}
}

// TestScheduleCancelAllocFree pins the cancel-recycling win: a
// schedule/cancel/drain loop — the shape of every rearmed sweep timer and
// Ticker.Stop — must run allocation-free once warm. Before reclaim-at-pop,
// each iteration leaked one eventNode (canceled nodes never re-entered the
// free list), so this test fails on the pre-fix engine.
func TestScheduleCancelAllocFree(t *testing.T) {
	e := New(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(time.Microsecond, fn)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		ev := e.Schedule(time.Microsecond, fn)
		ev.Cancel()
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("schedule+cancel allocates %.1f objects/op in steady state, want 0", avg)
	}
}

// TestStaleHandleAfterRecycle covers the other half of the generation
// check: a node recycled after a normal fire is reused by a later event,
// and the fired event's old handle must neither cancel nor observe it.
func TestStaleHandleAfterRecycle(t *testing.T) {
	e := New(1)
	ev1 := e.Schedule(time.Microsecond, func() {})
	e.Run()

	fired := false
	ev2 := e.Schedule(time.Microsecond, func() { fired = true })
	if ev2.n != ev1.n {
		t.Fatal("free list did not recycle the fired node (pooling broken)")
	}
	ev1.Cancel() // stale handle, generation mismatch: must be a no-op
	if ev1.Canceled() {
		t.Fatal("stale handle claims Canceled after its node was recycled")
	}
	e.Run()
	if !fired {
		t.Fatal("stale Cancel leaked through to the recycled node's new event")
	}
	if ev2.Canceled() {
		t.Fatal("live event reports Canceled")
	}
}

// TestTickerSteadyStateAllocFree verifies the ticker's rearm closure is
// allocated once, not per tick.
func TestTickerSteadyStateAllocFree(t *testing.T) {
	e := New(1)
	ticks := 0
	tk := e.Every(time.Millisecond, func() { ticks++ })
	e.RunUntil(10 * time.Millisecond) // warm-up
	avg := testing.AllocsPerRun(100, func() {
		e.RunUntil(e.Now() + time.Millisecond)
	})
	tk.Stop()
	if ticks == 0 {
		t.Fatal("ticker never fired")
	}
	if avg != 0 {
		t.Fatalf("ticker allocates %.1f objects/tick in steady state, want 0", avg)
	}
}
