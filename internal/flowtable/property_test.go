package flowtable

import (
	"math/rand"
	"testing"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
)

// randomMatch builds a random match over a small universe so collisions
// and wildcards are common.
func randomMatch(rng *rand.Rand) openflow.Match {
	var m openflow.Match
	if rng.Intn(2) == 0 {
		m.Fields |= openflow.FieldInPort
		m.InPort = uint32(rng.Intn(3) + 1)
	}
	if rng.Intn(2) == 0 {
		m.Fields |= openflow.FieldIPv4Src
		m.IPv4Src = netaddr.MakeIPv4(10, 0, 0, byte(rng.Intn(4)))
		if rng.Intn(2) == 0 {
			m.IPv4SrcMask = 0xffffff00
		}
	}
	if rng.Intn(2) == 0 {
		m.Fields |= openflow.FieldIPv4Dst
		m.IPv4Dst = netaddr.MakeIPv4(10, 0, 1, byte(rng.Intn(4)))
	}
	if rng.Intn(3) == 0 {
		m.Fields |= openflow.FieldIPProto
		m.IPProto = netaddr.ProtoTCP
	}
	if rng.Intn(3) == 0 {
		m.Fields |= openflow.FieldTCPDst
		m.TCPDst = uint16(80 + rng.Intn(2))
	}
	return m
}

func randomPacket(rng *rand.Rand) (*packet.Packet, uint32) {
	p := packet.NewTCP(
		netaddr.MakeIPv4(10, 0, 0, byte(rng.Intn(4))),
		netaddr.MakeIPv4(10, 0, 1, byte(rng.Intn(4))),
		uint16(1000+rng.Intn(4)), uint16(80+rng.Intn(2)), 0)
	return p, uint32(rng.Intn(3) + 1)
}

// TestLookupMatchesBruteForce cross-checks Table.Lookup against a direct
// scan respecting priority order: the table's internal ordering must never
// change which rule wins.
func TestLookupMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		tbl := &Table{}
		var rules []*Rule
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			r := &Rule{
				Priority: uint16(rng.Intn(5)),
				Match:    randomMatch(rng),
				Instructions: []openflow.Instruction{
					openflow.ApplyActions(openflow.OutputAction(uint32(i + 1))),
				},
			}
			if err := tbl.Insert(r); err != nil {
				t.Fatal(err)
			}
			// Mirror the table's replace-on-equal semantics.
			replaced := false
			for j, old := range rules {
				if old.Priority == r.Priority && old.Match.Equal(&r.Match) {
					rules[j] = r
					replaced = true
					break
				}
			}
			if !replaced {
				rules = append(rules, r)
			}
		}
		for probe := 0; probe < 50; probe++ {
			p, inPort := randomPacket(rng)
			got := tbl.Lookup(p, inPort)

			// Brute force: highest priority wins; FIFO within equal
			// priority (insertion order preserved by the mirror slice).
			var want *Rule
			for _, r := range rules {
				if !Matches(&r.Match, p, inPort) {
					continue
				}
				if want == nil || r.Priority > want.Priority {
					want = r
				}
			}
			if (got == nil) != (want == nil) {
				t.Fatalf("trial %d: lookup=%v brute=%v for %v in_port=%d",
					trial, got, want, p, inPort)
			}
			if got != nil && got.Priority != want.Priority {
				t.Fatalf("trial %d: lookup prio %d, brute prio %d",
					trial, got.Priority, want.Priority)
			}
			if got != nil && !Matches(&got.Match, p, inPort) {
				t.Fatalf("trial %d: lookup returned non-matching rule", trial)
			}
		}
	}
}

// TestExpireNeverReturnsLiveRules randomly ages rules and checks the
// expiry invariant: everything returned is expired, everything kept is
// not.
func TestExpireNeverReturnsLiveRules(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		tbl := &Table{}
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			m := randomMatch(rng)
			m.Fields |= openflow.FieldTCPSrc
			m.TCPSrc = uint16(i) // ensure distinct matches
			tbl.Insert(&Rule{
				Priority:    uint16(i),
				Match:       m,
				IdleTimeout: secs(rng.Intn(20)),
				HardTimeout: secs(rng.Intn(40)),
				Installed:   secs(rng.Intn(10)),
			})
		}
		now := secs(rng.Intn(60))
		expired, reasons := tbl.Expire(now)
		if len(expired) != len(reasons) {
			t.Fatal("reasons mismatch")
		}
		for _, r := range expired {
			if ok, _ := r.Expired(now); !ok {
				t.Fatalf("live rule expired: %+v now=%v", r, now)
			}
		}
		for _, r := range tbl.Rules() {
			if r.Installed <= now {
				if ok, _ := r.Expired(now); ok {
					t.Fatalf("expired rule kept: %+v now=%v", r, now)
				}
			}
		}
	}
}

func secs(n int) time.Duration { return time.Duration(n) * time.Second }
