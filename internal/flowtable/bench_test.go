package flowtable

import (
	"testing"

	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
)

// benchTable builds a table shaped like a reactive switch under load: many
// exact 5-tuple rules plus a handful of wildcard rules (table-miss and a
// subnet policy) below them.
func benchTable(exact int) *Table {
	tbl := &Table{}
	for i := 0; i < exact; i++ {
		k := netaddr.FlowKey{Src: netaddr.IPv4(i), Dst: srvIP, Proto: netaddr.ProtoTCP,
			SrcPort: uint16(i), DstPort: 80}
		tbl.Insert(exactRule(100, k, 1))
	}
	tbl.Insert(&Rule{
		Priority: 10,
		Match: openflow.Match{Fields: openflow.FieldEthType | openflow.FieldIPv4Dst,
			EthType: packet.EtherTypeIPv4, IPv4Dst: srvIP, IPv4DstMask: 0xffffff00},
		Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.OutputAction(2))},
	})
	tbl.Insert(&Rule{Priority: 0, Instructions: []openflow.Instruction{
		openflow.ApplyActions(openflow.ControllerAction())}})
	return tbl
}

// BenchmarkLookupHit measures an exact-rule hit in a 4096-rule table. The
// flow-key index makes this O(wildcard rules), not O(rules), and the match
// path performs no per-lookup allocation.
func BenchmarkLookupHit(b *testing.B) {
	tbl := benchTable(4096)
	p := packet.NewTCP(netaddr.IPv4(999), srvIP, 999, 80, packet.FlagSYN)
	if r := tbl.Lookup(p, 1); r == nil || r.Priority != 100 {
		b.Fatal("expected exact-rule hit")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(p, 1)
	}
}

// BenchmarkLookupMiss measures a packet with no exact rule: it falls
// through the index to the wildcard scan and lands on the table-miss rule.
func BenchmarkLookupMiss(b *testing.B) {
	tbl := benchTable(4096)
	p := packet.NewTCP(cliIP, netaddr.MakeIPv4(192, 168, 9, 9), 4242, 443, packet.FlagSYN)
	if r := tbl.Lookup(p, 1); r == nil || r.Priority != 0 {
		b.Fatal("expected table-miss rule")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(p, 1)
	}
}

// TestLookupAllocFree pins the hot path down: neither a hit nor a miss may
// allocate. A regression here (e.g. a match helper escaping to the heap)
// multiplies across every simulated packet.
func TestLookupAllocFree(t *testing.T) {
	tbl := benchTable(1024)
	hit := packet.NewTCP(netaddr.IPv4(7), srvIP, 7, 80, packet.FlagSYN)
	miss := packet.NewTCP(cliIP, netaddr.MakeIPv4(192, 168, 9, 9), 4242, 443, packet.FlagSYN)
	for name, p := range map[string]*packet.Packet{"hit": hit, "miss": miss} {
		p := p
		if avg := testing.AllocsPerRun(500, func() { tbl.Lookup(p, 1) }); avg != 0 {
			t.Errorf("Lookup(%s) allocates %.1f objects/op, want 0", name, avg)
		}
	}
}
