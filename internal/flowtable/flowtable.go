package flowtable

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

// ErrTableFull is returned by Insert when the table is at capacity; the
// switch reports it to the controller as OFPFMFC_TABLE_FULL.
var ErrTableFull = errors.New("flowtable: table full")

// Rule is one installed flow entry.
type Rule struct {
	TableID      uint8
	Priority     uint16
	Match        openflow.Match
	Instructions []openflow.Instruction
	IdleTimeout  time.Duration // 0 = never expires
	HardTimeout  time.Duration
	Cookie       uint64
	Flags        uint16

	Packets, Bytes uint64
	Installed      sim.Time
	LastHit        sim.Time

	seq uint64 // table insertion order, for FIFO tie-breaks within a priority
}

// Expired reports whether the rule has timed out at virtual time now and,
// if so, with which flow-removed reason.
func (r *Rule) Expired(now sim.Time) (bool, uint8) {
	if r.HardTimeout > 0 && now-r.Installed >= r.HardTimeout {
		return true, openflow.RemovedHardTimeout
	}
	if r.IdleTimeout > 0 {
		ref := r.LastHit
		if ref < r.Installed {
			ref = r.Installed
		}
		if now-ref >= r.IdleTimeout {
			return true, openflow.RemovedIdleTimeout
		}
	}
	return false, 0
}

func (r *Rule) hit(p *packet.Packet, now sim.Time) {
	r.Packets++
	r.Bytes += uint64(p.Size)
	r.LastHit = now
}

// Matches reports whether match m selects packet p arriving on inPort.
// Field semantics follow OpenFlow 1.3: transport ports require the
// corresponding IP protocol, the MPLS label matches the outermost stack
// entry, and tunnel_id matches the packet's decapsulation metadata.
func Matches(m *openflow.Match, p *packet.Packet, inPort uint32) bool {
	f := m.Fields
	if f.Has(openflow.FieldInPort) && m.InPort != inPort {
		return false
	}
	if f.Has(openflow.FieldEthType) && m.EthType != p.Eth.EtherType {
		return false
	}
	if f.Has(openflow.FieldMPLSLabel) {
		if len(p.MPLS) == 0 || p.MPLS[0].Label != m.MPLSLabel {
			return false
		}
	}
	if f.Has(openflow.FieldTunnelID) && m.TunnelID != p.Meta.TunnelID {
		return false
	}
	// IP and transport fields match the innermost (post-decap) headers.
	if f.Has(openflow.FieldIPProto) && m.IPProto != p.IP.Protocol {
		return false
	}
	if f.Has(openflow.FieldIPv4Src) && !p.IP.Src.In(m.IPv4Src, effMask(m.IPv4SrcMask)) {
		return false
	}
	if f.Has(openflow.FieldIPv4Dst) && !p.IP.Dst.In(m.IPv4Dst, effMask(m.IPv4DstMask)) {
		return false
	}
	if f.Has(openflow.FieldTCPSrc) {
		if p.IP.Protocol != netaddr.ProtoTCP || p.TCP == nil || p.TCP.SrcPort != m.TCPSrc {
			return false
		}
	}
	if f.Has(openflow.FieldTCPDst) {
		if p.IP.Protocol != netaddr.ProtoTCP || p.TCP == nil || p.TCP.DstPort != m.TCPDst {
			return false
		}
	}
	if f.Has(openflow.FieldUDPSrc) {
		if p.IP.Protocol != netaddr.ProtoUDP || p.UDP == nil || p.UDP.SrcPort != m.UDPSrc {
			return false
		}
	}
	if f.Has(openflow.FieldUDPDst) {
		if p.IP.Protocol != netaddr.ProtoUDP || p.UDP == nil || p.UDP.DstPort != m.UDPDst {
			return false
		}
	}
	return true
}

func effMask(m uint32) uint32 {
	if m == 0 {
		return 0xffffffff
	}
	return m
}

// ExactMatch builds the exact 5-tuple match for a packet's flow, the rule
// shape reactive forwarding installs.
func ExactMatch(k netaddr.FlowKey) openflow.Match {
	m := openflow.Match{
		Fields:  openflow.FieldEthType | openflow.FieldIPProto | openflow.FieldIPv4Src | openflow.FieldIPv4Dst,
		EthType: packet.EtherTypeIPv4,
		IPProto: k.Proto,
		IPv4Src: k.Src,
		IPv4Dst: k.Dst,
	}
	switch k.Proto {
	case netaddr.ProtoTCP:
		m.Fields |= openflow.FieldTCPSrc | openflow.FieldTCPDst
		m.TCPSrc, m.TCPDst = k.SrcPort, k.DstPort
	case netaddr.ProtoUDP:
		m.Fields |= openflow.FieldUDPSrc | openflow.FieldUDPDst
		m.UDPSrc, m.UDPDst = k.SrcPort, k.DstPort
	}
	return m
}

// Table is a single flow table: rules ordered by priority (descending),
// FIFO within equal priority.
//
// Reactive forwarding installs overwhelmingly exact 5-tuple rules, so the
// table keeps a hash index from flow key to the winning exact rule beside
// the ordered slice. Lookup consults the index and only scans the (few)
// wildcard rules, turning the common case from O(rules) into O(wildcards).
type Table struct {
	ID       uint8
	Capacity int // maximum number of rules; 0 means unlimited
	rules    []*Rule

	seq   uint64                    // insertion counter for FIFO tie-breaks
	exact map[netaddr.FlowKey]*Rule // winning exact 5-tuple rule per flow
	wild  []*Rule                   // non-exact rules, same sort order as rules
}

// Len returns the number of installed rules.
func (t *Table) Len() int { return len(t.rules) }

// Rules returns the rules in match order. The slice is shared; callers
// must not modify it.
func (t *Table) Rules() []*Rule { return t.rules }

// exactKey reports whether m is an exact 5-tuple match — the shape
// ExactMatch builds: EthType=IPv4, protocol, unmasked src/dst addresses,
// and both transport ports when the protocol has them — and returns the
// flow key it selects.
func exactKey(m *openflow.Match) (netaddr.FlowKey, bool) {
	const base = openflow.FieldEthType | openflow.FieldIPProto | openflow.FieldIPv4Src | openflow.FieldIPv4Dst
	switch m.Fields {
	case base:
		if m.IPProto == netaddr.ProtoTCP || m.IPProto == netaddr.ProtoUDP {
			return netaddr.FlowKey{}, false // port-wildcard rule
		}
	case base | openflow.FieldTCPSrc | openflow.FieldTCPDst:
		if m.IPProto != netaddr.ProtoTCP {
			return netaddr.FlowKey{}, false
		}
	case base | openflow.FieldUDPSrc | openflow.FieldUDPDst:
		if m.IPProto != netaddr.ProtoUDP {
			return netaddr.FlowKey{}, false
		}
	default:
		return netaddr.FlowKey{}, false
	}
	if m.EthType != packet.EtherTypeIPv4 {
		return netaddr.FlowKey{}, false
	}
	if effMask(m.IPv4SrcMask) != 0xffffffff || effMask(m.IPv4DstMask) != 0xffffffff {
		return netaddr.FlowKey{}, false
	}
	k := netaddr.FlowKey{Src: m.IPv4Src, Dst: m.IPv4Dst, Proto: m.IPProto}
	switch m.IPProto {
	case netaddr.ProtoTCP:
		k.SrcPort, k.DstPort = m.TCPSrc, m.TCPDst
	case netaddr.ProtoUDP:
		k.SrcPort, k.DstPort = m.UDPSrc, m.UDPDst
	}
	return k, true
}

// indexInsert places an already-ordered rule into the exact index or the
// wildcard slice.
func (t *Table) indexInsert(r *Rule) {
	if key, ok := exactKey(&r.Match); ok {
		if t.exact == nil {
			t.exact = make(map[netaddr.FlowKey]*Rule)
		}
		// Two exact rules may share a key at different priorities (equal
		// priority would have replaced); the index holds the winner.
		if cur := t.exact[key]; cur == nil || r.Priority > cur.Priority {
			t.exact[key] = r
		}
		return
	}
	i := sort.Search(len(t.wild), func(i int) bool {
		return t.wild[i].Priority < r.Priority ||
			(t.wild[i].Priority == r.Priority && t.wild[i].seq > r.seq)
	})
	t.wild = append(t.wild, nil)
	copy(t.wild[i+1:], t.wild[i:])
	t.wild[i] = r
}

// reindex rebuilds the exact/wildcard indexes from the rules slice; called
// after bulk removals, which are rare relative to lookups.
func (t *Table) reindex() {
	t.exact = nil
	t.wild = t.wild[:0]
	for _, r := range t.rules {
		t.indexInsert(r)
	}
}

// Insert adds a rule. A rule with an identical match and priority replaces
// the existing entry (OpenFlow add semantics) without consuming extra
// capacity. Returns ErrTableFull when at capacity.
func (t *Table) Insert(r *Rule) error {
	r.TableID = t.ID
	for i, old := range t.rules {
		if old.Priority == r.Priority && old.Match.Equal(&r.Match) {
			r.seq = old.seq
			t.rules[i] = r
			t.replaceIndexed(old, r)
			return nil
		}
	}
	if t.Capacity > 0 && len(t.rules) >= t.Capacity {
		return ErrTableFull
	}
	t.seq++
	r.seq = t.seq
	// Insert after all rules with priority >= r.Priority to keep FIFO
	// order within a priority level.
	i := sort.Search(len(t.rules), func(i int) bool {
		return t.rules[i].Priority < r.Priority
	})
	t.rules = append(t.rules, nil)
	copy(t.rules[i+1:], t.rules[i:])
	t.rules[i] = r
	t.indexInsert(r)
	return nil
}

// replaceIndexed swaps old for r (same match and priority) in whichever
// index holds old.
func (t *Table) replaceIndexed(old, r *Rule) {
	if key, ok := exactKey(&r.Match); ok {
		if t.exact[key] == old {
			t.exact[key] = r
		}
		return
	}
	for i, w := range t.wild {
		if w == old {
			t.wild[i] = r
			return
		}
	}
}

// exactEligible reports whether the packet can hit the exact index: a plain
// (or GRE-decap-transparent) IPv4 packet whose transport header agrees with
// its protocol. Anything else — MPLS-tagged frames, malformed transports —
// falls back to the ordered scan of all rules.
func exactEligible(p *packet.Packet) bool {
	if p.Eth.EtherType != packet.EtherTypeIPv4 {
		return false
	}
	switch p.IP.Protocol {
	case netaddr.ProtoTCP:
		return p.TCP != nil
	case netaddr.ProtoUDP:
		return p.UDP != nil
	}
	return true
}

// Lookup returns the highest-priority rule matching the packet, or nil on
// table miss. Counters are not updated; the pipeline does that once per
// processed packet.
func (t *Table) Lookup(p *packet.Packet, inPort uint32) *Rule {
	if len(t.exact) == 0 || !exactEligible(p) {
		for _, r := range t.rules {
			if Matches(&r.Match, p, inPort) {
				return r
			}
		}
		return nil
	}
	re := t.exact[p.FlowKey()]
	// Scan wildcards in match order; stop once the exact hit outranks the
	// remaining wildcards (higher priority, or FIFO-earlier at equal
	// priority), exactly reproducing the full ordered scan's winner.
	for _, w := range t.wild {
		if re != nil && (w.Priority < re.Priority ||
			(w.Priority == re.Priority && w.seq > re.seq)) {
			return re
		}
		if Matches(&w.Match, p, inPort) {
			return w
		}
	}
	return re
}

// Delete removes rules. With strict set, only the rule with exactly the
// given match and priority is removed; otherwise every rule whose match
// equals m is removed regardless of priority. Removed rules are returned
// so the switch can emit flow-removed notifications.
func (t *Table) Delete(m *openflow.Match, priority uint16, strict bool) []*Rule {
	var removed []*Rule
	keep := t.rules[:0]
	for _, r := range t.rules {
		del := r.Match.Equal(m) && (!strict || r.Priority == priority)
		if del {
			removed = append(removed, r)
		} else {
			keep = append(keep, r)
		}
	}
	t.rules = keep
	if len(removed) > 0 {
		t.reindex()
	}
	return removed
}

// DeleteWhere removes every rule for which fn returns true.
func (t *Table) DeleteWhere(fn func(*Rule) bool) []*Rule {
	var removed []*Rule
	keep := t.rules[:0]
	for _, r := range t.rules {
		if fn(r) {
			removed = append(removed, r)
		} else {
			keep = append(keep, r)
		}
	}
	t.rules = keep
	if len(removed) > 0 {
		t.reindex()
	}
	return removed
}

// Expire removes timed-out rules at virtual time now, returning them
// paired with their removal reasons.
func (t *Table) Expire(now sim.Time) ([]*Rule, []uint8) {
	var rules []*Rule
	var reasons []uint8
	keep := t.rules[:0]
	for _, r := range t.rules {
		if exp, reason := r.Expired(now); exp {
			rules = append(rules, r)
			reasons = append(reasons, reason)
		} else {
			keep = append(keep, r)
		}
	}
	t.rules = keep
	if len(rules) > 0 {
		t.reindex()
	}
	return rules, reasons
}

// Group is one group-table entry.
type Group struct {
	ID      uint32
	Type    uint8 // openflow.GroupTypeSelect or GroupTypeAll
	Buckets []openflow.Bucket
}

// SelectBucket picks the bucket for a flow hash (select semantics). It
// returns nil when the group has no buckets.
func (g *Group) SelectBucket(flowHash uint64) *openflow.Bucket {
	if len(g.Buckets) == 0 {
		return nil
	}
	// Weighted selection: hash chooses a point in the total weight space.
	var total uint64
	for i := range g.Buckets {
		w := uint64(g.Buckets[i].Weight)
		if w == 0 {
			w = 1
		}
		total += w
	}
	point := flowHash % total
	for i := range g.Buckets {
		w := uint64(g.Buckets[i].Weight)
		if w == 0 {
			w = 1
		}
		if point < w {
			return &g.Buckets[i]
		}
		point -= w
	}
	return &g.Buckets[len(g.Buckets)-1]
}

// GroupTable holds a switch's groups.
type GroupTable struct {
	groups map[uint32]*Group
}

// NewGroupTable returns an empty group table.
func NewGroupTable() *GroupTable {
	return &GroupTable{groups: make(map[uint32]*Group)}
}

// Apply executes a GroupMod.
func (gt *GroupTable) Apply(m *openflow.GroupMod) error {
	switch m.Command {
	case openflow.GroupAdd:
		if _, ok := gt.groups[m.GroupID]; ok {
			return fmt.Errorf("flowtable: group %d exists", m.GroupID)
		}
		gt.groups[m.GroupID] = &Group{ID: m.GroupID, Type: m.GroupType, Buckets: m.Buckets}
	case openflow.GroupModify:
		g, ok := gt.groups[m.GroupID]
		if !ok {
			return fmt.Errorf("flowtable: group %d unknown", m.GroupID)
		}
		g.Type = m.GroupType
		g.Buckets = m.Buckets
	case openflow.GroupDelete:
		delete(gt.groups, m.GroupID)
	default:
		return fmt.Errorf("flowtable: unknown group command %d", m.Command)
	}
	return nil
}

// Get returns the group with the given id, or nil.
func (gt *GroupTable) Get(id uint32) *Group { return gt.groups[id] }

// Len returns the number of groups.
func (gt *GroupTable) Len() int { return len(gt.groups) }

// Pipeline is the multi-table match pipeline of one switch.
type Pipeline struct {
	Tables []*Table
	Groups *GroupTable

	// mergeScratch backs the merged action list of multi-table hits, so a
	// two-table pipeline (the vSwitch shape) merges without allocating.
	// The returned Result.Actions may alias it: callers must finish with
	// one Process result before the next call (the simulated switch runs
	// its pipeline on a single lane; concurrent users must copy).
	mergeScratch []openflow.Action
}

// NewPipeline creates a pipeline with n tables of the given capacity each
// (0 = unlimited).
func NewPipeline(n int, capacity int) *Pipeline {
	pl := &Pipeline{Groups: NewGroupTable()}
	for i := 0; i < n; i++ {
		pl.Tables = append(pl.Tables, &Table{ID: uint8(i), Capacity: capacity})
	}
	return pl
}

// Table returns table id, or nil if out of range.
func (pl *Pipeline) Table(id uint8) *Table {
	if int(id) >= len(pl.Tables) {
		return nil
	}
	return pl.Tables[id]
}

// Result is the outcome of pipeline processing for one packet.
type Result struct {
	// Actions is the ordered list of apply-actions accumulated across the
	// pipeline. Empty with Miss=false means "matched, drop". In the common
	// single-apply-actions case the slice aliases the rule's instruction
	// storage to avoid a per-packet allocation; callers must treat it as
	// read-only.
	Actions []openflow.Action
	// Miss is true when some traversed table had no matching rule; the
	// packet is subject to the switch's table-miss behaviour (Packet-In).
	Miss bool
	// MissTable is the table at which the miss occurred.
	MissTable uint8
	// Rule is the last rule that matched (nil on first-table miss).
	Rule *Rule
}

// Process runs the packet through the pipeline starting at table 0,
// updating rule counters.
func (pl *Pipeline) Process(p *packet.Packet, inPort uint32, now sim.Time) Result {
	var res Result
	aliased := false
	table := uint8(0)
	for hop := 0; hop <= len(pl.Tables); hop++ {
		t := pl.Table(table)
		if t == nil {
			return res
		}
		r := t.Lookup(p, inPort)
		if r == nil {
			res.Miss = true
			res.MissTable = table
			return res
		}
		r.hit(p, now)
		res.Rule = r
		next := -1
		for i := range r.Instructions {
			in := &r.Instructions[i]
			switch in.Type {
			case openflow.InstrApplyActions:
				switch {
				case res.Actions == nil:
					// Alias the rule's own action list; appending to it
					// below always reallocates first (aliased == true).
					res.Actions = in.Actions
					aliased = true
				case aliased:
					merged := append(pl.mergeScratch[:0], res.Actions...)
					res.Actions = append(merged, in.Actions...)
					pl.mergeScratch = res.Actions
					aliased = false
				default:
					res.Actions = append(res.Actions, in.Actions...)
					pl.mergeScratch = res.Actions
				}
			case openflow.InstrGotoTable:
				next = int(in.TableID)
			}
		}
		if next < 0 {
			return res
		}
		if uint8(next) <= table {
			// Goto must move forward; treat as drop to avoid loops.
			return Result{Rule: r}
		}
		table = uint8(next)
	}
	return res
}
