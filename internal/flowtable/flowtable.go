// Package flowtable implements the OpenFlow switch pipeline state: flow
// tables with priority matching, masks, timeouts, counters and a capacity
// limit (modelling finite TCAM), plus the group table with select
// (flow-hash ECMP) semantics that Scotch uses for load balancing across the
// vSwitch mesh.
package flowtable

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

// ErrTableFull is returned by Insert when the table is at capacity; the
// switch reports it to the controller as OFPFMFC_TABLE_FULL.
var ErrTableFull = errors.New("flowtable: table full")

// Rule is one installed flow entry.
type Rule struct {
	TableID      uint8
	Priority     uint16
	Match        openflow.Match
	Instructions []openflow.Instruction
	IdleTimeout  time.Duration // 0 = never expires
	HardTimeout  time.Duration
	Cookie       uint64
	Flags        uint16

	Packets, Bytes uint64
	Installed      sim.Time
	LastHit        sim.Time
}

// Expired reports whether the rule has timed out at virtual time now and,
// if so, with which flow-removed reason.
func (r *Rule) Expired(now sim.Time) (bool, uint8) {
	if r.HardTimeout > 0 && now-r.Installed >= r.HardTimeout {
		return true, openflow.RemovedHardTimeout
	}
	if r.IdleTimeout > 0 {
		ref := r.LastHit
		if ref < r.Installed {
			ref = r.Installed
		}
		if now-ref >= r.IdleTimeout {
			return true, openflow.RemovedIdleTimeout
		}
	}
	return false, 0
}

func (r *Rule) hit(p *packet.Packet, now sim.Time) {
	r.Packets++
	r.Bytes += uint64(p.Size)
	r.LastHit = now
}

// Matches reports whether match m selects packet p arriving on inPort.
// Field semantics follow OpenFlow 1.3: transport ports require the
// corresponding IP protocol, the MPLS label matches the outermost stack
// entry, and tunnel_id matches the packet's decapsulation metadata.
func Matches(m *openflow.Match, p *packet.Packet, inPort uint32) bool {
	f := m.Fields
	if f.Has(openflow.FieldInPort) && m.InPort != inPort {
		return false
	}
	if f.Has(openflow.FieldEthType) && m.EthType != p.Eth.EtherType {
		return false
	}
	if f.Has(openflow.FieldMPLSLabel) {
		if len(p.MPLS) == 0 || p.MPLS[0].Label != m.MPLSLabel {
			return false
		}
	}
	if f.Has(openflow.FieldTunnelID) && m.TunnelID != p.Meta.TunnelID {
		return false
	}
	// IP and transport fields match the innermost (post-decap) headers.
	if f.Has(openflow.FieldIPProto) && m.IPProto != p.IP.Protocol {
		return false
	}
	if f.Has(openflow.FieldIPv4Src) && !p.IP.Src.In(m.IPv4Src, effMask(m.IPv4SrcMask)) {
		return false
	}
	if f.Has(openflow.FieldIPv4Dst) && !p.IP.Dst.In(m.IPv4Dst, effMask(m.IPv4DstMask)) {
		return false
	}
	if f.Has(openflow.FieldTCPSrc) {
		if p.IP.Protocol != netaddr.ProtoTCP || p.TCP == nil || p.TCP.SrcPort != m.TCPSrc {
			return false
		}
	}
	if f.Has(openflow.FieldTCPDst) {
		if p.IP.Protocol != netaddr.ProtoTCP || p.TCP == nil || p.TCP.DstPort != m.TCPDst {
			return false
		}
	}
	if f.Has(openflow.FieldUDPSrc) {
		if p.IP.Protocol != netaddr.ProtoUDP || p.UDP == nil || p.UDP.SrcPort != m.UDPSrc {
			return false
		}
	}
	if f.Has(openflow.FieldUDPDst) {
		if p.IP.Protocol != netaddr.ProtoUDP || p.UDP == nil || p.UDP.DstPort != m.UDPDst {
			return false
		}
	}
	return true
}

func effMask(m uint32) uint32 {
	if m == 0 {
		return 0xffffffff
	}
	return m
}

// ExactMatch builds the exact 5-tuple match for a packet's flow, the rule
// shape reactive forwarding installs.
func ExactMatch(k netaddr.FlowKey) openflow.Match {
	m := openflow.Match{
		Fields:  openflow.FieldEthType | openflow.FieldIPProto | openflow.FieldIPv4Src | openflow.FieldIPv4Dst,
		EthType: packet.EtherTypeIPv4,
		IPProto: k.Proto,
		IPv4Src: k.Src,
		IPv4Dst: k.Dst,
	}
	switch k.Proto {
	case netaddr.ProtoTCP:
		m.Fields |= openflow.FieldTCPSrc | openflow.FieldTCPDst
		m.TCPSrc, m.TCPDst = k.SrcPort, k.DstPort
	case netaddr.ProtoUDP:
		m.Fields |= openflow.FieldUDPSrc | openflow.FieldUDPDst
		m.UDPSrc, m.UDPDst = k.SrcPort, k.DstPort
	}
	return m
}

// Table is a single flow table: rules ordered by priority (descending),
// FIFO within equal priority.
type Table struct {
	ID       uint8
	Capacity int // maximum number of rules; 0 means unlimited
	rules    []*Rule
}

// Len returns the number of installed rules.
func (t *Table) Len() int { return len(t.rules) }

// Rules returns the rules in match order. The slice is shared; callers
// must not modify it.
func (t *Table) Rules() []*Rule { return t.rules }

// Insert adds a rule. A rule with an identical match and priority replaces
// the existing entry (OpenFlow add semantics) without consuming extra
// capacity. Returns ErrTableFull when at capacity.
func (t *Table) Insert(r *Rule) error {
	r.TableID = t.ID
	for i, old := range t.rules {
		if old.Priority == r.Priority && old.Match.Equal(&r.Match) {
			t.rules[i] = r
			return nil
		}
	}
	if t.Capacity > 0 && len(t.rules) >= t.Capacity {
		return ErrTableFull
	}
	// Insert after all rules with priority >= r.Priority to keep FIFO
	// order within a priority level.
	i := sort.Search(len(t.rules), func(i int) bool {
		return t.rules[i].Priority < r.Priority
	})
	t.rules = append(t.rules, nil)
	copy(t.rules[i+1:], t.rules[i:])
	t.rules[i] = r
	return nil
}

// Lookup returns the highest-priority rule matching the packet, or nil on
// table miss. Counters are not updated; the pipeline does that once per
// processed packet.
func (t *Table) Lookup(p *packet.Packet, inPort uint32) *Rule {
	for _, r := range t.rules {
		if Matches(&r.Match, p, inPort) {
			return r
		}
	}
	return nil
}

// Delete removes rules. With strict set, only the rule with exactly the
// given match and priority is removed; otherwise every rule whose match
// equals m is removed regardless of priority. Removed rules are returned
// so the switch can emit flow-removed notifications.
func (t *Table) Delete(m *openflow.Match, priority uint16, strict bool) []*Rule {
	var removed []*Rule
	keep := t.rules[:0]
	for _, r := range t.rules {
		del := r.Match.Equal(m) && (!strict || r.Priority == priority)
		if del {
			removed = append(removed, r)
		} else {
			keep = append(keep, r)
		}
	}
	t.rules = keep
	return removed
}

// DeleteWhere removes every rule for which fn returns true.
func (t *Table) DeleteWhere(fn func(*Rule) bool) []*Rule {
	var removed []*Rule
	keep := t.rules[:0]
	for _, r := range t.rules {
		if fn(r) {
			removed = append(removed, r)
		} else {
			keep = append(keep, r)
		}
	}
	t.rules = keep
	return removed
}

// Expire removes timed-out rules at virtual time now, returning them
// paired with their removal reasons.
func (t *Table) Expire(now sim.Time) ([]*Rule, []uint8) {
	var rules []*Rule
	var reasons []uint8
	keep := t.rules[:0]
	for _, r := range t.rules {
		if exp, reason := r.Expired(now); exp {
			rules = append(rules, r)
			reasons = append(reasons, reason)
		} else {
			keep = append(keep, r)
		}
	}
	t.rules = keep
	return rules, reasons
}

// Group is one group-table entry.
type Group struct {
	ID      uint32
	Type    uint8 // openflow.GroupTypeSelect or GroupTypeAll
	Buckets []openflow.Bucket
}

// SelectBucket picks the bucket for a flow hash (select semantics). It
// returns nil when the group has no buckets.
func (g *Group) SelectBucket(flowHash uint64) *openflow.Bucket {
	if len(g.Buckets) == 0 {
		return nil
	}
	// Weighted selection: hash chooses a point in the total weight space.
	var total uint64
	for i := range g.Buckets {
		w := uint64(g.Buckets[i].Weight)
		if w == 0 {
			w = 1
		}
		total += w
	}
	point := flowHash % total
	for i := range g.Buckets {
		w := uint64(g.Buckets[i].Weight)
		if w == 0 {
			w = 1
		}
		if point < w {
			return &g.Buckets[i]
		}
		point -= w
	}
	return &g.Buckets[len(g.Buckets)-1]
}

// GroupTable holds a switch's groups.
type GroupTable struct {
	groups map[uint32]*Group
}

// NewGroupTable returns an empty group table.
func NewGroupTable() *GroupTable {
	return &GroupTable{groups: make(map[uint32]*Group)}
}

// Apply executes a GroupMod.
func (gt *GroupTable) Apply(m *openflow.GroupMod) error {
	switch m.Command {
	case openflow.GroupAdd:
		if _, ok := gt.groups[m.GroupID]; ok {
			return fmt.Errorf("flowtable: group %d exists", m.GroupID)
		}
		gt.groups[m.GroupID] = &Group{ID: m.GroupID, Type: m.GroupType, Buckets: m.Buckets}
	case openflow.GroupModify:
		g, ok := gt.groups[m.GroupID]
		if !ok {
			return fmt.Errorf("flowtable: group %d unknown", m.GroupID)
		}
		g.Type = m.GroupType
		g.Buckets = m.Buckets
	case openflow.GroupDelete:
		delete(gt.groups, m.GroupID)
	default:
		return fmt.Errorf("flowtable: unknown group command %d", m.Command)
	}
	return nil
}

// Get returns the group with the given id, or nil.
func (gt *GroupTable) Get(id uint32) *Group { return gt.groups[id] }

// Len returns the number of groups.
func (gt *GroupTable) Len() int { return len(gt.groups) }

// Pipeline is the multi-table match pipeline of one switch.
type Pipeline struct {
	Tables []*Table
	Groups *GroupTable
}

// NewPipeline creates a pipeline with n tables of the given capacity each
// (0 = unlimited).
func NewPipeline(n int, capacity int) *Pipeline {
	pl := &Pipeline{Groups: NewGroupTable()}
	for i := 0; i < n; i++ {
		pl.Tables = append(pl.Tables, &Table{ID: uint8(i), Capacity: capacity})
	}
	return pl
}

// Table returns table id, or nil if out of range.
func (pl *Pipeline) Table(id uint8) *Table {
	if int(id) >= len(pl.Tables) {
		return nil
	}
	return pl.Tables[id]
}

// Result is the outcome of pipeline processing for one packet.
type Result struct {
	// Actions is the ordered list of apply-actions accumulated across the
	// pipeline. Empty with Miss=false means "matched, drop".
	Actions []openflow.Action
	// Miss is true when some traversed table had no matching rule; the
	// packet is subject to the switch's table-miss behaviour (Packet-In).
	Miss bool
	// MissTable is the table at which the miss occurred.
	MissTable uint8
	// Rule is the last rule that matched (nil on first-table miss).
	Rule *Rule
}

// Process runs the packet through the pipeline starting at table 0,
// updating rule counters.
func (pl *Pipeline) Process(p *packet.Packet, inPort uint32, now sim.Time) Result {
	var res Result
	table := uint8(0)
	for hop := 0; hop <= len(pl.Tables); hop++ {
		t := pl.Table(table)
		if t == nil {
			return res
		}
		r := t.Lookup(p, inPort)
		if r == nil {
			res.Miss = true
			res.MissTable = table
			return res
		}
		r.hit(p, now)
		res.Rule = r
		next := -1
		for i := range r.Instructions {
			in := &r.Instructions[i]
			switch in.Type {
			case openflow.InstrApplyActions:
				res.Actions = append(res.Actions, in.Actions...)
			case openflow.InstrGotoTable:
				next = int(in.TableID)
			}
		}
		if next < 0 {
			return res
		}
		if uint8(next) <= table {
			// Goto must move forward; treat as drop to avoid loops.
			return Result{Rule: r}
		}
		table = uint8(next)
	}
	return res
}
