package flowtable

import (
	"testing"
	"testing/quick"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
)

var (
	cliIP = netaddr.MakeIPv4(10, 0, 0, 1)
	srvIP = netaddr.MakeIPv4(10, 0, 1, 1)
)

func tcpPkt(srcPort, dstPort uint16) *packet.Packet {
	return packet.NewTCP(cliIP, srvIP, srcPort, dstPort, packet.FlagSYN)
}

func exactRule(prio uint16, k netaddr.FlowKey, port uint32) *Rule {
	return &Rule{
		Priority:     prio,
		Match:        ExactMatch(k),
		Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.OutputAction(port))},
	}
}

func TestMatchesExact(t *testing.T) {
	p := tcpPkt(1000, 80)
	m := ExactMatch(p.FlowKey())
	if !Matches(&m, p, 1) {
		t.Fatal("exact match missed its own packet")
	}
	other := tcpPkt(1001, 80)
	if Matches(&m, other, 1) {
		t.Fatal("exact match hit a different flow")
	}
}

func TestMatchesWildcardAndMask(t *testing.T) {
	var any openflow.Match
	p := tcpPkt(1, 2)
	if !Matches(&any, p, 7) {
		t.Fatal("empty match did not match")
	}

	subnet := openflow.Match{
		Fields:      openflow.FieldIPv4Dst,
		IPv4Dst:     netaddr.MakeIPv4(10, 0, 1, 0),
		IPv4DstMask: 0xffffff00,
	}
	if !Matches(&subnet, p, 1) {
		t.Fatal("/24 match missed in-subnet packet")
	}
	p2 := packet.NewTCP(cliIP, netaddr.MakeIPv4(10, 0, 2, 1), 1, 2, 0)
	if Matches(&subnet, p2, 1) {
		t.Fatal("/24 match hit out-of-subnet packet")
	}
}

func TestMatchesInPortAndTunnel(t *testing.T) {
	p := tcpPkt(5, 6)
	m := openflow.Match{Fields: openflow.FieldInPort, InPort: 3}
	if !Matches(&m, p, 3) || Matches(&m, p, 4) {
		t.Fatal("in_port semantics wrong")
	}
	p.Meta.TunnelID = 99
	mt := openflow.Match{Fields: openflow.FieldTunnelID, TunnelID: 99}
	if !Matches(&mt, p, 1) {
		t.Fatal("tunnel_id did not match metadata")
	}
	mt.TunnelID = 98
	if Matches(&mt, p, 1) {
		t.Fatal("tunnel_id matched wrong value")
	}
}

func TestMatchesMPLSAndProtoGuards(t *testing.T) {
	p := tcpPkt(5, 6)
	p.PushMPLS(77)
	m := openflow.Match{Fields: openflow.FieldMPLSLabel, MPLSLabel: 77}
	if !Matches(&m, p, 1) {
		t.Fatal("MPLS label missed")
	}
	m.MPLSLabel = 78
	if Matches(&m, p, 1) {
		t.Fatal("wrong MPLS label matched")
	}
	// A UDP port match must not hit a TCP packet.
	udp := openflow.Match{Fields: openflow.FieldUDPDst, UDPDst: 6}
	if Matches(&udp, p, 1) {
		t.Fatal("udp_dst matched a TCP packet")
	}
}

func TestTablePriorityOrder(t *testing.T) {
	tbl := &Table{}
	p := tcpPkt(1000, 80)
	low := &Rule{Priority: 1, Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.OutputAction(1))}}
	high := exactRule(100, p.FlowKey(), 2)
	if err := tbl.Insert(low); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(high); err != nil {
		t.Fatal(err)
	}
	got := tbl.Lookup(p, 1)
	if got != high {
		t.Fatalf("Lookup returned priority %d, want 100", got.Priority)
	}
	// A non-matching packet falls to the wildcard rule.
	if got := tbl.Lookup(tcpPkt(9, 9), 1); got != low {
		t.Fatal("wildcard rule not hit")
	}
}

func TestTableReplaceSamePriorityMatch(t *testing.T) {
	tbl := &Table{Capacity: 1}
	p := tcpPkt(1, 2)
	r1 := exactRule(5, p.FlowKey(), 1)
	r2 := exactRule(5, p.FlowKey(), 2)
	if err := tbl.Insert(r1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(r2); err != nil {
		t.Fatalf("replacement rejected: %v", err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d after replace, want 1", tbl.Len())
	}
	if tbl.Lookup(p, 1) != r2 {
		t.Fatal("replacement not effective")
	}
}

func TestTableCapacity(t *testing.T) {
	tbl := &Table{Capacity: 2}
	for i := 0; i < 2; i++ {
		k := netaddr.FlowKey{Src: cliIP, Dst: srvIP, Proto: netaddr.ProtoTCP, SrcPort: uint16(i), DstPort: 80}
		if err := tbl.Insert(exactRule(1, k, 1)); err != nil {
			t.Fatal(err)
		}
	}
	k := netaddr.FlowKey{Src: cliIP, Dst: srvIP, Proto: netaddr.ProtoTCP, SrcPort: 99, DstPort: 80}
	if err := tbl.Insert(exactRule(1, k, 1)); err != ErrTableFull {
		t.Fatalf("Insert over capacity = %v, want ErrTableFull", err)
	}
}

func TestTableDelete(t *testing.T) {
	tbl := &Table{}
	p := tcpPkt(1, 2)
	r := exactRule(5, p.FlowKey(), 1)
	tbl.Insert(r)
	removed := tbl.Delete(&r.Match, 4, true)
	if len(removed) != 0 {
		t.Fatal("strict delete with wrong priority removed a rule")
	}
	removed = tbl.Delete(&r.Match, 5, true)
	if len(removed) != 1 || tbl.Len() != 0 {
		t.Fatalf("strict delete removed %d rules", len(removed))
	}
}

func TestRuleTimeouts(t *testing.T) {
	r := &Rule{IdleTimeout: 10 * time.Second, HardTimeout: 60 * time.Second, Installed: 0}
	if exp, _ := r.Expired(5 * time.Second); exp {
		t.Fatal("expired too early")
	}
	if exp, reason := r.Expired(10 * time.Second); !exp || reason != openflow.RemovedIdleTimeout {
		t.Fatal("idle timeout not detected")
	}
	r.LastHit = 55 * time.Second
	if exp, _ := r.Expired(60 * time.Second); !exp {
		t.Fatal("hard timeout not detected")
	}
	if _, reason := r.Expired(60 * time.Second); reason != openflow.RemovedHardTimeout {
		t.Fatal("hard timeout reason wrong")
	}
}

func TestTableExpire(t *testing.T) {
	tbl := &Table{}
	p := tcpPkt(1, 2)
	r := exactRule(5, p.FlowKey(), 1)
	r.IdleTimeout = 10 * time.Second
	tbl.Insert(r)
	rules, reasons := tbl.Expire(5 * time.Second)
	if len(rules) != 0 {
		t.Fatal("premature expiry")
	}
	rules, reasons = tbl.Expire(10 * time.Second)
	if len(rules) != 1 || reasons[0] != openflow.RemovedIdleTimeout || tbl.Len() != 0 {
		t.Fatalf("expiry failed: %d rules, reasons %v", len(rules), reasons)
	}
}

func TestGroupSelectDeterministicAndBalanced(t *testing.T) {
	gt := NewGroupTable()
	mod := &openflow.GroupMod{
		Command: openflow.GroupAdd, GroupType: openflow.GroupTypeSelect, GroupID: 1,
		Buckets: []openflow.Bucket{
			{Actions: []openflow.Action{openflow.OutputAction(1)}},
			{Actions: []openflow.Action{openflow.OutputAction(2)}},
			{Actions: []openflow.Action{openflow.OutputAction(3)}},
			{Actions: []openflow.Action{openflow.OutputAction(4)}},
		},
	}
	if err := gt.Apply(mod); err != nil {
		t.Fatal(err)
	}
	g := gt.Get(1)
	counts := map[uint32]int{}
	const flows = 4000
	for i := 0; i < flows; i++ {
		k := netaddr.FlowKey{Src: netaddr.IPv4(i), Dst: srvIP, Proto: netaddr.ProtoTCP, SrcPort: uint16(i), DstPort: 80}
		b := g.SelectBucket(k.Hash())
		b2 := g.SelectBucket(k.Hash())
		if b != b2 {
			t.Fatal("bucket selection not deterministic")
		}
		counts[b.Actions[0].Port]++
	}
	for port, c := range counts {
		if c < flows/4*70/100 || c > flows/4*130/100 {
			t.Errorf("bucket via port %d got %d flows, want ~%d", port, c, flows/4)
		}
	}
}

func TestGroupSelectWeighted(t *testing.T) {
	g := &Group{Type: openflow.GroupTypeSelect, Buckets: []openflow.Bucket{
		{Weight: 3, Actions: []openflow.Action{openflow.OutputAction(1)}},
		{Weight: 1, Actions: []openflow.Action{openflow.OutputAction(2)}},
	}}
	counts := map[uint32]int{}
	for i := 0; i < 8000; i++ {
		k := netaddr.FlowKey{Src: netaddr.IPv4(i), DstPort: 80}
		counts[g.SelectBucket(k.Hash()).Actions[0].Port]++
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("weight 3:1 produced ratio %.2f", ratio)
	}
}

func TestGroupTableCommands(t *testing.T) {
	gt := NewGroupTable()
	add := &openflow.GroupMod{Command: openflow.GroupAdd, GroupType: openflow.GroupTypeSelect, GroupID: 7,
		Buckets: []openflow.Bucket{{Actions: []openflow.Action{openflow.OutputAction(1)}}}}
	if err := gt.Apply(add); err != nil {
		t.Fatal(err)
	}
	if err := gt.Apply(add); err == nil {
		t.Fatal("duplicate group add succeeded")
	}
	mod := &openflow.GroupMod{Command: openflow.GroupModify, GroupType: openflow.GroupTypeSelect, GroupID: 7,
		Buckets: []openflow.Bucket{{Actions: []openflow.Action{openflow.OutputAction(2)}}}}
	if err := gt.Apply(mod); err != nil {
		t.Fatal(err)
	}
	if got := gt.Get(7).Buckets[0].Actions[0].Port; got != 2 {
		t.Fatalf("modify ineffective: port %d", got)
	}
	del := &openflow.GroupMod{Command: openflow.GroupDelete, GroupID: 7}
	if err := gt.Apply(del); err != nil {
		t.Fatal(err)
	}
	if gt.Get(7) != nil || gt.Len() != 0 {
		t.Fatal("delete ineffective")
	}
	bad := &openflow.GroupMod{Command: openflow.GroupModify, GroupID: 9}
	if err := gt.Apply(bad); err == nil {
		t.Fatal("modify of unknown group succeeded")
	}
}

func TestPipelineTwoTableScotchShape(t *testing.T) {
	// Reproduce the paper's two-table offload design: table 0 tags the
	// ingress port with an inner MPLS label and continues to table 1,
	// whose default rule hands the packet to the select group.
	pl := NewPipeline(2, 0)
	pl.Table(0).Insert(&Rule{
		Priority: 1,
		Match:    openflow.Match{Fields: openflow.FieldInPort, InPort: 3},
		Instructions: []openflow.Instruction{
			openflow.ApplyActions(openflow.PushMPLSAction(3)),
			openflow.GotoTable(1),
		},
	})
	pl.Table(1).Insert(&Rule{
		Priority:     0,
		Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.GroupAction(1))},
	})

	p := tcpPkt(1, 2)
	res := pl.Process(p, 3, 0)
	if res.Miss {
		t.Fatalf("unexpected miss at table %d", res.MissTable)
	}
	if len(res.Actions) != 2 ||
		res.Actions[0].Type != openflow.ActionTypePushMPLS ||
		res.Actions[1].Type != openflow.ActionTypeGroup {
		t.Fatalf("actions = %+v", res.Actions)
	}
	// A packet from a port without a table-0 rule misses at table 0.
	res = pl.Process(p, 4, 0)
	if !res.Miss || res.MissTable != 0 {
		t.Fatalf("expected miss at table 0, got %+v", res)
	}
}

func TestPipelineCountersAndGotoGuard(t *testing.T) {
	pl := NewPipeline(2, 0)
	p := tcpPkt(1, 2)
	r := exactRule(10, p.FlowKey(), 5)
	pl.Table(0).Insert(r)
	pl.Process(p, 1, 7*time.Second)
	pl.Process(p, 1, 9*time.Second)
	if r.Packets != 2 || r.Bytes != uint64(2*p.Size) {
		t.Fatalf("counters = %d pkts %d bytes", r.Packets, r.Bytes)
	}
	if r.LastHit != 9*time.Second {
		t.Fatalf("LastHit = %v", r.LastHit)
	}

	// A backwards goto must not loop.
	loop := &Rule{Priority: 1, Instructions: []openflow.Instruction{openflow.GotoTable(0)}}
	pl.Table(1).Insert(loop)
	fwd := &Rule{Priority: 20, Match: openflow.Match{Fields: openflow.FieldInPort, InPort: 2},
		Instructions: []openflow.Instruction{openflow.GotoTable(1)}}
	pl.Table(0).Insert(fwd)
	res := pl.Process(p, 2, 0)
	if res.Miss || len(res.Actions) != 0 {
		t.Fatalf("loop guard failed: %+v", res)
	}
}

func TestInsertKeepsPriorityFIFOProperty(t *testing.T) {
	// Property: after any sequence of inserts, rules are sorted by
	// priority descending.
	f := func(prios []uint16) bool {
		tbl := &Table{}
		for i, p := range prios {
			k := netaddr.FlowKey{Src: netaddr.IPv4(i), Dst: srvIP, Proto: netaddr.ProtoTCP, SrcPort: uint16(i), DstPort: 80}
			if err := tbl.Insert(exactRule(p, k, 1)); err != nil {
				return false
			}
		}
		rules := tbl.Rules()
		for i := 1; i < len(rules); i++ {
			if rules[i-1].Priority < rules[i].Priority {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupExact1000(b *testing.B) {
	tbl := &Table{}
	for i := 0; i < 1000; i++ {
		k := netaddr.FlowKey{Src: netaddr.IPv4(i), Dst: srvIP, Proto: netaddr.ProtoTCP, SrcPort: uint16(i), DstPort: 80}
		tbl.Insert(exactRule(100, k, 1))
	}
	p := packet.NewTCP(netaddr.IPv4(999), srvIP, 999, 80, packet.FlagSYN)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tbl.Lookup(p, 1) == nil {
			b.Fatal("miss")
		}
	}
}
