// Package flowtable implements the OpenFlow switch pipeline state: flow
// tables with priority matching, masks, timeouts, counters and a capacity
// limit (modelling finite TCAM), plus the group table with select
// (flow-hash ECMP) semantics that Scotch uses to spread offloaded flows
// across the vSwitch mesh (§4.1, §5.1).
package flowtable
