package scotch

import (
	"testing"
	"time"
)

// TestRRPortsCompaction is the regression test for the unbounded-rrPorts
// bug: ports were appended to the round-robin ring on first submit and
// never removed, so churny ingress ports (a new port per flow burst)
// grew the ring and the ingress map without bound and every serve
// scanned the stale slots. After the fix, a drained port leaves both
// structures entirely.
func TestRRPortsCompaction(t *testing.T) {
	eng := simNew()
	served := 0
	s := newScheduler(eng, 10000, func(r *flowReq) { served++ })
	const churn = 500
	for p := uint32(1); p <= churn; p++ {
		port := p
		eng.Schedule(time.Duration(p)*time.Millisecond, func() {
			s.SubmitIngress(port, &flowReq{port: port})
		})
	}
	eng.RunUntil(2 * time.Second)
	if served != churn {
		t.Fatalf("served %d of %d requests", served, churn)
	}
	if s.TotalBacklog() != 0 {
		t.Fatalf("TotalBacklog = %d after drain", s.TotalBacklog())
	}
	if len(s.rrPorts) != 0 {
		t.Fatalf("rrPorts holds %d stale ports after all queues drained", len(s.rrPorts))
	}
	if len(s.ingress) != 0 {
		t.Fatalf("ingress map holds %d stale entries after drain", len(s.ingress))
	}
}

// TestRRFairnessAfterDrainRefill checks that round-robin fairness and
// TotalBacklog stay correct across a port emptying and refilling: a
// refilled port must re-enter the ring and share service with a port
// that kept a standing backlog, instead of being starved or double
// counted.
func TestRRFairnessAfterDrainRefill(t *testing.T) {
	eng := simNew()
	servedBy := map[uint32]int{}
	s := newScheduler(eng, 1000, func(r *flowReq) { servedBy[r.port]++ })

	// Port 1 keeps a deep standing backlog; port 2 submits a small
	// burst, drains, then refills while port 1 is still backed up.
	for i := 0; i < 400; i++ {
		s.SubmitIngress(1, &flowReq{port: 1})
	}
	for i := 0; i < 5; i++ {
		s.SubmitIngress(2, &flowReq{port: 2})
	}
	eng.RunUntil(100 * time.Millisecond) // ~100 serves: port 2 drained
	if got := s.IngressLen(2); got != 0 {
		t.Fatalf("port 2 backlog = %d, want drained", got)
	}
	const refill = 50
	for i := 0; i < refill; i++ {
		s.SubmitIngress(2, &flowReq{port: 2})
	}
	if want := s.IngressLen(1) + s.IngressLen(2); s.TotalBacklog() != want {
		t.Fatalf("TotalBacklog = %d, want %d", s.TotalBacklog(), want)
	}
	mark1 := servedBy[1]
	eng.RunUntil(200 * time.Millisecond) // ~100 more serves, shared
	d1, d2 := servedBy[1]-mark1, refill-s.IngressLen(2)
	if d2 == 0 {
		t.Fatal("refilled port 2 starved after re-entering the ring")
	}
	// Fair round-robin over two active ports serves them ~1:1 while
	// both have backlog; allow slack for port 2 finishing its 50.
	if d1 == 0 || d1 > d2*3 {
		t.Fatalf("unfair service after refill: port1 %d vs port2 %d", d1, d2)
	}
	eng.RunUntil(2 * time.Second)
	if s.TotalBacklog() != 0 || len(s.rrPorts) != 0 {
		t.Fatalf("backlog %d / rrPorts %d after final drain",
			s.TotalBacklog(), len(s.rrPorts))
	}
}

// TestFIFOIngressAccounting is the regression test for the FIFO-mode
// IngressLen bug: the per-port count was adjusted inside the deferred
// job closure and zeroed entries were never pruned, so the count map
// grew one stale entry per distinct port forever. The fixed accounting
// decrements at pop time (like the priority path) and deletes zeroed
// entries; the count must never be negative at any observation point.
func TestFIFOIngressAccounting(t *testing.T) {
	eng := simNew()
	var s *installScheduler
	s = newScheduler(eng, 10000, func(r *flowReq) {
		if got := s.IngressLen(r.port); got < 0 {
			t.Fatalf("IngressLen(%d) = %d during service", r.port, got)
		}
	})
	s.fifoMode = true
	const churn = 300
	for p := uint32(1); p <= churn; p++ {
		port := p
		eng.Schedule(time.Duration(p)*time.Millisecond, func() {
			s.SubmitIngress(port, &flowReq{port: port})
			if got := s.IngressLen(port); got < 1 {
				t.Fatalf("IngressLen(%d) = %d right after submit", port, got)
			}
		})
	}
	eng.RunUntil(2 * time.Second)
	if s.TotalBacklog() != 0 {
		t.Fatalf("TotalBacklog = %d after drain", s.TotalBacklog())
	}
	for p := uint32(1); p <= churn; p++ {
		if got := s.IngressLen(p); got != 0 {
			t.Fatalf("IngressLen(%d) = %d after drain", p, got)
		}
	}
	if len(s.ingressCount) != 0 {
		t.Fatalf("ingressCount holds %d stale entries after drain", len(s.ingressCount))
	}
}
