package scotch

import (
	"testing"
	"time"

	"scotch/internal/capture"
	"scotch/internal/controller"
	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

// TestBidirectionalFlowsUnderAttack exercises request/response traffic:
// the server answers every client packet, so the response direction is a
// second set of new flows arriving on the *server's* port while the
// control path is under attack. Both directions must survive via the
// overlay (the response direction needs a delivery vSwitch for the
// client, and the server's ingress port must be protected too).
func TestBidirectionalFlowsUnderAttack(t *testing.T) {
	eng := sim.New(44)
	net := topo.New(eng)
	edge := net.AddSwitch("edge", device.Pica8Profile())
	link := device.LinkConfig{Delay: 50 * time.Microsecond, RateBps: 1e9}
	atk := net.AddHost("attacker", netaddr.MakeIPv4(10, 0, 0, 66))
	cli := net.AddHost("client", netaddr.MakeIPv4(10, 0, 0, 10))
	srv := net.AddHost("server", netaddr.MakeIPv4(10, 0, 1, 1))
	atkPort := net.AttachHost(atk, edge, link)
	cliPort := net.AttachHost(cli, edge, link)
	srvPort := net.AttachHost(srv, edge, link)
	vs1 := net.AddSwitch("vs1", device.OVSProfile())
	vs2 := net.AddSwitch("vs2", device.OVSProfile())
	net.LinkSwitches(edge, vs1, link)
	net.LinkSwitches(edge, vs2, link)

	c := controller.New(eng, net)
	app := New(c, DefaultConfig())
	app.AddVSwitch(vs1.DPID, false)
	app.AddVSwitch(vs2.DPID, false)
	app.AssignHost(srv.IP, vs1.DPID, vs2.DPID)
	app.AssignHost(cli.IP, vs2.DPID, vs1.DPID) // responses need delivery too
	app.Protect(edge.DPID, atkPort, cliPort, srvPort)
	c.ConnectAll()
	if err := app.Build(); err != nil {
		t.Fatal(err)
	}

	cap := capture.New(eng)
	cap.Attach(srv)
	cap.Attach(cli)
	resp := workload.AttachResponder(eng, srv, cap, "response")
	// Answer only the legitimate client; answering the spoofed sources
	// would amplify the attack into backscatter toward nonexistent hosts.
	resp.RespondTo = func(src netaddr.IPv4) bool { return src == cli.IP }

	d := workload.StartDDoS(workload.NewEmitter(eng, atk, cap), srv.IP, 2000)
	cg := workload.StartClient(workload.NewEmitter(eng, cli, cap), srv.IP, 80, 1, 0)
	eng.RunUntil(15 * time.Second)
	d.Stop()
	cg.Stop()
	eng.RunUntil(16 * time.Second)

	if fail := cap.FailureFraction("client"); fail > 0.15 {
		t.Fatalf("request direction failure = %.2f", fail)
	}
	// The response direction: one response per delivered client request;
	// most must make it back to the client.
	sent, delivered := cap.Counts("response")
	if sent < 500 {
		t.Fatalf("server sent only %d responses", sent)
	}
	if frac := float64(delivered) / float64(sent); frac < 0.85 {
		t.Fatalf("response delivery = %.2f (%d/%d)", frac, delivered, sent)
	}
}
