package scotch

import (
	"fmt"
	"sort"
	"time"

	"scotch/internal/controller"
	"scotch/internal/device"
	"scotch/internal/metrics"
	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/sim"
	"scotch/internal/telemetry"
	"scotch/internal/topo"
)

// Config tunes the Scotch application. DefaultConfig matches the paper's
// Pica8 calibration.
type Config struct {
	// InstallRate is R: the per-physical-switch pacing of rule installs,
	// chosen below both the loss-free insertion maximum (§6.1) and the
	// data-path interaction knee (§6.2).
	InstallRate float64
	// OverlayInstallRate paces overlay-side (vSwitch) route setup per
	// protected switch.
	OverlayInstallRate float64

	// OverlayThreshold and DropThreshold act on the per-ingress-port
	// backlog (paper Fig. 7).
	OverlayThreshold int
	DropThreshold    int

	// ActivateRate is the Packet-In rate (per switch) above which the
	// control path is deemed congested and the overlay engages;
	// DeactivateRate (sustained for DeactivateChecks monitor ticks)
	// triggers withdrawal.
	ActivateRate     float64
	DeactivateRate   float64
	DeactivateChecks int
	MonitorInterval  time.Duration

	// Elephant migration (§5.3): a flow is an elephant once its byte
	// count crosses ElephantBytes, or — when ElephantPackets is non-zero
	// — once its packet count crosses ElephantPackets. The packet
	// threshold defaults to off so byte-only deployments are unchanged.
	StatsInterval   time.Duration
	ElephantBytes   uint64
	ElephantPackets uint64

	// Overlay plumbing.
	TunnelType device.TunnelType
	FanOut     int // tunnels per protected switch into the mesh
	TunnelBps  float64

	// vSwitch liveness.
	HeartbeatInterval time.Duration
	HeartbeatMisses   int

	// RuleIdleTimeout is applied to per-flow rules everywhere.
	RuleIdleTimeout time.Duration

	// DrainTimeout bounds how long DrainVSwitch waits for a member's
	// flow table to empty before tearing its tunnels down anyway.
	DrainTimeout time.Duration

	// Policy returns the middlebox chain a flow must traverse (nil for
	// none); see AddMiddlebox.
	Policy func(key netaddr.FlowKey) []string

	// NaiveMigration is the §5.4 ablation: migrate elephants along the
	// plain shortest path, ignoring middlebox state. Stateful middleboxes
	// then reject the rerouted flows.
	NaiveMigration bool

	// FIFOScheduler is the scheduler ablation: replace the paper's
	// admitted > migration > ingress priority classes (and per-port round
	// robin) with a single arrival-order queue.
	FIFOScheduler bool

	// GroupBy generalizes ingress differentiation (§5.2: "we can classify
	// the flows into different groups and enforce fair sharing of the SDN
	// network across groups, [e.g.] according to which customer it
	// belongs"). It maps a new-flow request to its fairness queue id; nil
	// uses the paper's per-ingress-port example.
	GroupBy func(origin uint64, ingressPort uint32, key netaddr.FlowKey) uint32
}

// DefaultConfig returns the calibrated defaults.
func DefaultConfig() Config {
	return Config{
		InstallRate:        1000,
		OverlayInstallRate: 4000,
		OverlayThreshold:   20,
		DropThreshold:      200,
		ActivateRate:       150,
		DeactivateRate:     50,
		DeactivateChecks:   10,
		MonitorInterval:    100 * time.Millisecond,
		StatsInterval:      time.Second,
		ElephantBytes:      20 << 10,
		TunnelType:         device.TunnelMPLS,
		FanOut:             2,
		TunnelBps:          1e9,
		HeartbeatInterval:  500 * time.Millisecond,
		HeartbeatMisses:    3,
		RuleIdleTimeout:    10 * time.Second,
		DrainTimeout:       30 * time.Second,
	}
}

// Stats counts Scotch decisions.
type Stats struct {
	Requests         uint64 // new-flow requests seen
	PhysicalAdmitted uint64 // flows given physical-path rules
	OverlayRouted    uint64 // flows routed over the vSwitch mesh
	Dropped          uint64 // requests beyond the dropping threshold
	Migrated         uint64 // elephants moved to physical paths
	Pinned           uint64 // overlay flows pinned during withdrawal
	Activations      uint64
	Withdrawals      uint64
	DuplicatePunts   uint64 // repeated Packet-Ins for known flows
	Repairs          uint64 // mid-overlay misses repaired
	FailoverSwaps    uint64 // dead vSwitches replaced
	NoPath           uint64
	VSwitchesAdded   uint64 // mesh members added to a running overlay
	VSwitchesDrained uint64 // mesh members drained out of a running overlay
}

// protState is per-protected-switch activation state.
type protState struct {
	dpid         uint64
	ingressPorts []uint32
	active       bool
	belowCount   int
	// reqRate tracks the switch's new-flow arrival rate as seen by the
	// controller *after origin attribution*: once the overlay engages,
	// Packet-Ins arrive from mesh vSwitches but still count against the
	// origin switch, so the monitor sees the true offered load rather
	// than the origin OFA's (now idle) Packet-In rate.
	reqRate *metrics.RateMeter
}

// newReq takes a zeroed flowReq from the pool (or allocates one). Every
// request is served exactly once, and no admit path retains its request
// past the serve call, so served and dropped requests go straight back
// via freeReq.
func (a *App) newReq() *flowReq {
	if n := len(a.reqPool); n > 0 {
		r := a.reqPool[n-1]
		a.reqPool = a.reqPool[:n-1]
		return r
	}
	return &flowReq{}
}

// freeReq returns a finished request to the pool.
func (a *App) freeReq(r *flowReq) {
	*r = flowReq{}
	a.reqPool = append(a.reqPool, r)
}

// flowReq is one pending new-flow request in the ingress queues.
type flowReq struct {
	key    netaddr.FlowKey
	origin uint64 // first-hop physical switch
	port   uint32 // ingress port at the origin
	punter *controller.SwitchHandle
	data   []byte   // the first packet, as carried in the Packet-In
	at     sim.Time // punt arrival, for central setup-latency attribution
}

// App is the Scotch controller application.
type App struct {
	C   *controller.Controller
	Cfg Config

	ov        *Overlay
	protected map[uint64]*protState
	physSched map[uint64]*installScheduler
	ovlSched  map[uint64]*installScheduler
	mboxes    map[string]*MiddleboxChain
	migrating map[netaddr.FlowKey]bool
	reqPool   []*flowReq // recycled flowReq boxes (see newReq)
	monDpids  []uint64   // monitor's sorted-visit scratch, reused every tick

	// owns, when set, restricts which punting switches this app instance
	// handles (cluster sharding); nil handles everything.
	owns func(dpid uint64) bool

	// built flips once Build has run; AddVSwitch before it only records
	// membership, after it the overlay is mutated live.
	built bool

	// devo, when non-nil, is the control-devolution state: per-member
	// policy caches plus the tenant policies and generation counter the
	// controller distributes to them.
	devo *devolution

	Stats Stats
}

// New creates the app and registers it with the controller.
func New(c *controller.Controller, cfg Config) *App {
	a := &App{
		C:         c,
		Cfg:       cfg,
		protected: make(map[uint64]*protState),
		physSched: make(map[uint64]*installScheduler),
		ovlSched:  make(map[uint64]*installScheduler),
		mboxes:    make(map[string]*MiddleboxChain),
	}
	a.ov = newOverlay(a)
	c.Register(a)
	return a
}

// Name implements controller.App.
func (a *App) Name() string { return "scotch" }

// BindMetrics registers the app's decision counters and paced-install
// backlog with a telemetry registry.
func (a *App) BindMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("scotch_app_requests_total", func() uint64 { return a.Stats.Requests })
	reg.CounterFunc("scotch_app_overlay_routed_total", func() uint64 { return a.Stats.OverlayRouted })
	reg.CounterFunc("scotch_app_dropped_total", func() uint64 { return a.Stats.Dropped })
	reg.CounterFunc("scotch_app_activations_total", func() uint64 { return a.Stats.Activations })
	reg.CounterFunc("scotch_app_withdrawals_total", func() uint64 { return a.Stats.Withdrawals })
	reg.CounterFunc("scotch_app_migrated_total", func() uint64 { return a.Stats.Migrated })
	reg.GaugeFunc("scotch_app_install_backlog", func() float64 {
		total := 0
		for _, s := range a.physSched {
			total += s.TotalBacklog()
		}
		for _, s := range a.ovlSched {
			total += s.TotalBacklog()
		}
		return float64(total)
	})
	if a.devo != nil {
		a.devo.metrics.Bind(reg)
	}
}

// SetOwner restricts the app to punts from switches fn claims; punts from
// other switches are declined so another app (or shard) can take them.
func (a *App) SetOwner(fn func(dpid uint64) bool) { a.owns = fn }

// Rebind moves the app onto another controller: all future handle
// resolution, flow-database access, and failover hooks act through c. The
// cluster coordinator calls this during switch migration; work already
// queued in the install schedulers re-resolves its switch handles at
// service time, so queued installs drain through the new master.
func (a *App) Rebind(c *controller.Controller) {
	a.C = c
	a.installDeadHook()
}

// installDeadHook chains the overlay's vSwitch-failover handler onto the
// current controller's dead-switch notification.
func (a *App) installDeadHook() {
	prevDead := a.C.OnSwitchDead
	a.C.OnSwitchDead = func(h *controller.SwitchHandle) {
		a.ov.failover(h.DPID)
		// A dead mesh member's policy cache is gone with it; rebuild the
		// survivors' tables (delivery routes may have re-homed to backups).
		a.devoDropMember(h.DPID)
		if prevDead != nil {
			prevDead(h)
		}
	}
}

// AddVSwitch adds a mesh member; backups only serve after a failover.
// Before Build it only records membership for the offline construction;
// on a built overlay it extends the running mesh in place — tunnels,
// select-group buckets, and chain plumbing — so the pool can grow under
// load without a restart. The error is always nil pre-Build.
func (a *App) AddVSwitch(dpid uint64, backup bool) error {
	if a.built {
		if err := a.ov.addLive(dpid, backup); err != nil {
			return err
		}
		// A joining member receives the current policy table immediately
		// (tentpole: new members must not escalate what peers devolve),
		// and existing members learn any routes that moved to it.
		a.devoAttach(dpid)
		a.RepublishPolicy()
		return nil
	}
	a.ov.vswitches = append(a.ov.vswitches, dpid)
	if backup {
		a.ov.backups[dpid] = true
	}
	return nil
}

// DrainVSwitch gracefully removes a mesh member from a built overlay:
// the member immediately stops receiving new flow assignments, its
// established flows migrate to physical paths (or idle out), and its
// tunnels are torn down once its flow table empties or
// Config.DrainTimeout passes. Draining the last live primary or a
// chain-aggregation vSwitch is refused.
func (a *App) DrainVSwitch(dpid uint64) error {
	if !a.built {
		return fmt.Errorf("scotch: overlay not built")
	}
	if err := a.ov.drain(dpid); err != nil {
		return err
	}
	// A draining member flushes its policy cache (its locally devolved
	// rules delete, so the drain's table-empty poll can complete) and the
	// survivors learn the re-homed delivery routes.
	a.devoDropMember(dpid)
	return nil
}

// Draining reports whether a mesh member is mid-drain.
func (a *App) Draining(dpid uint64) bool { return a.ov.draining[dpid] }

// MeshMembers returns the current mesh membership (primaries and
// backups, in membership order). The returned slice is a copy.
func (a *App) MeshMembers() []uint64 {
	return append([]uint64(nil), a.ov.vswitches...)
}

// AssignHost maps a destination host to its local delivery vSwitch (and an
// optional backup).
func (a *App) AssignHost(ip netaddr.IPv4, vs uint64, backup uint64) {
	a.ov.deliveries[ip] = &delivery{vs: vs, backup: backup}
}

// Protect places a physical switch under Scotch management. ingressPorts
// are the ports whose table-miss traffic the offload rules will tag and
// tunnel (and whose new flows get per-port fair treatment).
func (a *App) Protect(dpid uint64, ingressPorts ...uint32) {
	a.protected[dpid] = &protState{
		dpid:         dpid,
		ingressPorts: ingressPorts,
		reqRate:      metrics.NewRateMeter(time.Second, 10),
	}
}

// Build constructs the overlay (tunnels, groups), starts the congestion
// monitor, the elephant-migration poller, and the vSwitch heartbeat.
func (a *App) Build() error {
	if err := a.ov.build(); err != nil {
		return err
	}
	a.C.Eng.Every(a.Cfg.MonitorInterval, a.monitor)
	a.C.Eng.Every(a.Cfg.StatsInterval, a.pollElephants)
	a.installDeadHook()
	// The heartbeat acts through the app's *current* controller each tick,
	// so after a Rebind probing continues from the new master and a dead
	// replica's stale connection cannot poison liveness state. Membership
	// is re-read each tick: live-added members join the probe set and
	// drained members leave it.
	a.C.Eng.Every(a.Cfg.HeartbeatInterval, func() {
		a.C.HeartbeatTick(a.MeshMembers(), a.Cfg.HeartbeatMisses)
	})
	a.built = true
	if a.devo != nil {
		// Devolution enabled before Build: attach caches now that the
		// mesh exists and publish the initial policy table.
		for _, dpid := range a.MeshMembers() {
			a.devoAttach(dpid)
		}
		a.RepublishPolicy()
	}
	return nil
}

// Active reports whether the overlay offload is engaged at a switch.
func (a *App) Active(dpid uint64) bool {
	st := a.protected[dpid]
	return st != nil && st.active
}

// Overlay exposes the overlay manager (read-only use in experiments).
func (a *App) Overlay() *Overlay { return a.ov }

// ProtectedDPIDs returns the protected physical switches, sorted. The
// observatory iterates this once at wiring time to register per-switch
// request-rate probes.
func (a *App) ProtectedDPIDs() []uint64 {
	out := make([]uint64, 0, len(a.protected))
	for dpid := range a.protected {
		out = append(out, dpid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RequestRate returns a protected switch's attributed new-flow arrival
// rate (flows/s) over the meter window ending now — the same
// origin-attributed signal the congestion monitor acts on. Returns 0 for
// unprotected switches. Reading never mutates the meter.
func (a *App) RequestRate(dpid uint64) float64 {
	st := a.protected[dpid]
	if st == nil {
		return 0
	}
	return st.reqRate.Rate(a.C.Eng.Now())
}

// InstallBacklog returns the total number of flow requests queued across
// every physical and overlay install scheduler — the app-level queue
// depth behind the paced FlowMod budget.
func (a *App) InstallBacklog() int {
	total := 0
	for _, s := range a.physSched {
		total += s.TotalBacklog()
	}
	for _, s := range a.ovlSched {
		total += s.TotalBacklog()
	}
	return total
}

// sched returns (creating on demand) the physical install scheduler of a
// switch.
func (a *App) sched(dpid uint64) *installScheduler {
	s, ok := a.physSched[dpid]
	if !ok {
		s = newScheduler(a.C.Eng, a.Cfg.InstallRate, func(r *flowReq) {
			a.admitPhysical(r)
			a.freeReq(r)
		})
		s.fifoMode = a.Cfg.FIFOScheduler
		a.physSched[dpid] = s
	}
	return s
}

func (a *App) ovlSchedFor(dpid uint64) *installScheduler {
	s, ok := a.ovlSched[dpid]
	if !ok {
		s = newScheduler(a.C.Eng, a.Cfg.OverlayInstallRate, func(r *flowReq) {
			a.admitOverlay(r)
			a.freeReq(r)
		})
		a.ovlSched[dpid] = s
	}
	return s
}

// monitor is the congestion watchdog (paper §4.2, §5.5): Packet-In rate
// above ActivateRate engages the overlay; sustained quiet triggers
// withdrawal.
func (a *App) monitor() {
	now := a.C.Eng.Now()
	// Sorted: activations/withdrawals install rules through the shared
	// scheduler, so the visit order must be reproducible.
	dpids := a.monDpids[:0]
	for dpid := range a.protected {
		dpids = append(dpids, dpid)
	}
	a.monDpids = dpids
	sort.Slice(dpids, func(i, j int) bool { return dpids[i] < dpids[j] })
	for _, dpid := range dpids {
		st := a.protected[dpid]
		h := a.C.Switch(dpid)
		if h == nil {
			continue
		}
		rate := st.reqRate.Rate(now)
		if direct := h.PacketInRate.Rate(now); direct > rate {
			rate = direct
		}
		// Devolution hides locally absorbed misses from both signals
		// above; add them back so the overlay neither withdraws under
		// load the caches are carrying nor misses an activation.
		rate += a.devoOriginRate(dpid, now)
		switch {
		case !st.active && rate > a.Cfg.ActivateRate:
			st.belowCount = 0
			a.ov.activate(dpid)
		case st.active && rate < a.Cfg.DeactivateRate:
			st.belowCount++
			if st.belowCount >= a.Cfg.DeactivateChecks {
				a.withdraw(dpid)
			}
		default:
			st.belowCount = 0
		}
	}
}

// HandlePacketIn implements controller.App: classify the punt, resolve the
// flow's true origin, and run the ingress-differentiation admission logic.
func (a *App) HandlePacketIn(sw *controller.SwitchHandle, pin *openflow.PacketIn, pkt *packet.Packet) bool {
	if a.owns != nil && !a.owns(sw.DPID) {
		return false
	}
	if pkt == nil {
		return false
	}
	key := pkt.FlowKey()

	// Resolve the flow's origin switch and ingress port. A Packet-In from
	// a mesh vSwitch with a known fan-out tunnel id came from that
	// tunnel's physical switch; the inner label (carried in the cookie)
	// is the original ingress port (paper §5.2).
	origin := sw.DPID
	port := pin.Match.InPort
	var punter = sw
	if pin.Match.Fields.Has(openflow.FieldTunnelID) {
		if phys, ok := a.ov.originOf(pin.Match.TunnelID); ok {
			origin = phys
			port = uint32(pin.Cookie)
		} else if a.ov.isMesh(sw.DPID) {
			// Mid-overlay miss (rule race or failover rehash): repair.
			return a.repairOverlay(sw, pin, pkt)
		}
	} else if a.ov.isMesh(sw.DPID) {
		return a.repairOverlay(sw, pin, pkt)
	}

	if st := a.protected[origin]; st != nil {
		st.reqRate.Add(a.C.Eng.Now(), 1)
	}

	tr := a.C.Tracer()
	if fi := a.C.FlowDB.Lookup(key); fi != nil {
		// Duplicate punt for a flow already being set up: re-forward the
		// packet along the flow's chosen path without new state.
		a.Stats.DuplicatePunts++
		if tr != nil {
			tr.PointTag(telemetry.PointClassified, key, origin, a.C.Eng.Now(), "dup")
		}
		a.reforward(punter, fi, pin)
		return true
	}

	a.Stats.Requests++
	req := a.newReq()
	*req = flowReq{key: key, origin: origin, port: port, punter: punter,
		data: pin.Data, at: a.C.Eng.Now()}

	group := port
	if a.Cfg.GroupBy != nil {
		group = a.Cfg.GroupBy(origin, port, key)
	}
	phys := a.sched(origin)
	ovl := a.ovlSchedFor(origin)
	backlog := phys.IngressLen(group) + ovl.IngressLen(group)
	switch {
	case backlog >= a.Cfg.DropThreshold:
		// Beyond the dropping threshold neither the physical network nor
		// the overlay can absorb the group's arrival rate (paper §5.2).
		a.Stats.Dropped++
		if tr != nil {
			tr.PointTag(telemetry.PointClassified, key, origin, a.C.Eng.Now(), "drop")
		}
		a.freeReq(req)
	case backlog >= a.Cfg.OverlayThreshold && a.canOverlay(req):
		if tr != nil {
			tr.PointTag(telemetry.PointClassified, key, origin, a.C.Eng.Now(), "overlay")
		}
		ovl.SubmitIngress(group, req)
	default:
		if tr != nil {
			tr.PointTag(telemetry.PointClassified, key, origin, a.C.Eng.Now(), "physical")
		}
		phys.SubmitIngress(group, req)
	}
	return true
}

// pathSwitchHot reports whether a downstream switch's control plane is
// overloaded: its offload is active, its request rate exceeds the
// activation threshold, or its paced install queue has a deep backlog.
func (a *App) pathSwitchHot(dpid uint64) bool {
	now := a.C.Eng.Now()
	if st := a.protected[dpid]; st != nil {
		if st.active {
			return true
		}
		if st.reqRate.Rate(now) > a.Cfg.ActivateRate {
			return true
		}
	}
	// Unprotected transit switches (e.g. spines) can also saturate: their
	// direct Packet-In rate is the signal.
	if h := a.C.Switch(dpid); h != nil && h.PacketInRate.Rate(now) > a.Cfg.ActivateRate {
		return true
	}
	if s, ok := a.physSched[dpid]; ok && s.TotalBacklog() > 4*a.Cfg.OverlayThreshold {
		return true
	}
	return false
}

// canOverlay reports whether the overlay can carry the flow (a delivery
// vSwitch is assigned for the destination and the origin has fan-out
// tunnels).
func (a *App) canOverlay(r *flowReq) bool {
	if _, _, ok := a.ov.deliveryFor(r.key.Dst); !ok {
		return false
	}
	_, ok := a.ov.selectVSwitch(r.origin, r.key)
	return ok
}

// admitPhysical serves one ingress request with a physical path: rules
// along the shortest policy-compliant path, first-hop rule installed by
// this service slot, downstream rules via the admitted queues. Per the
// paper, the controller first "checks the message rate of all switches on
// the path to make sure their control plane is not overloaded"; if a
// downstream switch is hot, the flow stays on the overlay so that "new
// rules are initially only inserted at the vswitches" (§4).
func (a *App) admitPhysical(r *flowReq) {
	hops, waypoints, ok := a.policyPath(r.origin, r.key)
	if !ok {
		a.Stats.NoPath++
		return
	}
	for _, hop := range hops[1:] {
		if a.pathSwitchHot(hop.DPID) {
			if a.canOverlay(r) {
				a.admitOverlay(r)
				return
			}
			break // no overlay available: install physically anyway
		}
	}
	a.Stats.PhysicalAdmitted++
	a.devoObserveCentral(r)
	if tr := a.C.Tracer(); tr != nil {
		tr.PointTag(telemetry.PointInstall, r.key, r.origin, a.C.Eng.Now(), "physical")
	}
	match := exactMatch(r.key)
	first := hops[0]
	if h := a.C.Switch(first.DPID); h != nil {
		h.InstallFlow(a.redRuleFor(match, first))
	}
	for _, hop := range hops[1:] {
		hop := hop
		if a.C.Switch(hop.DPID) == nil {
			continue
		}
		// Resolve the handle at service time: if the switch migrates to
		// another replica while this install is queued, the rule must go
		// out on the new master's connection.
		a.sched(hop.DPID).SubmitAdmitted(func() {
			if h := a.C.Switch(hop.DPID); h != nil {
				h.InstallFlow(a.redRuleFor(match, hop))
			}
		})
	}
	a.C.FlowDB.Store(controller.FlowInfo{
		Key:         r.key,
		FirstHop:    r.origin,
		IngressPort: r.port,
		Waypoints:   waypoints,
		Created:     a.C.Eng.Now(),
	})
	// Forward the triggering packet from the origin switch along the new
	// path (the controller holds the full packet).
	if h := a.C.Switch(r.origin); h != nil && len(r.data) > 0 {
		h.SendPacketOut(openflow.PacketOut1(openflow.PortController,
			openflow.OutputAction(first.OutPort), r.data))
	}
}

// admitOverlay serves one overlay-marked request: per-flow rules at the
// entry vSwitch (chosen by the same hash as the switch's select group)
// and at the destination's delivery vSwitch, then a Packet-Out for the
// first packet.
func (a *App) admitOverlay(r *flowReq) {
	pt, ok := a.ov.selectVSwitch(r.origin, r.key)
	if !ok {
		a.Stats.NoPath++
		return
	}
	v1 := pt.vs
	v2, deliverPort, ok := a.ov.deliveryFor(r.key.Dst)
	if !ok {
		a.Stats.NoPath++
		return
	}
	a.Stats.OverlayRouted++
	a.devoObserveCentral(r)
	if tr := a.C.Tracer(); tr != nil {
		tr.PointTag(telemetry.PointInstall, r.key, r.origin, a.C.Eng.Now(), "overlay")
	}
	match := exactMatch(r.key)

	// Per-flow vSwitch hops; a policy chain detours through its
	// middleboxes (paper Fig. 8: tunnels decapsulate at S_U, re-enter the
	// mesh after S_D).
	var hops []vsHop
	if a.Cfg.Policy != nil {
		if chain := a.Cfg.Policy(r.key); len(chain) > 0 {
			var okc bool
			hops, okc = a.overlayChainHops(v1, chain, v2, deliverPort)
			if !okc {
				a.Stats.NoPath++
				return
			}
		}
	}
	if hops == nil {
		if v1 == v2 {
			hops = []vsHop{{vs: v1, out: deliverPort}}
		} else {
			hops = []vsHop{
				{vs: v1, out: a.ov.meshPort[[2]uint64{v1, v2}]},
				{vs: v2, out: deliverPort},
			}
		}
	}
	// Install downstream-first; the entry vSwitch also forwards the first
	// packet.
	for i := len(hops) - 1; i >= 0; i-- {
		h := a.C.Switch(hops[i].vs)
		if h == nil {
			continue
		}
		h.InstallFlow(a.vsRuleTun(match, hops[i].out, hops[i].tunnelID))
		if i == 0 && len(r.data) > 0 {
			h.SendPacketOut(openflow.PacketOut1(openflow.PortController,
				openflow.OutputAction(hops[i].out), r.data))
		}
	}
	a.C.FlowDB.Store(controller.FlowInfo{
		Key:            r.key,
		FirstHop:       r.origin,
		IngressPort:    r.port,
		OnOverlay:      true,
		OverlayVSwitch: v1,
		Created:        a.C.Eng.Now(),
	})
}

// reforward pushes a duplicate-punted packet along the flow's existing
// path with a Packet-Out, installing no new state.
func (a *App) reforward(punter *controller.SwitchHandle, fi *controller.FlowInfo, pin *openflow.PacketIn) {
	if len(pin.Data) == 0 {
		return
	}
	var action openflow.Action
	if fi.OnOverlay && a.ov.isMesh(punter.DPID) {
		v2, deliverPort, ok := a.ov.deliveryFor(fi.Key.Dst)
		if !ok {
			return
		}
		if punter.DPID == v2 {
			action = openflow.OutputAction(deliverPort)
		} else {
			action = openflow.OutputAction(a.ov.meshPort[[2]uint64{punter.DPID, v2}])
		}
	} else {
		hops, ok := a.C.Net.Path(punter.DPID, fi.Key.Dst)
		if !ok {
			return
		}
		action = openflow.OutputAction(hops[0].OutPort)
	}
	punter.SendPacketOut(openflow.PacketOut1(openflow.PortController, action, pin.Data))
}

// repairOverlay handles a miss at a mesh vSwitch that is not a fan-out
// entry (rule install race, or flows re-hashed after a failover): restore
// the per-flow rule and forward the packet.
func (a *App) repairOverlay(sw *controller.SwitchHandle, pin *openflow.PacketIn, pkt *packet.Packet) bool {
	key := pkt.FlowKey()
	fi := a.C.FlowDB.Lookup(key)
	v2, deliverPort, ok := a.ov.deliveryFor(key.Dst)
	if !ok {
		return false
	}
	a.Stats.Repairs++
	var out uint32
	if sw.DPID == v2 {
		out = deliverPort
	} else {
		out = a.ov.meshPort[[2]uint64{sw.DPID, v2}]
		if h := a.C.Switch(v2); h != nil {
			h.InstallFlow(a.vsRule(exactMatch(key), deliverPort))
		}
	}
	sw.InstallFlow(a.vsRule(exactMatch(key), out))
	if len(pin.Data) > 0 {
		sw.SendPacketOut(openflow.PacketOut1(openflow.PortController,
			openflow.OutputAction(out), pin.Data))
	}
	if fi != nil && fi.OnOverlay {
		fi.OverlayVSwitch = sw.DPID
	}
	return true
}

// withdraw executes §5.5: pin the overlay flows of this switch with
// explicit offload rules (so they continue uninterrupted), then remove the
// default offload rules; new flows punt to the controller again.
func (a *App) withdraw(dpid uint64) {
	st := a.protected[dpid]
	if st == nil || !st.active {
		return
	}
	h := a.C.Switch(dpid)
	if h == nil {
		return
	}
	sched := a.sched(dpid)
	for _, fi := range a.C.FlowDB.OverlayFlows() {
		if fi.FirstHop != dpid {
			continue
		}
		fi := fi
		sched.SubmitAdmitted(func() {
			h := a.C.Switch(dpid)
			if h == nil {
				return
			}
			acts := make([]openflow.Action, 0, 2)
			if a.Cfg.TunnelType == device.TunnelGRE {
				acts = append(acts, openflow.SetTunnelAction(uint64(fi.IngressPort)))
			} else {
				acts = append(acts, openflow.PushMPLSAction(fi.IngressPort))
			}
			acts = append(acts, openflow.GroupAction(offloadGroupID))
			h.InstallFlow(&openflow.FlowMod{
				Command:     openflow.FlowAdd,
				TableID:     0,
				Priority:    prioPin,
				IdleTimeout: uint16(a.Cfg.RuleIdleTimeout / time.Second),
				Match:       exactMatch(fi.Key),
				Instructions: []openflow.Instruction{
					openflow.ApplyActions(acts...),
				},
			})
			a.Stats.Pinned++
		})
	}
	a.ov.deactivate(dpid)
	st.belowCount = 0
}

// vsRule builds a per-flow rule at a mesh vSwitch.
func (a *App) vsRule(match openflow.Match, outPort uint32) *openflow.FlowMod {
	return a.vsRuleTun(match, outPort, 0)
}

// vsRuleTun builds a per-flow vSwitch rule additionally constrained to
// packets arriving from a specific tunnel (used on middlebox chains).
func (a *App) vsRuleTun(match openflow.Match, outPort uint32, tunnelID uint64) *openflow.FlowMod {
	prio := uint16(prioVSwitch)
	if tunnelID != 0 {
		match.Fields |= openflow.FieldTunnelID
		match.TunnelID = tunnelID
		prio = prioVSwitch + 1
	}
	fm := openflow.FlowMod1(openflow.OutputAction(outPort))
	fm.Command = openflow.FlowAdd
	fm.Priority = prio
	fm.IdleTimeout = uint16(a.Cfg.RuleIdleTimeout / time.Second)
	fm.Flags = openflow.FlagSendFlowRem
	fm.Match = match
	return fm
}

// HandleFlowRemoved implements controller.FlowRemovedHandler: when a
// flow's vSwitch rule idles out, the flow has ended and its Flow Info
// Database record is retired. Without this, long-dead mice would be
// pinned during withdrawal (§5.5 pins only the flows "currently being
// routed over the Scotch overlay"). Only vSwitch rules carry the
// send-flow-removed flag, so the hardware control path stays unburdened.
func (a *App) HandleFlowRemoved(sw *controller.SwitchHandle, fr *openflow.FlowRemoved) {
	if fr.Reason == openflow.RemovedDelete {
		return // explicit deletes are reconfiguration, not flow death
	}
	key, ok := keyFromMatch(&fr.Match)
	if !ok {
		return
	}
	a.C.FlowDB.Delete(key)
	delete(a.migrating, key)
}

// policyPath computes the physical path for a flow, honoring its
// middlebox chain when one is configured.
func (a *App) policyPath(origin uint64, key netaddr.FlowKey) ([]topo.Hop, []uint64, bool) {
	if a.Cfg.Policy != nil {
		if chain := a.Cfg.Policy(key); len(chain) > 0 {
			return a.policyPathVia(origin, key, chain)
		}
	}
	hops, ok := a.C.Net.Path(origin, key.Dst)
	return hops, nil, ok
}

func exactMatch(k netaddr.FlowKey) openflow.Match {
	m := openflow.Match{
		Fields:  openflow.FieldEthType | openflow.FieldIPProto | openflow.FieldIPv4Src | openflow.FieldIPv4Dst,
		EthType: packet.EtherTypeIPv4,
		IPProto: k.Proto,
		IPv4Src: k.Src,
		IPv4Dst: k.Dst,
	}
	switch k.Proto {
	case netaddr.ProtoTCP:
		m.Fields |= openflow.FieldTCPSrc | openflow.FieldTCPDst
		m.TCPSrc, m.TCPDst = k.SrcPort, k.DstPort
	case netaddr.ProtoUDP:
		m.Fields |= openflow.FieldUDPSrc | openflow.FieldUDPDst
		m.UDPSrc, m.UDPDst = k.SrcPort, k.DstPort
	}
	return m
}
