package scotch

import (
	"testing"

	"scotch/internal/controller"
	"scotch/internal/netaddr"
	"scotch/internal/openflow"
)

// elephantFixture plants one overlay flow in the FlowDB and feeds
// handleStats a crafted stats reply for it, returning whether the flow
// was elected for migration.
func elephantFixture(t *testing.T, cfg Config, packets, bytes uint64) bool {
	t.Helper()
	f := newFixture(t, cfg, 2, 0)
	key := netaddr.FlowKey{
		Src: f.client.IP, Dst: f.server.IP,
		Proto: netaddr.ProtoTCP, SrcPort: 4000, DstPort: 80,
	}
	f.c.FlowDB.Put(&controller.FlowInfo{
		Key: key, FirstHop: f.edge.DPID, IngressPort: 2,
		OnOverlay: true, OverlayVSwitch: f.vs[0].DPID,
	})
	f.app.handleStats(&openflow.MultipartReply{
		MPType: openflow.MultipartFlow,
		Flows: []openflow.FlowStats{{
			TableID: 0, PacketCount: packets, ByteCount: bytes,
			Match: exactMatch(key),
		}},
	})
	return f.app.migrating[key]
}

// TestElephantDetectsHighPacketCount is the §5.3 regression test: the
// large-flow identifier must select flows "with high packet counts",
// not only high byte counts. Before Config.ElephantPackets existed,
// handleStats compared ByteCount alone and this test failed.
func TestElephantDetectsHighPacketCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ElephantBytes = 1 << 30 // unreachable: only the packet count can elect
	cfg.ElephantPackets = 100
	if !elephantFixture(t, cfg, 150, 500) {
		t.Fatal("flow with 150 packets (threshold 100) not elected for migration")
	}
}

// TestElephantPacketThresholdDefaultOff pins backward compatibility:
// with ElephantPackets at its zero default, packet counts alone must
// not elect a flow, so pre-existing byte-only deployments (and every
// prior experiment output) are unchanged.
func TestElephantPacketThresholdDefaultOff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ElephantBytes = 1 << 30
	if elephantFixture(t, cfg, 1<<20, 500) {
		t.Fatal("packet count elected a flow with ElephantPackets=0 (default off)")
	}
}

// TestElephantByteThresholdStillWorks guards the original byte-count
// path alongside the new predicate.
func TestElephantByteThresholdStillWorks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ElephantPackets = 1 << 30
	if !elephantFixture(t, cfg, 3, cfg.ElephantBytes+1) {
		t.Fatal("flow over the byte threshold not elected for migration")
	}
}
