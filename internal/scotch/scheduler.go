package scotch

import (
	"time"

	"scotch/internal/sim"
)

// job is one unit of controller work paced by a switch's scheduler —
// typically "send one FlowMod to this switch".
type job func()

// fifoItem is one arrival-order queue entry in the FIFO ablation.
// Ingress requests are kept as data (not closures) so the per-port
// accounting is adjusted at pop time, exactly like the priority path
// pops its queue before serving — keeping IngressLen consistent between
// the two modes at every observation point.
type fifoItem struct {
	ingress bool
	port    uint32
	req     *flowReq
	j       job
}

// installScheduler paces the controller's rule installation toward one
// switch at rate R, the maximum loss-free insertion rate of that switch
// (paper §5.2/§6.1), with the paper's three priority classes:
//
//	admitted  — rules for flows admitted elsewhere (highest)
//	migration — large-flow migration path setup
//	ingress   — per-ingress-port queues of new-flow requests, served
//	            round-robin (lowest)
//
// "Such a priority order causes small flows to be forwarded on physical
// paths only after all large flows are accommodated."
type installScheduler struct {
	eng  sim.Proc
	rate float64
	busy bool

	admitted  []job
	migration []job

	// ingress holds one queue per ingress port with pending requests; a
	// drained port leaves the map, and its emptied slice parks on qPool so
	// the next burst (from any port) starts with capacity instead of a
	// fresh allocation.
	ingress map[uint32][]*flowReq
	qPool   [][]*flowReq
	rrPorts []uint32
	rrIdx   int

	// fifoMode disables the priority classes and per-port round robin:
	// all work is served in arrival order. This exists only for the
	// scheduler ablation; the paper's design is the priority scheduler.
	fifoMode     bool
	fifo         []fifoItem
	ingressCount map[uint32]int

	// serveIngress processes a popped new-flow request; wired to the
	// app's physical-admission path.
	serveIngress func(*flowReq)

	// serveFn is the one closure the pacing loop ever schedules,
	// allocated once here rather than once per served item in kick.
	serveFn func()
}

func newScheduler(eng sim.Proc, rate float64, serveIngress func(*flowReq)) *installScheduler {
	if rate <= 0 {
		panic("scotch: non-positive install rate")
	}
	s := &installScheduler{
		eng:          eng,
		rate:         rate,
		ingress:      make(map[uint32][]*flowReq),
		ingressCount: make(map[uint32]int),
		serveIngress: serveIngress,
	}
	s.serveFn = func() {
		s.serveOne()
		s.busy = false
		s.kick()
	}
	return s
}

// SubmitAdmitted queues highest-priority work (admitted-flow rules).
func (s *installScheduler) SubmitAdmitted(j job) {
	if s.fifoMode {
		s.fifo = append(s.fifo, fifoItem{j: j})
	} else {
		s.admitted = append(s.admitted, j)
	}
	s.kick()
}

// SubmitMigration queues a large-flow migration step.
func (s *installScheduler) SubmitMigration(j job) {
	if s.fifoMode {
		s.fifo = append(s.fifo, fifoItem{j: j})
	} else {
		s.migration = append(s.migration, j)
	}
	s.kick()
}

// SubmitIngress appends a new-flow request to its ingress-port queue.
func (s *installScheduler) SubmitIngress(port uint32, r *flowReq) {
	if s.fifoMode {
		s.fifo = append(s.fifo, fifoItem{ingress: true, port: port, req: r})
		s.ingressCount[port]++
		s.kick()
		return
	}
	q, ok := s.ingress[port]
	if !ok {
		s.rrPorts = append(s.rrPorts, port)
		if n := len(s.qPool); n > 0 {
			q = s.qPool[n-1]
			s.qPool = s.qPool[:n-1]
		}
	}
	s.ingress[port] = append(q, r)
	s.kick()
}

// IngressLen returns the backlog of one ingress-port queue. In FIFO mode
// the per-port count is tracked at submit and pop, mirroring the
// priority path's queue length; it is never negative.
func (s *installScheduler) IngressLen(port uint32) int {
	if s.fifoMode {
		return s.ingressCount[port]
	}
	return len(s.ingress[port])
}

// TotalBacklog returns all queued work.
func (s *installScheduler) TotalBacklog() int {
	n := len(s.admitted) + len(s.migration) + len(s.fifo)
	for _, q := range s.ingress {
		n += len(q)
	}
	return n
}

// retire removes a drained port's queue from the ingress map and parks
// the emptied slice for reuse. The pool is capped: ports drain one at a
// time, so a handful of spare queues covers any realistic churn.
func (s *installScheduler) retire(port uint32, q []*flowReq) {
	delete(s.ingress, port)
	if cap(q) > 0 && len(s.qPool) < 64 {
		s.qPool = append(s.qPool, q[:0])
	}
}

func (s *installScheduler) kick() {
	if s.busy || s.TotalBacklog() == 0 {
		return
	}
	s.busy = true
	s.eng.Schedule(time.Duration(float64(time.Second)/s.rate), s.serveFn)
}

// serveOne pops one unit of work in priority order (or arrival order in
// FIFO mode).
func (s *installScheduler) serveOne() {
	if s.fifoMode {
		if len(s.fifo) == 0 {
			return
		}
		it := s.fifo[0]
		s.fifo = s.fifo[1:]
		if !it.ingress {
			it.j()
			return
		}
		// Adjust the per-port count at pop time, before serving — the
		// same point where the priority path shortens its queue — and
		// drop zeroed entries so the map stays bounded by the set of
		// ports with backlog.
		if s.ingressCount[it.port]--; s.ingressCount[it.port] <= 0 {
			delete(s.ingressCount, it.port)
		}
		s.serveIngress(it.req)
		return
	}
	if len(s.admitted) > 0 {
		j := s.admitted[0]
		s.admitted = s.admitted[1:]
		j()
		return
	}
	if len(s.migration) > 0 {
		j := s.migration[0]
		s.migration = s.migration[1:]
		j()
		return
	}
	// Round-robin over ingress ports with pending requests. Ports whose
	// queues have drained are compacted out of the ring (and out of the
	// ingress map) rather than skipped, so rrPorts stays bounded by the
	// set of ports with backlog and never scans stale entries; a port
	// that refills re-enters the ring at the tail via SubmitIngress.
	// Queues pop by copy-down (not reslicing) so their full capacity
	// survives to be recycled through qPool when the port drains.
	for len(s.rrPorts) > 0 {
		if s.rrIdx >= len(s.rrPorts) {
			s.rrIdx = 0
		}
		port := s.rrPorts[s.rrIdx]
		q := s.ingress[port]
		if len(q) == 0 {
			// Dead slot: remove it in place; the next port slides into
			// this index, so rrIdx is not advanced.
			s.rrPorts = append(s.rrPorts[:s.rrIdx], s.rrPorts[s.rrIdx+1:]...)
			s.retire(port, q)
			continue
		}
		r := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		q = q[:len(q)-1]
		if len(q) == 0 {
			s.rrPorts = append(s.rrPorts[:s.rrIdx], s.rrPorts[s.rrIdx+1:]...)
			s.retire(port, q)
		} else {
			s.ingress[port] = q
			s.rrIdx++
		}
		s.serveIngress(r)
		return
	}
}
