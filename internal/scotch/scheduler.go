package scotch

import (
	"time"

	"scotch/internal/sim"
)

// job is one unit of controller work paced by a switch's scheduler —
// typically "send one FlowMod to this switch".
type job func()

// installScheduler paces the controller's rule installation toward one
// switch at rate R, the maximum loss-free insertion rate of that switch
// (paper §5.2/§6.1), with the paper's three priority classes:
//
//	admitted  — rules for flows admitted elsewhere (highest)
//	migration — large-flow migration path setup
//	ingress   — per-ingress-port queues of new-flow requests, served
//	            round-robin (lowest)
//
// "Such a priority order causes small flows to be forwarded on physical
// paths only after all large flows are accommodated."
type installScheduler struct {
	eng  *sim.Engine
	rate float64
	busy bool

	admitted  []job
	migration []job

	ingress map[uint32][]*flowReq
	rrPorts []uint32
	rrIdx   int

	// fifoMode disables the priority classes and per-port round robin:
	// all work is served in arrival order. This exists only for the
	// scheduler ablation; the paper's design is the priority scheduler.
	fifoMode     bool
	fifo         []job
	ingressCount map[uint32]int

	// serveIngress processes a popped new-flow request; wired to the
	// app's physical-admission path.
	serveIngress func(*flowReq)
}

func newScheduler(eng *sim.Engine, rate float64, serveIngress func(*flowReq)) *installScheduler {
	if rate <= 0 {
		panic("scotch: non-positive install rate")
	}
	return &installScheduler{
		eng:          eng,
		rate:         rate,
		ingress:      make(map[uint32][]*flowReq),
		ingressCount: make(map[uint32]int),
		serveIngress: serveIngress,
	}
}

// SubmitAdmitted queues highest-priority work (admitted-flow rules).
func (s *installScheduler) SubmitAdmitted(j job) {
	if s.fifoMode {
		s.fifo = append(s.fifo, j)
	} else {
		s.admitted = append(s.admitted, j)
	}
	s.kick()
}

// SubmitMigration queues a large-flow migration step.
func (s *installScheduler) SubmitMigration(j job) {
	if s.fifoMode {
		s.fifo = append(s.fifo, j)
	} else {
		s.migration = append(s.migration, j)
	}
	s.kick()
}

// SubmitIngress appends a new-flow request to its ingress-port queue.
func (s *installScheduler) SubmitIngress(port uint32, r *flowReq) {
	if s.fifoMode {
		s.fifo = append(s.fifo, func() {
			s.ingressCount[port]--
			s.serveIngress(r)
		})
		s.ingressCount[port]++
		s.kick()
		return
	}
	if _, ok := s.ingress[port]; !ok {
		s.rrPorts = append(s.rrPorts, port)
	}
	s.ingress[port] = append(s.ingress[port], r)
	s.kick()
}

// IngressLen returns the backlog of one ingress-port queue. In FIFO mode
// the per-port count is approximated by submissions minus services.
func (s *installScheduler) IngressLen(port uint32) int {
	if s.fifoMode {
		return s.ingressCount[port]
	}
	return len(s.ingress[port])
}

// TotalBacklog returns all queued work.
func (s *installScheduler) TotalBacklog() int {
	n := len(s.admitted) + len(s.migration) + len(s.fifo)
	for _, q := range s.ingress {
		n += len(q)
	}
	return n
}

func (s *installScheduler) kick() {
	if s.busy || s.TotalBacklog() == 0 {
		return
	}
	s.busy = true
	s.eng.Schedule(time.Duration(float64(time.Second)/s.rate), func() {
		s.serveOne()
		s.busy = false
		s.kick()
	})
}

// serveOne pops one unit of work in priority order (or arrival order in
// FIFO mode).
func (s *installScheduler) serveOne() {
	if s.fifoMode {
		if len(s.fifo) == 0 {
			return
		}
		j := s.fifo[0]
		s.fifo = s.fifo[1:]
		j()
		return
	}
	if len(s.admitted) > 0 {
		j := s.admitted[0]
		s.admitted = s.admitted[1:]
		j()
		return
	}
	if len(s.migration) > 0 {
		j := s.migration[0]
		s.migration = s.migration[1:]
		j()
		return
	}
	// Round-robin over ingress ports with pending requests.
	for range s.rrPorts {
		port := s.rrPorts[s.rrIdx%len(s.rrPorts)]
		s.rrIdx++
		if q := s.ingress[port]; len(q) > 0 {
			r := q[0]
			s.ingress[port] = q[1:]
			s.serveIngress(r)
			return
		}
	}
}
