package scotch

import (
	"testing"
	"time"

	"scotch/internal/capture"
	"scotch/internal/controller"
	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

func TestOffloadRulesInstalledOnActivation(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 2, 0)
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	f.eng.RunUntil(2 * time.Second)
	d.Stop()

	// Table 0 must hold one port-tag rule per protected ingress port;
	// table 1 must hold the group default.
	t0 := f.edge.Pipeline.Table(0)
	tagRules := 0
	for _, r := range t0.Rules() {
		if r.Priority == prioOffloadPortTag && r.Match.Fields.Has(openflow.FieldInPort) {
			tagRules++
			// The tag rule pushes the ingress port as the inner label and
			// continues to table 1.
			if len(r.Instructions) != 2 || r.Instructions[1].Type != openflow.InstrGotoTable {
				t.Fatalf("tag rule shape wrong: %+v", r.Instructions)
			}
			if got := r.Instructions[0].Actions[0]; got.Type != openflow.ActionTypePushMPLS ||
				got.MPLSLabel != r.Match.InPort {
				t.Fatalf("tag action = %+v, want push_mpls(%d)", got, r.Match.InPort)
			}
		}
	}
	if tagRules != 2 {
		t.Fatalf("tag rules = %d, want 2 (attacker + client ports)", tagRules)
	}
	t1 := f.edge.Pipeline.Table(1)
	if t1.Len() == 0 {
		t.Fatal("table 1 default missing")
	}
	def := t1.Rules()[len(t1.Rules())-1]
	if def.Instructions[0].Actions[0].Type != openflow.ActionTypeGroup {
		t.Fatalf("table 1 default action = %+v", def.Instructions[0].Actions[0])
	}
	if f.edge.Pipeline.Groups.Get(offloadGroupID) == nil {
		t.Fatal("select group missing")
	}
}

func TestDeactivationRemovesOffloadRules(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeactivateChecks = 3
	f := newFixture(t, cfg, 2, 0)
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	f.eng.RunUntil(2 * time.Second)
	d.Stop()
	f.eng.RunUntil(8 * time.Second)
	if f.app.Active(f.edge.DPID) {
		t.Fatal("still active")
	}
	for _, r := range f.edge.Pipeline.Table(0).Rules() {
		if r.Priority == prioOffloadPortTag {
			t.Fatal("port-tag rule survived withdrawal")
		}
	}
	for _, r := range f.edge.Pipeline.Table(1).Rules() {
		if r.Priority == prioOffloadDefault {
			t.Fatal("table-1 default survived withdrawal")
		}
	}
}

func TestLiveFanoutPromotesBackup(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 2, 1)
	ov := f.app.ov
	live := ov.liveFanout(f.edge.DPID)
	if len(live) != 2 {
		t.Fatalf("initial fanout = %d", len(live))
	}
	for _, pt := range live {
		if ov.backups[pt.vs] {
			t.Fatal("backup in fanout while primaries alive")
		}
	}
	// Kill one primary: the backup takes its slot.
	ov.failover(f.vs[0].DPID)
	live = ov.liveFanout(f.edge.DPID)
	if len(live) != 2 {
		t.Fatalf("fanout after failover = %d, want 2", len(live))
	}
	seenBackup := false
	for _, pt := range live {
		if pt.vs == f.vs[0].DPID {
			t.Fatal("dead vswitch still in fanout")
		}
		if ov.backups[pt.vs] {
			seenBackup = true
		}
	}
	if !seenBackup {
		t.Fatal("backup not promoted")
	}
	// Idempotent.
	ov.failover(f.vs[0].DPID)
	if f.app.Stats.FailoverSwaps != 1 {
		t.Fatalf("failover counted %d times", f.app.Stats.FailoverSwaps)
	}
}

func TestDeliveryFallsBackToBackup(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 2, 1)
	ov := f.app.ov
	vs, port, ok := ov.deliveryFor(f.server.IP)
	if !ok || vs != f.vs[0].DPID || port == 0 {
		t.Fatalf("primary delivery = %d/%d ok=%v", vs, port, ok)
	}
	ov.failover(f.vs[0].DPID)
	vs, port, ok = ov.deliveryFor(f.server.IP)
	if !ok || vs != f.vs[2].DPID || port == 0 {
		t.Fatalf("backup delivery = %d/%d ok=%v (want vs %d)", vs, port, ok, f.vs[2].DPID)
	}
}

func TestOffloadActionsGRE(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TunnelType = device.TunnelGRE
	f := newFixture(t, cfg, 1, 0)
	acts := f.app.ov.offloadActions(7)
	if len(acts) != 2 || acts[0].Type != openflow.ActionTypeSetField || acts[0].TunnelID != 7 {
		t.Fatalf("GRE offload actions = %+v", acts)
	}
	if acts[1].Type != openflow.ActionTypeGroup {
		t.Fatalf("second action = %+v", acts[1])
	}
}

func TestTunnelOriginResolution(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 2, 0)
	for _, pt := range f.app.ov.phys[f.edge.DPID] {
		origin, ok := f.app.ov.originOf(pt.id)
		if !ok || origin != f.edge.DPID {
			t.Fatalf("tunnel %d origin = %d ok=%v", pt.id, origin, ok)
		}
	}
	if _, ok := f.app.ov.originOf(999999); ok {
		t.Fatal("unknown tunnel resolved")
	}
}

func TestPathSwitchHot(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 2, 0)
	if f.app.pathSwitchHot(f.edge.DPID) {
		t.Fatal("idle switch reported hot")
	}
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	f.eng.RunUntil(2 * time.Second)
	d.Stop()
	if !f.app.pathSwitchHot(f.edge.DPID) {
		t.Fatal("saturated switch not reported hot")
	}
}

func TestFIFOSchedulerMode(t *testing.T) {
	eng := simNew()
	var order []string
	s := newScheduler(eng, 100, func(r *flowReq) { order = append(order, "ingress") })
	s.fifoMode = true
	s.SubmitIngress(1, &flowReq{port: 1})
	s.SubmitAdmitted(func() { order = append(order, "admitted") })
	s.SubmitMigration(func() { order = append(order, "migration") })
	eng.RunUntil(time.Second)
	want := []string{"ingress", "admitted", "migration"} // arrival order
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fifo order = %v, want %v", order, want)
		}
	}
	if s.IngressLen(1) != 0 {
		t.Fatalf("fifo ingress count = %d after service", s.IngressLen(1))
	}
}

func TestScotchPolicyChainUnit(t *testing.T) {
	// Regression test for the chain-rule collision: when a flow's entry
	// vSwitch doubles as the chain's aggregation vSwitch, packets must
	// traverse the middlebox exactly once, not loop through it.
	r := buildPolicyFixture(t, false)
	em := workload.NewEmitter(r.eng, r.client, r.cap)
	key := netaddr.FlowKey{Src: r.client.IP, Dst: r.server.IP, Proto: netaddr.ProtoTCP,
		SrcPort: 6000, DstPort: 80}
	before := r.fw.Passed // warm-up flows also crossed the chain
	em.Start(workload.Flow{Key: key, Packets: 100, Interval: 5 * time.Millisecond, Class: "probe"})
	r.eng.RunUntil(3 * time.Second)

	fl := r.cap.Flows("probe")
	if len(fl) != 1 || fl[0].PacketsRecv < 95 {
		t.Fatalf("probe delivery = %+v", fl)
	}
	// Each delivered packet crosses the firewall exactly once: the pass
	// count must be close to the packet count, not a multiple of it.
	if passed := r.fw.Passed - before; passed > 110 {
		t.Fatalf("firewall passed %d packets for a 100-packet flow: loop", passed)
	}
	if r.fw.Rejected != 0 {
		t.Fatalf("firewall rejected %d packets", r.fw.Rejected)
	}
}

func TestNaiveMigrationBreaksStatefulFlow(t *testing.T) {
	r := buildPolicyFixture(t, true)
	em := workload.NewEmitter(r.eng, r.client, r.cap)
	key := netaddr.FlowKey{Src: r.client.IP, Dst: r.server.IP, Proto: netaddr.ProtoTCP,
		SrcPort: 6000, DstPort: 80}
	// Big enough to trigger migration mid-flow.
	em.Start(workload.Flow{Key: key, Packets: 2000, Interval: 2 * time.Millisecond,
		Size: 1000, Class: "probe"})
	r.eng.RunUntil(8 * time.Second)
	if r.app.Stats.Migrated == 0 {
		t.Fatal("no migration happened")
	}
	if r.fw2.Rejected == 0 {
		t.Fatal("naive migration did not hit the stateless firewall")
	}
	fl := r.cap.Flows("probe")
	if fl[0].PacketsRecv >= fl[0].PacketsSent-10 {
		t.Fatal("flow survived naive migration; expected breakage")
	}
}

// policyFixture is a compact version of the fig8 diamond: two branches
// between the client's switch and the server's switch, each with an
// inline stateful firewall; the overlay chain pins flows through fw.
type policyFixture struct {
	eng    *sim.Engine
	app    *App
	c      *controller.Controller
	client *device.Host
	server *device.Host
	fw     *device.Firewall // on the policy branch
	fw2    *device.Firewall // on the shortest physical branch
	cap    *capture.Capture
}

func simNew() *sim.Engine { return sim.New(99) }

func buildPolicyFixture(t *testing.T, naive bool) *policyFixture {
	t.Helper()
	eng := sim.New(81)
	net := topo.New(eng)
	prof := device.Pica8Profile()
	s0 := net.AddSwitch("s0", prof)
	sau := net.AddSwitch("sa-u", prof)
	sad := net.AddSwitch("sa-d", prof)
	sbu := net.AddSwitch("sb-u", prof)
	sbd := net.AddSwitch("sb-d", prof)
	s3 := net.AddSwitch("s3", prof)

	slow := device.LinkConfig{Delay: 500 * time.Microsecond, RateBps: 1e9}
	fast := device.LinkConfig{Delay: 100 * time.Microsecond, RateBps: 1e9}
	fw := device.NewFirewall(eng, "fw-a", 50*time.Microsecond)
	fw2 := device.NewFirewall(eng, "fw-b", 50*time.Microsecond)

	net.LinkSwitches(s0, sau, slow)
	suOut, sdIn := net.LinkSwitchesVia(sau, fw, sad, slow)
	net.LinkSwitches(sad, s3, slow)
	net.LinkSwitches(s0, sbu, fast)
	net.LinkSwitchesVia(sbu, fw2, sbd, fast)
	net.LinkSwitches(sbd, s3, fast)

	client := net.AddHost("client", netaddr.MakeIPv4(10, 0, 0, 1))
	server := net.AddHost("server", netaddr.MakeIPv4(10, 0, 1, 1))
	cliPort := net.AttachHost(client, s0, fast)
	net.AttachHost(server, s3, fast)

	vs1 := net.AddSwitch("vs1", device.OVSProfile())
	vs2 := net.AddSwitch("vs2", device.OVSProfile())
	net.LinkSwitches(s0, vs1, fast)
	net.LinkSwitches(s3, vs2, fast)

	cfg := DefaultConfig()
	cfg.NaiveMigration = naive
	cfg.ElephantBytes = 10 << 10
	cfg.OverlayThreshold = 0
	cfg.ActivateRate = 5
	cfg.DeactivateRate = 0
	c := controller.New(eng, net)
	app := New(c, cfg)
	app.AddVSwitch(vs1.DPID, false)
	app.AddVSwitch(vs2.DPID, false)
	app.AssignHost(server.IP, vs2.DPID, 0)
	app.Protect(s0.DPID, cliPort)
	app.AddMiddlebox("fw-a", sau.DPID, sad.DPID, suOut, sdIn)
	appCfg := app.Cfg
	appCfg.Policy = func(key netaddr.FlowKey) []string {
		if key.Dst == server.IP {
			return []string{"fw-a"}
		}
		return nil
	}
	app.Cfg = appCfg
	c.ConnectAll()
	if err := app.Build(); err != nil {
		t.Fatal(err)
	}
	// Force activation with a warm-up burst so probes take the overlay.
	cp := capture.New(eng)
	cp.Attach(server)
	warm := workload.StartClient(workload.NewEmitter(eng, client, cp), server.IP, 100, 1, 0)
	warm.Class = "warmup"
	eng.RunUntil(2 * time.Second)
	warm.Stop()
	return &policyFixture{eng: eng, app: app, c: c, client: client, server: server,
		fw: fw, fw2: fw2, cap: cp}
}

// TestAllBackupsDeadDegrades kills every mesh vSwitch — both primaries
// and the lone backup. The overlay must degrade, not panic: the fan-out
// goes empty, canOverlay steers new flows back to the physical admission
// path, and the attack keeps being served by the controller directly.
func TestAllBackupsDeadDegrades(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 2, 1)
	ov := f.app.ov
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	f.eng.RunUntil(2 * time.Second)

	for _, vs := range f.vs {
		dead := vs.DPID
		f.eng.Schedule(0, func() { ov.failover(dead) })
	}
	f.eng.RunUntil(2*time.Second + 50*time.Millisecond)

	if got := len(ov.liveFanout(f.edge.DPID)); got != 0 {
		t.Fatalf("fanout = %d after killing every vSwitch, want 0", got)
	}
	if _, ok := ov.selectVSwitch(f.edge.DPID, netaddr.FlowKey{}); ok {
		t.Fatal("selectVSwitch resolved a dead mesh")
	}
	if want := uint64(len(f.vs)); f.app.Stats.FailoverSwaps != want {
		t.Fatalf("failover swaps = %d, want %d", f.app.Stats.FailoverSwaps, want)
	}

	// With the whole mesh dead the active offload blackholes new flows,
	// so the overlay's new-flow signal collapses and §5.5 withdrawal must
	// disengage it — after which misses punt again and the controller
	// resumes serving requests physically. No panic anywhere on the way.
	before := f.app.Stats.Requests
	f.eng.RunUntil(6 * time.Second)
	d.Stop()
	f.eng.RunUntil(7 * time.Second)
	if f.app.Stats.Withdrawals == 0 {
		t.Fatal("overlay never withdrew after total vSwitch loss")
	}
	if f.app.Stats.Requests <= before {
		t.Fatal("controller stopped serving requests after total vSwitch loss")
	}

	// Repeat deaths stay idempotent even from the degraded state.
	for _, vs := range f.vs {
		ov.failover(vs.DPID)
	}
	if want := uint64(len(f.vs)); f.app.Stats.FailoverSwaps != want {
		t.Fatalf("re-killing dead vSwitches re-counted swaps: %d, want %d",
			f.app.Stats.FailoverSwaps, want)
	}
}
