package scotch

import (
	"testing"
	"time"

	"scotch/internal/capture"
	"scotch/internal/controller"
	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

// fixture is the single-protected-switch Scotch deployment used by most
// tests: the paper's testbed (attacker, client, server on one Pica8)
// augmented with a small vSwitch pool.
type fixture struct {
	eng    *sim.Engine
	net    *topo.Network
	edge   *device.Switch
	vs     []*device.Switch
	c      *controller.Controller
	app    *App
	cap    *capture.Capture
	atkEm  *workload.Emitter
	cliEm  *workload.Emitter
	client *device.Host
	atk    *device.Host
	server *device.Host
}

func newFixture(t *testing.T, cfg Config, primaries, backups int) *fixture {
	t.Helper()
	eng := sim.New(42)
	net := topo.New(eng)
	edge := net.AddSwitch("edge", device.Pica8Profile())
	f := &fixture{eng: eng, net: net, edge: edge}
	link := device.LinkConfig{Delay: 50 * time.Microsecond, RateBps: 1e9}

	f.atk = net.AddHost("attacker", netaddr.MakeIPv4(10, 0, 0, 66))
	f.client = net.AddHost("client", netaddr.MakeIPv4(10, 0, 0, 10))
	f.server = net.AddHost("server", netaddr.MakeIPv4(10, 0, 1, 1))
	atkPort := net.AttachHost(f.atk, edge, link)
	cliPort := net.AttachHost(f.client, edge, link)
	net.AttachHost(f.server, edge, link)

	for i := 0; i < primaries+backups; i++ {
		vs := net.AddSwitch("vs"+string(rune('a'+i)), device.OVSProfile())
		net.LinkSwitches(edge, vs, device.LinkConfig{Delay: 20 * time.Microsecond, RateBps: 1e9})
		f.vs = append(f.vs, vs)
	}

	f.c = controller.New(eng, net)
	f.app = New(f.c, cfg)
	for i, vs := range f.vs {
		f.app.AddVSwitch(vs.DPID, i >= primaries)
	}
	var backup uint64
	if backups > 0 {
		backup = f.vs[primaries].DPID
	}
	f.app.AssignHost(f.server.IP, f.vs[0].DPID, backup)
	f.app.Protect(edge.DPID, atkPort, cliPort)
	f.c.ConnectAll()
	if err := f.app.Build(); err != nil {
		t.Fatal(err)
	}

	f.cap = capture.New(eng)
	f.cap.Attach(f.server)
	f.atkEm = workload.NewEmitter(eng, f.atk, f.cap)
	f.cliEm = workload.NewEmitter(eng, f.client, f.cap)
	return f
}

func TestActivationUnderAttack(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 2, 0)
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	f.eng.RunUntil(2 * time.Second)
	d.Stop()
	if !f.app.Active(f.edge.DPID) {
		t.Fatal("overlay never activated under a 2000 flows/s attack")
	}
	if f.app.Stats.Activations != 1 {
		t.Fatalf("activations = %d", f.app.Stats.Activations)
	}
	// Post-activation, new flows must ride tunnels: the edge stops
	// generating Packet-Ins at its saturation rate and the vSwitches take
	// over.
	var vsPunts uint64
	for _, vs := range f.vs {
		vsPunts += vs.Stats.PacketInSent
	}
	if vsPunts == 0 {
		t.Fatal("no Packet-Ins from vSwitches after activation")
	}
	if f.app.Stats.OverlayRouted == 0 {
		t.Fatal("no flows routed over the overlay")
	}
}

func TestClientProtectedDuringAttack(t *testing.T) {
	// The paper's headline: with Scotch, legitimate client flows survive a
	// control-plane DDoS that would otherwise starve them (and ingress-port
	// differentiation keeps the client's queue separate from the
	// attacker's).
	f := newFixture(t, DefaultConfig(), 2, 0)
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	cl := workload.StartClient(f.cliEm, f.server.IP, 100, 1, 0)
	f.eng.RunUntil(20 * time.Second)
	d.Stop()
	cl.Stop()
	f.eng.RunUntil(21 * time.Second)

	failure := f.cap.FailureFraction("client")
	if failure > 0.15 {
		t.Fatalf("client failure fraction with Scotch = %.2f, want < 0.15", failure)
	}
	// The attack itself must have been absorbed, not blocked at the data
	// plane: most attack flows also reach the server (Scotch scales the
	// control path; filtering is the job of security apps).
	if af := f.cap.FailureFraction("attack"); af > 0.5 {
		t.Fatalf("attack failure fraction = %.2f; overlay did not absorb the surge", af)
	}
}

func TestBaselineFailsUnderSameAttack(t *testing.T) {
	// Control experiment: the plain reactive baseline on the same topology
	// loses most client flows.
	eng := sim.New(42)
	tb := topo.NewTestbed(eng, device.Pica8Profile())
	c := controller.New(eng, tb.Net)
	controller.NewReactiveRouter(c)
	c.ConnectAll()
	cap := capture.New(eng)
	cap.Attach(tb.Server)
	atk := workload.NewEmitter(eng, tb.Attacker, cap)
	cli := workload.NewEmitter(eng, tb.Client, cap)
	d := workload.StartDDoS(atk, tb.Server.IP, 2000)
	cl := workload.StartClient(cli, tb.Server.IP, 100, 1, 0)
	eng.RunUntil(20 * time.Second)
	d.Stop()
	cl.Stop()
	eng.RunUntil(21 * time.Second)
	if failure := cap.FailureFraction("client"); failure < 0.5 {
		t.Fatalf("baseline client failure fraction = %.2f, want > 0.5", failure)
	}
}

func TestOverlayDeliversViaTunnels(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 2, 0)
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	f.eng.RunUntil(5 * time.Second)
	d.Stop()
	// Packets that reached the server over the overlay were decapsulated
	// from a delivery tunnel.
	var decapped uint64
	for _, vs := range f.vs {
		for pid := uint32(1000); pid < 1100; pid++ {
			if p := vs.Port(pid); p != nil && p.Tunnel != nil {
				decapped += p.Tunnel.Decapped()
			}
		}
	}
	if decapped == 0 {
		t.Fatal("no tunnel decapsulations recorded")
	}
}

func TestWithdrawalAfterAttackEnds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeactivateChecks = 5
	f := newFixture(t, cfg, 2, 0)
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	f.eng.RunUntil(3 * time.Second)
	d.Stop()
	// Quiet period: monitor sees the rate fall and withdraws.
	f.eng.RunUntil(10 * time.Second)
	if f.app.Active(f.edge.DPID) {
		t.Fatal("overlay still active after the attack stopped")
	}
	if f.app.Stats.Withdrawals != 1 {
		t.Fatalf("withdrawals = %d", f.app.Stats.Withdrawals)
	}
	// New flows now punt from the edge switch again and get physical
	// paths.
	before := f.app.Stats.PhysicalAdmitted
	cl := workload.StartClient(f.cliEm, f.server.IP, 50, 1, 0)
	f.eng.RunUntil(14 * time.Second)
	cl.Stop()
	if f.app.Stats.PhysicalAdmitted == before {
		t.Fatal("no physical admissions after withdrawal")
	}
	if failure := f.cap.FailureFraction("client"); failure > 0.1 {
		t.Fatalf("client failure after withdrawal = %.2f", failure)
	}
}

func TestWithdrawalPinsOverlayFlows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeactivateChecks = 5
	cfg.ElephantBytes = 1 << 30 // disable migration for this test
	f := newFixture(t, cfg, 2, 0)
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	// A long-lived client flow that will be on the overlay when the
	// attack stops.
	key := netaddr.FlowKey{Src: f.client.IP, Dst: f.server.IP, Proto: netaddr.ProtoTCP, SrcPort: 7777, DstPort: 80}
	f.eng.Schedule(time.Second, func() {
		f.cliEm.Start(workload.Flow{Key: key, Packets: 2000, Interval: 5 * time.Millisecond, Class: "longflow"})
	})
	f.eng.RunUntil(3 * time.Second)
	d.Stop()
	// The long flow runs until t=11s; verify continuity while it is alive.
	f.eng.RunUntil(8 * time.Second)
	if f.app.Active(f.edge.DPID) {
		t.Fatal("not withdrawn")
	}
	if f.app.Stats.Pinned == 0 {
		t.Fatal("no flows pinned at withdrawal")
	}
	fl := f.cap.Flows("longflow")
	if len(fl) != 1 {
		t.Fatalf("long flows = %d", len(fl))
	}
	mid := fl[0].PacketsRecv
	f.eng.RunUntil(10 * time.Second)
	if fl[0].PacketsRecv <= mid {
		t.Fatal("pinned flow stalled after withdrawal")
	}
}

func TestElephantMigration(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(t, cfg, 2, 0)
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	key := netaddr.FlowKey{Src: f.client.IP, Dst: f.server.IP, Proto: netaddr.ProtoTCP, SrcPort: 9999, DstPort: 80}
	// Start the elephant once the overlay is active so it is admitted to
	// the overlay (the attacker keeps the client's queue long enough that
	// some flows overflow to the overlay; to force it, use a burst first).
	f.eng.Schedule(time.Second, func() {
		// Fill the client port's queue so the elephant lands on the
		// overlay path.
		for i := 0; i < 60; i++ {
			k := netaddr.FlowKey{Src: f.client.IP, Dst: f.server.IP, Proto: netaddr.ProtoTCP, SrcPort: uint16(3000 + i), DstPort: 80}
			f.cliEm.Start(workload.Flow{Key: k, Packets: 1, Class: "filler"})
		}
		f.cliEm.Start(workload.Flow{Key: key, Packets: 5000, Interval: 2 * time.Millisecond, Size: 1000, Class: "elephant"})
	})
	// The elephant runs from t=1s to t=11s; migration should land within a
	// few stats-poll intervals of its start.
	f.eng.RunUntil(6 * time.Second)

	fi := f.c.FlowDB.Lookup(key)
	if fi == nil {
		t.Fatal("elephant not in FlowDB")
	}
	if !fi.Migrated {
		t.Fatalf("elephant not migrated (onOverlay=%v, stats=%+v)", fi.OnOverlay, f.app.Stats)
	}
	if f.app.Stats.Migrated == 0 {
		t.Fatal("migration count zero")
	}
	// After migration the flow continues, now over the physical path.
	fl := f.cap.Flows("elephant")
	if len(fl) != 1 || fl[0].PacketsRecv == 0 {
		t.Fatal("elephant stopped flowing")
	}
	mid := fl[0].PacketsRecv
	f.eng.RunUntil(8 * time.Second)
	d.Stop()
	if fl[0].PacketsRecv <= mid {
		t.Fatal("elephant stalled after migration")
	}
}

func TestFailoverToBackupVSwitch(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(t, cfg, 2, 1)
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	f.eng.RunUntil(2 * time.Second)
	// Kill the first primary vSwitch.
	f.vs[0].Fail()
	f.eng.RunUntil(6 * time.Second)
	if f.app.Stats.FailoverSwaps == 0 {
		t.Fatal("failover never triggered")
	}
	// The mesh keeps absorbing the attack: client flows still succeed.
	cl := workload.StartClient(f.cliEm, f.server.IP, 100, 1, 0)
	f.eng.RunUntil(16 * time.Second)
	d.Stop()
	cl.Stop()
	f.eng.RunUntil(17 * time.Second)
	if failure := f.cap.FailureFraction("client"); failure > 0.25 {
		t.Fatalf("client failure after failover = %.2f", failure)
	}
}

func TestSelectVSwitchMirrorsGroupHash(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 2, 0)
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	f.eng.RunUntil(2 * time.Second)
	d.Stop()
	g := f.edge.Pipeline.Groups.Get(offloadGroupID)
	if g == nil {
		t.Fatal("offload group missing at edge switch")
	}
	for i := 0; i < 500; i++ {
		key := netaddr.FlowKey{Src: netaddr.IPv4(i * 7), Dst: f.server.IP,
			Proto: netaddr.ProtoTCP, SrcPort: uint16(i), DstPort: 80}
		want := g.SelectBucket(key.Hash()).Actions[0].Port
		pt, ok := f.app.ov.selectVSwitch(f.edge.DPID, key)
		if !ok {
			t.Fatal("selectVSwitch failed")
		}
		if pt.physPort != want {
			t.Fatalf("controller predicts port %d, switch selects %d", pt.physPort, want)
		}
	}
}

func TestDropThresholdEngages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OverlayInstallRate = 50 // strangle the overlay path
	cfg.OverlayThreshold = 5
	cfg.DropThreshold = 20
	f := newFixture(t, cfg, 2, 0)
	d := workload.StartDDoS(f.atkEm, f.server.IP, 3000)
	f.eng.RunUntil(10 * time.Second)
	d.Stop()
	if f.app.Stats.Dropped == 0 {
		t.Fatal("dropping threshold never engaged with a strangled overlay")
	}
}

func TestSchedulerPriorityOrder(t *testing.T) {
	eng := sim.New(1)
	var order []string
	s := newScheduler(eng, 100, func(r *flowReq) { order = append(order, "ingress") })
	s.SubmitIngress(1, &flowReq{})
	s.SubmitIngress(1, &flowReq{})
	s.SubmitMigration(func() { order = append(order, "migration") })
	s.SubmitAdmitted(func() { order = append(order, "admitted") })
	eng.RunUntil(time.Second)
	want := []string{"admitted", "migration", "ingress", "ingress"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulerRoundRobinFairness(t *testing.T) {
	eng := sim.New(1)
	served := map[uint32]int{}
	s := newScheduler(eng, 100, func(r *flowReq) { served[r.port]++ })
	// Port 1 floods; port 2 trickles. RR must give port 2 its share.
	for i := 0; i < 200; i++ {
		s.SubmitIngress(1, &flowReq{port: 1})
	}
	for i := 0; i < 20; i++ {
		s.SubmitIngress(2, &flowReq{port: 2})
	}
	eng.RunUntil(400 * time.Millisecond) // ~40 service slots
	if served[2] < 15 {
		t.Fatalf("flooded port starved the quiet port: %v", served)
	}
}

func TestSchedulerPacesAtRate(t *testing.T) {
	eng := sim.New(1)
	n := 0
	s := newScheduler(eng, 200, func(r *flowReq) { n++ })
	for i := 0; i < 1000; i++ {
		s.SubmitIngress(1, &flowReq{port: 1})
	}
	eng.RunUntil(2 * time.Second)
	if n < 390 || n > 410 {
		t.Fatalf("served %d in 2s at rate 200, want ~400", n)
	}
}

func TestKeyFromMatchRoundTrip(t *testing.T) {
	k := netaddr.FlowKey{Src: netaddr.MakeIPv4(1, 2, 3, 4), Dst: netaddr.MakeIPv4(5, 6, 7, 8),
		Proto: netaddr.ProtoTCP, SrcPort: 1000, DstPort: 80}
	m := exactMatch(k)
	back, ok := keyFromMatch(&m)
	if !ok || back != k {
		t.Fatalf("round trip = %+v ok=%v", back, ok)
	}
	ku := netaddr.FlowKey{Src: k.Src, Dst: k.Dst, Proto: netaddr.ProtoUDP, SrcPort: 53, DstPort: 53}
	mu := exactMatch(ku)
	backu, ok := keyFromMatch(&mu)
	if !ok || backu != ku {
		t.Fatalf("udp round trip = %+v", backu)
	}
	var empty = exactMatch(k)
	empty.Fields = 0
	if _, ok := keyFromMatch(&empty); ok {
		t.Fatal("keyFromMatch accepted a wildcard")
	}
}

func TestGREVariantEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TunnelType = device.TunnelGRE
	f := newFixture(t, cfg, 2, 0)
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	cl := workload.StartClient(f.cliEm, f.server.IP, 100, 1, 0)
	f.eng.RunUntil(10 * time.Second)
	d.Stop()
	cl.Stop()
	f.eng.RunUntil(11 * time.Second)
	if !f.app.Active(f.edge.DPID) {
		t.Fatal("GRE overlay never activated")
	}
	if failure := f.cap.FailureFraction("client"); failure > 0.2 {
		t.Fatalf("client failure with GRE overlay = %.2f", failure)
	}
}
