package scotch

import (
	"scotch/internal/controller"
	"scotch/internal/topo"
)

// DeployLeafSpine wires a Scotch app over a leaf-spine fabric built by
// topo.NewLeafSpine, following the paper's deployment guidance (§5.6):
// every rack's vSwitches join the mesh, hosts deliver through a vSwitch in
// their own rack (with the rack's second vSwitch as backup when present),
// and every leaf is protected on its host ports and spine uplinks. The
// caller still runs Connect/Build:
//
//	c := controller.New(eng, ls.Net)
//	app := scotch.New(c, cfg)
//	scotch.DeployLeafSpine(app, ls, lsCfg)
//	c.ConnectAll()
//	app.Build()
func DeployLeafSpine(app *App, ls *topo.LeafSpine, cfg topo.LeafSpineConfig) {
	for _, vs := range ls.VSwitches {
		app.AddVSwitch(vs.DPID, false)
	}
	per := cfg.VSwitchesPerLeaf
	for ip, leaf := range ls.HostLeaf {
		primary := ls.VSwitches[leaf*per].DPID
		var backup uint64
		if per > 1 {
			backup = ls.VSwitches[leaf*per+1].DPID
		}
		app.AssignHost(ip, primary, backup)
	}
	for _, leaf := range ls.Leaves {
		var ports []uint32
		for p := uint32(1); p <= uint32(cfg.Spines+cfg.HostsPerLeaf); p++ {
			ports = append(ports, p)
		}
		app.Protect(leaf.DPID, ports...)
	}
}

// NewLeafSpineDeployment is the one-call variant: it creates the
// controller and app, deploys, connects, and builds.
func NewLeafSpineDeployment(ls *topo.LeafSpine, lsCfg topo.LeafSpineConfig, cfg Config) (*controller.Controller, *App, error) {
	c := controller.New(ls.Net.Eng, ls.Net)
	app := New(c, cfg)
	DeployLeafSpine(app, ls, lsCfg)
	c.ConnectAll()
	if err := app.Build(); err != nil {
		return nil, nil, err
	}
	return c, app, nil
}
