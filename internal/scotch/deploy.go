package scotch

import (
	"scotch/internal/controller"
	"scotch/internal/topo"
)

// DeployLeafSpine wires a Scotch app over a leaf-spine fabric built by
// topo.NewLeafSpine, following the paper's deployment guidance (§5.6):
// every rack's vSwitches join the mesh, hosts deliver through a vSwitch in
// their own rack (with the rack's second vSwitch as backup when present),
// and every leaf is protected on its host ports and spine uplinks. The
// caller still runs Connect/Build:
//
//	c := controller.New(eng, ls.Net)
//	app := scotch.New(c, cfg)
//	scotch.DeployLeafSpine(app, ls, lsCfg)
//	c.ConnectAll()
//	app.Build()
func DeployLeafSpine(app *App, ls *topo.LeafSpine, cfg topo.LeafSpineConfig) {
	for _, vs := range ls.VSwitches {
		app.AddVSwitch(vs.DPID, false)
	}
	per := cfg.VSwitchesPerLeaf
	for ip, leaf := range ls.HostLeaf {
		primary := ls.VSwitches[leaf*per].DPID
		var backup uint64
		if per > 1 {
			backup = ls.VSwitches[leaf*per+1].DPID
		}
		app.AssignHost(ip, primary, backup)
	}
	for _, leaf := range ls.Leaves {
		var ports []uint32
		for p := uint32(1); p <= uint32(cfg.Spines+cfg.HostsPerLeaf); p++ {
			ports = append(ports, p)
		}
		app.Protect(leaf.DPID, ports...)
	}
}

// NewLeafSpineDeployment is the one-call variant: it creates the
// controller and app, deploys, connects, and builds.
func NewLeafSpineDeployment(ls *topo.LeafSpine, lsCfg topo.LeafSpineConfig, cfg Config) (*controller.Controller, *App, error) {
	c := controller.New(ls.Net.Eng, ls.Net)
	app := New(c, cfg)
	DeployLeafSpine(app, ls, lsCfg)
	c.ConnectAll()
	if err := app.Build(); err != nil {
		return nil, nil, err
	}
	return c, app, nil
}

// DeployFatTree wires a Scotch app over a fat-tree fabric built by
// topo.NewFatTree, following the same per-rack guidance as DeployLeafSpine:
// every pod's vSwitch pool joins the mesh, hosts deliver through a vSwitch
// of their own pod (spread round-robin, with the pod's next vSwitch as
// backup when the pool has more than one), and every edge (ToR) switch is
// protected on its aggregation uplinks and host ports. The caller still
// runs Connect/Build.
func DeployFatTree(app *App, ft *topo.FatTree) {
	for _, vs := range ft.VSwitches {
		app.AddVSwitch(vs.DPID, false)
	}
	per := ft.Cfg.VSwitchesPerPod
	for p, hosts := range ft.Hosts {
		pool := ft.PodVSwitches(p)
		for i, h := range hosts {
			primary := pool[i%per].DPID
			var backup uint64
			if per > 1 {
				backup = pool[(i+1)%per].DPID
			}
			app.AssignHost(h.IP, primary, backup)
		}
	}
	// Edge ports are allocated uplinks-first (k/2 aggs), then hosts; the
	// vSwitch attachments that follow stay unprotected, as on leaf-spine.
	uplinks := ft.Cfg.K / 2
	for _, edges := range ft.Edge {
		for _, ed := range edges {
			var ports []uint32
			for pt := uint32(1); pt <= uint32(uplinks+ft.Cfg.HostsPerEdge); pt++ {
				ports = append(ports, pt)
			}
			app.Protect(ed.DPID, ports...)
		}
	}
}

// NewFatTreeDeployment is the one-call variant of DeployFatTree: it
// creates the controller and app, deploys, connects, and builds.
func NewFatTreeDeployment(ft *topo.FatTree, cfg Config) (*controller.Controller, *App, error) {
	c := controller.New(ft.Net.Eng, ft.Net)
	app := New(c, cfg)
	DeployFatTree(app, ft)
	c.ConnectAll()
	if err := app.Build(); err != nil {
		return nil, nil, err
	}
	return c, app, nil
}
