package scotch

// Control devolution (ROADMAP item 4, after LazyCtrl and "Dynamic
// Switch-Controller Association and Control Devolution"): the controller
// distributes per-tenant default-forward policies to the mesh vSwitches
// so cache-hit mice flows are classified and rule-installed locally —
// no Packet-In reaches the controller — while elephants, policy-
// sensitive tenants, and first-contact prefixes still escalate
// centrally. This file is the controller side: policy authoring, the
// versioned push (generation-fenced like the cluster role handoff), and
// the lifecycle wiring into Build/AddVSwitch/DrainVSwitch/failover.

import (
	"sort"

	"scotch/internal/devolve"
	"scotch/internal/netaddr"
	"scotch/internal/sim"
)

// devolution is the app's devolution state: the authored tenant
// policies, the monotonically increasing policy generation, and one
// policy cache per attached mesh member.
type devolution struct {
	tenants []devolve.TenantPolicy
	gen     uint64
	caches  map[uint64]*devolve.Cache
	metrics *devolve.Metrics
}

// EnableDevolution switches on control devolution. On a built overlay
// the current mesh members get policy caches and the initial table
// immediately; before Build the caches attach when Build runs. Calling
// it twice is a no-op.
func (a *App) EnableDevolution() {
	if a.devo != nil {
		return
	}
	a.devo = &devolution{
		caches:  make(map[uint64]*devolve.Cache),
		metrics: devolve.NewMetrics(),
	}
	if a.built {
		for _, dpid := range a.MeshMembers() {
			a.devoAttach(dpid)
		}
		a.RepublishPolicy()
	}
}

// DevolutionEnabled reports whether EnableDevolution has run.
func (a *App) DevolutionEnabled() bool { return a.devo != nil }

// DevolveTenant authors (or updates) a tenant's devolution policy:
// flows sourced in prefix belong to the tenant, and sensitive tenants
// (middlebox-chained) always escalate centrally. On a built overlay the
// updated table publishes immediately.
func (a *App) DevolveTenant(name string, prefix netaddr.Prefix, sensitive bool) {
	if a.devo == nil {
		return
	}
	tp := devolve.TenantPolicy{Name: name, Prefix: prefix, Sensitive: sensitive}
	for i := range a.devo.tenants {
		if a.devo.tenants[i].Name == name {
			a.devo.tenants[i] = tp
			a.RepublishPolicy()
			return
		}
	}
	a.devo.tenants = append(a.devo.tenants, tp)
	a.RepublishPolicy()
}

// RevokeDevolveTenant removes a tenant's devolution policy; the push
// invalidates the tenant's locally installed rules at every member, so
// its flows escalate centrally from the next packet on.
func (a *App) RevokeDevolveTenant(name string) {
	if a.devo == nil {
		return
	}
	kept := a.devo.tenants[:0]
	for _, tp := range a.devo.tenants {
		if tp.Name != name {
			kept = append(kept, tp)
		}
	}
	a.devo.tenants = kept
	a.RepublishPolicy()
}

// RepublishPolicy bumps the policy generation and pushes a fresh table
// to every attached cache (sorted member order, for reproducibility).
// The cluster coordinator calls this after a switch migration so caches
// fed by a previous master cannot serve pre-handoff policy; it is a
// no-op until devolution is enabled and the overlay is built.
func (a *App) RepublishPolicy() {
	if a.devo == nil || !a.built {
		return
	}
	a.devo.gen++
	dpids := make([]uint64, 0, len(a.devo.caches))
	for dpid := range a.devo.caches {
		dpids = append(dpids, dpid)
	}
	sort.Slice(dpids, func(i, j int) bool { return dpids[i] < dpids[j] })
	for _, dpid := range dpids {
		a.pushPolicy(dpid)
	}
}

// PolicyGeneration returns the current policy-table generation.
func (a *App) PolicyGeneration() uint64 {
	if a.devo == nil {
		return 0
	}
	return a.devo.gen
}

// DevolveMetrics returns the devolution metrics aggregate (nil until
// EnableDevolution).
func (a *App) DevolveMetrics() *devolve.Metrics {
	if a.devo == nil {
		return nil
	}
	return a.devo.metrics
}

// DevolveCache returns the policy cache attached to one mesh member
// (nil when devolution is off or the member has no cache).
func (a *App) DevolveCache(dpid uint64) *devolve.Cache {
	if a.devo == nil {
		return nil
	}
	return a.devo.caches[dpid]
}

// devoAttach creates and attaches a policy cache for a mesh member.
// No-op when devolution is off, the member already has a cache, or the
// member's device is unknown to the current controller.
func (a *App) devoAttach(dpid uint64) {
	if a.devo == nil || a.devo.caches[dpid] != nil {
		return
	}
	h := a.C.Switch(dpid)
	if h == nil || h.Dev == nil {
		return
	}
	a.devo.caches[dpid] = devolve.New(a.C.Eng, h.Dev, a.Cfg.StatsInterval, a.devo.metrics)
}

// devoDropMember flushes and detaches a departing member's cache
// (drain or failover) and republishes so the survivors learn the
// re-homed delivery routes.
func (a *App) devoDropMember(dpid uint64) {
	if a.devo == nil {
		return
	}
	if c := a.devo.caches[dpid]; c != nil {
		c.Flush()
		c.Detach()
		delete(a.devo.caches, dpid)
	}
	a.RepublishPolicy()
}

// devoOriginRate sums the rate of locally absorbed misses attributed to
// one protected origin across all caches — the load component the
// monitor's Packet-In signals no longer see.
func (a *App) devoOriginRate(origin uint64, now sim.Time) float64 {
	if a.devo == nil {
		return 0
	}
	var rate float64
	for _, c := range a.devo.caches {
		rate += c.OriginRate(origin, now)
	}
	return rate
}

// devoObserveCentral records a centrally admitted flow's setup latency
// (punt arrival to install) for the devolved-vs-central comparison.
func (a *App) devoObserveCentral(r *flowReq) {
	if a.devo == nil || r.at == 0 {
		return
	}
	a.devo.metrics.ObserveCentralSetup(a.C.Eng.Now() - r.at)
}

// pushPolicy builds the member-specific policy table and delivers it
// through the member's switch handle with control-channel delay; the
// push is slave-suppressed, so only the member's current master can
// update its cache.
func (a *App) pushPolicy(dpid uint64) {
	c := a.devo.caches[dpid]
	h := a.C.Switch(dpid)
	if c == nil || h == nil {
		return
	}
	t := a.devolveTable(dpid)
	h.PushPolicy(func() { c.Apply(t) })
}

// devolveTable assembles the policy table one mesh member should hold:
// the tenant policies plus member-local forwarding routes (the host
// delivery tunnel when this member delivers the destination, otherwise
// the mesh tunnel toward the delivery vSwitch) and the fan-out tunnel
// origin map for load attribution. Destinations without a live
// delivery, and members without a mesh tunnel toward one, are simply
// omitted — flows to them escalate with reason "no-route".
func (a *App) devolveTable(member uint64) *devolve.Table {
	t := &devolve.Table{
		Gen:             a.devo.gen,
		Tenants:         append([]devolve.TenantPolicy(nil), a.devo.tenants...),
		Routes:          make(map[netaddr.IPv4]uint32),
		Origins:         make(map[uint64]uint64),
		RulePriority:    prioVSwitch,
		IdleTimeout:     a.Cfg.RuleIdleTimeout,
		ElephantBytes:   a.Cfg.ElephantBytes,
		ElephantPackets: a.Cfg.ElephantPackets,
	}
	for ip := range a.ov.deliveries {
		vs, port, ok := a.ov.deliveryFor(ip)
		if !ok {
			continue
		}
		if vs == member {
			t.Routes[ip] = port
		} else if mp, ok := a.ov.meshPort[[2]uint64{member, vs}]; ok {
			t.Routes[ip] = mp
		}
	}
	for id, origin := range a.ov.tunnelOrigin {
		t.Origins[id] = origin
	}
	return t
}
