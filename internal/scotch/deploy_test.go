package scotch

import (
	"testing"
	"time"

	"scotch/internal/capture"
	"scotch/internal/sim"
	"scotch/internal/topo"
	"scotch/internal/workload"
)

func TestLeafSpineDeployment(t *testing.T) {
	eng := sim.New(6)
	lsCfg := topo.DefaultLeafSpineConfig()
	ls := topo.NewLeafSpine(eng, lsCfg)
	_, app, err := NewLeafSpineDeployment(ls, lsCfg, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Every leaf is protected; every host has a same-rack delivery vSwitch
	// with a backup.
	for _, leaf := range ls.Leaves {
		if app.protected[leaf.DPID] == nil {
			t.Fatalf("%s not protected", leaf.Name())
		}
	}
	for ip, leaf := range ls.HostLeaf {
		d := app.ov.deliveries[ip]
		if d == nil {
			t.Fatalf("host %v has no delivery vSwitch", ip)
		}
		if ls.VSwitchAt[d.vs] != leaf {
			t.Fatalf("host %v delivers via rack %d, want %d", ip, ls.VSwitchAt[d.vs], leaf)
		}
		if d.backup == 0 || ls.VSwitchAt[d.backup] != leaf {
			t.Fatalf("host %v backup misplaced", ip)
		}
	}
}

func TestLeafSpineCrossRackUnderAttack(t *testing.T) {
	// Full-fabric integration: an attack out of rack 0 toward rack 3 must
	// not starve a cross-rack tenant flow out of the same rack.
	eng := sim.New(6)
	lsCfg := topo.DefaultLeafSpineConfig()
	ls := topo.NewLeafSpine(eng, lsCfg)
	_, app, err := NewLeafSpineDeployment(ls, lsCfg, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	cap := capture.New(eng)
	for _, hosts := range ls.Hosts {
		for _, h := range hosts {
			cap.Attach(h)
		}
	}
	atk := workload.StartDDoS(workload.NewEmitter(eng, ls.Hosts[0][0], cap), topo.HostIP(3, 0), 2000)
	cli := workload.StartClient(workload.NewEmitter(eng, ls.Hosts[0][1], cap), topo.HostIP(2, 1), 80, 3, 5*time.Millisecond)
	eng.RunUntil(6 * time.Second)
	atk.Stop()
	cli.Stop()
	eng.RunUntil(7 * time.Second)

	if !app.Active(ls.Leaves[0].DPID) {
		t.Fatal("attacked leaf never activated")
	}
	if got := cap.FailureFraction("client"); got > 0.15 {
		t.Fatalf("tenant failure = %.2f under cross-rack attack", got)
	}
	if got := cap.CompletionFraction("client"); got < 0.6 {
		t.Fatalf("tenant completion = %.2f", got)
	}
}
