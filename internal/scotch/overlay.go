package scotch

import (
	"fmt"
	"sort"
	"time"

	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/sim"
)

// offloadGroupID is the select group at each protected physical switch
// whose buckets tunnel to the switch's fan-out vSwitches.
const offloadGroupID = 1

// Rule priorities. Red (per-flow physical) rules shadow green (shared
// overlay) rules, as in the paper's Fig. 8.
const (
	prioOffloadPortTag = 1   // table 0: in_port -> push label, goto table 1
	prioOffloadDefault = 0   // table 1: any -> group
	prioGreenChain     = 2   // shared middlebox-chain rules at S_U/S_D
	prioPin            = 150 // withdrawal pins: keep existing overlay flows
	prioRed            = 200 // per-flow physical-path rules
	prioVSwitch        = 100 // per-flow rules at mesh vSwitches
)

// physTunnel is one tunnel from a protected switch into the mesh.
type physTunnel struct {
	vs       uint64 // mesh vSwitch dpid
	physPort uint32 // tunnel port at the physical switch
	vsPort   uint32 // tunnel port at the vSwitch
	id       uint64
}

// delivery records how a host is reached from the mesh.
type delivery struct {
	vs     uint64 // delivery vSwitch
	vsPort uint32 // tunnel port at the vSwitch toward the host
	backup uint64 // backup delivery vSwitch (0 = none)
}

// Overlay owns the Scotch tunnel fabric: the vSwitch full mesh, the
// physical-switch fan-out tunnels, and the host delivery tunnels.
type Overlay struct {
	app *App

	vswitches []uint64 // mesh members (primaries and backups)
	backups   map[uint64]bool
	alive     map[uint64]bool
	// draining members carry their established flows out but accept no
	// new assignments: they are excluded from select-group buckets and
	// delivery lookups until DrainVSwitch finishes tearing them down.
	draining map[uint64]bool

	meshPort     map[[2]uint64]uint32 // (from, to) -> out port at from
	meshID       map[[2]uint64]uint64 // (from, to) -> tunnel id
	deliveries   map[netaddr.IPv4]*delivery
	deliveryPort map[[2]uint64]uint32 // (vs, host-as-ip) unused; see deliveries

	phys           map[uint64][]physTunnel // protected switch -> fan-out tunnels
	tunnelOrigin   map[uint64]uint64       // tunnel id -> physical switch dpid
	groupInstalled map[uint64]bool

	// tunnels indexes every overlay tunnel by id, and deliveryTun the
	// host delivery tunnels by (vs, host-as-ip), so live pool shrinkage
	// can tear them down again.
	tunnels     map[uint64]*device.Tunnel
	deliveryTun map[[2]uint64]*device.Tunnel

	nextTunnelID uint64
	nextPort     map[uint64]uint32 // per-node logical port allocator
	hostPorts    map[netaddr.IPv4]uint32

	// liveFanout scratch buffers; see its comment for the reuse contract.
	fanoutScratch []physTunnel
	spareScratch  []physTunnel
}

func newOverlay(app *App) *Overlay {
	return &Overlay{
		app:            app,
		backups:        make(map[uint64]bool),
		alive:          make(map[uint64]bool),
		draining:       make(map[uint64]bool),
		meshPort:       make(map[[2]uint64]uint32),
		meshID:         make(map[[2]uint64]uint64),
		deliveries:     make(map[netaddr.IPv4]*delivery),
		deliveryPort:   make(map[[2]uint64]uint32),
		phys:           make(map[uint64][]physTunnel),
		tunnelOrigin:   make(map[uint64]uint64),
		groupInstalled: make(map[uint64]bool),
		tunnels:        make(map[uint64]*device.Tunnel),
		deliveryTun:    make(map[[2]uint64]*device.Tunnel),
		nextPort:       make(map[uint64]uint32),
		hostPorts:      make(map[netaddr.IPv4]uint32),
	}
}

func (o *Overlay) allocPort(dpid uint64) uint32 {
	p, ok := o.nextPort[dpid]
	if !ok {
		p = 1000 // well clear of topology-assigned data ports
	}
	o.nextPort[dpid] = p + 1
	return p
}

func (o *Overlay) allocTunnelID() uint64 {
	o.nextTunnelID++
	return o.nextTunnelID
}

// isMesh reports whether dpid is a mesh vSwitch.
func (o *Overlay) isMesh(dpid uint64) bool {
	for _, v := range o.vswitches {
		if v == dpid {
			return true
		}
	}
	return false
}

// originOf resolves a tunnel id to the protected physical switch that owns
// it (the paper's tunnel-id -> switch-id table, §5.2).
func (o *Overlay) originOf(tunnelID uint64) (uint64, bool) {
	dpid, ok := o.tunnelOrigin[tunnelID]
	return dpid, ok
}

// build creates every tunnel: the vSwitch full mesh, fan-out tunnels from
// each protected switch, and delivery tunnels to each assigned host.
// Configuration is done offline (paper §5.6), before traffic flows.
func (o *Overlay) build() error {
	a := o.app
	net := a.C.Net

	// Full mesh between vSwitches.
	for i, va := range o.vswitches {
		for _, vb := range o.vswitches[i+1:] {
			if err := o.buildMeshTunnel(va, vb); err != nil {
				return err
			}
		}
	}

	// Fan-out tunnels from each protected switch to its nearest vSwitches;
	// the receiving side strips the inner (ingress-port) label into packet
	// metadata.
	// Sorted: tunnel port/id allocation below must not depend on map
	// iteration order, or reruns of the same seed diverge.
	protDPIDs := make([]uint64, 0, len(a.protected))
	for dpid := range a.protected {
		protDPIDs = append(protDPIDs, dpid)
	}
	sort.Slice(protDPIDs, func(i, j int) bool { return protDPIDs[i] < protDPIDs[j] })
	for _, dpid := range protDPIDs {
		sw := net.Switch(dpid)
		if sw == nil {
			return fmt.Errorf("scotch: unknown protected switch %d", dpid)
		}
		vss := o.nearestVSwitches(dpid, a.Cfg.FanOut)
		if len(vss) == 0 {
			return fmt.Errorf("scotch: no vswitches available for switch %d", dpid)
		}
		// Pre-build tunnels to backups too so failover only swaps buckets.
		for _, vs := range o.vswitches {
			if o.backups[vs] {
				vss = append(vss, vs)
			}
		}
		for _, vs := range vss {
			o.buildFanoutTunnel(dpid, vs)
		}
		// The select group is installed up front; it is inert until the
		// offload default rules reference it.
		o.installGroup(dpid)
	}

	// Delivery tunnels from each host's local (and backup) vSwitch, in IP
	// order for the same reason: buildDelivery allocates ports/tunnel ids.
	ips := make([]netaddr.IPv4, 0, len(o.deliveries))
	for ip := range o.deliveries {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, ip := range ips {
		d := o.deliveries[ip]
		if err := o.buildDelivery(ip, d.vs); err != nil {
			return err
		}
		if d.backup != 0 {
			if err := o.buildDelivery(ip, d.backup); err != nil {
				return err
			}
		}
	}
	for _, v := range o.vswitches {
		o.alive[v] = true
	}
	return o.buildChains()
}

// buildMeshTunnel creates the mesh tunnel between two member vSwitches
// and records it in the port/id/handle indexes.
func (o *Overlay) buildMeshTunnel(va, vb uint64) error {
	a := o.app
	net := a.C.Net
	da, db := net.Switch(va), net.Switch(vb)
	if da == nil || db == nil {
		return fmt.Errorf("scotch: unknown vswitch in mesh")
	}
	delay, _ := net.PathDelay(va, vb)
	pa, pb := o.allocPort(va), o.allocPort(vb)
	id := o.allocTunnelID()
	t := device.ConnectTunnel(da, pa, db, pb, device.TunnelConfig{
		Type:    a.Cfg.TunnelType,
		ID:      id,
		Delay:   delay + 20*time.Microsecond,
		RateBps: a.Cfg.TunnelBps,
		LocalIP: da.LocalIP, RemoteIP: db.LocalIP,
	})
	o.meshPort[[2]uint64{va, vb}] = pa
	o.meshPort[[2]uint64{vb, va}] = pb
	o.meshID[[2]uint64{va, vb}] = id
	o.meshID[[2]uint64{vb, va}] = id
	o.tunnels[id] = t
	return nil
}

// buildFanoutTunnel creates one fan-out tunnel from a protected switch
// into mesh vSwitch vs, registering its origin for Packet-In
// attribution. The receiving side strips the inner (ingress-port) label.
func (o *Overlay) buildFanoutTunnel(dpid, vs uint64) {
	a := o.app
	net := a.C.Net
	sw, vdev := net.Switch(dpid), net.Switch(vs)
	if sw == nil || vdev == nil {
		return
	}
	delay, _ := net.PathDelay(dpid, vs)
	sp, vp := o.allocPort(dpid), o.allocPort(vs)
	id := o.allocTunnelID()
	t := device.ConnectTunnel(sw, sp, vdev, vp, device.TunnelConfig{
		Type:    a.Cfg.TunnelType,
		ID:      id,
		Delay:   delay + 20*time.Microsecond,
		RateBps: a.Cfg.TunnelBps,
		LocalIP: sw.LocalIP, RemoteIP: vdev.LocalIP,
		StripInnerB: true,
	})
	o.phys[dpid] = append(o.phys[dpid], physTunnel{vs: vs, physPort: sp, vsPort: vp, id: id})
	o.tunnelOrigin[id] = dpid
	o.tunnels[id] = t
}

// connectTunnel creates one overlay tunnel with the app's standard
// parameters.
func connectTunnel(o *Overlay, a device.Node, ap uint32, b device.Node, bp uint32, id uint64, delay time.Duration) {
	var la, lb netaddr.IPv4
	if sw, ok := a.(*device.Switch); ok {
		la = sw.LocalIP
	}
	if sw, ok := b.(*device.Switch); ok {
		lb = sw.LocalIP
	}
	t := device.ConnectTunnel(a, ap, b, bp, device.TunnelConfig{
		Type:    o.app.Cfg.TunnelType,
		ID:      id,
		Delay:   delay + 20*time.Microsecond,
		RateBps: o.app.Cfg.TunnelBps,
		LocalIP: la, RemoteIP: lb,
	})
	o.tunnels[id] = t
}

func (o *Overlay) buildDelivery(ip netaddr.IPv4, vs uint64) error {
	a := o.app
	net := a.C.Net
	host := net.Host(ip)
	vdev := net.Switch(vs)
	if host == nil || vdev == nil {
		return fmt.Errorf("scotch: unknown host %v or vswitch %d", ip, vs)
	}
	at, _ := net.HostAttach(ip)
	delay, _ := net.PathDelay(vs, at.DPID)
	vp := o.allocPort(vs)
	hp := o.allocPort(0) // host-side logical port id space is per-host anyway
	t := device.ConnectTunnel(vdev, vp, host, hp, device.TunnelConfig{
		Type:    a.Cfg.TunnelType,
		ID:      o.allocTunnelID(),
		Delay:   delay + 20*time.Microsecond,
		RateBps: a.Cfg.TunnelBps,
		LocalIP: vdev.LocalIP, RemoteIP: ip,
	})
	o.hostPorts[ip] = vp
	o.deliveryPort[[2]uint64{vs, uint64(ip)}] = vp
	o.deliveryTun[[2]uint64{vs, uint64(ip)}] = t
	return nil
}

// nearestVSwitches returns up to n live primary vSwitches ordered by
// underlay delay from dpid (stable order for determinism).
func (o *Overlay) nearestVSwitches(dpid uint64, n int) []uint64 {
	type cand struct {
		vs    uint64
		delay time.Duration
	}
	var cands []cand
	for _, vs := range o.vswitches {
		if o.backups[vs] || (len(o.alive) > 0 && !o.alive[vs]) || o.draining[vs] {
			continue
		}
		d, ok := o.app.C.Net.PathDelay(dpid, vs)
		if !ok {
			continue
		}
		cands = append(cands, cand{vs, d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].delay != cands[j].delay {
			return cands[i].delay < cands[j].delay
		}
		return cands[i].vs < cands[j].vs
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]uint64, 0, n)
	for _, c := range cands[:n] {
		out = append(out, c.vs)
	}
	return out
}

// installGroup (re)installs the select group at a protected switch from
// its current live fan-out tunnels.
func (o *Overlay) installGroup(dpid uint64) {
	h := o.app.C.Switch(dpid)
	if h == nil {
		return
	}
	live := o.liveFanout(dpid)
	if len(live) == 0 {
		// Every fan-out vSwitch is dead or draining: a select group with
		// an empty bucket list would blackhole all offloaded traffic, so
		// leave the last-known buckets in place and deactivate the
		// offload — new packets stay on the physical control path.
		o.deactivate(dpid)
		return
	}
	var buckets []openflow.Bucket
	for _, pt := range live {
		buckets = append(buckets, openflow.Bucket{
			Weight:     1,
			WatchPort:  openflow.PortAny,
			WatchGroup: 0xffffffff,
			Actions:    []openflow.Action{openflow.OutputAction(pt.physPort)},
		})
	}
	cmd := openflow.GroupAdd
	if o.groupInstalled[dpid] {
		cmd = openflow.GroupModify
	}
	o.groupInstalled[dpid] = true
	h.SendGroupMod(&openflow.GroupMod{
		Command:   cmd,
		GroupType: openflow.GroupTypeSelect,
		GroupID:   offloadGroupID,
		Buckets:   buckets,
	})
}

func (o *Overlay) aliveOrUnbuilt(vs uint64) bool {
	if len(o.alive) == 0 {
		return true
	}
	return o.alive[vs]
}

// usable reports whether a vSwitch may take new flow assignments: it
// must be alive (or the overlay unbuilt) and not draining.
func (o *Overlay) usable(vs uint64) bool {
	return o.aliveOrUnbuilt(vs) && !o.draining[vs]
}

// liveFanout returns the fan-out tunnels of a switch whose vSwitch is
// alive, preferring primaries; backup vSwitches join the list only when a
// primary has failed. This is the bucket list of the switch's select
// group, so selectVSwitch and installGroup stay consistent by sharing it.
func (o *Overlay) liveFanout(dpid uint64) []physTunnel {
	// Reuses the overlay's scratch buffers: both callers consume the
	// result before the next liveFanout call and never retain it, and
	// the overlay runs single-threaded on the controller's lane.
	primaries := o.fanoutScratch[:0]
	spares := o.spareScratch[:0]
	nPrimary := 0
	for _, pt := range o.phys[dpid] {
		if o.backups[pt.vs] {
			if o.usable(pt.vs) {
				spares = append(spares, pt)
			}
			continue
		}
		nPrimary++
		if o.usable(pt.vs) {
			primaries = append(primaries, pt)
		}
	}
	for si := 0; len(primaries) < nPrimary && si < len(spares); si++ {
		primaries = append(primaries, spares[si])
	}
	o.fanoutScratch, o.spareScratch = primaries, spares
	return primaries
}

// selectVSwitch mirrors the switch's select-group bucket choice for a flow
// so the controller knows which mesh vSwitch a tunneled flow lands on.
func (o *Overlay) selectVSwitch(dpid uint64, key netaddr.FlowKey) (physTunnel, bool) {
	live := o.liveFanout(dpid)
	if len(live) == 0 {
		return physTunnel{}, false
	}
	return live[key.Hash()%uint64(len(live))], true
}

// deliveryFor returns the delivery vSwitch and its host-facing tunnel port
// for a destination.
func (o *Overlay) deliveryFor(ip netaddr.IPv4) (uint64, uint32, bool) {
	d, ok := o.deliveries[ip]
	if !ok {
		return 0, 0, false
	}
	vs := d.vs
	if len(o.alive) > 0 && !o.alive[vs] && d.backup != 0 {
		vs = d.backup
	}
	port, ok := o.deliveryPort[[2]uint64{vs, uint64(ip)}]
	return vs, port, ok
}

// offloadActions returns the action list that sends a packet arriving on
// ingressPort of switch dpid into the overlay, tagging it with the port.
func (o *Overlay) offloadActions(ingressPort uint32) []openflow.Action {
	if o.app.Cfg.TunnelType == device.TunnelGRE {
		return []openflow.Action{
			openflow.SetTunnelAction(uint64(ingressPort)),
			openflow.GroupAction(offloadGroupID),
		}
	}
	return []openflow.Action{
		openflow.PushMPLSAction(ingressPort),
		openflow.GroupAction(offloadGroupID),
	}
}

// activate installs the offload rules at a congested switch (paper §5.1):
// table 0 tags each ingress port with an inner label and continues to
// table 1, whose default rule hands the packet to the select group. The
// FlowMods ride the switch's admitted queue so they are paced like any
// other install.
func (o *Overlay) activate(dpid uint64) {
	st := o.app.protected[dpid]
	h := o.app.C.Switch(dpid)
	if st == nil || h == nil || st.active {
		return
	}
	st.active = true
	o.app.Stats.Activations++
	sched := o.app.sched(dpid)
	// Handles are re-resolved at service time so installs queued across a
	// cluster migration drain through the new master's connection.
	// Table 1 default first so table 0 never forwards into a void.
	sched.SubmitAdmitted(func() {
		h := o.app.C.Switch(dpid)
		if h == nil {
			return
		}
		h.InstallFlow(&openflow.FlowMod{
			Command: openflow.FlowAdd, TableID: 1, Priority: prioOffloadDefault,
			Instructions: openflow.Apply1(openflow.GroupAction(offloadGroupID)),
		})
	})
	for _, port := range st.ingressPorts {
		port := port
		sched.SubmitAdmitted(func() {
			h := o.app.C.Switch(dpid)
			if h == nil {
				return
			}
			var acts []openflow.Action
			if o.app.Cfg.TunnelType == device.TunnelGRE {
				acts = []openflow.Action{openflow.SetTunnelAction(uint64(port))}
			} else {
				acts = []openflow.Action{openflow.PushMPLSAction(port)}
			}
			h.InstallFlow(&openflow.FlowMod{
				Command: openflow.FlowAdd, TableID: 0, Priority: prioOffloadPortTag,
				Match: openflow.Match{Fields: openflow.FieldInPort, InPort: port},
				Instructions: []openflow.Instruction{
					openflow.ApplyActions(acts...),
					openflow.GotoTable(1),
				},
			})
		})
	}
}

// deactivate removes the offload rules (withdrawal step 2, §5.5).
func (o *Overlay) deactivate(dpid uint64) {
	st := o.app.protected[dpid]
	h := o.app.C.Switch(dpid)
	if st == nil || h == nil || !st.active {
		return
	}
	st.active = false
	o.app.Stats.Withdrawals++
	sched := o.app.sched(dpid)
	for _, port := range st.ingressPorts {
		port := port
		sched.SubmitAdmitted(func() {
			h := o.app.C.Switch(dpid)
			if h == nil {
				return
			}
			h.InstallFlow(&openflow.FlowMod{
				Command: openflow.FlowDeleteStrict, TableID: 0, Priority: prioOffloadPortTag,
				Match: openflow.Match{Fields: openflow.FieldInPort, InPort: port},
			})
		})
	}
	sched.SubmitAdmitted(func() {
		h := o.app.C.Switch(dpid)
		if h == nil {
			return
		}
		h.InstallFlow(&openflow.FlowMod{
			Command: openflow.FlowDeleteStrict, TableID: 1, Priority: prioOffloadDefault,
		})
	})
}

// failover replaces a dead vSwitch everywhere: group buckets at protected
// switches and delivery assignments fall back to backups (paper §5.6).
// Flows previously handled by the dead vSwitch re-hash onto live buckets
// and are treated as new flows when they miss there.
func (o *Overlay) failover(dead uint64) {
	if !o.alive[dead] {
		return
	}
	o.alive[dead] = false
	o.app.Stats.FailoverSwaps++
	// Re-derive every affected switch's buckets; liveFanout promotes a
	// backup in place of the dead primary. Sorted so the resulting
	// GroupMod sequence is reproducible.
	o.reinstallGroupsFor(dead)
	if o.draining[dead] {
		// The vSwitch died mid-drain: nothing left to wait for. Tear it
		// down now; the pending drain poll sees the cleared draining
		// flag and stops.
		o.finishDrain(dead)
	}
}

// reinstallGroupsFor refreshes the select group of every protected
// switch that fans out to vs, in sorted order for reproducibility.
func (o *Overlay) reinstallGroupsFor(vs uint64) {
	physDPIDs := make([]uint64, 0, len(o.phys))
	for dpid := range o.phys {
		physDPIDs = append(physDPIDs, dpid)
	}
	sort.Slice(physDPIDs, func(i, j int) bool { return physDPIDs[i] < physDPIDs[j] })
	for _, dpid := range physDPIDs {
		for _, pt := range o.phys[dpid] {
			if pt.vs == vs {
				o.installGroup(dpid)
				break
			}
		}
	}
}

// drainPollInterval paces the quiescence check during a graceful drain.
const drainPollInterval = 250 * time.Millisecond

// addLive extends a running overlay with a new mesh vSwitch: mesh
// tunnels to every existing member, a fan-out tunnel from every
// protected switch (with a select-group refresh so new flows start
// hashing onto the member immediately), middlebox-chain entry tunnels,
// and delivery rebinding for any host left unreachable by earlier
// failures. Mirrors build() for a single member, against live state.
func (o *Overlay) addLive(dpid uint64, backup bool) error {
	a := o.app
	net := a.C.Net
	if net.Switch(dpid) == nil {
		return fmt.Errorf("scotch: unknown vswitch %d", dpid)
	}
	if o.isMesh(dpid) {
		return fmt.Errorf("scotch: vswitch %d already a mesh member", dpid)
	}
	if h := a.C.Switch(dpid); h == nil {
		return fmt.Errorf("scotch: vswitch %d not connected to the controller", dpid)
	}
	// Mesh tunnels to the existing members, in membership order.
	for _, vb := range o.vswitches {
		if err := o.buildMeshTunnel(vb, dpid); err != nil {
			return err
		}
	}
	o.vswitches = append(o.vswitches, dpid)
	if backup {
		o.backups[dpid] = true
	}
	o.alive[dpid] = true

	// Fan-out from every protected switch; unlike build's FanOut-nearest
	// selection, a live-added member joins every switch's fan-out — the
	// pool is growing precisely because the existing tunnels are hot.
	protDPIDs := make([]uint64, 0, len(a.protected))
	for p := range a.protected {
		protDPIDs = append(protDPIDs, p)
	}
	sort.Slice(protDPIDs, func(i, j int) bool { return protDPIDs[i] < protDPIDs[j] })
	for _, p := range protDPIDs {
		o.buildFanoutTunnel(p, dpid)
		if !backup {
			o.installGroup(p)
		}
	}

	// Middlebox-chain entry tunnels, so policy flows can enter the mesh
	// here too (sorted by chain name: tunnel ids must be reproducible).
	if !backup {
		o.buildChainEntry(dpid)
	}

	// Re-home any delivery whose primary and backup are both gone.
	ips := make([]netaddr.IPv4, 0, len(o.deliveries))
	for ip := range o.deliveries {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, ip := range ips {
		d := o.deliveries[ip]
		if o.alive[d.vs] || (d.backup != 0 && o.alive[d.backup]) {
			continue
		}
		if err := o.buildDelivery(ip, dpid); err != nil {
			return err
		}
		d.vs = dpid
		d.backup = 0
	}
	a.Stats.VSwitchesAdded++
	if tr := a.C.Tracer(); tr != nil {
		tr.Mark(fmt.Sprintf("scotch:vswitch-add vs=%d", dpid), a.C.Eng.Now())
	}
	return nil
}

// buildChainEntry gives one mesh member the per-chain entry tunnels and
// shared green rules that buildChains created for the build-time
// primaries.
func (o *Overlay) buildChainEntry(vs uint64) {
	a := o.app
	net := a.C.Net
	names := make([]string, 0, len(a.mboxes))
	for name := range a.mboxes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mb := a.mboxes[name]
		su := net.Switch(mb.SU)
		suHandle := a.C.Switch(mb.SU)
		if su == nil || suHandle == nil {
			continue
		}
		if _, ok := mb.inPort[vs]; ok {
			continue
		}
		vdev := net.Switch(vs)
		delay, _ := net.PathDelay(vs, mb.SU)
		vp, sp := o.allocPort(vs), o.allocPort(mb.SU)
		id := o.allocTunnelID()
		connectTunnel(o, vdev, vp, su, sp, id, delay)
		mb.inPort[vs] = vp
		suHandle.InstallFlow(&openflow.FlowMod{
			Command: openflow.FlowAdd, TableID: 0, Priority: prioGreenChain,
			Match: openflow.Match{Fields: openflow.FieldTunnelID, TunnelID: id},
			Instructions: openflow.Apply1(openflow.OutputAction(mb.SUOut)),
		})
	}
}

// drain gracefully removes a mesh member from a running overlay (the
// reverse of addLive): the member stops taking new assignments (select
// groups and delivery lookups exclude it immediately), its established
// flows are handed to the elephant-migration path, and once its flow
// table is empty of per-flow rules — or DrainTimeout expires — the
// tunnels are torn down. A member that dies mid-drain is torn down
// immediately by failover.
func (o *Overlay) drain(dpid uint64) error {
	a := o.app
	if !o.isMesh(dpid) {
		return fmt.Errorf("scotch: vswitch %d not a mesh member", dpid)
	}
	if o.draining[dpid] {
		return fmt.Errorf("scotch: vswitch %d already draining", dpid)
	}
	for name, mb := range a.mboxes {
		if mb.vd == dpid {
			return fmt.Errorf("scotch: vswitch %d aggregates chain %q", dpid, name)
		}
	}
	if !o.alive[dpid] {
		// Already dead: failover swapped it out of service; just reclaim
		// the plumbing.
		o.removeMember(dpid)
		a.Stats.VSwitchesDrained++
		return nil
	}
	// Keep at least one live, non-draining primary: the overlay must
	// stay able to absorb an activation.
	others := 0
	for _, vs := range o.vswitches {
		if vs != dpid && o.alive[vs] && !o.draining[vs] && !o.backups[vs] {
			others++
		}
	}
	if others == 0 {
		return fmt.Errorf("scotch: vswitch %d is the last live primary", dpid)
	}

	o.draining[dpid] = true
	if tr := a.C.Tracer(); tr != nil {
		tr.Mark(fmt.Sprintf("scotch:vswitch-drain vs=%d", dpid), a.C.Eng.Now())
	}
	// Stop new assignments: refresh the select groups that fan out here
	// (liveFanout now excludes the member) and re-home its deliveries.
	o.reinstallGroupsFor(dpid)
	wasDelivery := o.rebindDeliveries(dpid)

	// Hand established flows to the migration path: anything that
	// entered the mesh here, or whose delivery rode this member, moves
	// to a policy-consistent physical path. Small flows not worth
	// migrating idle out of the flow table on their own.
	for _, fi := range a.C.FlowDB.OverlayFlows() {
		if fi.Migrated {
			continue
		}
		if fi.OverlayVSwitch == dpid || wasDelivery[fi.Key.Dst] {
			a.migrateOut(fi)
		}
	}
	o.pollDrain(dpid, a.C.Eng.Now()+sim.Time(a.Cfg.DrainTimeout))
	return nil
}

// rebindDeliveries moves every delivery off a draining member onto a
// live one (preferring the configured backup), building missing
// delivery tunnels, and reports which destination IPs were re-homed.
func (o *Overlay) rebindDeliveries(dpid uint64) map[netaddr.IPv4]bool {
	moved := make(map[netaddr.IPv4]bool)
	ips := make([]netaddr.IPv4, 0, len(o.deliveries))
	for ip := range o.deliveries {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, ip := range ips {
		d := o.deliveries[ip]
		if d.backup == dpid {
			d.backup = 0
		}
		if d.vs != dpid {
			continue
		}
		target := uint64(0)
		if d.backup != 0 && o.alive[d.backup] && !o.draining[d.backup] {
			target = d.backup
		} else {
			for _, vs := range o.vswitches {
				if vs != dpid && o.alive[vs] && !o.draining[vs] && !o.backups[vs] {
					target = vs
					break
				}
			}
		}
		if target == 0 {
			continue // guarded against by drain's last-primary check
		}
		if _, ok := o.deliveryPort[[2]uint64{target, uint64(ip)}]; !ok {
			if err := o.buildDelivery(ip, target); err != nil {
				continue
			}
		}
		d.vs = target
		if d.backup == target {
			d.backup = 0
		}
		moved[ip] = true
	}
	return moved
}

// pollDrain checks whether a draining member's flow table still holds
// per-flow rules; when it empties (or the deadline passes) the member
// is torn down.
func (o *Overlay) pollDrain(dpid uint64, deadline sim.Time) {
	a := o.app
	a.C.Eng.Schedule(drainPollInterval, func() {
		if !o.draining[dpid] {
			return // failover finished the drain for us
		}
		h := a.C.Switch(dpid)
		if h == nil || h.Dead() || a.C.Eng.Now() >= deadline {
			o.finishDrain(dpid)
			return
		}
		remaining := 0
		h.RequestFlowStats(&openflow.FlowStatsRequest{TableID: 0xff}, func(rep *openflow.MultipartReply) {
			for i := range rep.Flows {
				p := rep.Flows[i].Priority
				if p == prioVSwitch || p == prioVSwitch+1 {
					remaining++
				}
			}
			if rep.More {
				return
			}
			if !o.draining[dpid] {
				return
			}
			if remaining == 0 {
				o.finishDrain(dpid)
				return
			}
			o.pollDrain(dpid, deadline)
		})
	})
}

// finishDrain completes a drain: the member's tunnels are torn down and
// its membership state is erased.
func (o *Overlay) finishDrain(dpid uint64) {
	if !o.draining[dpid] {
		return
	}
	delete(o.draining, dpid)
	o.removeMember(dpid)
	o.app.Stats.VSwitchesDrained++
	if tr := o.app.C.Tracer(); tr != nil {
		tr.Mark(fmt.Sprintf("scotch:vswitch-drained vs=%d", dpid), o.app.C.Eng.Now())
	}
}

// removeMember tears down every tunnel touching a member and scrubs it
// from the overlay indexes. Logical port ids are never reused: a member
// re-added later allocates fresh ports, so late packets on old tunnels
// cannot leak into new ones.
func (o *Overlay) removeMember(dpid uint64) {
	// Mesh tunnels to the surviving members.
	for _, vb := range o.vswitches {
		if vb == dpid {
			continue
		}
		if id, ok := o.meshID[[2]uint64{dpid, vb}]; ok {
			if t := o.tunnels[id]; t != nil {
				t.Teardown()
			}
			delete(o.tunnels, id)
		}
		delete(o.meshID, [2]uint64{dpid, vb})
		delete(o.meshID, [2]uint64{vb, dpid})
		delete(o.meshPort, [2]uint64{dpid, vb})
		delete(o.meshPort, [2]uint64{vb, dpid})
	}
	// Fan-out tunnels from protected switches.
	physDPIDs := make([]uint64, 0, len(o.phys))
	for p := range o.phys {
		physDPIDs = append(physDPIDs, p)
	}
	sort.Slice(physDPIDs, func(i, j int) bool { return physDPIDs[i] < physDPIDs[j] })
	for _, p := range physDPIDs {
		kept := o.phys[p][:0:0]
		for _, pt := range o.phys[p] {
			if pt.vs != dpid {
				kept = append(kept, pt)
				continue
			}
			if t := o.tunnels[pt.id]; t != nil {
				t.Teardown()
			}
			delete(o.tunnels, pt.id)
			delete(o.tunnelOrigin, pt.id)
		}
		o.phys[p] = kept
	}
	// Delivery tunnels from this member.
	var dkeys [][2]uint64
	for k := range o.deliveryTun {
		if k[0] == dpid {
			dkeys = append(dkeys, k)
		}
	}
	sort.Slice(dkeys, func(i, j int) bool { return dkeys[i][1] < dkeys[j][1] })
	for _, k := range dkeys {
		o.deliveryTun[k].Teardown()
		delete(o.deliveryTun, k)
		delete(o.deliveryPort, k)
	}
	// Membership.
	for i, vs := range o.vswitches {
		if vs == dpid {
			o.vswitches = append(o.vswitches[:i], o.vswitches[i+1:]...)
			break
		}
	}
	delete(o.alive, dpid)
	delete(o.backups, dpid)
	delete(o.draining, dpid)
}
