package scotch

import (
	"testing"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/workload"
)

// TestGroupByCustomerFairness exercises §5.2's generalization: two
// customers arrive on the *same* ingress port (so per-port differentiation
// cannot separate them); grouping by source /24 restores fairness when one
// customer floods.
func TestGroupByCustomerFairness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GroupBy = func(_ uint64, _ uint32, key netaddr.FlowKey) uint32 {
		return uint32(key.Src >> 8) // customer = source /24
	}
	f := newFixture(t, cfg, 2, 0)

	// Both generators share the attacker host (same ingress port). The
	// flooding "customer" spoofs within 172.16/12; the quiet customer is
	// the host's own /24.
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2500)
	quiet := workload.StartClient(f.atkEm, f.server.IP, 80, 1, 0)
	f.eng.RunUntil(15 * time.Second)
	d.Stop()
	quiet.Stop()
	f.eng.RunUntil(16 * time.Second)

	if fail := f.cap.FailureFraction("client"); fail > 0.15 {
		t.Fatalf("quiet customer failure = %.2f with GroupBy, want < 0.15", fail)
	}
}
