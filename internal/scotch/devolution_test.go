package scotch

import (
	"testing"
	"time"

	"scotch/internal/devolve"
	"scotch/internal/netaddr"
	"scotch/internal/workload"
)

// devoCfg engages the overlay almost immediately so misses land on mesh
// vSwitches, where devolution can absorb them.
func devoCfg() Config {
	cfg := DefaultConfig()
	cfg.ActivateRate = 20
	cfg.RuleIdleTimeout = 2 * time.Second
	return cfg
}

// TestDevolutionLocalFastPath drives client flows through an activated
// overlay with a devolved tenant policy and asserts misses are absorbed
// at the vSwitch tier: local hits accrue, devolved rules (tagged with
// the devolve cookie) sit in mesh flow tables, and the controller sees
// fewer Packet-Ins than the flow count.
func TestDevolutionLocalFastPath(t *testing.T) {
	f := newFixture(t, devoCfg(), 2, 0)
	f.app.EnableDevolution()
	f.app.DevolveTenant("client", netaddr.MakePrefix(f.client.IP, 32), false)

	cl := workload.StartClient(f.cliEm, f.server.IP, 200, 1, 0)
	f.eng.RunUntil(5 * time.Second)
	cl.Stop()

	m := f.app.DevolveMetrics()
	if m.TotalHits() == 0 {
		t.Fatal("no local hits: devolution absorbed nothing")
	}
	if m.Hits("client") == 0 {
		t.Fatal("hits not attributed to the devolved tenant")
	}
	var devolved uint64
	for _, vs := range f.vs {
		devolved += vs.Stats.LocalHandled
	}
	if devolved == 0 {
		t.Fatal("no switch-level LocalHandled misses")
	}
	if m.DevolvedSetup.Count() == 0 {
		t.Fatal("no devolved setup latencies observed")
	}
}

// TestDevolutionDisabledIsInert pins the ablation baseline: without
// EnableDevolution no cache attaches, no local handling occurs, and the
// policy API calls are no-ops.
func TestDevolutionDisabledIsInert(t *testing.T) {
	f := newFixture(t, devoCfg(), 2, 0)
	f.app.DevolveTenant("client", netaddr.MakePrefix(f.client.IP, 32), false)
	f.app.RepublishPolicy()
	cl := workload.StartClient(f.cliEm, f.server.IP, 200, 1, 0)
	f.eng.RunUntil(3 * time.Second)
	cl.Stop()
	for _, vs := range f.vs {
		if vs.Stats.LocalHandled != 0 {
			t.Fatal("LocalHandled non-zero with devolution disabled")
		}
		if vs.LocalAgentAttached() {
			t.Fatal("a local agent attached with devolution disabled")
		}
	}
	if f.app.DevolveMetrics() != nil {
		t.Fatal("DevolveMetrics non-nil with devolution disabled")
	}
}

// TestDevolutionDrainFlushes drains a mesh member and asserts its cache
// flushed (devolved rules deleted so the drain completes), detached,
// and the survivors were re-fed a higher policy generation.
func TestDevolutionDrainFlushes(t *testing.T) {
	f := newFixture(t, devoCfg(), 2, 0)
	f.app.EnableDevolution()
	f.app.DevolveTenant("client", netaddr.MakePrefix(f.client.IP, 32), false)
	cl := workload.StartClient(f.cliEm, f.server.IP, 200, 1, 0)
	f.eng.RunUntil(2 * time.Second)

	victim := f.vs[1].DPID
	cache := f.app.DevolveCache(victim)
	if cache == nil {
		t.Fatal("no cache attached to mesh member")
	}
	genBefore := f.app.PolicyGeneration()
	if err := f.app.DrainVSwitch(victim); err != nil {
		t.Fatal(err)
	}
	if cache.Active() {
		t.Fatal("drained member's cache still holds a policy table")
	}
	if f.vs[1].LocalAgentAttached() {
		t.Fatal("drained member still has a local agent attached")
	}
	if f.app.DevolveCache(victim) != nil {
		t.Fatal("drained member still tracked in the cache pool")
	}
	if f.app.PolicyGeneration() <= genBefore {
		t.Fatal("survivors not re-fed a fresh policy generation after drain")
	}
	// The flushed cache still fences: a replayed pre-drain table is stale.
	if cache.Apply(&devolve.Table{Gen: 1}) {
		t.Fatal("flushed cache accepted a stale pre-drain policy table")
	}

	f.eng.RunUntil(6 * time.Second)
	cl.Stop()
	f.eng.RunUntil(8 * time.Second)
	if fail := f.cap.FailureFraction("client"); fail > 0.15 {
		t.Fatalf("client failure fraction across devolved drain = %.2f", fail)
	}
}

// TestDevolutionEnableAfterBuild covers the experiments rig's call
// order (Build inside newRig, EnableDevolution after): caches must
// attach to the already-built mesh immediately.
func TestDevolutionEnableAfterBuild(t *testing.T) {
	f := newFixture(t, devoCfg(), 2, 0)
	f.app.EnableDevolution()
	for _, vs := range f.vs {
		if f.app.DevolveCache(vs.DPID) == nil {
			t.Fatalf("no cache attached to built member %d", vs.DPID)
		}
		if !vs.LocalAgentAttached() {
			t.Fatalf("member %d has no local agent", vs.DPID)
		}
	}
	if f.app.PolicyGeneration() == 0 {
		t.Fatal("no initial policy published on enable")
	}
	gen, seen := f.app.DevolveCache(f.vs[0].DPID).Generation()
	if seen {
		// The push rides the control channel; it must not have landed
		// synchronously.
		t.Fatalf("policy applied with zero control delay (gen %d)", gen)
	}
	f.eng.RunUntil(10 * time.Millisecond)
	if gen, seen := f.app.DevolveCache(f.vs[0].DPID).Generation(); !seen || gen == 0 {
		t.Fatal("policy table never arrived at the cache")
	}
}
