// Package scotch implements the paper's contribution: a controller
// application that elastically scales the SDN control plane by detouring
// new flows through a vSwitch overlay when a hardware switch's control
// path saturates.
//
// The pieces map one-to-one onto the paper's design sections:
//
//	overlay.go   — §4.1/§5.1: the tunnel mesh, select-group load
//	               balancing, offload activation, §5.6 failover
//	scotch.go    — §5.2: flow identification (tunnel id + inner label),
//	               ingress-port differentiation with overlay and dropping
//	               thresholds, §5.5 withdrawal
//	scheduler.go — §5.2/§5.3: per-switch paced installation with the
//	               admitted > migration > ingress priority order
//	migrate.go   — §5.3: elephant detection via flow stats and migration
//	               to policy-consistent physical paths (§5.4)
package scotch
