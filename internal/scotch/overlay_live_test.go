package scotch

import (
	"testing"
	"time"

	"scotch/internal/device"
	"scotch/internal/netaddr"
	"scotch/internal/workload"
)

// TestNoEmptyBucketGroupMod is the regression test for the empty-bucket
// GroupMod bug: when every fan-out vSwitch is dead, installGroup used to
// push a select group with zero buckets, silently blackholing all
// offloaded traffic at the switch. The fix deactivates the offload
// instead and leaves the last-known buckets in place.
func TestNoEmptyBucketGroupMod(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 2, 1)
	ov := f.app.ov
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	f.eng.RunUntil(2 * time.Second)
	if g := f.edge.Pipeline.Groups.Get(offloadGroupID); g == nil || len(g.Buckets) == 0 {
		t.Fatal("offload group missing before the kill — fixture broken")
	}

	for _, vs := range f.vs {
		dead := vs.DPID
		f.eng.Schedule(0, func() { ov.failover(dead) })
	}
	f.eng.RunUntil(2*time.Second + 50*time.Millisecond)
	d.Stop()

	// Every re-derivation of the bucket list during the cascade must have
	// kept the installed group non-empty; the final state too.
	g := f.edge.Pipeline.Groups.Get(offloadGroupID)
	if g == nil {
		t.Fatal("offload group deleted by total vSwitch loss")
	}
	if len(g.Buckets) == 0 {
		t.Fatal("empty-bucket GroupMod installed after all fan-out vSwitches died")
	}
	// The offload must have disengaged instead: packets stay on the
	// physical control path rather than hashing into dead tunnels.
	if f.app.Active(f.edge.DPID) {
		t.Fatal("offload still active with zero live fan-out")
	}
	if f.app.Stats.Withdrawals == 0 {
		t.Fatal("no withdrawal recorded when the fan-out emptied")
	}
}

// TestAddVSwitchLive grows a running overlay by one member and checks the
// new vSwitch is fully wired: mesh tunnels, fan-out from the protected
// switch, select-group bucket, and real Packet-In traffic.
func TestAddVSwitchLive(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 1, 0)
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	f.eng.RunUntil(2 * time.Second)
	if !f.app.Active(f.edge.DPID) {
		t.Fatal("overlay never activated")
	}

	nv := f.net.AddSwitch("vsz", device.OVSProfile())
	f.net.LinkSwitches(f.edge, nv, device.LinkConfig{Delay: 20 * time.Microsecond, RateBps: 1e9})

	// Guard rails first: not yet connected to the controller.
	if err := f.app.AddVSwitch(nv.DPID, false); err == nil {
		t.Fatal("AddVSwitch accepted a switch with no controller connection")
	}
	f.c.Connect(nv)
	if err := f.app.AddVSwitch(nv.DPID, false); err != nil {
		t.Fatalf("live AddVSwitch: %v", err)
	}
	if err := f.app.AddVSwitch(nv.DPID, false); err == nil {
		t.Fatal("AddVSwitch accepted a duplicate member")
	}
	if err := f.app.AddVSwitch(0xdead, false); err == nil {
		t.Fatal("AddVSwitch accepted an unknown dpid")
	}

	members := f.app.MeshMembers()
	if len(members) != 2 || members[1] != nv.DPID {
		t.Fatalf("mesh members = %v, want [old, new]", members)
	}
	ov := f.app.ov
	if _, ok := ov.meshPort[[2]uint64{f.vs[0].DPID, nv.DPID}]; !ok {
		t.Fatal("no mesh tunnel from the old member to the new one")
	}
	if got := len(ov.liveFanout(f.edge.DPID)); got != 2 {
		t.Fatalf("fan-out = %d after live add, want 2", got)
	}
	if f.app.Stats.VSwitchesAdded != 1 {
		t.Fatalf("VSwitchesAdded = %d, want 1", f.app.Stats.VSwitchesAdded)
	}

	// The refreshed GroupMod rides the control channel; give it a moment
	// to land, then the installed group must carry both buckets.
	f.eng.RunUntil(2*time.Second + 100*time.Millisecond)
	g := f.edge.Pipeline.Groups.Get(offloadGroupID)
	if g == nil || len(g.Buckets) != 2 {
		t.Fatalf("select group not refreshed for the new member (buckets=%v)", g)
	}

	// The new member must absorb a share of the attack.
	f.eng.RunUntil(5 * time.Second)
	d.Stop()
	if nv.Stats.PacketInSent == 0 {
		t.Fatal("live-added vSwitch received no offloaded flows")
	}
}

// TestDrainVSwitchGraceful shrinks a running overlay: the drained member
// stops taking new flows immediately, its per-flow rules idle out, and
// only then are its tunnels torn down — while client traffic keeps
// flowing. The member can be re-added afterwards.
func TestDrainVSwitchGraceful(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RuleIdleTimeout = 2 * time.Second
	f := newFixture(t, cfg, 2, 0)
	victim := f.vs[1].DPID
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	cl := workload.StartClient(f.cliEm, f.server.IP, 50, 1, 0)
	f.eng.RunUntil(2 * time.Second)

	if err := f.app.DrainVSwitch(victim); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := f.app.DrainVSwitch(victim); err == nil {
		t.Fatal("second drain of the same member accepted")
	}
	if !f.app.Draining(victim) {
		t.Fatal("Draining not reported during drain")
	}
	// New assignments exclude the member instantly.
	ov := f.app.ov
	if got := len(ov.liveFanout(f.edge.DPID)); got != 1 {
		t.Fatalf("fan-out = %d right after drain start, want 1", got)
	}
	for i := 0; i < 64; i++ {
		key := netaddr.FlowKey{Src: f.client.IP, Dst: f.server.IP, SrcPort: uint16(i), DstPort: 80}
		if pt, ok := ov.selectVSwitch(f.edge.DPID, key); !ok || pt.vs == victim {
			t.Fatalf("selectVSwitch still offers draining member (flow %d)", i)
		}
	}
	// But the member is still a mesh member while its flows bleed off.
	if got := len(f.app.MeshMembers()); got != 2 {
		t.Fatalf("membership shrank before quiescence (members=%d)", got)
	}

	// Let the attack stop; the drained member's rules idle out and the
	// poll tears it down.
	f.eng.RunUntil(4 * time.Second)
	d.Stop()
	f.eng.RunUntil(12 * time.Second)
	cl.Stop()
	f.eng.RunUntil(13 * time.Second)

	if f.app.Draining(victim) {
		t.Fatal("drain never completed")
	}
	if f.app.Stats.VSwitchesDrained != 1 {
		t.Fatalf("VSwitchesDrained = %d, want 1", f.app.Stats.VSwitchesDrained)
	}
	members := f.app.MeshMembers()
	if len(members) != 1 || members[0] == victim {
		t.Fatalf("mesh members after drain = %v", members)
	}
	if _, ok := ov.meshPort[[2]uint64{f.vs[0].DPID, victim}]; ok {
		t.Fatal("mesh tunnel to drained member survived")
	}
	for _, pt := range ov.phys[f.edge.DPID] {
		if pt.vs == victim {
			t.Fatal("fan-out tunnel to drained member survived")
		}
	}
	// Drain must not have hurt the client beyond what the attack itself
	// costs: 0.15 is the repo's no-drain bound under the same 2000/s
	// attack (TestClientProtectedDuringAttack). The strict zero-loss
	// assertion lives in the elastic experiment's controlled setup.
	if failure := f.cap.FailureFraction("client"); failure > 0.15 {
		t.Fatalf("client failure across drain = %.3f, want < 0.15", failure)
	}

	// A drained member can rejoin with fresh plumbing.
	if err := f.app.AddVSwitch(victim, false); err != nil {
		t.Fatalf("re-add after drain: %v", err)
	}
	if got := len(f.app.MeshMembers()); got != 2 {
		t.Fatalf("members after re-add = %d, want 2", got)
	}
	if got := len(ov.liveFanout(f.edge.DPID)); got != 2 {
		t.Fatalf("fan-out after re-add = %d, want 2", got)
	}
}

// TestDrainElephantHandoff drains the member carrying an established
// elephant flow's delivery: the drain must hand the flow to the
// migration path (rather than waiting forever for it to idle out) and
// the flow must keep running on its physical path.
func TestDrainElephantHandoff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ElephantBytes = 1 << 30 // byte-count migration off: only drain may migrate
	cfg.RuleIdleTimeout = 2 * time.Second
	f := newFixture(t, cfg, 2, 0)
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	key := netaddr.FlowKey{Src: f.client.IP, Dst: f.server.IP, Proto: netaddr.ProtoTCP, SrcPort: 9999, DstPort: 80}
	f.eng.Schedule(time.Second, func() {
		for i := 0; i < 60; i++ {
			k := netaddr.FlowKey{Src: f.client.IP, Dst: f.server.IP, Proto: netaddr.ProtoTCP, SrcPort: uint16(3000 + i), DstPort: 80}
			f.cliEm.Start(workload.Flow{Key: k, Packets: 1, Class: "filler"})
		}
		f.cliEm.Start(workload.Flow{Key: key, Packets: 5000, Interval: 2 * time.Millisecond, Size: 1000, Class: "elephant"})
	})
	f.eng.RunUntil(3 * time.Second)

	fi := f.c.FlowDB.Lookup(key)
	if fi == nil || !fi.OnOverlay {
		t.Fatal("elephant did not land on the overlay — fixture broken")
	}
	if fi.Migrated || f.app.Stats.Migrated != 0 {
		t.Fatal("flow migrated before the drain with byte-count migration off")
	}

	// Drain the member serving the server's delivery: every overlay flow
	// to the server rides it on its last hop, elephant included.
	if err := f.app.DrainVSwitch(f.vs[0].DPID); err != nil {
		t.Fatalf("drain: %v", err)
	}
	f.eng.RunUntil(6 * time.Second)
	if !fi.Migrated {
		t.Fatalf("elephant not handed to migration by drain (stats=%+v)", f.app.Stats)
	}
	if f.app.Stats.Migrated == 0 {
		t.Fatal("migration count zero after drain handoff")
	}
	fl := f.cap.Flows("elephant")
	if len(fl) != 1 || fl[0].PacketsRecv == 0 {
		t.Fatal("elephant stopped flowing")
	}
	mid := fl[0].PacketsRecv
	d.Stop()
	f.eng.RunUntil(9 * time.Second)
	if fl[0].PacketsRecv <= mid {
		t.Fatal("elephant stalled after drain handoff")
	}
	f.eng.RunUntil(14 * time.Second)
	if f.app.Stats.VSwitchesDrained != 1 {
		t.Fatalf("drain never completed (VSwitchesDrained=%d)", f.app.Stats.VSwitchesDrained)
	}
}

// TestDrainRacingFailover kills a member mid-drain: failover must finish
// the drain immediately (nothing left to wait for) and the orphaned
// drain poll must quietly stop, with no double-teardown or re-count.
func TestDrainRacingFailover(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 2, 1)
	victim := f.vs[1].DPID
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	f.eng.RunUntil(2 * time.Second)

	if err := f.app.DrainVSwitch(victim); err != nil {
		t.Fatalf("drain: %v", err)
	}
	f.eng.RunUntil(2*time.Second + 100*time.Millisecond)
	if f.app.Stats.VSwitchesDrained != 0 {
		t.Fatal("drain finished before the member died — race not exercised")
	}
	f.app.ov.failover(victim)

	if f.app.Stats.VSwitchesDrained != 1 {
		t.Fatalf("failover did not finish the drain (VSwitchesDrained=%d)", f.app.Stats.VSwitchesDrained)
	}
	if f.app.Draining(victim) {
		t.Fatal("draining flag survived the failover")
	}
	for _, m := range f.app.MeshMembers() {
		if m == victim {
			t.Fatal("dead draining member still in the mesh")
		}
	}
	// The scheduled pollDrain must see the cleared flag and no-op.
	f.eng.RunUntil(4 * time.Second)
	d.Stop()
	f.eng.RunUntil(5 * time.Second)
	if f.app.Stats.VSwitchesDrained != 1 {
		t.Fatalf("orphaned drain poll re-finished the drain (VSwitchesDrained=%d)", f.app.Stats.VSwitchesDrained)
	}
	if f.app.Stats.FailoverSwaps != 1 {
		t.Fatalf("FailoverSwaps = %d, want 1", f.app.Stats.FailoverSwaps)
	}
}

// TestDrainGuards covers the refusal cases: the last live primary can
// never be drained, non-members are rejected, and a member that is
// already dead is reclaimed immediately without a poll cycle.
func TestDrainGuards(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 1, 1)
	d := workload.StartDDoS(f.atkEm, f.server.IP, 2000)
	f.eng.RunUntil(2 * time.Second)
	d.Stop()

	if err := f.app.DrainVSwitch(f.vs[0].DPID); err == nil {
		t.Fatal("drained the last live primary")
	}
	if err := f.app.DrainVSwitch(0xdead); err == nil {
		t.Fatal("drained a non-member")
	}

	// A dead member drains instantly: there is nothing to wait for.
	backup := f.vs[1].DPID
	f.app.ov.failover(backup)
	if err := f.app.DrainVSwitch(backup); err != nil {
		t.Fatalf("drain of dead member: %v", err)
	}
	if f.app.Stats.VSwitchesDrained != 1 {
		t.Fatalf("dead member not reclaimed immediately (VSwitchesDrained=%d)", f.app.Stats.VSwitchesDrained)
	}
	for _, m := range f.app.MeshMembers() {
		if m == backup {
			t.Fatal("dead member still in the mesh after drain")
		}
	}
}
