package scotch

import (
	"time"

	"scotch/internal/controller"
	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/topo"
)

// MiddleboxChain describes one middlebox insertion point: the switches
// immediately up- and downstream (S_U and S_D in the paper's Fig. 8), the
// S_U port toward the middlebox, and the S_D port receiving from it.
// Overlay traffic reaches S_U through per-vSwitch tunnels (decapsulated so
// the middlebox sees naked packets) and leaves S_D through a tunnel to an
// aggregation vSwitch; per-flow physical (red) rules shadow these shared
// green rules by priority.
type MiddleboxChain struct {
	Name  string
	SU    uint64
	SD    uint64
	SUOut uint32 // S_U port toward the middlebox
	SDIn  uint32 // S_D port from the middlebox

	inPort map[uint64]uint32 // mesh vSwitch -> its tunnel port toward S_U
	vd     uint64            // aggregation vSwitch downstream of S_D
	vdIn   uint32            // VD-side port of the S_D tunnel
	sdOut  uint32            // S_D tunnel port toward VD
	outID  uint64            // tunnel id of the S_D -> VD return tunnel
}

// AddMiddlebox registers a middlebox chain element. Call before Build; the
// experiment is responsible for wiring the middlebox device between
// (SU, SUOut) and (SD, SDIn).
func (a *App) AddMiddlebox(name string, su, sd uint64, suOut, sdIn uint32) *MiddleboxChain {
	mb := &MiddleboxChain{
		Name: name, SU: su, SD: sd, SUOut: suOut, SDIn: sdIn,
		inPort: make(map[uint64]uint32),
	}
	a.mboxes[name] = mb
	return mb
}

// policyPathVia assembles a physical path that crosses each named
// middlebox in order, producing the red-rule hop list: ... -> S_U(->MB)
// -> S_D(in from MB, onward) -> ... (paper §5.4).
func (a *App) policyPathVia(origin uint64, key netaddr.FlowKey, chain []string) ([]topo.Hop, []uint64, bool) {
	cur := origin
	var hops []topo.Hop
	var waypoints []uint64
	for _, name := range chain {
		mb := a.mboxes[name]
		if mb == nil {
			return nil, nil, false
		}
		seg, ok := a.C.Net.SwitchPath(cur, mb.SU)
		if !ok {
			return nil, nil, false
		}
		hops = append(hops, seg...)
		hops = append(hops, topo.Hop{DPID: mb.SU, OutPort: mb.SUOut})
		waypoints = append(waypoints, mb.SU, mb.SD)
		cur = mb.SD
	}
	mbLast := a.mboxes[chain[len(chain)-1]]
	tail, ok := a.C.Net.Path(cur, key.Dst)
	if !ok {
		return nil, nil, false
	}
	// The S_D rule applies only to packets returning from the middlebox.
	if len(tail) > 0 && tail[0].DPID == mbLast.SD {
		tail[0].InPort = mbLast.SDIn
	}
	return append(hops, tail...), waypoints, true
}

// buildChains plumbs each middlebox chain into the overlay: tunnels from
// every mesh vSwitch into S_U (with a shared green tunnel-id rule toward
// the middlebox) and a tunnel from S_D to an aggregation vSwitch (with a
// shared green in_port rule). Called from Overlay.build.
func (o *Overlay) buildChains() error {
	a := o.app
	net := a.C.Net
	for _, mb := range a.mboxes {
		su := net.Switch(mb.SU)
		sd := net.Switch(mb.SD)
		if su == nil || sd == nil {
			continue
		}
		suHandle := a.C.Switch(mb.SU)
		sdHandle := a.C.Switch(mb.SD)
		// In-tunnels: every primary vSwitch can hand flows to the
		// middlebox; decapsulation happens at S_U so the middlebox sees
		// the original packet (paper Fig. 8).
		for _, vs := range o.vswitches {
			if o.backups[vs] {
				continue
			}
			vdev := net.Switch(vs)
			delay, _ := net.PathDelay(vs, mb.SU)
			vp, sp := o.allocPort(vs), o.allocPort(mb.SU)
			id := o.allocTunnelID()
			connectTunnel(o, vdev, vp, su, sp, id, delay)
			mb.inPort[vs] = vp
			// Shared green rule at S_U: anything from this tunnel goes
			// to the middlebox.
			suHandle.InstallFlow(&openflow.FlowMod{
				Command: openflow.FlowAdd, TableID: 0, Priority: prioGreenChain,
				Match: openflow.Match{Fields: openflow.FieldTunnelID, TunnelID: id},
				Instructions: openflow.Apply1(openflow.OutputAction(mb.SUOut)),
			})
		}
		// Out-tunnel: S_D aggregates middlebox output back into the mesh
		// via one aggregation vSwitch.
		if len(o.vswitches) == 0 {
			continue
		}
		mb.vd = o.firstPrimary()
		vdev := net.Switch(mb.vd)
		delay, _ := net.PathDelay(mb.SD, mb.vd)
		sp, vp := o.allocPort(mb.SD), o.allocPort(mb.vd)
		mb.outID = o.allocTunnelID()
		connectTunnel(o, sd, sp, vdev, vp, mb.outID, delay)
		mb.sdOut = sp
		mb.vdIn = vp
		// Shared green rule at S_D: middlebox output returns to the mesh.
		sdHandle.InstallFlow(&openflow.FlowMod{
			Command: openflow.FlowAdd, TableID: 0, Priority: prioGreenChain,
			Match: openflow.Match{Fields: openflow.FieldInPort, InPort: mb.SDIn},
			Instructions: openflow.Apply1(openflow.OutputAction(sp)),
		})
	}
	return nil
}

func (o *Overlay) firstPrimary() uint64 {
	for _, vs := range o.vswitches {
		if !o.backups[vs] {
			return vs
		}
	}
	return o.vswitches[0]
}

// overlayChainHops returns the per-flow overlay rule placements for a
// flow with a policy chain: entry vSwitch -> S_U tunnel, then from each
// chain's aggregation vSwitch onward, ending at the delivery vSwitch.
// Each element is (vswitch dpid, out port).
type vsHop struct {
	vs  uint64
	out uint32
	// tunnelID, when nonzero, constrains the rule to packets arriving
	// from that tunnel (higher priority). This disambiguates the case
	// where a chain's aggregation vSwitch is also the flow's entry
	// vSwitch: without it the entry rule and the post-middlebox rule
	// share a match and the flow loops through the middlebox.
	tunnelID uint64
}

func (a *App) overlayChainHops(v1 uint64, chain []string, v2 uint64, deliverPort uint32) ([]vsHop, bool) {
	var hops []vsHop
	cur := v1
	var fromTunnel uint64
	for _, name := range chain {
		mb := a.mboxes[name]
		if mb == nil {
			return nil, false
		}
		in, ok := mb.inPort[cur]
		if !ok {
			return nil, false
		}
		hops = append(hops, vsHop{vs: cur, out: in, tunnelID: fromTunnel})
		cur = mb.vd
		fromTunnel = mb.outID
	}
	if cur == v2 {
		hops = append(hops, vsHop{vs: cur, out: deliverPort, tunnelID: fromTunnel})
	} else {
		hops = append(hops, vsHop{vs: cur, out: a.ov.meshPort[[2]uint64{cur, v2}], tunnelID: fromTunnel})
		// The delivery rule must not shadow v2's own chain-entry rule
		// for the same flow, so it matches the mesh tunnel it arrives on.
		hops = append(hops, vsHop{vs: v2, out: deliverPort, tunnelID: a.ov.meshID[[2]uint64{cur, v2}]})
	}
	return hops, true
}

// pollElephants queries every live mesh vSwitch for flow statistics and
// queues migration for flows that crossed the elephant threshold (§5.3:
// "The large flow identifier selects the flows with high packet counts").
func (a *App) pollElephants() {
	for _, vs := range a.ov.vswitches {
		if a.ov.backups[vs] || !a.ov.aliveOrUnbuilt(vs) {
			continue
		}
		h := a.C.Switch(vs)
		if h == nil || h.Dead() {
			continue
		}
		h.RequestFlowStats(&openflow.FlowStatsRequest{TableID: 0xff}, a.handleStats)
	}
}

func (a *App) handleStats(rep *openflow.MultipartReply) {
	for i := range rep.Flows {
		f := &rep.Flows[i]
		// §5.3 selects on "high packet counts"; byte count catches bulk
		// transfers with large packets. Either threshold elects the flow
		// (the packet threshold is off at 0).
		big := f.ByteCount >= a.Cfg.ElephantBytes ||
			(a.Cfg.ElephantPackets > 0 && f.PacketCount >= a.Cfg.ElephantPackets)
		if !big {
			continue
		}
		key, ok := keyFromMatch(&f.Match)
		if !ok {
			continue
		}
		fi := a.C.FlowDB.Lookup(key)
		if fi == nil || !fi.OnOverlay || fi.Migrated {
			continue
		}
		a.migrateOut(fi)
	}
}

// migrateOut queues one overlay flow for migration to a physical path,
// deduplicating against migrations already in flight. Shared by the
// elephant identifier and the drain protocol, which hands a draining
// vSwitch's established flows here.
func (a *App) migrateOut(fi *controller.FlowInfo) {
	if a.migrating == nil {
		a.migrating = make(map[netaddr.FlowKey]bool)
	}
	if a.migrating[fi.Key] {
		return
	}
	a.migrating[fi.Key] = true
	a.sched(fi.FirstHop).SubmitMigration(func() { a.migrate(fi) })
}

// migrate moves one elephant from the overlay to a policy-consistent
// physical path: downstream rules first through the admitted queues, the
// first-hop rule last (§5.3).
func (a *App) migrate(fi *controller.FlowInfo) {
	key := fi.Key
	var hops []topo.Hop
	var ok bool
	if a.Cfg.NaiveMigration {
		hops, ok = a.C.Net.Path(fi.FirstHop, key.Dst)
	} else {
		hops, fi.Waypoints, ok = a.policyPath(fi.FirstHop, key)
	}
	if !ok || len(hops) == 0 {
		delete(a.migrating, key)
		return
	}
	// "The controller ... checks the message rate of all switches on the
	// path to make sure their control plane is not overloaded." Defer and
	// retry when any is hot.
	now := a.C.Eng.Now()
	for _, hop := range hops[1:] {
		if h := a.C.Switch(hop.DPID); h != nil && h.PacketInRate.Rate(now) > a.Cfg.ActivateRate {
			a.C.Eng.Schedule(time.Second, func() {
				a.sched(fi.FirstHop).SubmitMigration(func() { a.migrate(fi) })
			})
			return
		}
	}
	match := exactMatch(key)
	pending := len(hops) - 1
	finish := func() {
		h := a.C.Switch(hops[0].DPID)
		if h == nil {
			delete(a.migrating, key)
			return
		}
		a.sched(hops[0].DPID).SubmitAdmitted(func() {
			h.InstallFlow(a.redRuleFor(match, hops[0]))
			fi.OnOverlay = false
			fi.Migrated = true
			a.Stats.Migrated++
			delete(a.migrating, key)
		})
	}
	if pending == 0 {
		finish()
		return
	}
	for _, hop := range hops[1:] {
		hop := hop
		if a.C.Switch(hop.DPID) == nil {
			pending--
			if pending == 0 {
				finish()
			}
			continue
		}
		a.sched(hop.DPID).SubmitAdmitted(func() {
			if h := a.C.Switch(hop.DPID); h != nil {
				h.InstallFlow(a.redRuleFor(match, hop))
			}
			pending--
			if pending == 0 {
				finish()
			}
		})
	}
}

// redRuleFor builds the red rule for one hop; hops downstream of a
// middlebox carry an in-port constraint and slightly higher priority so
// they only catch middlebox output.
func (a *App) redRuleFor(match openflow.Match, hop topo.Hop) *openflow.FlowMod {
	prio := uint16(prioRed)
	if hop.InPort != 0 {
		match.Fields |= openflow.FieldInPort
		match.InPort = hop.InPort
		prio = prioRed + 1
	}
	fm := openflow.FlowMod1(openflow.OutputAction(hop.OutPort))
	fm.Command = openflow.FlowAdd
	fm.Priority = prio
	fm.IdleTimeout = uint16(a.Cfg.RuleIdleTimeout / time.Second)
	fm.Match = match
	return fm
}

// keyFromMatch recovers a flow key from an exact-match rule (the inverse
// of exactMatch); ok is false for non-exact matches such as the offload
// defaults.
func keyFromMatch(m *openflow.Match) (netaddr.FlowKey, bool) {
	need := openflow.FieldIPv4Src | openflow.FieldIPv4Dst | openflow.FieldIPProto
	if !m.Fields.Has(need) {
		return netaddr.FlowKey{}, false
	}
	k := netaddr.FlowKey{Src: m.IPv4Src, Dst: m.IPv4Dst, Proto: m.IPProto}
	switch {
	case m.Fields.Has(openflow.FieldTCPSrc | openflow.FieldTCPDst):
		k.SrcPort, k.DstPort = m.TCPSrc, m.TCPDst
	case m.Fields.Has(openflow.FieldUDPSrc | openflow.FieldUDPDst):
		k.SrcPort, k.DstPort = m.UDPSrc, m.UDPDst
	}
	return k, true
}
