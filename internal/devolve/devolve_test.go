package devolve_test

import (
	"sync"
	"testing"
	"time"

	"scotch/internal/device"
	"scotch/internal/devolve"
	"scotch/internal/netaddr"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

func testTable(gen uint64) *devolve.Table {
	return &devolve.Table{
		Gen: gen,
		Tenants: []devolve.TenantPolicy{
			{Name: "legit", Prefix: netaddr.MustParsePrefix("10.0.0.0/24")},
			{Name: "mbox", Prefix: netaddr.MustParsePrefix("10.0.1.0/24"), Sensitive: true},
		},
		Routes: map[netaddr.IPv4]uint32{
			netaddr.MustParseIPv4("10.0.2.1"): 7,
		},
		Origins:         map[uint64]uint64{42: 1},
		RulePriority:    100,
		IdleTimeout:     2 * time.Second,
		ElephantBytes:   1 << 20,
		ElephantPackets: 0,
	}
}

func newCache(t *testing.T) (*sim.Engine, *device.Switch, *devolve.Cache) {
	t.Helper()
	eng := sim.New(1)
	sw := device.NewSwitch(eng, "vs", 100, device.OVSProfile())
	c := devolve.New(eng, sw, 100*time.Millisecond, devolve.NewMetrics())
	return eng, sw, c
}

func key(src, dst string, sp, dp uint16) netaddr.FlowKey {
	return netaddr.FlowKey{
		Src: netaddr.MustParseIPv4(src), Dst: netaddr.MustParseIPv4(dst),
		Proto: netaddr.ProtoTCP, SrcPort: sp, DstPort: dp,
	}
}

// TestGenerationFencing pins the versioned-push contract: stale
// generations are rejected, equal generations accepted, and the fence
// survives a Flush (a drained-then-readded member cannot be poisoned by
// a replayed pre-drain table).
func TestGenerationFencing(t *testing.T) {
	_, _, c := newCache(t)
	if _, seen := c.Generation(); seen {
		t.Fatal("generation seen before any push")
	}
	if !c.Apply(testTable(5)) {
		t.Fatal("first push (gen 5) rejected")
	}
	if c.Apply(testTable(4)) {
		t.Fatal("stale push (gen 4 after 5) accepted")
	}
	if got := c.Stats().StaleRejected; got != 1 {
		t.Fatalf("StaleRejected = %d, want 1", got)
	}
	if !c.Apply(testTable(5)) {
		t.Fatal("equal-generation push rejected")
	}
	c.Flush()
	if c.Active() {
		t.Fatal("cache active after Flush")
	}
	if c.Apply(testTable(3)) {
		t.Fatal("stale push accepted after Flush: fencing memory lost")
	}
	if !c.Apply(testTable(6)) {
		t.Fatal("fresh push (gen 6) rejected after Flush")
	}
	if gen, seen := c.Generation(); !seen || gen != 6 {
		t.Fatalf("Generation() = %d,%v, want 6,true", gen, seen)
	}
}

// TestDecide covers the escalation predicate exhaustively.
func TestDecide(t *testing.T) {
	_, _, c := newCache(t)
	if d := c.Decide(key("10.0.0.5", "10.0.2.1", 1000, 80)); d != devolve.EscalateNoPolicy {
		t.Fatalf("no-table decision = %v, want EscalateNoPolicy", d)
	}
	c.Apply(testTable(1))
	cases := []struct {
		name string
		k    netaddr.FlowKey
		want devolve.Decision
	}{
		{"devolved mouse", key("10.0.0.5", "10.0.2.1", 1000, 80), devolve.Devolve},
		{"sensitive tenant", key("10.0.1.5", "10.0.2.1", 1000, 80), devolve.EscalateSensitive},
		{"first contact", key("192.168.0.1", "10.0.2.1", 1000, 80), devolve.EscalateFirstContact},
		{"no route", key("10.0.0.5", "10.0.9.9", 1000, 80), devolve.EscalateNoRoute},
	}
	for _, tc := range cases {
		if d := c.Decide(tc.k); d != tc.want {
			t.Errorf("%s: Decide = %v (%s), want %v", tc.name, d, d.Reason(), tc.want)
		}
	}
}

// TestHandleMissDevolves drives a packet through the switch data plane
// and asserts the miss is absorbed locally: no Packet-In, a local rule
// with the devolve cookie in table 0, and hit accounting per tenant and
// per origin.
func TestHandleMissDevolves(t *testing.T) {
	eng, sw, c := newCache(t)
	c.Apply(testTable(1))

	pkt := packet.NewTCP(netaddr.MustParseIPv4("10.0.0.5"),
		netaddr.MustParseIPv4("10.0.2.1"), 1000, 80, 0)
	pkt.Meta.TunnelID = 42
	sw.Receive(pkt, &device.Port{ID: 3, Owner: sw})
	eng.RunUntil(50 * time.Millisecond)

	if sw.Stats.LocalHandled != 1 {
		t.Fatalf("LocalHandled = %d, want 1", sw.Stats.LocalHandled)
	}
	if sw.Stats.PacketInSent != 0 {
		t.Fatalf("PacketInSent = %d, want 0 (miss should be absorbed)", sw.Stats.PacketInSent)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Installs != 1 {
		t.Fatalf("stats = %+v, want Hits=1 Installs=1", st)
	}
	var found bool
	for _, r := range sw.Pipeline.Table(0).Rules() {
		if r.Cookie == devolve.RuleCookie {
			found = true
		}
	}
	if !found {
		t.Fatal("no rule with devolve cookie in table 0")
	}
	if got := c.HitsByTenant()["legit"]; got != 1 {
		t.Fatalf("HitsByTenant[legit] = %d, want 1", got)
	}
	if rate := c.OriginRate(1, eng.Now()); rate <= 0 {
		t.Fatalf("OriginRate(origin 1) = %v, want > 0", rate)
	}

	// Escalating misses must reach the OFA as Packet-Ins.
	esc := packet.NewTCP(netaddr.MustParseIPv4("192.168.0.1"),
		netaddr.MustParseIPv4("10.0.2.1"), 1000, 80, 0)
	sw.Receive(esc, &device.Port{ID: 3, Owner: sw})
	eng.RunUntil(100 * time.Millisecond)
	if sw.Stats.PacketInSent != 1 {
		t.Fatalf("PacketInSent = %d, want 1 after escalating miss", sw.Stats.PacketInSent)
	}
	if got := c.Stats().FirstContact; got != 1 {
		t.Fatalf("FirstContact = %d, want 1", got)
	}
}

// TestElephantSweepEscalates bumps a devolved rule's packet counter past
// the table's packet threshold and asserts the sweep re-punts the flow
// to the controller exactly once.
func TestElephantSweepEscalates(t *testing.T) {
	eng, sw, c := newCache(t)
	tbl := testTable(1)
	tbl.ElephantPackets = 100
	c.Apply(tbl)

	pkt := packet.NewTCP(netaddr.MustParseIPv4("10.0.0.5"),
		netaddr.MustParseIPv4("10.0.2.1"), 1000, 80, 0)
	sw.Receive(pkt, &device.Port{ID: 3, Owner: sw})
	eng.RunUntil(50 * time.Millisecond)
	for _, r := range sw.Pipeline.Table(0).Rules() {
		if r.Cookie == devolve.RuleCookie {
			r.Packets = 150 // crossed the packet threshold, bytes still small
		}
	}
	eng.RunUntil(300 * time.Millisecond) // >1 sweep at 100ms
	st := c.Stats()
	if st.Elephants != 1 {
		t.Fatalf("Elephants = %d, want exactly 1 (no re-escalation)", st.Elephants)
	}
	if sw.Stats.PacketInSent != 1 {
		t.Fatalf("PacketInSent = %d, want 1 (elephant re-punt)", sw.Stats.PacketInSent)
	}
	// Once escalated, further misses for the flow belong to the controller.
	again := packet.NewTCP(netaddr.MustParseIPv4("10.0.0.5"),
		netaddr.MustParseIPv4("10.0.2.1"), 1000, 80, 0)
	if c.HandleMiss(again, 3) {
		t.Fatal("HandleMiss absorbed a flow already escalated as elephant")
	}
}

// TestRevokeInvalidates pins the no-stale-policy-delivery contract: a
// push whose table drops a tenant deletes that tenant's local rules, so
// subsequent packets escalate instead of riding revoked policy.
func TestRevokeInvalidates(t *testing.T) {
	eng, sw, c := newCache(t)
	c.Apply(testTable(1))
	pkt := packet.NewTCP(netaddr.MustParseIPv4("10.0.0.5"),
		netaddr.MustParseIPv4("10.0.2.1"), 1000, 80, 0)
	sw.Receive(pkt, &device.Port{ID: 3, Owner: sw})
	eng.RunUntil(50 * time.Millisecond)

	revoked := testTable(2)
	revoked.Tenants = revoked.Tenants[1:] // drop "legit"
	c.Apply(revoked)
	eng.RunUntil(100 * time.Millisecond) // let the strict delete drain

	for _, r := range sw.Pipeline.Table(0).Rules() {
		if r.Cookie == devolve.RuleCookie {
			t.Fatal("revoked tenant's devolved rule still installed")
		}
	}
	again := packet.NewTCP(netaddr.MustParseIPv4("10.0.0.5"),
		netaddr.MustParseIPv4("10.0.2.1"), 1000, 80, 0)
	if c.HandleMiss(again, 3) {
		t.Fatal("HandleMiss absorbed a revoked tenant's flow")
	}
}

// TestConcurrentPushLookup exercises policy push / lookup / invalidate
// from concurrent goroutines (run under -race). The cache holds no flow
// records here, so no path touches the (single-threaded) sim engine.
func TestConcurrentPushLookup(t *testing.T) {
	_, _, c := newCache(t)
	m := devolve.NewMetrics()
	k := key("10.0.0.5", "10.0.2.1", 1000, 80)
	var wg sync.WaitGroup
	start := make(chan struct{})
	wg.Add(4)
	go func() { // pusher
		defer wg.Done()
		<-start
		for g := uint64(1); g <= 200; g++ {
			c.Apply(testTable(g))
		}
	}()
	go func() { // staler + invalidator
		defer wg.Done()
		<-start
		for i := 0; i < 200; i++ {
			c.Apply(testTable(1))
			if i%10 == 0 {
				c.Flush()
			}
		}
	}()
	go func() { // reader
		defer wg.Done()
		<-start
		for i := 0; i < 2000; i++ {
			c.Decide(k)
			c.Generation()
			c.Active()
			_ = c.Stats()
			_ = c.HitsByTenant()
		}
	}()
	go func() { // metrics aggregation (shared across caches in production)
		defer wg.Done()
		<-start
		for i := 0; i < 2000; i++ {
			m.Hit("legit")
			m.Escalation("first-contact")
			_ = m.TotalHits()
			_ = m.TotalEscalations()
		}
	}()
	close(start)
	wg.Wait()
	if gen, seen := c.Generation(); !seen || gen < 1 {
		t.Fatalf("Generation() = %d,%v after concurrent pushes", gen, seen)
	}
	if m.Hits("legit") != 2000 || m.Escalations("first-contact") != 2000 {
		t.Fatalf("metrics lost updates: hits=%d escal=%d",
			m.Hits("legit"), m.Escalations("first-contact"))
	}
}
