// Package devolve implements control devolution for the Scotch overlay:
// a per-tenant local fast path at each mesh vSwitch. The central
// controller distributes a versioned policy table (generation-fenced,
// mirroring the OpenFlow role-generation idiom in internal/cluster) of
// default-forward tenant policies; a Cache attached to the vSwitch's
// data plane then classifies table misses locally. Cache-hit mice flows
// get a locally installed rule and never cost a Packet-In round trip,
// while elephants, policy-sensitive (middlebox-chained) tenants, and
// first-contact prefixes still escalate to the central controller
// (LazyCtrl / "Dynamic Switch-Controller Association and Control
// Devolution"; ROADMAP item 4).
package devolve

import (
	"sync"
	"time"

	"scotch/internal/device"
	"scotch/internal/metrics"
	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

// RuleCookie tags every locally installed devolved rule so the cache's
// sweep (and any central observer) can tell them apart from
// controller-installed per-flow rules.
const RuleCookie uint64 = 0xDEC0DE0001

// Decision classifies one table miss against the policy table.
type Decision uint8

// Decision values: Devolve handles the flow locally; the Escalate*
// values name why the flow must go to the central controller instead.
const (
	Devolve              Decision = iota
	EscalateNoPolicy              // no policy table installed (or flushed)
	EscalateFirstContact          // source matches no tenant prefix
	EscalateSensitive             // tenant is policy-sensitive (middlebox chain)
	EscalateNoRoute               // no local forwarding entry for the destination
)

// Reason returns the escalation-reason label used in metrics
// (scotch_devolve_escalations_total{reason=...}).
func (d Decision) Reason() string {
	switch d {
	case Devolve:
		return "devolved"
	case EscalateNoPolicy:
		return "no-policy"
	case EscalateFirstContact:
		return "first-contact"
	case EscalateSensitive:
		return "sensitive"
	case EscalateNoRoute:
		return "no-route"
	}
	return "unknown"
}

// TenantPolicy is one tenant's devolution policy entry: flows whose
// source address falls in Prefix belong to the tenant. Sensitive tenants
// (middlebox-chained) always escalate so central policy is never
// bypassed.
type TenantPolicy struct {
	Name      string
	Prefix    netaddr.Prefix
	Sensitive bool
}

// Table is one versioned policy snapshot distributed by the controller
// to a mesh vSwitch. Gen is the fencing generation: a Cache rejects any
// push whose generation is below the newest it has seen, so a
// partitioned ex-master replaying an old table cannot roll policy back.
// Routes and Origins are computed per member (local delivery ports
// differ between vSwitches); the rule parameters mirror the scotch
// config so devolved rules are indistinguishable from central ones in
// priority and lifetime.
type Table struct {
	Gen     uint64
	Tenants []TenantPolicy // matched in order; first hit wins

	// Routes maps a destination to the out port at this member: the
	// host delivery tunnel when the member is the delivery vSwitch,
	// otherwise the mesh tunnel toward it.
	Routes map[netaddr.IPv4]uint32
	// Origins maps fan-out tunnel ids to the protected physical switch
	// that owns them, for per-origin hit-rate attribution (the monitor's
	// offered-load signal must include locally absorbed misses).
	Origins map[uint64]uint64

	RulePriority    uint16
	IdleTimeout     time.Duration
	ElephantBytes   uint64
	ElephantPackets uint64 // 0 disables packet-count elephant detection
}

// tenantFor returns the first tenant whose prefix contains src, or nil.
func (t *Table) tenantFor(src netaddr.IPv4) *TenantPolicy {
	for i := range t.Tenants {
		if t.Tenants[i].Prefix.Contains(src) {
			return &t.Tenants[i]
		}
	}
	return nil
}

// CacheStats counts one cache's decisions.
type CacheStats struct {
	Hits          uint64 // misses absorbed locally (installs + repeats)
	Installs      uint64 // devolved flows given a local rule
	Escalated     uint64 // misses handed to the central controller
	FirstContact  uint64
	Sensitive     uint64
	NoRoute       uint64
	NoPolicy      uint64
	Elephants     uint64 // devolved flows escalated by the sweep
	StaleRejected uint64 // policy pushes fenced off by the generation check
	Flushes       uint64
	Applies       uint64 // policy tables accepted
}

// record is the cache's bookkeeping for one locally devolved flow.
type record struct {
	tenant      string
	inPort      uint32
	out         uint32
	first       *packet.Packet // clone of the first packet, for escalation re-punts
	installedAt sim.Time
	lastMiss    sim.Time
	applied     bool // local rule confirmed in the table
	escalated   bool // handed to the controller (elephant); stop absorbing misses
}

// devBox bundles a flow's record with the FlowMod (and its one-action
// instruction list) installed for it, so the devolved-admission hot path
// costs one allocation instead of four. Both halves share a lifetime:
// the record is swept when the rule idles out.
type devBox struct {
	record
	c    *Cache
	fm   openflow.FlowMod
	inst [1]openflow.Instruction
	act  [1]openflow.Action
}

// RuleApplied is the OFA confirmation callback for the box's FlowMod
// (implements device.RuleNotify).
func (bx *devBox) RuleApplied() {
	c := bx.c
	c.mu.Lock()
	bx.applied = true
	c.mu.Unlock()
	c.m.ObserveDevolvedSetup(c.eng.Now() - bx.installedAt)
}

// Cache is the per-vSwitch policy cache: it implements
// device.LocalAgent, holding the newest policy Table and the per-flow
// records of locally devolved flows. All public methods are safe for
// concurrent use (policy pushes arrive from the control plane while
// lookups run on the data path); a nil *Cache is a no-op for reads.
type Cache struct {
	sw  *device.Switch
	eng sim.Proc
	m   *Metrics

	mu           sync.RWMutex
	table        *Table
	gen          uint64 // newest generation seen; survives Flush (fencing memory)
	genSeen      bool
	records      map[netaddr.FlowKey]*record
	hitsByTenant map[string]uint64
	originHits   map[uint64]*metrics.RateMeter
	stats        CacheStats
	sweeper      *sim.Ticker
}

// New attaches a policy cache to a mesh vSwitch as its local agent and
// starts the elephant/GC sweep at sweepEvery (the scotch stats
// interval). m (optional) aggregates metrics across a pool of caches.
func New(eng sim.Proc, sw *device.Switch, sweepEvery time.Duration, m *Metrics) *Cache {
	c := &Cache{
		sw:           sw,
		eng:          eng,
		m:            m,
		records:      make(map[netaddr.FlowKey]*record),
		hitsByTenant: make(map[string]uint64),
		originHits:   make(map[uint64]*metrics.RateMeter),
	}
	sw.SetLocalAgent(c)
	c.sweeper = eng.Every(sweepEvery, c.sweepTick)
	return c
}

// Detach disconnects the cache from its switch and stops the sweep;
// subsequent misses escalate to the controller as if devolution were
// never enabled. State is retained for post-mortem inspection.
func (c *Cache) Detach() {
	c.sw.SetLocalAgent(nil)
	c.sweeper.Stop()
}

// Switch returns the vSwitch this cache is attached to.
func (c *Cache) Switch() *device.Switch { return c.sw }

// Apply installs a policy table snapshot, rejecting stale generations:
// a push whose generation is below the newest one ever seen — even
// across a Flush — is dropped and counted, mirroring the OpenFlow
// role-generation fencing in internal/device and internal/cluster.
// Records of flows the new table no longer devolves (revoked tenants,
// re-homed routes) have their local rules deleted so the flows escalate
// centrally from the next packet on.
func (c *Cache) Apply(t *Table) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.genSeen && int64(t.Gen-c.gen) < 0 {
		c.stats.StaleRejected++
		return false
	}
	c.genSeen, c.gen = true, t.Gen
	c.table = t
	c.stats.Applies++
	c.revalidateLocked()
	return true
}

// revalidateLocked deletes the local rule (and record) of every devolved
// flow the current table no longer covers, in sorted key order so the
// resulting rule-server events are reproducible.
func (c *Cache) revalidateLocked() {
	var stale []netaddr.FlowKey
	for key, rec := range c.records {
		d, out := c.decideLocked(key)
		if d != Devolve || out != rec.out {
			stale = append(stale, key)
		}
	}
	sortKeys(stale)
	for _, key := range stale {
		c.deleteRuleLocked(key)
		delete(c.records, key)
	}
}

// Flush drops the policy table and every devolved-flow record, deleting
// the local rules so all subsequent misses escalate centrally. Draining
// members flush; the generation memory survives, so a stale republish
// is still fenced afterwards.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.table = nil
	c.stats.Flushes++
	keys := make([]netaddr.FlowKey, 0, len(c.records))
	for key := range c.records {
		keys = append(keys, key)
	}
	sortKeys(keys)
	for _, key := range keys {
		c.deleteRuleLocked(key)
		delete(c.records, key)
	}
}

// deleteRuleLocked queues a strict delete for a devolved flow's rule.
func (c *Cache) deleteRuleLocked(key netaddr.FlowKey) {
	c.sw.InstallLocal(&openflow.FlowMod{
		Command:  openflow.FlowDeleteStrict,
		TableID:  0,
		Priority: c.rulePriority(),
		Match:    exactMatch(key),
	}, nil)
}

// rulePriority returns the priority devolved rules use; after a Flush
// the table is gone, so the last-known generation's priority is kept by
// reading it before the table is cleared — in practice the priority is
// constant per deployment, so fall back to the scotch vSwitch priority.
func (c *Cache) rulePriority() uint16 {
	if c.table != nil {
		return c.table.RulePriority
	}
	return 100 // scotch prioVSwitch; constant per deployment
}

// Generation returns the newest policy generation seen (ok=false before
// any push).
func (c *Cache) Generation() (uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen, c.genSeen
}

// Active reports whether a policy table is currently installed (false
// after a Flush).
func (c *Cache) Active() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.table != nil
}

// Decide classifies a flow key against the current policy table without
// touching per-flow state; HandleMiss applies the same predicate.
func (c *Cache) Decide(key netaddr.FlowKey) Decision {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, _ := c.decideLocked(key)
	return d
}

func (c *Cache) decideLocked(key netaddr.FlowKey) (Decision, uint32) {
	t := c.table
	if t == nil {
		return EscalateNoPolicy, 0
	}
	tp := t.tenantFor(key.Src)
	if tp == nil {
		return EscalateFirstContact, 0
	}
	if tp.Sensitive {
		return EscalateSensitive, 0
	}
	out, ok := t.Routes[key.Dst]
	if !ok {
		return EscalateNoRoute, 0
	}
	return Devolve, out
}

// Stats returns a copy of the cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stats
}

// HitsByTenant returns a copy of the per-tenant local-hit counters.
func (c *Cache) HitsByTenant() map[string]uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]uint64, len(c.hitsByTenant))
	for k, v := range c.hitsByTenant {
		out[k] = v
	}
	return out
}

// OriginRate returns the recent rate of locally absorbed misses
// attributed to one protected origin switch — the offered load the
// central monitor no longer sees as Packet-Ins and must add back to its
// activation/withdrawal signal.
func (c *Cache) OriginRate(origin uint64, now sim.Time) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rm := c.originHits[origin]
	if rm == nil {
		return 0
	}
	return rm.Rate(now)
}

// HandleMiss implements device.LocalAgent: classify the miss and either
// absorb it (forward + install a local rule) or escalate by returning
// false.
func (c *Cache) HandleMiss(pkt *packet.Packet, inPort uint32) bool {
	key := pkt.FlowKey()
	now := c.eng.Now()
	c.mu.Lock()
	defer c.mu.Unlock()

	if rec, ok := c.records[key]; ok {
		if rec.escalated {
			return false // the central controller owns this flow now
		}
		// Rule still queued at the OFA (or idled out just before the
		// record was swept): keep the packets moving locally.
		rec.lastMiss = now
		c.noteHitLocked(rec.tenant, pkt.Meta.TunnelID, now)
		c.sw.ForwardLocal(pkt, inPort, []openflow.Action{openflow.OutputAction(rec.out)})
		return true
	}

	d, out := c.decideLocked(key)
	if d != Devolve {
		c.noteEscalationLocked(d)
		return false
	}
	t := c.table
	bx := &devBox{
		record: record{
			tenant:      t.tenantFor(key.Src).Name,
			inPort:      inPort,
			out:         out,
			first:       pkt.Clone(),
			installedAt: now,
			lastMiss:    now,
		},
		c: c,
	}
	bx.act[0] = openflow.OutputAction(out)
	bx.inst[0] = openflow.Instruction{Type: openflow.InstrApplyActions, Actions: bx.act[:]}
	bx.fm = openflow.FlowMod{
		Command:      openflow.FlowAdd,
		TableID:      0,
		Priority:     t.RulePriority,
		Cookie:       RuleCookie,
		IdleTimeout:  uint16(t.IdleTimeout / time.Second),
		Match:        exactMatch(key),
		Instructions: bx.inst[:],
	}
	rec := &bx.record
	c.records[key] = rec
	c.stats.Installs++
	c.sw.InstallLocalNotify(&bx.fm, bx)
	c.noteHitLocked(rec.tenant, pkt.Meta.TunnelID, now)
	c.sw.ForwardLocal(pkt, inPort, []openflow.Action{openflow.OutputAction(out)})
	return true
}

func (c *Cache) noteHitLocked(tenant string, tunnelID uint64, now sim.Time) {
	c.stats.Hits++
	c.hitsByTenant[tenant]++
	c.m.Hit(tenant)
	if t := c.table; t != nil {
		if origin, ok := t.Origins[tunnelID]; ok {
			rm := c.originHits[origin]
			if rm == nil {
				rm = metrics.NewRateMeter(time.Second, 10)
				c.originHits[origin] = rm
			}
			rm.Add(now, 1)
		}
	}
}

func (c *Cache) noteEscalationLocked(d Decision) {
	c.stats.Escalated++
	switch d {
	case EscalateNoPolicy:
		c.stats.NoPolicy++
	case EscalateFirstContact:
		c.stats.FirstContact++
	case EscalateSensitive:
		c.stats.Sensitive++
	case EscalateNoRoute:
		c.stats.NoRoute++
	}
	c.m.Escalation(d.Reason())
}

// sweepTick reconciles the records against the flow table: devolved
// flows that crossed an elephant threshold are escalated (the stored
// first packet re-punts through the OFA, so the central controller
// classifies and migrates the flow), and records whose rule has idled
// out are garbage collected. Runs on the sim event loop every
// sweepEvery.
func (c *Cache) sweepTick() {
	now := c.eng.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.table
	if t == nil {
		return
	}
	tbl := c.sw.Pipeline.Table(0)
	if tbl == nil {
		return
	}
	present := make(map[netaddr.FlowKey]bool)
	for _, r := range tbl.Rules() {
		if r.Cookie != RuleCookie {
			continue
		}
		key, ok := keyFromMatch(&r.Match)
		if !ok {
			continue
		}
		rec := c.records[key]
		if rec == nil {
			continue
		}
		present[key] = true
		if rec.escalated {
			continue
		}
		if r.Bytes >= t.ElephantBytes ||
			(t.ElephantPackets > 0 && r.Packets >= t.ElephantPackets) {
			rec.escalated = true
			c.stats.Elephants++
			c.m.Escalation("elephant")
			// Re-punt the stored first packet: its tunnel metadata still
			// attributes the flow to its origin switch, so the controller
			// admits it like any overlay punt and the red rules it
			// installs divert the elephant off the overlay.
			c.sw.PuntLocal(rec.first, rec.inPort)
		}
	}
	for key, rec := range c.records {
		if present[key] || !rec.applied {
			continue
		}
		if now-rec.lastMiss > t.IdleTimeout {
			delete(c.records, key)
		}
	}
}

// sortKeys orders flow keys deterministically.
func sortKeys(keys []netaddr.FlowKey) {
	less := func(a, b netaddr.FlowKey) bool {
		switch {
		case a.Src != b.Src:
			return a.Src < b.Src
		case a.Dst != b.Dst:
			return a.Dst < b.Dst
		case a.SrcPort != b.SrcPort:
			return a.SrcPort < b.SrcPort
		case a.DstPort != b.DstPort:
			return a.DstPort < b.DstPort
		}
		return a.Proto < b.Proto
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

// exactMatch builds the exact five-tuple match for a flow key (the same
// shape the scotch controller uses for its per-flow rules).
func exactMatch(k netaddr.FlowKey) openflow.Match {
	m := openflow.Match{
		Fields:  openflow.FieldEthType | openflow.FieldIPProto | openflow.FieldIPv4Src | openflow.FieldIPv4Dst,
		EthType: packet.EtherTypeIPv4,
		IPProto: k.Proto,
		IPv4Src: k.Src,
		IPv4Dst: k.Dst,
	}
	switch k.Proto {
	case netaddr.ProtoTCP:
		m.Fields |= openflow.FieldTCPSrc | openflow.FieldTCPDst
		m.TCPSrc, m.TCPDst = k.SrcPort, k.DstPort
	case netaddr.ProtoUDP:
		m.Fields |= openflow.FieldUDPSrc | openflow.FieldUDPDst
		m.UDPSrc, m.UDPDst = k.SrcPort, k.DstPort
	}
	return m
}

// keyFromMatch recovers a flow key from an exact match (inverse of
// exactMatch); ok is false for wildcard matches.
func keyFromMatch(m *openflow.Match) (netaddr.FlowKey, bool) {
	need := openflow.FieldIPv4Src | openflow.FieldIPv4Dst | openflow.FieldIPProto
	if !m.Fields.Has(need) {
		return netaddr.FlowKey{}, false
	}
	k := netaddr.FlowKey{Src: m.IPv4Src, Dst: m.IPv4Dst, Proto: m.IPProto}
	switch {
	case m.Fields.Has(openflow.FieldTCPSrc | openflow.FieldTCPDst):
		k.SrcPort, k.DstPort = m.TCPSrc, m.TCPDst
	case m.Fields.Has(openflow.FieldUDPSrc | openflow.FieldUDPDst):
		k.SrcPort, k.DstPort = m.UDPSrc, m.UDPDst
	}
	return k, true
}
