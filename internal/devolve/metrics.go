package devolve

import (
	"sort"
	"sync"
	"time"

	"scotch/internal/metrics"
	"scotch/internal/telemetry"
)

// Metrics aggregates devolution counters and setup-latency histograms
// across a pool of caches. All methods are nil-safe and safe for
// concurrent use, so a disabled deployment pays nothing and a bound
// telemetry registry exports:
//
//	scotch_devolve_hits_total{tenant=...}
//	scotch_devolve_escalations_total{reason=...}
//	scotch_devolve_setup_seconds / scotch_central_setup_seconds quantiles
type Metrics struct {
	// DevolvedSetup observes first-packet-to-rule-applied latency for
	// locally devolved flows; CentralSetup observes the same span for
	// flows admitted through the central controller, so the ablation can
	// compare like with like.
	DevolvedSetup *metrics.BucketHistogram
	CentralSetup  *metrics.BucketHistogram

	mu    sync.Mutex
	reg   *telemetry.Registry
	hits  map[string]uint64
	escal map[string]uint64
	// hitCtr/escalCtr cache the registry counter resolved for each
	// tenant/reason so the data-path hot loop does not rebuild the label
	// string (and walk the registry) on every event. Entries are nil
	// until a registry is bound; Bind clears them so they re-resolve.
	hitCtr   map[string]*telemetry.Counter
	escalCtr map[string]*telemetry.Counter
}

// NewMetrics returns an empty aggregate with latency-bucketed
// histograms.
func NewMetrics() *Metrics {
	return &Metrics{
		DevolvedSetup: metrics.NewBucketHistogram(nil),
		CentralSetup:  metrics.NewBucketHistogram(nil),
		hits:          make(map[string]uint64),
		escal:         make(map[string]uint64),
		hitCtr:        make(map[string]*telemetry.Counter),
		escalCtr:      make(map[string]*telemetry.Counter),
	}
}

// Bind exports the aggregate through a telemetry registry; tenant and
// reason counters are mirrored lazily as they appear. Safe with a nil
// registry (and a nil receiver).
func (m *Metrics) Bind(reg *telemetry.Registry) {
	if m == nil || reg == nil {
		return
	}
	m.mu.Lock()
	m.reg = reg
	clear(m.hitCtr)
	clear(m.escalCtr)
	m.mu.Unlock()
	reg.CounterFunc("scotch_devolve_setup_count", m.DevolvedSetup.Count)
	reg.CounterFunc("scotch_central_setup_count", m.CentralSetup.Count)
	reg.GaugeFunc("scotch_devolve_setup_seconds"+telemetry.Labels("quantile", "0.99"),
		func() float64 { return m.DevolvedSetup.Quantile(0.99) })
	reg.GaugeFunc("scotch_central_setup_seconds"+telemetry.Labels("quantile", "0.99"),
		func() float64 { return m.CentralSetup.Quantile(0.99) })
}

// Hit counts one locally absorbed miss for a tenant.
func (m *Metrics) Hit(tenant string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.hits[tenant]++
	c, ok := m.hitCtr[tenant]
	if !ok && m.reg != nil {
		c = m.reg.Counter("scotch_devolve_hits_total" + telemetry.Labels("tenant", tenant))
		m.hitCtr[tenant] = c
	}
	m.mu.Unlock()
	c.Inc()
}

// Escalation counts one miss handed to the central controller, by
// reason label ("first-contact", "sensitive", "no-route", "no-policy",
// "elephant").
func (m *Metrics) Escalation(reason string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.escal[reason]++
	c, ok := m.escalCtr[reason]
	if !ok && m.reg != nil {
		c = m.reg.Counter("scotch_devolve_escalations_total" + telemetry.Labels("reason", reason))
		m.escalCtr[reason] = c
	}
	m.mu.Unlock()
	c.Inc()
}

// ObserveDevolvedSetup records a local-rule setup latency.
func (m *Metrics) ObserveDevolvedSetup(d time.Duration) {
	if m == nil {
		return
	}
	m.DevolvedSetup.ObserveDuration(d)
}

// ObserveCentralSetup records a central-admission setup latency.
func (m *Metrics) ObserveCentralSetup(d time.Duration) {
	if m == nil {
		return
	}
	m.CentralSetup.ObserveDuration(d)
}

// Hits returns the total local hits recorded for one tenant.
func (m *Metrics) Hits(tenant string) uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits[tenant]
}

// Escalations returns the total escalations recorded for one reason.
func (m *Metrics) Escalations(reason string) uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.escal[reason]
}

// TotalHits sums local hits across all tenants.
func (m *Metrics) TotalHits() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, v := range m.hits {
		n += v
	}
	return n
}

// TotalEscalations sums escalations across all reasons.
func (m *Metrics) TotalEscalations() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, v := range m.escal {
		n += v
	}
	return n
}

// EscalationReasons returns the recorded reason labels, sorted.
func (m *Metrics) EscalationReasons() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.escal))
	for r := range m.escal {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
