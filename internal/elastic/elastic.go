package elastic

import (
	"fmt"
	"time"

	"scotch/internal/sim"
	"scotch/internal/telemetry"
)

// Pool is the resizable resource the autoscaler manages. The Scotch
// adapter is VSwitchPool; tests substitute fakes.
type Pool interface {
	// Size returns the number of members currently taking new
	// assignments (draining members do not count).
	Size() int
	// Grow adds one member. An error means no growth happened (for
	// example, no standby capacity); the autoscaler stays at its
	// current size and may retry on a later evaluation.
	Grow() error
	// Shrink begins gracefully removing one member. An error means no
	// shrink started.
	Shrink() error
}

// LoadFunc samples the scalar load signal driving scale decisions, in
// whatever unit the Config thresholds use. It is called once per
// evaluation tick, on the simulation clock.
type LoadFunc func() float64

// Config tunes the autoscaler's control loop.
type Config struct {
	// EvalInterval is the spacing of load evaluations.
	EvalInterval time.Duration
	// ScaleUpLoad is the load at or above which an evaluation counts
	// toward growing the pool.
	ScaleUpLoad float64
	// ScaleDownLoad is the load at or below which an evaluation counts
	// toward shrinking the pool. Keeping it well under ScaleUpLoad is
	// what makes the hysteresis band.
	ScaleDownLoad float64
	// UpChecks is how many consecutive over-threshold evaluations are
	// required before a grow. DownChecks is the same for shrink.
	UpChecks   int
	DownChecks int
	// Cooldown is the minimum time between resizes, so one burst cannot
	// thrash the pool.
	Cooldown time.Duration
	// MinPool and MaxPool bound the pool size the autoscaler will
	// request. MinPool is the floor the pool drains back to when load
	// subsides.
	MinPool int
	MaxPool int
}

// DefaultConfig returns the control-loop settings used by the elastic
// experiment: half-second evaluations, a wide hysteresis band, and a
// cooldown long enough for a resize's effect to show up in the signal.
func DefaultConfig() Config {
	return Config{
		EvalInterval:  500 * time.Millisecond,
		ScaleUpLoad:   150,
		ScaleDownLoad: 30,
		UpChecks:      2,
		DownChecks:    3,
		Cooldown:      1500 * time.Millisecond,
		MinPool:       1,
		MaxPool:       4,
	}
}

// Stats counts autoscaler activity.
type Stats struct {
	Evals uint64 // load evaluations performed
	Ups   uint64 // successful grows
	Downs uint64 // successful shrink starts
}

// Autoscaler runs the hysteresis control loop over a Pool.
type Autoscaler struct {
	eng    sim.Proc
	cfg    Config
	pool   Pool
	load   LoadFunc
	tracer *telemetry.Tracer
	ticker *sim.Ticker

	upStreak   int
	downStreak int
	lastResize sim.Time
	resized    bool
	lastLoad   float64

	// Stats is read-only for callers.
	Stats Stats
}

// New validates cfg and binds an autoscaler to a pool and load signal.
// It panics on a malformed config: these are programming errors, not
// runtime conditions.
func New(eng sim.Proc, cfg Config, pool Pool, load LoadFunc) *Autoscaler {
	if cfg.EvalInterval <= 0 {
		panic("elastic: non-positive EvalInterval")
	}
	if cfg.ScaleDownLoad >= cfg.ScaleUpLoad {
		panic("elastic: ScaleDownLoad must be below ScaleUpLoad")
	}
	if cfg.UpChecks < 1 || cfg.DownChecks < 1 {
		panic("elastic: UpChecks and DownChecks must be at least 1")
	}
	if cfg.MinPool < 1 || cfg.MaxPool < cfg.MinPool {
		panic("elastic: need 1 <= MinPool <= MaxPool")
	}
	return &Autoscaler{eng: eng, cfg: cfg, pool: pool, load: load}
}

// SetTracer attaches a tracer; each resize emits an "elastic:grow" or
// "elastic:drain" mark. A nil tracer disables marks.
func (a *Autoscaler) SetTracer(t *telemetry.Tracer) { a.tracer = t }

// BindMetrics registers the autoscaler's gauges and counters:
// scotch_elastic_pool_size and scotch_elastic_resize_total{dir}.
func (a *Autoscaler) BindMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("scotch_elastic_pool_size", func() float64 { return float64(a.pool.Size()) })
	reg.CounterFunc("scotch_elastic_resize_total"+telemetry.Labels("dir", "up"),
		func() uint64 { return a.Stats.Ups })
	reg.CounterFunc("scotch_elastic_resize_total"+telemetry.Labels("dir", "down"),
		func() uint64 { return a.Stats.Downs })
}

// Start begins evaluating the load every EvalInterval. It returns the
// autoscaler for chaining and panics if called twice.
func (a *Autoscaler) Start() *Autoscaler {
	if a.ticker != nil {
		panic("elastic: Start called twice")
	}
	a.ticker = a.eng.Every(a.cfg.EvalInterval, a.eval)
	return a
}

// LastLoad returns the load signal sampled by the most recent control
// tick (0 before the first eval). The observatory reads this instead of
// re-invoking the LoadFunc so observation never double-samples a signal
// whose computation has side effects.
func (a *Autoscaler) LastLoad() float64 { return a.lastLoad }

// Stop halts the control loop. In-flight drains keep running to
// completion in the overlay; Stop only stops new decisions.
func (a *Autoscaler) Stop() {
	if a.ticker != nil {
		a.ticker.Stop()
	}
}

// eval is one control-loop tick: sample the load, update the hysteresis
// streaks, and resize if a streak is complete, the bound allows it, and
// the cooldown has passed.
func (a *Autoscaler) eval() {
	a.Stats.Evals++
	l := a.load()
	a.lastLoad = l
	size := a.pool.Size()
	if l >= a.cfg.ScaleUpLoad {
		a.upStreak++
	} else {
		a.upStreak = 0
	}
	if l <= a.cfg.ScaleDownLoad {
		a.downStreak++
	} else {
		a.downStreak = 0
	}
	now := a.eng.Now()
	if a.resized && now-a.lastResize < sim.Time(a.cfg.Cooldown) {
		return
	}
	switch {
	case a.upStreak >= a.cfg.UpChecks && size < a.cfg.MaxPool:
		if err := a.pool.Grow(); err != nil {
			return // no standby free: keep the streak, retry next tick
		}
		a.Stats.Ups++
		a.noteResize(now, "elastic:grow")
	case a.downStreak >= a.cfg.DownChecks && size > a.cfg.MinPool:
		if err := a.pool.Shrink(); err != nil {
			return
		}
		a.Stats.Downs++
		a.noteResize(now, "elastic:drain")
	}
}

func (a *Autoscaler) noteResize(now sim.Time, kind string) {
	a.lastResize = now
	a.resized = true
	a.upStreak = 0
	a.downStreak = 0
	if a.tracer != nil {
		a.tracer.Mark(fmt.Sprintf("%s size=%d", kind, a.pool.Size()), now)
	}
}
