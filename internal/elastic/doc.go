// Package elastic grows and shrinks the Scotch mesh-vSwitch pool to
// follow control-plane load (paper §3, "elastically scaling up the
// control plane").
//
// The paper provisions the overlay for a worst case; this package adds
// the operational loop the paper sketches but does not build: a
// deterministic autoscaler that watches a scalar load signal (typically
// the overlay-routed flow rate per mesh member), applies dual-threshold
// hysteresis with a resize cooldown, and mutates a *running* deployment
// through scotch.App's live AddVSwitch / DrainVSwitch operations.
// Scale-up extends the tunnel mesh and select-group fan-out in place;
// scale-down drains gracefully, so established flows either idle out or
// are handed to the elephant-migration path — never dropped.
//
// Everything runs on the simulation clock: the same seed produces the
// same resize sequence, so elastic experiments stay byte-reproducible.
package elastic
