package elastic

import (
	"errors"
	"strings"
	"testing"
	"time"

	"scotch/internal/sim"
	"scotch/internal/telemetry"
)

// fakePool is a scripted Pool: instant resizes, optional growth failure.
type fakePool struct {
	size     int
	growErr  error
	grows    int
	shrinks  int
	draining int // members shrunk but not yet gone; not counted by Size
}

func (p *fakePool) Size() int { return p.size }

func (p *fakePool) Grow() error {
	if p.growErr != nil {
		return p.growErr
	}
	p.grows++
	p.size++
	return nil
}

func (p *fakePool) Shrink() error {
	p.shrinks++
	p.size--
	p.draining++
	return nil
}

// scriptedLoad replays a load trajectory, one value per evaluation,
// holding the last value once exhausted.
func scriptedLoad(vals ...float64) LoadFunc {
	i := 0
	return func() float64 {
		v := vals[i]
		if i < len(vals)-1 {
			i++
		}
		return v
	}
}

func testCfg() Config {
	return Config{
		EvalInterval:  100 * time.Millisecond,
		ScaleUpLoad:   100,
		ScaleDownLoad: 20,
		UpChecks:      2,
		DownChecks:    3,
		Cooldown:      250 * time.Millisecond,
		MinPool:       1,
		MaxPool:       3,
	}
}

func TestHysteresisGrowAndShrink(t *testing.T) {
	eng := sim.New(1)
	pool := &fakePool{size: 1}
	// Two hot samples grow; a single hot sample must not. Then sustained
	// cold samples shrink back, each shrink gated by DownChecks+cooldown.
	load := scriptedLoad(
		150, 50, // broken streak: no grow
		150, 150, // grow to 2
		150, 150, 150, // grow to 3 once cooldown passes
		10, 10, 10, 10, 10, 10, 10, 10, 10, 10, // shrink to 2, then 1
	)
	a := New(eng, testCfg(), pool, load).Start()
	eng.RunUntil(3 * time.Second)
	a.Stop()

	if pool.grows != 2 {
		t.Fatalf("grows = %d, want 2", pool.grows)
	}
	if pool.shrinks != 2 {
		t.Fatalf("shrinks = %d, want 2", pool.shrinks)
	}
	if pool.size != 1 {
		t.Fatalf("final size = %d, want MinPool", pool.size)
	}
	if a.Stats.Ups != 2 || a.Stats.Downs != 2 {
		t.Fatalf("stats = %+v", a.Stats)
	}
}

func TestSingleSpikeDoesNotGrow(t *testing.T) {
	eng := sim.New(1)
	pool := &fakePool{size: 1}
	load := scriptedLoad(150, 0, 150, 0, 150, 0)
	a := New(eng, testCfg(), pool, load).Start()
	eng.RunUntil(time.Second)
	a.Stop()
	if pool.grows != 0 {
		t.Fatalf("grew on alternating spikes (grows=%d) — UpChecks hysteresis broken", pool.grows)
	}
}

func TestCooldownSpacesResizes(t *testing.T) {
	eng := sim.New(1)
	pool := &fakePool{size: 1}
	a := New(eng, testCfg(), pool, scriptedLoad(150)).Start()
	// Load is pegged high. With a 100ms eval and 250ms cooldown the pool
	// may grow at most once per 3 evals: by 650ms (6 evals) exactly two
	// resizes fit (t=200ms and t=500ms).
	eng.RunUntil(650 * time.Millisecond)
	a.Stop()
	if pool.grows != 2 {
		t.Fatalf("grows = %d in 650ms, want 2 (cooldown not enforced)", pool.grows)
	}
}

func TestBoundsRespected(t *testing.T) {
	eng := sim.New(1)
	pool := &fakePool{size: 1}
	a := New(eng, testCfg(), pool, scriptedLoad(500)).Start()
	eng.RunUntil(10 * time.Second)
	if pool.size != 3 {
		t.Fatalf("size = %d under sustained load, want MaxPool=3", pool.size)
	}
	a.Stop()

	eng2 := sim.New(1)
	pool2 := &fakePool{size: 1}
	b := New(eng2, testCfg(), pool2, scriptedLoad(0)).Start()
	eng2.RunUntil(10 * time.Second)
	b.Stop()
	if pool2.shrinks != 0 || pool2.size != 1 {
		t.Fatalf("shrank below MinPool (size=%d)", pool2.size)
	}
}

func TestGrowFailureRetries(t *testing.T) {
	eng := sim.New(1)
	pool := &fakePool{size: 1, growErr: errors.New("no standby")}
	a := New(eng, testCfg(), pool, scriptedLoad(500)).Start()
	eng.RunUntil(time.Second)
	if pool.grows != 0 || a.Stats.Ups != 0 {
		t.Fatal("counted a failed grow")
	}
	// Capacity appears: the sustained streak must convert to a grow on
	// the next evaluation without restarting from zero.
	pool.growErr = nil
	eng.RunUntil(1100 * time.Millisecond)
	a.Stop()
	if pool.grows != 1 {
		t.Fatalf("grows = %d after capacity appeared, want 1", pool.grows)
	}
}

func TestMetricsAndMarks(t *testing.T) {
	eng := sim.New(1)
	pool := &fakePool{size: 1}
	a := New(eng, testCfg(), pool, scriptedLoad(150, 150, 150, 0, 0, 0, 0, 0, 0))
	tr := telemetry.NewTracer()
	a.SetTracer(tr)
	reg := telemetry.NewRegistry()
	a.BindMetrics(reg)
	a.Start()
	eng.RunUntil(2 * time.Second)
	a.Stop()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`scotch_elastic_resize_total{dir="up"} 1`,
		`scotch_elastic_resize_total{dir="down"} 1`,
		"scotch_elastic_pool_size 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
	var grow, drain bool
	for _, m := range tr.Marks() {
		if strings.HasPrefix(m.Name, "elastic:grow") {
			grow = true
		}
		if strings.HasPrefix(m.Name, "elastic:drain") {
			drain = true
		}
	}
	if !grow || !drain {
		t.Fatalf("missing resize marks (grow=%v drain=%v)", grow, drain)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.New(1)
	bad := []func(*Config){
		func(c *Config) { c.EvalInterval = 0 },
		func(c *Config) { c.ScaleDownLoad = c.ScaleUpLoad },
		func(c *Config) { c.UpChecks = 0 },
		func(c *Config) { c.MinPool = 0 },
		func(c *Config) { c.MaxPool = c.MinPool - 1 },
	}
	for i, mutate := range bad {
		cfg := testCfg()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config mutation %d not rejected", i)
				}
			}()
			New(eng, cfg, &fakePool{size: 1}, scriptedLoad(0))
		}()
	}
}
